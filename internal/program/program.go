// Package program defines the intermediate representation for the small
// parallel programs that run on both the idealized architecture and the
// hardware simulator: a handful of integer registers per thread, loads,
// stores, arithmetic, conditional branches, and the hardware-recognizable
// synchronization operations that DRF0 requires (Test, Set/Unset,
// TestAndSet and general atomic swaps).
//
// Programs are built either with the fluent ThreadBuilder API in this
// package or parsed from the litmus text format in package lang.
package program

import (
	"fmt"
	"sort"
	"strings"

	"weakorder/internal/mem"
)

// Reg names one of a thread's general-purpose registers.
type Reg uint8

// NumRegs is the number of general-purpose registers per thread.
const NumRegs = 16

// Convenient register names.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

// String formats the register like "r3".
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Opcode enumerates the instruction set.
type Opcode uint8

// Instruction opcodes. Memory opcodes map one-to-one onto mem.Kind:
// OpLoad -> Read, OpStore -> Write, OpSyncLoad -> SyncRead,
// OpSyncStore -> SyncWrite, OpTAS/OpSwap -> SyncRMW.
const (
	// OpNop does nothing.
	OpNop Opcode = iota
	// OpLoadImm sets Rd to Imm.
	OpLoadImm
	// OpMov copies Rs into Rd.
	OpMov
	// OpAdd sets Rd to Rs + Rt.
	OpAdd
	// OpAddImm sets Rd to Rs + Imm.
	OpAddImm
	// OpSub sets Rd to Rs - Rt.
	OpSub
	// OpLoad performs a data read of Addr into Rd.
	OpLoad
	// OpStore performs a data write of Rs (or Imm when UseImm) to Addr.
	OpStore
	// OpSyncLoad performs a read-only synchronization operation (Test),
	// reading Addr into Rd.
	OpSyncLoad
	// OpSyncStore performs a write-only synchronization operation
	// (Set/Unset), writing Rs (or Imm when UseImm) to Addr.
	OpSyncStore
	// OpTAS performs a TestAndSet: atomically reads Addr into Rd and
	// writes 1.
	OpTAS
	// OpSwap performs a general atomic read-modify-write: atomically reads
	// Addr into Rd and writes Rs (or Imm when UseImm).
	OpSwap
	// OpBeq branches to Target when Rs == Rt (or Rs == Imm when UseImm).
	OpBeq
	// OpBne branches to Target when Rs != Rt (or Rs != Imm when UseImm).
	OpBne
	// OpBlt branches to Target when Rs < Rt (or Rs < Imm when UseImm).
	OpBlt
	// OpBge branches to Target when Rs >= Rt (or Rs >= Imm when UseImm).
	OpBge
	// OpJmp branches unconditionally to Target.
	OpJmp
	// OpHalt terminates the thread.
	OpHalt
	// OpFence is an RP3-style fence: the processor waits until all its
	// previous accesses are globally performed before proceeding. It is
	// not a memory operation (it accesses no location) and does not
	// participate in DRF0's synchronization order; it constrains only the
	// issuing processor's hardware. On the idealized architecture it is a
	// no-op.
	OpFence
)

var opcodeNames = map[Opcode]string{
	OpNop:       "nop",
	OpLoadImm:   "li",
	OpMov:       "mov",
	OpAdd:       "add",
	OpAddImm:    "addi",
	OpSub:       "sub",
	OpLoad:      "ld",
	OpStore:     "st",
	OpSyncLoad:  "sld",
	OpSyncStore: "sst",
	OpTAS:       "tas",
	OpSwap:      "swap",
	OpBeq:       "beq",
	OpBne:       "bne",
	OpBlt:       "blt",
	OpBge:       "bge",
	OpJmp:       "jmp",
	OpHalt:      "halt",
	OpFence:     "fence",
}

// String returns the assembler mnemonic.
func (o Opcode) String() string {
	if s, ok := opcodeNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// IsMemory reports whether the opcode accesses shared memory.
func (o Opcode) IsMemory() bool {
	switch o {
	case OpLoad, OpStore, OpSyncLoad, OpSyncStore, OpTAS, OpSwap:
		return true
	}
	return false
}

// IsBranch reports whether the opcode may transfer control.
func (o Opcode) IsBranch() bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp:
		return true
	}
	return false
}

// MemKind returns the mem.Kind corresponding to a memory opcode. It panics
// on non-memory opcodes.
func (o Opcode) MemKind() mem.Kind {
	switch o {
	case OpLoad:
		return mem.Read
	case OpStore:
		return mem.Write
	case OpSyncLoad:
		return mem.SyncRead
	case OpSyncStore:
		return mem.SyncWrite
	case OpTAS, OpSwap:
		return mem.SyncRMW
	default:
		panic(fmt.Sprintf("program: opcode %v is not a memory operation", o))
	}
}

// Instr is one decoded instruction.
type Instr struct {
	Op     Opcode
	Rd     Reg       // destination register
	Rs     Reg       // first source register
	Rt     Reg       // second source register
	Imm    mem.Value // immediate operand (when UseImm, or for OpLoadImm/OpAddImm)
	UseImm bool      // second operand / store value is Imm rather than a register
	Addr   mem.Addr  // memory address for memory opcodes
	Sym    string    // symbol name of Addr, for diagnostics
	Target int       // branch target: instruction index within the thread
}

// String disassembles the instruction.
func (in Instr) String() string {
	loc := in.Sym
	if loc == "" {
		loc = fmt.Sprintf("[%d]", in.Addr)
	}
	src := in.Rt.String()
	if in.UseImm {
		src = fmt.Sprintf("#%d", in.Imm)
	}
	switch in.Op {
	case OpNop, OpHalt, OpFence:
		return in.Op.String()
	case OpLoadImm:
		return fmt.Sprintf("li %v, #%d", in.Rd, in.Imm)
	case OpMov:
		return fmt.Sprintf("mov %v, %v", in.Rd, in.Rs)
	case OpAdd, OpSub:
		return fmt.Sprintf("%v %v, %v, %v", in.Op, in.Rd, in.Rs, in.Rt)
	case OpAddImm:
		return fmt.Sprintf("addi %v, %v, #%d", in.Rd, in.Rs, in.Imm)
	case OpLoad, OpSyncLoad:
		return fmt.Sprintf("%v %v, %s", in.Op, in.Rd, loc)
	case OpStore, OpSyncStore:
		return fmt.Sprintf("%v %s, %s", in.Op, loc, src)
	case OpTAS:
		return fmt.Sprintf("tas %v, %s", in.Rd, loc)
	case OpSwap:
		return fmt.Sprintf("swap %v, %s, %s", in.Rd, loc, src)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%v %v, %s, @%d", in.Op, in.Rs, src, in.Target)
	case OpJmp:
		return fmt.Sprintf("jmp @%d", in.Target)
	default:
		return in.Op.String()
	}
}

// Thread is one sequential instruction stream.
type Thread struct {
	// Name identifies the thread ("P0", "P1", ...).
	Name string
	// Instrs is the instruction sequence; control starts at index 0 and
	// the thread terminates on OpHalt or by running off the end.
	Instrs []Instr
}

// MemOps counts the static memory instructions in the thread.
func (t *Thread) MemOps() int {
	n := 0
	for _, in := range t.Instrs {
		if in.Op.IsMemory() {
			n++
		}
	}
	return n
}

// String disassembles the thread.
func (t *Thread) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", t.Name)
	for i, in := range t.Instrs {
		fmt.Fprintf(&b, "  %3d  %s\n", i, in.String())
	}
	return b.String()
}

// Program is a complete multi-threaded program plus initial memory state
// and the symbol table mapping variable names to addresses.
type Program struct {
	// Name labels the program in reports.
	Name string
	// Threads holds one instruction stream per processor; thread i runs on
	// processor i.
	Threads []Thread
	// Init gives non-zero initial memory contents.
	Init map[mem.Addr]mem.Value
	// Symbols maps variable names to their addresses.
	Symbols map[string]mem.Addr
	// Cond is an optional litmus postcondition ("exists ..."), naming the
	// outcome of interest.
	Cond *Cond
}

// NumThreads returns the number of threads.
func (p *Program) NumThreads() int { return len(p.Threads) }

// AddrOf resolves a symbol name; ok is false when the symbol is unknown.
func (p *Program) AddrOf(name string) (mem.Addr, bool) {
	a, ok := p.Symbols[name]
	return a, ok
}

// SymbolFor returns the name mapped to an address, or "" if none.
func (p *Program) SymbolFor(a mem.Addr) string {
	for name, addr := range p.Symbols {
		if addr == a {
			return name
		}
	}
	return ""
}

// Addresses returns the sorted set of addresses the program can touch:
// every address named by a memory instruction plus every initialized
// address.
func (p *Program) Addresses() []mem.Addr {
	set := make(map[mem.Addr]bool)
	for _, t := range p.Threads {
		for _, in := range t.Instrs {
			if in.Op.IsMemory() {
				set[in.Addr] = true
			}
		}
	}
	for a := range p.Init {
		set[a] = true
	}
	if p.Cond != nil {
		for _, term := range p.Cond.Terms {
			if term.Thread < 0 {
				set[term.Addr] = true
			}
		}
	}
	out := make([]mem.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SyncAddresses returns the sorted set of addresses accessed by at least
// one synchronization operation.
func (p *Program) SyncAddresses() []mem.Addr {
	set := make(map[mem.Addr]bool)
	for _, t := range p.Threads {
		for _, in := range t.Instrs {
			if in.Op.IsMemory() && in.Op.MemKind().IsSync() {
				set[in.Addr] = true
			}
		}
	}
	out := make([]mem.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks structural well-formedness: register numbers in range,
// branch targets within the thread, memory opcodes carrying addresses.
func (p *Program) Validate() error {
	if len(p.Threads) == 0 {
		return fmt.Errorf("program %q has no threads", p.Name)
	}
	for ti := range p.Threads {
		t := &p.Threads[ti]
		for i, in := range t.Instrs {
			// The location string is built lazily: Validate runs on every
			// generated program, and formatting each instruction eagerly
			// dominated the campaign's allocation profile.
			where := func() string { return fmt.Sprintf("%s@%d (%s)", t.Name, i, in) }
			if in.Rd >= NumRegs || in.Rs >= NumRegs || in.Rt >= NumRegs {
				return fmt.Errorf("%s: register out of range", where())
			}
			if in.Op.IsBranch() {
				// Target == len(Instrs) is legal: branching past the last
				// instruction halts the thread.
				if in.Target < 0 || in.Target > len(t.Instrs) {
					return fmt.Errorf("%s: branch target %d out of range [0,%d]", where(), in.Target, len(t.Instrs))
				}
			}
			switch in.Op {
			case OpNop, OpLoadImm, OpMov, OpAdd, OpAddImm, OpSub, OpLoad, OpStore,
				OpSyncLoad, OpSyncStore, OpTAS, OpSwap, OpBeq, OpBne, OpBlt, OpBge,
				OpJmp, OpHalt, OpFence:
			default:
				return fmt.Errorf("%s: unknown opcode %d", where(), in.Op)
			}
		}
	}
	if p.Cond != nil {
		if err := p.Cond.Validate(p); err != nil {
			return err
		}
	}
	return nil
}

// String disassembles the whole program.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	if len(p.Init) > 0 {
		addrs := make([]mem.Addr, 0, len(p.Init))
		for a := range p.Init {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		b.WriteString("init:")
		for _, a := range addrs {
			sym := p.SymbolFor(a)
			if sym == "" {
				sym = fmt.Sprintf("[%d]", a)
			}
			fmt.Fprintf(&b, " %s=%d", sym, p.Init[a])
		}
		b.WriteByte('\n')
	}
	for i := range p.Threads {
		b.WriteString(p.Threads[i].String())
	}
	return b.String()
}
