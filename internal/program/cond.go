package program

import (
	"fmt"
	"strings"

	"weakorder/internal/mem"
)

// Cond is a litmus postcondition: a conjunction of final-state terms over
// thread registers and memory locations, in the herd/litmus "exists"
// tradition. A program's Cond names the outcome of interest — usually
// the outcome sequential consistency forbids.
type Cond struct {
	// Terms are conjoined.
	Terms []CondTerm
}

// CondTerm is one conjunct: either a register observation (Thread >= 0)
// or a final memory value (Thread < 0, Addr used).
type CondTerm struct {
	// Thread is the observing thread for register terms; -1 for memory
	// terms.
	Thread int
	// Reg is the register (register terms).
	Reg Reg
	// Addr is the location (memory terms).
	Addr mem.Addr
	// Sym is Addr's name, for rendering.
	Sym string
	// Value is the expected value.
	Value mem.Value
}

// String renders the term like "P0:r1=0" or "x=2".
func (t CondTerm) String() string {
	if t.Thread >= 0 {
		return fmt.Sprintf("P%d:%v=%d", t.Thread, t.Reg, t.Value)
	}
	loc := t.Sym
	if loc == "" {
		loc = fmt.Sprintf("[%d]", t.Addr)
	}
	return fmt.Sprintf("%s=%d", loc, t.Value)
}

// String renders the condition like "exists P0:r0=0 & P1:r0=0".
func (c *Cond) String() string {
	parts := make([]string, len(c.Terms))
	for i, t := range c.Terms {
		parts[i] = t.String()
	}
	return "exists " + strings.Join(parts, " & ")
}

// RegFile is one thread's final register values.
type RegFile = [NumRegs]mem.Value

// Eval evaluates the condition against final register files (indexed by
// thread) and final memory.
func (c *Cond) Eval(regs []RegFile, final map[mem.Addr]mem.Value) bool {
	for _, t := range c.Terms {
		if t.Thread >= 0 {
			if t.Thread >= len(regs) || regs[t.Thread][t.Reg] != t.Value {
				return false
			}
		} else if final[t.Addr] != t.Value {
			return false
		}
	}
	return true
}

// Validate checks thread indices against the program.
func (c *Cond) Validate(p *Program) error {
	for _, t := range c.Terms {
		if t.Thread >= p.NumThreads() {
			return fmt.Errorf("condition term %v references thread %d of %d", t, t.Thread, p.NumThreads())
		}
		if t.Thread >= 0 && t.Reg >= NumRegs {
			return fmt.Errorf("condition term %v: register out of range", t)
		}
	}
	return nil
}
