package program

import (
	"fmt"

	"weakorder/internal/mem"
)

// Builder assembles a Program: it allocates symbol addresses, creates
// threads, and resolves branch labels when Build is called.
//
// Usage:
//
//	b := program.NewBuilder("dekker")
//	x, y := b.Var("x"), b.Var("y")
//	p0 := b.Thread()
//	p0.StoreImm(x, 1)
//	p0.Load(program.R0, y)
//	prog, err := b.Build()
type Builder struct {
	name    string
	symbols map[string]mem.Addr
	next    mem.Addr
	init    map[mem.Addr]mem.Value
	threads []*ThreadBuilder
	cond    *Cond
	err     error
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		symbols: make(map[string]mem.Addr),
		init:    make(map[mem.Addr]mem.Value),
	}
}

// Var allocates (or returns the existing) address for the named variable.
// Distinct names get distinct addresses, assigned consecutively from 0.
func (b *Builder) Var(name string) mem.Addr {
	if a, ok := b.symbols[name]; ok {
		return a
	}
	a := b.next
	b.next++
	b.symbols[name] = a
	return a
}

// VarAt binds name to an explicit address. It records an error if the name
// is already bound elsewhere.
func (b *Builder) VarAt(name string, a mem.Addr) mem.Addr {
	if old, ok := b.symbols[name]; ok && old != a {
		b.fail(fmt.Errorf("symbol %q already bound to address %d", name, old))
		return old
	}
	b.symbols[name] = a
	if a >= b.next {
		b.next = a + 1
	}
	return a
}

// Init sets the initial value of an address.
func (b *Builder) Init(a mem.Addr, v mem.Value) { b.init[a] = v }

// InitVar sets the initial value of a named variable, allocating it if
// necessary.
func (b *Builder) InitVar(name string, v mem.Value) { b.init[b.Var(name)] = v }

// SetCond attaches a postcondition to the program under construction.
func (b *Builder) SetCond(c *Cond) { b.cond = c }

// Thread appends a new thread named P<i> and returns its builder.
func (b *Builder) Thread() *ThreadBuilder {
	return b.NamedThread(fmt.Sprintf("P%d", len(b.threads)))
}

// NamedThread appends a new thread with an explicit name.
func (b *Builder) NamedThread(name string) *ThreadBuilder {
	tb := &ThreadBuilder{parent: b, name: name, labels: make(map[string]int)}
	b.threads = append(b.threads, tb)
	return tb
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

func (b *Builder) symbolFor(a mem.Addr) string {
	for name, addr := range b.symbols {
		if addr == a {
			return name
		}
	}
	return ""
}

// Build resolves labels and returns the validated Program. The first error
// encountered during construction is returned here.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	p := &Program{
		Name:    b.name,
		Init:    make(map[mem.Addr]mem.Value, len(b.init)),
		Symbols: make(map[string]mem.Addr, len(b.symbols)),
	}
	for a, v := range b.init {
		p.Init[a] = v
	}
	for s, a := range b.symbols {
		p.Symbols[s] = a
	}
	p.Cond = b.cond
	for _, tb := range b.threads {
		t, err := tb.finish()
		if err != nil {
			return nil, err
		}
		p.Threads = append(p.Threads, t)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; intended for tests and
// hand-written litmus programs whose construction cannot fail.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// ThreadBuilder accumulates instructions for one thread. Branch targets
// are symbolic labels resolved at Build time; a label may be referenced
// before it is defined (forward branch).
type ThreadBuilder struct {
	parent  *Builder
	name    string
	instrs  []Instr
	labels  map[string]int
	patches []patch
}

type patch struct {
	instr int
	label string
}

// Name returns the thread's name.
func (t *ThreadBuilder) Name() string { return t.name }

// Len returns the number of instructions emitted so far.
func (t *ThreadBuilder) Len() int { return len(t.instrs) }

func (t *ThreadBuilder) emit(in Instr) *ThreadBuilder {
	if in.Sym == "" && in.Op.IsMemory() {
		in.Sym = t.parent.symbolFor(in.Addr)
	}
	t.instrs = append(t.instrs, in)
	return t
}

// Label defines a label at the current position.
func (t *ThreadBuilder) Label(name string) *ThreadBuilder {
	if _, dup := t.labels[name]; dup {
		t.parent.fail(fmt.Errorf("%s: duplicate label %q", t.name, name))
		return t
	}
	t.labels[name] = len(t.instrs)
	return t
}

func (t *ThreadBuilder) branch(op Opcode, rs Reg, rt Reg, imm mem.Value, useImm bool, label string) *ThreadBuilder {
	t.patches = append(t.patches, patch{instr: len(t.instrs), label: label})
	return t.emit(Instr{Op: op, Rs: rs, Rt: rt, Imm: imm, UseImm: useImm})
}

// Nop emits a no-op.
func (t *ThreadBuilder) Nop() *ThreadBuilder { return t.emit(Instr{Op: OpNop}) }

// LoadImm emits rd <- imm.
func (t *ThreadBuilder) LoadImm(rd Reg, imm mem.Value) *ThreadBuilder {
	return t.emit(Instr{Op: OpLoadImm, Rd: rd, Imm: imm})
}

// Mov emits rd <- rs.
func (t *ThreadBuilder) Mov(rd, rs Reg) *ThreadBuilder {
	return t.emit(Instr{Op: OpMov, Rd: rd, Rs: rs})
}

// Add emits rd <- rs + rt.
func (t *ThreadBuilder) Add(rd, rs, rt Reg) *ThreadBuilder {
	return t.emit(Instr{Op: OpAdd, Rd: rd, Rs: rs, Rt: rt})
}

// AddImm emits rd <- rs + imm.
func (t *ThreadBuilder) AddImm(rd, rs Reg, imm mem.Value) *ThreadBuilder {
	return t.emit(Instr{Op: OpAddImm, Rd: rd, Rs: rs, Imm: imm})
}

// Sub emits rd <- rs - rt.
func (t *ThreadBuilder) Sub(rd, rs, rt Reg) *ThreadBuilder {
	return t.emit(Instr{Op: OpSub, Rd: rd, Rs: rs, Rt: rt})
}

// Load emits a data read of addr into rd.
func (t *ThreadBuilder) Load(rd Reg, addr mem.Addr) *ThreadBuilder {
	return t.emit(Instr{Op: OpLoad, Rd: rd, Addr: addr})
}

// Store emits a data write of rs to addr.
func (t *ThreadBuilder) Store(addr mem.Addr, rs Reg) *ThreadBuilder {
	return t.emit(Instr{Op: OpStore, Rs: rs, Addr: addr})
}

// StoreImm emits a data write of imm to addr.
func (t *ThreadBuilder) StoreImm(addr mem.Addr, imm mem.Value) *ThreadBuilder {
	return t.emit(Instr{Op: OpStore, Imm: imm, UseImm: true, Addr: addr})
}

// SyncLoad emits a read-only synchronization operation (Test) of addr
// into rd.
func (t *ThreadBuilder) SyncLoad(rd Reg, addr mem.Addr) *ThreadBuilder {
	return t.emit(Instr{Op: OpSyncLoad, Rd: rd, Addr: addr})
}

// SyncStore emits a write-only synchronization operation writing rs.
func (t *ThreadBuilder) SyncStore(addr mem.Addr, rs Reg) *ThreadBuilder {
	return t.emit(Instr{Op: OpSyncStore, Rs: rs, Addr: addr})
}

// SyncStoreImm emits a write-only synchronization operation writing imm
// (Set when imm != 0, Unset when imm == 0).
func (t *ThreadBuilder) SyncStoreImm(addr mem.Addr, imm mem.Value) *ThreadBuilder {
	return t.emit(Instr{Op: OpSyncStore, Imm: imm, UseImm: true, Addr: addr})
}

// TAS emits a TestAndSet: rd <- M[addr]; M[addr] <- 1 atomically.
func (t *ThreadBuilder) TAS(rd Reg, addr mem.Addr) *ThreadBuilder {
	return t.emit(Instr{Op: OpTAS, Rd: rd, Addr: addr})
}

// Swap emits a general atomic read-modify-write: rd <- M[addr];
// M[addr] <- rs.
func (t *ThreadBuilder) Swap(rd Reg, addr mem.Addr, rs Reg) *ThreadBuilder {
	return t.emit(Instr{Op: OpSwap, Rd: rd, Addr: addr, Rs: rs})
}

// SwapImm emits rd <- M[addr]; M[addr] <- imm atomically.
func (t *ThreadBuilder) SwapImm(rd Reg, addr mem.Addr, imm mem.Value) *ThreadBuilder {
	return t.emit(Instr{Op: OpSwap, Rd: rd, Addr: addr, Imm: imm, UseImm: true})
}

// Beq emits: branch to label when rs == rt.
func (t *ThreadBuilder) Beq(rs, rt Reg, label string) *ThreadBuilder {
	return t.branch(OpBeq, rs, rt, 0, false, label)
}

// BeqImm emits: branch to label when rs == imm.
func (t *ThreadBuilder) BeqImm(rs Reg, imm mem.Value, label string) *ThreadBuilder {
	return t.branch(OpBeq, rs, 0, imm, true, label)
}

// Bne emits: branch to label when rs != rt.
func (t *ThreadBuilder) Bne(rs, rt Reg, label string) *ThreadBuilder {
	return t.branch(OpBne, rs, rt, 0, false, label)
}

// BneImm emits: branch to label when rs != imm.
func (t *ThreadBuilder) BneImm(rs Reg, imm mem.Value, label string) *ThreadBuilder {
	return t.branch(OpBne, rs, 0, imm, true, label)
}

// Blt emits: branch to label when rs < rt.
func (t *ThreadBuilder) Blt(rs, rt Reg, label string) *ThreadBuilder {
	return t.branch(OpBlt, rs, rt, 0, false, label)
}

// BltImm emits: branch to label when rs < imm.
func (t *ThreadBuilder) BltImm(rs Reg, imm mem.Value, label string) *ThreadBuilder {
	return t.branch(OpBlt, rs, 0, imm, true, label)
}

// Bge emits: branch to label when rs >= rt.
func (t *ThreadBuilder) Bge(rs, rt Reg, label string) *ThreadBuilder {
	return t.branch(OpBge, rs, rt, 0, false, label)
}

// BgeImm emits: branch to label when rs >= imm.
func (t *ThreadBuilder) BgeImm(rs Reg, imm mem.Value, label string) *ThreadBuilder {
	return t.branch(OpBge, rs, 0, imm, true, label)
}

// Jmp emits an unconditional branch to label.
func (t *ThreadBuilder) Jmp(label string) *ThreadBuilder {
	t.patches = append(t.patches, patch{instr: len(t.instrs), label: label})
	return t.emit(Instr{Op: OpJmp})
}

// Halt terminates the thread.
func (t *ThreadBuilder) Halt() *ThreadBuilder { return t.emit(Instr{Op: OpHalt}) }

// Fence emits an RP3-style fence: the processor waits for all previous
// accesses to be globally performed before issuing any further access.
func (t *ThreadBuilder) Fence() *ThreadBuilder { return t.emit(Instr{Op: OpFence}) }

func (t *ThreadBuilder) finish() (Thread, error) {
	instrs := make([]Instr, len(t.instrs))
	copy(instrs, t.instrs)
	for _, p := range t.patches {
		target, ok := t.labels[p.label]
		if !ok {
			return Thread{}, fmt.Errorf("%s: undefined label %q", t.name, p.label)
		}
		instrs[p.instr].Target = target
	}
	return Thread{Name: t.name, Instrs: instrs}, nil
}
