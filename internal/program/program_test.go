package program

import (
	"strings"
	"testing"

	"weakorder/internal/mem"
)

func TestBuilderVarAllocation(t *testing.T) {
	b := NewBuilder("t")
	x := b.Var("x")
	y := b.Var("y")
	if x == y {
		t.Fatal("distinct names must get distinct addresses")
	}
	if again := b.Var("x"); again != x {
		t.Fatal("repeated Var must return the same address")
	}
	z := b.VarAt("z", 10)
	if z != 10 {
		t.Fatalf("VarAt returned %d, want 10", z)
	}
	if next := b.Var("w"); next != 11 {
		t.Fatalf("allocation after VarAt returned %d, want 11", next)
	}
}

func TestBuilderVarAtConflict(t *testing.T) {
	b := NewBuilder("t")
	b.Var("x") // address 0
	b.VarAt("x", 5)
	b.Thread().Nop()
	if _, err := b.Build(); err == nil {
		t.Fatal("rebinding a symbol to a different address must fail Build")
	}
}

func TestBuildSimpleProgram(t *testing.T) {
	b := NewBuilder("simple")
	x := b.Var("x")
	b.InitVar("x", 5)
	th := b.Thread()
	th.Load(R0, x)
	th.AddImm(R1, R0, 1)
	th.Store(x, R1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumThreads() != 1 {
		t.Fatalf("NumThreads = %d, want 1", p.NumThreads())
	}
	if got := p.Init[x]; got != 5 {
		t.Fatalf("Init[x] = %d, want 5", got)
	}
	if got := p.Threads[0].MemOps(); got != 2 {
		t.Fatalf("MemOps = %d, want 2", got)
	}
	if a, ok := p.AddrOf("x"); !ok || a != x {
		t.Fatalf("AddrOf(x) = %d,%v", a, ok)
	}
	if sym := p.SymbolFor(x); sym != "x" {
		t.Fatalf("SymbolFor = %q, want x", sym)
	}
}

func TestLabelsResolve(t *testing.T) {
	b := NewBuilder("loop")
	x := b.Var("x")
	th := b.Thread()
	th.LoadImm(R0, 3)
	th.Label("top")
	th.Store(x, R0)
	th.AddImm(R0, R0, -1)
	th.BneImm(R0, 0, "top")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	branch := p.Threads[0].Instrs[3]
	if branch.Op != OpBne || branch.Target != 1 {
		t.Fatalf("branch = %+v, want OpBne target 1", branch)
	}
}

func TestForwardLabel(t *testing.T) {
	b := NewBuilder("fwd")
	th := b.Thread()
	th.LoadImm(R0, 1)
	th.BeqImm(R0, 1, "end")
	th.LoadImm(R0, 2)
	th.Label("end")
	th.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Threads[0].Instrs[1].Target; got != 3 {
		t.Fatalf("forward branch target = %d, want 3", got)
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Thread().Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("undefined label must fail Build")
	}
}

func TestDuplicateLabel(t *testing.T) {
	b := NewBuilder("bad")
	th := b.Thread()
	th.Label("a")
	th.Nop()
	th.Label("a")
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate label must fail Build")
	}
}

func TestValidateRejectsEmptyProgram(t *testing.T) {
	p := &Program{Name: "empty"}
	if err := p.Validate(); err == nil {
		t.Fatal("empty program must fail validation")
	}
}

func TestValidateRejectsBadBranchTarget(t *testing.T) {
	p := &Program{
		Name:    "bad",
		Threads: []Thread{{Name: "P0", Instrs: []Instr{{Op: OpJmp, Target: 5}}}},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range branch target must fail validation")
	}
}

func TestOpcodeMemKind(t *testing.T) {
	cases := map[Opcode]mem.Kind{
		OpLoad:      mem.Read,
		OpStore:     mem.Write,
		OpSyncLoad:  mem.SyncRead,
		OpSyncStore: mem.SyncWrite,
		OpTAS:       mem.SyncRMW,
		OpSwap:      mem.SyncRMW,
	}
	for op, want := range cases {
		if got := op.MemKind(); got != want {
			t.Errorf("%v.MemKind() = %v, want %v", op, got, want)
		}
		if !op.IsMemory() {
			t.Errorf("%v.IsMemory() = false", op)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MemKind on a non-memory opcode must panic")
		}
	}()
	OpAdd.MemKind()
}

func TestAddressesAndSyncAddresses(t *testing.T) {
	b := NewBuilder("addrs")
	x, s := b.Var("x"), b.Var("s")
	b.InitVar("extra", 1)
	th := b.Thread()
	th.Store(x, R0)
	th.TAS(R1, s)
	p := b.MustBuild()

	addrs := p.Addresses()
	if len(addrs) != 3 {
		t.Fatalf("Addresses = %v, want 3 entries", addrs)
	}
	sync := p.SyncAddresses()
	if len(sync) != 1 || sync[0] != s {
		t.Fatalf("SyncAddresses = %v, want [%d]", sync, s)
	}
}

func TestDisassembly(t *testing.T) {
	b := NewBuilder("dis")
	x := b.Var("x")
	th := b.Thread()
	th.StoreImm(x, 7)
	th.Load(R2, x)
	th.TAS(R0, x)
	p := b.MustBuild()
	text := p.String()
	for _, want := range []string{"st x, #7", "ld r2, x", "tas r0, x"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestFenceInstruction(t *testing.T) {
	b := NewBuilder("f")
	th := b.Thread()
	th.StoreImm(b.Var("x"), 1)
	th.Fence()
	p := b.MustBuild()
	in := p.Threads[0].Instrs[1]
	if in.Op != OpFence || in.Op.IsMemory() || in.Op.IsBranch() {
		t.Fatalf("fence instr misclassified: %+v", in)
	}
	if in.String() != "fence" {
		t.Errorf("fence disassembly = %q", in.String())
	}
}

func TestThreadNaming(t *testing.T) {
	b := NewBuilder("names")
	b.Thread().Nop()
	b.NamedThread("writer").Nop()
	p := b.MustBuild()
	if p.Threads[0].Name != "P0" || p.Threads[1].Name != "writer" {
		t.Fatalf("thread names = %q, %q", p.Threads[0].Name, p.Threads[1].Name)
	}
}
