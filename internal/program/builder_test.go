package program

import (
	"strings"
	"testing"

	"weakorder/internal/mem"
)

// TestBuilderFullInstructionSurface drives every ThreadBuilder emitter and
// checks the assembled instructions decode as expected.
func TestBuilderFullInstructionSurface(t *testing.T) {
	b := NewBuilder("surface")
	x, s := b.Var("x"), b.Var("s")
	b.Init(x, 3)
	th := b.Thread()
	if th.Name() != "P0" {
		t.Errorf("Name = %q", th.Name())
	}
	th.Nop()
	th.LoadImm(R0, 1)
	th.Mov(R1, R0)
	th.Add(R2, R0, R1)
	th.AddImm(R3, R2, 4)
	th.Sub(R4, R3, R0)
	th.Load(R5, x)
	th.Store(x, R5)
	th.StoreImm(x, 9)
	th.SyncLoad(R6, s)
	th.SyncStore(s, R6)
	th.SyncStoreImm(s, 0)
	th.TAS(R7, s)
	th.Swap(R0, s, R1)
	th.SwapImm(R0, s, 5)
	th.Label("top")
	th.Beq(R0, R1, "top")
	th.BeqImm(R0, 1, "top")
	th.Bne(R0, R1, "top")
	th.BneImm(R0, 1, "top")
	th.Blt(R0, R1, "top")
	th.BltImm(R0, 1, "top")
	th.Bge(R0, R1, "top")
	th.BgeImm(R0, 1, "top")
	th.Jmp("top")
	th.Fence()
	th.Halt()
	if th.Len() == 0 {
		t.Fatal("Len must count instructions")
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Init[x] != 3 {
		t.Errorf("Init = %d", p.Init[x])
	}
	wantOps := []Opcode{
		OpNop, OpLoadImm, OpMov, OpAdd, OpAddImm, OpSub, OpLoad, OpStore,
		OpStore, OpSyncLoad, OpSyncStore, OpSyncStore, OpTAS, OpSwap, OpSwap,
		OpBeq, OpBeq, OpBne, OpBne, OpBlt, OpBlt, OpBge, OpBge, OpJmp,
		OpFence, OpHalt,
	}
	got := p.Threads[0].Instrs
	if len(got) != len(wantOps) {
		t.Fatalf("emitted %d instructions, want %d", len(got), len(wantOps))
	}
	for i, want := range wantOps {
		if got[i].Op != want {
			t.Errorf("instr %d: op %v, want %v", i, got[i].Op, want)
		}
	}
	// Every branch targets the label.
	for i, in := range got {
		if in.Op.IsBranch() && in.Target != 15 {
			t.Errorf("instr %d: target %d, want 15", i, in.Target)
		}
	}
	// Full-program disassembly mentions every mnemonic.
	text := p.String()
	for _, m := range []string{"nop", "li", "mov", "add", "addi", "sub",
		"ld", "st", "sld", "sst", "tas", "swap", "beq", "bne", "blt", "bge",
		"jmp", "fence", "halt", "init:"} {
		if !strings.Contains(text, m) {
			t.Errorf("disassembly missing %q", m)
		}
	}
}

func TestInstrStringUnnamedAddress(t *testing.T) {
	in := Instr{Op: OpLoad, Rd: R2, Addr: 7}
	if got := in.String(); got != "ld r2, [7]" {
		t.Errorf("String = %q", got)
	}
	bad := Instr{Op: Opcode(99)}
	if !strings.Contains(bad.String(), "Opcode(99)") {
		t.Errorf("unknown opcode String = %q", bad.String())
	}
	if !strings.Contains(Opcode(99).String(), "Opcode(99)") {
		t.Error("Opcode.String for unknown value")
	}
	if Reg(9).String() != "r9" {
		t.Error("Reg.String")
	}
}

func TestValidateRejectsBadRegister(t *testing.T) {
	p := &Program{
		Name:    "bad",
		Threads: []Thread{{Name: "P0", Instrs: []Instr{{Op: OpMov, Rd: 200}}}},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("register 200 must fail validation")
	}
}

func TestValidateRejectsUnknownOpcode(t *testing.T) {
	p := &Program{
		Name:    "bad",
		Threads: []Thread{{Name: "P0", Instrs: []Instr{{Op: Opcode(99)}}}},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("unknown opcode must fail validation")
	}
}

func TestSymbolForUnknown(t *testing.T) {
	p := &Program{Name: "x", Symbols: map[string]mem.Addr{"a": 1}}
	if got := p.SymbolFor(2); got != "" {
		t.Errorf("SymbolFor(2) = %q", got)
	}
	if _, ok := p.AddrOf("zz"); ok {
		t.Error("AddrOf unknown must report false")
	}
}
