// Package cpu models one processor: an in-order front end over the
// program IR, a write buffer with read forwarding, blocking reads, and
// the policy-specific stall rules that distinguish sequentially
// consistent hardware, unconstrained hardware, weak ordering per
// Definition 1, and the paper's new implementation (Section 5.3).
package cpu

import (
	"fmt"
	"strings"

	"weakorder/internal/cache"
	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/sim"
)

// MemPort is the processor's view of its memory system: a cache (package
// cache) or a flat memory interface (the no-cache configurations).
type MemPort interface {
	// Issue starts a memory operation; the port calls the request's
	// OnCommit/OnGlobal callbacks as the operation progresses.
	Issue(r *cache.Req)
	// Counter returns the paper's outstanding-access counter.
	Counter() int
	// Busy reports whether any transaction is outstanding.
	Busy() bool
}

// Reason classifies processor stall cycles.
type Reason int

// Stall reasons.
const (
	// ReadWait: a blocking read is outstanding.
	ReadWait Reason = iota
	// SyncCommitWait: waiting for a synchronization operation to commit
	// (procure the line and perform the operation) — the only
	// synchronization stall under WO-Def2.
	SyncCommitWait
	// SyncGlobalWait: waiting for an issued synchronization operation to
	// be globally performed (Definition 1 condition 3; also SC's
	// per-access wait on sync ops).
	SyncGlobalWait
	// DrainPreSync: waiting for all previous accesses to be globally
	// performed before issuing a synchronization operation (Definition 1
	// condition 2).
	DrainPreSync
	// BufferDrain: waiting for the write buffer to finish issuing before
	// a synchronization operation may issue (program-order generation).
	BufferDrain
	// BufferFull: the write buffer has no free entry.
	BufferFull
	// PerAccessWait: SC's wait for the previous data access to be
	// globally performed.
	PerAccessWait
	// FenceWait: an explicit fence instruction is draining (all previous
	// accesses globally performed — the RP3 option).
	FenceWait
)

var reasonNames = [...]string{
	ReadWait:       "read-wait",
	SyncCommitWait: "sync-commit",
	SyncGlobalWait: "sync-global",
	DrainPreSync:   "drain-pre-sync",
	BufferDrain:    "buffer-drain",
	BufferFull:     "buffer-full",
	PerAccessWait:  "per-access",
	FenceWait:      "fence",
}

// NumReasons is the count of stall reasons (for fixed-size arrays).
const NumReasons = len(reasonNames)

// stallSpanNames are the precomputed timeline span labels — built once
// so recording a stall span never allocates on the hot path.
var stallSpanNames = func() (out [NumReasons]string) {
	for i, n := range reasonNames {
		out[i] = "stall:" + n
	}
	return
}()

// MetricName returns the reason's registry-friendly name (dashes to
// underscores), used for per-cause stall counters.
func (r Reason) MetricName() string {
	return strings.ReplaceAll(r.String(), "-", "_")
}

// String names the reason.
func (r Reason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return fmt.Sprintf("Reason(%d)", int(r))
}

// Stats aggregates one processor's activity.
type Stats struct {
	// Stall counts cycles stalled, by reason.
	Stall [NumReasons]uint64
	// MemOps counts dispatched memory operations; SyncOps the subset that
	// are synchronization operations.
	MemOps  uint64
	SyncOps uint64
	// Forwards counts reads satisfied from the write buffer.
	Forwards uint64
	// DoneAt is the cycle the processor halted (0 while running).
	DoneAt uint64
}

// TotalStall sums all stall cycles.
func (s *Stats) TotalStall() uint64 {
	var t uint64
	for _, v := range s.Stall {
		t += v
	}
	return t
}

// SyncStall sums the synchronization-related stall reasons — the paper's
// Figure 3 comparison quantity.
func (s *Stats) SyncStall() uint64 {
	return s.Stall[SyncCommitWait] + s.Stall[SyncGlobalWait] +
		s.Stall[DrainPreSync] + s.Stall[BufferDrain]
}

// Config parameterizes a processor.
type Config struct {
	// ID is the processor number (and its cache's endpoint id).
	ID int
	// ThreadID is the logical thread id operations are attributed to;
	// zero defaults to ID. Migration (Install) overrides it.
	ThreadID int
	// Policy selects the consistency enforcement rules.
	Policy policy.Kind
	// WriteBufferSize bounds unissued buffered writes (default 8).
	WriteBufferSize int
	// MaxOutstandingWrites bounds writes issued to the memory system but
	// not yet committed — the lockup-free write parallelism (default 4).
	MaxOutstandingWrites int
	// MaxLocalRun bounds consecutive local instructions per cycle slot
	// (default 10000; a local infinite loop halts the simulation with an
	// error via the machine's watchdog).
	MaxLocalRun int
	// Track, when non-nil, receives stall intervals as timeline spans
	// ("stall:<reason>"). Recording is a no-op on nil and never perturbs
	// execution.
	Track *metrics.Track
}

type procState int

const (
	stRun procState = iota
	stStalled
	stHalted
	stSuspended
)

type wbEntry struct {
	addr mem.Addr
	val  mem.Value
	op   mem.Op   // trace template
	enq  sim.Time // cycle the write entered the buffer
}

// TraceSink receives each memory operation at commit time, in commit
// order.
type TraceSink func(op mem.Op)

// Proc is one processor core.
type Proc struct {
	k      *sim.Kernel
	cfg    Config
	port   MemPort
	thread program.Thread
	sink   TraceSink

	pc     int
	regs   [program.NumRegs]mem.Value
	nextIx int
	tid    int // logical thread id (survives migration)

	suspendReq bool

	state       procState
	stallReason Reason
	// unstall checks a poll-based stall condition each cycle; nil for
	// event-based stalls (cleared by a callback).
	unstall func() bool

	wbuf         []wbEntry
	issuedWrites int // writes issued to the port, not yet committed

	// finalRegs holds the registers at the thread's natural halt
	// (hasFinal false while running or after a migration export).
	finalRegs program.RegFile
	hasFinal  bool

	// free pools retired procReqs: every memory dispatch borrows one,
	// so steady-state execution allocates no requests or callback
	// closures (see procReq).
	free []*procReq

	// Poll-based stall predicates, bound once per processor so parking
	// on them never allocates a closure.
	fenceDone        func() bool
	bufferNotFull    func() bool
	drainPreSyncDone func() bool
	bufferEmpty      func() bool

	stats Stats
	err   error
}

// reqVariant selects a pooled request's commit/global behavior.
type reqVariant uint8

const (
	reqRead       reqVariant = iota
	reqSync                  // synchronization op issued by the front end
	reqDrainWrite            // buffered write issued by Drain
	reqPAWrite               // per-access-global (SC) write
)

// procReq is one pooled in-flight memory request: the cache.Req envelope
// plus the state its callbacks need, with the OnCommit/OnGlobal closures
// allocated once per pool entry and reused for every operation.
type procReq struct {
	p          *Proc
	variant    reqVariant
	rd         program.Reg
	kind       mem.Kind
	waitGlobal bool
	op         mem.Op
	req        cache.Req
	commitFn   func(mem.Value)
	globalFn   func()
}

func (r *procReq) onCommit(v mem.Value) {
	p := r.p
	switch r.variant {
	case reqRead:
		p.regs[r.rd] = v
		r.op.Got = v
		p.emit(r.op)
		if !r.waitGlobal {
			p.resume()
			p.release(r)
		}
	case reqSync:
		if r.kind.ReadsMemory() {
			p.regs[r.rd] = v
			r.op.Got = v
		}
		p.emit(r.op)
		if !r.waitGlobal {
			p.resume()
			p.release(r)
		}
	case reqDrainWrite:
		p.issuedWrites--
		p.emit(r.op)
		p.release(r)
	case reqPAWrite:
		p.emit(r.op) // released by onGlobal
	}
}

func (r *procReq) onGlobal() {
	p := r.p
	p.resume()
	p.release(r)
}

// newReq borrows a pooled request and resets its envelope.
func (p *Proc) newReq(variant reqVariant, kind mem.Kind, addr mem.Addr, data mem.Value, waitGlobal bool) *procReq {
	var r *procReq
	if n := len(p.free); n > 0 {
		r = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		r = &procReq{p: p}
		r.commitFn = r.onCommit
		r.globalFn = r.onGlobal
	}
	r.variant, r.kind, r.waitGlobal = variant, kind, waitGlobal
	r.req = cache.Req{Kind: kind, Addr: addr, Data: data, OnCommit: r.commitFn}
	if waitGlobal || variant == reqPAWrite {
		r.req.OnGlobal = r.globalFn
	}
	return r
}

// release returns a request whose final callback has fired. The memory
// system holds no live reference at that point: a request's last
// callback is invoked only after the port has retired it.
func (p *Proc) release(r *procReq) { p.free = append(p.free, r) }

// New constructs a processor running thread over port.
func New(k *sim.Kernel, cfg Config, thread program.Thread, port MemPort, sink TraceSink) *Proc {
	p := &Proc{k: k, port: port, sink: sink}
	p.fenceDone = func() bool {
		return len(p.wbuf) == 0 && p.issuedWrites == 0 && p.port.Counter() == 0
	}
	p.bufferNotFull = func() bool { return len(p.wbuf) < p.cfg.WriteBufferSize }
	p.drainPreSyncDone = func() bool {
		return len(p.wbuf) == 0 && p.port.Counter() == 0 && p.issuedWrites == 0
	}
	p.bufferEmpty = func() bool { return len(p.wbuf) == 0 }
	p.Reset(cfg, thread)
	return p
}

// Reset rewinds the processor to run a new thread on the same kernel and
// port, retaining the request pool and buffer capacity. It applies the
// same defaults as New.
func (p *Proc) Reset(cfg Config, thread program.Thread) {
	if cfg.WriteBufferSize == 0 {
		cfg.WriteBufferSize = 8
	}
	if cfg.MaxOutstandingWrites == 0 {
		cfg.MaxOutstandingWrites = 4
	}
	if cfg.MaxLocalRun == 0 {
		cfg.MaxLocalRun = 10_000
	}
	p.cfg = cfg
	p.thread = thread
	p.pc = 0
	p.regs = [program.NumRegs]mem.Value{}
	p.nextIx = 0
	p.suspendReq = false
	p.state = stRun
	p.stallReason = 0
	p.unstall = nil
	p.wbuf = p.wbuf[:0]
	p.issuedWrites = 0
	p.finalRegs = program.RegFile{}
	p.hasFinal = false
	p.stats = Stats{}
	p.err = nil
	p.tid = cfg.ThreadID
	if p.tid == 0 {
		p.tid = cfg.ID
	}
	if len(thread.Instrs) == 0 {
		p.state = stHalted
	}
}

// Err returns the first execution error (e.g. local infinite loop).
func (p *Proc) Err() error { return p.err }

// Halted reports whether the processor finished its program AND drained
// its write buffer.
func (p *Proc) Halted() bool { return p.state == stHalted && len(p.wbuf) == 0 }

// Stats returns processor statistics.
func (p *Proc) Stats() Stats { return p.stats }

// Reg returns a register value (for tests).
func (p *Proc) Reg(r program.Reg) mem.Value { return p.regs[r] }

// FinalRegs returns the thread's registers at its natural halt; ok is
// false while the thread is still running, was retired after a
// migration export, or never ran a thread.
func (p *Proc) FinalRegs() (program.RegFile, bool) {
	if !p.hasFinal {
		return program.RegFile{}, false
	}
	return p.finalRegs, true
}

// StallReason returns the current stall reason; meaningful only while
// stalled (for diagnostics).
func (p *Proc) StallReason() (Reason, bool) {
	return p.stallReason, p.state == stStalled
}

// Tick advances the processor's front end by one cycle. The machine runs
// every front end before any write buffer drains (Drain): a read
// dispatched this cycle reaches the memory system ahead of older buffered
// writes — the read-bypasses-write relaxation whose consequences Figure 1
// catalogs.
func (p *Proc) Tick() {
	if p.err != nil {
		return
	}
	switch p.state {
	case stHalted, stSuspended:
	case stStalled:
		p.stats.Stall[p.stallReason]++
		if p.unstall != nil && p.unstall() {
			p.unstall = nil
			p.state = stRun
			p.cfg.Track.End(p.k.Now())
		}
	case stRun:
		if p.suspendReq {
			// A pending context switch stops the front end: no new work
			// is dispatched while the buffer and in-flight writes drain.
			if len(p.wbuf) == 0 && p.issuedWrites == 0 {
				p.state = stSuspended
			}
			return
		}
		p.step()
	}
}

// Quiescent reports whether, absent new kernel events, the processor is
// guaranteed to do nothing on subsequent cycles: the front end is
// halted, suspended, or parked on a stall that is event-cleared or
// whose poll condition is currently false, and the write buffer cannot
// issue (empty, or at the outstanding-write bound). Every poll
// condition and Drain's gate depend only on state changed by kernel
// events, so quiescence persists until the next event fires — the
// invariant behind the machine's idle-cycle fast-forward. Stall-cycle
// accounting is the one per-cycle effect a quiescent processor still
// accrues; fast-forwarding callers restore it with AddStallCycles.
func (p *Proc) Quiescent() bool {
	switch p.state {
	case stHalted, stSuspended:
	case stStalled:
		if p.unstall != nil && p.unstall() {
			return false
		}
	default:
		return false
	}
	return len(p.wbuf) == 0 || p.issuedWrites >= p.cfg.MaxOutstandingWrites
}

// AddStallCycles accounts n skipped cycles to the current stall reason —
// the fast-forward replacement for the per-cycle increment in Tick.
func (p *Proc) AddStallCycles(n uint64) {
	if p.state == stStalled {
		p.stats.Stall[p.stallReason] += n
	}
}

// Drain issues one buffered write; a write issues no earlier than the
// cycle after it entered the buffer, and no more than
// MaxOutstandingWrites may be in flight (lockup-free but bounded). The
// machine calls Drain after all front ends have ticked.
func (p *Proc) Drain() {
	if len(p.wbuf) == 0 || p.wbuf[0].enq >= p.k.Now() || p.issuedWrites >= p.cfg.MaxOutstandingWrites {
		return
	}
	e := p.wbuf[0]
	// Pop by shifting in place: the buffer is tiny and the backing array
	// is retained, so draining never reallocates.
	copy(p.wbuf, p.wbuf[1:])
	p.wbuf = p.wbuf[:len(p.wbuf)-1]
	p.issuedWrites++
	r := p.newReq(reqDrainWrite, mem.Write, e.addr, e.val, false)
	r.op = e.op
	p.port.Issue(&r.req)
}

// stall parks the processor; cond (optional) is polled each cycle.
func (p *Proc) stall(r Reason, cond func() bool) {
	p.state = stStalled
	p.stallReason = r
	p.unstall = cond
	p.cfg.Track.Begin(stallSpanNames[r], p.k.Now())
}

// resume is used by event callbacks to restart the processor.
func (p *Proc) resume() {
	if p.state == stStalled {
		p.state = stRun
		p.unstall = nil
		p.cfg.Track.End(p.k.Now())
	}
}

// emit sends a committed operation to the trace sink.
func (p *Proc) emit(op mem.Op) {
	if p.sink != nil {
		p.sink(op)
	}
}

// step executes instructions until it consumes the cycle: one memory
// dispatch, a stall, or a halt. Local register instructions execute for
// free up to MaxLocalRun (the front end is not the bottleneck under
// study; memory behavior is).
func (p *Proc) step() {
	for local := 0; ; local++ {
		if local > p.cfg.MaxLocalRun {
			p.err = fmt.Errorf("cpu %d: local infinite loop at pc %d", p.cfg.ID, p.pc)
			return
		}
		if p.pc < 0 || p.pc >= len(p.thread.Instrs) {
			p.state = stHalted
			p.stats.DoneAt = uint64(p.k.Now())
			p.finalRegs = p.regs
			p.hasFinal = true
			return
		}
		in := p.thread.Instrs[p.pc]
		if in.Op.IsMemory() {
			p.dispatch(in)
			return
		}
		if in.Op == program.OpFence {
			p.pc++
			if len(p.wbuf) > 0 || p.issuedWrites > 0 || p.port.Counter() > 0 {
				p.stall(FenceWait, p.fenceDone)
			}
			return // the fence consumes the cycle even when already drained
		}
		if halted := p.execLocal(in); halted {
			p.state = stHalted
			p.stats.DoneAt = uint64(p.k.Now())
			p.finalRegs = p.regs
			p.hasFinal = true
			return
		}
	}
}

// execLocal mirrors the idealized interpreter's local semantics.
func (p *Proc) execLocal(in program.Instr) bool {
	operand2 := func() mem.Value {
		if in.UseImm {
			return in.Imm
		}
		return p.regs[in.Rt]
	}
	switch in.Op {
	case program.OpNop:
	case program.OpLoadImm:
		p.regs[in.Rd] = in.Imm
	case program.OpMov:
		p.regs[in.Rd] = p.regs[in.Rs]
	case program.OpAdd:
		p.regs[in.Rd] = p.regs[in.Rs] + p.regs[in.Rt]
	case program.OpAddImm:
		p.regs[in.Rd] = p.regs[in.Rs] + in.Imm
	case program.OpSub:
		p.regs[in.Rd] = p.regs[in.Rs] - p.regs[in.Rt]
	case program.OpBeq:
		if p.regs[in.Rs] == operand2() {
			p.pc = in.Target
			return false
		}
	case program.OpBne:
		if p.regs[in.Rs] != operand2() {
			p.pc = in.Target
			return false
		}
	case program.OpBlt:
		if p.regs[in.Rs] < operand2() {
			p.pc = in.Target
			return false
		}
	case program.OpBge:
		if p.regs[in.Rs] >= operand2() {
			p.pc = in.Target
			return false
		}
	case program.OpJmp:
		p.pc = in.Target
		return false
	case program.OpHalt:
		return true
	default:
		panic(fmt.Sprintf("cpu: non-local opcode %v", in.Op))
	}
	p.pc++
	return false
}

// opTemplate builds the trace record for the memory instruction at pc.
func (p *Proc) opTemplate(in program.Instr, kind mem.Kind) mem.Op {
	op := mem.Op{
		Proc:  p.tid,
		Index: p.nextIx,
		Kind:  kind,
		Addr:  in.Addr,
		Label: in.Sym,
	}
	p.nextIx++
	p.stats.MemOps++
	if kind.IsSync() {
		p.stats.SyncOps++
	}
	return op
}

func (p *Proc) storeValue(in program.Instr) mem.Value {
	if in.UseImm {
		return in.Imm
	}
	return p.regs[in.Rs]
}

// dispatch handles the memory instruction at pc per the policy.
func (p *Proc) dispatch(in program.Instr) {
	kind := in.Op.MemKind()
	switch kind {
	case mem.Read:
		p.dispatchRead(in)
	case mem.Write:
		p.dispatchWrite(in)
	default:
		p.dispatchSync(in, kind)
	}
}

func (p *Proc) dispatchRead(in program.Instr) {
	op := p.opTemplate(in, mem.Read)
	p.pc++
	// Read forwarding: the newest buffered write to the same address
	// supplies the value (intra-processor dependency, condition 1).
	if p.cfg.Policy.UsesWriteBuffer() {
		for i := len(p.wbuf) - 1; i >= 0; i-- {
			if p.wbuf[i].addr == in.Addr {
				p.stats.Forwards++
				v := p.wbuf[i].val
				p.regs[in.Rd] = v
				op.Got = v
				p.emit(op)
				return // forwarding consumes the cycle
			}
		}
	}
	waitGlobal := p.cfg.Policy.PerAccessGlobal()
	r := p.newReq(reqRead, mem.Read, in.Addr, 0, waitGlobal)
	r.rd = in.Rd
	r.op = op
	if waitGlobal {
		p.stall(PerAccessWait, nil)
	} else {
		p.stall(ReadWait, nil)
	}
	p.port.Issue(&r.req)
}

func (p *Proc) dispatchWrite(in program.Instr) {
	val := p.storeValue(in)
	if p.cfg.Policy.PerAccessGlobal() {
		op := p.opTemplate(in, mem.Write)
		op.Data = val
		p.pc++
		p.stall(PerAccessWait, nil)
		r := p.newReq(reqPAWrite, mem.Write, in.Addr, val, false)
		r.op = op
		p.port.Issue(&r.req)
		return
	}
	if len(p.wbuf) >= p.cfg.WriteBufferSize {
		// Buffer full: retry this instruction once drainBuffer frees an
		// entry.
		p.stall(BufferFull, p.bufferNotFull)
		return
	}
	op := p.opTemplate(in, mem.Write)
	op.Data = val
	p.pc++
	p.wbuf = append(p.wbuf, wbEntry{addr: in.Addr, val: val, op: op, enq: p.k.Now()})
}

// dispatchSync handles synchronization operations per policy.
func (p *Proc) dispatchSync(in program.Instr, kind mem.Kind) {
	pol := p.cfg.Policy

	// Read-only synchronization under the Section 6 refinement behaves
	// like a read at the processor too: no buffer drain, commit-only wait.
	if kind == mem.SyncRead && pol.ROSyncBypass() {
		p.issueSync(in, kind, false)
		return
	}

	switch {
	case pol.PerAccessGlobal(): // SC
		p.issueSync(in, kind, true)
	case pol.DrainBeforeSync(): // Definition 1
		if len(p.wbuf) > 0 || p.port.Counter() > 0 || p.issuedWrites > 0 {
			p.stall(DrainPreSync, p.drainPreSyncDone)
			return
		}
		p.issueSync(in, kind, pol.WaitSyncGlobal())
	default: // Unconstrained, WO-Def2, WO-Def2+RO
		if len(p.wbuf) > 0 {
			// Program-order generation: previous writes must at least be
			// issued (counted) before the synchronization operation.
			p.stall(BufferDrain, p.bufferEmpty)
			return
		}
		p.issueSync(in, kind, false)
	}
}

// issueSync sends the synchronization operation and stalls until commit
// (or global performance when waitGlobal).
func (p *Proc) issueSync(in program.Instr, kind mem.Kind, waitGlobal bool) {
	op := p.opTemplate(in, kind)
	p.pc++
	var data mem.Value
	switch in.Op {
	case program.OpTAS:
		data = 1
	case program.OpSyncStore, program.OpSwap:
		data = p.storeValue(in)
	}
	op.Data = data
	r := p.newReq(reqSync, kind, in.Addr, data, waitGlobal)
	r.rd = in.Rd
	r.op = op
	if waitGlobal {
		p.stall(SyncGlobalWait, nil)
	} else {
		p.stall(SyncCommitWait, nil)
	}
	p.port.Issue(&r.req)
}
