package cpu

import (
	"fmt"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// The paper's Section 5.1 allows process migration: "Re-scheduling of a
// process on another processor is possible if it can be ensured that
// before a context switch, all previous reads of the process have
// returned their values and all previous writes have been globally
// performed." This file implements that contract: a processor can be
// asked to suspend; it drains (finishes any stalled operation, empties
// its write buffer, retires in-flight writes) and then parks, after
// which its architectural thread state can be exported and installed on
// an idle processor. The logical thread id travels with the state, so
// migrated operations keep their (thread, index) identity in traces and
// results.

// ThreadState is the architectural state that migrates: the logical
// thread id, program counter, registers, next program-order index, and
// the instruction stream itself.
type ThreadState struct {
	ThreadID int
	PC       int
	Regs     [program.NumRegs]mem.Value
	NextIx   int
	Thread   program.Thread
}

// RequestSuspend asks the processor to park at the next drained point:
// no stalled operation, an empty write buffer, and no in-flight writes.
// The caller (the machine) must additionally confirm the memory system's
// counter reads zero before exporting — the paper's "all previous writes
// globally performed".
func (p *Proc) RequestSuspend() { p.suspendReq = true }

// Suspended reports whether the processor has parked after a suspend
// request.
func (p *Proc) Suspended() bool { return p.state == stSuspended }

// Export returns the architectural thread state of a suspended (or
// halted) processor.
func (p *Proc) Export() ThreadState {
	if p.state != stSuspended && p.state != stHalted {
		panic(fmt.Sprintf("cpu %d: Export while running", p.cfg.ID))
	}
	return ThreadState{
		ThreadID: p.tid,
		PC:       p.pc,
		Regs:     p.regs,
		NextIx:   p.nextIx,
		Thread:   p.thread,
	}
}

// Install loads a migrated thread onto an idle processor (one whose own
// thread has halted, was created empty, or was itself suspended and
// exported) and resumes execution.
func (p *Proc) Install(st ThreadState) error {
	if !p.Halted() && p.state != stSuspended {
		return fmt.Errorf("cpu %d: Install on a busy processor", p.cfg.ID)
	}
	p.thread = st.Thread
	p.pc = st.PC
	p.regs = st.Regs
	p.nextIx = st.NextIx
	p.tid = st.ThreadID
	p.suspendReq = false
	p.state = stRun
	p.stats.DoneAt = 0
	p.hasFinal = false
	return nil
}

// ThreadID returns the logical thread the processor is running.
func (p *Proc) ThreadID() int { return p.tid }

// Retire empties a suspended processor after its thread has been
// exported: the processor halts and takes no further part in the run.
func (p *Proc) Retire() {
	if p.state != stSuspended {
		panic(fmt.Sprintf("cpu %d: Retire while not suspended", p.cfg.ID))
	}
	p.thread = program.Thread{Name: "retired"}
	p.pc = 0
	p.suspendReq = false
	p.state = stHalted
	p.stats.DoneAt = uint64(p.k.Now())
}
