package cpu

import (
	"testing"

	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/sim"
)

func TestSuspendExportInstallRoundTrip(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 2)
	th := buildThread(t, func(tb *program.ThreadBuilder) {
		tb.StoreImm(1, 7)
		tb.StoreImm(2, 8)
		tb.StoreImm(3, 9)
	})
	src := New(k, Config{ID: 0, Policy: policy.WODef2}, th, port, nil)
	// Run a couple of cycles, then request suspension.
	for c := 1; c <= 2; c++ {
		k.AdvanceTo(sim.Time(c))
		src.Tick()
		src.Drain()
	}
	src.RequestSuspend()
	for c := 3; c <= 50 && !src.Suspended(); c++ {
		k.AdvanceTo(sim.Time(c))
		src.Tick()
		src.Drain()
	}
	if !src.Suspended() {
		t.Fatal("processor did not suspend")
	}
	st := src.Export()
	if st.ThreadID != 0 {
		t.Errorf("exported thread id %d", st.ThreadID)
	}
	src.Retire()
	if !src.Halted() {
		t.Error("retired processor must be halted")
	}

	dst := New(k, Config{ID: 5, ThreadID: 5, Policy: policy.WODef2}, program.Thread{}, port, nil)
	if !dst.Halted() {
		t.Fatal("empty processor must start halted")
	}
	if err := dst.Install(st); err != nil {
		t.Fatal(err)
	}
	if dst.ThreadID() != 0 {
		t.Errorf("installed thread id %d, want 0 (logical identity travels)", dst.ThreadID())
	}
	for c := 51; c <= 300; c++ {
		if dst.Halted() && !pBusy(dst) {
			break
		}
		k.AdvanceTo(sim.Time(c))
		dst.Tick()
		dst.Drain()
	}
	for a, want := range map[mem.Addr]mem.Value{1: 7, 2: 8, 3: 9} {
		if got := port.memory[a]; got != want {
			t.Errorf("memory[%d] = %d, want %d", a, got, want)
		}
	}
}

func TestInstallOnBusyProcessorFails(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 2)
	th := buildThread(t, func(tb *program.ThreadBuilder) { tb.StoreImm(1, 1); tb.StoreImm(2, 2) })
	busy := New(k, Config{Policy: policy.WODef2}, th, port, nil)
	if err := busy.Install(ThreadState{Thread: th}); err == nil {
		t.Fatal("Install on a running processor must fail")
	}
}

func TestExportWhileRunningPanics(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 2)
	th := buildThread(t, func(tb *program.ThreadBuilder) { tb.StoreImm(1, 1) })
	p := New(k, Config{Policy: policy.WODef2}, th, port, nil)
	defer func() {
		if recover() == nil {
			t.Error("Export while running must panic")
		}
	}()
	p.Export()
}

func TestRetireWhileRunningPanics(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 2)
	th := buildThread(t, func(tb *program.ThreadBuilder) { tb.StoreImm(1, 1) })
	p := New(k, Config{Policy: policy.WODef2}, th, port, nil)
	defer func() {
		if recover() == nil {
			t.Error("Retire while running must panic")
		}
	}()
	p.Retire()
}

func TestStallReasonExposed(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 20)
	th := buildThread(t, func(tb *program.ThreadBuilder) { tb.Load(program.R0, 1) })
	p := New(k, Config{Policy: policy.WODef2}, th, port, nil)
	k.AdvanceTo(1)
	p.Tick()
	r, stalled := p.StallReason()
	if !stalled || r != ReadWait {
		t.Errorf("StallReason = %v,%v; want ReadWait,true", r, stalled)
	}
}

func TestExecLocalFullInstructionSet(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 1)
	th := buildThread(t, func(tb *program.ThreadBuilder) {
		tb.LoadImm(program.R1, 5)
		tb.Mov(program.R2, program.R1)             // 5
		tb.Add(program.R3, program.R1, program.R2) // 10
		tb.Sub(program.R4, program.R3, program.R1) // 5
		tb.AddImm(program.R5, program.R4, 3)       // 8
		tb.Nop()
		tb.BeqImm(program.R5, 9, "skip")     // not taken
		tb.Beq(program.R1, program.R2, "eq") // taken
		tb.LoadImm(program.R5, 99)           // skipped
		tb.Label("eq")
		tb.BneImm(program.R5, 8, "skip")     // not taken
		tb.Bne(program.R1, program.R3, "ne") // taken
		tb.Label("skip")
		tb.LoadImm(program.R5, 98) // skipped via ne path? no: ne jumps past
		tb.Label("ne")
		tb.BltImm(program.R1, 2, "skip")     // not taken (5 >= 2)
		tb.Blt(program.R1, program.R3, "lt") // taken (5 < 10)
		tb.Label("lt")
		tb.BgeImm(program.R1, 100, "skip")   // not taken
		tb.Bge(program.R3, program.R1, "ge") // taken
		tb.Label("ge")
		tb.Jmp("done")
		tb.LoadImm(program.R5, 97)
		tb.Label("done")
		tb.Store(6, program.R5)
		tb.Halt()
	})
	p := New(k, Config{Policy: policy.WODef2}, th, port, nil)
	runProc(t, k, p, 200)
	if got := port.memory[6]; got != 8 {
		t.Fatalf("memory[6] = %d, want 8", got)
	}
}

func TestSuspendWaitsForStalledOperation(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 30)
	th := buildThread(t, func(tb *program.ThreadBuilder) {
		tb.Load(program.R0, 1) // blocks 30 cycles
		tb.StoreImm(2, 2)
	})
	p := New(k, Config{Policy: policy.WODef2}, th, port, nil)
	k.AdvanceTo(1)
	p.Tick() // issues the read; stalled
	p.RequestSuspend()
	for c := 2; c <= 10; c++ {
		k.AdvanceTo(sim.Time(c))
		p.Tick()
		p.Drain()
	}
	if p.Suspended() {
		t.Fatal("must not suspend while a read is outstanding")
	}
	for c := 11; c <= 100 && !p.Suspended(); c++ {
		k.AdvanceTo(sim.Time(c))
		p.Tick()
		p.Drain()
	}
	if !p.Suspended() {
		t.Fatal("must suspend once drained")
	}
	// The pending store after the read must not have been dispatched.
	if port.memory[2] != 0 {
		t.Error("suspension must park before dispatching further work")
	}
}
