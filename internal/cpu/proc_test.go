package cpu

import (
	"testing"

	"weakorder/internal/cache"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/sim"
)

// fakePort is a scriptable MemPort: it completes requests after a fixed
// delay and records issue order.
type fakePort struct {
	k       *sim.Kernel
	delay   sim.Time
	memory  map[mem.Addr]mem.Value
	issued  []mem.Addr
	pending int
	// holdGlobal delays OnGlobal an extra holdGlobal cycles after commit.
	holdGlobal sim.Time
}

func newFakePort(k *sim.Kernel, delay sim.Time) *fakePort {
	return &fakePort{k: k, delay: delay, memory: make(map[mem.Addr]mem.Value)}
}

func (f *fakePort) Issue(r *cache.Req) {
	f.issued = append(f.issued, r.Addr)
	f.pending++
	f.k.After(f.delay, func() {
		var v mem.Value
		switch r.Kind {
		case mem.Read, mem.SyncRead:
			v = f.memory[r.Addr]
		case mem.Write, mem.SyncWrite:
			f.memory[r.Addr] = r.Data
			v = r.Data
		case mem.SyncRMW:
			v = f.memory[r.Addr]
			f.memory[r.Addr] = r.Data
		}
		if r.OnCommit != nil {
			r.OnCommit(v)
		}
		f.k.After(f.holdGlobal, func() {
			f.pending--
			if r.OnGlobal != nil {
				r.OnGlobal()
			}
		})
	})
}

func (f *fakePort) Counter() int { return f.pending }
func (f *fakePort) Busy() bool   { return f.pending > 0 }

// runProc ticks the processor to completion (bounded).
func runProc(t *testing.T, k *sim.Kernel, p *Proc, maxCycles int) {
	t.Helper()
	for c := 1; c <= maxCycles; c++ {
		if p.Halted() && !pBusy(p) {
			return
		}
		k.AdvanceTo(sim.Time(c))
		p.Tick()
		p.Drain()
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatalf("processor did not finish in %d cycles", maxCycles)
}

func pBusy(p *Proc) bool { return len(p.wbuf) > 0 || p.issuedWrites > 0 }

func buildThread(t *testing.T, build func(*program.ThreadBuilder)) program.Thread {
	t.Helper()
	b := program.NewBuilder("t")
	th := b.Thread()
	build(th)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog.Threads[0]
}

func TestProcExecutesLocalAndMemory(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 2)
	port.memory[1] = 10
	th := buildThread(t, func(tb *program.ThreadBuilder) {
		tb.Load(program.R0, 1)
		tb.AddImm(program.R1, program.R0, 5)
		tb.Store(2, program.R1)
	})
	var trace []mem.Op
	p := New(k, Config{Policy: policy.WODef2}, th, port, func(op mem.Op) { trace = append(trace, op) })
	runProc(t, k, p, 100)
	if got := port.memory[2]; got != 15 {
		t.Fatalf("memory[2] = %d, want 15", got)
	}
	if len(trace) != 2 {
		t.Fatalf("trace %v, want 2 ops", trace)
	}
	if trace[0].Kind != mem.Read || trace[0].Got != 10 {
		t.Errorf("first op %v", trace[0])
	}
	if p.Reg(program.R1) != 15 {
		t.Errorf("r1 = %d", p.Reg(program.R1))
	}
}

func TestReadForwardsFromWriteBuffer(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 50) // slow memory: forwarding must not wait
	th := buildThread(t, func(tb *program.ThreadBuilder) {
		tb.StoreImm(3, 7)
		tb.Load(program.R0, 3)
	})
	p := New(k, Config{Policy: policy.WODef2}, th, port, nil)
	// Two cycles: dispatch store (buffered), then load forwards.
	k.AdvanceTo(1)
	p.Tick()
	p.Drain()
	k.AdvanceTo(2)
	p.Tick()
	p.Drain()
	if got := p.Reg(program.R0); got != 7 {
		t.Fatalf("forwarded read = %d, want 7", got)
	}
	if p.Stats().Forwards != 1 {
		t.Fatalf("forwards = %d, want 1", p.Stats().Forwards)
	}
}

func TestReadBypassesBufferedWriteToOtherAddress(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 5)
	th := buildThread(t, func(tb *program.ThreadBuilder) {
		tb.StoreImm(1, 1) // buffered
		tb.Load(program.R0, 2)
	})
	p := New(k, Config{Policy: policy.WODef2}, th, port, nil)
	runProc(t, k, p, 100)
	// The read (addr 2) must be issued before the write (addr 1).
	if len(port.issued) != 2 || port.issued[0] != 2 || port.issued[1] != 1 {
		t.Fatalf("issue order %v, want [2 1] (read bypasses write)", port.issued)
	}
}

func TestSCIssuesInOrderAndWaits(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 5)
	th := buildThread(t, func(tb *program.ThreadBuilder) {
		tb.StoreImm(1, 1)
		tb.Load(program.R0, 2)
	})
	p := New(k, Config{Policy: policy.SC}, th, port, nil)
	runProc(t, k, p, 200)
	if len(port.issued) != 2 || port.issued[0] != 1 || port.issued[1] != 2 {
		t.Fatalf("issue order %v, want [1 2] under SC", port.issued)
	}
	if p.Stats().Stall[PerAccessWait] == 0 {
		t.Error("SC must accumulate per-access stall")
	}
}

func TestDef1DrainsBeforeSync(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 10)
	port.holdGlobal = 20 // global performance lags commit
	th := buildThread(t, func(tb *program.ThreadBuilder) {
		tb.StoreImm(1, 1)     // data write
		tb.SyncStoreImm(2, 1) // release: must wait for the write
	})
	p := New(k, Config{Policy: policy.WODef1}, th, port, nil)
	runProc(t, k, p, 500)
	st := p.Stats()
	if st.Stall[DrainPreSync] == 0 {
		t.Error("Def1 must stall draining before the sync op")
	}
	if st.Stall[SyncGlobalWait] == 0 {
		t.Error("Def1 must wait for the sync op's global performance")
	}
}

func TestDef2WaitsOnlyForCommit(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 10)
	port.holdGlobal = 200 // enormous global-perform lag
	th := buildThread(t, func(tb *program.ThreadBuilder) {
		tb.StoreImm(1, 1)
		tb.SyncStoreImm(2, 1)
		tb.StoreImm(3, 3) // post-release work proceeds
	})
	p := New(k, Config{Policy: policy.WODef2}, th, port, nil)
	// Run until the program is done dispatching (but global acks pending).
	for c := 1; c <= 300; c++ {
		k.AdvanceTo(sim.Time(c))
		p.Tick()
		p.Drain()
	}
	st := p.Stats()
	if st.Stall[DrainPreSync] != 0 {
		t.Error("Def2 must not drain-wait before sync")
	}
	if st.Stall[SyncGlobalWait] != 0 {
		t.Error("Def2 must not wait for sync global performance")
	}
	if st.Stall[SyncCommitWait] == 0 {
		t.Error("Def2 waits for sync commit")
	}
	if port.memory[3] != 3 {
		t.Error("post-release work must complete while acks are pending")
	}
}

func TestBufferFullStalls(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 100) // writes complete very slowly
	th := buildThread(t, func(tb *program.ThreadBuilder) {
		for i := 0; i < 6; i++ {
			tb.StoreImm(mem.Addr(i), 1)
		}
	})
	p := New(k, Config{Policy: policy.WODef2, WriteBufferSize: 2, MaxOutstandingWrites: 1}, th, port, nil)
	for c := 1; c <= 50; c++ {
		k.AdvanceTo(sim.Time(c))
		p.Tick()
		p.Drain()
	}
	if p.Stats().Stall[BufferFull] == 0 {
		t.Error("a 2-entry buffer fed 6 writes must stall BufferFull")
	}
}

func TestLocalInfiniteLoopReportsError(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 1)
	th := buildThread(t, func(tb *program.ThreadBuilder) {
		tb.Label("top")
		tb.Jmp("top")
	})
	p := New(k, Config{Policy: policy.WODef2, MaxLocalRun: 100}, th, port, nil)
	k.AdvanceTo(1)
	p.Tick()
	if p.Err() == nil {
		t.Fatal("local infinite loop must surface as Err")
	}
}

func TestTASDispatchesRMWWithValueOne(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 2)
	port.memory[4] = 0
	th := buildThread(t, func(tb *program.ThreadBuilder) {
		tb.TAS(program.R0, 4)
	})
	var trace []mem.Op
	p := New(k, Config{Policy: policy.WODef2}, th, port, func(op mem.Op) { trace = append(trace, op) })
	runProc(t, k, p, 100)
	if p.Reg(program.R0) != 0 {
		t.Errorf("TAS returned %d, want 0", p.Reg(program.R0))
	}
	if port.memory[4] != 1 {
		t.Errorf("TAS left %d, want 1", port.memory[4])
	}
	if len(trace) != 1 || trace[0].Kind != mem.SyncRMW || trace[0].Data != 1 {
		t.Errorf("trace %v", trace)
	}
}

func TestReasonStrings(t *testing.T) {
	for r := 0; r < NumReasons; r++ {
		if Reason(r).String() == "" {
			t.Errorf("empty name for reason %d", r)
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	var s Stats
	s.Stall[ReadWait] = 3
	s.Stall[SyncCommitWait] = 4
	s.Stall[DrainPreSync] = 5
	if s.TotalStall() != 12 {
		t.Errorf("TotalStall = %d, want 12", s.TotalStall())
	}
	if s.SyncStall() != 9 {
		t.Errorf("SyncStall = %d, want 9", s.SyncStall())
	}
}

func TestROSyncReadNoBufferDrain(t *testing.T) {
	k := &sim.Kernel{}
	port := newFakePort(k, 30)
	th := buildThread(t, func(tb *program.ThreadBuilder) {
		tb.StoreImm(1, 1)          // buffered, slow
		tb.SyncLoad(program.R0, 2) // under +RO: no drain wait
	})
	p := New(k, Config{Policy: policy.WODef2RO}, th, port, nil)
	for c := 1; c <= 200; c++ {
		k.AdvanceTo(sim.Time(c))
		p.Tick()
		p.Drain()
	}
	if p.Stats().Stall[BufferDrain] != 0 {
		t.Error("a read-only sync op must not drain the write buffer under +RO")
	}
}
