package lang

import (
	"strings"
	"testing"

	"weakorder/internal/ideal"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/program"
)

const sbCondSrc = `
program sb-cond
thread P0 {
  st x, #1
  ld r0, y
}
thread P1 {
  st y, #1
  ld r0, x
}
exists P0:r0=0 & P1:r0=0
`

func TestParseExistsCondition(t *testing.T) {
	p, err := Parse(sbCondSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cond == nil || len(p.Cond.Terms) != 2 {
		t.Fatalf("cond = %+v", p.Cond)
	}
	if p.Cond.Terms[0].Thread != 0 || p.Cond.Terms[0].Reg != program.R0 || p.Cond.Terms[0].Value != 0 {
		t.Errorf("term 0 = %+v", p.Cond.Terms[0])
	}
	if got := p.Cond.String(); got != "exists P0:r0=0 & P1:r0=0" {
		t.Errorf("String = %q", got)
	}
}

func TestParseExistsMemoryTerm(t *testing.T) {
	src := "program m\nthread P0 {\n st x, #2\n}\nexists x=2\n"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cond == nil || p.Cond.Terms[0].Thread != -1 || p.Cond.Terms[0].Sym != "x" {
		t.Fatalf("cond = %+v", p.Cond)
	}
	it, err := ideal.RunSeed(p, ideal.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !it.EvalCond(p.Cond) {
		t.Error("x=2 must hold after the store")
	}
}

func TestExistsErrors(t *testing.T) {
	cases := []string{
		"program x\nthread P0 {\n nop\n}\nexists\n",          // handled as unknown? actually "exists" without space
		"program x\nthread P0 {\n nop\n}\nexists P0:r0\n",    // no value
		"program x\nthread P0 {\n nop\n}\nexists Q0:r0=1\n",  // bad thread
		"program x\nthread P0 {\n nop\n}\nexists P0:x=1\n",   // non-register after colon
		"program x\nthread P0 {\n nop\n}\nexists 7seven=1\n", // bad ident
		"program x\nthread P0 {\n nop\n}\nexists P0:r0=zz\n", // bad value
		"program x\nthread P0 {\nexists P0:r0=0\n}\n",        // inside thread
		"program x\nthread P0 {\n nop\n}\nexists P9:r0=0\n",  // thread out of range (Validate)
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCondFormatRoundTrip(t *testing.T) {
	p, err := Parse(sbCondSrc)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(p)
	if !strings.Contains(text, "exists P0:r0=0 & P1:r0=0") {
		t.Fatalf("formatted text missing condition:\n%s", text)
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cond == nil || back.Cond.String() != p.Cond.String() {
		t.Error("condition lost in round trip")
	}
}

func TestCondOnMachineRuns(t *testing.T) {
	p, err := Parse(sbCondSrc)
	if err != nil {
		t.Fatal(err)
	}
	// SC machine: the condition never holds.
	for seed := int64(0); seed < 5; seed++ {
		res, err := machine.Run(p, machine.Config{
			Policy: policy.SC, Topology: machine.TopoBus, Caches: true,
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if res.CondHolds(p) {
			t.Errorf("seed %d: SC machine satisfied the forbidden condition", seed)
		}
	}
	// Unconstrained bus: it does.
	hit := false
	for seed := int64(0); seed < 5 && !hit; seed++ {
		res, err := machine.Run(p, machine.Config{
			Policy: policy.Unconstrained, Topology: machine.TopoBus, Caches: true,
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		hit = res.CondHolds(p)
	}
	if !hit {
		t.Error("unconstrained machine must satisfy the SB condition")
	}
}

func TestCondForbiddenUnderSCEnumeration(t *testing.T) {
	p, err := Parse(sbCondSrc)
	if err != nil {
		t.Fatal(err)
	}
	allowed := false
	_, err = ideal.Enumerate(p, ideal.EnumConfig{}, func(it *ideal.Interp) error {
		if it.EvalCond(p.Cond) {
			allowed = true
			return ideal.ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if allowed {
		t.Error("no SC execution may satisfy the SB condition")
	}
}

func TestCondEvalDirect(t *testing.T) {
	c := &program.Cond{Terms: []program.CondTerm{
		{Thread: 0, Reg: program.R1, Value: 5},
		{Thread: -1, Addr: 3, Value: 7},
	}}
	regs := make([]program.RegFile, 1)
	regs[0][program.R1] = 5
	final := map[mem.Addr]mem.Value{3: 7}
	if !c.Eval(regs, final) {
		t.Error("condition must hold")
	}
	final[3] = 0
	if c.Eval(regs, final) {
		t.Error("memory term must fail")
	}
	final[3] = 7
	regs[0][program.R1] = 4
	if c.Eval(regs, final) {
		t.Error("register term must fail")
	}
	// Out-of-range thread.
	c2 := &program.Cond{Terms: []program.CondTerm{{Thread: 5, Reg: 0, Value: 0}}}
	if c2.Eval(regs, final) {
		t.Error("missing thread must fail")
	}
}
