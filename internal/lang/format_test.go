package lang

import (
	"strings"
	"testing"

	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// TestFormatFullSurface formats a program exercising every instruction
// form and re-parses it, comparing instruction streams structurally.
func TestFormatFullSurface(t *testing.T) {
	b := program.NewBuilder("surface")
	x, s := b.Var("x"), b.Var("s")
	b.InitVar("x", 3)
	th := b.Thread()
	th.Nop()
	th.LoadImm(program.R0, 1)
	th.Mov(program.R1, program.R0)
	th.Add(program.R2, program.R0, program.R1)
	th.AddImm(program.R3, program.R2, -4)
	th.Sub(program.R4, program.R3, program.R0)
	th.Load(program.R5, x)
	th.Store(x, program.R5)
	th.StoreImm(x, 9)
	th.SyncLoad(program.R6, s)
	th.SyncStore(s, program.R6)
	th.SyncStoreImm(s, 0)
	th.TAS(program.R7, s)
	th.Swap(program.R0, s, program.R1)
	th.SwapImm(program.R0, s, 5)
	th.Label("top")
	th.Beq(program.R0, program.R1, "top")
	th.BeqImm(program.R0, 1, "top")
	th.Bne(program.R0, program.R1, "top")
	th.BneImm(program.R0, 1, "top")
	th.Blt(program.R0, program.R1, "top")
	th.BltImm(program.R0, 1, "top")
	th.Bge(program.R0, program.R1, "top")
	th.BgeImm(program.R0, 1, "top")
	th.Jmp("top")
	th.Fence()
	th.Halt()
	p := b.MustBuild()

	text := Format(p)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if back.NumThreads() != 1 {
		t.Fatal("thread lost")
	}
	a, bb := p.Threads[0].Instrs, back.Threads[0].Instrs
	if len(a) != len(bb) {
		t.Fatalf("instruction counts differ: %d vs %d\n%s", len(a), len(bb), text)
	}
	for i := range a {
		if a[i].Op != bb[i].Op || a[i].Rd != bb[i].Rd || a[i].Rs != bb[i].Rs ||
			a[i].Rt != bb[i].Rt || a[i].Imm != bb[i].Imm || a[i].UseImm != bb[i].UseImm ||
			a[i].Target != bb[i].Target {
			t.Errorf("instr %d differs: %+v vs %+v", i, a[i], bb[i])
		}
	}
	// Init survives.
	xa, _ := back.AddrOf("x")
	if back.Init[xa] != 3 {
		t.Error("init lost in round trip")
	}
}

func TestFormatUnnamedVariables(t *testing.T) {
	// Figure-style executions use raw addresses; Format must synthesize
	// names that parse back.
	p := &program.Program{
		Name: "raw",
		Threads: []program.Thread{{
			Name: "P0",
			Instrs: []program.Instr{
				{Op: program.OpStore, Addr: 7, Imm: 1, UseImm: true},
				{Op: program.OpLoad, Rd: program.R0, Addr: 7},
			},
		}},
	}
	text := Format(p)
	if !strings.Contains(text, "v7") {
		t.Errorf("expected synthesized name v7:\n%s", text)
	}
	if _, err := Parse(text); err != nil {
		t.Fatalf("reparse: %v", err)
	}
}

func TestFormatTrailingLabel(t *testing.T) {
	// A branch to the end of the thread needs a trailing label + nop.
	b := program.NewBuilder("tail")
	th := b.Thread()
	th.LoadImm(program.R0, 1)
	th.BeqImm(program.R0, 1, "end")
	th.StoreImm(b.Var("x"), 2)
	th.Label("end")
	p := b.MustBuild()
	text := Format(p)
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseOperandEdgeCases(t *testing.T) {
	cases := []string{
		"program x\nthread P0 {\n ld r0, 9bad\n}\n",    // ident starting with digit
		"program x\nthread P0 {\n st x, \n}\n",         // empty operand
		"program x\nthread P0 {\n mov r0, #1\n}\n",     // immediate where reg required
		"program x\nthread P0 {\n beq r0, r1, r2\n}\n", // register as label is legal? r2 parses as reg, not label
		"program x\nthread P0 {\n swap r0, x, x\n}\n",  // variable as swap source
		"program x\nthread P0 {\n jmp #3\n}\n",         // immediate as label
		"program x\nthread P0 {\n :\n}\n",              // empty label
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: expected a parse error", i)
		}
	}
}

func TestFormatLitmusLibraryRoundTripsStructurally(t *testing.T) {
	for _, p := range litmus.All() {
		back, err := Parse(Format(p))
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if back.NumThreads() != p.NumThreads() {
			t.Errorf("%s: thread count changed", p.Name)
		}
		for ti := range p.Threads {
			if len(back.Threads[ti].Instrs) != len(p.Threads[ti].Instrs) {
				t.Errorf("%s thread %d: instruction count changed", p.Name, ti)
			}
		}
		// Init values preserved by name.
		for name, addr := range p.Symbols {
			v := p.Init[addr]
			ba, ok := back.AddrOf(name)
			if !ok {
				// Unreferenced symbols may be dropped; only initialized or
				// referenced ones must survive.
				if v != 0 {
					t.Errorf("%s: symbol %q lost", p.Name, name)
				}
				continue
			}
			if back.Init[ba] != v {
				t.Errorf("%s: init %q = %d, want %d", p.Name, name, back.Init[ba], v)
			}
		}
	}
}

func TestVarNameFallback(t *testing.T) {
	p := &program.Program{Name: "n", Symbols: map[string]mem.Addr{"named": 3}}
	if got := varName(p, 3); got != "named" {
		t.Errorf("varName = %q", got)
	}
	if got := varName(p, 9); got != "v9" {
		t.Errorf("varName fallback = %q", got)
	}
}
