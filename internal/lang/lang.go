// Package lang parses and formats the litmus text format: a small
// assembly-like notation for the program IR, so tests can be written in
// files and fed to the command-line tools.
//
// Format:
//
//	# Dekker's store-buffering test
//	program dekker
//	init s=1 counter=0
//
//	thread P0 {
//	  st x, #1
//	  ld r0, y
//	}
//
//	thread P1 {
//	  st y, #1
//	spin:
//	  tas r0, s
//	  bne r0, #0, spin
//	}
//
// An optional postcondition names the outcome of interest, herd-style:
//
//	exists P0:r0=0 & P1:r0=0
//	exists x=2
//
// Variables are named identifiers allocated on first use (or pinned by
// init). Registers are r0..r15. Labels are identifiers followed by a
// colon on their own line (or preceding an instruction). Immediates are
// written #N. Instruction mnemonics match the disassembler in package
// program: li, mov, add, addi, sub, ld, st, sld, sst, tas, swap, beq,
// bne, blt, bge, jmp, nop, fence, halt.
package lang

import (
	"fmt"
	"strconv"
	"strings"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

type parser struct {
	b      *program.Builder
	th     *program.ThreadBuilder
	name   string
	inited bool
}

// Parse builds a Program from litmus text.
func Parse(src string) (*program.Program, error) {
	p := &parser{}
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.line(line, lineNo); err != nil {
			return nil, err
		}
	}
	if p.b == nil {
		return nil, &ParseError{Line: 1, Msg: "no program directive and no instructions"}
	}
	if p.th != nil {
		return nil, &ParseError{Line: len(lines), Msg: "unterminated thread block (missing })"}
	}
	return p.b.Build()
}

func (p *parser) builder() *program.Builder {
	if p.b == nil {
		name := p.name
		if name == "" {
			name = "litmus"
		}
		p.b = program.NewBuilder(name)
	}
	return p.b
}

func (p *parser) line(line string, n int) error {
	switch {
	case strings.HasPrefix(line, "program "):
		if p.b != nil {
			return &ParseError{Line: n, Msg: "program directive must come first"}
		}
		p.name = strings.TrimSpace(strings.TrimPrefix(line, "program "))
		p.builder()
		return nil
	case strings.HasPrefix(line, "init "):
		b := p.builder()
		for _, kv := range strings.Fields(strings.TrimPrefix(line, "init ")) {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return &ParseError{Line: n, Msg: fmt.Sprintf("bad init %q (want var=value)", kv)}
			}
			v, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return &ParseError{Line: n, Msg: fmt.Sprintf("bad init value %q", parts[1])}
			}
			b.InitVar(parts[0], mem.Value(v))
		}
		return nil
	case strings.HasPrefix(line, "thread"):
		if p.th != nil {
			return &ParseError{Line: n, Msg: "nested thread block"}
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, "thread"))
		if !strings.HasSuffix(rest, "{") {
			return &ParseError{Line: n, Msg: "thread header must end with {"}
		}
		name := strings.TrimSpace(strings.TrimSuffix(rest, "{"))
		if name == "" {
			p.th = p.builder().Thread()
		} else {
			p.th = p.builder().NamedThread(name)
		}
		return nil
	case line == "}":
		if p.th == nil {
			return &ParseError{Line: n, Msg: "unmatched }"}
		}
		p.th = nil
		return nil
	case strings.HasPrefix(line, "exists "):
		if p.th != nil {
			return &ParseError{Line: n, Msg: "exists must appear outside thread blocks"}
		}
		return p.exists(strings.TrimPrefix(line, "exists "), n)
	}
	if p.th == nil {
		return &ParseError{Line: n, Msg: fmt.Sprintf("instruction %q outside a thread block", line)}
	}
	// Leading labels: "name: instr" or bare "name:".
	for {
		idx := strings.Index(line, ":")
		if idx < 0 {
			break
		}
		label := strings.TrimSpace(line[:idx])
		if !isIdent(label) {
			return &ParseError{Line: n, Msg: fmt.Sprintf("bad label %q", label)}
		}
		p.th.Label(label)
		line = strings.TrimSpace(line[idx+1:])
		if line == "" {
			return nil
		}
	}
	return p.instr(line, n)
}

// operand categories.
type operand struct {
	kind byte // 'r' register, 'i' immediate, 'v' variable, 'l' label
	reg  program.Reg
	imm  mem.Value
	name string
}

func (p *parser) parseOperand(tok string, n int) (operand, error) {
	tok = strings.TrimSpace(tok)
	switch {
	case tok == "":
		return operand{}, &ParseError{Line: n, Msg: "empty operand"}
	case strings.HasPrefix(tok, "#"):
		v, err := strconv.ParseInt(tok[1:], 10, 64)
		if err != nil {
			return operand{}, &ParseError{Line: n, Msg: fmt.Sprintf("bad immediate %q", tok)}
		}
		return operand{kind: 'i', imm: mem.Value(v)}, nil
	case len(tok) >= 2 && (tok[0] == 'r' || tok[0] == 'R') && isDigits(tok[1:]):
		v, _ := strconv.Atoi(tok[1:])
		if v >= program.NumRegs {
			return operand{}, &ParseError{Line: n, Msg: fmt.Sprintf("register %q out of range", tok)}
		}
		return operand{kind: 'r', reg: program.Reg(v)}, nil
	case isIdent(tok):
		return operand{kind: 'v', name: tok}, nil
	default:
		return operand{}, &ParseError{Line: n, Msg: fmt.Sprintf("bad operand %q", tok)}
	}
}

func (p *parser) operands(rest string, n int, want int) ([]operand, error) {
	var out []operand
	if strings.TrimSpace(rest) != "" {
		for _, tok := range strings.Split(rest, ",") {
			op, err := p.parseOperand(tok, n)
			if err != nil {
				return nil, err
			}
			out = append(out, op)
		}
	}
	if len(out) != want {
		return nil, &ParseError{Line: n, Msg: fmt.Sprintf("want %d operands, got %d", want, len(out))}
	}
	return out, nil
}

func (p *parser) instr(line string, n int) error {
	mnemonic, rest := line, ""
	if idx := strings.IndexAny(line, " \t"); idx >= 0 {
		mnemonic, rest = line[:idx], line[idx+1:]
	}
	th := p.th
	b := p.builder()
	bad := func(msg string) error { return &ParseError{Line: n, Msg: msg + " in " + strconv.Quote(line)} }

	need := func(want int) ([]operand, error) { return p.operands(rest, n, want) }

	switch mnemonic {
	case "nop":
		if _, err := need(0); err != nil {
			return err
		}
		th.Nop()
	case "fence":
		if _, err := need(0); err != nil {
			return err
		}
		th.Fence()
	case "halt":
		if _, err := need(0); err != nil {
			return err
		}
		th.Halt()
	case "li":
		ops, err := need(2)
		if err != nil {
			return err
		}
		if ops[0].kind != 'r' || ops[1].kind != 'i' {
			return bad("li wants rD, #imm")
		}
		th.LoadImm(ops[0].reg, ops[1].imm)
	case "mov":
		ops, err := need(2)
		if err != nil {
			return err
		}
		if ops[0].kind != 'r' || ops[1].kind != 'r' {
			return bad("mov wants rD, rS")
		}
		th.Mov(ops[0].reg, ops[1].reg)
	case "add", "sub":
		ops, err := need(3)
		if err != nil {
			return err
		}
		if ops[0].kind != 'r' || ops[1].kind != 'r' || ops[2].kind != 'r' {
			return bad(mnemonic + " wants rD, rS, rT")
		}
		if mnemonic == "add" {
			th.Add(ops[0].reg, ops[1].reg, ops[2].reg)
		} else {
			th.Sub(ops[0].reg, ops[1].reg, ops[2].reg)
		}
	case "addi":
		ops, err := need(3)
		if err != nil {
			return err
		}
		if ops[0].kind != 'r' || ops[1].kind != 'r' || ops[2].kind != 'i' {
			return bad("addi wants rD, rS, #imm")
		}
		th.AddImm(ops[0].reg, ops[1].reg, ops[2].imm)
	case "ld", "sld":
		ops, err := need(2)
		if err != nil {
			return err
		}
		if ops[0].kind != 'r' || ops[1].kind != 'v' {
			return bad(mnemonic + " wants rD, var")
		}
		addr := b.Var(ops[1].name)
		if mnemonic == "ld" {
			th.Load(ops[0].reg, addr)
		} else {
			th.SyncLoad(ops[0].reg, addr)
		}
	case "st", "sst":
		ops, err := need(2)
		if err != nil {
			return err
		}
		if ops[0].kind != 'v' {
			return bad(mnemonic + " wants var, rS|#imm")
		}
		addr := b.Var(ops[0].name)
		switch {
		case ops[1].kind == 'r' && mnemonic == "st":
			th.Store(addr, ops[1].reg)
		case ops[1].kind == 'i' && mnemonic == "st":
			th.StoreImm(addr, ops[1].imm)
		case ops[1].kind == 'r':
			th.SyncStore(addr, ops[1].reg)
		case ops[1].kind == 'i':
			th.SyncStoreImm(addr, ops[1].imm)
		default:
			return bad(mnemonic + " wants var, rS|#imm")
		}
	case "tas":
		ops, err := need(2)
		if err != nil {
			return err
		}
		if ops[0].kind != 'r' || ops[1].kind != 'v' {
			return bad("tas wants rD, var")
		}
		th.TAS(ops[0].reg, b.Var(ops[1].name))
	case "swap":
		ops, err := need(3)
		if err != nil {
			return err
		}
		if ops[0].kind != 'r' || ops[1].kind != 'v' {
			return bad("swap wants rD, var, rS|#imm")
		}
		addr := b.Var(ops[1].name)
		switch ops[2].kind {
		case 'r':
			th.Swap(ops[0].reg, addr, ops[2].reg)
		case 'i':
			th.SwapImm(ops[0].reg, addr, ops[2].imm)
		default:
			return bad("swap wants rD, var, rS|#imm")
		}
	case "beq", "bne", "blt", "bge":
		ops, err := need(3)
		if err != nil {
			return err
		}
		if ops[0].kind != 'r' || ops[2].kind != 'v' {
			return bad(mnemonic + " wants rS, rT|#imm, label")
		}
		label := ops[2].name
		switch {
		case ops[1].kind == 'r':
			switch mnemonic {
			case "beq":
				th.Beq(ops[0].reg, ops[1].reg, label)
			case "bne":
				th.Bne(ops[0].reg, ops[1].reg, label)
			case "blt":
				th.Blt(ops[0].reg, ops[1].reg, label)
			case "bge":
				th.Bge(ops[0].reg, ops[1].reg, label)
			}
		case ops[1].kind == 'i':
			switch mnemonic {
			case "beq":
				th.BeqImm(ops[0].reg, ops[1].imm, label)
			case "bne":
				th.BneImm(ops[0].reg, ops[1].imm, label)
			case "blt":
				th.BltImm(ops[0].reg, ops[1].imm, label)
			case "bge":
				th.BgeImm(ops[0].reg, ops[1].imm, label)
			}
		default:
			return bad(mnemonic + " wants rS, rT|#imm, label")
		}
	case "jmp":
		ops, err := need(1)
		if err != nil {
			return err
		}
		if ops[0].kind != 'v' {
			return bad("jmp wants label")
		}
		th.Jmp(ops[0].name)
	default:
		return &ParseError{Line: n, Msg: fmt.Sprintf("unknown mnemonic %q", mnemonic)}
	}
	return nil
}

// exists parses a postcondition: "exists P0:r0=0 & P1:r1=1 & x=2".
func (p *parser) exists(rest string, n int) error {
	b := p.builder()
	cond := &program.Cond{}
	for _, raw := range strings.Split(rest, "&") {
		term := strings.TrimSpace(raw)
		eq := strings.LastIndex(term, "=")
		if eq <= 0 || eq == len(term)-1 {
			return &ParseError{Line: n, Msg: fmt.Sprintf("bad condition term %q (want lhs=value)", term)}
		}
		lhs, rhs := strings.TrimSpace(term[:eq]), strings.TrimSpace(term[eq+1:])
		v, err := strconv.ParseInt(rhs, 10, 64)
		if err != nil {
			return &ParseError{Line: n, Msg: fmt.Sprintf("bad condition value %q", rhs)}
		}
		var ct program.CondTerm
		ct.Value = mem.Value(v)
		if colon := strings.Index(lhs, ":"); colon >= 0 {
			tname, rname := strings.TrimSpace(lhs[:colon]), strings.TrimSpace(lhs[colon+1:])
			if len(tname) < 2 || (tname[0] != 'P' && tname[0] != 'p') || !isDigits(tname[1:]) {
				return &ParseError{Line: n, Msg: fmt.Sprintf("bad thread name %q (want P<k>)", tname)}
			}
			tid, _ := strconv.Atoi(tname[1:])
			op, err := p.parseOperand(rname, n)
			if err != nil || op.kind != 'r' {
				return &ParseError{Line: n, Msg: fmt.Sprintf("bad register %q in condition", rname)}
			}
			ct.Thread = tid
			ct.Reg = op.reg
		} else {
			if !isIdent(lhs) {
				return &ParseError{Line: n, Msg: fmt.Sprintf("bad location %q in condition", lhs)}
			}
			ct.Thread = -1
			ct.Addr = b.Var(lhs)
			ct.Sym = lhs
		}
		cond.Terms = append(cond.Terms, ct)
	}
	if len(cond.Terms) == 0 {
		return &ParseError{Line: n, Msg: "empty exists condition"}
	}
	b.SetCond(cond)
	return nil
}

// stripComment removes trailing comments: "//" or ";" anywhere, and "#"
// when it does not introduce an immediate (#N or #-N).
func stripComment(line string) string {
	for i := 0; i < len(line); i++ {
		switch {
		case line[i] == ';':
			return line[:i]
		case line[i] == '/' && i+1 < len(line) && line[i+1] == '/':
			return line[:i]
		case line[i] == '#':
			rest := line[i+1:]
			isImm := len(rest) > 0 && (rest[0] == '-' || (rest[0] >= '0' && rest[0] <= '9'))
			if !isImm {
				return line[:i]
			}
		}
	}
	return line
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
