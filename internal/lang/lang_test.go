package lang

import (
	"strings"
	"testing"

	"weakorder/internal/ideal"
	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

const dekkerSrc = `
# Dekker's store-buffering test
program dekker
thread P0 {
  st x, #1
  ld r0, y
}
thread P1 {
  st y, #1
  ld r0, x
}
`

func TestParseDekker(t *testing.T) {
	p, err := Parse(dekkerSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "dekker" || p.NumThreads() != 2 {
		t.Fatalf("name=%q threads=%d", p.Name, p.NumThreads())
	}
	if _, ok := p.AddrOf("x"); !ok {
		t.Fatal("x not allocated")
	}
	// Behavior matches the programmatic Dekker: same SC outcome count.
	mine, err := outcomes(p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := outcomes(litmus.Dekker())
	if err != nil {
		t.Fatal(err)
	}
	if len(mine) != len(ref) {
		t.Fatalf("parsed Dekker has %d SC outcomes, reference has %d", len(mine), len(ref))
	}
}

func outcomes(p *program.Program) (map[string]bool, error) {
	out := make(map[string]bool)
	_, err := ideal.Enumerate(p, ideal.EnumConfig{}, func(it *ideal.Interp) error {
		out[mem.ResultOf(it.Execution()).Key()] = true
		return nil
	})
	return out, err
}

func TestParseSpinLoopWithLabelsAndInit(t *testing.T) {
	src := `
program spin
init lock=1 out=0
thread P0 {
  sst lock, #0
}
thread P1 {
spin:
  tas r0, lock
  bne r0, #0, spin
  st out, #7
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	lock, _ := p.AddrOf("lock")
	if p.Init[lock] != 1 {
		t.Fatalf("init lock = %d, want 1", p.Init[lock])
	}
	it, err := ideal.RunSeed(p, ideal.Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := p.AddrOf("out")
	if got := it.MemValue(out); got != 7 {
		t.Fatalf("out = %d, want 7", got)
	}
}

func TestParseAllMnemonics(t *testing.T) {
	src := `
program all
thread P0 {
  nop
  fence
  li r1, #5
  mov r2, r1
  add r3, r1, r2
  addi r4, r3, #-1
  sub r5, r3, r4
  ld r0, x
  st x, r1
  st x, #2
  sld r0, s
  sst s, #1
  sst s, r1
  tas r6, s
  swap r7, s, r1
  swap r7, s, #3
top:
  beq r1, r2, top
  bne r1, #9, next
  blt r1, r2, top
  bge r1, #0, next
  jmp end
next:
  nop
end:
  halt
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no-thread", "program x\nld r0, y\n"},
		{"bad-mnemonic", "program x\nthread P0 {\n frob r0\n}\n"},
		{"bad-register", "program x\nthread P0 {\n ld r99, y\n}\n"},
		{"bad-operand-count", "program x\nthread P0 {\n ld r0\n}\n"},
		{"unterminated", "program x\nthread P0 {\n nop\n"},
		{"nested-thread", "program x\nthread P0 {\nthread P1 {\n}\n}\n"},
		{"unmatched-close", "program x\n}\n"},
		{"bad-init", "program x\ninit q\nthread P0 {\n nop\n}\n"},
		{"undefined-label", "program x\nthread P0 {\n jmp nowhere\n}\n"},
		{"late-program", "thread P0 {\n nop\n}\nprogram x\n"},
		{"bad-imm", "program x\nthread P0 {\n li r0, #zz\n}\n"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: expected a parse error", c.name)
		}
	}
}

func TestParseErrorCarriesLine(t *testing.T) {
	_, err := Parse("program x\nthread P0 {\n frob\n}\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestFormatParsesBack(t *testing.T) {
	// Round trip every litmus program through Format -> Parse and compare
	// SC outcome sets.
	for _, prog := range []*program.Program{
		litmus.Dekker(),
		litmus.DekkerSync(),
		litmus.MessagePassingBounded(),
		litmus.IRIW(),
		litmus.CriticalSection(2, 1),
		litmus.TestAndTAS(2, 1),
	} {
		text := Format(prog)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", prog.Name, err, text)
		}
		a, err := boundedOutcomes(prog)
		if err != nil {
			t.Fatal(err)
		}
		b, err := boundedOutcomes(back)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Errorf("%s: outcome sets differ after round trip: %d vs %d", prog.Name, len(a), len(b))
		}
		for k := range a {
			if !b[k] {
				t.Errorf("%s: outcome %q lost in round trip", prog.Name, k)
			}
		}
	}
}

func boundedOutcomes(p *program.Program) (map[string]bool, error) {
	out := make(map[string]bool)
	cfg := ideal.EnumConfig{
		Interp:        ideal.Config{MaxMemOpsPerThread: 10},
		SkipTruncated: true,
	}
	_, err := ideal.Enumerate(p, cfg, func(it *ideal.Interp) error {
		out[mem.ResultOf(it.Execution()).Key()] = true
		return nil
	})
	return out, err
}

func TestCommentsAndSemicolons(t *testing.T) {
	src := "program c\nthread P0 {\n nop ; trailing comment\n # full line\n halt\n}\n"
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}
