package lang

import (
	"fmt"
	"sort"
	"strings"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Format renders a Program in the litmus text format accepted by Parse.
// Branch targets are materialized as generated labels L<index>; variable
// names come from the symbol table, falling back to v<addr>.
//
// The init line declares every referenced variable in ascending address
// order, including zero-valued ones. Parse allocates addresses in
// first-use order, so this declaration order makes the round trip
// address-preserving whenever the program's referenced addresses are
// dense from 0 (the Builder's allocation scheme) — which matters because
// machine behavior (memory-module homing) depends on raw addresses, and
// shrunk reproducers must replay against the same machine behavior.
func Format(p *program.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)

	if addrs := referencedAddrs(p); len(addrs) > 0 {
		b.WriteString("init")
		for _, a := range addrs {
			fmt.Fprintf(&b, " %s=%d", varName(p, a), p.Init[a])
		}
		b.WriteByte('\n')
	}

	if p.Cond != nil {
		fmt.Fprintf(&b, "%s\n", p.Cond.String())
	}

	for ti := range p.Threads {
		t := &p.Threads[ti]
		fmt.Fprintf(&b, "\nthread %s {\n", t.Name)
		// Collect label positions.
		labels := make(map[int]bool)
		for _, in := range t.Instrs {
			if in.Op.IsBranch() {
				labels[in.Target] = true
			}
		}
		for i, in := range t.Instrs {
			if labels[i] {
				fmt.Fprintf(&b, "L%d:\n", i)
			}
			fmt.Fprintf(&b, "  %s\n", formatInstr(p, in))
		}
		if labels[len(t.Instrs)] {
			fmt.Fprintf(&b, "L%d:\n  nop\n", len(t.Instrs))
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// referencedAddrs returns, in ascending order, every address the program
// touches: memory operands, initialized locations, and postcondition
// memory terms. Symbols that are bound but never referenced are dropped.
func referencedAddrs(p *program.Program) []mem.Addr {
	seen := make(map[mem.Addr]bool)
	for ti := range p.Threads {
		for _, in := range p.Threads[ti].Instrs {
			if in.Op.IsMemory() {
				seen[in.Addr] = true
			}
		}
	}
	for a := range p.Init {
		seen[a] = true
	}
	if p.Cond != nil {
		for _, t := range p.Cond.Terms {
			if t.Thread < 0 {
				seen[t.Addr] = true
			}
		}
	}
	addrs := make([]mem.Addr, 0, len(seen))
	for a := range seen {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

func varName(p *program.Program, a mem.Addr) string {
	if s := p.SymbolFor(a); s != "" {
		return s
	}
	return fmt.Sprintf("v%d", a)
}

func formatInstr(p *program.Program, in program.Instr) string {
	v := func() string { return varName(p, in.Addr) }
	src := func() string {
		if in.UseImm {
			return fmt.Sprintf("#%d", in.Imm)
		}
		return in.Rs.String()
	}
	op2 := func() string {
		if in.UseImm {
			return fmt.Sprintf("#%d", in.Imm)
		}
		return in.Rt.String()
	}
	switch in.Op {
	case program.OpNop:
		return "nop"
	case program.OpHalt:
		return "halt"
	case program.OpFence:
		return "fence"
	case program.OpLoadImm:
		return fmt.Sprintf("li %v, #%d", in.Rd, in.Imm)
	case program.OpMov:
		return fmt.Sprintf("mov %v, %v", in.Rd, in.Rs)
	case program.OpAdd:
		return fmt.Sprintf("add %v, %v, %v", in.Rd, in.Rs, in.Rt)
	case program.OpAddImm:
		return fmt.Sprintf("addi %v, %v, #%d", in.Rd, in.Rs, in.Imm)
	case program.OpSub:
		return fmt.Sprintf("sub %v, %v, %v", in.Rd, in.Rs, in.Rt)
	case program.OpLoad:
		return fmt.Sprintf("ld %v, %s", in.Rd, v())
	case program.OpSyncLoad:
		return fmt.Sprintf("sld %v, %s", in.Rd, v())
	case program.OpStore:
		return fmt.Sprintf("st %s, %s", v(), src())
	case program.OpSyncStore:
		return fmt.Sprintf("sst %s, %s", v(), src())
	case program.OpTAS:
		return fmt.Sprintf("tas %v, %s", in.Rd, v())
	case program.OpSwap:
		return fmt.Sprintf("swap %v, %s, %s", in.Rd, v(), src())
	case program.OpBeq, program.OpBne, program.OpBlt, program.OpBge:
		name := map[program.Opcode]string{
			program.OpBeq: "beq", program.OpBne: "bne",
			program.OpBlt: "blt", program.OpBge: "bge",
		}[in.Op]
		return fmt.Sprintf("%s %v, %s, L%d", name, in.Rs, op2(), in.Target)
	case program.OpJmp:
		return fmt.Sprintf("jmp L%d", in.Target)
	default:
		return in.Op.String()
	}
}
