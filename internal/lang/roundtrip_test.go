package lang_test

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"weakorder/internal/gen"
	"weakorder/internal/ideal"
	"weakorder/internal/lang"
	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// library returns every program the round-trip property is checked over:
// the full built-in litmus library, the classic suite, the paper figures,
// and a spread of generated programs (the shrinker in internal/check
// emits reproducers through Format, so faithful round-tripping over the
// generators' whole output shape is load-bearing).
func library() []*program.Program {
	progs := litmus.All()
	progs = append(progs,
		litmus.MessagePassingRacySpin(),
		litmus.Figure3(),
		litmus.Figure3Work(4),
		litmus.TestAndTASWork(2, 1, 3),
		litmus.CriticalSection(3, 2),
		litmus.Barrier(3),
		litmus.RacyCounter(3, 2),
	)
	for _, tc := range litmus.Classic() {
		progs = append(progs, tc.Prog)
	}
	for seed := int64(0); seed < 8; seed++ {
		progs = append(progs,
			gen.RaceFree(gen.RaceFreeConfig{}, seed),
			gen.RaceFree(gen.RaceFreeConfig{Procs: 3, TTAS: true}, seed),
			gen.Handoff(gen.HandoffConfig{}, seed),
			gen.Handoff(gen.HandoffConfig{Stages: 2, Items: 3}, seed),
			gen.Racy(gen.RacyConfig{}, seed),
			gen.Racy(gen.RacyConfig{Procs: 3, SyncFraction: 2}, seed),
		)
	}
	return progs
}

// The text format names locations symbolically, so Parse(Format(p))
// reproduces p up to a consistent renaming of addresses (Parse allocates
// addresses in first-use order). The properties below are therefore:
//
//  1. Format(p) parses back without error;
//  2. formatting is idempotent: Format(Parse(Format(p))) == Format(p)
//     (corpus files are stable under re-emission);
//  3. the reparsed program is structurally identical modulo the address
//     renaming: same threads, same instruction streams (opcode,
//     registers, immediates, branch targets, symbolic locations), same
//     initial memory by name, equivalent postcondition;
//  4. running both under the same idealized schedule yields identical
//     observable results (reads + final memory), compared by name.
func TestRoundTripLibrary(t *testing.T) {
	for _, p := range library() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			f1 := lang.Format(p)
			p2, err := lang.Parse(f1)
			if err != nil {
				t.Fatalf("reparse failed: %v\n%s", err, f1)
			}
			if err := p2.Validate(); err != nil {
				t.Fatalf("reparsed program invalid: %v", err)
			}
			f2 := lang.Format(p2)
			if f1 != f2 {
				t.Fatalf("format not idempotent:\n--- first\n%s\n--- second\n%s", f1, f2)
			}
			if err := structurallyEqual(p, p2); err != nil {
				t.Fatalf("round trip changed the program: %v\n%s", err, f1)
			}
			// Once through the round trip, further trips must be exact:
			// corpus files are parsed, possibly re-emitted, and re-parsed,
			// and machine behavior depends on raw addresses.
			p3, err := lang.Parse(f2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(p2, p3) {
				t.Fatalf("parse/format fixpoint violated:\n%s", f2)
			}
		})
	}
}

// TestRoundTripSemantics runs original and round-tripped programs under
// the same idealized schedule and demands identical observable results.
func TestRoundTripSemantics(t *testing.T) {
	for _, p := range library() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			p2, err := lang.Parse(lang.Format(p))
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= 3; seed++ {
				a, err := ideal.RunSeed(p, ideal.Config{}, seed)
				if err != nil {
					t.Fatal(err)
				}
				b, err := ideal.RunSeed(p2, ideal.Config{}, seed)
				if err != nil {
					t.Fatal(err)
				}
				ka := symbolicKey(p, mem.ResultOf(a.Execution()))
				kb := symbolicKey(p2, mem.ResultOf(b.Execution()))
				if ka != kb {
					t.Fatalf("seed %d: results diverge:\n  original: %s\n  reparsed: %s", seed, ka, kb)
				}
			}
		})
	}
}

// locName resolves an address to its symbol, falling back to the
// formatter's v<addr> spelling for anonymous locations.
func locName(p *program.Program, a mem.Addr) string {
	if s := p.SymbolFor(a); s != "" {
		return s
	}
	return fmt.Sprintf("v%d", a)
}

func structurallyEqual(a, b *program.Program) error {
	if len(a.Threads) != len(b.Threads) {
		return fmt.Errorf("thread count %d != %d", len(a.Threads), len(b.Threads))
	}
	for ti := range a.Threads {
		ta, tb := &a.Threads[ti], &b.Threads[ti]
		if ta.Name != tb.Name {
			return fmt.Errorf("thread %d name %q != %q", ti, ta.Name, tb.Name)
		}
		if len(ta.Instrs) != len(tb.Instrs) {
			return fmt.Errorf("%s: instruction count %d != %d", ta.Name, len(ta.Instrs), len(tb.Instrs))
		}
		for i := range ta.Instrs {
			ia, ib := ta.Instrs[i], tb.Instrs[i]
			if ia.Op.IsMemory() {
				na, nb := locName(a, ia.Addr), locName(b, ib.Addr)
				if na != nb {
					return fmt.Errorf("%s@%d: location %q != %q", ta.Name, i, na, nb)
				}
			}
			// Addr is compared by name above; Sym is diagnostic only.
			ia.Addr, ib.Addr = 0, 0
			ia.Sym, ib.Sym = "", ""
			if ia != ib {
				return fmt.Errorf("%s@%d: %+v != %+v", ta.Name, i, ta.Instrs[i], tb.Instrs[i])
			}
		}
	}
	if err := initEqual(a, b); err != nil {
		return err
	}
	switch {
	case a.Cond == nil && b.Cond == nil:
	case a.Cond == nil || b.Cond == nil:
		return fmt.Errorf("postcondition presence differs")
	case a.Cond.String() != b.Cond.String():
		return fmt.Errorf("postcondition %q != %q", a.Cond, b.Cond)
	}
	return nil
}

// initEqual compares initial memory by symbol name, treating absent
// entries as zero.
func initEqual(a, b *program.Program) error {
	byName := func(p *program.Program) map[string]mem.Value {
		out := make(map[string]mem.Value)
		for addr, v := range p.Init {
			if v != 0 {
				out[locName(p, addr)] = v
			}
		}
		return out
	}
	na, nb := byName(a), byName(b)
	for k, v := range na {
		if nb[k] != v {
			return fmt.Errorf("init %s: %d != %d", k, v, nb[k])
		}
	}
	for k, v := range nb {
		if na[k] != v {
			return fmt.Errorf("init %s: %d != %d", k, na[k], v)
		}
	}
	return nil
}

// symbolicKey is mem.Result.Key with addresses replaced by their symbol
// names, so results of address-renamed programs compare equal.
func symbolicKey(p *program.Program, r mem.Result) string {
	ids := make([]mem.OpID, 0, len(r.Reads))
	for id := range r.Reads {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	var sb strings.Builder
	for _, id := range ids {
		obs := r.Reads[id]
		fmt.Fprintf(&sb, "%s[%s]=%d;", id, locName(p, obs.Addr), obs.Value)
	}
	sb.WriteByte('|')
	finals := make([]string, 0, len(r.Final))
	for a, v := range r.Final {
		if v != 0 {
			finals = append(finals, fmt.Sprintf("%s=%d", locName(p, a), v))
		}
	}
	sort.Strings(finals)
	sb.WriteString(strings.Join(finals, ";"))
	return sb.String()
}
