// Package workload builds the parameterized synthetic workloads driving
// the quantitative study the paper proposes as future work ("a
// quantitative performance analysis comparing implementations for the old
// and new definitions of weak ordering"): critical sections with variable
// data-per-synchronization ratios, producer/consumer pipelines, spin-lock
// contention, and the Figure 3 release/acquire scenario. All workloads
// obey DRF0 by construction, so every weakly ordered policy must produce
// sequentially consistent results while differing (sometimes sharply) in
// cycles.
package workload

import (
	"fmt"

	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// CriticalSection re-exports the spin-lock counter workload: procs
// processors each acquire a TAS lock rounds times and bump a shared
// counter.
func CriticalSection(procs, rounds int) *program.Program {
	return litmus.CriticalSection(procs, rounds)
}

// TestAndTAS re-exports the Test&TestAndSet variant (Section 6).
func TestAndTAS(procs, rounds int) *program.Program {
	return litmus.TestAndTAS(procs, rounds)
}

// Barrier re-exports the centralized barrier workload.
func Barrier(procs int) *program.Program { return litmus.Barrier(procs) }

// Fig3 re-exports the Figure 3 release/acquire scenario with the given
// amount of surrounding work.
func Fig3(work int) *program.Program { return litmus.Figure3Work(work) }

// Fig3Scaled scales the Figure 3 release/acquire scenario to procs
// processors: every processor but the releaser first reads x (becoming a
// sharer) and raises a per-processor ready flag; the releaser acquires
// all flags, writes x — invalidating the procs-1 shared copies — and
// releases s; the acquirer then reads x. The write's global performance
// now waits on procs-1 invalidation acknowledgements, so Definition 1's
// stall at the release grows with the machine while the Section 5.3
// implementation's stays flat (the acquirer's forwarded request waits on
// the reserve bit instead). DRF0 holds by construction: every sharer's
// read is ordered before W(x) through its flag, and the acquirer's final
// read after W(x) through s.
func Fig3Scaled(procs int) *program.Program {
	if procs < 3 {
		procs = 3
	}
	b := program.NewBuilder(fmt.Sprintf("fig3scaled-%dp", procs))
	x := b.Var("x")
	s := b.Var("s")
	out := b.Var("out")
	flags := make([]mem.Addr, procs)
	for i := 1; i < procs; i++ {
		flags[i] = b.Var(fmt.Sprintf("f%d", i))
	}

	rel := b.NamedThread("releaser")
	for i := 1; i < procs; i++ {
		spin := fmt.Sprintf("wait%d", i)
		rel.Label(spin)
		rel.SyncLoad(program.R0, flags[i])
		rel.BltImm(program.R0, 1, spin)
	}
	rel.StoreImm(x, 1)
	rel.SyncStoreImm(s, 1)

	acq := b.NamedThread("acquirer")
	acq.Load(program.R1, x)
	acq.SyncStoreImm(flags[1], 1)
	acq.Label("acq")
	acq.SyncLoad(program.R0, s)
	acq.BltImm(program.R0, 1, "acq")
	acq.Load(program.R2, x)
	acq.Store(out, program.R2)

	for i := 2; i < procs; i++ {
		sh := b.NamedThread(fmt.Sprintf("sharer%d", i))
		sh.Load(program.R0, x)
		sh.SyncStoreImm(flags[i], 1)
	}
	return b.MustBuild()
}

// DataPerSync builds the sync-amortization workload: each processor
// executes rounds of (dataOps independent data writes to its own shard of
// a shared array, then one release/acquire on a per-neighbor flag). The
// flags form a ring handoff: processor i releases flag i and acquires
// flag (i+1) mod procs, so each round globally synchronizes the ring.
// Varying dataOps sweeps the data:synchronization ratio — the axis along
// which SC, Definition 1 and the new implementation separate.
func DataPerSync(procs, rounds, dataOps int) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("datasync-%dp-%dr-%dd", procs, rounds, dataOps))
	flags := make([]mem.Addr, procs)
	for i := range flags {
		flags[i] = b.Var(fmt.Sprintf("flag%d", i))
	}
	for pi := 0; pi < procs; pi++ {
		th := b.Thread()
		for r := 0; r < rounds; r++ {
			for d := 0; d < dataOps; d++ {
				v := b.Var(fmt.Sprintf("d%d_%d", pi, d))
				th.StoreImm(v, mem.Value(r*100+d))
			}
			// Release own flag (stamped with the round), then acquire the
			// right neighbor's flag for this round.
			th.SyncStoreImm(flags[pi], mem.Value(r+1))
			next := flags[(pi+1)%procs]
			spin := fmt.Sprintf("spin%d", r)
			th.Label(spin)
			th.SyncLoad(program.R0, next)
			th.BltImm(program.R0, mem.Value(r+1), spin)
		}
	}
	return b.MustBuild()
}

// ProducerConsumer builds pairs independent producer/consumer couples:
// each producer writes items values into its slot, setting a flag the
// consumer spins on; the consumer acknowledges through a second flag.
// Flags are synchronization variables; slots are data — a DRF0 handoff
// pipeline whose throughput is bounded by synchronization latency.
func ProducerConsumer(pairs, items int) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("prodcons-%dx%d", pairs, items))
	for pr := 0; pr < pairs; pr++ {
		slot := b.Var(fmt.Sprintf("slot%d", pr))
		full := b.Var(fmt.Sprintf("full%d", pr))
		ack := b.Var(fmt.Sprintf("ack%d", pr))

		prod := b.NamedThread(fmt.Sprintf("prod%d", pr))
		for it := 0; it < items; it++ {
			prod.StoreImm(slot, mem.Value(1000+it))
			prod.SyncStoreImm(full, mem.Value(it+1))
			wait := fmt.Sprintf("wait%d", it)
			prod.Label(wait)
			prod.SyncLoad(program.R0, ack)
			prod.BltImm(program.R0, mem.Value(it+1), wait)
		}

		cons := b.NamedThread(fmt.Sprintf("cons%d", pr))
		for it := 0; it < items; it++ {
			wait := fmt.Sprintf("wait%d", it)
			cons.Label(wait)
			cons.SyncLoad(program.R0, full)
			cons.BltImm(program.R0, mem.Value(it+1), wait)
			cons.Load(program.R1, slot)
			cons.Store(b.Var(fmt.Sprintf("out%d", pr)), program.R1)
			cons.SyncStoreImm(ack, mem.Value(it+1))
		}
	}
	return b.MustBuild()
}

// FalseShare builds a workload where processors write disjoint variables
// with no synchronization at all (embarrassingly parallel): the baseline
// where consistency policies should differ least.
func FalseShare(procs, writes int) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("parallel-%dp-%dw", procs, writes))
	for pi := 0; pi < procs; pi++ {
		th := b.Thread()
		for w := 0; w < writes; w++ {
			th.StoreImm(b.Var(fmt.Sprintf("v%d_%d", pi, w%8)), mem.Value(w))
		}
	}
	return b.MustBuild()
}
