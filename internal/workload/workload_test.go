package workload

import (
	"testing"

	"weakorder/internal/drf"
	"weakorder/internal/hb"
	"weakorder/internal/ideal"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/program"
)

func checkDRF(t *testing.T, p *program.Program) {
	t.Helper()
	v, err := drf.Check(p, hb.SyncAll, drf.CheckConfig{
		Enum: ideal.EnumConfig{
			Interp:        ideal.Config{MaxMemOpsPerThread: 14},
			SkipTruncated: true,
			MaxPaths:      3_000_000,
		},
	})
	if err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	if !v.DRF {
		t.Fatalf("%s must obey DRF0; races: %v", p.Name, v.Races)
	}
}

func TestDataPerSyncIsDRF0(t *testing.T) {
	checkDRF(t, DataPerSync(2, 1, 1))
}

func TestProducerConsumerIsDRF0(t *testing.T) {
	checkDRF(t, ProducerConsumer(1, 1))
}

func TestDataPerSyncRunsOnAllPolicies(t *testing.T) {
	p := DataPerSync(4, 2, 4)
	for _, pol := range []policy.Kind{policy.SC, policy.WODef1, policy.WODef2, policy.WODef2RO} {
		cfg := machine.Config{Policy: pol, Topology: machine.TopoNetwork, Caches: true}
		res, err := machine.Run(p, cfg, 3)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		// Every flag must end at the round count.
		for i := 0; i < 4; i++ {
			a, ok := p.AddrOf("flag0")
			if i == 0 && (!ok || res.Exec.Final[a] != 2) {
				t.Errorf("%v: flag0 = %d, want 2", pol, res.Exec.Final[a])
			}
		}
	}
}

func TestProducerConsumerDeliversItems(t *testing.T) {
	p := ProducerConsumer(2, 3)
	if p.NumThreads() != 4 {
		t.Fatalf("threads = %d, want 4", p.NumThreads())
	}
	for _, pol := range []policy.Kind{policy.WODef2, policy.WODef2RO} {
		cfg := machine.Config{Policy: pol, Topology: machine.TopoNetwork, Caches: true}
		res, err := machine.Run(p, cfg, 9)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		for pr := 0; pr < 2; pr++ {
			out, _ := p.AddrOf("out0")
			if pr == 1 {
				out, _ = p.AddrOf("out1")
			}
			// The consumer's last observed item is the final one.
			if got := res.Exec.Final[out]; got != mem.Value(1000+2) {
				t.Errorf("%v: out%d = %d, want %d", pol, pr, got, 1000+2)
			}
		}
	}
}

func TestFalseShareScalesWithoutSync(t *testing.T) {
	p := FalseShare(4, 8)
	cfg := machine.Config{Policy: policy.WODef2, Topology: machine.TopoNetwork, Caches: true}
	res, err := machine.Run(p, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Stats.Procs {
		if s := res.Stats.Procs[i].SyncStall(); s != 0 {
			t.Errorf("P%d sync stall = %d on a sync-free workload", i, s)
		}
	}
}

func TestReExportsMatchLitmus(t *testing.T) {
	if CriticalSection(2, 1).Name != "critsec-2p-1r" {
		t.Error("CriticalSection re-export broken")
	}
	if Barrier(2).NumThreads() != 2 {
		t.Error("Barrier re-export broken")
	}
	if TestAndTAS(2, 1) == nil || Fig3(1) == nil {
		t.Error("re-exports returned nil")
	}
}
