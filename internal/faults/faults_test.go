package faults

import (
	"reflect"
	"strings"
	"testing"

	"weakorder/internal/network"
	"weakorder/internal/sim"
)

// Faultable test payloads carry kind 42 with the message id in ReqID;
// kind 7 payloads are protected and pass through unfaulted.
func fakeMsg(id int) network.Msg { return network.Msg{Kind: 42, ReqID: uint64(id)} }

func faultableFake(m network.Msg) bool { return m.Kind == 42 }

type arrival struct {
	at       sim.Time
	src, dst int
	m        network.Msg
}

// run drives a scripted send schedule through a faulty wrapper over a
// jitter-free general network and returns the delivery schedule.
func run(t *testing.T, seed uint64, plan Plan, record bool) ([]arrival, *Net) {
	t.Helper()
	k := &sim.Kernel{}
	inner := network.NewGeneral(k, network.GeneralConfig{BaseLatency: 3, Seed: 1})
	n := New(k, inner, plan, seed, Hooks{Faultable: faultableFake, Record: record})
	var got []arrival
	h := func(dst int) network.Handler {
		return func(src int, m network.Msg) {
			got = append(got, arrival{at: k.Now(), src: src, dst: dst, m: m})
		}
	}
	n.Attach(2, h(2))
	n.Attach(3, h(3))
	for i := 0; i < 64; i++ {
		i := i
		k.At(sim.Time(1+i*2), func() {
			n.Send(i%2, 2+i%2, fakeMsg(i))
			if i%4 == 0 {
				n.Send(i%2, 3, network.Msg{Kind: 7}) // never faulted
			}
		})
	}
	k.AdvanceTo(10_000)
	return got, n
}

func TestSameSeedSamePlanIdenticalSchedule(t *testing.T) {
	plan := Severe()
	a, na := run(t, 42, plan, true)
	b, nb := run(t, 42, plan, true)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("delivery schedules differ for identical (seed, plan):\n%v\nvs\n%v", a, b)
	}
	if na.FaultStats() != nb.FaultStats() {
		t.Fatalf("fault stats differ: %v vs %v", na.FaultStats(), nb.FaultStats())
	}
	if !reflect.DeepEqual(na.Events(), nb.Events()) {
		t.Fatal("event logs differ for identical (seed, plan)")
	}
}

func TestDifferentSeedDifferentSchedule(t *testing.T) {
	plan := Severe()
	a, _ := run(t, 1, plan, false)
	b, _ := run(t, 2, plan, false)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical schedules under a severe plan (suspicious)")
	}
}

func TestNonePlanIsTransparent(t *testing.T) {
	faulted, n := run(t, 7, None(), true)
	clean, _ := run(t, 99, None(), false) // seed irrelevant: no decisions drawn
	if !reflect.DeepEqual(faulted, clean) {
		t.Fatal("empty plan altered the delivery schedule")
	}
	st := n.FaultStats()
	if st.Drops != 0 || st.Dups != 0 || st.Delays != 0 {
		t.Fatalf("empty plan recorded faults: %v", st)
	}
	if len(n.Events()) != 0 {
		t.Fatalf("empty plan recorded %d events", len(n.Events()))
	}
}

func TestProtectedMessagesNeverFaulted(t *testing.T) {
	// Drop everything faultable: every fakeMsg vanishes, every protected
	// string survives.
	got, n := run(t, 5, Plan{Drop: 1}, false)
	for _, d := range got {
		if faultableFake(d.m) {
			t.Fatalf("faultable message delivered under Drop=1: %+v", d)
		}
	}
	if len(got) == 0 {
		t.Fatal("protected messages were dropped")
	}
	st := n.FaultStats()
	if st.Drops != st.Faultable {
		t.Fatalf("Drop=1: drops=%d faultable=%d", st.Drops, st.Faultable)
	}
}

func TestDupDeliversTwice(t *testing.T) {
	got, n := run(t, 11, Plan{Dup: 1}, false)
	counts := make(map[int]int)
	for _, d := range got {
		if faultableFake(d.m) {
			counts[int(d.m.ReqID)]++
		}
	}
	for id, c := range counts {
		if c != 2 {
			t.Fatalf("Dup=1: message %d delivered %d times, want 2", id, c)
		}
	}
	if st := n.FaultStats(); st.Dups != st.Faultable {
		t.Fatalf("Dup=1: dups=%d faultable=%d", st.Dups, st.Faultable)
	}
}

func TestDelayAddsBoundedLatency(t *testing.T) {
	const maxExtra = 9
	got, n := run(t, 13, Plan{Delay: 1, MaxExtraDelay: maxExtra}, false)
	if len(got) == 0 {
		t.Fatal("no deliveries")
	}
	// Base latency 3, sends at 1+2i: a faultable delivery at send+3+e
	// with 1 <= e <= maxExtra.
	for _, d := range got {
		if !faultableFake(d.m) {
			continue
		}
		id := int(d.m.ReqID)
		sent := sim.Time(1 + id*2)
		extra := d.at - sent - 3
		if extra < 1 || extra > maxExtra {
			t.Fatalf("message %d: extra delay %d outside [1,%d]", id, extra, maxExtra)
		}
	}
	st := n.FaultStats()
	if st.Delays != st.Faultable || st.ExtraDelayCycles == 0 {
		t.Fatalf("Delay=1 stats: %v", st)
	}
}

func TestParseAndValidate(t *testing.T) {
	for _, name := range []string{"none", "mild", "severe", " Mild ", ""} {
		p, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Validate(%q): %v", name, err)
		}
	}
	if _, err := Parse("catastrophic"); err == nil {
		t.Fatal("Parse of unknown plan must fail")
	}
	if err := (Plan{Drop: 1.5}).Validate(); err == nil {
		t.Fatal("Drop > 1 must fail validation")
	}
	if err := (Plan{Delay: 0.5}).Validate(); err == nil {
		t.Fatal("Delay without MaxExtraDelay must fail validation")
	}
	if None().Enabled() || !Mild().Enabled() || !Severe().Enabled() {
		t.Fatal("Enabled() disagrees with presets")
	}
}

// TestParseCustomSpecs covers the key=value plan grammar: bare specs,
// preset-plus-override, and the noretry flag.
func TestParseCustomSpecs(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want Plan
	}{
		{"drop=0.1", Plan{Drop: 0.1}},
		{"drop=0.1,dup=0.05", Plan{Drop: 0.1, Dup: 0.05}},
		{"delay=0.2,maxdelay=32", Plan{Delay: 0.2, MaxExtraDelay: 32}},
		{" Drop=0.1 , NORETRY ", Plan{Drop: 0.1, DisableRetry: true}},
		{"severe,drop=0.5", func() Plan { p := Severe(); p.Drop = 0.5; return p }()},
		{"mild,noretry", func() Plan { p := Mild(); p.DisableRetry = true; return p }()},
		{"drop=0", Plan{}},
	} {
		got, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

// TestParseErrors is the table of malformed plan specs: every one must
// be rejected with a diagnostic naming the offending field, never
// silently coerced into a plan.
func TestParseErrors(t *testing.T) {
	for _, tc := range []struct {
		spec    string
		wantSub string
	}{
		{"catastrophic", "bad plan field"},
		{"drop", "bad plan field"},
		{"drop=", "bad plan field"},
		{"=0.1", "unknown plan field"},
		{"drop=abc", "bad drop probability"},
		{"drop=1.5", "outside [0,1]"},
		{"drop=-0.1", "outside [0,1]"},
		{"dup=2", "outside [0,1]"},
		{"delay=0.2", "without maxdelay"},
		{"delay=0.2,maxdelay=0", "bad maxdelay"},
		{"delay=0.2,maxdelay=-3", "bad maxdelay"},
		{"delay=0.2,maxdelay=many", "bad maxdelay"},
		{"maxdelay=1x", "bad maxdelay"},
		{"jitter=0.1", "unknown plan field"},
		{"noretry=yes", "unknown plan field"},
		{"mild,turbo=1", "unknown plan field"},
		{"drop=0.1,,dup=0.1", "bad plan field"},
	} {
		p, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("Parse(%q) accepted as %+v, want error containing %q", tc.spec, p, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error %q does not mention %q", tc.spec, err, tc.wantSub)
		}
	}
}

func TestEventAndStatsRendering(t *testing.T) {
	e := Event{At: 118, Kind: KindDrop, Src: 1, Dst: 4, Msg: "GetX"}
	if got := e.String(); got != "t=118 DROP GetX 1->4" {
		t.Fatalf("Event.String() = %q", got)
	}
	d := Event{At: 7, Kind: KindDelay, Src: 0, Dst: 2, Msg: "GetS", Extra: 12}
	if got := d.String(); got != "t=7 DELAY GetS 0->2 +12" {
		t.Fatalf("Event.String() = %q", got)
	}
	r := Event{At: 9, Kind: KindRetry, Src: 0, Dst: 2, Msg: "PutX", Extra: 3}
	if got := r.String(); got != "t=9 RETRY PutX 0->2 attempt=3" {
		t.Fatalf("Event.String() = %q", got)
	}
	if Mild().String() == "" || Severe().String() == "" || None().String() != "none" {
		t.Fatal("Plan.String() rendering broken")
	}
}
