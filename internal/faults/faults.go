// Package faults injects deterministic message-level faults into an
// interconnect: extra delay, duplication, and drops, applied per message
// according to a Plan with every random decision drawn from a splitmix64
// stream. Any (seed, plan) pair therefore replays byte-identically, so a
// fault schedule that exposes a protocol bug is a reproducer, not an
// anecdote.
//
// The injector is an adversarial test of the paper's Section 5.3 claims:
// the directory protocol, hardened with per-request retry (cache side)
// and idempotent request handling (directory side), must keep DRF0
// programs appearing sequentially consistent — Definition 2 — under any
// schedule of delays, duplications, and drop-with-retry.
//
// Faults apply only to messages the hardening covers: the request-class
// coherence messages (GetS, GetX, SyncRead, PutX), selected by the
// Faultable predicate the machine supplies. Replies, invalidations, and
// acknowledgement-phase messages pass through unfaulted — the protocol
// relies on their point-to-point order (e.g. a Data fill delayed past a
// later Inv would silently install a stale shared copy), and since every
// accepted request produces exactly one reply, retrying requests alone
// recovers from any drop. Because faults only ever *add* latency, a
// faulted message can fall behind protected traffic but never overtake
// it, which keeps the protocol's channel-ordering arguments intact.
package faults

import (
	"fmt"
	"strconv"
	"strings"

	"weakorder/internal/network"
	"weakorder/internal/sim"
	"weakorder/internal/splitmix"
)

// Plan is a fault intensity configuration. Probabilities are per
// transmission: a duplicated message rolls drop and delay independently
// for each copy, so duplication also amplifies reordering.
type Plan struct {
	// Drop is the probability a faultable message is discarded.
	Drop float64 `json:"drop,omitempty"`
	// Dup is the probability a faultable message is transmitted twice.
	Dup float64 `json:"dup,omitempty"`
	// Delay is the probability a transmission incurs extra latency.
	Delay float64 `json:"delay,omitempty"`
	// MaxExtraDelay bounds the extra latency: 1..MaxExtraDelay cycles,
	// uniform. Required when Delay > 0.
	MaxExtraDelay sim.Time `json:"maxExtraDelay,omitempty"`
	// DisableRetry disarms the caches' timeout/retry protocol while the
	// faults stay active — a deliberately broken configuration used by
	// tests to prove the liveness diagnostics fire (a dropped request is
	// then lost forever and the machine deadlocks into a LivenessReport).
	DisableRetry bool `json:"disableRetry,omitempty"`
}

// None returns the empty plan (no faults).
func None() Plan { return Plan{} }

// Mild returns a light fault plan: occasional drops and duplicates,
// moderate extra delay.
func Mild() Plan {
	return Plan{Drop: 0.02, Dup: 0.02, Delay: 0.10, MaxExtraDelay: 16}
}

// Severe returns a hostile fault plan: frequent drops, duplicates, and
// large delays.
func Severe() Plan {
	return Plan{Drop: 0.15, Dup: 0.10, Delay: 0.35, MaxExtraDelay: 64}
}

// Parse resolves a plan specification: a preset name ("none", "mild",
// "severe") or a comma-separated custom spec of key=value fields —
// "drop=0.1,dup=0.05,delay=0.2,maxdelay=32,noretry". A custom spec may
// also start with a preset, with later fields overriding it
// ("severe,drop=0.5"). The resulting plan is validated: probabilities
// must lie in [0,1] and delay>0 requires maxdelay>0.
func Parse(name string) (Plan, error) {
	spec := strings.TrimSpace(name)
	plan, perr := parsePreset(spec)
	if perr == nil {
		return plan, nil
	}
	fields := strings.Split(spec, ",")
	start := 0
	if p, err := parsePreset(fields[0]); err == nil {
		plan, start = p, 1
	} else {
		plan = None()
	}
	for _, field := range fields[start:] {
		field = strings.TrimSpace(field)
		key, val, hasVal := strings.Cut(field, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		switch {
		case key == "noretry" && !hasVal:
			plan.DisableRetry = true
			continue
		case !hasVal || val == "":
			return Plan{}, fmt.Errorf("faults: bad plan field %q (want a preset none/mild/severe, key=value such as drop=0.1, or noretry): plan %q", field, name)
		}
		switch key {
		case "drop", "dup", "delay":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("faults: bad %s probability %q: plan %q", key, val, name)
			}
			switch key {
			case "drop":
				plan.Drop = p
			case "dup":
				plan.Dup = p
			case "delay":
				plan.Delay = p
			}
		case "maxdelay":
			d, err := strconv.ParseUint(val, 10, 32)
			if err != nil || d == 0 {
				return Plan{}, fmt.Errorf("faults: bad maxdelay %q (want a positive cycle count): plan %q", val, name)
			}
			plan.MaxExtraDelay = sim.Time(d)
		default:
			return Plan{}, fmt.Errorf("faults: unknown plan field %q (want drop=, dup=, delay=, maxdelay=, or noretry): plan %q", key, name)
		}
	}
	if plan.Delay > 0 && plan.MaxExtraDelay == 0 {
		return Plan{}, fmt.Errorf("faults: plan %q sets delay without maxdelay", name)
	}
	if err := plan.Validate(); err != nil {
		return Plan{}, fmt.Errorf("%w: plan %q", err, name)
	}
	return plan, nil
}

// parsePreset resolves the three preset names.
func parsePreset(name string) (Plan, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "none":
		return None(), nil
	case "mild":
		return Mild(), nil
	case "severe":
		return Severe(), nil
	default:
		return Plan{}, fmt.Errorf("faults: unknown plan %q (want a preset none/mild/severe or a drop=/dup=/delay=/maxdelay=/noretry spec)", name)
	}
}

// Enabled reports whether the plan perturbs any message.
func (p Plan) Enabled() bool { return p.Drop > 0 || p.Dup > 0 || p.Delay > 0 }

// Validate rejects malformed plans.
func (p Plan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{{"Drop", p.Drop}, {"Dup", p.Dup}, {"Delay", p.Delay}} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.Delay > 0 && p.MaxExtraDelay == 0 {
		return fmt.Errorf("faults: Delay %v requires MaxExtraDelay > 0", p.Delay)
	}
	return nil
}

// String renders the plan compactly, e.g. "drop=0.02 dup=0.02 delay=0.10(max 16)".
func (p Plan) String() string {
	if !p.Enabled() {
		return "none"
	}
	var parts []string
	if p.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%.2f", p.Drop))
	}
	if p.Dup > 0 {
		parts = append(parts, fmt.Sprintf("dup=%.2f", p.Dup))
	}
	if p.Delay > 0 {
		parts = append(parts, fmt.Sprintf("delay=%.2f(max %d)", p.Delay, p.MaxExtraDelay))
	}
	if p.DisableRetry {
		parts = append(parts, "retry-disabled")
	}
	return strings.Join(parts, " ")
}

// Kind classifies a fault event.
type Kind uint8

// Fault event kinds.
const (
	// KindDrop: a transmission was discarded.
	KindDrop Kind = iota
	// KindDup: a message was transmitted twice.
	KindDup
	// KindDelay: a transmission incurred extra latency.
	KindDelay
	// KindRetry: a cache re-sent a timed-out request (noted by the
	// retry protocol via NoteRetry, not decided by the injector).
	KindRetry
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "DROP"
	case KindDup:
		return "DUP"
	case KindDelay:
		return "DELAY"
	case KindRetry:
		return "RETRY"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event records one fault decision, for timeline interleaving.
type Event struct {
	// At is the simulation time of the decision (send time, not
	// delivery time).
	At sim.Time
	// Kind classifies the event.
	Kind Kind
	// Src and Dst are the message's endpoints.
	Src, Dst int
	// Msg names the affected message (via the Describe hook).
	Msg string
	// Extra is the added latency in cycles (KindDelay) or the retry
	// attempt number (KindRetry); zero otherwise.
	Extra uint64
}

// String renders the event, e.g. "t=118 DROP GetX 1->4".
func (e Event) String() string {
	return fmt.Sprintf("t=%d %v %s", e.At, e.Kind, e.Describe())
}

// Describe renders the event body without the timestamp and kind —
// "GetX 1->4 +12" — for callers that lay those out themselves (timeline
// rendering).
func (e Event) Describe() string {
	s := fmt.Sprintf("%s %d->%d", e.Msg, e.Src, e.Dst)
	switch e.Kind {
	case KindDelay:
		s += fmt.Sprintf(" +%d", e.Extra)
	case KindRetry:
		s += fmt.Sprintf(" attempt=%d", e.Extra)
	}
	return s
}

// Stats counts injector activity.
type Stats struct {
	// Faultable counts messages eligible for faults.
	Faultable uint64
	// Drops counts discarded transmissions.
	Drops uint64
	// Dups counts duplicated messages.
	Dups uint64
	// Delays counts transmissions given extra latency.
	Delays uint64
	// ExtraDelayCycles sums the added latency.
	ExtraDelayCycles uint64
	// Retries counts resends noted by the caches' retry protocol.
	Retries uint64
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("faultable=%d drops=%d dups=%d delays=%d(+%d cycles) retries=%d",
		s.Faultable, s.Drops, s.Dups, s.Delays, s.ExtraDelayCycles, s.Retries)
}

// Hooks are the machine-supplied classification callbacks, keeping this
// package independent of the protocol's message vocabulary.
type Hooks struct {
	// Faultable selects the messages the plan may perturb. Nil means no
	// message is faultable (the injector becomes a pass-through).
	Faultable func(network.Msg) bool
	// Describe names a message for the event log (defaults to %T).
	Describe func(network.Msg) string
	// Record enables the event log (Events); campaigns leave it off to
	// avoid the memory.
	Record bool
}

// Net wraps an inner Network, applying plan to faultable messages. All
// randomness comes from a splitmix64 stream seeded at construction, and
// the injector is driven only by deterministic kernel events, so a
// (seed, plan) pair fully determines the fault schedule.
type Net struct {
	k      *sim.Kernel
	inner  network.Network
	plan   Plan
	rng    splitmix.Stream
	hooks  Hooks
	stats  Stats
	events []Event
	free   []*delayTask
}

// delayTask is a pooled deferred retransmission: one heap object per
// concurrently delayed message, reused across the run instead of
// allocating a fresh closure for every delay decision.
type delayTask struct {
	n        *Net
	src, dst int
	m        network.Msg
	run      func()
}

// fire recycles the task before forwarding, so the pool slot is free
// even if the send schedules further work.
func (t *delayTask) fire() {
	n, src, dst, m := t.n, t.src, t.dst, t.m
	n.free = append(n.free, t)
	n.inner.Send(src, dst, m)
}

// New wraps inner with the fault plan, seeding the decision stream from
// seed.
func New(k *sim.Kernel, inner network.Network, plan Plan, seed uint64, hooks Hooks) *Net {
	n := &Net{k: k, inner: inner, plan: plan, hooks: hooks}
	n.rng.Reseed(seed)
	return n
}

// Reset reprograms the injector in place for a new run: a fresh plan and
// decision-stream seed, zeroed counters, and an emptied event log. The
// kernel, inner network, and hooks persist — pooled machines reuse one
// injector across runs. A Reset(plan, seed) injector behaves
// byte-identically to New(k, inner, plan, seed, hooks).
func (n *Net) Reset(plan Plan, seed uint64) {
	n.plan = plan
	n.rng.Reseed(seed)
	n.stats = Stats{}
	n.events = n.events[:0]
}

// Attach implements network.Network.
func (n *Net) Attach(id int, h network.Handler) { n.inner.Attach(id, h) }

// Send implements network.Network: faultable messages roll duplication
// once and then drop/delay per transmission; everything else passes
// straight through.
func (n *Net) Send(src, dst int, m network.Msg) {
	if n.hooks.Faultable == nil || !n.hooks.Faultable(m) {
		n.inner.Send(src, dst, m)
		return
	}
	n.stats.Faultable++
	n.transmit(src, dst, m)
	if n.plan.Dup > 0 && n.rng.Float64() < n.plan.Dup {
		n.stats.Dups++
		n.event(Event{Kind: KindDup, Src: src, Dst: dst, Msg: n.describe(m)})
		n.transmit(src, dst, m)
	}
}

// transmit applies drop and delay to one copy of a message.
func (n *Net) transmit(src, dst int, m network.Msg) {
	if n.plan.Drop > 0 && n.rng.Float64() < n.plan.Drop {
		n.stats.Drops++
		n.event(Event{Kind: KindDrop, Src: src, Dst: dst, Msg: n.describe(m)})
		return
	}
	if n.plan.Delay > 0 && n.rng.Float64() < n.plan.Delay {
		extra := sim.Time(1 + n.rng.Uint64n(uint64(n.plan.MaxExtraDelay)))
		n.stats.Delays++
		n.stats.ExtraDelayCycles += uint64(extra)
		n.event(Event{Kind: KindDelay, Src: src, Dst: dst, Msg: n.describe(m), Extra: uint64(extra)})
		var t *delayTask
		if k := len(n.free); k > 0 {
			t = n.free[k-1]
			n.free = n.free[:k-1]
		} else {
			t = &delayTask{n: n}
			t.run = t.fire
		}
		t.src, t.dst, t.m = src, dst, m
		n.k.After(extra, t.run)
		return
	}
	n.inner.Send(src, dst, m)
}

// NoteRetry records a retry-protocol resend in the event log and stats.
// The resend itself travels through Send like any message (and may be
// faulted again).
func (n *Net) NoteRetry(src, dst int, m network.Msg, attempt int) {
	n.stats.Retries++
	n.event(Event{Kind: KindRetry, Src: src, Dst: dst, Msg: n.describe(m), Extra: uint64(attempt)})
}

// Stats implements network.Network (traffic statistics of the inner
// network; see FaultStats for injector counters).
func (n *Net) Stats() network.Stats { return n.inner.Stats() }

// Err implements network.Network.
func (n *Net) Err() error { return n.inner.Err() }

// FaultStats returns the injector's counters.
func (n *Net) FaultStats() Stats { return n.stats }

// Events returns the recorded fault events in decision order (empty
// unless Hooks.Record was set).
func (n *Net) Events() []Event { return n.events }

func (n *Net) describe(m network.Msg) string {
	if n.hooks.Describe != nil {
		return n.hooks.Describe(m)
	}
	return fmt.Sprintf("%T", m)
}

func (n *Net) event(e Event) {
	if !n.hooks.Record {
		return
	}
	e.At = n.k.Now()
	n.events = append(n.events, e)
}

// Compile-time interface check.
var _ network.Network = (*Net)(nil)
