// Package splitmix implements the splitmix64 pseudo-random generator
// (Steele, Lea & Flood, "Fast Splittable Pseudorandom Number Generators",
// OOPSLA 2014). It is the repository's substrate for reproducible
// randomness outside program generation: network jitter and fault
// injection derive every decision from a splitmix stream, so any
// (seed, configuration) pair replays byte-identically across runs,
// worker counts, and platforms — splitmix64 is a fixed published
// algorithm, unlike math/rand's unspecified generator.
package splitmix

// golden64 is the splitmix64 increment (the odd constant closest to
// 2^64/φ), which makes successive states equidistributed.
const golden64 = 0x9e3779b97f4a7c15

// Mix finalizes one state into an output word: the splitmix64 output
// function. It doubles as the repository's standard seed-derivation
// mixer — Mix(seed + f(index)) yields independent streams per index.
func Mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a splitmix64 generator. The zero value is a valid stream
// seeded with 0; use New to seed explicitly.
type Stream struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Stream { return &Stream{state: seed} }

// Reseed resets the stream to the given seed, as if freshly constructed —
// used by pooled components to rewind their randomness between runs
// without allocating a new stream.
func (s *Stream) Reseed(seed uint64) { s.state = seed }

// Next returns the next 64 random bits.
func (s *Stream) Next() uint64 {
	s.state += golden64
	return Mix(s.state)
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (s *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("splitmix: Uint64n(0)")
	}
	// Debiased modulo via rejection sampling: retry while the draw falls
	// in the short final partial block. For the small n used here
	// (latencies, percentages) a retry is vanishingly rare.
	max := (^uint64(0)) - (^uint64(0))%n
	for {
		if v := s.Next(); v < max {
			return v % n
		}
	}
}

// Intn returns a uniform int in [0, n). n must be positive.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("splitmix: Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (s *Stream) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}
