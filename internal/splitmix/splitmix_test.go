package splitmix

import "testing"

// Reference outputs for seed 0 from the published splitmix64 algorithm
// (first three outputs of the sequence used by e.g. the xoshiro seeding
// recipe). Pins the implementation to the fixed published function.
func TestReferenceSequence(t *testing.T) {
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	s := New(0)
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("Next()[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
	c := New(12346)
	same := 0
	a = New(12345)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/1000 times", same)
	}
}

func TestUint64nRange(t *testing.T) {
	s := New(7)
	seen := make(map[uint64]int)
	const n = 10
	for i := 0; i < 10_000; i++ {
		v := s.Uint64n(n)
		if v >= n {
			t.Fatalf("Uint64n(%d) = %d out of range", n, v)
		}
		seen[v]++
	}
	for v := uint64(0); v < n; v++ {
		// Uniform expectation 1000 per bucket; a factor-2 band is a
		// loose sanity check, not a statistical test.
		if seen[v] < 500 || seen[v] > 2000 {
			t.Fatalf("Uint64n(%d): bucket %d hit %d times (want ~1000)", n, v, seen[v])
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(99)
	var sum float64
	const n = 10_000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestMixDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		v := Mix(i)
		if seen[v] {
			t.Fatalf("Mix collision at input %d", i)
		}
		seen[v] = true
	}
}
