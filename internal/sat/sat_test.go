package sat

import (
	"errors"
	"testing"

	"weakorder/internal/ideal"
	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/program"
	"weakorder/internal/scmatch"
)

// enumResults collects every distinct SC result of p.
func enumResults(t *testing.T, p *program.Program) []mem.Result {
	t.Helper()
	seen := make(map[string]bool)
	var out []mem.Result
	_, err := ideal.Enumerate(p, ideal.EnumConfig{
		Interp:        ideal.Config{MaxMemOpsPerThread: 16},
		SkipTruncated: true,
		MaxPaths:      200_000,
		Reduce:        true,
	}, func(it *ideal.Interp) error {
		r := mem.ResultOf(it.Execution())
		if k := r.Key(); !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%s: enumerate: %v", p.Name, err)
	}
	return out
}

// TestDecideAcceptsSCOutcomes feeds every enumerated SC outcome of the
// classic litmus suite to Decide: none may be Rejected (they are all
// reachable by construction), and every Accepted verdict is by
// definition witnessed. The suite's shapes resolve fully, so the
// accepted fraction must also be total here.
func TestDecideAcceptsSCOutcomes(t *testing.T) {
	for _, tc := range litmus.Classic() {
		for _, r := range enumResults(t, tc.Prog) {
			d := Decide(tc.Prog, r, Config{})
			if d.Verdict == Rejected {
				t.Errorf("%s: rejected SC-reachable result %s (%s)", tc.Name, r.Key(), d.Reason)
			}
			if d.Verdict != Accepted {
				t.Errorf("%s: fell back on %s (%s); litmus shapes should resolve", tc.Name, r.Key(), d.Reason)
			}
		}
	}
}

// TestDecideAgreesWithSearch perturbs each litmus outcome (one read
// bumped by +1000 — usually unreachable, occasionally still matched by
// another interleaving) and cross-checks every decided verdict against
// the exhaustive result-directed search.
func TestDecideAgreesWithSearch(t *testing.T) {
	for _, tc := range litmus.Classic() {
		for _, r := range enumResults(t, tc.Prog) {
			bad := mem.Result{Reads: map[mem.OpID]mem.ReadObservation{}, Final: r.Final}
			for id, obs := range r.Reads {
				bad.Reads[id] = obs
			}
			for id, obs := range bad.Reads { // perturb exactly one read
				obs.Value += 1000
				bad.Reads[id] = obs
				break
			}
			d := Decide(tc.Prog, bad, Config{})
			if d.Verdict == Fallback {
				continue
			}
			m, err := scmatch.Matches(tc.Prog, bad, scmatch.Config{MaxStates: 300_000})
			if errors.Is(err, scmatch.ErrBudget) {
				continue
			}
			if err != nil {
				t.Fatalf("%s: scmatch: %v", tc.Name, err)
			}
			if (d.Verdict == Accepted) != m.OK {
				t.Errorf("%s: sat=%s search=%v on %s", tc.Name, d.Verdict, m.OK, bad.Key())
			}
		}
	}
}

// TestDecideRejectsStoreBuffering pins the saturation rules on the
// canonical example: SB's forbidden outcome (both loads stale) must be
// definitely rejected — the init-rf from-read edges contradict program
// order, surfacing either as a cycle or as an emptied candidate set
// depending on rule application order.
func TestDecideRejectsStoreBuffering(t *testing.T) {
	p := litmus.SB()
	x, _ := p.AddrOf("x")
	y, _ := p.AddrOf("y")
	forbidden := mem.Result{
		Reads: map[mem.OpID]mem.ReadObservation{
			{Proc: 0, Index: 1}: {ID: mem.OpID{Proc: 0, Index: 1}, Addr: y, Value: 0},
			{Proc: 1, Index: 1}: {ID: mem.OpID{Proc: 1, Index: 1}, Addr: x, Value: 0},
		},
		Final: map[mem.Addr]mem.Value{x: 1, y: 1},
	}
	d := Decide(p, forbidden, Config{})
	if d.Verdict != Rejected {
		t.Fatalf("SB forbidden outcome: got %s (%s), want rejected", d.Verdict, d.Reason)
	}
	if d.Reason != ReasonCycle && d.Reason != ReasonNoWriter {
		t.Errorf("SB forbidden outcome rejected for %q, want cycle or no-writer", d.Reason)
	}
}

// TestDecideReplayMismatch: observation sets that no dynamic execution
// of the program can produce are definite rejections — a missing
// observation, an extra one, and an address-inconsistent one.
func TestDecideReplayMismatch(t *testing.T) {
	p := litmus.MP2()
	x, _ := p.AddrOf("x")
	results := enumResults(t, p)
	base := results[0]

	missing := mem.Result{Reads: map[mem.OpID]mem.ReadObservation{}, Final: base.Final}
	if d := Decide(p, missing, Config{}); d.Verdict != Rejected || d.Reason != ReasonReplay {
		t.Errorf("missing observations: got %s (%s), want rejected (%s)", d.Verdict, d.Reason, ReasonReplay)
	}

	extra := mem.Result{Reads: map[mem.OpID]mem.ReadObservation{}, Final: base.Final}
	for id, obs := range base.Reads {
		extra.Reads[id] = obs
	}
	ghost := mem.OpID{Proc: 1, Index: 99}
	extra.Reads[ghost] = mem.ReadObservation{ID: ghost, Addr: x, Value: 0}
	if d := Decide(p, extra, Config{}); d.Verdict != Rejected || d.Reason != ReasonReplay {
		t.Errorf("extra observation: got %s (%s), want rejected (%s)", d.Verdict, d.Reason, ReasonReplay)
	}

	wrongAddr := mem.Result{Reads: map[mem.OpID]mem.ReadObservation{}, Final: base.Final}
	for id, obs := range base.Reads {
		obs.Addr = obs.Addr + 77
		wrongAddr.Reads[id] = obs
	}
	if d := Decide(p, wrongAddr, Config{}); d.Verdict != Rejected || d.Reason != ReasonReplay {
		t.Errorf("wrong address: got %s (%s), want rejected (%s)", d.Verdict, d.Reason, ReasonReplay)
	}
}

// TestDecideNoWriter: a read of a value no write supplies rejects.
func TestDecideNoWriter(t *testing.T) {
	p := litmus.MP2()
	results := enumResults(t, p)
	bad := mem.Result{Reads: map[mem.OpID]mem.ReadObservation{}, Final: results[0].Final}
	for id, obs := range results[0].Reads {
		bad.Reads[id] = obs
	}
	for id, obs := range bad.Reads {
		obs.Value = 424242
		bad.Reads[id] = obs
		break
	}
	d := Decide(p, bad, Config{})
	if d.Verdict != Rejected || d.Reason != ReasonNoWriter {
		t.Errorf("unwritable value: got %s (%s), want rejected (%s)", d.Verdict, d.Reason, ReasonNoWriter)
	}
}

// TestDecideFinalMismatch: an observed final value no write supplies
// rejects without enumeration.
func TestDecideFinalMismatch(t *testing.T) {
	p := litmus.MP2()
	x, _ := p.AddrOf("x")
	results := enumResults(t, p)
	bad := mem.Result{Reads: results[0].Reads, Final: map[mem.Addr]mem.Value{x: 555}}
	d := Decide(p, bad, Config{})
	if d.Verdict != Rejected || d.Reason != ReasonFinal {
		t.Errorf("impossible final: got %s (%s), want rejected (%s)", d.Verdict, d.Reason, ReasonFinal)
	}
}

// ambiguousProgram has two writers of the same value racing with a
// reader: the reader's writer can never be resolved, so the decision
// must fall back rather than guess.
func ambiguousProgram() (*program.Program, mem.Result) {
	b := program.NewBuilder("ambiguous")
	x := b.Var("x")
	b.Thread().StoreImm(x, 1)
	b.Thread().StoreImm(x, 1)
	b.Thread().Load(program.R0, x)
	p := b.MustBuild()
	res := mem.Result{
		Reads: map[mem.OpID]mem.ReadObservation{
			{Proc: 2, Index: 0}: {ID: mem.OpID{Proc: 2, Index: 0}, Addr: x, Value: 1},
		},
		Final: map[mem.Addr]mem.Value{x: 1},
	}
	return p, res
}

// TestDecideAmbiguousFallsBack: duplicate-value writers leave the rf
// choice open; the decision reports the ambiguity instead of deciding.
func TestDecideAmbiguousFallsBack(t *testing.T) {
	p, res := ambiguousProgram()
	d := Decide(p, res, Config{})
	if d.Verdict != Fallback {
		t.Fatalf("ambiguous writers: got %s (%s), want fallback", d.Verdict, d.Reason)
	}
	if d.Reason != ReasonAmbiguousRF && d.Reason != ReasonCoIncomplete {
		t.Errorf("ambiguous writers: reason %q, want rf/co ambiguity", d.Reason)
	}
}

// TestDecideCancel: a firing cancel hook abandons the decision with the
// canceled fallback, never a verdict.
func TestDecideCancel(t *testing.T) {
	p := litmus.MP2()
	results := enumResults(t, p)
	d := Decide(p, results[0], Config{Cancel: func() bool { return true }})
	if d.Verdict != Fallback || d.Reason != ReasonCanceled {
		t.Errorf("canceled decision: got %s (%s), want fallback (%s)", d.Verdict, d.Reason, ReasonCanceled)
	}
}

// TestDecideMaxEvents: a result larger than the event budget falls
// back instead of building the graph.
func TestDecideMaxEvents(t *testing.T) {
	p := litmus.MP2()
	results := enumResults(t, p)
	d := Decide(p, results[0], Config{MaxEvents: 2})
	if d.Verdict != Fallback || d.Reason != ReasonTooLarge {
		t.Errorf("tiny event budget: got %s (%s), want fallback (%s)", d.Verdict, d.Reason, ReasonTooLarge)
	}
}

// TestDecideRMWAtomicity: two TAS operations on the same lock cannot
// both read 0 — RMW atomicity must fall out of the coherence/from-read
// rules with the RMW as a single node.
func TestDecideRMWAtomicity(t *testing.T) {
	b := program.NewBuilder("taspair")
	l := b.Var("l")
	b.Thread().TAS(program.R0, l)
	b.Thread().TAS(program.R0, l)
	p := b.MustBuild()
	bothZero := mem.Result{
		Reads: map[mem.OpID]mem.ReadObservation{
			{Proc: 0, Index: 0}: {ID: mem.OpID{Proc: 0, Index: 0}, Addr: l, Value: 0},
			{Proc: 1, Index: 0}: {ID: mem.OpID{Proc: 1, Index: 0}, Addr: l, Value: 0},
		},
		Final: map[mem.Addr]mem.Value{l: 1},
	}
	if d := Decide(p, bothZero, Config{}); d.Verdict != Rejected {
		t.Errorf("both TAS read 0: got %s (%s), want rejected", d.Verdict, d.Reason)
	}
	oneWins := mem.Result{
		Reads: map[mem.OpID]mem.ReadObservation{
			{Proc: 0, Index: 0}: {ID: mem.OpID{Proc: 0, Index: 0}, Addr: l, Value: 0},
			{Proc: 1, Index: 0}: {ID: mem.OpID{Proc: 1, Index: 0}, Addr: l, Value: 1},
		},
		Final: map[mem.Addr]mem.Value{l: 1},
	}
	if d := Decide(p, oneWins, Config{}); d.Verdict != Accepted {
		t.Errorf("serialized TAS pair: got %s (%s), want accepted", d.Verdict, d.Reason)
	}
}
