// Package sat decides most appears-SC queries in polynomial time by
// saturating a happens-before graph built from an observed result,
// instead of enumerating idealized interleavings.
//
// Given a program and one observed mem.Result, the decision procedure:
//
//  1. Replays each thread locally, feeding every read the value the
//     result observed for it. A thread's dynamic operation sequence is a
//     pure function of the values its reads return, so the replay
//     reconstructs the unique per-thread operation sequence any matching
//     SC execution must contain — and any mismatch (a missing, extra, or
//     address-inconsistent observation) is a definite rejection.
//  2. Builds an event graph: one node per dynamic memory operation plus
//     an initial pseudo-write, with program-order edges, and derives the
//     reads-from candidates of every read from the observed values.
//  3. Saturates to a fixpoint with edges that must hold in every SC
//     witness: program order; the final-state constraint (the
//     coherence-last write of each location must produce the observed
//     final value); and, for each read whose writer becomes unique, the
//     write-before-read edge plus the classic coherence and from-read
//     closure rules — if w is r's writer and some other same-location
//     write w2 happens-before r, then w2 precedes w; if w precedes w2,
//     then r precedes w2. A cycle is a definite rejection (every added
//     edge is necessary); RMWs are single read+write nodes, so
//     atomicity falls out of the same two rules.
//  4. Accepts only via a verified witness: when every read's writer is
//     resolved and every same-location write pair is ordered, a
//     topological order of the saturated graph is replayed on an SC
//     memory and checked against every observation and the final state.
//     Verifying sequential consistency of an arbitrary acyclic rf graph
//     is NP-complete in general (Gibbons & Korach), which is exactly why
//     acceptance requires the witness, never acyclicity alone.
//
// Everything in between — a read with several possible writers left at
// the fixpoint, an unordered write pair, a blown budget — returns
// Fallback, and the caller keeps its enumeration-based oracle for that
// residue. The verdicts are therefore sound in both directions: Accepted
// and Rejected never disagree with exhaustive enumeration
// (TestSatFastVsEnumeration in internal/check pins this differentially).
package sat

import (
	"weakorder/internal/bitset"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Verdict classifies a decision.
type Verdict uint8

const (
	// Fallback: the polynomial procedure could not decide; the caller
	// must fall back to enumeration. Decision.Reason says why.
	Fallback Verdict = iota
	// Accepted: some SC interleaving reproduces the observed result (a
	// concrete witness order was constructed and verified).
	Accepted
	// Rejected: no SC interleaving reproduces the observed result (the
	// saturated graph of necessary edges is contradictory).
	Rejected
)

// String returns "fallback", "accepted" or "rejected".
func (v Verdict) String() string {
	switch v {
	case Accepted:
		return "accepted"
	case Rejected:
		return "rejected"
	default:
		return "fallback"
	}
}

// Reasons attached to Rejected decisions.
const (
	// ReasonReplay: the observation set is inconsistent with any dynamic
	// execution of the program — a read observation is missing, left
	// over, or names the wrong address for its program-order slot.
	ReasonReplay = "replay-mismatch"
	// ReasonNoWriter: some read observed a value no same-location write
	// (nor the initial state) supplies, or every candidate writer was
	// soundly excluded.
	ReasonNoWriter = "no-writer"
	// ReasonFinal: no write (or initial value) can be coherence-last and
	// still produce the observed final state of some location.
	ReasonFinal = "final-mismatch"
	// ReasonCycle: the necessary-edge graph has a cycle.
	ReasonCycle = "cycle"
)

// Reasons attached to Fallback decisions.
const (
	// ReasonAmbiguousRF: a read retains multiple possible writers at the
	// fixpoint.
	ReasonAmbiguousRF = "ambiguous-rf"
	// ReasonCoIncomplete: a pair of same-location writes is unordered at
	// the fixpoint, so no verified witness can be built.
	ReasonCoIncomplete = "co-incomplete"
	// ReasonTooLarge: the replayed result has more dynamic operations
	// than Config.MaxEvents.
	ReasonTooLarge = "too-large"
	// ReasonReplayBudget: a thread's replay exceeded its local-step or
	// operation budget (a runaway loop the observations cannot bound).
	ReasonReplayBudget = "replay-budget"
	// ReasonCanceled: the cooperative cancel hook fired.
	ReasonCanceled = "canceled"
	// ReasonWitness: defensive — the topological witness failed
	// verification (not expected to be reachable; accepting without the
	// check would be unsound, so the case falls back instead).
	ReasonWitness = "witness-invalid"
)

// Config bounds a decision.
type Config struct {
	// MaxEvents bounds the total dynamic memory operations (including
	// the init pseudo-write); beyond it the decision falls back. Zero
	// means DefaultMaxEvents.
	MaxEvents int
	// Cancel, when non-nil, is polled between saturation rounds and
	// periodically during replay; returning true abandons the decision
	// with Fallback/ReasonCanceled.
	Cancel func() bool
}

// DefaultMaxEvents bounds the event graph (two bitsets per node, so the
// worst case is ~2·MaxEvents²/8 bytes of closure state).
const DefaultMaxEvents = 1024

// maxLocalSteps bounds register-only instructions between memory
// operations during replay, mirroring ideal.DefaultMaxLocalSteps.
const maxLocalSteps = 10_000

// cancelPollMask: replay polls Cancel every 256 local steps, matching
// the ideal/scmatch convention.
const cancelPollMask = 255

// Decision is the outcome of Decide.
type Decision struct {
	Verdict Verdict
	// Reason explains a rejection or fallback; empty for Accepted.
	Reason string
	// Events is the event-graph size (dynamic memory operations + 1);
	// zero when replay never completed.
	Events int
}

func (c Config) maxEvents() int {
	if c.MaxEvents > 0 {
		return c.MaxEvents
	}
	return DefaultMaxEvents
}

// event is one node of the happens-before graph. Node 0 is the init
// pseudo-write (it writes every location's initial value); real events
// carry the (proc, index) identity the result's observations use.
type event struct {
	proc, index int
	kind        mem.Kind
	addr        mem.Addr
	data        mem.Value // write-component value
	got         mem.Value // read-component value (from the observation)
}

func (e *event) reads() bool  { return e.kind.ReadsMemory() }
func (e *event) writes() bool { return e.kind.WritesMemory() }

// Decide runs the polynomial appears-SC procedure for res on p.
func Decide(p *program.Program, res mem.Result, cfg Config) Decision {
	events, d, ok := replay(p, res, cfg)
	if !ok {
		return d
	}
	s := newSaturator(p, res, events)
	if d, ok := s.saturate(cfg); !ok {
		return d
	}
	return s.witness()
}

// replay reconstructs the per-thread dynamic operation sequences the
// result dictates. It mirrors the ideal interpreter's semantics exactly
// (register zero-init, eager local execution, per-thread memory-op
// indices counting every memory operation) but reads return observed
// values instead of memory contents. ok is false when replay itself
// decided (or fell back); the Decision is then meaningful.
func replay(p *program.Program, res mem.Result, cfg Config) ([]event, Decision, bool) {
	events := make([]event, 1, 16) // slot 0 = init pseudo-write
	events[0] = event{proc: mem.InitProc, kind: mem.Write}
	consumed := 0
	for tid := range p.Threads {
		instrs := p.Threads[tid].Instrs
		var regs [program.NumRegs]mem.Value
		pc, nextIx, steps := 0, 0, 0
		for {
			steps++
			if steps > maxLocalSteps {
				return nil, Decision{Verdict: Fallback, Reason: ReasonReplayBudget}, false
			}
			if cfg.Cancel != nil && steps&cancelPollMask == 0 && cfg.Cancel() {
				return nil, Decision{Verdict: Fallback, Reason: ReasonCanceled}, false
			}
			if pc < 0 || pc >= len(instrs) {
				break // ran off the end: halt
			}
			in := instrs[pc]
			if !in.Op.IsMemory() {
				var halted bool
				pc, halted = stepLocal(&regs, in, pc)
				if halted {
					break
				}
				continue
			}
			if len(events) >= cfg.maxEvents() {
				return nil, Decision{Verdict: Fallback, Reason: ReasonTooLarge}, false
			}
			ev := event{proc: tid, index: nextIx, kind: in.Op.MemKind(), addr: in.Addr}
			nextIx++
			if ev.reads() {
				obs, ok := res.Reads[mem.OpID{Proc: tid, Index: ev.index}]
				if !ok || obs.Addr != in.Addr {
					return nil, Decision{Verdict: Rejected, Reason: ReasonReplay}, false
				}
				consumed++
				ev.got = obs.Value
			}
			if ev.writes() {
				// Store value before the read component updates Rd (the
				// interpreter computes Swap's store value the same way, so
				// swap rN, x, rN writes rN's pre-swap contents).
				switch in.Op {
				case program.OpTAS:
					ev.data = 1
				default:
					if in.UseImm {
						ev.data = in.Imm
					} else {
						ev.data = regs[in.Rs]
					}
				}
			}
			if ev.reads() {
				regs[in.Rd] = ev.got
			}
			events = append(events, ev)
			pc++
		}
	}
	if consumed != len(res.Reads) {
		// Leftover observations name operations no execution of this
		// program performs (wrong thread, or an index past the replayed
		// thread's halt): no SC execution matches.
		return nil, Decision{Verdict: Rejected, Reason: ReasonReplay}, false
	}
	return events, Decision{}, true
}

// stepLocal executes one register-only instruction, returning the next
// pc and whether the thread halted. Semantics mirror ideal.execLocal.
func stepLocal(regs *[program.NumRegs]mem.Value, in program.Instr, pc int) (int, bool) {
	operand2 := func() mem.Value {
		if in.UseImm {
			return in.Imm
		}
		return regs[in.Rt]
	}
	switch in.Op {
	case program.OpNop, program.OpFence:
	case program.OpLoadImm:
		regs[in.Rd] = in.Imm
	case program.OpMov:
		regs[in.Rd] = regs[in.Rs]
	case program.OpAdd:
		regs[in.Rd] = regs[in.Rs] + regs[in.Rt]
	case program.OpAddImm:
		regs[in.Rd] = regs[in.Rs] + in.Imm
	case program.OpSub:
		regs[in.Rd] = regs[in.Rs] - regs[in.Rt]
	case program.OpBeq:
		if regs[in.Rs] == operand2() {
			return in.Target, false
		}
	case program.OpBne:
		if regs[in.Rs] != operand2() {
			return in.Target, false
		}
	case program.OpBlt:
		if regs[in.Rs] < operand2() {
			return in.Target, false
		}
	case program.OpBge:
		if regs[in.Rs] >= operand2() {
			return in.Target, false
		}
	case program.OpJmp:
		return in.Target, false
	case program.OpHalt:
		return pc, true
	}
	return pc + 1, false
}

// saturator holds the event graph and its incremental transitive
// closure. reach[i] is i's strict descendant set, pred[i] its strict
// ancestor set; both are maintained exactly on every edge insertion, so
// "u happens-before v in every witness" is reach[u].Has(v) at all times.
type saturator struct {
	p      *program.Program
	res    mem.Result
	events []event

	reach, pred []*bitset.Set
	scratchA    *bitset.Set // ancestor side of an edge insertion
	scratchD    *bitset.Set // descendant side

	writes map[mem.Addr][]int // same-location write events, node 0 included
	reads  []int              // events with a read component

	// cand[r] is read r's remaining writer candidates; rf[r] is the
	// resolved writer (-1 while ambiguous). saturated[r] marks that r's
	// coherence/from-read rules have been fully applied for the current
	// closure — cleared whenever the closure grows.
	cand map[int][]int
	rf   []int

	cycle bool
}

func newSaturator(p *program.Program, res mem.Result, events []event) *saturator {
	n := len(events)
	s := &saturator{
		p:        p,
		res:      res,
		events:   events,
		reach:    make([]*bitset.Set, n),
		pred:     make([]*bitset.Set, n),
		scratchA: bitset.New(n),
		scratchD: bitset.New(n),
		writes:   make(map[mem.Addr][]int),
		cand:     make(map[int][]int),
		rf:       make([]int, n),
	}
	for i := range s.reach {
		s.reach[i] = bitset.New(n)
		s.pred[i] = bitset.New(n)
		s.rf[i] = -1
	}
	// Program order: init precedes every thread's first event; events of
	// one thread chain in index order (events are appended per thread,
	// so "previous event of the same proc" is the last one seen).
	last := map[int]int{}
	for i := 1; i < n; i++ {
		ev := &s.events[i]
		prev, ok := last[ev.proc]
		if !ok {
			prev = 0
		}
		s.addEdge(prev, i)
		last[ev.proc] = i
		if ev.writes() {
			s.writes[ev.addr] = append(s.writes[ev.addr], i)
		}
		if ev.reads() {
			s.reads = append(s.reads, i)
		}
	}
	for a := range s.writes {
		s.writes[a] = append([]int{0}, s.writes[a]...)
	}
	return s
}

// initVal is the initial (pseudo-write) value of a location.
func (s *saturator) initVal(a mem.Addr) mem.Value { return s.p.Init[a] }

// dataAt is the value write event w deposits into location a.
func (s *saturator) dataAt(w int, a mem.Addr) mem.Value {
	if w == 0 {
		return s.initVal(a)
	}
	return s.events[w].data
}

// finalVal is the observed final value of a location (absent = 0, per
// mem.Result.Equal).
func (s *saturator) finalVal(a mem.Addr) mem.Value { return s.res.Final[a] }

// addEdge inserts u -> v and updates the closure; it records a cycle in
// s.cycle (u == v, or v already reaches u) instead of inserting one.
func (s *saturator) addEdge(u, v int) {
	if u == v || s.reach[v].Has(u) {
		s.cycle = true
		return
	}
	if s.reach[u].Has(v) {
		return
	}
	// A = ancestors(u) ∪ {u}, D = descendants(v) ∪ {v}; every a ∈ A now
	// reaches every d ∈ D.
	s.scratchA.CopyFrom(s.pred[u])
	s.scratchA.Add(u)
	s.scratchD.CopyFrom(s.reach[v])
	s.scratchD.Add(v)
	s.scratchA.ForEach(func(a int) bool {
		s.reach[a].UnionWith(s.scratchD)
		return true
	})
	s.scratchD.ForEach(func(d int) bool {
		s.pred[d].UnionWith(s.scratchA)
		return true
	})
}

// saturate derives writer candidates and runs the fixpoint. ok is false
// when the procedure decided (or fell back) before the witness stage.
func (s *saturator) saturate(cfg Config) (Decision, bool) {
	fail := func(verdict Verdict, reason string) (Decision, bool) {
		return Decision{Verdict: verdict, Reason: reason, Events: len(s.events)}, false
	}
	// Locations no write touches keep their initial value; an observed
	// final disagreeing with it (or naming a location the program never
	// writes) is unreachable by any execution.
	for a, v := range s.res.Final {
		if len(s.writes[a]) == 0 && v != s.initVal(a) {
			return fail(Rejected, ReasonFinal)
		}
	}
	// Writer candidates: same-location writes supplying the observed
	// value. An RMW cannot read from its own write (its read component
	// sees the pre-state), so w == r is excluded.
	for _, r := range s.reads {
		ev := &s.events[r]
		var cs []int
		// writes[addr] includes node 0 whenever the location is ever
		// written; for a read-only location the init pseudo-write is its
		// only possible writer.
		ws := s.writes[ev.addr]
		if len(ws) == 0 {
			ws = []int{0}
		}
		for _, w := range ws {
			if w != r && s.dataAt(w, ev.addr) == ev.got {
				cs = append(cs, w)
			}
		}
		if len(cs) == 0 {
			return fail(Rejected, ReasonNoWriter)
		}
		s.cand[r] = cs
	}
	// Fixpoint: apply the final-state constraint, prune candidates, fix
	// unique writers and their closure rules until nothing changes. Every
	// round only adds necessary edges, so the loop is monotone and
	// terminates (the closure and the candidate sets are both bounded).
	applied := make([]bool, len(s.events)) // rf rules fully applied under current closure
	for {
		if cfg.Cancel != nil && cfg.Cancel() {
			return fail(Fallback, ReasonCanceled)
		}
		changed := false
		// Final-state constraint: prune coherence-last candidates to
		// writes that (a) supply the observed final value and (b) are not
		// known to precede another same-location write. A unique survivor
		// must be last: every other write precedes it.
		for a, ws := range s.writes {
			fv := s.finalVal(a)
			lastCands := 0
			lastW := -1
			for _, w := range ws {
				if s.dataAt(w, a) != fv {
					continue
				}
				preceded := false
				for _, w2 := range ws {
					if w2 != w && s.reach[w].Has(w2) {
						preceded = true
						break
					}
				}
				if !preceded {
					lastCands++
					lastW = w
				}
			}
			if lastCands == 0 {
				return fail(Rejected, ReasonFinal)
			}
			if lastCands == 1 {
				for _, w := range ws {
					if w != lastW && !s.reach[w].Has(lastW) {
						s.addEdge(w, lastW)
						changed = true
					}
				}
			}
		}
		if s.cycle {
			return fail(Rejected, ReasonCycle)
		}
		// Candidate pruning + unique-writer resolution.
		for _, r := range s.reads {
			ev := &s.events[r]
			if s.rf[r] >= 0 {
				if !applied[r] {
					changed = s.applyRFRules(r, s.rf[r], ev.addr) || changed
					applied[r] = true
				}
				continue
			}
			cs := s.cand[r][:0]
			for _, w := range s.cand[r] {
				if s.excluded(r, w, ev.addr) {
					changed = true
					continue
				}
				cs = append(cs, w)
			}
			s.cand[r] = cs
			switch len(cs) {
			case 0:
				return fail(Rejected, ReasonNoWriter)
			case 1:
				w := cs[0]
				s.rf[r] = w
				s.addEdge(w, r)
				s.applyRFRules(r, w, ev.addr)
				applied[r] = true
				changed = true
			}
		}
		if s.cycle {
			return fail(Rejected, ReasonCycle)
		}
		if !changed {
			break
		}
		// The closure may have grown; re-run every resolved read's rules
		// next round until they add nothing.
		for i := range applied {
			applied[i] = false
		}
	}
	return Decision{}, true
}

// excluded reports whether w is soundly impossible as r's writer: the
// read already precedes w, or another same-location write is known to
// fall strictly between w and r.
func (s *saturator) excluded(r, w int, a mem.Addr) bool {
	if s.reach[r].Has(w) {
		return true
	}
	for _, w2 := range s.writes[a] {
		if w2 != w && w2 != r && s.reach[w].Has(w2) && s.reach[w2].Has(r) {
			return true
		}
	}
	return false
}

// applyRFRules adds the coherence (w2 hb r ⟹ w2 co-before w) and
// from-read (w co-before w2 ⟹ r before w2) edges for a resolved
// reads-from pair; it reports whether the closure grew.
func (s *saturator) applyRFRules(r, w int, a mem.Addr) bool {
	changed := false
	for _, w2 := range s.writes[a] {
		if w2 == w || w2 == r {
			continue
		}
		if s.reach[w2].Has(r) && !s.reach[w2].Has(w) {
			s.addEdge(w2, w)
			changed = true
		}
		if s.reach[w].Has(w2) && !s.reach[r].Has(w2) {
			s.addEdge(r, w2)
			changed = true
		}
	}
	return changed
}

// witness finishes a saturation that found no contradiction: it demands
// full resolution (every read has one writer, every same-location write
// pair is ordered), builds the smallest-id-first topological order, and
// replays it on an SC memory against every observation and the final
// state. Anything unresolved — or a witness that fails verification —
// falls back to enumeration.
func (s *saturator) witness() Decision {
	fail := func(verdict Verdict, reason string) Decision {
		return Decision{Verdict: verdict, Reason: reason, Events: len(s.events)}
	}
	for _, r := range s.reads {
		if s.rf[r] < 0 {
			return fail(Fallback, ReasonAmbiguousRF)
		}
	}
	for _, ws := range s.writes {
		for i, w1 := range ws {
			for _, w2 := range ws[i+1:] {
				if !s.reach[w1].Has(w2) && !s.reach[w2].Has(w1) {
					return fail(Fallback, ReasonCoIncomplete)
				}
			}
		}
	}
	// Deterministic Kahn topological sort, smallest id first.
	n := len(s.events)
	indeg := make([]int, n)
	for v := 1; v < n; v++ {
		// In-degree over the closure's immediate information: count
		// ancestors. (Using full ancestor counts keeps the order a valid
		// linear extension: a node is emitted only after every ancestor.)
		indeg[v] = s.pred[v].Count()
	}
	heap := &intHeap{}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			heap.push(v)
		}
	}
	order := make([]int, 0, n)
	for heap.len() > 0 {
		u := heap.pop()
		order = append(order, u)
		s.reach[u].ForEach(func(v int) bool {
			indeg[v]--
			if indeg[v] == 0 {
				heap.push(v)
			}
			return true
		})
	}
	if len(order) != n {
		return fail(Rejected, ReasonCycle) // unreachable: closure is acyclic here
	}
	// Replay the order on an SC memory.
	memory := make(map[mem.Addr]mem.Value, len(s.p.Init))
	for a, v := range s.p.Init {
		memory[a] = v
	}
	for _, u := range order {
		if u == 0 {
			continue // init values are pre-loaded
		}
		ev := &s.events[u]
		if ev.reads() && memory[ev.addr] != ev.got {
			return fail(Fallback, ReasonWitness)
		}
		if ev.writes() {
			memory[ev.addr] = ev.data
		}
	}
	// Final state must match over the union of touched locations
	// (absent = 0 on either side).
	for a, v := range memory {
		if s.res.Final[a] != v {
			return fail(Fallback, ReasonWitness)
		}
	}
	for a, v := range s.res.Final {
		if memory[a] != v {
			return fail(Fallback, ReasonWitness)
		}
	}
	return Decision{Verdict: Accepted, Events: n}
}

// intHeap is a tiny min-heap of event ids (the witness's tie-break
// structure; container/heap's interface boxing is avoidable here).
type intHeap struct{ a []int }

func (h *intHeap) len() int { return len(h.a) }

func (h *intHeap) push(v int) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	v := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.a[l] < h.a[small] {
			small = l
		}
		if r < len(h.a) && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return v
}
