package network

import "weakorder/internal/sim"

// MeshConfig parameterizes a 2D-mesh interconnect.
type MeshConfig struct {
	// Width and Height give the mesh dimensions in nodes. Both must be
	// >= 1; Width*Height is the node count.
	Width, Height int
	// BaseLatency is the fixed injection/ejection overhead in cycles
	// applied to every message (>= 1).
	BaseLatency sim.Time
	// HopLatency is the per-hop router traversal cost in cycles (>= 1).
	// A message from (x0,y0) to (x1,y1) pays HopLatency*(|x1-x0|+|y1-y0|)
	// on top of BaseLatency — the Manhattan distance a deterministic
	// XY-routed packet traverses.
	HopLatency sim.Time
	// Telemetry holds the optional interconnect instruments.
	Telemetry Telemetry
}

// Mesh is a 2D-mesh interconnect with deterministic XY (dimension-order)
// routing: a message first travels along X to the destination column,
// then along Y to the destination row. Latency is a pure function of the
// endpoint placement — BaseLatency + HopLatency*hops — with no random
// component, so mesh runs are reproducible without a seed.
//
// Endpoints are placed row-major: endpoint e lives at node e mod
// (Width*Height), i.e. column e mod Width, row (e / Width) mod Height.
// The machine numbers processors first and directories after, so with
// nodes >= processors each processor gets its own node and the memory
// modules wrap around and co-locate with processors spread across the
// mesh — the usual distributed-directory placement.
//
// XY routing on a mesh delivers point-to-point FIFO in real hardware
// (all packets for one (src,dst) pair follow the same path through the
// same router queues), and the directory protocol depends on that
// ordering, so Mesh enforces per-(src,dst) FIFO delivery exactly like
// General's OrderedPairs mode.
type Mesh struct {
	k        *sim.Kernel
	cfg      MeshConfig
	tab      handlerTable
	stats    Stats
	inFlight int
	// lastArrival tracks, per [src][dst], the latest scheduled arrival to
	// enforce the per-pair FIFO (see type comment).
	lastArrival [][]sim.Time
	// free is the delivery-task pool, identical in role to General.free:
	// steady-state sends schedule zero new closures.
	free []*meshDelivery
}

// meshDelivery is one pooled in-flight message. run is the pre-bound
// (*meshDelivery).deliver closure, created once per task.
type meshDelivery struct {
	n        *Mesh
	src, dst int
	m        Msg
	run      func()
}

func (d *meshDelivery) deliver() {
	n := d.n
	src, dst, m := d.src, d.dst, d.m
	n.free = append(n.free, d)
	n.inFlight--
	h := n.tab.lookup(dst)
	if h == nil {
		n.stats.Undeliverable++
		n.tab.noteUndeliverable(m, src, dst)
		return
	}
	h(src, m)
}

// NewMesh returns a Width x Height mesh on kernel k.
func NewMesh(k *sim.Kernel, cfg MeshConfig) *Mesh {
	if cfg.Width < 1 {
		cfg.Width = 1
	}
	if cfg.Height < 1 {
		cfg.Height = 1
	}
	if cfg.BaseLatency == 0 {
		cfg.BaseLatency = 1
	}
	if cfg.HopLatency == 0 {
		cfg.HopLatency = 1
	}
	return &Mesh{k: k, cfg: cfg}
}

// Attach implements Network.
func (n *Mesh) Attach(id int, h Handler) { n.tab.attach(id, h) }

// Reset clears traffic state for a fresh run on the same wiring: stats,
// errors, and FIFO bookkeeping. Attached handlers persist — a pooled
// machine reuses its endpoints. Mesh latency is deterministic, so unlike
// General.Reset no seed is involved.
func (n *Mesh) Reset() {
	n.stats = Stats{}
	n.tab.err = nil
	n.inFlight = 0
	for _, row := range n.lastArrival {
		for i := range row {
			row[i] = 0
		}
	}
}

// node returns the mesh node for endpoint e (row-major placement).
func (n *Mesh) node(e int) (x, y int) {
	nodes := n.cfg.Width * n.cfg.Height
	p := e % nodes
	return p % n.cfg.Width, p / n.cfg.Width
}

// Hops returns the XY-route hop count between endpoints src and dst:
// the Manhattan distance between their nodes.
func (n *Mesh) Hops(src, dst int) int {
	sx, sy := n.node(src)
	dx, dy := n.node(dst)
	h := 0
	if sx > dx {
		h += sx - dx
	} else {
		h += dx - sx
	}
	if sy > dy {
		h += sy - dy
	} else {
		h += dy - sy
	}
	return h
}

// pairSlot returns a pointer to the lastArrival slot for (src, dst),
// growing the table on first use.
func (n *Mesh) pairSlot(src, dst int) *sim.Time {
	for src >= len(n.lastArrival) {
		n.lastArrival = append(n.lastArrival, nil)
	}
	row := n.lastArrival[src]
	for dst >= len(row) {
		row = append(row, 0)
	}
	n.lastArrival[src] = row
	return &row[dst]
}

// Send implements Network.
func (n *Mesh) Send(src, dst int, m Msg) {
	lat := n.cfg.BaseLatency + n.cfg.HopLatency*sim.Time(n.Hops(src, dst))
	arrive := n.k.Now() + lat
	slot := n.pairSlot(src, dst)
	if arrive <= *slot {
		arrive = *slot + 1
	}
	*slot = arrive
	n.stats.Messages++
	n.stats.TotalLatency += uint64(arrive - n.k.Now())
	n.cfg.Telemetry.observe(m, uint64(arrive-n.k.Now()))
	n.inFlight++
	if n.inFlight > n.stats.MaxQueued {
		n.stats.MaxQueued = n.inFlight
	}
	n.cfg.Telemetry.QueueDepth.Observe(uint64(n.inFlight))
	var d *meshDelivery
	if l := len(n.free); l > 0 {
		d = n.free[l-1]
		n.free = n.free[:l-1]
	} else {
		d = &meshDelivery{n: n}
		d.run = d.deliver
	}
	d.src, d.dst, d.m = src, dst, m
	n.k.At(arrive, d.run)
}

// Stats implements Network.
func (n *Mesh) Stats() Stats { return n.stats }

// Err implements Network.
func (n *Mesh) Err() error { return n.tab.err }

var _ Network = (*Mesh)(nil)
