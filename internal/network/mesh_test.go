package network

import (
	"testing"

	"weakorder/internal/sim"
)

func TestMeshHopLatency(t *testing.T) {
	// 4x4 mesh: endpoint 0 at (0,0), endpoint 15 at (3,3) — 6 hops.
	k := &sim.Kernel{}
	n := NewMesh(k, MeshConfig{Width: 4, Height: 4, BaseLatency: 2, HopLatency: 3})
	var got []arrival
	n.Attach(15, collector(k, &got))
	n.Send(0, 15, testMsg(0))
	k.AdvanceTo(100)
	if len(got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(got))
	}
	want := sim.Time(2 + 3*6)
	if got[0].at != want {
		t.Fatalf("arrival at %d, want %d (base 2 + 3 per hop * 6 hops)", got[0].at, want)
	}
	if s := n.Stats(); s.Messages != 1 || s.TotalLatency != uint64(want) {
		t.Fatalf("stats %+v", s)
	}
}

func TestMeshHops(t *testing.T) {
	n := NewMesh(&sim.Kernel{}, MeshConfig{Width: 4, Height: 2})
	cases := []struct {
		src, dst, want int
	}{
		{0, 0, 0},  // same node
		{0, 1, 1},  // one column over
		{0, 3, 3},  // across the row
		{0, 4, 1},  // one row down
		{0, 7, 4},  // opposite corner: 3 + 1
		{1, 6, 2},  // (1,0) -> (2,1)
		{8, 1, 1},  // endpoint 8 wraps to node 0
		{11, 0, 3}, // endpoint 11 wraps to node 3
		{7, 15, 0}, // both wrap to node 7
	}
	for _, c := range cases {
		if got := n.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d, %d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestMeshPerPairFIFO(t *testing.T) {
	// Same-pair messages arrive in send order even when sent at the same
	// cycle (the lastArrival bump), matching General's OrderedPairs mode.
	k := &sim.Kernel{}
	n := NewMesh(k, MeshConfig{Width: 4, Height: 4, BaseLatency: 1, HopLatency: 1})
	var got []arrival
	n.Attach(1, collector(k, &got))
	for i := 0; i < 10; i++ {
		n.Send(0, 1, testMsg(i))
	}
	k.AdvanceTo(1000)
	if len(got) != 10 {
		t.Fatalf("deliveries = %d, want 10", len(got))
	}
	for i, d := range got {
		if d.m != testMsg(i) {
			t.Fatalf("delivery %d carried %v (FIFO violated)", i, d.m)
		}
		if i > 0 && got[i].at <= got[i-1].at {
			t.Fatalf("delivery %d at %d not after %d", i, got[i].at, got[i-1].at)
		}
	}
}

func TestMeshDeterministicNoSeed(t *testing.T) {
	// Two identical mesh runs produce identical arrival schedules; Reset
	// replays the schedule on the same wiring.
	run := func(n *Mesh, k *sim.Kernel, got *[]arrival) {
		*got = (*got)[:0]
		for i := 0; i < 8; i++ {
			n.Send(i%3, 10+(i%4), testMsg(i))
		}
		k.AdvanceTo(k.Now() + 1000)
	}
	k := &sim.Kernel{}
	n := NewMesh(k, MeshConfig{Width: 4, Height: 4, BaseLatency: 2, HopLatency: 2})
	var got []arrival
	for e := 10; e < 14; e++ {
		n.Attach(e, collector(k, &got))
	}
	run(n, k, &got)
	first := append([]arrival(nil), got...)

	base := k.Now()
	n.Reset()
	run(n, k, &got)
	if len(got) != len(first) {
		t.Fatalf("replay deliveries = %d, want %d", len(got), len(first))
	}
	for i := range got {
		if got[i].m != first[i].m || got[i].src != first[i].src || got[i].at-base != first[i].at {
			t.Fatalf("replay delivery %d = %+v, first run %+v (base %d)", i, got[i], first[i], base)
		}
	}
}

func TestMeshUnattachedEndpointRecordsError(t *testing.T) {
	k := &sim.Kernel{}
	n := NewMesh(k, MeshConfig{Width: 2, Height: 2})
	n.Send(0, 3, testMsg(0))
	k.AdvanceTo(100)
	if n.Err() == nil {
		t.Fatal("expected wiring error for unattached endpoint")
	}
	if s := n.Stats(); s.Undeliverable != 1 {
		t.Fatalf("Undeliverable = %d, want 1", s.Undeliverable)
	}
}
