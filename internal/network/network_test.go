package network

import (
	"testing"

	"weakorder/internal/sim"
)

// testMsg builds a distinguishable payload: the test sequence number
// rides in ReqID.
func testMsg(n int) Msg { return Msg{Kind: 1, ReqID: uint64(n)} }

type arrival struct {
	src int
	m   Msg
	at  sim.Time
}

func collector(k *sim.Kernel, out *[]arrival) Handler {
	return func(src int, m Msg) {
		*out = append(*out, arrival{src: src, m: m, at: k.Now()})
	}
}

func TestGeneralDeliversWithBaseLatency(t *testing.T) {
	k := &sim.Kernel{}
	g := NewGeneral(k, GeneralConfig{BaseLatency: 7, Seed: 1})
	var got []arrival
	g.Attach(1, collector(k, &got))
	g.Send(0, 1, testMsg(0))
	k.AdvanceTo(100)
	if len(got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(got))
	}
	if got[0].at != 7 || got[0].m != testMsg(0) || got[0].src != 0 {
		t.Fatalf("delivery %+v, want at=7 m=testMsg(0) src=0", got[0])
	}
	if s := g.Stats(); s.Messages != 1 || s.TotalLatency != 7 {
		t.Fatalf("stats %+v", s)
	}
}

func TestGeneralJitterCanReorder(t *testing.T) {
	// With jitter, some seed must reorder two back-to-back messages.
	reordered := false
	for seed := int64(0); seed < 50 && !reordered; seed++ {
		k := &sim.Kernel{}
		g := NewGeneral(k, GeneralConfig{BaseLatency: 2, Jitter: 8, Seed: seed})
		var got []arrival
		g.Attach(1, collector(k, &got))
		g.Send(0, 1, testMsg(1))
		g.Send(0, 1, testMsg(2))
		k.AdvanceTo(100)
		if len(got) == 2 && got[0].m == testMsg(2) {
			reordered = true
		}
	}
	if !reordered {
		t.Error("expected at least one reordering across 50 seeds")
	}
}

func TestGeneralOrderedPairsFIFO(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		k := &sim.Kernel{}
		g := NewGeneral(k, GeneralConfig{BaseLatency: 2, Jitter: 8, OrderedPairs: true, Seed: seed})
		var got []arrival
		g.Attach(1, collector(k, &got))
		for i := 0; i < 10; i++ {
			g.Send(0, 1, testMsg(i))
		}
		k.AdvanceTo(1000)
		for i, d := range got {
			if d.m != testMsg(i) {
				t.Fatalf("seed %d: delivery %d carried %v (FIFO violated)", seed, i, d.m)
			}
		}
	}
}

func TestGeneralOrderedPairsIndependentAcrossPairs(t *testing.T) {
	// Ordering is per (src,dst): messages from different sources may
	// still interleave arbitrarily.
	k := &sim.Kernel{}
	g := NewGeneral(k, GeneralConfig{BaseLatency: 2, Jitter: 8, OrderedPairs: true, Seed: 3})
	var got []arrival
	g.Attach(2, collector(k, &got))
	g.Send(0, 2, testMsg(0))
	g.Send(1, 2, testMsg(1))
	k.AdvanceTo(100)
	if len(got) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(got))
	}
}

func TestBusSerializesGlobally(t *testing.T) {
	k := &sim.Kernel{}
	b := NewBus(k, BusConfig{TransferLatency: 3})
	var got []arrival
	b.Attach(2, collector(k, &got))
	b.Attach(3, collector(k, &got))
	b.Send(0, 2, testMsg(1))
	b.Send(1, 3, testMsg(2))
	b.Send(0, 3, testMsg(3))
	k.AdvanceTo(100)
	if len(got) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(got))
	}
	// One transaction at a time: deliveries at 3, 6, 9 in send order.
	wantAt := []sim.Time{3, 6, 9}
	for i, d := range got {
		if d.at != wantAt[i] || d.m != testMsg(i+1) {
			t.Errorf("delivery %d: %+v, want at=%d m=testMsg(%d)", i, d, wantAt[i], i+1)
		}
	}
}

func TestBusQueuesWhileBusy(t *testing.T) {
	k := &sim.Kernel{}
	b := NewBus(k, BusConfig{TransferLatency: 5})
	var got []arrival
	b.Attach(1, collector(k, &got))
	b.Send(0, 1, testMsg(0))
	k.AdvanceTo(2) // bus busy with the first message
	b.Send(0, 1, testMsg(1))
	k.AdvanceTo(100)
	if len(got) != 2 || got[0].at != 5 || got[1].at != 10 {
		t.Fatalf("deliveries %+v, want at 5 and 10", got)
	}
	if s := b.Stats(); s.Messages != 2 {
		t.Fatalf("stats %+v", s)
	}
}

func TestUnattachedEndpointRecordsError(t *testing.T) {
	k := &sim.Kernel{}
	g := NewGeneral(k, GeneralConfig{Seed: 1})
	if g.Err() != nil {
		t.Fatalf("fresh network Err = %v, want nil", g.Err())
	}
	g.Send(0, 9, testMsg(0))
	k.AdvanceTo(100)
	if g.Err() == nil {
		t.Fatal("delivery to unattached endpoint must record an error")
	}
	if s := g.Stats(); s.Undeliverable != 1 {
		t.Fatalf("Undeliverable = %d, want 1", s.Undeliverable)
	}

	b := NewBus(k, BusConfig{})
	b.Send(0, 9, testMsg(0))
	k.AdvanceTo(200)
	if b.Err() == nil {
		t.Fatal("bus delivery to unattached endpoint must record an error")
	}
	if s := b.Stats(); s.Undeliverable != 1 {
		t.Fatalf("bus Undeliverable = %d, want 1", s.Undeliverable)
	}
}

func TestDuplicateRegistrationRecordsError(t *testing.T) {
	k := &sim.Kernel{}
	g := NewGeneral(k, GeneralConfig{Seed: 1})
	var first, second []arrival
	g.Attach(1, collector(k, &first))
	if g.Err() != nil {
		t.Fatalf("single attach Err = %v, want nil", g.Err())
	}
	g.Attach(1, collector(k, &second))
	if g.Err() == nil {
		t.Fatal("duplicate attach must record an error")
	}
	// Last registration wins (test rigs rely on handler replacement).
	g.Send(0, 1, testMsg(0))
	k.AdvanceTo(100)
	if len(first) != 0 || len(second) != 1 {
		t.Fatalf("deliveries first=%d second=%d, want 0 and 1", len(first), len(second))
	}

	b := NewBus(k, BusConfig{})
	b.Attach(4, collector(k, &first))
	b.Attach(4, collector(k, &first))
	if b.Err() == nil {
		t.Fatal("bus duplicate attach must record an error")
	}
}

func TestGeneralSameSeedSameSchedule(t *testing.T) {
	run := func(seed int64) []arrival {
		k := &sim.Kernel{}
		g := NewGeneral(k, GeneralConfig{BaseLatency: 2, Jitter: 16, Seed: seed})
		var got []arrival
		g.Attach(1, collector(k, &got))
		for i := 0; i < 32; i++ {
			g.Send(0, 1, testMsg(i))
		}
		k.AdvanceTo(1000)
		return got
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneralResetReplaysSchedule(t *testing.T) {
	k := &sim.Kernel{}
	g := NewGeneral(k, GeneralConfig{BaseLatency: 2, Jitter: 16, OrderedPairs: true, Seed: 42})
	var got []arrival
	g.Attach(1, collector(k, &got))
	run := func() []arrival {
		got = nil
		for i := 0; i < 32; i++ {
			g.Send(0, 1, testMsg(i))
		}
		k.AdvanceTo(k.Now() + 1000)
		return got
	}
	a := run()
	g.Reset(42)
	b := run()
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ after Reset: %d vs %d", len(a), len(b))
	}
	for i := range a {
		// Arrival times shift by the kernel offset; spacing and order must
		// replay exactly.
		if a[i].m != b[i].m || a[i].src != b[i].src {
			t.Fatalf("delivery %d differs after Reset: %+v vs %+v", i, a[i], b[i])
		}
	}
	if s := g.Stats(); s.Messages != 32 {
		t.Fatalf("stats after Reset not rewound: %+v", s)
	}
}

func TestAvgLatency(t *testing.T) {
	s := Stats{Messages: 4, TotalLatency: 20}
	if got := s.AvgLatency(); got != 5 {
		t.Errorf("AvgLatency = %v, want 5", got)
	}
	if got := (Stats{}).AvgLatency(); got != 0 {
		t.Errorf("empty AvgLatency = %v, want 0", got)
	}
}
