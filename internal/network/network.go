// Package network models the two interconnect classes of the paper's
// Figure 1: a shared bus (transactions serialized globally, delivered in
// a single total order) and a general interconnection network (messages
// routed independently with variable latency, so two messages — even
// between the same endpoints — may be reordered).
//
// Endpoints are small integers: processors/caches first, then memory
// modules/directories; the machine assembles the numbering. A component
// attaches a handler and sends opaque messages; delivery is scheduled on
// the shared simulation kernel.
package network

import (
	"fmt"

	"weakorder/internal/metrics"
	"weakorder/internal/sim"
	"weakorder/internal/splitmix"
)

// Msg is an opaque network payload.
type Msg interface{}

// Handler receives a delivered message and the sender's endpoint id.
type Handler func(src int, m Msg)

// Network is the common interconnect interface.
type Network interface {
	// Attach registers the handler for endpoint id. Attaching twice
	// replaces the handler.
	Attach(id int, h Handler)
	// Send schedules delivery of m from src to dst. A message addressed
	// to an unattached endpoint is dropped at delivery time and recorded
	// as the network's Err (a wiring bug in the assembled machine, not a
	// modeled fault).
	Send(src, dst int, m Msg)
	// Stats returns cumulative traffic statistics.
	Stats() Stats
	// Err returns the first delivery error (send to an unattached
	// endpoint), or nil. The machine run loop checks it every cycle and
	// surfaces it as a diagnosable run failure.
	Err() error
}

// Stats summarizes interconnect traffic.
type Stats struct {
	// Messages is the number of messages sent.
	Messages uint64
	// TotalLatency is the sum of per-message delivery latencies in cycles.
	TotalLatency uint64
	// MaxQueued is the peak number of undelivered messages (bus: waiting
	// for the medium; net: in flight).
	MaxQueued int
	// Undeliverable counts messages dropped because no handler was
	// attached at the destination (see Network.Err).
	Undeliverable uint64
}

// AvgLatency returns the mean delivery latency in cycles.
func (s Stats) AvgLatency() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Messages)
}

// Telemetry holds the optional interconnect instruments (see
// internal/metrics; nil instruments record nothing). Observation never
// alters delivery behavior or latency draws.
type Telemetry struct {
	// Latency observes each message's delivery latency in cycles.
	Latency *metrics.Histogram
	// QueueDepth observes the number of undelivered messages after each
	// send (bus: waiting for the medium; net: in flight).
	QueueDepth *metrics.Histogram
	// Classify, when set, maps a message to an additional per-class
	// latency histogram (nil for unclassified messages). The machine uses
	// it to split protocol traffic into request/reply/forward/ack classes.
	Classify func(m Msg) *metrics.Histogram
}

// observe records one delivery latency against the common and per-class
// histograms.
func (t *Telemetry) observe(m Msg, lat uint64) {
	t.Latency.Observe(lat)
	if t.Classify != nil {
		t.Classify(m).Observe(lat)
	}
}

// ---------------------------------------------------------------------------
// General interconnection network.

// GeneralConfig parameterizes a general network.
type GeneralConfig struct {
	// BaseLatency is the minimum delivery latency in cycles (>= 1).
	BaseLatency sim.Time
	// Jitter adds a uniform random 0..Jitter cycles per message; any
	// positive jitter permits reordering between all endpoint pairs.
	Jitter sim.Time
	// OrderedPairs forces FIFO delivery per (src, dst) pair even with
	// jitter, modeling a network with point-to-point ordering.
	OrderedPairs bool
	// Seed derives the jitter stream (splitmix64), making every latency
	// draw reproducible per network instance.
	Seed int64
	// Telemetry holds the optional interconnect instruments.
	Telemetry Telemetry
}

// General is a general interconnection network: every message travels
// independently with randomized latency.
type General struct {
	k        *sim.Kernel
	cfg      GeneralConfig
	rng      *splitmix.Stream
	handlers map[int]Handler
	stats    Stats
	err      error
	inFlight int
	// lastArrival tracks, per (src,dst), the latest scheduled arrival so
	// OrderedPairs can enforce FIFO delivery.
	lastArrival map[[2]int]sim.Time
}

// NewGeneral returns a general network on kernel k, with all jitter
// drawn deterministically from cfg.Seed.
func NewGeneral(k *sim.Kernel, cfg GeneralConfig) *General {
	if cfg.BaseLatency == 0 {
		cfg.BaseLatency = 1
	}
	return &General{
		k:           k,
		cfg:         cfg,
		rng:         splitmix.New(uint64(cfg.Seed)),
		handlers:    make(map[int]Handler),
		lastArrival: make(map[[2]int]sim.Time),
	}
}

// Attach implements Network.
func (g *General) Attach(id int, h Handler) { g.handlers[id] = h }

// Send implements Network.
func (g *General) Send(src, dst int, m Msg) {
	lat := g.cfg.BaseLatency
	if g.cfg.Jitter > 0 {
		lat += sim.Time(g.rng.Uint64n(uint64(g.cfg.Jitter) + 1))
	}
	arrive := g.k.Now() + lat
	if g.cfg.OrderedPairs {
		key := [2]int{src, dst}
		if prev := g.lastArrival[key]; arrive <= prev {
			arrive = prev + 1
		}
		g.lastArrival[key] = arrive
	}
	g.stats.Messages++
	g.stats.TotalLatency += uint64(arrive - g.k.Now())
	g.cfg.Telemetry.observe(m, uint64(arrive-g.k.Now()))
	g.inFlight++
	if g.inFlight > g.stats.MaxQueued {
		g.stats.MaxQueued = g.inFlight
	}
	g.cfg.Telemetry.QueueDepth.Observe(uint64(g.inFlight))
	g.k.At(arrive, func() {
		g.inFlight--
		h, ok := g.handlers[dst]
		if !ok {
			g.stats.Undeliverable++
			if g.err == nil {
				g.err = fmt.Errorf("network: message %T from %d to unattached endpoint %d", m, src, dst)
			}
			return
		}
		h(src, m)
	})
}

// Stats implements Network.
func (g *General) Stats() Stats { return g.stats }

// Err implements Network.
func (g *General) Err() error { return g.err }

// ---------------------------------------------------------------------------
// Shared bus.

// BusConfig parameterizes a shared bus.
type BusConfig struct {
	// TransferLatency is the number of cycles one message occupies the
	// bus (>= 1).
	TransferLatency sim.Time
	// Telemetry holds the optional interconnect instruments.
	Telemetry Telemetry
}

// Bus is a shared-bus interconnect: one message at a time, FIFO
// arbitration, globally serialized delivery. All endpoints observe
// transactions in the same total order — the property Figure 1's
// bus-based rows rely on.
type Bus struct {
	k        *sim.Kernel
	cfg      BusConfig
	handlers map[int]Handler
	stats    Stats
	err      error
	queue    []busMsg
	busy     bool
}

type busMsg struct {
	src, dst int
	m        Msg
	enq      sim.Time
}

// NewBus returns a bus on kernel k.
func NewBus(k *sim.Kernel, cfg BusConfig) *Bus {
	if cfg.TransferLatency == 0 {
		cfg.TransferLatency = 1
	}
	return &Bus{k: k, cfg: cfg, handlers: make(map[int]Handler)}
}

// Attach implements Network.
func (b *Bus) Attach(id int, h Handler) { b.handlers[id] = h }

// Send implements Network.
func (b *Bus) Send(src, dst int, m Msg) {
	b.stats.Messages++
	b.queue = append(b.queue, busMsg{src: src, dst: dst, m: m, enq: b.k.Now()})
	if len(b.queue) > b.stats.MaxQueued {
		b.stats.MaxQueued = len(b.queue)
	}
	b.cfg.Telemetry.QueueDepth.Observe(uint64(len(b.queue)))
	if !b.busy {
		b.grant()
	}
}

// grant starts transferring the head of the queue.
func (b *Bus) grant() {
	if len(b.queue) == 0 {
		b.busy = false
		return
	}
	b.busy = true
	head := b.queue[0]
	b.queue = b.queue[1:]
	b.k.After(b.cfg.TransferLatency, func() {
		b.stats.TotalLatency += uint64(b.k.Now() - head.enq)
		b.cfg.Telemetry.observe(head.m, uint64(b.k.Now()-head.enq))
		h, ok := b.handlers[head.dst]
		if !ok {
			b.stats.Undeliverable++
			if b.err == nil {
				b.err = fmt.Errorf("network: message %T from %d to unattached endpoint %d", head.m, head.src, head.dst)
			}
			b.grant()
			return
		}
		h(head.src, head.m)
		b.grant()
	})
}

// Stats implements Network.
func (b *Bus) Stats() Stats { return b.stats }

// Err implements Network.
func (b *Bus) Err() error { return b.err }

// Compile-time interface checks.
var (
	_ Network = (*General)(nil)
	_ Network = (*Bus)(nil)
)
