// Package network models the two interconnect classes of the paper's
// Figure 1: a shared bus (transactions serialized globally, delivered in
// a single total order) and a general interconnection network (messages
// routed independently with variable latency, so two messages — even
// between the same endpoints — may be reordered).
//
// Endpoints are small integers: processors/caches first, then memory
// modules/directories; the machine assembles the numbering. A component
// attaches a handler and sends messages; delivery is scheduled on the
// shared simulation kernel.
package network

import (
	"fmt"

	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/sim"
	"weakorder/internal/splitmix"
)

// MsgKind discriminates a message vocabulary. Kind numbering is owned by
// the protocol layers: internal/cache defines the coherence messages,
// internal/machine's flat memory modules use a disjoint range.
type MsgKind uint8

// Msg is one interconnect payload. It is a compact value struct —
// messages travel by copy through the network and the protocol handlers,
// so sending a message never heap-allocates (the interface{} payload
// this replaces boxed every message). Field meaning beyond Kind is
// assigned by the protocol that owns the kind: Peer carries an endpoint
// or tag operand (e.g. the requester of a forwarded coherence request),
// Flags carries protocol-defined booleans, Value the data payload, and
// ReqID the sender's transaction id for request dedup.
type Msg struct {
	Kind  MsgKind
	Flags uint8
	Peer  int32
	Addr  mem.Addr
	Value mem.Value
	ReqID uint64
}

// Handler receives a delivered message and the sender's endpoint id.
type Handler func(src int, m Msg)

// Network is the common interconnect interface.
type Network interface {
	// Attach registers the handler for endpoint id. Attaching twice
	// replaces the handler and records a wiring error (see Err).
	Attach(id int, h Handler)
	// Send schedules delivery of m from src to dst. A message addressed
	// to an unattached endpoint is dropped at delivery time and recorded
	// as the network's Err (a wiring bug in the assembled machine, not a
	// modeled fault).
	Send(src, dst int, m Msg)
	// Stats returns cumulative traffic statistics.
	Stats() Stats
	// Err returns the first wiring error (send to an unattached endpoint,
	// or a duplicate registration), or nil. The machine run loop checks
	// it every cycle and surfaces it as a diagnosable run failure.
	Err() error
}

// Stats summarizes interconnect traffic.
type Stats struct {
	// Messages is the number of messages sent.
	Messages uint64
	// TotalLatency is the sum of per-message delivery latencies in cycles.
	TotalLatency uint64
	// MaxQueued is the peak number of undelivered messages (bus: waiting
	// for the medium; net: in flight).
	MaxQueued int
	// Undeliverable counts messages dropped because no handler was
	// attached at the destination (see Network.Err).
	Undeliverable uint64
}

// AvgLatency returns the mean delivery latency in cycles.
func (s Stats) AvgLatency() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Messages)
}

// Telemetry holds the optional interconnect instruments (see
// internal/metrics; nil instruments record nothing). Observation never
// alters delivery behavior or latency draws.
type Telemetry struct {
	// Latency observes each message's delivery latency in cycles.
	Latency *metrics.Histogram
	// QueueDepth observes the number of undelivered messages after each
	// send (bus: waiting for the medium; net: in flight).
	QueueDepth *metrics.Histogram
	// Classify, when set, maps a message to an additional per-class
	// latency histogram (nil for unclassified messages). The machine uses
	// it to split protocol traffic into request/reply/forward/ack classes.
	Classify func(m Msg) *metrics.Histogram
}

// observe records one delivery latency against the common and per-class
// histograms.
func (t *Telemetry) observe(m Msg, lat uint64) {
	t.Latency.Observe(lat)
	if t.Classify != nil {
		t.Classify(m).Observe(lat)
	}
}

// ---------------------------------------------------------------------------
// Dense handler table.

// handlerTable is the dense endpoint → handler table shared by every
// interconnect implementation: handler lookup is a slice index, and the
// wiring-error paths — delivery to an unattached endpoint, duplicate
// registration — report through one place. Endpoint ids are small and
// contiguous by construction (the machine numbers processors first, then
// memory modules), so the table stays tiny.
type handlerTable struct {
	handlers []Handler
	err      error
}

// attach registers h for endpoint id, recording a wiring error if the
// slot was already taken (the handler is still replaced, preserving the
// historical last-wins semantics for hand-built rigs).
func (t *handlerTable) attach(id int, h Handler) {
	if id < 0 {
		panic(fmt.Sprintf("network: negative endpoint id %d", id))
	}
	for id >= len(t.handlers) {
		t.handlers = append(t.handlers, nil)
	}
	if t.handlers[id] != nil && t.err == nil {
		t.err = fmt.Errorf("network: duplicate handler registration for endpoint %d", id)
	}
	t.handlers[id] = h
}

// lookup returns the handler for dst, or nil when dst is unattached.
func (t *handlerTable) lookup(dst int) Handler {
	if dst < 0 || dst >= len(t.handlers) {
		return nil
	}
	return t.handlers[dst]
}

// noteUndeliverable records the first unattached-endpoint delivery.
func (t *handlerTable) noteUndeliverable(m Msg, src, dst int) {
	if t.err == nil {
		t.err = fmt.Errorf("network: message kind %d from %d to unattached endpoint %d", m.Kind, src, dst)
	}
}

// ---------------------------------------------------------------------------
// General interconnection network.

// GeneralConfig parameterizes a general network.
type GeneralConfig struct {
	// BaseLatency is the minimum delivery latency in cycles (>= 1).
	BaseLatency sim.Time
	// Jitter adds a uniform random 0..Jitter cycles per message; any
	// positive jitter permits reordering between all endpoint pairs.
	Jitter sim.Time
	// OrderedPairs forces FIFO delivery per (src, dst) pair even with
	// jitter, modeling a network with point-to-point ordering.
	OrderedPairs bool
	// Seed derives the jitter stream (splitmix64), making every latency
	// draw reproducible per network instance.
	Seed int64
	// Telemetry holds the optional interconnect instruments.
	Telemetry Telemetry
}

// General is a general interconnection network: every message travels
// independently with randomized latency.
type General struct {
	k        *sim.Kernel
	cfg      GeneralConfig
	rng      splitmix.Stream
	tab      handlerTable
	stats    Stats
	inFlight int
	// lastArrival tracks, per [src][dst], the latest scheduled arrival so
	// OrderedPairs can enforce FIFO delivery — a dense table grown on
	// demand, replacing the map[[2]int]sim.Time that dominated the send
	// path's cost.
	lastArrival [][]sim.Time
	// free is the delivery-task pool: each in-flight message borrows a
	// task whose callback closure was allocated once, so steady-state
	// sends schedule zero new closures.
	free []*delivery
}

// delivery is one pooled in-flight message. run is the pre-bound
// (*delivery).deliver closure, created once per task.
type delivery struct {
	g        *General
	src, dst int
	m        Msg
	run      func()
}

func (d *delivery) deliver() {
	g := d.g
	src, dst, m := d.src, d.dst, d.m
	g.free = append(g.free, d)
	g.inFlight--
	h := g.tab.lookup(dst)
	if h == nil {
		g.stats.Undeliverable++
		g.tab.noteUndeliverable(m, src, dst)
		return
	}
	h(src, m)
}

// NewGeneral returns a general network on kernel k, with all jitter
// drawn deterministically from cfg.Seed.
func NewGeneral(k *sim.Kernel, cfg GeneralConfig) *General {
	if cfg.BaseLatency == 0 {
		cfg.BaseLatency = 1
	}
	g := &General{k: k, cfg: cfg}
	g.rng.Reseed(uint64(cfg.Seed))
	return g
}

// Attach implements Network.
func (g *General) Attach(id int, h Handler) { g.tab.attach(id, h) }

// Reset clears traffic state for a fresh run on the same wiring: stats,
// errors, FIFO bookkeeping, and the jitter stream (reseeded from seed).
// Attached handlers persist — a pooled machine reuses its endpoints.
func (g *General) Reset(seed int64) {
	g.rng.Reseed(uint64(seed))
	g.stats = Stats{}
	g.tab.err = nil
	g.inFlight = 0
	for _, row := range g.lastArrival {
		for i := range row {
			row[i] = 0
		}
	}
}

// pairSlot returns a pointer to the lastArrival slot for (src, dst),
// growing the table on first use.
func (g *General) pairSlot(src, dst int) *sim.Time {
	for src >= len(g.lastArrival) {
		g.lastArrival = append(g.lastArrival, nil)
	}
	row := g.lastArrival[src]
	for dst >= len(row) {
		row = append(row, 0)
	}
	g.lastArrival[src] = row
	return &row[dst]
}

// Send implements Network.
func (g *General) Send(src, dst int, m Msg) {
	lat := g.cfg.BaseLatency
	if g.cfg.Jitter > 0 {
		lat += sim.Time(g.rng.Uint64n(uint64(g.cfg.Jitter) + 1))
	}
	arrive := g.k.Now() + lat
	if g.cfg.OrderedPairs {
		slot := g.pairSlot(src, dst)
		if arrive <= *slot {
			arrive = *slot + 1
		}
		*slot = arrive
	}
	g.stats.Messages++
	g.stats.TotalLatency += uint64(arrive - g.k.Now())
	g.cfg.Telemetry.observe(m, uint64(arrive-g.k.Now()))
	g.inFlight++
	if g.inFlight > g.stats.MaxQueued {
		g.stats.MaxQueued = g.inFlight
	}
	g.cfg.Telemetry.QueueDepth.Observe(uint64(g.inFlight))
	var d *delivery
	if n := len(g.free); n > 0 {
		d = g.free[n-1]
		g.free = g.free[:n-1]
	} else {
		d = &delivery{g: g}
		d.run = d.deliver
	}
	d.src, d.dst, d.m = src, dst, m
	g.k.At(arrive, d.run)
}

// Stats implements Network.
func (g *General) Stats() Stats { return g.stats }

// Err implements Network.
func (g *General) Err() error { return g.tab.err }

// ---------------------------------------------------------------------------
// Shared bus.

// BusConfig parameterizes a shared bus.
type BusConfig struct {
	// TransferLatency is the number of cycles one message occupies the
	// bus (>= 1).
	TransferLatency sim.Time
	// Telemetry holds the optional interconnect instruments.
	Telemetry Telemetry
}

// Bus is a shared-bus interconnect: one message at a time, FIFO
// arbitration, globally serialized delivery. All endpoints observe
// transactions in the same total order — the property Figure 1's
// bus-based rows rely on.
type Bus struct {
	k     *sim.Kernel
	cfg   BusConfig
	tab   handlerTable
	stats Stats
	// queue[head:] is the FIFO of waiting messages; head advances on
	// grant and both reset to zero when the queue drains, so the backing
	// array is reused instead of reallocated.
	queue []busMsg
	head  int
	busy  bool
	// cur is the message occupying the bus; xferDone is the pre-bound
	// completion callback (exactly one transfer is in flight at a time,
	// so a single reusable closure suffices).
	cur      busMsg
	xferDone func()
}

type busMsg struct {
	src, dst int
	m        Msg
	enq      sim.Time
}

// NewBus returns a bus on kernel k.
func NewBus(k *sim.Kernel, cfg BusConfig) *Bus {
	if cfg.TransferLatency == 0 {
		cfg.TransferLatency = 1
	}
	b := &Bus{k: k, cfg: cfg}
	b.xferDone = b.finishTransfer
	return b
}

// Attach implements Network.
func (b *Bus) Attach(id int, h Handler) { b.tab.attach(id, h) }

// Reset clears traffic state for a fresh run on the same wiring.
// Attached handlers persist — a pooled machine reuses its endpoints.
func (b *Bus) Reset() {
	b.stats = Stats{}
	b.tab.err = nil
	b.queue = b.queue[:0]
	b.head = 0
	b.busy = false
}

// Send implements Network.
func (b *Bus) Send(src, dst int, m Msg) {
	b.stats.Messages++
	b.queue = append(b.queue, busMsg{src: src, dst: dst, m: m, enq: b.k.Now()})
	if depth := len(b.queue) - b.head; depth > b.stats.MaxQueued {
		b.stats.MaxQueued = depth
	}
	b.cfg.Telemetry.QueueDepth.Observe(uint64(len(b.queue) - b.head))
	if !b.busy {
		b.grant()
	}
}

// grant starts transferring the head of the queue.
func (b *Bus) grant() {
	if b.head == len(b.queue) {
		b.queue = b.queue[:0]
		b.head = 0
		b.busy = false
		return
	}
	b.busy = true
	b.cur = b.queue[b.head]
	b.head++
	b.k.After(b.cfg.TransferLatency, b.xferDone)
}

// finishTransfer delivers the in-flight message and grants the next.
func (b *Bus) finishTransfer() {
	head := b.cur
	b.stats.TotalLatency += uint64(b.k.Now() - head.enq)
	b.cfg.Telemetry.observe(head.m, uint64(b.k.Now()-head.enq))
	h := b.tab.lookup(head.dst)
	if h == nil {
		b.stats.Undeliverable++
		b.tab.noteUndeliverable(head.m, head.src, head.dst)
		b.grant()
		return
	}
	h(head.src, head.m)
	b.grant()
}

// Stats implements Network.
func (b *Bus) Stats() Stats { return b.stats }

// Err implements Network.
func (b *Bus) Err() error { return b.tab.err }

// Compile-time interface checks.
var (
	_ Network = (*General)(nil)
	_ Network = (*Bus)(nil)
)
