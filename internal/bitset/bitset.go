// Package bitset provides a compact fixed-capacity bit set used by the
// happens-before engine for transitive-closure computation and by the
// directory protocol for sharer tracking.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bit set over [0, Len()). The zero value is an empty set of
// capacity zero; construct with New for a given capacity.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for n bits.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity.
func (s *Set) Len() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Has reports whether bit i is set.
func (s *Set) Has(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// UnionWith ors other into s; both must have equal capacity. It reports
// whether s changed.
func (s *Set) UnionWith(other *Set) bool {
	if other.n != s.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, other.n))
	}
	changed := false
	for i, w := range other.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectWith ands other into s; both must have equal capacity.
func (s *Set) IntersectWith(other *Set) {
	if other.n != s.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, other.n))
	}
	for i, w := range other.words {
		s.words[i] &= w
	}
}

// DifferenceWith removes other's members from s; both must have equal
// capacity.
func (s *Set) DifferenceWith(other *Set) {
	if other.n != s.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, other.n))
	}
	for i, w := range other.words {
		s.words[i] &^= w
	}
}

// CopyFrom overwrites s with other's contents; both must have equal
// capacity.
func (s *Set) CopyFrom(other *Set) {
	if other.n != s.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, other.n))
	}
	copy(s.words, other.words)
}

// Fill sets every bit in [0, Len()).
func (s *Set) Fill() {
	if s.n == 0 {
		return
	}
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	// Clear the tail bits beyond n in the last word.
	if rem := s.n % wordBits; rem != 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Intersects reports whether s and other share any member; both must have
// equal capacity.
func (s *Set) Intersects(other *Set) bool {
	if other.n != s.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, other.n))
	}
	for i, w := range other.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and other hold exactly the same members; both
// must have equal capacity.
func (s *Set) Equal(other *Set) bool {
	if other.n != s.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, other.n))
	}
	for i, w := range other.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	out := New(s.n)
	copy(out.words, s.words)
	return out
}

// ForEach calls fn for every set bit in ascending order; fn returning
// false stops iteration.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Members returns the set bits in ascending order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// String renders the set like "{1, 4, 7}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
