// Package bitset provides a compact fixed-capacity bit set used by the
// happens-before engine for transitive-closure computation and by the
// directory protocol for sharer tracking.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bit set over [0, Len()). The zero value is an empty set of
// capacity zero; construct with New for a given capacity.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for n bits.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity.
func (s *Set) Len() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Has reports whether bit i is set.
func (s *Set) Has(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// UnionWith ors other into s; both must have equal capacity. It reports
// whether s changed.
func (s *Set) UnionWith(other *Set) bool {
	if other.n != s.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, other.n))
	}
	changed := false
	for i, w := range other.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	out := New(s.n)
	copy(out.words, s.words)
	return out
}

// ForEach calls fn for every set bit in ascending order; fn returning
// false stops iteration.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Members returns the set bits in ascending order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// String renders the set like "{1, 4, 7}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
