package bitset

import (
	"testing"
	"testing/quick"
)

func TestAddRemoveHas(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Errorf("fresh set has bit %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Errorf("bit %d missing after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Error("bit 64 present after Remove")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestEmptyAndClear(t *testing.T) {
	s := New(10)
	if !s.Empty() {
		t.Error("fresh set must be empty")
	}
	s.Add(3)
	if s.Empty() {
		t.Error("set with a member must not be empty")
	}
	s.Clear()
	if !s.Empty() {
		t.Error("cleared set must be empty")
	}
}

func TestUnionWith(t *testing.T) {
	a, b := New(70), New(70)
	a.Add(1)
	b.Add(69)
	if changed := a.UnionWith(b); !changed {
		t.Error("union adding a new bit must report changed")
	}
	if !a.Has(1) || !a.Has(69) {
		t.Error("union must contain both inputs' bits")
	}
	if changed := a.UnionWith(b); changed {
		t.Error("idempotent union must report unchanged")
	}
}

func TestUnionCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity mismatch must panic")
		}
	}()
	New(10).UnionWith(New(11))
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range access must panic")
		}
	}()
	New(10).Add(10)
}

func TestMembersAndForEach(t *testing.T) {
	s := New(100)
	want := []int{2, 3, 5, 64, 99}
	for _, i := range want {
		s.Add(i)
	}
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	s.ForEach(func(i int) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("ForEach visited %d after early stop, want 2", n)
	}
}

func TestClone(t *testing.T) {
	s := New(10)
	s.Add(4)
	c := s.Clone()
	c.Add(5)
	if s.Has(5) {
		t.Error("mutating a clone must not affect the original")
	}
	if !c.Has(4) {
		t.Error("clone must retain original bits")
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Add(1)
	s.Add(4)
	if got := s.String(); got != "{1, 4}" {
		t.Errorf("String = %q, want {1, 4}", got)
	}
	if got := New(3).String(); got != "{}" {
		t.Errorf("empty String = %q, want {}", got)
	}
}

func TestQuickCountMatchesNaive(t *testing.T) {
	f := func(bits []uint16) bool {
		s := New(1 << 16)
		uniq := make(map[int]bool)
		for _, b := range bits {
			s.Add(int(b))
			uniq[int(b)] = true
		}
		return s.Count() == len(uniq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
