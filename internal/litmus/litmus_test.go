package litmus

import (
	"testing"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

func TestAllProgramsValidate(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestDekkerShape(t *testing.T) {
	p := Dekker()
	if p.NumThreads() != 2 {
		t.Fatalf("threads = %d, want 2", p.NumThreads())
	}
	if n := len(p.SyncAddresses()); n != 0 {
		t.Errorf("Dekker must have no sync addresses, got %d", n)
	}
	if n := len(DekkerSync().SyncAddresses()); n != 2 {
		t.Errorf("DekkerSync must sync on both locations, got %d", n)
	}
}

func TestDekkerForbiddenPredicate(t *testing.T) {
	mk := func(a, b mem.Value) mem.Result {
		return mem.Result{Reads: map[mem.OpID]mem.ReadObservation{
			{Proc: 0, Index: 1}: {Value: a},
			{Proc: 1, Index: 1}: {Value: b},
		}}
	}
	if !DekkerForbidden(mk(0, 0)) {
		t.Error("(0,0) must be forbidden")
	}
	for _, rv := range [][2]mem.Value{{0, 1}, {1, 0}, {1, 1}} {
		if DekkerForbidden(mk(rv[0], rv[1])) {
			t.Errorf("(%d,%d) must be allowed", rv[0], rv[1])
		}
	}
	if DekkerForbidden(mem.Result{Reads: map[mem.OpID]mem.ReadObservation{}}) {
		t.Error("missing reads must not be forbidden")
	}
}

func TestCriticalSectionShape(t *testing.T) {
	p := CriticalSection(3, 2)
	if p.NumThreads() != 3 {
		t.Fatalf("threads = %d", p.NumThreads())
	}
	lock, ok := p.AddrOf("lock")
	if !ok {
		t.Fatal("no lock symbol")
	}
	sync := p.SyncAddresses()
	if len(sync) != 1 || sync[0] != lock {
		t.Fatalf("sync addrs %v, want [lock]", sync)
	}
	// Each thread: per round TAS + counter load + counter store + unset
	// = 4 static memory instructions; 2 rounds = 8.
	if got := p.Threads[0].MemOps(); got != 8 {
		t.Errorf("mem ops per thread = %d, want 8", got)
	}
}

func TestBarrierShape(t *testing.T) {
	p := Barrier(4)
	if p.NumThreads() != 4 {
		t.Fatalf("threads = %d", p.NumThreads())
	}
	// go + arrive0..3 are sync locations.
	if got := len(p.SyncAddresses()); got != 5 {
		t.Errorf("sync addresses = %d, want 5", got)
	}
}

func TestFigure2ExecutionsWellFormed(t *testing.T) {
	for _, e := range []*mem.Execution{Figure2a(), Figure2b()} {
		seen := make(map[mem.OpID]bool)
		perProc := make(map[int]int)
		for _, op := range e.Ops {
			id := op.ID()
			if seen[id] {
				t.Errorf("duplicate op id %v", id)
			}
			seen[id] = true
			if op.Index != perProc[op.Proc] {
				t.Errorf("P%d indexes not dense: got %d want %d", op.Proc, op.Index, perProc[op.Proc])
			}
			perProc[op.Proc]++
		}
	}
}

func TestFigure3ObservesRelease(t *testing.T) {
	p := Figure3()
	if _, ok := p.AddrOf("s"); !ok {
		t.Fatal("no s symbol")
	}
	if got := p.Init[mustAddr(t, p, "s")]; got != 1 {
		t.Errorf("s initial = %d, want 1 (held)", got)
	}
}

func mustAddr(t *testing.T, p *program.Program, name string) mem.Addr {
	t.Helper()
	a, ok := p.AddrOf(name)
	if !ok {
		t.Fatalf("no symbol %q", name)
	}
	return a
}

func TestFigure3ReadOfXIndex(t *testing.T) {
	// With zero failed spins and work w, the read of x is P1's
	// (2 + 1 + w)-th operation.
	id := Figure3ReadOfX(0, 3)
	if id.Proc != 1 || id.Index != 6 {
		t.Errorf("Figure3ReadOfX(0,3) = %v, want P1.6", id)
	}
}

func TestTestAndTASUsesReadOnlyTest(t *testing.T) {
	p := TestAndTAS(2, 1)
	foundTest := false
	for _, in := range p.Threads[0].Instrs {
		if in.Op == program.OpSyncLoad {
			foundTest = true
		}
	}
	if !foundTest {
		t.Error("Test&TAS must spin with a read-only sync Test")
	}
}

func TestRacyCounterHasNoSync(t *testing.T) {
	if n := len(RacyCounter(2, 2).SyncAddresses()); n != 0 {
		t.Errorf("racy counter has %d sync addresses, want 0", n)
	}
}
