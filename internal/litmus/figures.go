package litmus

import (
	"fmt"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Addresses used by the Figure 2 executions.
const (
	Fig2X mem.Addr = 0 // data location x
	Fig2Y mem.Addr = 1 // data location y
	Fig2Z mem.Addr = 2 // data location z
	Fig2S mem.Addr = 3 // sync location s ("a" in the figure)
	Fig2T mem.Addr = 4 // sync location t ("b" in the figure)
	Fig2U mem.Addr = 5 // sync location u ("c" in the figure)
	Fig2V mem.Addr = 6 // extra sync location
)

// op is a terse constructor for hand-coded figure executions.
func op(proc, index int, kind mem.Kind, addr mem.Addr, data, got mem.Value, label string) mem.Op {
	return mem.Op{Proc: proc, Index: index, Kind: kind, Addr: addr, Data: data, Got: got, Label: label}
}

// Figure2a returns an idealized execution in the style of the paper's
// Figure 2(a): six processors whose conflicting accesses are all ordered
// by happens-before through chains of synchronization operations, so the
// execution obeys DRF0. Ops are listed in completion order (time flows
// down the figure).
//
//	P0: W(x)=7  S(s)
//	P1: S(s)    R(x)->7  W(y)=8  S(t)
//	P2: S(t)    R(y)->8  S(u)
//	P3: S(u)    W(x)=9
//	P4: W(z)=5  S(v)
//	P5: S(v)    R(z)->5
//
// Conflicts: {P0.W(x), P1.R(x), P3.W(x)} ordered via s then t then u;
// {P1.W(y), P2.R(y)} via t; {P4.W(z), P5.R(z)} via v.
func Figure2a() *mem.Execution {
	return &mem.Execution{
		Procs: 6,
		Ops: []mem.Op{
			op(0, 0, mem.Write, Fig2X, 7, 0, "x"),
			op(4, 0, mem.Write, Fig2Z, 5, 0, "z"),
			op(0, 1, mem.SyncRMW, Fig2S, 1, 0, "s"),
			op(4, 1, mem.SyncRMW, Fig2V, 1, 0, "v"),
			op(1, 0, mem.SyncRMW, Fig2S, 1, 1, "s"),
			op(5, 0, mem.SyncRMW, Fig2V, 1, 1, "v"),
			op(1, 1, mem.Read, Fig2X, 0, 7, "x"),
			op(5, 1, mem.Read, Fig2Z, 0, 5, "z"),
			op(1, 2, mem.Write, Fig2Y, 8, 0, "y"),
			op(1, 3, mem.SyncRMW, Fig2T, 1, 0, "t"),
			op(2, 0, mem.SyncRMW, Fig2T, 1, 1, "t"),
			op(2, 1, mem.Read, Fig2Y, 0, 8, "y"),
			op(2, 2, mem.SyncRMW, Fig2U, 1, 0, "u"),
			op(3, 0, mem.SyncRMW, Fig2U, 1, 1, "u"),
			op(3, 1, mem.Write, Fig2X, 9, 0, "x"),
		},
		Final: map[mem.Addr]mem.Value{
			Fig2X: 9, Fig2Y: 8, Fig2Z: 5,
			Fig2S: 1, Fig2T: 1, Fig2U: 1, Fig2V: 1,
		},
	}
}

// Figure2b returns an idealized execution in the style of the paper's
// Figure 2(b): it violates DRF0 because P0's accesses to y conflict with
// P1's write of y without any intervening synchronization, and the writes
// of z by P2 and P4 likewise conflict unordered (P4 never synchronizes,
// so its write also races with P3's read of z). P3 is ordered after P1
// and P2 via synchronization, so the P2/P3 pair on z is not a race.
//
//	P0: R(y)->0  W(y)=1
//	P1: W(y)=2   S(s)
//	P2: W(z)=3   S(t)
//	P3: S(s)     S(t)   R(z)->3
//	P4: W(z)=4
func Figure2b() *mem.Execution {
	return &mem.Execution{
		Procs: 5,
		Ops: []mem.Op{
			op(0, 0, mem.Read, Fig2Y, 0, 0, "y"),
			op(1, 0, mem.Write, Fig2Y, 2, 0, "y"),
			op(0, 1, mem.Write, Fig2Y, 1, 0, "y"),
			op(2, 0, mem.Write, Fig2Z, 3, 0, "z"),
			op(1, 1, mem.SyncRMW, Fig2S, 1, 0, "s"),
			op(2, 1, mem.SyncRMW, Fig2T, 1, 0, "t"),
			op(3, 0, mem.SyncRMW, Fig2S, 1, 1, "s"),
			op(3, 1, mem.SyncRMW, Fig2T, 1, 1, "t"),
			op(3, 2, mem.Read, Fig2Z, 0, 3, "z"),
			op(4, 0, mem.Write, Fig2Z, 4, 0, "z"),
		},
		Final: map[mem.Addr]mem.Value{
			Fig2Y: 1, Fig2Z: 4,
			Fig2S: 1, Fig2T: 1,
		},
	}
}

// Fig3Work is the default number of independent data writes each side
// performs as "other work" in the Figure 3 scenario.
const Fig3Work = 4

// Figure3 returns Figure3Work(Fig3Work).
func Figure3() *program.Program { return Figure3Work(Fig3Work) }

// Figure3Work returns the Figure 3 scenario as a program:
//
//	P1: R(x); Set(ready); then spin TestAndSet(s) until released;
//	    <other work>; r = R(x)  — must observe 1.
//	P0: spin Test(ready); W(x)=1; <other work>; Unset(s); <more work>.
//
// The prologue (P1 reads x cold, then signals through ready) serves the
// figure's premise that "the write of x takes a long time to be globally
// performed": P1 holds x shared, so P0's W(x) must invalidate P1's copy
// and is globally performed only when the invalidation acknowledgement
// round-trips through the directory — long after the Unset commits.
//
// In the paper P0 Unsets s (s initially 1, held from the start); P1 spins
// TestAndSet(s) until TAS returns 0 (released), exactly the paper's
// synchronization pattern.
//
// The program obeys DRF0: the prologue accesses to x are ordered by the
// synchronization on ready, the epilogue accesses by the synchronization
// on s, and on weakly ordered hardware P1 must read x == 1.
func Figure3Work(work int) *program.Program {
	b := program.NewBuilder("figure3")
	x, s, ready := b.Var("x"), b.Var("s"), b.Var("ready")
	b.InitVar("s", 1) // s initially held

	p0 := b.Thread()
	p0.Label("wait")
	p0.SyncLoad(program.R0, ready)
	p0.BeqImm(program.R0, 0, "wait") // wait for P1's prologue
	p0.StoreImm(x, 1)                // the long-latency write W(x)
	for i := 0; i < work; i++ {
		p0.StoreImm(b.Var(fmt.Sprintf("w0_%d", i)), mem.Value(i)) // other work
	}
	p0.SyncStoreImm(s, 0) // Unset(s): the release
	for i := 0; i < work; i++ {
		p0.StoreImm(b.Var(fmt.Sprintf("w1_%d", i)), mem.Value(i)) // more work after the release
	}

	p1 := b.Thread()
	p1.Load(program.R2, x)    // puts x shared in P1's cache (reads 0)
	p1.SyncStoreImm(ready, 1) // publish the prologue
	p1.Label("spin")
	p1.TAS(program.R0, s)
	p1.BneImm(program.R0, 0, "spin") // TAS returned 1: still held
	for i := 0; i < work; i++ {
		p1.StoreImm(b.Var(fmt.Sprintf("w2_%d", i)), mem.Value(i)) // other work
	}
	p1.Load(program.R1, x) // must observe 1
	return b.MustBuild()
}

// Figure3ReadOfX returns the OpID of P1's final read of x in
// Figure3Work(work) given the number of failed TAS spins. P1's memory
// operations are: R(x), Set(ready), spins+1 TAS operations, work writes,
// then the read of x.
func Figure3ReadOfX(spins, work int) mem.OpID {
	return mem.OpID{Proc: 1, Index: 2 + spins + 1 + work}
}
