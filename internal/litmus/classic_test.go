package litmus

import (
	"testing"

	"weakorder/internal/ideal"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
)

// TestForbiddenOutcomesAreSCForbidden cross-validates every classic
// test's Forbidden predicate against the exhaustive enumerator: no
// sequentially consistent execution may satisfy it.
func TestForbiddenOutcomesAreSCForbidden(t *testing.T) {
	for _, tc := range Classic() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			_, err := ideal.Enumerate(tc.Prog, ideal.EnumConfig{}, func(it *ideal.Interp) error {
				if tc.Forbidden(mem.ResultOf(it.Execution())) {
					t.Errorf("%s: an SC execution satisfies the forbidden predicate", tc.Name)
					return ideal.ErrStop
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestForbiddenOutcomesAreReachable sanity-checks the predicates are not
// vacuous: some result shape (not necessarily reachable under SC)
// satisfies each.
func TestForbiddenOutcomesAreReachable(t *testing.T) {
	// Handcraft one satisfying result per test.
	mk := func(reads map[mem.OpID]mem.Value, final map[mem.Addr]mem.Value) mem.Result {
		r := mem.Result{Reads: make(map[mem.OpID]mem.ReadObservation), Final: final}
		for id, v := range reads {
			r.Reads[id] = mem.ReadObservation{ID: id, Value: v}
		}
		if r.Final == nil {
			r.Final = map[mem.Addr]mem.Value{}
		}
		return r
	}
	cases := map[string]mem.Result{
		"SB":   mk(map[mem.OpID]mem.Value{{Proc: 0, Index: 1}: 0, {Proc: 1, Index: 1}: 0}, nil),
		"MP":   mk(map[mem.OpID]mem.Value{{Proc: 1, Index: 0}: 1, {Proc: 1, Index: 1}: 0}, nil),
		"S":    mk(map[mem.OpID]mem.Value{{Proc: 1, Index: 0}: 1}, map[mem.Addr]mem.Value{0: 2}),
		"R":    mk(map[mem.OpID]mem.Value{{Proc: 1, Index: 1}: 0}, map[mem.Addr]mem.Value{1: 2}),
		"2+2W": mk(nil, map[mem.Addr]mem.Value{0: 2, 1: 2}),
		"WRC": mk(map[mem.OpID]mem.Value{
			{Proc: 1, Index: 0}: 1, {Proc: 2, Index: 0}: 1, {Proc: 2, Index: 1}: 0}, nil),
		"RWC": mk(map[mem.OpID]mem.Value{
			{Proc: 1, Index: 0}: 1, {Proc: 1, Index: 1}: 0, {Proc: 2, Index: 1}: 0}, nil),
		"IRIW": mk(map[mem.OpID]mem.Value{
			{Proc: 2, Index: 0}: 1, {Proc: 2, Index: 1}: 0,
			{Proc: 3, Index: 0}: 1, {Proc: 3, Index: 1}: 0}, nil),
		"CoRR": mk(map[mem.OpID]mem.Value{{Proc: 1, Index: 0}: 1, {Proc: 1, Index: 1}: 0}, nil),
		"CoWW": mk(nil, map[mem.Addr]mem.Value{0: 1}),
	}
	for _, tc := range Classic() {
		r, ok := cases[tc.Name]
		if !ok {
			t.Errorf("no witness for %s", tc.Name)
			continue
		}
		if !tc.Forbidden(r) {
			t.Errorf("%s: witness does not satisfy the predicate", tc.Name)
		}
	}
}

// TestCoherenceTestsNeverForbiddenOnAnyMachine: the Co* family is
// guaranteed by cache coherence itself, so even the weak machines never
// exhibit those outcomes.
func TestCoherenceTestsNeverForbiddenOnAnyMachine(t *testing.T) {
	for _, tc := range Classic() {
		if !tc.CoherenceOnly {
			continue
		}
		for _, pol := range policy.All() {
			cfg := machine.Config{Policy: pol, Topology: machine.TopoNetwork, Caches: true, NetJitter: 20}
			if cfg.Validate() != nil {
				continue
			}
			for seed := int64(0); seed < 10; seed++ {
				res, err := machine.Run(tc.Prog, cfg, seed)
				if err != nil {
					t.Fatalf("%s %v: %v", tc.Name, pol, err)
				}
				if tc.Forbidden(res.Result) {
					t.Errorf("%s on %v seed %d: coherence-forbidden outcome observed", tc.Name, pol, seed)
				}
			}
		}
	}
}

// TestSCMachineForbidsAllClassicOutcomes: SC hardware never exhibits any
// forbidden outcome.
func TestSCMachineForbidsAllClassicOutcomes(t *testing.T) {
	for _, tc := range Classic() {
		for _, topo := range []machine.Topology{machine.TopoBus, machine.TopoNetwork} {
			cfg := machine.Config{Policy: policy.SC, Topology: topo, Caches: true, NetJitter: 20}
			for seed := int64(0); seed < 5; seed++ {
				res, err := machine.Run(tc.Prog, cfg, seed)
				if err != nil {
					t.Fatalf("%s: %v", tc.Name, err)
				}
				if tc.Forbidden(res.Result) {
					t.Errorf("%s on SC/%v seed %d: forbidden outcome", tc.Name, topo, seed)
				}
			}
		}
	}
}
