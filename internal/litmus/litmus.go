// Package litmus provides the canonical test programs used throughout the
// paper and the memory-model literature: the Figure 1 Dekker-style
// sequential-consistency violation, message passing with and without
// synchronization, load buffering, IRIW, spin-lock critical sections, and
// the Figure 2 executions and Figure 3 scenario.
//
// Each constructor returns a freshly built program; callers may mutate the
// result freely.
package litmus

import (
	"fmt"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Dekker is the Figure 1 program. Two processors each write one flag and
// then read the other's:
//
//	P0: X = 1; r0 = Y        P1: Y = 1; r1 = X
//
// Under sequential consistency r0 == 0 && r1 == 0 is impossible (it would
// "kill both processors"). All four accesses are ordinary data accesses,
// so the program has data races and weak hardware may produce the
// forbidden outcome.
func Dekker() *program.Program {
	b := program.NewBuilder("dekker")
	x, y := b.Var("x"), b.Var("y")
	p0 := b.Thread()
	p0.StoreImm(x, 1)
	p0.Load(program.R0, y)
	p1 := b.Thread()
	p1.StoreImm(y, 1)
	p1.Load(program.R0, x)
	return b.MustBuild()
}

// DekkerForbidden reports whether a result of Dekker exhibits the
// sequential-consistency violation: both reads returned zero.
func DekkerForbidden(r mem.Result) bool {
	a, okA := r.Reads[mem.OpID{Proc: 0, Index: 1}]
	bb, okB := r.Reads[mem.OpID{Proc: 1, Index: 1}]
	return okA && okB && a.Value == 0 && bb.Value == 0
}

// DekkerSync is Dekker with every access made a synchronization
// operation. Conflicting accesses are then always ordered by the
// synchronization order, so the program obeys DRF0, and weakly ordered
// hardware (Definition 2) must never produce the forbidden outcome.
func DekkerSync() *program.Program {
	b := program.NewBuilder("dekker-sync")
	x, y := b.Var("x"), b.Var("y")
	p0 := b.Thread()
	p0.SyncStoreImm(x, 1)
	p0.SwapImm(program.R0, y, 0) // sync read-modify-write observing y
	p1 := b.Thread()
	p1.SyncStoreImm(y, 1)
	p1.SwapImm(program.R0, x, 0)
	return b.MustBuild()
}

// MessagePassing is the synchronized producer/consumer handoff:
//
//	P0: data = 42; Set(flag)     P1: spin until Test(flag); r0 = data
//
// The flag accesses are synchronization operations, so the program obeys
// DRF0 and the consumer must read 42.
func MessagePassing() *program.Program {
	b := program.NewBuilder("mp")
	data, flag := b.Var("data"), b.Var("flag")
	p0 := b.Thread()
	p0.StoreImm(data, 42)
	p0.SyncStoreImm(flag, 1)
	p1 := b.Thread()
	p1.Label("spin")
	p1.SyncLoad(program.R1, flag)
	p1.BeqImm(program.R1, 0, "spin")
	p1.Load(program.R0, data)
	return b.MustBuild()
}

// MessagePassingBounded is MessagePassing with the consumer's spin
// replaced by a single flag test guarding the data read: if the flag is
// not yet set the consumer skips the read. This keeps the idealized
// state space finite for exhaustive enumeration while preserving the
// handoff ordering, so the program still obeys DRF0.
func MessagePassingBounded() *program.Program {
	b := program.NewBuilder("mp-bounded")
	data, flag := b.Var("data"), b.Var("flag")
	p0 := b.Thread()
	p0.StoreImm(data, 42)
	p0.SyncStoreImm(flag, 1)
	p1 := b.Thread()
	p1.SyncLoad(program.R1, flag)
	p1.BeqImm(program.R1, 0, "done")
	p1.Load(program.R0, data)
	p1.Label("done")
	p1.Halt()
	return b.MustBuild()
}

// MessagePassingRacy is message passing with the flag written and read by
// ordinary data accesses: the data accesses race with each other and the
// flag accesses race too, so the program violates DRF0. On weak hardware
// the consumer may observe flag == 1 but data == 0.
func MessagePassingRacy() *program.Program {
	b := program.NewBuilder("mp-racy")
	data, flag := b.Var("data"), b.Var("flag")
	p0 := b.Thread()
	p0.StoreImm(data, 42)
	p0.StoreImm(flag, 1)
	p1 := b.Thread()
	p1.Load(program.R1, flag)
	p1.BeqImm(program.R1, 0, "done")
	p1.Load(program.R0, data)
	p1.Label("done")
	p1.Halt()
	return b.MustBuild()
}

// MessagePassingRacySpin is MessagePassingRacy with the consumer spinning
// on the data flag until it observes 1, then reading data. The spin
// guarantees the consumer sees the flag set, maximizing the window in
// which weak hardware returns stale data.
func MessagePassingRacySpin() *program.Program {
	b := program.NewBuilder("mp-racy-spin")
	data, flag := b.Var("data"), b.Var("flag")
	p0 := b.Thread()
	p0.StoreImm(data, 42)
	p0.StoreImm(flag, 1)
	p1 := b.Thread()
	p1.Label("spin")
	p1.Load(program.R1, flag)
	p1.BeqImm(program.R1, 0, "spin")
	p1.Load(program.R0, data)
	return b.MustBuild()
}

// MPRacySpinStale reports whether a result of MessagePassingRacySpin
// shows the consumer reading stale data (0) after observing the flag.
func MPRacySpinStale(r mem.Result) bool {
	for id, obs := range r.Reads {
		if id.Proc == 1 && obs.Addr == 0 && obs.Value == 0 {
			// Addr 0 is data; the consumer only reads it after seeing
			// flag == 1.
			return true
		}
	}
	return false
}

// MPRacyStale reports whether a result of MessagePassingRacy shows the
// non-SC outcome: flag observed 1 but data observed 0.
func MPRacyStale(r mem.Result) bool {
	flag, okF := r.Reads[mem.OpID{Proc: 1, Index: 0}]
	data, okD := r.Reads[mem.OpID{Proc: 1, Index: 1}]
	return okF && okD && flag.Value == 1 && data.Value == 0
}

// LoadBuffering is the LB litmus test:
//
//	P0: r0 = X; Y = 1          P1: r1 = Y; X = 1
//
// r0 == 1 && r1 == 1 is impossible under sequential consistency.
func LoadBuffering() *program.Program {
	b := program.NewBuilder("lb")
	x, y := b.Var("x"), b.Var("y")
	p0 := b.Thread()
	p0.Load(program.R0, x)
	p0.StoreImm(y, 1)
	p1 := b.Thread()
	p1.Load(program.R0, y)
	p1.StoreImm(x, 1)
	return b.MustBuild()
}

// IRIW (independent reads of independent writes): two writers, two
// readers that observe the writes in opposite orders — forbidden under SC
// because SC requires a single total write order.
//
//	P0: X = 1    P1: Y = 1
//	P2: r0 = X; r1 = Y
//	P3: r0 = Y; r1 = X
//
// Forbidden: P2 sees (1, 0) and P3 sees (1, 0).
func IRIW() *program.Program {
	b := program.NewBuilder("iriw")
	x, y := b.Var("x"), b.Var("y")
	b.Thread().StoreImm(x, 1)
	b.Thread().StoreImm(y, 1)
	p2 := b.Thread()
	p2.Load(program.R0, x)
	p2.Load(program.R1, y)
	p3 := b.Thread()
	p3.Load(program.R0, y)
	p3.Load(program.R1, x)
	return b.MustBuild()
}

// IRIWForbidden reports whether an IRIW result shows the two readers
// observing the two writes in opposite orders.
func IRIWForbidden(r mem.Result) bool {
	p2x := r.Reads[mem.OpID{Proc: 2, Index: 0}].Value
	p2y := r.Reads[mem.OpID{Proc: 2, Index: 1}].Value
	p3y := r.Reads[mem.OpID{Proc: 3, Index: 0}].Value
	p3x := r.Reads[mem.OpID{Proc: 3, Index: 1}].Value
	return p2x == 1 && p2y == 0 && p3y == 1 && p3x == 0
}

// Coherence is the per-location write-serialization test (condition 2 of
// Section 5.1): one writer produces two values; two readers each read the
// location twice. Readers observing the writes in opposite orders
// violates coherence.
//
//	P0: X = 1; X = 2
//	P1: r0 = X; r1 = X
//	P2: r0 = X; r1 = X
func Coherence() *program.Program {
	b := program.NewBuilder("coherence")
	x := b.Var("x")
	p0 := b.Thread()
	p0.StoreImm(x, 1)
	p0.StoreImm(x, 2)
	for i := 0; i < 2; i++ {
		p := b.Thread()
		p.Load(program.R0, x)
		p.Load(program.R1, x)
	}
	return b.MustBuild()
}

// CriticalSection builds a DRF0 program in which each of procs processors
// acquires a TestAndSet spin lock, increments a shared counter rounds
// times inside the critical section, and releases with Unset. The program
// obeys DRF0: the counter accesses are ordered through the lock's
// synchronization chain.
func CriticalSection(procs, rounds int) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("critsec-%dp-%dr", procs, rounds))
	lock, counter := b.Var("lock"), b.Var("counter")
	for p := 0; p < procs; p++ {
		t := b.Thread()
		for r := 0; r < rounds; r++ {
			acquire := fmt.Sprintf("acq%d", r)
			t.Label(acquire)
			t.TAS(program.R0, lock)
			t.BneImm(program.R0, 0, acquire) // lock held: retry
			t.Load(program.R1, counter)
			t.AddImm(program.R1, program.R1, 1)
			t.Store(counter, program.R1)
			t.SyncStoreImm(lock, 0) // Unset releases the lock
		}
	}
	return b.MustBuild()
}

// TestAndTAS returns TestAndTASWork(procs, rounds, 0).
func TestAndTAS(procs, rounds int) *program.Program {
	return TestAndTASWork(procs, rounds, 0)
}

// TestAndTASWork is CriticalSection with the Section 6 Test&TestAndSet
// acquire: spin with a read-only synchronization Test until the lock
// looks free, then attempt the TestAndSet. Under WO-Def2 the spinning
// Tests serialize as writes; the read-only-synchronization refinement
// removes that serialization (the benefit grows with the critical-section
// length, set by work extra private stores inside the section).
func TestAndTASWork(procs, rounds, work int) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("ttas-%dp-%dr-%dw", procs, rounds, work))
	lock, counter := b.Var("lock"), b.Var("counter")
	for p := 0; p < procs; p++ {
		t := b.Thread()
		priv := b.Var(fmt.Sprintf("priv%d", p))
		for r := 0; r < rounds; r++ {
			spin := fmt.Sprintf("spin%d", r)
			t.Label(spin)
			t.SyncLoad(program.R0, lock) // read-only Test
			t.BneImm(program.R0, 0, spin)
			t.TAS(program.R0, lock)
			t.BneImm(program.R0, 0, spin) // lost the race: spin again
			t.Load(program.R1, counter)
			t.AddImm(program.R1, program.R1, 1)
			t.Store(counter, program.R1)
			for w := 0; w < work; w++ {
				t.StoreImm(priv, mem.Value(w)) // critical-section work
			}
			t.SyncStoreImm(lock, 0)
		}
	}
	return b.MustBuild()
}

// Barrier builds a sense-reversing-free centralized barrier crossed once:
// each processor atomically increments the count with Swap-based
// fetch-and-add emulation... simplified here to a count of arrivals via a
// per-processor arrival flag and a spin on the released flag:
//
//	each P: work writes; Set(arrive_p); spin Test(go) until set
//	P0 additionally: spin Test(arrive_q) for all q; Set(go)
//
// All flag accesses are synchronization operations, so the program obeys
// DRF0 and post-barrier reads must observe pre-barrier writes.
func Barrier(procs int) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("barrier-%dp", procs))
	goFlag := b.Var("go")
	arrive := make([]mem.Addr, procs)
	data := make([]mem.Addr, procs)
	for p := 0; p < procs; p++ {
		arrive[p] = b.Var(fmt.Sprintf("arrive%d", p))
		data[p] = b.Var(fmt.Sprintf("data%d", p))
	}
	for p := 0; p < procs; p++ {
		t := b.Thread()
		t.StoreImm(data[p], mem.Value(100+p)) // pre-barrier write
		t.SyncStoreImm(arrive[p], 1)
		if p == 0 {
			// P0 gathers arrivals then releases everyone.
			for q := 1; q < procs; q++ {
				lbl := fmt.Sprintf("gather%d", q)
				t.Label(lbl)
				t.SyncLoad(program.R0, arrive[q])
				t.BeqImm(program.R0, 0, lbl)
			}
			t.SyncStoreImm(goFlag, 1)
		} else {
			t.Label("wait")
			t.SyncLoad(program.R0, goFlag)
			t.BeqImm(program.R0, 0, "wait")
		}
		// Post-barrier: read the left neighbor's pre-barrier write.
		t.Load(program.R2, data[(p+procs-1)%procs])
	}
	return b.MustBuild()
}

// RacyCounter increments a shared counter from every processor without any
// synchronization — the canonical data race.
func RacyCounter(procs, rounds int) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("racy-counter-%dp-%dr", procs, rounds))
	counter := b.Var("counter")
	for p := 0; p < procs; p++ {
		t := b.Thread()
		for r := 0; r < rounds; r++ {
			t.Load(program.R1, counter)
			t.AddImm(program.R1, program.R1, 1)
			t.Store(counter, program.R1)
		}
	}
	return b.MustBuild()
}

// All returns the full library of named litmus programs with small,
// enumeration-friendly parameters, for table-driven tests.
func All() []*program.Program {
	return []*program.Program{
		Dekker(),
		DekkerSync(),
		MessagePassing(),
		MessagePassingBounded(),
		MessagePassingRacy(),
		LoadBuffering(),
		IRIW(),
		Coherence(),
		CriticalSection(2, 1),
		TestAndTAS(2, 1),
		Barrier(2),
		RacyCounter(2, 1),
	}
}
