package litmus

import (
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// The classic two-to-four-thread litmus tests of the memory-model
// literature, named as in the herd/litmus tradition. Each comes with a
// Forbidden predicate identifying the outcome sequential consistency
// rules out; the enumerator (package ideal) independently confirms each
// predicate by never producing it.

// SB is store buffering — an alias of Dekker with the literature's name.
//
//	P0: x=1; r0=y     P1: y=1; r0=x        forbidden: r0==0 && r1==0
func SB() *program.Program {
	p := Dekker()
	p.Name = "SB"
	return p
}

// MP2 is the two-thread message-passing shape with plain data accesses.
//
//	P0: x=1; y=1      P1: r0=y; r1=x       forbidden: r0==1 && r1==0
func MP2() *program.Program {
	b := program.NewBuilder("MP")
	x, y := b.Var("x"), b.Var("y")
	p0 := b.Thread()
	p0.StoreImm(x, 1)
	p0.StoreImm(y, 1)
	p1 := b.Thread()
	p1.Load(program.R0, y)
	p1.Load(program.R1, x)
	return b.MustBuild()
}

// MP2Forbidden reports the stale-data outcome.
func MP2Forbidden(r mem.Result) bool {
	return r.Reads[mem.OpID{Proc: 1, Index: 0}].Value == 1 &&
		r.Reads[mem.OpID{Proc: 1, Index: 1}].Value == 0
}

// S is the S shape:
//
//	P0: x=2; y=1      P1: r0=y; x=1        forbidden: r0==1 && x final 2
func S() *program.Program {
	b := program.NewBuilder("S")
	x, y := b.Var("x"), b.Var("y")
	p0 := b.Thread()
	p0.StoreImm(x, 2)
	p0.StoreImm(y, 1)
	p1 := b.Thread()
	p1.Load(program.R0, y)
	p1.StoreImm(x, 1)
	return b.MustBuild()
}

// SForbidden reports the forbidden S outcome.
func SForbidden(r mem.Result) bool {
	return r.Reads[mem.OpID{Proc: 1, Index: 0}].Value == 1 && r.Final[0] == 2
}

// R is the R shape:
//
//	P0: x=1; y=1      P1: y=2; r0=x        forbidden: y final 2 && r0==0
func R() *program.Program {
	b := program.NewBuilder("R")
	x, y := b.Var("x"), b.Var("y")
	p0 := b.Thread()
	p0.StoreImm(x, 1)
	p0.StoreImm(y, 1)
	p1 := b.Thread()
	p1.StoreImm(y, 2)
	p1.Load(program.R0, x)
	return b.MustBuild()
}

// RForbidden reports the forbidden R outcome.
func RForbidden(r mem.Result) bool {
	return r.Final[1] == 2 && r.Reads[mem.OpID{Proc: 1, Index: 1}].Value == 0
}

// TwoPlusTwoW is 2+2W:
//
//	P0: x=2; y=1      P1: y=2; x=1         forbidden: x final 2 && y final 2
func TwoPlusTwoW() *program.Program {
	b := program.NewBuilder("2+2W")
	x, y := b.Var("x"), b.Var("y")
	p0 := b.Thread()
	p0.StoreImm(x, 2)
	p0.StoreImm(y, 1)
	p1 := b.Thread()
	p1.StoreImm(y, 2)
	p1.StoreImm(x, 1)
	return b.MustBuild()
}

// TwoPlusTwoWForbidden reports the forbidden 2+2W outcome.
func TwoPlusTwoWForbidden(r mem.Result) bool {
	return r.Final[0] == 2 && r.Final[1] == 2
}

// WRC is write-to-read causality:
//
//	P0: x=1
//	P1: r0=x; y=1
//	P2: r1=y; r2=x
//	forbidden: r0==1 && r1==1 && r2==0
func WRC() *program.Program {
	b := program.NewBuilder("WRC")
	x, y := b.Var("x"), b.Var("y")
	b.Thread().StoreImm(x, 1)
	p1 := b.Thread()
	p1.Load(program.R0, x)
	p1.StoreImm(y, 1)
	p2 := b.Thread()
	p2.Load(program.R1, y)
	p2.Load(program.R2, x)
	return b.MustBuild()
}

// WRCForbidden reports the broken-causality outcome.
func WRCForbidden(r mem.Result) bool {
	return r.Reads[mem.OpID{Proc: 1, Index: 0}].Value == 1 &&
		r.Reads[mem.OpID{Proc: 2, Index: 0}].Value == 1 &&
		r.Reads[mem.OpID{Proc: 2, Index: 1}].Value == 0
}

// RWC is read-to-write causality:
//
//	P0: x=1
//	P1: r0=x; r1=y
//	P2: y=1; r2=x
//	forbidden: r0==1 && r1==0 && r2==0
func RWC() *program.Program {
	b := program.NewBuilder("RWC")
	x, y := b.Var("x"), b.Var("y")
	b.Thread().StoreImm(x, 1)
	p1 := b.Thread()
	p1.Load(program.R0, x)
	p1.Load(program.R1, y)
	p2 := b.Thread()
	p2.StoreImm(y, 1)
	p2.Load(program.R2, x)
	return b.MustBuild()
}

// RWCForbidden reports the forbidden RWC outcome.
func RWCForbidden(r mem.Result) bool {
	return r.Reads[mem.OpID{Proc: 1, Index: 0}].Value == 1 &&
		r.Reads[mem.OpID{Proc: 1, Index: 1}].Value == 0 &&
		r.Reads[mem.OpID{Proc: 2, Index: 1}].Value == 0
}

// CoRR is the coherence read-read test: two reads of one location by one
// processor must not observe a newer then an older write.
//
//	P0: x=1
//	P1: r0=x; r1=x
//	forbidden: r0==1 && r1==0
func CoRR() *program.Program {
	b := program.NewBuilder("CoRR")
	x := b.Var("x")
	b.Thread().StoreImm(x, 1)
	p1 := b.Thread()
	p1.Load(program.R0, x)
	p1.Load(program.R1, x)
	return b.MustBuild()
}

// CoRRForbidden reports the coherence violation.
func CoRRForbidden(r mem.Result) bool {
	return r.Reads[mem.OpID{Proc: 1, Index: 0}].Value == 1 &&
		r.Reads[mem.OpID{Proc: 1, Index: 1}].Value == 0
}

// CoWW is the coherence write-write test: a processor's two writes to one
// location must serialize in program order.
//
//	P0: x=1; x=2
//	forbidden: x final 1
func CoWW() *program.Program {
	b := program.NewBuilder("CoWW")
	x := b.Var("x")
	p0 := b.Thread()
	p0.StoreImm(x, 1)
	p0.StoreImm(x, 2)
	return b.MustBuild()
}

// CoWWForbidden reports the coherence violation.
func CoWWForbidden(r mem.Result) bool { return r.Final[0] == 1 }

// SBFenced is store buffering with an RP3-style fence between each
// processor's write and read: the fence drains the write's global
// performance, so the forbidden outcome becomes impossible on every
// machine — the fence option the paper attributes to the RP3.
func SBFenced() *program.Program {
	b := program.NewBuilder("SB+fence")
	x, y := b.Var("x"), b.Var("y")
	p0 := b.Thread()
	p0.StoreImm(x, 1)
	p0.Fence()
	p0.Load(program.R0, y)
	p1 := b.Thread()
	p1.StoreImm(y, 1)
	p1.Fence()
	p1.Load(program.R0, x)
	return b.MustBuild()
}

// Test names one classic litmus test with its forbidden-outcome
// predicate. Forbidden outcomes are forbidden under sequential
// consistency AND under cache coherence for the Co* family — the weak
// machines may exhibit the non-Co* ones on racy code.
type Test struct {
	Name string
	Prog *program.Program
	// Forbidden identifies the SC-forbidden outcome.
	Forbidden func(mem.Result) bool
	// CoherenceOnly marks tests whose forbidden outcome violates per-
	// location coherence, which every machine here guarantees (conditions
	// 1 and 2 of Section 5.1) — weak or not.
	CoherenceOnly bool
}

// Classic returns the classic suite.
func Classic() []Test {
	return []Test{
		{Name: "SB", Prog: SB(), Forbidden: DekkerForbidden},
		{Name: "MP", Prog: MP2(), Forbidden: MP2Forbidden},
		{Name: "S", Prog: S(), Forbidden: SForbidden},
		{Name: "R", Prog: R(), Forbidden: RForbidden},
		{Name: "2+2W", Prog: TwoPlusTwoW(), Forbidden: TwoPlusTwoWForbidden},
		{Name: "WRC", Prog: WRC(), Forbidden: WRCForbidden},
		{Name: "RWC", Prog: RWC(), Forbidden: RWCForbidden},
		{Name: "IRIW", Prog: IRIW(), Forbidden: IRIWForbidden},
		{Name: "CoRR", Prog: CoRR(), Forbidden: CoRRForbidden, CoherenceOnly: true},
		{Name: "CoWW", Prog: CoWW(), Forbidden: CoWWForbidden, CoherenceOnly: true},
	}
}
