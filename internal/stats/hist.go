package stats

import (
	"fmt"
	"math"
)

// Hist is a fixed-bucket histogram over unsigned observations. The
// bucket layout is frozen at construction: Counts[i] counts observations
// v <= Bounds[i] (and greater than the previous bound); the final
// Counts[len(Bounds)] is the overflow bucket. Fixed layouts make
// histograms mergeable and their exports deterministic — the properties
// the telemetry layer (internal/metrics) relies on.
type Hist struct {
	// Bounds are the inclusive upper bounds, strictly increasing.
	Bounds []uint64
	// Counts has len(Bounds)+1 entries; the last is the overflow bucket.
	Counts []uint64
	// Count is the total number of observations.
	Count uint64
	// Sum is the sum of all observed values.
	Sum uint64
}

// NewHist returns an empty histogram over the given bucket bounds, which
// must be strictly increasing and non-empty.
func NewHist(bounds []uint64) *Hist {
	if len(bounds) == 0 {
		panic("stats: NewHist requires at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: NewHist bounds not strictly increasing at %d", i))
		}
	}
	return &Hist{
		Bounds: append([]uint64(nil), bounds...),
		Counts: make([]uint64, len(bounds)+1),
	}
}

// ExpBounds returns n exponentially spaced bounds start, start*factor,
// start*factor², … — the standard latency/backoff layout.
func ExpBounds(start uint64, factor float64, n int) []uint64 {
	if start == 0 || factor <= 1 || n <= 0 {
		panic("stats: ExpBounds requires start > 0, factor > 1, n > 0")
	}
	out := make([]uint64, 0, n)
	v := float64(start)
	for i := 0; i < n; i++ {
		b := uint64(math.Round(v))
		if len(out) > 0 && b <= out[len(out)-1] {
			b = out[len(out)-1] + 1
		}
		out = append(out, b)
		v *= factor
	}
	return out
}

// Observe records one observation.
func (h *Hist) Observe(v uint64) {
	h.Count++
	h.Sum += v
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Mean returns the mean observation (0 when empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// SameLayout reports whether o shares h's bucket bounds.
func (h *Hist) SameLayout(o *Hist) bool {
	if len(h.Bounds) != len(o.Bounds) {
		return false
	}
	for i, b := range h.Bounds {
		if o.Bounds[i] != b {
			return false
		}
	}
	return true
}

// Merge adds o's observations into h. The layouts must match — merging
// is only meaningful bucket-by-bucket, which is why the telemetry layer
// fixes layouts at registration.
func (h *Hist) Merge(o *Hist) error {
	if !h.SameLayout(o) {
		return fmt.Errorf("stats: merging histograms with different bucket layouts (%d vs %d bounds)",
			len(h.Bounds), len(o.Bounds))
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
	return nil
}

// Clone returns a deep copy.
func (h *Hist) Clone() *Hist {
	return &Hist{
		Bounds: append([]uint64(nil), h.Bounds...),
		Counts: append([]uint64(nil), h.Counts...),
		Count:  h.Count,
		Sum:    h.Sum,
	}
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the containing bucket; observations in the
// overflow bucket are attributed to the last bound. Returns 0 when
// empty.
func (h *Hist) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			// The overflow bucket has no upper bound: attribute it to the
			// last finite bound.
			hi := float64(h.Bounds[len(h.Bounds)-1])
			if i < len(h.Bounds) {
				hi = float64(h.Bounds[i])
			}
			lo := float64(0)
			if i > 0 {
				lo = float64(h.Bounds[i-1])
			}
			if hi < lo {
				hi = lo
			}
			frac := (target - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return float64(h.Bounds[len(h.Bounds)-1])
}

// String renders "count=N sum=S p50=… p99=…" for diagnostics.
func (h *Hist) String() string {
	return fmt.Sprintf("count=%d sum=%d mean=%.1f p50=%.0f p99=%.0f",
		h.Count, h.Sum, h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
}
