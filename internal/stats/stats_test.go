package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBasicMoments(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almost(s.Mean(), 5) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Unbiased variance of this classic set is 32/7.
	if !almost(s.Var(), 32.0/7.0) {
		t.Errorf("Var = %v, want %v", s.Var(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !almost(s.Median(), 4.5) {
		t.Errorf("Median = %v, want 4.5", s.Median())
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.CI95() != 0 {
		t.Error("empty sample must report zeros")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Var() != 0 || s.Median() != 3 {
		t.Error("singleton sample")
	}
}

func TestMedianOdd(t *testing.T) {
	var s Sample
	for _, x := range []float64{9, 1, 5} {
		s.Add(x)
	}
	if s.Median() != 5 {
		t.Errorf("Median = %v, want 5", s.Median())
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	mk := func(n int) *Sample {
		var s Sample
		for i := 0; i < n; i++ {
			s.Add(float64(i % 10))
		}
		return &s
	}
	if mk(100).CI95() >= mk(10).CI95() {
		t.Error("confidence interval must shrink with more observations")
	}
}

func TestAddUintAndStrings(t *testing.T) {
	var s Sample
	s.AddUint(10)
	s.AddUint(20)
	if s.Mean() != 15 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.String() == "" || s.MeanSD() == "" {
		t.Error("empty renderings")
	}
	var single Sample
	single.Add(4)
	if single.MeanSD() != "4.0" {
		t.Errorf("MeanSD singleton = %q", single.MeanSD())
	}
}

func TestRatio(t *testing.T) {
	var a, b Sample
	a.Add(10)
	b.Add(4)
	if Ratio(&a, &b) != 2.5 {
		t.Errorf("Ratio = %v", Ratio(&a, &b))
	}
	var zero Sample
	if Ratio(&a, &zero) != 0 {
		t.Error("ratio with zero denominator must be 0")
	}
}

func TestQuickMeanBounds(t *testing.T) {
	f := func(raw []int32) bool {
		var s Sample
		ok := true
		for _, x := range raw {
			s.Add(float64(x)) // bounded inputs: avoid float overflow artifacts
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		ok = ok && m >= s.Min()-1e-6 && m <= s.Max()+1e-6
		ok = ok && s.Median() >= s.Min()-1e-6 && s.Median() <= s.Max()+1e-6
		ok = ok && s.Var() >= 0
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
