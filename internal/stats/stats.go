// Package stats provides the summary statistics the experiment harness
// reports: means, standard deviations, extrema, medians, and simple
// normal-approximation confidence intervals over repeated simulation
// runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations. The zero value is an empty sample.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddUint appends an unsigned observation.
func (s *Sample) AddUint(x uint64) { s.Add(float64(x)) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range s.xs {
		t += x
	}
	return t / float64(len(s.xs))
}

// Var returns the unbiased sample variance (0 for n < 2).
func (s *Sample) Var() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var t float64
	for _, x := range s.xs {
		d := x - m
		t += d * d
	}
	return t / float64(n-1)
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median (0 for an empty sample).
func (s *Sample) Median() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation between closest ranks (0 for an empty sample). p outside
// [0,100] is clamped.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	return Percentile(sorted, p)
}

// Percentile returns the p-th percentile of an already-sorted slice by
// linear interpolation between closest ranks. The slice must be sorted
// ascending; an empty slice yields 0.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if hi >= n {
		hi = n - 1
	}
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// CI95 returns the half-width of a 95% confidence interval for the mean
// under a normal approximation (1.96 · sd / sqrt(n)); 0 for n < 2.
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return 1.96 * s.Stddev() / math.Sqrt(float64(n))
}

// String renders "mean ± sd (n)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", s.Mean(), s.Stddev(), s.N())
}

// MeanSD renders "mean±sd" compactly for table cells.
func (s *Sample) MeanSD() string {
	if s.N() < 2 || s.Stddev() == 0 {
		return fmt.Sprintf("%.1f", s.Mean())
	}
	return fmt.Sprintf("%.1f±%.1f", s.Mean(), s.Stddev())
}

// Ratio returns a.Mean()/b.Mean() (0 when b's mean is 0) — the speedup
// presentation used in the experiment tables.
func Ratio(a, b *Sample) float64 {
	if b.Mean() == 0 {
		return 0
	}
	return a.Mean() / b.Mean()
}
