package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.AddUint(uint64(i))
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 100}, {50, 50.5}, {25, 25.75}, {99, 99.01},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	var empty Sample
	if empty.Percentile(50) != 0 {
		t.Error("empty sample percentile must be 0")
	}
	one := Sample{}
	one.Add(7)
	if one.Percentile(90) != 7 {
		t.Error("singleton percentile must be the value")
	}
	// Clamping.
	if s.Percentile(-5) != 1 || s.Percentile(200) != 100 {
		t.Error("percentile must clamp p to [0,100]")
	}
}

func TestPercentileMatchesMedian(t *testing.T) {
	f := func(raw []int16) bool {
		var s Sample
		for _, x := range raw {
			s.Add(float64(x))
		}
		return math.Abs(s.Percentile(50)-s.Median()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistObserve(t *testing.T) {
	h := NewHist([]uint64{1, 4, 16})
	for _, v := range []uint64{0, 1, 2, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	wantCounts := []uint64{2, 2, 2, 2} // (<=1)x2, (<=4)x2, (<=16)x2, overflow x2
	for i, w := range wantCounts {
		if h.Counts[i] != w {
			t.Errorf("Counts[%d] = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Count != 8 || h.Sum != 0+1+2+4+5+16+17+1000 {
		t.Errorf("Count=%d Sum=%d", h.Count, h.Sum)
	}
}

func TestHistMerge(t *testing.T) {
	a := NewHist([]uint64{2, 8})
	b := NewHist([]uint64{2, 8})
	a.Observe(1)
	a.Observe(10)
	b.Observe(3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count != 3 || a.Sum != 14 {
		t.Errorf("merged Count=%d Sum=%d", a.Count, a.Sum)
	}
	if a.Counts[0] != 1 || a.Counts[1] != 1 || a.Counts[2] != 1 {
		t.Errorf("merged Counts = %v", a.Counts)
	}
	c := NewHist([]uint64{3})
	if err := a.Merge(c); err == nil {
		t.Error("merging mismatched layouts must fail")
	}
}

func TestHistQuantile(t *testing.T) {
	h := NewHist([]uint64{10, 20, 30})
	for i := 0; i < 100; i++ {
		h.Observe(uint64(i % 30)) // uniform over [0,30)
	}
	if q := h.Quantile(0.5); q < 10 || q > 20 {
		t.Errorf("median %v outside middle bucket", q)
	}
	if q := h.Quantile(0); q < 0 || q > 10 {
		t.Errorf("q0 = %v", q)
	}
	if q := h.Quantile(1); q != 30 {
		t.Errorf("q1 = %v, want 30", q)
	}
	// All mass in the overflow bucket reports the last bound.
	o := NewHist([]uint64{10})
	o.Observe(99)
	if q := o.Quantile(0.5); q != 10 {
		t.Errorf("overflow quantile = %v, want 10", q)
	}
	var zero Hist
	zero.Bounds = []uint64{1}
	zero.Counts = make([]uint64, 2)
	if zero.Quantile(0.5) != 0 {
		t.Error("empty hist quantile must be 0")
	}
}

func TestExpBounds(t *testing.T) {
	b := ExpBounds(1, 2, 8)
	want := []uint64{1, 2, 4, 8, 16, 32, 64, 128}
	if len(b) != len(want) {
		t.Fatalf("len = %d", len(b))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("bound[%d] = %d, want %d", i, b[i], want[i])
		}
	}
	// Slow-growing factors must still be strictly increasing.
	s := ExpBounds(1, 1.1, 10)
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("bounds not increasing: %v", s)
		}
	}
	NewHist(s) // must not panic
}
