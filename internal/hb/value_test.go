package hb

import (
	"strings"
	"testing"

	"weakorder/internal/mem"
)

// The Lemma 1 value condition's failure modes: wrong value from the
// hb-last write, wrong initial value, and ambiguity on racy executions.

func TestValueConditionWrongValue(t *testing.T) {
	e := &mem.Execution{
		Procs: 1,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 1, Data: 5},
			{Proc: 0, Index: 1, Kind: mem.Read, Addr: 1, Got: 7}, // wrong!
		},
	}
	g := Build(e, SyncAll)
	err := g.CheckReadsSeeLastWrite(nil)
	if err == nil || !strings.Contains(err.Error(), "hb-last write") {
		t.Fatalf("err = %v, want hb-last-write violation", err)
	}
}

func TestValueConditionInitialValue(t *testing.T) {
	e := &mem.Execution{
		Procs: 1,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Read, Addr: 1, Got: 9},
		},
	}
	g := Build(e, SyncAll)
	if err := g.CheckReadsSeeLastWrite(map[mem.Addr]mem.Value{1: 9}); err != nil {
		t.Fatalf("correct initial read rejected: %v", err)
	}
	if err := g.CheckReadsSeeLastWrite(nil); err == nil {
		t.Fatal("reading 9 from a zero-initialized location must fail")
	}
}

func TestValueConditionAmbiguousOnRacyExecution(t *testing.T) {
	// Two unordered writes before a read: the hb-last write is not
	// unique, which the checker reports rather than guessing.
	e := &mem.Execution{
		Procs: 3,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 1, Data: 1},
			{Proc: 1, Index: 0, Kind: mem.Write, Addr: 1, Data: 2},
			{Proc: 0, Index: 1, Kind: mem.SyncRMW, Addr: 5},
			{Proc: 1, Index: 1, Kind: mem.SyncRMW, Addr: 5},
			{Proc: 2, Index: 0, Kind: mem.SyncRMW, Addr: 5},
			{Proc: 2, Index: 1, Kind: mem.Read, Addr: 1, Got: 2},
		},
	}
	g := Build(e, SyncAll)
	err := g.CheckReadsSeeLastWrite(nil)
	if err == nil || !strings.Contains(err.Error(), "maximal") {
		t.Fatalf("err = %v, want ambiguity report", err)
	}
}

func TestValueConditionRMWExcludesOwnWrite(t *testing.T) {
	e := &mem.Execution{
		Procs: 1,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 1, Data: 4},
			{Proc: 0, Index: 1, Kind: mem.SyncRMW, Addr: 1, Got: 4, Data: 9},
		},
	}
	g := Build(e, SyncAll)
	if err := g.CheckReadsSeeLastWrite(nil); err != nil {
		t.Fatalf("RMW reading its predecessor rejected: %v", err)
	}
}

func TestGraphAccessors(t *testing.T) {
	e := &mem.Execution{
		Procs: 1,
		Ops:   []mem.Op{{Proc: 0, Index: 0, Kind: mem.Write, Addr: 1}},
	}
	g := Build(e, SyncWriterOrdered)
	if g.N() != 1 {
		t.Errorf("N = %d", g.N())
	}
	if g.Mode() != SyncWriterOrdered {
		t.Errorf("Mode = %v", g.Mode())
	}
	if g.Execution() != e {
		t.Error("Execution accessor")
	}
	if SyncMode(99).String() == "" {
		t.Error("unknown mode must render")
	}
}

func TestRaceString(t *testing.T) {
	r := Race{
		A: mem.Op{Proc: 0, Kind: mem.Write, Addr: 1, Data: 2},
		B: mem.Op{Proc: 1, Kind: mem.Read, Addr: 1, Got: 0},
	}
	if !strings.Contains(r.String(), "race:") {
		t.Errorf("Race.String = %q", r.String())
	}
}
