package hb

import (
	"testing"

	"weakorder/internal/mem"
)

// releaseReleaseExec: P0 writes data then releases s; P1 also releases s
// (no acquire) and then reads the data.
func releaseReleaseExec() *mem.Execution {
	return &mem.Execution{
		Procs: 2,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 1},     // W(y)
			{Proc: 0, Index: 1, Kind: mem.SyncWrite, Addr: 5}, // release s
			{Proc: 1, Index: 0, Kind: mem.SyncWrite, Addr: 5}, // release s (no acquire!)
			{Proc: 1, Index: 1, Kind: mem.Read, Addr: 1},      // R(y)
		},
	}
}

// releaseAcquireExec: proper pairing — P1 acquires with a sync read.
func releaseAcquireExec() *mem.Execution {
	return &mem.Execution{
		Procs: 2,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 1},
			{Proc: 0, Index: 1, Kind: mem.SyncWrite, Addr: 5},
			{Proc: 1, Index: 0, Kind: mem.SyncRead, Addr: 5}, // acquire
			{Proc: 1, Index: 1, Kind: mem.Read, Addr: 1},
		},
	}
}

func TestPairedRADropsReleaseReleaseEdge(t *testing.T) {
	e := releaseReleaseExec()
	// Writer-ordered: SW→SW edge exists, so the accesses are ordered.
	if g := Build(e, SyncWriterOrdered); !g.HappensBefore(0, 3) {
		t.Error("writer-ordered must order through the SW→SW edge")
	}
	// PairedRA: release→release orders nothing; the data accesses race.
	g := Build(e, SyncPairedRA)
	if g.HappensBefore(0, 3) {
		t.Error("paired-RA must not order through release→release")
	}
	if races := g.Races(); len(races) != 1 {
		t.Errorf("races = %v, want exactly the W/R pair", races)
	}
}

func TestPairedRAKeepsReleaseAcquireEdge(t *testing.T) {
	e := releaseAcquireExec()
	g := Build(e, SyncPairedRA)
	if !g.HappensBefore(0, 3) {
		t.Error("paired-RA must order through a release→acquire pair")
	}
	if races := g.Races(); len(races) != 0 {
		t.Errorf("unexpected races: %v", races)
	}
}

func TestPairedRAAcquireSeesAllEarlierReleases(t *testing.T) {
	// Two independent releasers, one acquirer: the acquire is ordered
	// after BOTH releases even though the releases are unordered among
	// themselves.
	e := &mem.Execution{
		Procs: 3,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 1},     // W(y)
			{Proc: 1, Index: 0, Kind: mem.Write, Addr: 2},     // W(z)
			{Proc: 0, Index: 1, Kind: mem.SyncWrite, Addr: 5}, // release
			{Proc: 1, Index: 1, Kind: mem.SyncWrite, Addr: 5}, // release
			{Proc: 2, Index: 0, Kind: mem.SyncRead, Addr: 5},  // acquire
			{Proc: 2, Index: 1, Kind: mem.Read, Addr: 1},
			{Proc: 2, Index: 2, Kind: mem.Read, Addr: 2},
		},
	}
	g := Build(e, SyncPairedRA)
	if !g.HappensBefore(0, 5) || !g.HappensBefore(1, 6) {
		t.Error("the acquire must be ordered after every earlier release")
	}
	if races := g.Races(); len(races) != 0 {
		t.Errorf("unexpected races: %v", races)
	}
	if err := g.CheckStrictPartialOrder(); err != nil {
		t.Error(err)
	}
}

func TestPairedRAModeString(t *testing.T) {
	if SyncPairedRA.String() != "drf0+ra" {
		t.Errorf("String = %q", SyncPairedRA.String())
	}
}
