// Package hb computes the happens-before relation of Adve & Hill's
// Definition 3 for one execution on the idealized architecture:
//
//	op1 po→ op2  iff op1 precedes op2 in some processor's program order
//	op1 so→ op2  iff op1 and op2 are synchronization operations on the
//	             same location and op1 completes before op2
//	hb = (po ∪ so)+   (irreflexive transitive closure)
//
// The package also implements the paper's augmentation of an execution
// with hypothetical initializing writes, final reads, and the boundary
// synchronization operations that order them (Section 4), plus the
// conflicting-access analysis used by the DRF0 checker and the
// reads-see-last-write condition of Lemma 1.
package hb

import (
	"fmt"
	"sort"

	"weakorder/internal/bitset"
	"weakorder/internal/mem"
)

// SyncMode selects which synchronization operations create so edges.
type SyncMode int

const (
	// SyncAll is DRF0 proper: every pair of synchronization operations on
	// the same location is so-ordered by completion time.
	SyncAll SyncMode = iota
	// SyncWriterOrdered is the Section 6 refinement: a read-only
	// synchronization operation cannot be used to order the issuing
	// processor's previous accesses with respect to other processors'
	// subsequent synchronization. Concretely, an so edge requires that at
	// least the earlier operation have a write component: edges
	// SR→SR and SR→SW/RMW are dropped, SW/RMW→anything remain.
	SyncWriterOrdered
	// SyncPairedRA explores the Section 7 direction that later became
	// release consistency: an so edge exists only from a writing
	// synchronization operation (a release) to a later *reading*
	// synchronization operation (an acquire) on the same location.
	// Compared to SyncWriterOrdered, the release→release edge is also
	// dropped: two Unsets of the same flag order nothing between their
	// issuers. Programs must communicate strictly through
	// release/acquire pairs.
	SyncPairedRA
)

// String names the mode.
func (m SyncMode) String() string {
	switch m {
	case SyncAll:
		return "drf0"
	case SyncWriterOrdered:
		return "drf0+ro"
	case SyncPairedRA:
		return "drf0+ra"
	default:
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
}

// Graph is the happens-before relation over one execution's operations.
// Operations are identified by their position in the execution's Ops slice.
type Graph struct {
	exec  *mem.Execution
	mode  SyncMode
	succ  [][]int // direct po ∪ so edges
	reach []*bitset.Set
}

// Build computes happens-before for e under the given synchronization
// mode. The execution's Ops must be in completion order (so edges are
// derived from it). Build is O(n²/64 · e) in the worst case via bitset
// propagation; executions of a few thousand operations are fine.
func Build(e *mem.Execution, mode SyncMode) *Graph {
	n := len(e.Ops)
	g := &Graph{exec: e, mode: mode, succ: make([][]int, n)}

	// Program order: within each processor, edge between operations at
	// consecutive Index values (full order recovered by closure).
	byProc := make(map[int][]int) // proc -> op positions, sorted by Index
	for i, op := range e.Ops {
		byProc[op.Proc] = append(byProc[op.Proc], i)
	}
	for _, idxs := range byProc {
		sort.Slice(idxs, func(a, b int) bool {
			return e.Ops[idxs[a]].Index < e.Ops[idxs[b]].Index
		})
		for k := 0; k+1 < len(idxs); k++ {
			g.addEdge(idxs[k], idxs[k+1])
		}
	}

	// Synchronization order: within each location, sync operations in
	// completion order; edges between completion-consecutive pairs in
	// SyncAll mode. In SyncWriterOrdered mode read-only sync operations do
	// not order later operations, so each sync op links back to the most
	// recent *writing* sync op on the location.
	byLoc := make(map[mem.Addr][]int)
	for i, op := range e.Ops {
		if op.IsSync() {
			byLoc[op.Addr] = append(byLoc[op.Addr], i)
		}
	}
	for _, idxs := range byLoc {
		switch mode {
		case SyncAll:
			for k := 0; k+1 < len(idxs); k++ {
				g.addEdge(idxs[k], idxs[k+1])
			}
		case SyncWriterOrdered:
			lastWriter := -1
			for _, i := range idxs {
				if lastWriter >= 0 {
					g.addEdge(lastWriter, i)
				}
				if e.Ops[i].HasWriteComponent() {
					lastWriter = i
				}
			}
		case SyncPairedRA:
			// Every acquire (read-component sync op) is ordered after
			// every earlier release (write-component sync op); releases
			// do not order each other.
			var writers []int
			for _, i := range idxs {
				if e.Ops[i].HasReadComponent() {
					for _, w := range writers {
						g.addEdge(w, i)
					}
				}
				if e.Ops[i].HasWriteComponent() {
					writers = append(writers, i)
				}
			}
		}
	}

	g.close()
	return g
}

func (g *Graph) addEdge(from, to int) {
	if from == to {
		return
	}
	g.succ[from] = append(g.succ[from], to)
}

// close computes the transitive closure. Edges may point backwards in Ops
// order in pathological inputs, so we do a DFS-based propagation robust to
// cycles (cycles are then reported by CheckStrictPartialOrder).
func (g *Graph) close() {
	n := len(g.succ)
	g.reach = make([]*bitset.Set, n)
	// Process in reverse topological order when possible: iterate until
	// fixpoint (usually a single pass because edges mostly go forward in
	// completion order).
	for i := range g.reach {
		g.reach[i] = bitset.New(n)
	}
	for i := n - 1; i >= 0; i-- {
		for _, j := range g.succ[i] {
			g.reach[i].Add(j)
			g.reach[i].UnionWith(g.reach[j])
		}
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			for _, j := range g.succ[i] {
				if g.reach[i].UnionWith(g.reach[j]) {
					changed = true
				}
			}
		}
	}
}

// Execution returns the underlying execution.
func (g *Graph) Execution() *mem.Execution { return g.exec }

// Mode returns the synchronization mode the graph was built with.
func (g *Graph) Mode() SyncMode { return g.mode }

// N returns the number of operations.
func (g *Graph) N() int { return len(g.succ) }

// HappensBefore reports whether the operation at position i happens-before
// the one at position j.
func (g *Graph) HappensBefore(i, j int) bool { return g.reach[i].Has(j) }

// Ordered reports whether positions i and j are ordered either way by
// happens-before.
func (g *Graph) Ordered(i, j int) bool {
	return g.reach[i].Has(j) || g.reach[j].Has(i)
}

// CheckStrictPartialOrder verifies hb is irreflexive (equivalently, that
// po ∪ so is acyclic). For executions produced in completion order with
// program-order-consistent completion this always holds.
func (g *Graph) CheckStrictPartialOrder() error {
	for i := range g.reach {
		if g.reach[i].Has(i) {
			return fmt.Errorf("hb: cycle through operation %v", g.exec.Ops[i])
		}
	}
	return nil
}

// Race is a pair of conflicting operations unordered by happens-before —
// a data race under Definition 3.
type Race struct {
	A, B mem.Op
}

// String renders the race.
func (r Race) String() string { return fmt.Sprintf("race: %v || %v", r.A, r.B) }

// racy reports whether the operations at positions i and j form a data
// race: conflicting and hb-unordered. Under the SyncWriterOrdered
// refinement a pair of synchronization operations is exempt — hardware
// serializes same-location synchronization (condition 3 of Section 5.1),
// so such pairs are not data races even when read-only synchronization
// drops the so edge between them.
func (g *Graph) racy(i, j int) bool {
	ops := g.exec.Ops
	if !mem.Conflict(ops[i], ops[j]) {
		return false
	}
	if g.mode != SyncAll && ops[i].IsSync() && ops[j].IsSync() {
		return false
	}
	return !g.Ordered(i, j)
}

// Races returns every conflicting, hb-unordered pair in the execution, in
// deterministic order. A DRF0-obeying execution returns none.
func (g *Graph) Races() []Race {
	var out []Race
	ops := g.exec.Ops
	for i := 0; i < len(ops); i++ {
		for j := i + 1; j < len(ops); j++ {
			if g.racy(i, j) {
				out = append(out, Race{A: ops[i], B: ops[j]})
			}
		}
	}
	return out
}

// HasRace reports whether any conflicting pair is unordered, stopping at
// the first.
func (g *Graph) HasRace() bool {
	for i := 0; i < len(g.exec.Ops); i++ {
		for j := i + 1; j < len(g.exec.Ops); j++ {
			if g.racy(i, j) {
				return true
			}
		}
	}
	return false
}

// CheckReadsSeeLastWrite verifies the Lemma 1 value condition on a
// race-free execution: every operation with a read component returns the
// value of the hb-latest write component ordered before it (for an RMW,
// its own write is excluded). It returns an error describing the first
// violation. On racy executions the "last write" may not be unique; such
// ambiguity is reported as an error too.
func (g *Graph) CheckReadsSeeLastWrite(init map[mem.Addr]mem.Value) error {
	ops := g.exec.Ops
	for r := range ops {
		read := ops[r]
		if !read.HasReadComponent() {
			continue
		}
		// Collect hb-maximal writes ordered before the read.
		var maximal []int
		for w := range ops {
			if w == r || !ops[w].HasWriteComponent() || ops[w].Addr != read.Addr {
				continue
			}
			if !g.HappensBefore(w, r) {
				continue
			}
			dominated := false
			for v := range ops {
				if v == w || v == r || !ops[v].HasWriteComponent() || ops[v].Addr != read.Addr {
					continue
				}
				if g.HappensBefore(w, v) && g.HappensBefore(v, r) {
					dominated = true
					break
				}
			}
			if !dominated {
				maximal = append(maximal, w)
			}
		}
		switch len(maximal) {
		case 0:
			want := init[read.Addr] // zero when uninitialized
			if read.Got != want {
				return fmt.Errorf("hb: %v read %d but no hb-earlier write exists and initial value is %d", read, read.Got, want)
			}
		case 1:
			if w := ops[maximal[0]]; read.Got != w.Data {
				return fmt.Errorf("hb: %v read %d but hb-last write is %v", read, read.Got, w)
			}
		default:
			return fmt.Errorf("hb: %v has %d hb-maximal earlier writes (racy execution?)", read, len(maximal))
		}
	}
	return nil
}
