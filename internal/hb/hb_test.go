package hb

import (
	"testing"

	"weakorder/internal/ideal"
	"weakorder/internal/litmus"
	"weakorder/internal/mem"
)

// findOp locates a (proc, index) op's position in an execution.
func findOp(t *testing.T, e *mem.Execution, proc, index int) int {
	t.Helper()
	for i, op := range e.Ops {
		if op.Proc == proc && op.Index == index {
			return i
		}
	}
	t.Fatalf("no op P%d.%d in execution", proc, index)
	return -1
}

func TestProgramOrderIsHB(t *testing.T) {
	e := &mem.Execution{
		Procs: 1,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 0},
			{Proc: 0, Index: 1, Kind: mem.Write, Addr: 1},
			{Proc: 0, Index: 2, Kind: mem.Read, Addr: 0},
		},
	}
	g := Build(e, SyncAll)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if !g.HappensBefore(i, j) {
				t.Errorf("program order P0.%d -> P0.%d missing from hb", i, j)
			}
			if g.HappensBefore(j, i) {
				t.Errorf("hb must not order P0.%d before P0.%d", j, i)
			}
		}
	}
	if err := g.CheckStrictPartialOrder(); err != nil {
		t.Error(err)
	}
}

func TestSyncOrderCreatesCrossProcessorHB(t *testing.T) {
	// The paper's chain: op(P0,x) po S(P0,s) so S(P1,s) po op(P1,x).
	e := &mem.Execution{
		Procs: 2,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 0},   // W(x)
			{Proc: 0, Index: 1, Kind: mem.SyncRMW, Addr: 5}, // S(s)
			{Proc: 1, Index: 0, Kind: mem.SyncRMW, Addr: 5}, // S(s)
			{Proc: 1, Index: 1, Kind: mem.Read, Addr: 0},    // R(x)
		},
	}
	g := Build(e, SyncAll)
	if !g.HappensBefore(0, 3) {
		t.Error("W(x) must happen-before R(x) through the synchronization chain")
	}
	if len(g.Races()) != 0 {
		t.Errorf("no races expected, got %v", g.Races())
	}
}

func TestTwoStepSyncChain(t *testing.T) {
	// op(P0,x) S(P0,s) | S(P1,s) S(P1,t) | S(P2,t) op(P2,x):
	// transitive chain across two sync locations (the paper's example).
	e := &mem.Execution{
		Procs: 3,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 0},
			{Proc: 0, Index: 1, Kind: mem.SyncRMW, Addr: 10},
			{Proc: 1, Index: 0, Kind: mem.SyncRMW, Addr: 10},
			{Proc: 1, Index: 1, Kind: mem.SyncRMW, Addr: 11},
			{Proc: 2, Index: 0, Kind: mem.SyncRMW, Addr: 11},
			{Proc: 2, Index: 1, Kind: mem.Write, Addr: 0},
		},
	}
	g := Build(e, SyncAll)
	if !g.HappensBefore(0, 5) {
		t.Error("two-step synchronization chain must order the conflicting writes")
	}
	if races := g.Races(); len(races) != 0 {
		t.Errorf("unexpected races: %v", races)
	}
}

func TestUnorderedConflictIsRace(t *testing.T) {
	e := &mem.Execution{
		Procs: 2,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 0, Data: 1},
			{Proc: 1, Index: 0, Kind: mem.Write, Addr: 0, Data: 2},
		},
	}
	g := Build(e, SyncAll)
	races := g.Races()
	if len(races) != 1 {
		t.Fatalf("races = %v, want exactly 1", races)
	}
	if races[0].A.Proc == races[0].B.Proc {
		t.Error("race must involve two processors")
	}
}

func TestSyncOnDifferentLocationsDoesNotOrder(t *testing.T) {
	// Synchronizing on different locations creates no so edge: the data
	// accesses race.
	e := &mem.Execution{
		Procs: 2,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 0},
			{Proc: 0, Index: 1, Kind: mem.SyncRMW, Addr: 5},
			{Proc: 1, Index: 0, Kind: mem.SyncRMW, Addr: 6},
			{Proc: 1, Index: 1, Kind: mem.Read, Addr: 0},
		},
	}
	g := Build(e, SyncAll)
	if len(g.Races()) != 1 {
		t.Fatalf("races = %v, want 1 (x unordered)", g.Races())
	}
}

func TestFigure2aObeysDRF0(t *testing.T) {
	e := litmus.Figure2a()
	g := BuildAugmented(e, nil, SyncAll)
	if err := g.CheckStrictPartialOrder(); err != nil {
		t.Fatal(err)
	}
	if races := RealRaces(g.Races()); len(races) != 0 {
		t.Errorf("Figure 2(a) must obey DRF0; races: %v", races)
	}
}

func TestFigure2aValueCondition(t *testing.T) {
	e := litmus.Figure2a()
	g := BuildAugmented(e, nil, SyncAll)
	if err := g.CheckReadsSeeLastWrite(nil); err != nil {
		t.Errorf("Figure 2(a) reads must see hb-last writes: %v", err)
	}
}

func TestFigure2bViolatesDRF0(t *testing.T) {
	e := litmus.Figure2b()
	g := BuildAugmented(e, nil, SyncAll)
	races := RealRaces(g.Races())
	if len(races) == 0 {
		t.Fatal("Figure 2(b) must contain races")
	}
	// The paper calls out two families: P0's accesses vs P1's W(y), and
	// P2's W(z) vs P4's W(z).
	var sawP0P1, sawP2P4 bool
	for _, r := range races {
		procs := map[int]bool{r.A.Proc: true, r.B.Proc: true}
		if procs[0] && procs[1] && r.A.Addr == litmus.Fig2Y {
			sawP0P1 = true
		}
		if procs[2] && procs[4] && r.A.Addr == litmus.Fig2Z {
			sawP2P4 = true
		}
	}
	if !sawP0P1 {
		t.Error("missing the P0/P1 race on y")
	}
	if !sawP2P4 {
		t.Error("missing the P2/P4 race on z")
	}
	// P3 is ordered after P2 through the synchronization on t: the
	// P2.W(z)/P3.R(z) pair must NOT be reported.
	for _, r := range races {
		procs := map[int]bool{r.A.Proc: true, r.B.Proc: true}
		if procs[2] && procs[3] {
			t.Errorf("P2/P3 are sync-ordered and must not race: %v", r)
		}
	}
}

func TestAugmentOrdersInitialAndFinalState(t *testing.T) {
	// A single write by P0 with no other accesses: augmentation must order
	// the init write before it and it before the final read.
	e := &mem.Execution{
		Procs: 1,
		Ops:   []mem.Op{{Proc: 0, Index: 0, Kind: mem.Write, Addr: 0, Data: 3}},
		Final: map[mem.Addr]mem.Value{0: 3},
	}
	aug := Augment(e, nil)
	g := Build(aug, SyncAll)
	if races := g.Races(); len(races) != 0 {
		t.Errorf("augmented single-writer execution must be race-free, got %v", races)
	}
	// Init write position precedes the real write, which precedes the
	// final read.
	var initW, realW, finalR = -1, -1, -1
	for i, op := range aug.Ops {
		switch {
		case op.Proc == mem.InitProc && op.Kind == mem.Write && op.Addr == 0:
			initW = i
		case op.Proc == 0 && op.Kind == mem.Write:
			realW = i
		case op.Proc == mem.FinalProc && op.Kind == mem.Read && op.Addr == 0:
			finalR = i
		}
	}
	if initW < 0 || realW < 0 || finalR < 0 {
		t.Fatal("augmentation missing expected operations")
	}
	if !g.HappensBefore(initW, realW) {
		t.Error("init write must happen-before the real write")
	}
	if !g.HappensBefore(realW, finalR) {
		t.Error("real write must happen-before the final read")
	}
}

func TestAugmentExposesRaceWithUnwrittenReader(t *testing.T) {
	// P0 writes x while P1 reads x with no synchronization: race both via
	// direct conflict; augmentation must not hide it.
	e := &mem.Execution{
		Procs: 2,
		Ops: []mem.Op{
			{Proc: 1, Index: 0, Kind: mem.Read, Addr: 0, Got: 0},
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 0, Data: 1},
		},
		Final: map[mem.Addr]mem.Value{0: 1},
	}
	g := BuildAugmented(e, nil, SyncAll)
	if races := RealRaces(g.Races()); len(races) != 1 {
		t.Errorf("races = %v, want exactly the W/R race", races)
	}
}

func TestWriterOrderedModeDropsReadOnlyEdges(t *testing.T) {
	// P0: W(y); SR(s).  P1: SR(s); R(y).
	// Under DRF0 proper (SyncAll), P0's read-only sync op orders its
	// earlier write for P1: W(y) po SR(P0,s) so SR(P1,s) po R(y).
	// Under the Section 6 refinement a read-only synchronization
	// operation cannot order the issuer's previous accesses, so the
	// W(y)/R(y) pair becomes a race.
	e := &mem.Execution{
		Procs: 2,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 1},    // W(y)
			{Proc: 0, Index: 1, Kind: mem.SyncRead, Addr: 5}, // SR(s)
			{Proc: 1, Index: 0, Kind: mem.SyncRead, Addr: 5}, // SR(s)
			{Proc: 1, Index: 1, Kind: mem.Read, Addr: 1},     // R(y)
		},
	}
	wY, rY := 0, 3

	gAll := Build(e, SyncAll)
	if !gAll.HappensBefore(wY, rY) {
		t.Error("under DRF0 proper, consecutive sync ops order regardless of kind")
	}
	if races := gAll.Races(); len(races) != 0 {
		t.Errorf("no races expected under SyncAll: %v", races)
	}

	g := Build(e, SyncWriterOrdered)
	if g.HappensBefore(wY, rY) {
		t.Error("a read-only sync op must not order the issuer's earlier write")
	}
	if races := g.Races(); len(races) != 1 {
		t.Errorf("races = %v, want exactly the W(y)/R(y) pair", races)
	}

	// Replacing P0's Test with a releasing sync write restores ordering
	// even under the refinement.
	e2 := &mem.Execution{
		Procs: 2,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 1},
			{Proc: 0, Index: 1, Kind: mem.SyncWrite, Addr: 5},
			{Proc: 1, Index: 0, Kind: mem.SyncRead, Addr: 5},
			{Proc: 1, Index: 1, Kind: mem.Read, Addr: 1},
		},
	}
	g2 := Build(e2, SyncWriterOrdered)
	if !g2.HappensBefore(0, 3) {
		t.Error("a writing sync op must order the issuer's earlier write under the refinement")
	}
}

func TestWriterOrderedSyncSyncExempt(t *testing.T) {
	// SR and SW on the same location, unordered: conflicting sync pair is
	// exempt under the refinement, a race under DRF0 proper... under
	// SyncAll they are so-ordered anyway, so only the refined mode is
	// interesting: no race either way.
	e := &mem.Execution{
		Procs: 2,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.SyncRead, Addr: 5},
			{Proc: 1, Index: 0, Kind: mem.SyncWrite, Addr: 5},
		},
	}
	if races := Build(e, SyncWriterOrdered).Races(); len(races) != 0 {
		t.Errorf("sync-sync pair must be exempt under the refinement: %v", races)
	}
	if races := Build(e, SyncAll).Races(); len(races) != 0 {
		t.Errorf("sync-sync pair is so-ordered under DRF0: %v", races)
	}
}

func TestHBOnEnumeratedDekkerExecutions(t *testing.T) {
	// Every SC execution of racy Dekker has a race; every SC execution of
	// DekkerSync does not.
	check := func(name string, prog interface {
		Validate() error
	}, wantRace bool) {
	}
	_ = check

	for _, tc := range []struct {
		name     string
		wantRace bool
	}{
		{"dekker", true},
		{"dekker-sync", false},
	} {
		var prog = litmus.Dekker()
		if tc.name == "dekker-sync" {
			prog = litmus.DekkerSync()
		}
		_, err := ideal.Enumerate(prog, ideal.EnumConfig{}, func(it *ideal.Interp) error {
			g := BuildAugmented(it.Execution(), prog.Init, SyncAll)
			got := len(RealRaces(g.Races())) > 0
			if got != tc.wantRace {
				t.Errorf("%s: race=%v, want %v", tc.name, got, tc.wantRace)
				return ideal.ErrStop
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestHBIsStrictPartialOrderOnEnumeratedExecutions(t *testing.T) {
	for _, prog := range litmus.All() {
		cfg := ideal.EnumConfig{
			Interp:        ideal.Config{MaxMemOpsPerThread: 10},
			MaxExecutions: 0,
			MaxPaths:      200_000,
			SkipTruncated: true,
		}
		n := 0
		_, err := ideal.Enumerate(prog, cfg, func(it *ideal.Interp) error {
			n++
			if n > 50 { // sample a few executions per program
				return ideal.ErrStop
			}
			g := BuildAugmented(it.Execution(), prog.Init, SyncAll)
			if err := g.CheckStrictPartialOrder(); err != nil {
				t.Errorf("%s: %v", prog.Name, err)
				return ideal.ErrStop
			}
			return nil
		})
		if err != nil && err != ideal.ErrBudget {
			t.Fatalf("%s: %v", prog.Name, err)
		}
	}
}

func TestFindOpHelper(t *testing.T) {
	e := litmus.Figure2a()
	if i := findOp(t, e, 0, 0); e.Ops[i].Proc != 0 || e.Ops[i].Index != 0 {
		t.Error("findOp returned wrong op")
	}
}
