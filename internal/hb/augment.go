package hb

import (
	"sort"

	"weakorder/internal/mem"
)

// Augment implements the paper's Section 4 boundary construction: before
// the actual execution, a hypothetical processor (mem.InitProc) writes the
// initial value of every location and then performs a synchronization
// operation on a fresh location; each real processor then performs a
// synchronization operation on that location before its first real
// operation. Symmetrically, after the execution each real processor
// synchronizes on a second fresh location, after which a hypothetical
// processor (mem.FinalProc) synchronizes and reads every location.
//
// The effect is that initializing writes happen-before every real access
// and every real access happens-before the final reads, so accesses that
// race only with the initial or final state are still classified as races
// by DRF0.
//
// init supplies the program's initial memory contents (locations absent
// from it initialize to zero). The returned execution is fresh; e is not
// modified.
func Augment(e *mem.Execution, init map[mem.Addr]mem.Value) *mem.Execution {
	addrSet := make(map[mem.Addr]bool)
	maxAddr := mem.Addr(0)
	for _, op := range e.Ops {
		addrSet[op.Addr] = true
		if op.Addr > maxAddr {
			maxAddr = op.Addr
		}
	}
	for a := range e.Final {
		addrSet[a] = true
		if a > maxAddr {
			maxAddr = a
		}
	}
	for a := range init {
		addrSet[a] = true
		if a > maxAddr {
			maxAddr = a
		}
	}
	addrs := make([]mem.Addr, 0, len(addrSet))
	for a := range addrSet {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	initSync := maxAddr + 1
	finalSync := maxAddr + 2

	out := &mem.Execution{
		Final: make(map[mem.Addr]mem.Value, len(e.Final)),
		Procs: e.Procs,
	}
	for a, v := range e.Final {
		out.Final[a] = v
	}

	// Hypothetical initial block.
	ix := 0
	for _, a := range addrs {
		out.Ops = append(out.Ops, mem.Op{
			Proc: mem.InitProc, Index: ix, Kind: mem.Write, Addr: a,
			Data: init[a], Label: "init",
		})
		ix++
	}
	out.Ops = append(out.Ops, mem.Op{
		Proc: mem.InitProc, Index: ix, Kind: mem.SyncRMW, Addr: initSync, Label: "init-sync",
	})
	for p := 0; p < e.Procs; p++ {
		out.Ops = append(out.Ops, mem.Op{
			Proc: p, Index: -1, Kind: mem.SyncRMW, Addr: initSync, Label: "init-sync",
		})
	}

	// The actual execution.
	out.Ops = append(out.Ops, e.Ops...)

	// Hypothetical final block.
	lastIndex := make(map[int]int, e.Procs)
	for p := 0; p < e.Procs; p++ {
		lastIndex[p] = -1
	}
	for _, op := range e.Ops {
		if op.Proc >= 0 && op.Index > lastIndex[op.Proc] {
			lastIndex[op.Proc] = op.Index
		}
	}
	for p := 0; p < e.Procs; p++ {
		out.Ops = append(out.Ops, mem.Op{
			Proc: p, Index: lastIndex[p] + 1, Kind: mem.SyncRMW, Addr: finalSync, Label: "final-sync",
		})
	}
	fx := 0
	out.Ops = append(out.Ops, mem.Op{
		Proc: mem.FinalProc, Index: fx, Kind: mem.SyncRMW, Addr: finalSync, Label: "final-sync",
	})
	fx++
	for _, a := range addrs {
		out.Ops = append(out.Ops, mem.Op{
			Proc: mem.FinalProc, Index: fx, Kind: mem.Read, Addr: a,
			Got: e.Final[a], Label: "final",
		})
		fx++
	}
	return out
}

// BuildAugmented is shorthand for Build(Augment(e, init), mode).
func BuildAugmented(e *mem.Execution, init map[mem.Addr]mem.Value, mode SyncMode) *Graph {
	return Build(Augment(e, init), mode)
}

// RealRaces filters races down to those between two real (non-boundary)
// operations. Boundary operations participate in ordering but races
// reported against them would double-report initial/final-state races in
// most callers' output.
func RealRaces(races []Race) []Race {
	var out []Race
	for _, r := range races {
		if r.A.Proc >= 0 && r.B.Proc >= 0 {
			out = append(out, r)
		}
	}
	return out
}
