package ideal

import (
	"errors"
	"fmt"
	"math/rand"

	"weakorder/internal/program"
)

// EnumConfig controls exhaustive interleaving enumeration.
type EnumConfig struct {
	// Interp bounds each interpreted path.
	Interp Config
	// MaxExecutions aborts enumeration after this many complete executions
	// (0 = unlimited). Exceeding it yields ErrBudget.
	MaxExecutions int
	// MaxPaths aborts after exploring this many paths, complete or not
	// (0 = unlimited). Exceeding it yields ErrBudget.
	MaxPaths int
	// SkipTruncated controls what happens when a path exceeds the
	// per-thread memory-operation budget: if true the path is silently
	// abandoned, otherwise enumeration fails with ErrTruncated.
	SkipTruncated bool
	// Reduce enables conflict-aware partial-order reduction: sleep sets
	// over the enabled-thread frontier plus state-key memoization, so
	// enumeration visits at least one representative interleaving per
	// Mazurkiewicz trace (equivalence class under commuting adjacent
	// independent operations) instead of every interleaving. Sound for
	// visitors that depend only on trace-equivalence invariants — read
	// observations (keyed by OpID) and the final memory state, i.e.
	// mem.Result — because two operations commute only when they do not
	// conflict in the paper's Definition 3 sense. Executions then counts
	// representatives, not interleavings. Programs with more than 64
	// threads fall back to the naive enumeration.
	Reduce bool
	// Cancel, when non-nil, is polled periodically (every cancelPollMask+1
	// steps) during enumeration; returning true aborts the search with
	// ErrCanceled. Cancellation is cooperative — no goroutines are
	// involved, so an abandoned enumeration leaks nothing — and is how
	// callers impose wall-clock deadlines on otherwise CPU-bound searches.
	Cancel func() bool
	// PreserveSyncOrder strengthens the reduction's dependence relation:
	// two synchronization operations on the same address never commute,
	// even when both only read. The happens-before builders (package hb)
	// order same-address synchronization pairs by completion order
	// regardless of conflict, so visitors that inspect per-execution
	// sync order (race detection) need this; pure outcome enumeration
	// does not. Only meaningful with Reduce.
	PreserveSyncOrder bool
}

// ErrBudget reports that enumeration exceeded its execution or path budget.
var ErrBudget = errors.New("ideal: enumeration budget exceeded")

// ErrCanceled reports that EnumConfig.Cancel asked the search to stop.
var ErrCanceled = errors.New("ideal: enumeration canceled")

// cancelPollMask throttles EnumConfig.Cancel polling to every 256 steps:
// the hook typically reads a clock, which is too expensive per step and
// plenty accurate at this granularity (a step is well under a microsecond).
const cancelPollMask = 255

// canceled polls cfg.Cancel at the throttled rate.
func (cfg *EnumConfig) canceled(steps int) bool {
	return cfg.Cancel != nil && steps&cancelPollMask == 0 && cfg.Cancel()
}

// ErrStop is returned by a visitor to stop enumeration early without error.
var ErrStop = errors.New("ideal: stop enumeration")

// EnumStats summarizes an enumeration.
type EnumStats struct {
	// Executions is the number of complete executions visited.
	Executions int
	// Truncated is the number of abandoned (budget-exceeded) paths.
	Truncated int
	// Steps is the total number of Step calls performed.
	Steps int
	// SleepPruned counts branches skipped by the sleep-set reduction
	// (zero unless EnumConfig.Reduce).
	SleepPruned int
	// MemoHits counts states skipped because an equal state had already
	// been explored under a covering sleep set (zero unless
	// EnumConfig.Reduce).
	MemoHits int
}

// Visitor receives each complete idealized execution. Returning ErrStop
// halts enumeration successfully; any other non-nil error aborts it.
type Visitor func(*Interp) error

// Enumerate explores every interleaving of p at memory-operation
// granularity, invoking visit once per complete execution. With
// cfg.Reduce it instead visits at least one representative per
// conflict-equivalence class of complete executions (see
// EnumConfig.Reduce). The Interp passed to visit is owned by the
// enumerator and must not be retained; call Execution on it to
// snapshot.
func Enumerate(p *program.Program, cfg EnumConfig, visit Visitor) (EnumStats, error) {
	var stats EnumStats
	var ar Arena
	root := New(p, cfg.Interp)
	var err error
	if cfg.Reduce && p.NumThreads() <= maxReduceThreads {
		r := &reducer{cfg: cfg, stats: &stats, visit: visit, memo: make(map[string][]uint64), ar: &ar}
		err = r.explore(root, 0, make([][]byte, p.NumThreads()))
	} else {
		err = enumerate(root, cfg, &stats, &ar, visit)
	}
	if errors.Is(err, ErrStop) {
		return stats, nil
	}
	return stats, err
}

func enumerate(it *Interp, cfg EnumConfig, stats *EnumStats, ar *Arena, visit Visitor) error {
	if cfg.MaxPaths > 0 && stats.Steps > cfg.MaxPaths {
		return ErrBudget
	}
	if cfg.canceled(stats.Steps) {
		return ErrCanceled
	}
	if it.Done() {
		stats.Executions++
		if cfg.MaxExecutions > 0 && stats.Executions > cfg.MaxExecutions {
			return ErrBudget
		}
		return visit(it)
	}
	run := it.RunnableInto(ar.Ints())
	for _, tid := range run {
		child := ar.Clone(it)
		stats.Steps++
		_, _, err := child.Step(tid)
		switch {
		case errors.Is(err, ErrTruncated):
			ar.Release(child)
			stats.Truncated++
			if cfg.SkipTruncated {
				continue
			}
			return ErrTruncated
		case err != nil:
			ar.Release(child)
			return err
		}
		err = enumerate(child, cfg, stats, ar, visit)
		ar.Release(child)
		if err != nil {
			return err
		}
	}
	ar.ReleaseInts(run)
	return nil
}

// RunSchedule interprets p under an explicit schedule: schedule[i] names
// the thread taking step i. When the schedule is exhausted (or names a
// halted thread) remaining threads run round-robin to completion.
func RunSchedule(p *program.Program, cfg Config, schedule []int) (*Interp, error) {
	it := New(p, cfg)
	for _, tid := range schedule {
		if it.Done() {
			break
		}
		if tid < 0 || tid >= len(it.threads) || it.threads[tid].halted {
			continue
		}
		if _, _, err := it.Step(tid); err != nil {
			return nil, err
		}
	}
	if err := drain(it); err != nil {
		return nil, err
	}
	return it, nil
}

// RunSeed interprets p under a pseudo-random fair interleaving derived from
// seed. Fairness (every runnable thread is eventually chosen) ensures that
// spin loops waiting on other threads terminate.
func RunSeed(p *program.Program, cfg Config, seed int64) (*Interp, error) {
	it := New(p, cfg)
	rng := rand.New(rand.NewSource(seed))
	for !it.Done() {
		run := it.Runnable()
		tid := run[rng.Intn(len(run))]
		if _, _, err := it.Step(tid); err != nil {
			return nil, fmt.Errorf("ideal: seed %d: %w", seed, err)
		}
	}
	return it, nil
}

// drain runs all remaining threads round-robin until completion.
func drain(it *Interp) error {
	for !it.Done() {
		for _, tid := range it.Runnable() {
			if _, _, err := it.Step(tid); err != nil {
				return err
			}
		}
	}
	return nil
}
