package ideal

import (
	"testing"

	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

func collectOutcomes(t *testing.T, p *program.Program, cfg EnumConfig) map[string]int {
	t.Helper()
	out := make(map[string]int)
	_, err := Enumerate(p, cfg, func(it *Interp) error {
		out[mem.ResultOf(it.Execution()).Key()]++
		return nil
	})
	if err != nil {
		t.Fatalf("Enumerate(%s): %v", p.Name, err)
	}
	return out
}

func TestSingleThreadSequential(t *testing.T) {
	b := program.NewBuilder("seq")
	x := b.Var("x")
	th := b.Thread()
	th.LoadImm(program.R0, 2)
	th.Store(x, program.R0)
	th.Load(program.R1, x)
	th.AddImm(program.R1, program.R1, 3)
	th.Store(x, program.R1)
	p := b.MustBuild()

	it, err := RunSeed(p, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := it.MemValue(x); got != 5 {
		t.Fatalf("final x = %d, want 5", got)
	}
	if got := it.Reg(0, program.R1); got != 5 {
		t.Fatalf("r1 = %d, want 5", got)
	}
	if got := it.TraceLen(); got != 3 {
		t.Fatalf("trace length = %d, want 3", got)
	}
}

func TestDekkerEnumerationForbidsBothZero(t *testing.T) {
	p := litmus.Dekker()
	sawForbidden := false
	distinct := make(map[string]bool)
	_, err := Enumerate(p, EnumConfig{}, func(it *Interp) error {
		r := mem.ResultOf(it.Execution())
		distinct[r.Key()] = true
		if litmus.DekkerForbidden(r) {
			sawForbidden = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawForbidden {
		t.Error("sequential consistency must forbid r0==0 && r1==0 in Dekker")
	}
	// SC allows exactly (0,1), (1,0), (1,1).
	if len(distinct) != 3 {
		t.Errorf("Dekker SC outcomes = %d distinct, want 3", len(distinct))
	}
}

func TestLoadBufferingForbidden(t *testing.T) {
	p := litmus.LoadBuffering()
	_, err := Enumerate(p, EnumConfig{}, func(it *Interp) error {
		r := mem.ResultOf(it.Execution())
		r0 := r.Reads[mem.OpID{Proc: 0, Index: 0}].Value
		r1 := r.Reads[mem.OpID{Proc: 1, Index: 0}].Value
		if r0 == 1 && r1 == 1 {
			t.Error("SC must forbid both loads observing the later stores")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIRIWForbidden(t *testing.T) {
	p := litmus.IRIW()
	_, err := Enumerate(p, EnumConfig{}, func(it *Interp) error {
		if litmus.IRIWForbidden(mem.ResultOf(it.Execution())) {
			t.Error("SC must forbid the IRIW opposite-order observation")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTASAtomicity(t *testing.T) {
	// Two processors TAS the same location once; exactly one must win
	// (observe 0) in every interleaving.
	b := program.NewBuilder("tas2")
	l := b.Var("l")
	b.Thread().TAS(program.R0, l)
	b.Thread().TAS(program.R0, l)
	p := b.MustBuild()

	_, err := Enumerate(p, EnumConfig{}, func(it *Interp) error {
		r := mem.ResultOf(it.Execution())
		a := r.Reads[mem.OpID{Proc: 0, Index: 0}].Value
		bv := r.Reads[mem.OpID{Proc: 1, Index: 0}].Value
		if !((a == 0 && bv == 1) || (a == 1 && bv == 0)) {
			t.Errorf("TAS outcomes (%d,%d): exactly one winner required", a, bv)
		}
		if fin := it.MemValue(l); fin != 1 {
			t.Errorf("final lock value = %d, want 1", fin)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSwapSemantics(t *testing.T) {
	b := program.NewBuilder("swap")
	x := b.Var("x")
	b.InitVar("x", 7)
	th := b.Thread()
	th.SwapImm(program.R0, x, 9)
	p := b.MustBuild()

	it, err := RunSeed(p, Config{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got := it.Reg(0, program.R0); got != 7 {
		t.Fatalf("swap returned %d, want 7", got)
	}
	if got := it.MemValue(x); got != 9 {
		t.Fatalf("swap left %d, want 9", got)
	}
}

func TestEnumerationCountsTwoThreads(t *testing.T) {
	// Two threads of 2 memory ops each: C(4,2) = 6 interleavings.
	b := program.NewBuilder("count")
	x, y := b.Var("x"), b.Var("y")
	t0 := b.Thread()
	t0.StoreImm(x, 1)
	t0.StoreImm(x, 2)
	t1 := b.Thread()
	t1.StoreImm(y, 1)
	t1.StoreImm(y, 2)
	p := b.MustBuild()

	n := 0
	stats, err := Enumerate(p, EnumConfig{}, func(it *Interp) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 || stats.Executions != 6 {
		t.Fatalf("enumerated %d executions (stats %d), want 6", n, stats.Executions)
	}
}

func TestExecutionBudgetTruncation(t *testing.T) {
	// An unbounded spin on a location nobody sets: every path truncates.
	b := program.NewBuilder("spin-forever")
	f := b.Var("f")
	th := b.Thread()
	th.Label("spin")
	th.SyncLoad(program.R0, f)
	th.BeqImm(program.R0, 0, "spin")
	p := b.MustBuild()

	cfg := EnumConfig{Interp: Config{MaxMemOpsPerThread: 8}, SkipTruncated: true}
	stats, err := Enumerate(p, cfg, func(it *Interp) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executions != 0 {
		t.Fatalf("executions = %d, want 0 (spin never completes)", stats.Executions)
	}
	if stats.Truncated == 0 {
		t.Fatal("expected truncated paths")
	}

	// Without SkipTruncated the enumeration must error.
	if _, err := Enumerate(p, EnumConfig{Interp: Config{MaxMemOpsPerThread: 8}}, func(it *Interp) error { return nil }); err == nil {
		t.Fatal("expected ErrTruncated without SkipTruncated")
	}
}

func TestLocalInfiniteLoopDetected(t *testing.T) {
	b := program.NewBuilder("local-loop")
	th := b.Thread()
	th.Label("top")
	th.Jmp("top")
	p := b.MustBuild()

	it := New(p, Config{MaxLocalSteps: 100})
	if _, _, err := it.Step(0); err == nil {
		t.Fatal("local infinite loop must be detected")
	}
}

func TestMaxExecutionsBudget(t *testing.T) {
	p := litmus.Dekker()
	_, err := Enumerate(p, EnumConfig{MaxExecutions: 2}, func(it *Interp) error { return nil })
	if err == nil {
		t.Fatal("expected ErrBudget with MaxExecutions=2 (Dekker has 6 interleavings)")
	}
}

func TestVisitorStop(t *testing.T) {
	p := litmus.Dekker()
	n := 0
	_, err := Enumerate(p, EnumConfig{}, func(it *Interp) error {
		n++
		return ErrStop
	})
	if err != nil {
		t.Fatalf("ErrStop must not propagate as an error: %v", err)
	}
	if n != 1 {
		t.Fatalf("visited %d executions after ErrStop, want 1", n)
	}
}

func TestRunScheduleDeterministic(t *testing.T) {
	p := litmus.Dekker()
	// P0 runs both ops, then P1: r0 = 0 is impossible; P0 reads y==0,
	// P1 reads x==1.
	it, err := RunSchedule(p, Config{}, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	r := mem.ResultOf(it.Execution())
	if got := r.Reads[mem.OpID{Proc: 0, Index: 1}].Value; got != 0 {
		t.Errorf("P0 read y = %d, want 0", got)
	}
	if got := r.Reads[mem.OpID{Proc: 1, Index: 1}].Value; got != 1 {
		t.Errorf("P1 read x = %d, want 1", got)
	}
}

func TestRunSeedReproducible(t *testing.T) {
	p := litmus.CriticalSection(2, 2)
	a, err := RunSeed(p, Config{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSeed(p, Config{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := mem.ResultOf(a.Execution()), mem.ResultOf(b.Execution())
	if !ra.Equal(rb) {
		t.Error("same seed must reproduce the same execution result")
	}
}

func TestCriticalSectionCounterAlwaysCorrect(t *testing.T) {
	p := litmus.CriticalSection(2, 1)
	counter, _ := p.AddrOf("counter")
	cfg := EnumConfig{Interp: Config{MaxMemOpsPerThread: 12}, SkipTruncated: true}
	n := 0
	_, err := Enumerate(p, cfg, func(it *Interp) error {
		n++
		if got := it.MemValue(counter); got != 2 {
			t.Errorf("final counter = %d, want 2", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no complete executions enumerated")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := litmus.Dekker()
	a := New(p, Config{})
	bI := a.Clone()
	if _, _, err := a.Step(0); err != nil {
		t.Fatal(err)
	}
	if bI.TraceLen() != 0 {
		t.Error("stepping the original must not affect the clone")
	}
	if a.StateKey() == bI.StateKey() {
		t.Error("state keys must differ after one side steps")
	}
}

func TestStateKeyIdentical(t *testing.T) {
	p := litmus.Dekker()
	a, b := New(p, Config{}), New(p, Config{})
	if a.StateKey() != b.StateKey() {
		t.Error("fresh interpreters of the same program must share a state key")
	}
}

func TestStepHaltedThreadErrors(t *testing.T) {
	b := program.NewBuilder("halt")
	b.Thread().Halt()
	p := b.MustBuild()
	it := New(p, Config{})
	// A thread with no memory operations halts during construction.
	if !it.Done() {
		t.Fatal("memory-op-free thread must halt eagerly")
	}
	if _, _, err := it.Step(0); err == nil {
		t.Fatal("stepping a halted thread must error")
	}
}

func TestEvalCondOnInterp(t *testing.T) {
	b := program.NewBuilder("cond")
	x := b.Var("x")
	th := b.Thread()
	th.LoadImm(program.R3, 8)
	th.Store(x, program.R3)
	p := b.MustBuild()
	it, err := RunSeed(p, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	holds := &program.Cond{Terms: []program.CondTerm{
		{Thread: 0, Reg: program.R3, Value: 8},
		{Thread: -1, Addr: x, Value: 8},
	}}
	if !it.EvalCond(holds) {
		t.Error("condition must hold")
	}
	fails := &program.Cond{Terms: []program.CondTerm{{Thread: 0, Reg: program.R3, Value: 9}}}
	if it.EvalCond(fails) {
		t.Error("condition must fail")
	}
	if it.EvalCond(nil) {
		t.Error("nil condition must be false")
	}
}

func TestRunScheduleSkipsInvalidThreadIDs(t *testing.T) {
	p := litmus.Dekker()
	// Invalid ids are ignored; the tail drains round-robin.
	it, err := RunSchedule(p, Config{}, []int{-1, 99, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !it.Done() {
		t.Error("schedule must drain to completion")
	}
}

func TestMaxPathsBudget(t *testing.T) {
	p := litmus.IRIW()
	_, err := Enumerate(p, EnumConfig{MaxPaths: 5}, func(it *Interp) error { return nil })
	if err == nil {
		t.Fatal("expected ErrBudget from MaxPaths")
	}
}
