package ideal

import (
	"errors"
	"testing"

	"weakorder/internal/litmus"
	"weakorder/internal/mem"
)

// TestEnumerateCancel: a cancel hook that fires immediately aborts the
// enumeration with ErrCanceled before any execution is visited.
func TestEnumerateCancel(t *testing.T) {
	for _, reduce := range []bool{false, true} {
		visited := 0
		_, err := Enumerate(litmus.Dekker(), EnumConfig{
			Reduce: reduce,
			Cancel: func() bool { return true },
		}, func(it *Interp) error {
			visited++
			return nil
		})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("reduce=%v: err = %v, want ErrCanceled", reduce, err)
		}
		if visited != 0 {
			t.Fatalf("reduce=%v: visited %d executions after immediate cancel", reduce, visited)
		}
	}
}

// TestEnumerateNilCancelUnaffected: the zero config must enumerate
// exactly as before the hook existed.
func TestEnumerateNilCancelUnaffected(t *testing.T) {
	keys := make(map[string]bool)
	if _, err := Enumerate(litmus.Dekker(), EnumConfig{}, func(it *Interp) error {
		keys[mem.ResultOf(it.Execution()).Key()] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 {
		t.Fatalf("Dekker outcomes = %d, want 3", len(keys))
	}
}
