package ideal_test

import (
	"testing"

	"weakorder/internal/gen"
	"weakorder/internal/ideal"
	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// outcomeSet enumerates p under cfg and returns the set of distinct
// result keys plus the enumeration statistics.
func outcomeSet(t *testing.T, p *program.Program, cfg ideal.EnumConfig) (map[string]bool, ideal.EnumStats) {
	t.Helper()
	out := make(map[string]bool)
	stats, err := ideal.Enumerate(p, cfg, func(it *ideal.Interp) error {
		out[mem.ResultOf(it.Execution()).Key()] = true
		return nil
	})
	if err != nil {
		t.Fatalf("%s: enumerate (reduce=%v): %v", p.Name, cfg.Reduce, err)
	}
	return out, stats
}

// outcomeSetBudget is outcomeSet, but a blown path budget reports
// ok=false instead of failing the test.
func outcomeSetBudget(t *testing.T, p *program.Program, cfg ideal.EnumConfig) (map[string]bool, ideal.EnumStats, bool) {
	t.Helper()
	out := make(map[string]bool)
	stats, err := ideal.Enumerate(p, cfg, func(it *ideal.Interp) error {
		out[mem.ResultOf(it.Execution()).Key()] = true
		return nil
	})
	if err == ideal.ErrBudget {
		return nil, stats, false
	}
	if err != nil {
		t.Fatalf("%s: enumerate (reduce=%v): %v", p.Name, cfg.Reduce, err)
	}
	return out, stats, true
}

func diffOutcomes(t *testing.T, p *program.Program, cfg ideal.EnumConfig) (naive, reduced ideal.EnumStats) {
	t.Helper()
	naiveCfg := cfg
	naiveCfg.Reduce = false
	reducedCfg := cfg
	reducedCfg.Reduce = true
	nOut, nStats, ok := outcomeSetBudget(t, p, naiveCfg)
	if !ok {
		// The naive reference blew MaxPaths: nothing to compare against.
		t.Logf("%s: naive enumeration exceeded budget; skipping comparison", p.Name)
		return nStats, nStats
	}
	rOut, rStats := outcomeSet(t, p, reducedCfg)
	for k := range nOut {
		if !rOut[k] {
			t.Errorf("%s: naive outcome %q missing under reduction", p.Name, k)
		}
	}
	for k := range rOut {
		if !nOut[k] {
			t.Errorf("%s: reduced outcome %q not in naive set", p.Name, k)
		}
	}
	// The oracle's completeness flag is Truncated == 0; the reduction
	// must not hide truncation (a budget-exceeded step is re-hit at the
	// first branch that reaches it, before any sleep bit covers it).
	if (nStats.Truncated == 0) != (rStats.Truncated == 0) {
		t.Errorf("%s: truncation parity lost: naive %d, reduced %d",
			p.Name, nStats.Truncated, rStats.Truncated)
	}
	if rStats.Steps > nStats.Steps {
		t.Errorf("%s: reduction explored more steps (%d) than naive (%d)",
			p.Name, rStats.Steps, nStats.Steps)
	}
	return nStats, rStats
}

func TestReducedOutcomesMatchNaiveLitmus(t *testing.T) {
	cfg := ideal.EnumConfig{
		Interp:        ideal.Config{MaxMemOpsPerThread: 16},
		SkipTruncated: true,
	}
	var naiveSteps, reducedSteps int
	for _, p := range litmus.All() {
		n, r := diffOutcomes(t, p, cfg)
		naiveSteps += n.Steps
		reducedSteps += r.Steps
	}
	t.Logf("litmus corpus: naive %d steps, reduced %d steps (%.1fx)",
		naiveSteps, reducedSteps, float64(naiveSteps)/float64(reducedSteps))
}

func TestReducedOutcomesMatchNaiveGenerated(t *testing.T) {
	cfg := ideal.EnumConfig{
		Interp:        ideal.Config{MaxMemOpsPerThread: 16},
		SkipTruncated: true,
		MaxPaths:      2_000_000,
	}
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for s := 0; s < seeds; s++ {
		diffOutcomes(t, gen.RaceFree(gen.RaceFreeConfig{
			Procs: 2, Locks: 1, SharedPerLock: 2, PrivatePerProc: 1,
			Sections: 1, OpsPerSection: 2, PrivateOps: 1,
		}, int64(s)), cfg)
		diffOutcomes(t, gen.Racy(gen.RacyConfig{
			Procs: 2, Vars: 3, OpsPerProc: 5, SyncFraction: 4,
		}, int64(s)), cfg)
		diffOutcomes(t, gen.Handoff(gen.HandoffConfig{Stages: 2, Items: 1, Work: 1}, int64(s)), cfg)
	}
}

// TestReducedEnumerationPrunes guards the perf claim: on a program of
// mostly-independent operations the reduction must explore far fewer
// steps than C(n,k) interleavings.
func TestReducedEnumerationPrunes(t *testing.T) {
	p := gen.Racy(gen.RacyConfig{Procs: 3, Vars: 6, OpsPerProc: 4, SyncFraction: 8}, 7)
	cfg := ideal.EnumConfig{
		Interp:        ideal.Config{MaxMemOpsPerThread: 16},
		SkipTruncated: true,
	}
	naive, reduced := diffOutcomes(t, p, cfg)
	if reduced.Steps*5 > naive.Steps {
		t.Errorf("expected >=5x step reduction, got naive %d vs reduced %d",
			naive.Steps, reduced.Steps)
	}
	if reduced.SleepPruned == 0 {
		t.Error("expected sleep-set prunes, got none")
	}
}

// TestReduceManyThreadsFallsBack checks the >64-thread fallback keeps
// working (no bitmask overflow): it must behave exactly like naive.
func TestReduceManyThreadsFallsBack(t *testing.T) {
	b := program.NewBuilder("wide")
	x := b.Var("x")
	for i := 0; i < 65; i++ {
		b.Thread().StoreImm(x, 1)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := ideal.EnumConfig{
		Interp:        ideal.Config{MaxMemOpsPerThread: 4},
		SkipTruncated: true,
		MaxExecutions: 10,
		Reduce:        true,
	}
	_, err = ideal.Enumerate(p, cfg, func(*ideal.Interp) error { return nil })
	if err != ideal.ErrBudget {
		t.Fatalf("expected ErrBudget from naive fallback, got %v", err)
	}
}
