package ideal

// Arena recycles interpreter clones and scratch slices within one
// enumeration or search. The interleaving explorers clone the
// interpreter once per step and retire the clone as soon as its subtree
// is finished; routing clones through an arena makes the hot loop
// allocation-free after warm-up (the steady state holds one retired
// interpreter per tree level). An Arena is not goroutine-safe — use one
// per search, which is what Enumerate and scmatch do internally.
type Arena struct {
	interps []*Interp
	ints    [][]int
}

// Clone copies it exactly like Interp.Clone, reusing storage retired by
// Release when available.
func (ar *Arena) Clone(it *Interp) *Interp {
	n := len(ar.interps) - 1
	if n < 0 {
		return it.Clone()
	}
	out := ar.interps[n]
	ar.interps[n] = nil
	ar.interps = ar.interps[:n]
	out.copyFrom(it)
	return out
}

// Release retires an interpreter's storage for reuse by a later Clone.
// The caller must not touch it afterwards.
func (ar *Arena) Release(it *Interp) {
	if it != nil {
		ar.interps = append(ar.interps, it)
	}
}

// Ints returns an empty integer scratch slice, reusing storage retired
// by ReleaseInts when available.
func (ar *Arena) Ints() []int {
	n := len(ar.ints) - 1
	if n < 0 {
		return nil
	}
	out := ar.ints[n]
	ar.ints[n] = nil
	ar.ints = ar.ints[:n]
	return out[:0]
}

// ReleaseInts retires an integer scratch slice obtained from Ints.
func (ar *Arena) ReleaseInts(s []int) {
	if cap(s) > 0 {
		ar.ints = append(ar.ints, s)
	}
}
