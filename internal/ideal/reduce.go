package ideal

import (
	"errors"
	"math/bits"

	"weakorder/internal/mem"
)

// Partial-order reduction for Enumerate (EnumConfig.Reduce).
//
// Two adjacent steps of different threads commute whenever their memory
// operations are independent, so all interleavings of one Mazurkiewicz
// trace produce the same mem.Result: the same value for every dynamic
// read (reads are keyed by OpID and each thread's operations stay in
// program order) and the same final memory. The reducer therefore
// explores one representative ordering per trace:
//
//   - Sleep sets (Godefroid): after fully exploring the branch that
//     steps thread t first, t is added to the sleep set for the
//     remaining sibling branches — any trace beginning with an
//     independent prefix followed by t is equivalent to one already
//     explored. A sleeping thread wakes only when a dependent
//     operation executes.
//   - Memoization: a state reached twice with the same pending read
//     observations has the same set of future results. States are
//     keyed by Interp.StateKey plus each thread's read-value history
//     (two paths to one StateKey can observe different read values,
//     which the key's registers alone do not distinguish), and a
//     revisit is skipped only when a previous visit's sleep set was a
//     subset of the current one — otherwise the earlier visit explored
//     strictly fewer first-steps and the state must be re-expanded.
//
// Dependence is conflict in the paper's Definition 3 sense —
// mem.Conflict: same address with at least one write component —
// optionally strengthened by PreserveSyncOrder to keep same-address
// synchronization pairs ordered (the hb builders serialize those by
// completion order even when both only read).

// maxReduceThreads bounds the sleep-set bitmask; programs with more
// threads fall back to naive enumeration.
const maxReduceThreads = 64

type reducer struct {
	cfg   EnumConfig
	stats *EnumStats
	visit Visitor
	// memo maps state+reads keys to the sleep sets under which the
	// state was already fully explored.
	memo map[string][]uint64
	// ar recycles per-step interpreter clones and runnable scratch;
	// keyBuf is memoKey's build buffer (safe to share across levels
	// because the memo is read and written before any recursion).
	ar     *Arena
	keyBuf []byte
}

// explore enumerates representatives of the complete executions
// reachable from it whose first step is not a sleeping thread. reads
// holds each thread's read-value history along the current path.
func (r *reducer) explore(it *Interp, sleep uint64, reads [][]byte) error {
	if r.cfg.MaxPaths > 0 && r.stats.Steps > r.cfg.MaxPaths {
		return ErrBudget
	}
	if r.cfg.canceled(r.stats.Steps) {
		return ErrCanceled
	}
	if it.Done() {
		r.stats.Executions++
		if r.cfg.MaxExecutions > 0 && r.stats.Executions > r.cfg.MaxExecutions {
			return ErrBudget
		}
		return r.visit(it)
	}
	key := r.memoKey(it, reads)
	for _, m := range r.memo[string(key)] {
		if m&^sleep == 0 {
			r.stats.MemoHits++
			return nil
		}
	}
	// Mark on entry: the interleaving graph is acyclic (every step
	// lengthens the trace), so a state can never re-reach itself and a
	// revisit only happens after this call completes.
	r.memo[string(key)] = append(r.memo[string(key)], sleep)
	run := it.RunnableInto(r.ar.Ints())
	for _, tid := range run {
		bit := uint64(1) << uint(tid)
		if sleep&bit != 0 {
			r.stats.SleepPruned++
			continue
		}
		child := r.ar.Clone(it)
		r.stats.Steps++
		op, ok, err := child.Step(tid)
		switch {
		case errors.Is(err, ErrTruncated):
			r.ar.Release(child)
			r.stats.Truncated++
			if r.cfg.SkipTruncated {
				// tid's budget is exhausted in every state of this
				// subtree where tid has not stepped, so sibling
				// branches may sleep it: the pruned branches are
				// exactly the ones that would truncate again.
				sleep |= bit
				continue
			}
			return ErrTruncated
		case err != nil:
			r.ar.Release(child)
			return err
		}
		childSleep := sleep
		childReads := reads
		if ok {
			childSleep = r.filterSleep(it, sleep, op)
			if op.HasReadComponent() {
				childReads = appendRead(reads, tid, op.Got)
			}
		}
		err = r.explore(child, childSleep, childReads)
		r.ar.Release(child)
		if err != nil {
			return err
		}
		// Every trace from it starting with tid now has an explored
		// representative; later siblings need not re-step tid until a
		// dependent operation wakes it.
		sleep |= bit
	}
	r.ar.ReleaseInts(run)
	return nil
}

// filterSleep wakes every sleeping thread whose pending operation
// depends on the operation just executed: commuting it past op would
// reorder a dependent pair, so its first-step traces are no longer
// covered.
func (r *reducer) filterSleep(it *Interp, sleep uint64, op mem.Op) uint64 {
	out := sleep
	for s := sleep; s != 0; s &= s - 1 {
		u := bits.TrailingZeros64(s)
		addr, kind, known := it.PendingAccess(u)
		if !known || dependent(addr, kind, op, r.cfg.PreserveSyncOrder) {
			out &^= uint64(1) << uint(u)
		}
	}
	return out
}

// dependent reports whether a pending access (addr, kind) and an
// executed operation must not be reordered: they conflict (Definition
// 3 — same address, at least one writes), or, under PreserveSyncOrder,
// they are same-address synchronization operations.
func dependent(addr mem.Addr, kind mem.Kind, op mem.Op, syncOrder bool) bool {
	if addr != op.Addr {
		return false
	}
	if kind.WritesMemory() || op.Kind.WritesMemory() {
		return true
	}
	return syncOrder && kind.IsSync() && op.Kind.IsSync()
}

// memoKey fingerprints the interpreter state plus the read-value
// history that determines the eventual mem.Result. The returned slice
// aliases r.keyBuf and is valid only until the next memoKey call; map
// lookups via string(key) do not allocate, and the store's string
// conversion copies.
func (r *reducer) memoKey(it *Interp, reads [][]byte) []byte {
	key := it.AppendStateKey(r.keyBuf[:0])
	for _, log := range reads {
		key = appendVarint(key, int64(len(log)))
		key = append(key, log...)
	}
	r.keyBuf = key
	return key
}

// appendRead extends thread tid's read log with value v, copying so
// sibling branches do not share backing arrays.
func appendRead(reads [][]byte, tid int, v mem.Value) [][]byte {
	out := make([][]byte, len(reads))
	copy(out, reads)
	log := make([]byte, len(out[tid]), len(out[tid])+2)
	copy(log, out[tid])
	out[tid] = appendVarint(log, int64(v))
	return out
}
