// Package ideal executes programs on the paper's idealized architecture:
// all memory accesses execute atomically and in program order (Section 4).
// It provides a single-step interpreter whose interleavings are controlled
// by the caller, plus an exhaustive enumerator of all interleavings — the
// executable form of "any execution on the idealized system" in
// Definition 3 and the substrate for the sequential-consistency oracle.
//
// A step advances one thread through its local (register-only)
// instructions and then executes exactly one memory operation atomically.
// Local computation cannot affect other threads, so interleaving at memory
// granularity preserves the full set of observable behaviors while keeping
// enumeration tractable.
package ideal

import (
	"errors"
	"fmt"
	"slices"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Config bounds interpretation so that buggy or adversarially scheduled
// programs (e.g. spin loops under unfair interleavings) cannot run forever.
type Config struct {
	// MaxLocalSteps bounds the register-only instructions executed within
	// one Step call; exceeding it is an error (local infinite loop).
	// Zero means DefaultMaxLocalSteps.
	MaxLocalSteps int
	// MaxMemOpsPerThread bounds the dynamic memory operations a single
	// thread may perform; exceeding it truncates the path (ErrTruncated).
	// Zero means DefaultMaxMemOps.
	MaxMemOpsPerThread int
}

// Defaults for Config fields.
const (
	DefaultMaxLocalSteps = 10_000
	DefaultMaxMemOps     = 10_000
)

func (c Config) maxLocal() int {
	if c.MaxLocalSteps > 0 {
		return c.MaxLocalSteps
	}
	return DefaultMaxLocalSteps
}

func (c Config) maxMemOps() int {
	if c.MaxMemOpsPerThread > 0 {
		return c.MaxMemOpsPerThread
	}
	return DefaultMaxMemOps
}

// ErrTruncated reports that a thread exceeded its dynamic memory-operation
// budget; the path was abandoned rather than executed to completion.
var ErrTruncated = errors.New("ideal: execution truncated (memory-operation budget exceeded)")

type threadState struct {
	pc     int
	regs   [program.NumRegs]mem.Value
	nextIx int // program-order index of the thread's next memory operation
	halted bool
}

// Interp interprets one program on the idealized architecture. The zero
// value is not usable; construct with New. Interp values are cheap to
// Clone, which the enumerator and the SC-matching search exploit.
type Interp struct {
	prog    *program.Program
	cfg     Config
	threads []threadState
	memory  map[mem.Addr]mem.Value
	trace   []mem.Op

	// keyAddrs is AppendStateKey's address-sorting scratch; it carries no
	// state and is deliberately not copied by Clone/copyFrom.
	keyAddrs []mem.Addr
}

// New returns an interpreter positioned at the start of p.
func New(p *program.Program, cfg Config) *Interp {
	it := &Interp{
		prog:    p,
		cfg:     cfg,
		threads: make([]threadState, p.NumThreads()),
		memory:  make(map[mem.Addr]mem.Value, len(p.Init)),
	}
	for a, v := range p.Init {
		it.memory[a] = v
	}
	for i := range it.threads {
		// Eagerly run leading local instructions so that a runnable
		// thread is always positioned at a memory instruction; this keeps
		// interleaving choices meaningful (local computation cannot
		// affect other threads). Local-loop errors surface on first Step.
		_ = it.advance(i)
	}
	return it
}

// Clone returns an independent copy of the interpreter state.
func (it *Interp) Clone() *Interp {
	out := &Interp{
		prog:    it.prog,
		cfg:     it.cfg,
		threads: make([]threadState, len(it.threads)),
		memory:  make(map[mem.Addr]mem.Value, len(it.memory)),
		trace:   make([]mem.Op, len(it.trace)),
	}
	copy(out.threads, it.threads)
	copy(out.trace, it.trace)
	for a, v := range it.memory {
		out.memory[a] = v
	}
	return out
}

// copyFrom overwrites it with src's state, reusing it's existing
// storage. Equivalent to Clone from the caller's perspective; this is
// what lets Arena.Clone recycle retired interpreters.
func (it *Interp) copyFrom(src *Interp) {
	it.prog = src.prog
	it.cfg = src.cfg
	if cap(it.threads) < len(src.threads) {
		it.threads = make([]threadState, len(src.threads))
	}
	it.threads = it.threads[:len(src.threads)]
	copy(it.threads, src.threads)
	it.trace = append(it.trace[:0], src.trace...)
	if it.memory == nil {
		it.memory = make(map[mem.Addr]mem.Value, len(src.memory))
	} else {
		clear(it.memory)
	}
	for a, v := range src.memory {
		it.memory[a] = v
	}
}

// Program returns the program under interpretation.
func (it *Interp) Program() *program.Program { return it.prog }

// Runnable returns the ids of threads that have not halted.
func (it *Interp) Runnable() []int { return it.RunnableInto(nil) }

// RunnableInto appends the ids of non-halted threads to dst[:0] and
// returns the result — the allocation-free form of Runnable for search
// hot loops holding their own scratch.
func (it *Interp) RunnableInto(dst []int) []int {
	dst = dst[:0]
	for i := range it.threads {
		if !it.threads[i].halted {
			dst = append(dst, i)
		}
	}
	return dst
}

// Done reports whether every thread has halted.
func (it *Interp) Done() bool {
	for i := range it.threads {
		if !it.threads[i].halted {
			return false
		}
	}
	return true
}

// Reg returns the current value of a thread register (for tests).
func (it *Interp) Reg(tid int, r program.Reg) mem.Value { return it.threads[tid].regs[r] }

// MemValue returns the current contents of an address.
func (it *Interp) MemValue(a mem.Addr) mem.Value { return it.memory[a] }

// TraceLen returns the number of memory operations executed so far.
func (it *Interp) TraceLen() int { return len(it.trace) }

// PendingAccess returns the address and kind of the memory operation
// thread tid will execute on its next Step. known is false when the
// thread has halted or is not positioned at a memory instruction (a
// deferred advance error); callers using this for independence must
// then treat the thread's next step as dependent on everything.
func (it *Interp) PendingAccess(tid int) (addr mem.Addr, kind mem.Kind, known bool) {
	if tid < 0 || tid >= len(it.threads) || it.threads[tid].halted {
		return 0, 0, false
	}
	ts := &it.threads[tid]
	instrs := it.prog.Threads[tid].Instrs
	if ts.pc < 0 || ts.pc >= len(instrs) || !instrs[ts.pc].Op.IsMemory() {
		return 0, 0, false
	}
	in := instrs[ts.pc]
	return in.Addr, in.Op.MemKind(), true
}

// advance runs thread tid through local (register-only) instructions
// until it either halts or is positioned at a memory instruction. It
// errors on local infinite loops.
func (it *Interp) advance(tid int) error {
	ts := &it.threads[tid]
	instrs := it.prog.Threads[tid].Instrs
	for local := 0; ; local++ {
		if local > it.cfg.maxLocal() {
			return fmt.Errorf("ideal: thread %d exceeded %d local steps (infinite local loop?)", tid, it.cfg.maxLocal())
		}
		if ts.pc < 0 || ts.pc >= len(instrs) {
			ts.halted = true
			return nil
		}
		in := instrs[ts.pc]
		if in.Op.IsMemory() {
			return nil
		}
		if halted := it.execLocal(ts, in); halted {
			ts.halted = true
			return nil
		}
	}
}

// Step advances thread tid by one memory operation: the thread is always
// positioned at a memory instruction (advance runs local instructions
// eagerly), so Step executes that operation atomically, appends it to the
// trace, runs the thread forward to its next memory instruction or halt,
// and returns the operation. ok is false only when the thread halted with
// no memory operation pending (possible if a prior advance failed). Step
// returns an error for local infinite loops, memory-op budget exhaustion
// (ErrTruncated), or stepping a halted thread.
func (it *Interp) Step(tid int) (op mem.Op, ok bool, err error) {
	if tid < 0 || tid >= len(it.threads) {
		return mem.Op{}, false, fmt.Errorf("ideal: no thread %d", tid)
	}
	ts := &it.threads[tid]
	if ts.halted {
		return mem.Op{}, false, fmt.Errorf("ideal: thread %d already halted", tid)
	}
	instrs := it.prog.Threads[tid].Instrs
	if ts.pc < 0 || ts.pc >= len(instrs) || !instrs[ts.pc].Op.IsMemory() {
		// Leading local instructions were not yet run (advance error in
		// New is deferred to here) — run them now.
		if err := it.advance(tid); err != nil {
			return mem.Op{}, false, err
		}
		if ts.halted {
			return mem.Op{}, false, nil
		}
	}
	in := instrs[ts.pc]
	if ts.nextIx >= it.cfg.maxMemOps() {
		return mem.Op{}, false, ErrTruncated
	}
	op = it.execMem(tid, ts, in)
	ts.pc++
	it.trace = append(it.trace, op)
	if err := it.advance(tid); err != nil {
		return op, true, err
	}
	return op, true, nil
}

// execLocal executes a non-memory instruction; it reports whether the
// thread halted.
func (it *Interp) execLocal(ts *threadState, in program.Instr) bool {
	operand2 := func() mem.Value {
		if in.UseImm {
			return in.Imm
		}
		return ts.regs[in.Rt]
	}
	switch in.Op {
	case program.OpNop, program.OpFence: // fences are no-ops under atomic, in-order execution
	case program.OpLoadImm:
		ts.regs[in.Rd] = in.Imm
	case program.OpMov:
		ts.regs[in.Rd] = ts.regs[in.Rs]
	case program.OpAdd:
		ts.regs[in.Rd] = ts.regs[in.Rs] + ts.regs[in.Rt]
	case program.OpAddImm:
		ts.regs[in.Rd] = ts.regs[in.Rs] + in.Imm
	case program.OpSub:
		ts.regs[in.Rd] = ts.regs[in.Rs] - ts.regs[in.Rt]
	case program.OpBeq:
		if ts.regs[in.Rs] == operand2() {
			ts.pc = in.Target
			return false
		}
	case program.OpBne:
		if ts.regs[in.Rs] != operand2() {
			ts.pc = in.Target
			return false
		}
	case program.OpBlt:
		if ts.regs[in.Rs] < operand2() {
			ts.pc = in.Target
			return false
		}
	case program.OpBge:
		if ts.regs[in.Rs] >= operand2() {
			ts.pc = in.Target
			return false
		}
	case program.OpJmp:
		ts.pc = in.Target
		return false
	case program.OpHalt:
		return true
	default:
		panic(fmt.Sprintf("ideal: non-local opcode %v in execLocal", in.Op))
	}
	ts.pc++
	return false
}

// execMem atomically executes a memory instruction against the idealized
// memory and returns the resulting dynamic operation.
func (it *Interp) execMem(tid int, ts *threadState, in program.Instr) mem.Op {
	op := mem.Op{
		Proc:  tid,
		Index: ts.nextIx,
		Kind:  in.Op.MemKind(),
		Addr:  in.Addr,
		Label: in.Sym,
	}
	ts.nextIx++
	storeVal := func() mem.Value {
		if in.UseImm {
			return in.Imm
		}
		return ts.regs[in.Rs]
	}
	switch in.Op {
	case program.OpLoad, program.OpSyncLoad:
		op.Got = it.memory[in.Addr]
		ts.regs[in.Rd] = op.Got
	case program.OpStore, program.OpSyncStore:
		op.Data = storeVal()
		it.memory[in.Addr] = op.Data
	case program.OpTAS:
		op.Got = it.memory[in.Addr]
		op.Data = 1
		ts.regs[in.Rd] = op.Got
		it.memory[in.Addr] = 1
	case program.OpSwap:
		op.Got = it.memory[in.Addr]
		op.Data = storeVal()
		ts.regs[in.Rd] = op.Got
		it.memory[in.Addr] = op.Data
	default:
		panic(fmt.Sprintf("ideal: non-memory opcode %v in execMem", in.Op))
	}
	return op
}

// Execution snapshots the trace and memory into a mem.Execution. It may be
// called at any time; normally it is called once Done reports true.
func (it *Interp) Execution() *mem.Execution {
	e := &mem.Execution{
		Ops:   make([]mem.Op, len(it.trace)),
		Final: make(map[mem.Addr]mem.Value, len(it.memory)),
		Procs: len(it.threads),
	}
	copy(e.Ops, it.trace)
	for a, v := range it.memory {
		e.Final[a] = v
	}
	return e
}

// EvalCond evaluates a litmus postcondition against the interpreter's
// final registers and memory (meaningful once Done reports true).
func (it *Interp) EvalCond(c *program.Cond) bool {
	if c == nil {
		return false
	}
	regs := make([]program.RegFile, len(it.threads))
	for i := range it.threads {
		regs[i] = it.threads[i].regs
	}
	return c.Eval(regs, it.memory)
}

// StateKey returns a canonical fingerprint of the interpreter's full state
// (thread contexts plus memory), excluding the trace. Two interpreters
// with equal StateKeys have identical sets of possible futures, which
// makes the key sound for memoizing reachability searches. The encoding
// is compact binary (varints), not human-readable — StateKey exists to
// be a map key, and memoized searches build millions of them.
func (it *Interp) StateKey() string {
	return string(it.AppendStateKey(make([]byte, 0, 16*len(it.threads)+8*len(it.memory))))
}

// AppendStateKey appends the StateKey encoding to buf and returns the
// result. Searches that key a memo map can look up with
// string(AppendStateKey(scratch[:0])) without allocating on hits.
func (it *Interp) AppendStateKey(buf []byte) []byte {
	for i := range it.threads {
		ts := &it.threads[i]
		buf = appendVarint(buf, int64(ts.pc))
		buf = appendVarint(buf, int64(ts.nextIx))
		if ts.halted {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		for _, r := range ts.regs {
			buf = appendVarint(buf, int64(r))
		}
	}
	buf = append(buf, 0xFF) // section separator
	addrs := it.keyAddrs[:0]
	for a := range it.memory {
		if it.memory[a] != 0 {
			addrs = append(addrs, a)
		}
	}
	slices.Sort(addrs)
	it.keyAddrs = addrs
	for _, a := range addrs {
		buf = appendVarint(buf, int64(a))
		buf = appendVarint(buf, int64(it.memory[a]))
	}
	return buf
}

// appendVarint appends a zig-zag varint.
func appendVarint(buf []byte, v int64) []byte {
	u := uint64(v<<1) ^ uint64(v>>63)
	for u >= 0x80 {
		buf = append(buf, byte(u)|0x80)
		u >>= 7
	}
	return append(buf, byte(u))
}
