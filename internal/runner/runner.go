// Package runner executes litmus programs repeatedly on simulated
// machines and classifies every observed outcome against the exhaustive
// set of sequentially consistent outcomes — the familiar litmus-tool
// histogram, with an SC/non-SC mark per outcome.
package runner

import (
	"fmt"
	"sort"
	"strings"

	"weakorder/internal/ideal"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/program"
	"weakorder/internal/scmatch"
)

// Report is the outcome of running one litmus program many times on one
// machine configuration: an outcome histogram with per-outcome SC
// classification — the familiar litmus-tool output.
type Report struct {
	Program string
	Config  machine.Config
	Runs    int
	// Outcomes maps Result.Key to its observation count.
	Outcomes map[string]int
	// SCOutcome marks which observed outcomes are sequentially
	// consistent.
	SCOutcome map[string]bool
	// NonSCRuns counts runs whose result matches no SC execution.
	NonSCRuns int
	// ForbiddenRuns counts runs matching a caller-supplied predicate.
	ForbiddenRuns int
	// CondRuns counts runs satisfying the program's own litmus
	// postcondition (program.Cond), when it has one.
	CondRuns int
}

// Config controls the litmus runner.
type Config struct {
	// Seeds is the number of simulations (default 20).
	Seeds int
	// FirstSeed offsets the seed sequence.
	FirstSeed int64
	// Forbidden optionally classifies each result.
	Forbidden func(mem.Result) bool
	// Enum bounds the SC-outcome enumeration (zero value = package
	// defaults suitable for litmus-size programs).
	Enum ideal.EnumConfig
}

// RunOn simulates prog on cfg across seeds and classifies every outcome
// against the exhaustive SC outcome set.
func RunOn(prog *program.Program, cfg machine.Config, rc Config) (*Report, error) {
	if rc.Seeds == 0 {
		rc.Seeds = 20
	}
	if rc.Enum.Interp.MaxMemOpsPerThread == 0 {
		rc.Enum = ideal.EnumConfig{
			Interp:        ideal.Config{MaxMemOpsPerThread: 16},
			SkipTruncated: true,
			MaxPaths:      5_000_000,
		}
	}
	scSet, err := scmatch.Outcomes(prog, rc.Enum)
	if err != nil {
		return nil, fmt.Errorf("litmus: enumerating SC outcomes of %s: %w", prog.Name, err)
	}
	rep := &Report{
		Program:   prog.Name,
		Config:    cfg,
		Outcomes:  make(map[string]int),
		SCOutcome: make(map[string]bool),
	}
	for s := 0; s < rc.Seeds; s++ {
		res, err := machine.Run(prog, cfg, rc.FirstSeed+int64(s))
		if err != nil {
			return nil, err
		}
		rep.Runs++
		key := res.Result.Key()
		rep.Outcomes[key]++
		_, isSC := scSet[key]
		rep.SCOutcome[key] = isSC
		if !isSC {
			rep.NonSCRuns++
		}
		if rc.Forbidden != nil && rc.Forbidden(res.Result) {
			rep.ForbiddenRuns++
		}
		if res.CondHolds(prog) {
			rep.CondRuns++
		}
	}
	return rep, nil
}

// String renders the report litmus-tool style.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: %d runs, %d non-SC", r.Program, r.Config.Name(), r.Runs, r.NonSCRuns)
	if r.ForbiddenRuns > 0 {
		fmt.Fprintf(&b, ", %d forbidden", r.ForbiddenRuns)
	}
	if r.CondRuns > 0 {
		fmt.Fprintf(&b, ", %d satisfying the postcondition", r.CondRuns)
	}
	b.WriteByte('\n')
	keys := make([]string, 0, len(r.Outcomes))
	for k := range r.Outcomes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if r.Outcomes[keys[i]] != r.Outcomes[keys[j]] {
			return r.Outcomes[keys[i]] > r.Outcomes[keys[j]]
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		mark := "   SC"
		if !r.SCOutcome[k] {
			mark = "NONSC"
		}
		fmt.Fprintf(&b, "  %5dx %s %s\n", r.Outcomes[k], mark, k)
	}
	return b.String()
}
