package runner

import (
	"testing"

	"weakorder/internal/litmus"
	"weakorder/internal/machine"
	"weakorder/internal/policy"
)

func TestRunnerReport(t *testing.T) {
	tc := litmus.Classic()[0] // SB
	rep, err := RunOn(tc.Prog, machine.Config{
		Policy: policy.Unconstrained, Topology: machine.TopoBus, Caches: true,
	}, Config{Seeds: 10, Forbidden: tc.Forbidden})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 10 {
		t.Fatalf("runs = %d", rep.Runs)
	}
	if rep.ForbiddenRuns == 0 || rep.NonSCRuns == 0 {
		t.Errorf("unconstrained bus SB must show forbidden outcomes: %+v", rep)
	}
	if rep.String() == "" {
		t.Error("empty report")
	}

	repSC, err := RunOn(tc.Prog, machine.Config{
		Policy: policy.SC, Topology: machine.TopoBus, Caches: true,
	}, Config{Seeds: 10, Forbidden: tc.Forbidden})
	if err != nil {
		t.Fatal(err)
	}
	if repSC.NonSCRuns != 0 || repSC.ForbiddenRuns != 0 {
		t.Errorf("SC machine must be clean: %+v", repSC)
	}
}
