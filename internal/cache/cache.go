package cache

import (
	"fmt"
	"slices"

	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/network"
	"weakorder/internal/sim"
)

// LineState is a cache's view of one line.
type LineState uint8

// Cache line states (MSI with a single dirty/exclusive state).
const (
	// LineInvalid: not present (lines are removed from the map instead).
	LineInvalid LineState = iota
	// LineShared: read-only copy; memory is up to date.
	LineShared
	// LineExclusive: sole, potentially dirty copy.
	LineExclusive
)

// String names the state.
func (s LineState) String() string {
	switch s {
	case LineInvalid:
		return "Invalid"
	case LineShared:
		return "Shared"
	case LineExclusive:
		return "Exclusive"
	default:
		return fmt.Sprintf("LineState(%d)", uint8(s))
	}
}

// Req is one processor-issued memory operation. The cache calls OnCommit
// when the operation commits (read value bound / local copy modified) and
// OnGlobal when it is globally performed (all invalidations acknowledged;
// for reads and writes with no other copies, this coincides with commit).
type Req struct {
	// Kind classifies the operation; all five mem.Kind values are legal.
	Kind mem.Kind
	// Addr is the accessed location (one line per location).
	Addr mem.Addr
	// Data is the value to write, for operations with a write component
	// (a TAS passes 1).
	Data mem.Value
	// OnCommit receives the read value (reads/RMW) or the written value.
	OnCommit func(v mem.Value)
	// OnGlobal fires when the operation is globally performed. Optional.
	OnGlobal func()
}

// Config parameterizes a cache.
type Config struct {
	// ID is the cache's network endpoint (equal to its processor id).
	ID int
	// Home maps an address to its directory's endpoint id.
	Home func(mem.Addr) int
	// HitLatency is the cycles from issue to commit on a hit (>= 1).
	HitLatency sim.Time
	// Capacity bounds the number of resident lines (0 = unbounded).
	// Victims are chosen FIFO, skipping reserved lines (the paper: a
	// reserved line is never flushed) — if every line is ineligible the
	// cache temporarily overflows and records it.
	Capacity int
	// UseReserve enables the Section 5.3 reserve-bit mechanism: a
	// synchronization operation that commits while the counter is
	// positive reserves its line, and forwarded requests for a reserved
	// line are deferred until the counter reads zero.
	UseReserve bool
	// ROSyncBypass enables the Section 6 refinement: read-only
	// synchronization operations (Test) are serviced like data reads — a
	// cached shared copy that subsequent spins hit locally — instead of
	// exclusive acquisitions, and they never set reserve bits. A reserved
	// line refuses the downgrade (the forward defers until the counter
	// reads zero), so reserved lines always remain exclusive and the
	// deadlock-freedom argument of Section 5.3 is unaffected.
	ROSyncBypass bool
	// ROSyncUncached (with ROSyncBypass) switches Tests to uncached
	// remote value reads (MsgSyncRead) answered even by reserved owners —
	// an ablation showing why the cached-shared variant is the right
	// reading of Section 6 under contention.
	ROSyncUncached bool
	// RetryTimeout arms the request-retry protocol: a request-class
	// message (GetS, GetX, SyncRead, PutX) unanswered after this many
	// cycles is re-sent with the same transaction id, with exponential
	// backoff between attempts. Zero disables retry. Required when the
	// interconnect may drop requests (fault injection); harmless
	// otherwise — a spurious retry of a request queued at a busy
	// directory line is absorbed by the directory's dedup.
	RetryTimeout sim.Time
	// RetryMax bounds resends per transaction (default 16 when
	// RetryTimeout > 0). An exhausted transaction stops retrying and is
	// reported via ExhaustedLines; if it was genuinely lost the machine's
	// watchdog turns that into a LivenessReport.
	RetryMax int
	// RetryBackoffCap caps the exponential backoff (default
	// 8*RetryTimeout).
	RetryBackoffCap sim.Time
	// OnRetry observes every resend: destination endpoint, the re-sent
	// message, and the attempt number (1-based). Used to interleave
	// RETRY events into fault timelines. Optional.
	OnRetry func(dst int, m network.Msg, attempt int)

	// Telemetry (optional; nil instruments record nothing and cost one
	// nil check — see internal/metrics). None of these alter protocol
	// behavior.

	// ReserveHold observes how long each reserve bit was held, in cycles,
	// at the moment the counter reads zero and clears it.
	ReserveHold *metrics.Histogram
	// DeferHold observes how long each reserve-deferred forward waited —
	// the per-request view of Stats.DeferredCycles.
	DeferHold *metrics.Histogram
	// RetryBackoff observes the backoff armed after each resend.
	RetryBackoff *metrics.Histogram
}

// Stats counts cache activity.
type Stats struct {
	Hits           uint64
	Misses         uint64
	Upgrades       uint64
	SyncRequests   uint64 // sync ops issued to the protocol (GetX sync / SyncRead)
	DeferredFwds   uint64 // forwarded requests deferred by a reserve bit
	DeferredCycles uint64 // total cycles forwarded requests spent deferred
	Evictions      uint64
	Writebacks     uint64
	Overflows      uint64 // fills admitted past capacity (no eligible victim)
	InvsReceived   uint64
	Retries        uint64 // timed-out requests re-sent
	RetryExhausted uint64 // transactions that hit RetryMax and gave up
}

type line struct {
	state      LineState
	val        mem.Value
	reserved   bool
	listIdx    int32    // position in Cache.lineList (swap-removed on delete)
	reservedAt sim.Time // cycle the reserve bit was set (telemetry only)
	// pendingLocal counts processor hits in flight (issued, commit
	// scheduled): forwarded requests must not transfer the line out from
	// under a local operation that has already won it.
	pendingLocal int
	// deferred holds forwarded requests stalled by the reserve bit or by
	// an in-flight local hit.
	deferred []deferredFwd
	insertAt uint64 // fill order for FIFO victimization
}

type deferredFwd struct {
	msg   network.Msg
	since sim.Time
}

type mshrSort uint8

const (
	fetchS mshrSort = iota
	fetchX
	fetchSyncRead
)

type mshr struct {
	addr     mem.Addr
	sort     mshrSort
	sync     bool   // the fetch is on behalf of a synchronization op
	dataMiss bool   // the fetch holds a counter unit (data read/write miss)
	listIdx  int32  // position in Cache.mshrList (swap-removed on retire)
	ops      []*Req // operations waiting on this line, in program order
	fwds     []deferredFwd
	retry    retryState
}

// retryState tracks one outstanding request-class message for the
// timeout/retry protocol. A zero deadline means retry is disarmed for
// this transaction.
type retryState struct {
	lastMsg   network.Msg // the request as sent, re-sent verbatim on timeout
	attempts  int         // resends so far
	deadline  sim.Time    // next timeout; 0 = disarmed
	exhausted bool        // RetryMax reached; no further resends
}

// wbTxn is an outstanding PutX writeback awaiting its WBAck.
type wbTxn struct {
	retry   retryState
	listIdx int32 // position in Cache.wbList (swap-removed on ack)
}

type ackState struct {
	counted bool     // holds one counter unit until MemAck
	waiters []func() // OnGlobal callbacks awaiting the MemAck
}

// debugTrace, when set by tests, observes every message delivery.
var debugTrace func(cacheID, src int, m network.Msg)

// lineChunk sizes the line-arena chunks (see newLine).
const lineChunk = 32

// hitTask is one pooled scheduled hit commit: the kernel callback
// closure is allocated once per task and reused, so steady-state hits
// schedule zero new closures.
type hitTask struct {
	c    *Cache
	l    *line
	r    *Req
	addr mem.Addr
	run  func()
}

func (t *hitTask) fire() {
	c, l, r, addr := t.c, t.l, t.r, t.addr
	t.l, t.r = nil, nil
	c.hitFree = append(c.hitFree, t)
	c.commitOnLine(l, r)
	l.pendingLocal--
	if l.pendingLocal == 0 {
		c.flushDeferred(addr, l)
	}
}

// Cache is one processor's cache plus the Section 5.3 counter and
// reserve-bit logic.
type Cache struct {
	k   *sim.Kernel
	net network.Network
	cfg Config

	// Per-address state lives in dense addr-indexed tables instead of
	// maps: program addresses are allocated densely from zero, so a slice
	// index replaces a map probe on every protocol event, and the tables
	// memclr on Reset instead of rehashing. All four tables (plus
	// inSweep) grow in lockstep via ensureAddr.
	//
	// lineTab holds the arena slot+1 of the resident line (0 = absent);
	// the others hold pooled objects directly. Compact unordered
	// address lists (lineList/mshrList/wbList, swap-removed via each
	// object's listIdx) give the iteration paths — victim scans, retry
	// ticks, diagnostics — work proportional to the active population,
	// not the address space.
	lineTab  []int32
	mshrTab  []*mshr
	ackTab   []*ackState
	wbTab    []*wbTxn // PutX issued, WBAck pending
	inSweep  []bool   // addr queued in sweepAddrs for the counter-zero sweep
	lineList []mem.Addr
	mshrList []mem.Addr
	wbList   []mem.Addr
	// sweepAddrs accumulates addresses that set a reserve bit or parked a
	// deferred forward; the counter-zero sweep sorts and walks these
	// instead of scanning every resident line.
	sweepAddrs []mem.Addr
	nAcks      int

	// nextReqID numbers request-class transactions for directory-side
	// deduplication; ids start at 1 (0 = "no dedup").
	nextReqID uint64
	// counter is the paper's per-processor counter: outstanding data
	// misses plus committed writes awaiting their memory (all-invalidated)
	// acknowledgement.
	counter int
	fillSeq uint64
	stats   Stats
	// onCounterZero hooks external waiters (processor eviction stalls).
	onCounterZero []func()

	// nReserved / nDeferred track how many lines hold a reserve bit and
	// how many forwards sit deferred, so the counter-zero sweep and
	// Busy() skip the line scan entirely in the common (empty) case.
	nReserved int
	nDeferred int

	// Line arena: lines are handed out from fixed-size chunks and the
	// whole arena rewinds on Reset, so a pooled cache's steady-state fill
	// path allocates nothing. Lines deleted mid-run are not recycled
	// (their number is bounded by the run's fills); pointer identity
	// stays deterministic because slots are issued in fill order.
	lineChunks [][]line
	lineN      int

	// Free lists (populated as objects retire, drained by allocation).
	mshrFree []*mshr
	ackFree  []*ackState
	wbFree   []*wbTxn
	hitFree  []*hitTask

	// Scratch buffers reused by the per-cycle/per-event sweeps.
	scratchAddrs []mem.Addr
	scratchWork  []deferredWork
}

// deferredWork is one collected deferred forward during a counter-zero
// sweep (collected first: servicing can mutate c.lines).
type deferredWork struct {
	addr  mem.Addr
	msg   network.Msg
	since sim.Time
}

// New constructs a cache attached to the network at cfg.ID.
func New(k *sim.Kernel, net network.Network, cfg Config) *Cache {
	if cfg.HitLatency == 0 {
		cfg.HitLatency = 1
	}
	if cfg.Home == nil {
		panic("cache: Config.Home is required")
	}
	c := &Cache{
		k:   k,
		net: net,
		cfg: cfg,
	}
	if c.cfg.RetryTimeout > 0 {
		if c.cfg.RetryMax == 0 {
			c.cfg.RetryMax = 16
		}
		if c.cfg.RetryBackoffCap == 0 {
			c.cfg.RetryBackoffCap = 8 * c.cfg.RetryTimeout
		}
	}
	net.Attach(cfg.ID, c.handle)
	return c
}

// Reset rewinds the cache to its post-construction state for a fresh run
// on the same wiring: all lines, transactions, counters, and statistics
// are cleared while the arena chunks, free lists, and map buckets are
// retained for reuse. The caller guarantees the kernel is drained (no
// hit commits in flight). Retry parameters may be re-tuned per run.
func (c *Cache) Reset(retryTimeout sim.Time, retryMax int) {
	clear(c.lineTab)
	c.lineList = c.lineList[:0]
	for _, a := range c.mshrList {
		c.releaseMSHR(c.mshrTab[a])
	}
	clear(c.mshrTab)
	c.mshrList = c.mshrList[:0]
	for i, a := range c.ackTab {
		if a != nil {
			c.releaseAck(a)
			c.ackTab[i] = nil
		}
	}
	c.nAcks = 0
	for _, a := range c.wbList {
		c.wbFree = append(c.wbFree, c.wbTab[a])
	}
	clear(c.wbTab)
	c.wbList = c.wbList[:0]
	clear(c.inSweep)
	c.sweepAddrs = c.sweepAddrs[:0]
	c.nextReqID = 0
	c.counter = 0
	c.fillSeq = 0
	c.stats = Stats{}
	c.onCounterZero = c.onCounterZero[:0]
	c.nReserved = 0
	c.nDeferred = 0
	c.lineN = 0
	c.cfg.RetryTimeout = retryTimeout
	c.cfg.RetryMax = retryMax
	c.cfg.RetryBackoffCap = 0
	if c.cfg.RetryTimeout > 0 {
		if c.cfg.RetryMax == 0 {
			c.cfg.RetryMax = 16
		}
		c.cfg.RetryBackoffCap = 8 * c.cfg.RetryTimeout
	}
}

// SetOnRetry replaces the retry observer (pooled machines rebuild their
// fault injector per run).
func (c *Cache) SetOnRetry(fn func(dst int, m network.Msg, attempt int)) {
	c.cfg.OnRetry = fn
}

// newLine hands out a zeroed line from the arena.
func (c *Cache) newLine() *line {
	ci, li := c.lineN/lineChunk, c.lineN%lineChunk
	if ci == len(c.lineChunks) {
		c.lineChunks = append(c.lineChunks, make([]line, lineChunk))
	}
	c.lineN++
	l := &c.lineChunks[ci][li]
	*l = line{deferred: l.deferred[:0]}
	return l
}

// newMSHR hands out a cleared MSHR from the free list.
func (c *Cache) newMSHR(addr mem.Addr) *mshr {
	var m *mshr
	if n := len(c.mshrFree); n > 0 {
		m = c.mshrFree[n-1]
		c.mshrFree = c.mshrFree[:n-1]
		*m = mshr{addr: addr, ops: m.ops[:0], fwds: m.fwds[:0]}
	} else {
		m = &mshr{addr: addr}
	}
	return m
}

// releaseMSHR returns a retired MSHR to the free list. Callers must be
// done iterating its ops/fwds slices: the next newMSHR reuses them.
func (c *Cache) releaseMSHR(m *mshr) {
	for i := range m.ops {
		m.ops[i] = nil
	}
	c.mshrFree = append(c.mshrFree, m)
}

// newAck hands out a cleared ackState from the free list.
func (c *Cache) newAck() *ackState {
	var a *ackState
	if n := len(c.ackFree); n > 0 {
		a = c.ackFree[n-1]
		c.ackFree = c.ackFree[:n-1]
		a.counted = false
		a.waiters = a.waiters[:0]
	} else {
		a = &ackState{}
	}
	return a
}

// releaseAck returns a retired ackState to the free list.
func (c *Cache) releaseAck(a *ackState) {
	for i := range a.waiters {
		a.waiters[i] = nil
	}
	c.ackFree = append(c.ackFree, a)
}

// ---------------------------------------------------------------------------
// Dense per-address tables. Lookups are slice indexes; the active-list
// append/swap-remove pairs keep iteration proportional to live state.

// ensureAddr grows every dense table to cover addr (they stay the same
// length so one check covers all).
func (c *Cache) ensureAddr(a mem.Addr) {
	for int(a) >= len(c.lineTab) {
		c.lineTab = append(c.lineTab, 0)
		c.mshrTab = append(c.mshrTab, nil)
		c.ackTab = append(c.ackTab, nil)
		c.wbTab = append(c.wbTab, nil)
		c.inSweep = append(c.inSweep, false)
	}
}

// lineAt returns the resident line for a, or nil.
func (c *Cache) lineAt(a mem.Addr) *line {
	if int(a) >= len(c.lineTab) {
		return nil
	}
	idx := c.lineTab[a]
	if idx == 0 {
		return nil
	}
	i := int(idx - 1)
	return &c.lineChunks[i/lineChunk][i%lineChunk]
}

// installLine registers the line just handed out by newLine (arena slot
// lineN-1) as resident at a.
func (c *Cache) installLine(a mem.Addr, l *line) {
	c.ensureAddr(a)
	c.lineTab[a] = int32(c.lineN) // slot+1; newLine already advanced lineN
	l.listIdx = int32(len(c.lineList))
	c.lineList = append(c.lineList, a)
}

// removeLine makes a non-resident. The arena slot is not recycled
// mid-run (bounded by the run's fills), matching the map-based design.
func (c *Cache) removeLine(a mem.Addr, l *line) {
	last := len(c.lineList) - 1
	if i := int(l.listIdx); i != last {
		moved := c.lineList[last]
		c.lineList[i] = moved
		c.lineAt(moved).listIdx = int32(i)
	}
	c.lineList = c.lineList[:last]
	c.lineTab[a] = 0
}

// mshrAt returns the in-flight transaction for a, or nil.
func (c *Cache) mshrAt(a mem.Addr) *mshr {
	if int(a) >= len(c.mshrTab) {
		return nil
	}
	return c.mshrTab[a]
}

// installMSHR registers m as a's in-flight transaction.
func (c *Cache) installMSHR(a mem.Addr, m *mshr) {
	c.ensureAddr(a)
	c.mshrTab[a] = m
	m.listIdx = int32(len(c.mshrList))
	c.mshrList = append(c.mshrList, a)
}

// removeMSHR retires m without releasing it (callers may still be
// walking its slices; see drainMSHR).
func (c *Cache) removeMSHR(m *mshr) {
	last := len(c.mshrList) - 1
	if i := int(m.listIdx); i != last {
		moved := c.mshrList[last]
		c.mshrList[i] = moved
		c.mshrTab[moved].listIdx = int32(i)
	}
	c.mshrList = c.mshrList[:last]
	c.mshrTab[m.addr] = nil
}

// ackAt returns a's pending ack collection, or nil.
func (c *Cache) ackAt(a mem.Addr) *ackState {
	if int(a) >= len(c.ackTab) {
		return nil
	}
	return c.ackTab[a]
}

// newWb hands out a cleared writeback transaction from the free list.
func (c *Cache) newWb() *wbTxn {
	var w *wbTxn
	if n := len(c.wbFree); n > 0 {
		w = c.wbFree[n-1]
		c.wbFree = c.wbFree[:n-1]
		*w = wbTxn{}
	} else {
		w = &wbTxn{}
	}
	return w
}

// installWb registers a's outstanding writeback.
func (c *Cache) installWb(a mem.Addr, w *wbTxn) {
	c.ensureAddr(a)
	c.wbTab[a] = w
	w.listIdx = int32(len(c.wbList))
	c.wbList = append(c.wbList, a)
}

// removeWb completes a's writeback (no-op when none is outstanding,
// matching the old map delete).
func (c *Cache) removeWb(a mem.Addr) {
	if int(a) >= len(c.wbTab) || c.wbTab[a] == nil {
		return
	}
	w := c.wbTab[a]
	last := len(c.wbList) - 1
	if i := int(w.listIdx); i != last {
		moved := c.wbList[last]
		c.wbList[i] = moved
		c.wbTab[moved].listIdx = int32(i)
	}
	c.wbList = c.wbList[:last]
	c.wbTab[a] = nil
	c.wbFree = append(c.wbFree, w)
}

// markSweep queues a for the next counter-zero sweep (the line set a
// reserve bit or parked a deferred forward). The line is resident, so
// the tables already cover a.
func (c *Cache) markSweep(a mem.Addr) {
	if !c.inSweep[a] {
		c.inSweep[a] = true
		c.sweepAddrs = append(c.sweepAddrs, a)
	}
}

// Counter returns the paper's outstanding-access counter.
func (c *Cache) Counter() int { return c.counter }

// Busy reports whether any transaction, deferred forward, or pending
// acknowledgement is outstanding (used for drain detection).
func (c *Cache) Busy() bool {
	return len(c.mshrList) > 0 || c.nAcks > 0 || len(c.wbList) > 0 || c.nDeferred > 0
}

// Stats returns cache statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Snoop returns the cache's value for addr and whether it holds the line
// exclusively (dirty); used for final-state extraction.
func (c *Cache) Snoop(addr mem.Addr) (mem.Value, bool) {
	if l := c.lineAt(addr); l != nil && l.state == LineExclusive {
		return l.val, true
	}
	return 0, false
}

// LineInfo exposes a line's state and reserve bit for tests/invariants.
func (c *Cache) LineInfo(addr mem.Addr) (LineState, bool) {
	if l := c.lineAt(addr); l != nil {
		return l.state, l.reserved
	}
	return LineInvalid, false
}

// ReservedLines returns the addresses currently reserved (for tests).
func (c *Cache) ReservedLines() []mem.Addr {
	var out []mem.Addr
	for _, a := range c.lineList {
		if c.lineAt(a).reserved {
			out = append(out, a)
		}
	}
	slices.Sort(out)
	return out
}

// WhenCounterZero registers fn to run the next time the counter reads
// zero; if it is already zero, fn runs immediately.
func (c *Cache) WhenCounterZero(fn func()) {
	if c.counter == 0 {
		fn()
		return
	}
	c.onCounterZero = append(c.onCounterZero, fn)
}

// Issue starts a memory operation. Operations to the same line are
// serviced in issue order.
func (c *Cache) Issue(r *Req) {
	if m := c.mshrAt(r.Addr); m != nil {
		m.ops = append(m.ops, r)
		return
	}
	l := c.lineAt(r.Addr)
	if l != nil && c.satisfiable(l, r) {
		c.stats.Hits++
		l.pendingLocal++
		var t *hitTask
		if n := len(c.hitFree); n > 0 {
			t = c.hitFree[n-1]
			c.hitFree = c.hitFree[:n-1]
		} else {
			t = &hitTask{c: c}
			t.run = t.fire
		}
		t.l, t.r, t.addr = l, r, r.Addr
		c.k.After(c.cfg.HitLatency, t.run)
		return
	}
	c.startMiss(r, l != nil)
}

// satisfiable reports whether r can complete against the resident line.
func (c *Cache) satisfiable(l *line, r *Req) bool {
	if c.isROSyncRead(r) || r.Kind == mem.Read {
		return true // any resident state serves a read
	}
	return l.state == LineExclusive
}

// isROSyncRead reports whether r takes the Section 6 uncached
// read-only-synchronization path.
func (c *Cache) isROSyncRead(r *Req) bool {
	return r.Kind == mem.SyncRead && c.cfg.ROSyncBypass
}

// takeReqID returns a fresh transaction id (ids start at 1; 0 means "no
// dedup" for hand-assembled test messages).
func (c *Cache) takeReqID() uint64 {
	c.nextReqID++
	return c.nextReqID
}

// sendReq transmits a request-class message and arms its retry state.
func (c *Cache) sendReq(rs *retryState, dst int, m network.Msg) {
	rs.lastMsg = m
	rs.attempts = 0
	rs.exhausted = false
	rs.deadline = 0
	if c.cfg.RetryTimeout > 0 {
		rs.deadline = c.k.Now() + c.cfg.RetryTimeout
	}
	c.net.Send(c.cfg.ID, dst, m)
}

// startMiss allocates an MSHR and sends the appropriate request.
func (c *Cache) startMiss(r *Req, present bool) {
	c.stats.Misses++
	m := c.newMSHR(r.Addr)
	m.ops = append(m.ops, r)
	c.installMSHR(r.Addr, m)
	home := c.cfg.Home(r.Addr)
	switch {
	case c.isROSyncRead(r) && c.cfg.ROSyncUncached:
		m.sort = fetchSyncRead
		c.stats.SyncRequests++
		c.sendReq(&m.retry, home, SyncRead(r.Addr, c.takeReqID()))
	case c.isROSyncRead(r):
		// Cached-shared Test: protocol-wise a data read, but it does NOT
		// hold a counter unit. A Test can defer on another processor's
		// reserve bit, so counting it would let two processors' reserves
		// wait on each other's spinning Tests — a deadlock the paper's
		// counter (which tracks only unconditionally completing accesses)
		// never creates. The issuing processor is stalled on the Test
		// anyway, so no later synchronization can commit before it.
		m.sort = fetchS
		c.stats.SyncRequests++
		c.sendReq(&m.retry, home, GetS(r.Addr, c.takeReqID()))
	case r.Kind == mem.Read:
		m.sort = fetchS
		m.dataMiss = true
		c.counter++
		c.sendReq(&m.retry, home, GetS(r.Addr, c.takeReqID()))
	default:
		// Writes, RMWs and (non-bypass) synchronization operations all
		// need the line exclusive; synchronization operations are flagged
		// so owners can apply reserve-bit deferral.
		m.sort = fetchX
		m.sync = r.Kind.IsSync()
		if present {
			c.stats.Upgrades++
		}
		if m.sync {
			c.stats.SyncRequests++
		} else {
			m.dataMiss = true
			c.counter++
		}
		c.sendReq(&m.retry, home, GetX(r.Addr, m.sync, c.takeReqID()))
	}
}

// commitOnLine performs r against the resident line and fires callbacks.
func (c *Cache) commitOnLine(l *line, r *Req) {
	var got mem.Value
	switch r.Kind {
	case mem.Read, mem.SyncRead:
		got = l.val
	case mem.Write, mem.SyncWrite:
		l.val = r.Data
		got = r.Data
	case mem.SyncRMW:
		got = l.val
		l.val = r.Data
	}
	// A committing synchronization operation reserves the line when
	// previous accesses (or its own invalidations) are still outstanding.
	// Under the Section 6 refinement, read-only synchronization operations
	// take the uncached-bypass path and never reserve.
	if r.Kind.IsSync() && !c.isROSyncRead(r) && c.cfg.UseReserve && c.counter > 0 {
		if !l.reserved {
			l.reservedAt = c.k.Now()
			c.nReserved++
			c.markSweep(r.Addr)
		}
		l.reserved = true
	}
	if r.OnCommit != nil {
		r.OnCommit(got)
	}
	if r.OnGlobal != nil {
		if ack := c.ackAt(r.Addr); ack != nil && r.Kind.WritesMemory() {
			ack.waiters = append(ack.waiters, r.OnGlobal)
		} else {
			r.OnGlobal()
		}
	}
}

// handle dispatches an incoming protocol message.
func (c *Cache) handle(src int, m network.Msg) {
	if debugTrace != nil {
		debugTrace(c.cfg.ID, src, m)
	}
	switch m.Kind {
	case MsgData, MsgOwnerData:
		c.fill(m.Addr, m.Value, LineShared, false)
	case MsgDataEx:
		c.fill(m.Addr, m.Value, LineExclusive, flag(m, FlagAcksPending))
	case MsgOwnerDataEx:
		c.fill(m.Addr, m.Value, LineExclusive, false)
	case MsgSyncReadReply:
		c.syncReadReply(m)
	case MsgMemAck:
		c.memAck(m.Addr)
	case MsgInv:
		c.invalidate(m.Addr)
	case MsgWBAck:
		c.removeWb(m.Addr)
	case MsgFwdGetS, MsgFwdGetX, MsgFwdSyncRead:
		c.forward(m)
	default:
		panic(fmt.Sprintf("cache %d: unexpected message %s from %d", c.cfg.ID, MsgName(m), src))
	}
}

// fill installs a line and drains the MSHR.
func (c *Cache) fill(addr mem.Addr, val mem.Value, st LineState, acksPending bool) {
	m := c.mshrAt(addr)
	if m == nil {
		panic(fmt.Sprintf("cache %d: fill for %d without MSHR", c.cfg.ID, addr))
	}
	if m.dataMiss {
		// Data read misses and exclusive-transfer write misses complete
		// the counter unit now; a write whose invalidations are pending
		// keeps its unit until the MemAck (the paper's decrement rules).
		if !acksPending {
			c.decCounter()
		}
		m.dataMiss = false
	} else if m.sync && acksPending {
		// A committed synchronization write awaiting invalidation acks
		// counts as an outstanding access until globally performed.
		c.counter++
	}
	if acksPending {
		if c.ackAt(addr) != nil {
			panic(fmt.Sprintf("cache %d: overlapping ack transactions for %d", c.cfg.ID, addr))
		}
		ack := c.newAck()
		ack.counted = true
		c.ensureAddr(addr)
		c.ackTab[addr] = ack
		c.nAcks++
	}
	c.makeRoom()
	if old := c.lineAt(addr); old != nil {
		// Upgrade fill: the stale shared copy is replaced outright (the
		// map-based design overwrote the entry).
		c.removeLine(addr, old)
	}
	l := c.newLine()
	l.state, l.val, l.insertAt = st, val, c.fillSeq
	c.fillSeq++
	c.installLine(addr, l)
	c.drainMSHR(m, l)
}

// drainMSHR commits queued operations in order against the filled line;
// an operation needing more rights than the line grants re-issues an
// upgrade and leaves the rest queued. When all operations complete the
// MSHR retires and deferred forwards are serviced.
func (c *Cache) drainMSHR(m *mshr, l *line) {
	for len(m.ops) > 0 {
		r := m.ops[0]
		if !c.satisfiable(l, r) {
			// Upgrade: reuse the MSHR for a GetX on the same line.
			m.sort = fetchX
			m.sync = r.Kind.IsSync()
			c.stats.Upgrades++
			if m.sync {
				c.stats.SyncRequests++
			} else {
				m.dataMiss = true
				c.counter++
			}
			// A fresh transaction id: the fill answering the original
			// request already consumed the old one at the directory.
			c.sendReq(&m.retry, c.cfg.Home(m.addr), GetX(m.addr, m.sync, c.takeReqID()))
			return
		}
		m.ops = m.ops[1:]
		c.commitOnLine(l, r)
	}
	fwds := m.fwds
	c.removeMSHR(m)
	for i := range fwds {
		c.forward(fwds[i].msg)
	}
	// Release only now: forward() may start new transactions that draw
	// fresh MSHRs from the free list while fwds is still being walked.
	c.releaseMSHR(m)
}

// syncReadReply completes an uncached read-only synchronization read.
func (c *Cache) syncReadReply(msg network.Msg) {
	m := c.mshrAt(msg.Addr)
	if m == nil || m.sort != fetchSyncRead {
		panic(fmt.Sprintf("cache %d: stray SyncReadReply for %d", c.cfg.ID, msg.Addr))
	}
	r := m.ops[0]
	m.ops = m.ops[1:]
	if r.OnCommit != nil {
		r.OnCommit(msg.Value)
	}
	if r.OnGlobal != nil {
		r.OnGlobal()
	}
	rest := m.ops
	fwds := m.fwds
	c.removeMSHR(m)
	// Remaining queued operations re-enter the issue path (they may hit a
	// resident line or start a fresh transaction).
	for _, q := range rest {
		c.Issue(q)
	}
	for i := range fwds {
		c.forward(fwds[i].msg)
	}
	// As in drainMSHR: release only after the loops, because Issue and
	// forward may draw fresh MSHRs whose slices would alias rest/fwds.
	c.releaseMSHR(m)
}

// memAck completes a write's global performance.
func (c *Cache) memAck(addr mem.Addr) {
	ack := c.ackAt(addr)
	if ack == nil {
		panic(fmt.Sprintf("cache %d: stray MemAck for %d", c.cfg.ID, addr))
	}
	c.ackTab[addr] = nil
	c.nAcks--
	if ack.counted {
		c.decCounter()
	}
	for _, fn := range ack.waiters {
		fn()
	}
	c.releaseAck(ack)
}

// invalidate services an incoming invalidation and acknowledges to the
// directory. Reserved lines are exclusive and are never invalidated, so
// no deferral is needed here.
func (c *Cache) invalidate(addr mem.Addr) {
	c.stats.InvsReceived++
	if l := c.lineAt(addr); l != nil {
		if l.state == LineExclusive {
			panic(fmt.Sprintf("cache %d: invalidation for exclusive line %d", c.cfg.ID, addr))
		}
		c.removeLine(addr, l)
	}
	c.net.Send(c.cfg.ID, c.cfg.Home(addr), InvAck(addr))
}

// forward services (or defers) a request forwarded by the directory.
func (c *Cache) forward(m network.Msg) {
	addr := m.Addr
	l := c.lineAt(addr)
	if l == nil {
		if int(addr) < len(c.wbTab) && c.wbTab[addr] != nil {
			// Our writeback crossed this forward: it was addressed to us
			// as the *old* owner, and the directory resolves the blocked
			// request from the PutX data. This check must precede the
			// MSHR check — we may already be re-requesting the same line
			// (a new transaction queued at the directory behind the
			// resolution), and stashing the stale forward there would
			// transfer the line to a requester that is no longer waiting.
			// Channel ordering guarantees the WBAck arrives before any
			// forward aimed at our new ownership, so wbWait here always
			// means the forward is stale.
			return
		}
		if mshr := c.mshrAt(addr); mshr != nil {
			// The directory granted us ownership but the line is still in
			// flight: service after the fill.
			mshr.fwds = append(mshr.fwds, deferredFwd{msg: m, since: c.k.Now()})
			return
		}
		panic(fmt.Sprintf("cache %d: forward %s for absent line %d", c.cfg.ID, MsgName(m), addr))
	}
	if l.state != LineExclusive {
		panic(fmt.Sprintf("cache %d: forward %s for %v line %d", c.cfg.ID, MsgName(m), l.state, addr))
	}

	// Read-only synchronization reads are answered even when reserved
	// (Section 6: they need not stall other processors).
	if m.Kind == MsgFwdSyncRead {
		c.net.Send(c.cfg.ID, int(m.Peer), SyncReadReply(addr, l.val))
		c.net.Send(c.cfg.ID, c.cfg.Home(addr), SyncReadDone(addr))
		return
	}
	if l.pendingLocal > 0 || (l.reserved && c.counter > 0) {
		if l.reserved && c.counter > 0 {
			c.stats.DeferredFwds++
		}
		l.deferred = append(l.deferred, deferredFwd{msg: m, since: c.k.Now()})
		c.nDeferred++
		c.markSweep(addr)
		return
	}
	c.serviceForward(addr, l, m)
}

// serviceForward transfers or downgrades the line.
func (c *Cache) serviceForward(addr mem.Addr, l *line, m network.Msg) {
	switch m.Kind {
	case MsgFwdGetS:
		l.state = LineShared
		if l.reserved {
			l.reserved = false
			c.nReserved--
		}
		c.net.Send(c.cfg.ID, int(m.Peer), OwnerData(addr, l.val))
		c.net.Send(c.cfg.ID, c.cfg.Home(addr), XferDoneShared(addr, l.val))
	case MsgFwdGetX:
		val := l.val
		if l.reserved {
			l.reserved = false
			c.nReserved--
		}
		c.removeLine(addr, l)
		c.net.Send(c.cfg.ID, int(m.Peer), OwnerDataEx(addr, val))
		c.net.Send(c.cfg.ID, c.cfg.Home(addr), XferDoneOwner(addr, int(m.Peer)))
	default:
		panic(fmt.Sprintf("cache %d: serviceForward %s", c.cfg.ID, MsgName(m)))
	}
}

// decCounter decrements the counter; on reaching zero it clears every
// reserve bit and services all deferred forwards (the paper: "all reserve
// bits are reset when the counter reads zero").
func (c *Cache) decCounter() {
	if c.counter <= 0 {
		panic(fmt.Sprintf("cache %d: counter underflow", c.cfg.ID))
	}
	c.counter--
	if c.counter > 0 {
		return
	}
	for _, fn := range c.onCounterZero {
		fn()
	}
	c.onCounterZero = c.onCounterZero[:0]
	if c.nReserved == 0 && c.nDeferred == 0 {
		return
	}
	// Collect deferred work first: servicing can mutate the line table.
	// Only lines that ever set a reserve bit or deferred a forward since
	// the last sweep are on the sweep list (markSweep); every other line
	// would contribute nothing to the scan, so the sorted sweep list
	// visits exactly the same lines, in the same order, as a full scan.
	work := c.scratchWork[:0]
	addrs := append(c.scratchAddrs[:0], c.sweepAddrs...)
	for _, a := range c.sweepAddrs {
		c.inSweep[a] = false
	}
	c.sweepAddrs = c.sweepAddrs[:0]
	slices.Sort(addrs)
	for _, a := range addrs {
		l := c.lineAt(a)
		if l == nil {
			continue
		}
		if l.reserved {
			l.reserved = false
			c.nReserved--
			c.cfg.ReserveHold.Observe(uint64(c.k.Now() - l.reservedAt))
		}
		for _, f := range l.deferred {
			work = append(work, deferredWork{addr: a, msg: f.msg, since: f.since})
		}
		c.nDeferred -= len(l.deferred)
		l.deferred = l.deferred[:0]
	}
	c.scratchWork, c.scratchAddrs = work, addrs
	for _, w := range work {
		c.stats.DeferredCycles += uint64(c.k.Now() - w.since)
		c.cfg.DeferHold.Observe(uint64(c.k.Now() - w.since))
		// Re-enter the forward path: the line may have changed state.
		c.forward(w.msg)
	}
}

// flushDeferred re-drives forwards deferred by an in-flight local hit
// once the line has no pending local operations. Entries blocked by a
// reserve bit simply re-defer.
func (c *Cache) flushDeferred(addr mem.Addr, l *line) {
	if c.lineAt(addr) != l || len(l.deferred) == 0 {
		return
	}
	work := c.scratchWork[:0]
	for _, f := range l.deferred {
		work = append(work, deferredWork{addr: addr, msg: f.msg, since: f.since})
	}
	c.nDeferred -= len(l.deferred)
	l.deferred = l.deferred[:0]
	c.scratchWork = work
	for _, f := range work {
		c.forward(f.msg)
	}
}

// CheckTimeouts drives the retry protocol; the machine polls it once
// per cycle (polling keeps the kernel's event queue free of timers,
// preserving Pending()==0 as part of termination detection). Timed-out
// requests are re-sent verbatim — same transaction id, so the directory
// absorbs the duplicate if the original survived — with exponential
// backoff between attempts. A transaction that hits RetryMax stops
// retrying (ExhaustedLines reports it; if the request was genuinely
// lost the machine's watchdog escalates to a LivenessReport). Iteration
// is in address order for determinism.
func (c *Cache) CheckTimeouts(now sim.Time) {
	if c.cfg.RetryTimeout == 0 || (len(c.mshrList) == 0 && len(c.wbList) == 0) {
		return
	}
	addrs := append(c.scratchAddrs[:0], c.mshrList...)
	slices.Sort(addrs)
	for _, a := range addrs {
		c.retryTick(now, c.cfg.Home(a), &c.mshrTab[a].retry)
	}
	addrs = append(addrs[:0], c.wbList...)
	slices.Sort(addrs)
	for _, a := range addrs {
		c.retryTick(now, c.cfg.Home(a), &c.wbTab[a].retry)
	}
	c.scratchAddrs = addrs
}

// retryTick re-sends one transaction if its deadline passed.
func (c *Cache) retryTick(now sim.Time, dst int, rs *retryState) {
	if rs.deadline == 0 || rs.exhausted || now < rs.deadline {
		return
	}
	rs.attempts++
	if rs.attempts > c.cfg.RetryMax {
		rs.exhausted = true
		c.stats.RetryExhausted++
		return
	}
	c.stats.Retries++
	if c.cfg.OnRetry != nil {
		c.cfg.OnRetry(dst, rs.lastMsg, rs.attempts)
	}
	c.net.Send(c.cfg.ID, dst, rs.lastMsg)
	timeout := c.cfg.RetryTimeout << uint(rs.attempts)
	if timeout > c.cfg.RetryBackoffCap {
		timeout = c.cfg.RetryBackoffCap
	}
	c.cfg.RetryBackoff.Observe(uint64(timeout))
	rs.deadline = now + timeout
}

// NextRetryDeadline returns the earliest armed retry deadline across
// in-flight transactions and writebacks; ok is false when retry is off
// or nothing is armed. The machine's idle-cycle fast-forward must not
// skip past this cycle: CheckTimeouts is polled, not event-scheduled,
// so a skipped deadline would silently delay the resend.
func (c *Cache) NextRetryDeadline() (t sim.Time, ok bool) {
	if c.cfg.RetryTimeout == 0 {
		return 0, false
	}
	consider := func(rs *retryState) {
		if rs.deadline != 0 && !rs.exhausted && (!ok || rs.deadline < t) {
			t, ok = rs.deadline, true
		}
	}
	for _, a := range c.mshrList {
		consider(&c.mshrTab[a].retry)
	}
	for _, a := range c.wbList {
		consider(&c.wbTab[a].retry)
	}
	return t, ok
}

// PendingLines returns the addresses with in-flight transactions
// (MSHRs), sorted — liveness diagnostics.
func (c *Cache) PendingLines() []mem.Addr {
	out := append(make([]mem.Addr, 0, len(c.mshrList)), c.mshrList...)
	slices.Sort(out)
	return out
}

// WritebackLines returns the addresses with outstanding PutX
// writebacks, sorted — liveness diagnostics.
func (c *Cache) WritebackLines() []mem.Addr {
	out := append(make([]mem.Addr, 0, len(c.wbList)), c.wbList...)
	slices.Sort(out)
	return out
}

// ExhaustedLines returns the addresses whose transactions hit RetryMax
// and stopped retrying, sorted.
func (c *Cache) ExhaustedLines() []mem.Addr {
	var out []mem.Addr
	for _, a := range c.mshrList {
		if c.mshrTab[a].retry.exhausted {
			out = append(out, a)
		}
	}
	for _, a := range c.wbList {
		if c.wbTab[a].retry.exhausted {
			out = append(out, a)
		}
	}
	slices.Sort(out)
	return out
}

// makeRoom evicts a victim if the cache is at capacity. Reserved lines
// and lines with deferred forwards are never victimized (the paper: a
// reserved line is never flushed); if no line is eligible the cache
// overflows temporarily.
func (c *Cache) makeRoom() {
	if c.cfg.Capacity <= 0 || len(c.lineList) < c.cfg.Capacity {
		return
	}
	var victim mem.Addr
	var vl *line
	for _, a := range c.lineList {
		l := c.lineAt(a)
		if l.reserved || len(l.deferred) > 0 || l.pendingLocal > 0 {
			continue
		}
		if c.ackAt(a) != nil {
			// The directory transaction for this line is still collecting
			// invalidation acks; writing it back now would race that
			// transaction.
			continue
		}
		if vl == nil || l.insertAt < vl.insertAt {
			victim, vl = a, l
		}
	}
	if vl == nil {
		c.stats.Overflows++
		return
	}
	c.stats.Evictions++
	if vl.state == LineExclusive {
		c.stats.Writebacks++
		w := c.newWb()
		c.installWb(victim, w)
		c.sendReq(&w.retry, c.cfg.Home(victim), PutX(victim, vl.val, c.takeReqID()))
	}
	c.removeLine(victim, vl)
}
