package cache

import (
	"testing"

	"weakorder/internal/mem"
)

// The writeback/forward crossing race: the directory forwards a request
// to the owner while the owner's eviction writeback is already in
// flight. The owner drops the forward; the directory resolves the
// blocked request from the PutX data. These tests construct the race
// deterministically from the rig's fixed latencies (net 2, directory 1):
// the victim's eviction lands at cycle ~5 while the second requester's
// forward reaches the old owner at cycle ~6.

// crossSetup gives P0 a dirty line A plus a second line B in a
// 2-line cache, then issues P0's write to C (whose fill will evict A) at
// t=0 and the competing request for A at t=1.
func crossSetup(t *testing.T, cfgFn func(*Config)) (*rig, mem.Addr) {
	t.Helper()
	r := newRig(t, 2, func(cfg *Config) {
		cfg.Capacity = 2
		if cfgFn != nil {
			cfgFn(cfg)
		}
	})
	const lineA = mem.Addr(10)
	r.doOp(t, 0, mem.Write, lineA, 5) // dirty, oldest
	r.doOp(t, 0, mem.Write, 11, 6)    // fills the cache
	// P0's miss on C will evict A when the fill arrives (~cycle 5).
	r.caches[0].Issue(&Req{Kind: mem.Write, Addr: 12, Data: 7})
	return r, lineA
}

func TestWritebackCrossesFwdGetX(t *testing.T) {
	r, lineA := crossSetup(t, nil)
	r.k.Tick() // t=1: the competing request departs after the eviction trigger
	var got mem.Value
	done := false
	r.caches[1].Issue(&Req{Kind: mem.Write, Addr: lineA, Data: 9,
		OnCommit: func(v mem.Value) { got = v; done = true }})
	r.settle(t)
	if !done || got != 9 {
		t.Fatalf("crossing write done=%v got=%d", done, got)
	}
	if st, owner, _ := r.dir.State(lineA); st != DirExclusive || owner != 1 {
		t.Errorf("dir state %v owner %d, want Exclusive/1", st, owner)
	}
	// The writeback's data survived into the new owner's view: P1 read
	// would have seen 5 before overwriting; verify via memory after P1
	// also evicts... simpler: snoop P1.
	if v, dirty := r.caches[1].Snoop(lineA); !dirty || v != 9 {
		t.Errorf("new owner snoop %d/%v", v, dirty)
	}
}

func TestWritebackCrossesFwdGetS(t *testing.T) {
	r, lineA := crossSetup(t, nil)
	r.k.Tick()
	var got mem.Value
	done := false
	r.caches[1].Issue(&Req{Kind: mem.Read, Addr: lineA,
		OnCommit: func(v mem.Value) { got = v; done = true }})
	r.settle(t)
	if !done || got != 5 {
		t.Fatalf("crossing read done=%v got=%d, want 5 (the written-back value)", done, got)
	}
	if st, _, sharers := r.dir.State(lineA); st != DirShared || len(sharers) != 1 {
		t.Errorf("dir state %v sharers %v, want Shared/[1]", st, sharers)
	}
}

func TestWritebackCrossesFwdSyncRead(t *testing.T) {
	r, lineA := crossSetup(t, func(cfg *Config) {
		cfg.ROSyncBypass = true
		cfg.ROSyncUncached = true
	})
	r.k.Tick()
	var got mem.Value
	done := false
	r.caches[1].Issue(&Req{Kind: mem.SyncRead, Addr: lineA,
		OnCommit: func(v mem.Value) { got = v; done = true }})
	r.settle(t)
	if !done || got != 5 {
		t.Fatalf("crossing sync read done=%v got=%d, want 5", done, got)
	}
	if st, _, _ := r.dir.State(lineA); st != DirUncached {
		t.Errorf("dir state %v, want Uncached after writeback resolution", st)
	}
}

func TestDirectoryQueuesConcurrentExclusiveRequests(t *testing.T) {
	r := newRig(t, 4, nil)
	r.dir.SetInit(3, 0)
	// All four caches request exclusive simultaneously: the directory
	// serializes them through its per-line queue and ownership chains
	// through forwards.
	order := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		i := i
		r.caches[i].Issue(&Req{Kind: mem.SyncRMW, Addr: 3, Data: mem.Value(i + 1),
			OnCommit: func(v mem.Value) { order = append(order, i) }})
	}
	r.settle(t)
	if len(order) != 4 {
		t.Fatalf("only %d of 4 RMWs committed", len(order))
	}
	if r.dir.Stats().QueuedMax == 0 {
		t.Error("expected requests to queue at the blocked line")
	}
	if !r.dir.Idle() {
		t.Error("directory must drain")
	}
	// Exactly one RMW observed the initial 0, and the final value is the
	// last committer's.
	if v := finalValue(r, 3); v < 1 || v > 4 {
		t.Errorf("final value %d", v)
	}
}

func finalValue(r *rig, a mem.Addr) mem.Value {
	for _, c := range r.caches {
		if v, dirty := c.Snoop(a); dirty {
			return v
		}
	}
	return r.dir.MemValue(a)
}

func TestWhenCounterZero(t *testing.T) {
	r := newRig(t, 1, nil)
	c := r.caches[0]
	ran := false
	c.WhenCounterZero(func() { ran = true })
	if !ran {
		t.Fatal("counter already zero: callback must run immediately")
	}
	ran = false
	c.Issue(&Req{Kind: mem.Read, Addr: 1})
	c.WhenCounterZero(func() { ran = true })
	if ran {
		t.Fatal("callback must wait for the outstanding miss")
	}
	r.settle(t)
	if !ran {
		t.Fatal("callback must fire when the counter drains")
	}
}

func TestPendingLinesDiagnostics(t *testing.T) {
	r := newRig(t, 2, UseReserveCfg)
	if lines := r.dir.PendingLines(); len(lines) != 0 {
		t.Fatalf("fresh directory pending %v", lines)
	}
	r.doOp(t, 0, mem.Write, 1, 1)
	// Block the line: P1 requests while P0 owns; inspect before settling.
	r.caches[1].Issue(&Req{Kind: mem.Write, Addr: 1, Data: 2})
	for i := 0; i < 4; i++ {
		r.k.Tick()
	}
	if lines := r.dir.PendingLines(); len(lines) != 1 || lines[0] != 1 {
		t.Errorf("pending lines %v, want [1]", lines)
	}
	r.settle(t)
}

func TestSnoopNonResident(t *testing.T) {
	r := newRig(t, 1, nil)
	if v, dirty := r.caches[0].Snoop(99); dirty || v != 0 {
		t.Errorf("snoop of absent line = %d/%v", v, dirty)
	}
	r.dir.SetInit(4, 8)
	r.doOp(t, 0, mem.Read, 4, 0)
	if _, dirty := r.caches[0].Snoop(4); dirty {
		t.Error("shared line must not snoop dirty")
	}
}

func TestMemValueUnknownAddr(t *testing.T) {
	r := newRig(t, 1, nil)
	if v := r.dir.MemValue(1234); v != 0 {
		t.Errorf("unknown address value %d", v)
	}
}

func TestDeferredFlushAfterLocalHitWindow(t *testing.T) {
	// A forward deferred by an in-flight local hit must be serviced right
	// after the hit commits (flushDeferred), not wait for a counter event.
	r := newRig(t, 2, nil)
	r.doOp(t, 0, mem.Write, 6, 1) // P0 exclusive
	// Local hit in flight (commit scheduled next cycle) while the remote
	// request's forward arrives.
	c0 := r.caches[0]
	c0.Issue(&Req{Kind: mem.Write, Addr: 6, Data: 2})
	got := mem.Value(-1)
	r.caches[1].Issue(&Req{Kind: mem.Read, Addr: 6,
		OnCommit: func(v mem.Value) { got = v }})
	r.settle(t)
	if got != 2 {
		t.Fatalf("remote read = %d, want 2 (after the local hit)", got)
	}
}
