package cache

import (
	"testing"

	"weakorder/internal/mem"
	"weakorder/internal/network"
	"weakorder/internal/sim"
)

// rig assembles n caches and one directory on an ordered general network.
type rig struct {
	k      *sim.Kernel
	net    *network.General
	caches []*Cache
	dir    *Directory
}

func newRig(t *testing.T, n int, cacheCfg func(*Config)) *rig {
	t.Helper()
	k := &sim.Kernel{}
	net := network.NewGeneral(k, network.GeneralConfig{BaseLatency: 2, OrderedPairs: true, Seed: 1})
	r := &rig{k: k, net: net}
	home := func(a mem.Addr) int { return n }
	r.dir = NewDirectory(k, net, DirConfig{ID: n, NumProcs: n, Latency: 1})
	for i := 0; i < n; i++ {
		cfg := Config{ID: i, Home: home, HitLatency: 1}
		if cacheCfg != nil {
			cacheCfg(&cfg)
		}
		r.caches = append(r.caches, New(k, net, cfg))
	}
	return r
}

// settle runs the kernel until idle (bounded).
func (r *rig) settle(t *testing.T) {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		if r.k.Pending() == 0 {
			return
		}
		r.k.Tick()
	}
	t.Fatal("rig did not settle within 10000 cycles")
}

// doOp issues a request and settles; it returns the committed value and
// whether OnGlobal fired.
func (r *rig) doOp(t *testing.T, c int, kind mem.Kind, addr mem.Addr, data mem.Value) (mem.Value, bool) {
	t.Helper()
	var got mem.Value
	committed, global := false, false
	r.caches[c].Issue(&Req{
		Kind: kind, Addr: addr, Data: data,
		OnCommit: func(v mem.Value) { got = v; committed = true },
		OnGlobal: func() { global = true },
	})
	r.settle(t)
	if !committed {
		t.Fatalf("cache %d: %v on %d did not commit", c, kind, addr)
	}
	return got, global
}

func TestReadMissFillsShared(t *testing.T) {
	r := newRig(t, 2, nil)
	r.dir.SetInit(5, 42)
	v, global := r.doOp(t, 0, mem.Read, 5, 0)
	if v != 42 || !global {
		t.Fatalf("read returned %d (global %v), want 42/true", v, global)
	}
	if st, _ := r.caches[0].LineInfo(5); st != LineShared {
		t.Fatalf("line state %v, want Shared", st)
	}
	if ds, _, sharers := r.dir.State(5); ds != DirShared || len(sharers) != 1 {
		t.Fatalf("dir state %v sharers %v", ds, sharers)
	}
}

func TestWriteMissFillsExclusive(t *testing.T) {
	r := newRig(t, 2, nil)
	v, global := r.doOp(t, 0, mem.Write, 3, 9)
	if v != 9 || !global {
		t.Fatalf("write returned %d (global %v)", v, global)
	}
	if st, _ := r.caches[0].LineInfo(3); st != LineExclusive {
		t.Fatalf("line state %v, want Exclusive", st)
	}
	if val, dirty := r.caches[0].Snoop(3); !dirty || val != 9 {
		t.Fatalf("snoop %d/%v, want 9/dirty", val, dirty)
	}
	if r.caches[0].Counter() != 0 {
		t.Fatalf("counter %d after completion, want 0", r.caches[0].Counter())
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	r := newRig(t, 3, nil)
	r.dir.SetInit(1, 7)
	r.doOp(t, 1, mem.Read, 1, 0) // P1 shared
	r.doOp(t, 2, mem.Read, 1, 0) // P2 shared
	_, global := r.doOp(t, 0, mem.Write, 1, 8)
	if !global {
		t.Fatal("write must be globally performed after all acks")
	}
	for _, c := range []int{1, 2} {
		if st, _ := r.caches[c].LineInfo(1); st != LineInvalid {
			t.Errorf("cache %d still has the line (%v)", c, st)
		}
	}
	if r.caches[1].Stats().InvsReceived != 1 || r.caches[2].Stats().InvsReceived != 1 {
		t.Error("both sharers must receive invalidations")
	}
	// Subsequent read by an invalidated sharer sees the new value.
	if v, _ := r.doOp(t, 1, mem.Read, 1, 0); v != 8 {
		t.Errorf("re-read = %d, want 8", v)
	}
}

func TestOwnershipTransferOnWriteMiss(t *testing.T) {
	r := newRig(t, 2, nil)
	r.doOp(t, 0, mem.Write, 4, 1) // P0 exclusive
	v, global := r.doOp(t, 1, mem.Write, 4, 2)
	if v != 2 || !global {
		t.Fatalf("second write %d/%v", v, global)
	}
	if st, _ := r.caches[0].LineInfo(4); st != LineInvalid {
		t.Errorf("old owner keeps line (%v)", st)
	}
	if ds, owner, _ := r.dir.State(4); ds != DirExclusive || owner != 1 {
		t.Errorf("dir %v owner %d, want Exclusive/1", ds, owner)
	}
}

func TestReadFromDirtyOwnerDowngrades(t *testing.T) {
	r := newRig(t, 2, nil)
	r.doOp(t, 0, mem.Write, 4, 5)
	v, _ := r.doOp(t, 1, mem.Read, 4, 0)
	if v != 5 {
		t.Fatalf("read = %d, want 5 (from owner)", v)
	}
	if st, _ := r.caches[0].LineInfo(4); st != LineShared {
		t.Errorf("owner state %v, want Shared after downgrade", st)
	}
	if ds, _, sharers := r.dir.State(4); ds != DirShared || len(sharers) != 2 {
		t.Errorf("dir %v sharers %v, want Shared with both", ds, sharers)
	}
	if r.dir.MemValue(4) != 5 {
		t.Errorf("memory not updated on downgrade: %d", r.dir.MemValue(4))
	}
}

func TestRMWAtomicOnLine(t *testing.T) {
	r := newRig(t, 2, nil)
	r.dir.SetInit(9, 3)
	v, _ := r.doOp(t, 0, mem.SyncRMW, 9, 1)
	if v != 3 {
		t.Fatalf("RMW read %d, want 3", v)
	}
	if val, dirty := r.caches[0].Snoop(9); !dirty || val != 1 {
		t.Fatalf("RMW wrote %d/%v, want 1/dirty", val, dirty)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	r := newRig(t, 2, nil)
	r.dir.SetInit(2, 1)
	r.doOp(t, 0, mem.Read, 2, 0)
	r.doOp(t, 1, mem.Read, 2, 0)
	v, global := r.doOp(t, 0, mem.Write, 2, 10) // upgrade: P1 invalidated
	if v != 10 || !global {
		t.Fatalf("upgrade write %d/%v", v, global)
	}
	if st, _ := r.caches[1].LineInfo(2); st != LineInvalid {
		t.Errorf("other sharer not invalidated (%v)", st)
	}
	if r.caches[0].Stats().Upgrades == 0 {
		t.Error("upgrade not counted")
	}
}

func TestSoleSharerSilentUpgrade(t *testing.T) {
	r := newRig(t, 2, nil)
	r.doOp(t, 0, mem.Read, 2, 0)
	_, global := r.doOp(t, 0, mem.Write, 2, 4)
	if !global {
		t.Fatal("sole-sharer upgrade must be globally performed at fill")
	}
	if r.dir.Stats().Invalidations != 0 {
		t.Error("no invalidations expected for sole-sharer upgrade")
	}
}

func TestCounterTracksOutstandingDataMisses(t *testing.T) {
	r := newRig(t, 1, nil)
	c := r.caches[0]
	c.Issue(&Req{Kind: mem.Read, Addr: 1})
	c.Issue(&Req{Kind: mem.Write, Addr: 2, Data: 1})
	if c.Counter() != 2 {
		t.Fatalf("counter = %d with two outstanding data misses, want 2", c.Counter())
	}
	r.settle(t)
	if c.Counter() != 0 {
		t.Fatalf("counter = %d after settle, want 0", c.Counter())
	}
}

func TestSyncMissDoesNotCountButItsAcksDo(t *testing.T) {
	r := newRig(t, 2, UseReserveCfg)
	r.dir.SetInit(7, 0)
	r.doOp(t, 1, mem.Read, 7, 0) // P1 shares the line: sync will need acks
	c := r.caches[0]
	c.Issue(&Req{Kind: mem.SyncRMW, Addr: 7, Data: 1})
	if c.Counter() != 0 {
		t.Fatalf("counter = %d while sync request in flight, want 0", c.Counter())
	}
	r.settle(t)
	if c.Counter() != 0 {
		t.Fatalf("counter = %d after sync globally performed, want 0", c.Counter())
	}
}

// UseReserveCfg enables the reserve-bit mechanism.
func UseReserveCfg(cfg *Config) { cfg.UseReserve = true }

func TestReserveSetWhileDataOutstandingAndDefersSync(t *testing.T) {
	r := newRig(t, 3, UseReserveCfg)
	// P2 holds x shared so P0's write needs a slow ack round-trip, and
	// P0 already owns the lock line s so its release commits locally.
	r.doOp(t, 2, mem.Read, 0, 0)
	r.doOp(t, 0, mem.SyncRMW, 8, 1)

	p0 := r.caches[0]
	// Concurrently: P0's data write to x (MemAck pending for ~10 cycles),
	// P0's release of s (local hit, commits next cycle, reserves), and
	// P1's acquire of s (forward reaches P0 at ~cycle 5, while the MemAck
	// is still outstanding).
	p0.Issue(&Req{Kind: mem.Write, Addr: 0, Data: 1})
	syncCommitted := false
	p0.Issue(&Req{Kind: mem.SyncWrite, Addr: 8, Data: 0,
		OnCommit: func(v mem.Value) { syncCommitted = true }})
	gotLock := false
	var lockVal mem.Value
	r.caches[1].Issue(&Req{Kind: mem.SyncRMW, Addr: 8, Data: 2,
		OnCommit: func(v mem.Value) { gotLock = true; lockVal = v }})

	// Advance until the release commits; the line must be reserved.
	for i := 0; i < 1000 && !syncCommitted; i++ {
		r.k.Tick()
	}
	if !syncCommitted {
		t.Fatal("release did not commit")
	}
	if res := p0.ReservedLines(); len(res) != 1 || res[0] != 8 {
		t.Fatalf("reserved lines %v, want [8]", res)
	}

	r.settle(t)
	if !gotLock {
		t.Fatal("deferred sync request never serviced")
	}
	if lockVal != 0 {
		t.Fatalf("P1 acquired with value %d, want 0 (after the release)", lockVal)
	}
	if p0.Stats().DeferredFwds == 0 {
		t.Error("expected the forward to be deferred by the reserve bit")
	}
	if len(p0.ReservedLines()) != 0 {
		t.Error("reserve bits must clear when the counter reads zero")
	}
}

func TestROSyncBypassCachedSharedTest(t *testing.T) {
	// Default Section 6 path: the Test takes a shared cached copy; the
	// previous owner downgrades, and subsequent spins hit locally.
	r := newRig(t, 2, func(cfg *Config) { cfg.UseReserve = true; cfg.ROSyncBypass = true })
	r.doOp(t, 0, mem.SyncRMW, 5, 1) // P0 owns s exclusively (value 1)
	v, _ := r.doOp(t, 1, mem.SyncRead, 5, 0)
	if v != 1 {
		t.Fatalf("sync read = %d, want 1", v)
	}
	if st, _ := r.caches[0].LineInfo(5); st != LineShared {
		t.Errorf("owner state %v, want Shared (downgraded)", st)
	}
	if st, _ := r.caches[1].LineInfo(5); st != LineShared {
		t.Errorf("reader state %v, want Shared (cached Test)", st)
	}
	// A second Test hits locally.
	before := r.caches[1].Stats().Hits
	if v, _ := r.doOp(t, 1, mem.SyncRead, 5, 0); v != 1 {
		t.Fatalf("second sync read = %d, want 1", v)
	}
	if r.caches[1].Stats().Hits != before+1 {
		t.Error("second Test must hit the shared copy locally")
	}
}

func TestROSyncUncachedServesValueWithoutTransfer(t *testing.T) {
	// Ablation path: uncached remote value reads, answered even by
	// reserved owners, with no downgrade and nothing cached at the reader.
	r := newRig(t, 2, func(cfg *Config) {
		cfg.UseReserve = true
		cfg.ROSyncBypass = true
		cfg.ROSyncUncached = true
	})
	r.doOp(t, 0, mem.SyncRMW, 5, 1) // P0 owns s exclusively (value 1)
	v, _ := r.doOp(t, 1, mem.SyncRead, 5, 0)
	if v != 1 {
		t.Fatalf("sync read = %d, want 1", v)
	}
	if st, _ := r.caches[0].LineInfo(5); st != LineExclusive {
		t.Errorf("owner state %v, want Exclusive (no downgrade)", st)
	}
	if st, _ := r.caches[1].LineInfo(5); st != LineInvalid {
		t.Errorf("reader state %v, want Invalid (uncached read)", st)
	}
}

func TestROSyncReadFromMemory(t *testing.T) {
	r := newRig(t, 2, func(cfg *Config) { cfg.ROSyncBypass = true; cfg.ROSyncUncached = true })
	r.dir.SetInit(5, 3)
	if v, _ := r.doOp(t, 1, mem.SyncRead, 5, 0); v != 3 {
		t.Fatalf("sync read from memory = %d, want 3", v)
	}
}

func TestReservedLineRefusesDowngradeUntilCounterZero(t *testing.T) {
	// Under the cached-shared Test path a reserved line must stay
	// exclusive: the FwdGetS defers until the owner's counter drains.
	r := newRig(t, 3, func(cfg *Config) { cfg.UseReserve = true; cfg.ROSyncBypass = true })
	r.doOp(t, 2, mem.Read, 0, 0)    // P2 shares x: P0's write will need acks
	r.doOp(t, 0, mem.SyncRMW, 8, 1) // P0 owns s

	p0 := r.caches[0]
	p0.Issue(&Req{Kind: mem.Write, Addr: 0, Data: 1}) // slow global perform
	released := false
	p0.Issue(&Req{Kind: mem.SyncWrite, Addr: 8, Data: 0,
		OnCommit: func(v mem.Value) { released = true }})
	testDone := false
	var testVal mem.Value
	r.caches[1].Issue(&Req{Kind: mem.SyncRead, Addr: 8,
		OnCommit: func(v mem.Value) { testDone = true; testVal = v }})
	for i := 0; i < 1000 && !released; i++ {
		r.k.Tick()
	}
	if !released {
		t.Fatal("release did not commit")
	}
	if st, _ := p0.LineInfo(8); st != LineExclusive {
		t.Fatalf("reserved line state %v, want Exclusive", st)
	}
	r.settle(t)
	if !testDone || testVal != 0 {
		t.Fatalf("Test done=%v val=%d, want true/0", testDone, testVal)
	}
}

func TestEvictionWritesBackDirtyLine(t *testing.T) {
	r := newRig(t, 1, func(cfg *Config) { cfg.Capacity = 2 })
	r.doOp(t, 0, mem.Write, 1, 11)
	r.doOp(t, 0, mem.Write, 2, 22)
	r.doOp(t, 0, mem.Write, 3, 33) // evicts line 1
	if st, _ := r.caches[0].LineInfo(1); st != LineInvalid {
		t.Errorf("line 1 still resident (%v)", st)
	}
	if r.dir.MemValue(1) != 11 {
		t.Errorf("memory[1] = %d, want 11 (writeback)", r.dir.MemValue(1))
	}
	if s := r.caches[0].Stats(); s.Evictions == 0 || s.Writebacks == 0 {
		t.Errorf("stats %+v: expected evictions and writebacks", s)
	}
	// The evicted line is still readable (from memory).
	if v, _ := r.doOp(t, 0, mem.Read, 1, 0); v != 11 {
		t.Errorf("re-read after eviction = %d, want 11", v)
	}
}

func TestSharedEvictionSilentAndStaleInvAck(t *testing.T) {
	r := newRig(t, 2, func(cfg *Config) { cfg.Capacity = 1 })
	r.dir.SetInit(1, 5)
	r.doOp(t, 0, mem.Read, 1, 0)
	r.doOp(t, 0, mem.Read, 2, 0) // silently drops shared line 1
	// P1 writes line 1: directory still lists P0 as sharer and sends an
	// invalidation; P0 must ack despite not holding the line.
	if _, global := r.doOp(t, 1, mem.Write, 1, 6); !global {
		t.Fatal("write must complete via stale-sharer ack")
	}
}

func TestBusyAndIdleTracking(t *testing.T) {
	r := newRig(t, 1, nil)
	c := r.caches[0]
	if c.Busy() {
		t.Error("fresh cache must be idle")
	}
	c.Issue(&Req{Kind: mem.Read, Addr: 1})
	if !c.Busy() {
		t.Error("cache with outstanding miss must be busy")
	}
	r.settle(t)
	if c.Busy() || !r.dir.Idle() {
		t.Error("cache and directory must drain")
	}
}

func TestMSHRMergesSameLineOps(t *testing.T) {
	r := newRig(t, 1, nil)
	c := r.caches[0]
	var order []mem.Value
	c.Issue(&Req{Kind: mem.Write, Addr: 1, Data: 1, OnCommit: func(v mem.Value) { order = append(order, v) }})
	c.Issue(&Req{Kind: mem.Read, Addr: 1, OnCommit: func(v mem.Value) { order = append(order, v) }})
	c.Issue(&Req{Kind: mem.Write, Addr: 1, Data: 2, OnCommit: func(v mem.Value) { order = append(order, v) }})
	r.settle(t)
	if len(order) != 3 || order[0] != 1 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("commit order/values %v, want [1 1 2]", order)
	}
	if r.caches[0].Stats().Misses != 1 {
		t.Errorf("misses = %d, want 1 (merged)", r.caches[0].Stats().Misses)
	}
}

func TestReadThenWriteMergedIssuesUpgrade(t *testing.T) {
	// A read miss followed by a write to the same line: the read fills
	// Shared, then the queued write upgrades.
	r := newRig(t, 2, nil)
	r.dir.SetInit(1, 9)
	r.doOp(t, 1, mem.Read, 1, 0) // P1 shares too, so upgrade needs an ack
	c := r.caches[0]
	var reads, writes []mem.Value
	c.Issue(&Req{Kind: mem.Read, Addr: 1, OnCommit: func(v mem.Value) { reads = append(reads, v) }})
	c.Issue(&Req{Kind: mem.Write, Addr: 1, Data: 4, OnCommit: func(v mem.Value) { writes = append(writes, v) }})
	r.settle(t)
	if len(reads) != 1 || reads[0] != 9 {
		t.Fatalf("reads %v, want [9]", reads)
	}
	if len(writes) != 1 || writes[0] != 4 {
		t.Fatalf("writes %v, want [4]", writes)
	}
	if st, _ := c.LineInfo(1); st != LineExclusive {
		t.Errorf("state %v, want Exclusive after upgrade", st)
	}
}

func TestHitDefersForwardUntilCommit(t *testing.T) {
	// A local hit in flight must not lose the line to a forward: the
	// forward waits for the local commit.
	r := newRig(t, 2, nil)
	c0 := r.caches[0]
	r.doOp(t, 0, mem.SyncRMW, 5, 1) // P0 exclusive, val 1 (TAS won)

	// P0 unsets (hit, commit scheduled) while P1's TAS races in.
	var p0Got, p1Got mem.Value
	c0.Issue(&Req{Kind: mem.SyncWrite, Addr: 5, Data: 0,
		OnCommit: func(v mem.Value) { p0Got = v }})
	r.caches[1].Issue(&Req{Kind: mem.SyncRMW, Addr: 5, Data: 1,
		OnCommit: func(v mem.Value) { p1Got = v }})
	r.settle(t)
	if p0Got != 0 {
		t.Fatalf("P0 unset committed %d, want 0", p0Got)
	}
	if p1Got != 0 {
		t.Fatalf("P1 TAS read %d, want 0 (must see the unset)", p1Got)
	}
}

func TestMsgNames(t *testing.T) {
	kinds := []network.MsgKind{
		MsgGetS, MsgGetX, MsgSyncRead, MsgPutX, MsgInvAck,
		MsgXferDone, MsgSyncReadDone, MsgData, MsgDataEx,
		MsgMemAck, MsgInv, MsgWBAck, MsgFwdGetS, MsgFwdGetX,
		MsgFwdSyncRead, MsgSyncReadReply, MsgOwnerData, MsgOwnerDataEx,
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		name := MsgName(network.Msg{Kind: k})
		if name == "" || seen[name] {
			t.Errorf("bad or duplicate message name %q for kind %d", name, k)
		}
		seen[name] = true
	}
	if got := MsgName(network.Msg{Kind: 250}); got != "MsgKind(250)" {
		t.Errorf("unknown kind name = %q", got)
	}
}

func TestLineAndDirStateStrings(t *testing.T) {
	for _, s := range []LineState{LineInvalid, LineShared, LineExclusive} {
		if s.String() == "" {
			t.Error("empty LineState string")
		}
	}
	for _, s := range []DirState{DirUncached, DirShared, DirExclusive} {
		if s.String() == "" {
			t.Error("empty DirState string")
		}
	}
}
