// Package cache implements the paper's Section 5.2 implementation model:
// per-processor write-back caches kept coherent by a directory-based
// invalidation protocol over an arbitrary interconnect, extended with the
// Section 5.3 mechanisms — a per-processor counter of outstanding accesses
// and a per-line reserve bit that stalls other processors' synchronization
// requests until the counter reads zero.
//
// Protocol summary (line granularity = one word, so no false sharing):
//
//   - A data read miss sends GetS to the line's home directory. The
//     directory replies with Data, or forwards to the exclusive owner,
//     which supplies the line and downgrades.
//   - A write or synchronization operation needs the line exclusive: GetX.
//     For a line shared in other caches the directory forwards the line to
//     the requester in parallel with invalidations (the paper's protocol);
//     sharers acknowledge to the directory, which sends a final MemAck to
//     the requester once all acknowledgements arrive. A write commits when
//     it modifies the local copy and is globally performed when the MemAck
//     (or the line itself, when no other copies existed) arrives.
//   - The directory serializes transactions per line: requests arriving
//     while a line transaction is in flight queue at the directory.
//   - A cache holding a reserved line (reserve bit set, counter > 0)
//     defers forwarded ownership requests until its counter reads zero;
//     read-only synchronization reads (the Section 6 refinement) are
//     serviced immediately as uncached value replies.
package cache

import (
	"fmt"

	"weakorder/internal/mem"
)

// Messages from a cache to a directory. The request-class messages
// (GetS, GetX, SyncRead, PutX) carry a per-cache transaction id (ReqID)
// so the directory can absorb duplicates: a retry after a timeout
// re-sends the same id, and the directory serves each (source, id) pair
// at most once. A ReqID of zero means "no dedup" (hand-assembled test
// messages). These four are also the only messages a fault plan may
// perturb (see Faultable).
type (
	// MsgGetS requests a shared copy (data read miss).
	MsgGetS struct {
		Addr  mem.Addr
		ReqID uint64
	}
	// MsgGetX requests an exclusive copy (write miss, upgrade, or
	// synchronization operation — all synchronization operations are
	// treated as writes by the protocol, Section 5.2). Sync distinguishes
	// synchronization requests so owners can apply reserve-bit stalling.
	MsgGetX struct {
		Addr  mem.Addr
		Sync  bool
		ReqID uint64
	}
	// MsgSyncRead requests the current value of a location without
	// taking a cached copy: the Section 6 read-only-synchronization
	// path (Test). Only issued under the WO-Def2+RO policy.
	MsgSyncRead struct {
		Addr  mem.Addr
		ReqID uint64
	}
	// MsgPutX writes back a dirty line on eviction.
	MsgPutX struct {
		Addr  mem.Addr
		Data  mem.Value
		ReqID uint64
	}
	// MsgInvAck acknowledges an invalidation to the directory.
	MsgInvAck struct {
		Addr mem.Addr
	}
	// MsgXferDone tells the directory a forwarded request was serviced:
	// ownership moved to NewOwner (exclusive transfer) or, when Shared is
	// set, the owner downgraded and MemData carries the up-to-date value
	// for memory.
	MsgXferDone struct {
		Addr     mem.Addr
		NewOwner int
		Shared   bool
		MemData  mem.Value
	}
	// MsgSyncReadDone tells the directory a forwarded MsgSyncRead was
	// answered, unblocking the line.
	MsgSyncReadDone struct {
		Addr mem.Addr
	}
)

// Messages from a directory to a cache.
type (
	// MsgData fills a shared copy in response to MsgGetS.
	MsgData struct {
		Addr  mem.Addr
		Value mem.Value
	}
	// MsgDataEx grants an exclusive copy in response to MsgGetX. When
	// AcksPending is set, other caches held shared copies: their
	// invalidations were sent in parallel and the requester's write is
	// globally performed only when the matching MsgMemAck arrives.
	MsgDataEx struct {
		Addr        mem.Addr
		Value       mem.Value
		AcksPending bool
	}
	// MsgMemAck reports that all invalidation acknowledgements for the
	// requester's earlier MsgGetX have been collected: the write is now
	// globally performed.
	MsgMemAck struct {
		Addr mem.Addr
	}
	// MsgInv invalidates a shared copy.
	MsgInv struct {
		Addr mem.Addr
	}
	// MsgWBAck acknowledges a MsgPutX writeback.
	MsgWBAck struct {
		Addr mem.Addr
	}
	// MsgFwdGetS forwards a read request to the exclusive owner.
	MsgFwdGetS struct {
		Addr      mem.Addr
		Requester int
	}
	// MsgFwdGetX forwards an exclusive request to the current owner.
	MsgFwdGetX struct {
		Addr      mem.Addr
		Requester int
		Sync      bool
	}
	// MsgFwdSyncRead forwards an uncached synchronization read to the
	// exclusive owner.
	MsgFwdSyncRead struct {
		Addr      mem.Addr
		Requester int
	}
	// MsgSyncReadReply answers a MsgSyncRead with the current value
	// (sent by the directory or by the forwarded-to owner).
	MsgSyncReadReply struct {
		Addr  mem.Addr
		Value mem.Value
	}
)

// Messages between caches (owner to requester).
type (
	// MsgOwnerData supplies a shared copy from the previous exclusive
	// owner (response to MsgFwdGetS).
	MsgOwnerData struct {
		Addr  mem.Addr
		Value mem.Value
	}
	// MsgOwnerDataEx transfers the exclusive copy from the previous
	// owner (response to MsgFwdGetX). Exactly one copy existed, so the
	// receiving write is globally performed on receipt.
	MsgOwnerDataEx struct {
		Addr  mem.Addr
		Value mem.Value
	}
)

// Faultable reports whether a fault plan may drop, duplicate, or delay
// m: exactly the retried-and-deduplicated request-class messages. Every
// other protocol message is protected — replies carry state transfers
// the protocol cannot re-request, and the ack-phase messages rely on
// point-to-point ordering relative to them.
func Faultable(m interface{}) bool {
	switch m.(type) {
	case MsgGetS, MsgGetX, MsgSyncRead, MsgPutX:
		return true
	default:
		return false
	}
}

// MsgName returns a short name for a protocol message, for statistics.
func MsgName(m interface{}) string {
	switch m.(type) {
	case MsgGetS:
		return "GetS"
	case MsgGetX:
		return "GetX"
	case MsgSyncRead:
		return "SyncRead"
	case MsgPutX:
		return "PutX"
	case MsgInvAck:
		return "InvAck"
	case MsgXferDone:
		return "XferDone"
	case MsgSyncReadDone:
		return "SyncReadDone"
	case MsgData:
		return "Data"
	case MsgDataEx:
		return "DataEx"
	case MsgMemAck:
		return "MemAck"
	case MsgInv:
		return "Inv"
	case MsgWBAck:
		return "WBAck"
	case MsgFwdGetS:
		return "FwdGetS"
	case MsgFwdGetX:
		return "FwdGetX"
	case MsgFwdSyncRead:
		return "FwdSyncRead"
	case MsgSyncReadReply:
		return "SyncReadReply"
	case MsgOwnerData:
		return "OwnerData"
	case MsgOwnerDataEx:
		return "OwnerDataEx"
	default:
		return fmt.Sprintf("%T", m)
	}
}
