// Package cache implements the paper's Section 5.2 implementation model:
// per-processor write-back caches kept coherent by a directory-based
// invalidation protocol over an arbitrary interconnect, extended with the
// Section 5.3 mechanisms — a per-processor counter of outstanding accesses
// and a per-line reserve bit that stalls other processors' synchronization
// requests until the counter reads zero.
//
// Protocol summary (line granularity = one word, so no false sharing):
//
//   - A data read miss sends GetS to the line's home directory. The
//     directory replies with Data, or forwards to the exclusive owner,
//     which supplies the line and downgrades.
//   - A write or synchronization operation needs the line exclusive: GetX.
//     For a line shared in other caches the directory forwards the line to
//     the requester in parallel with invalidations (the paper's protocol);
//     sharers acknowledge to the directory, which sends a final MemAck to
//     the requester once all acknowledgements arrive. A write commits when
//     it modifies the local copy and is globally performed when the MemAck
//     (or the line itself, when no other copies existed) arrives.
//   - The directory serializes transactions per line: requests arriving
//     while a line transaction is in flight queue at the directory.
//   - A cache holding a reserved line (reserve bit set, counter > 0)
//     defers forwarded ownership requests until its counter reads zero;
//     read-only synchronization reads (the Section 6 refinement) are
//     serviced immediately as uncached value replies.
package cache

import (
	"fmt"

	"weakorder/internal/mem"
	"weakorder/internal/network"
)

// Protocol message kinds, carried in network.Msg.Kind. Messages travel
// as compact value structs (see network.Msg) — the kinds below define
// the coherence vocabulary and which envelope fields each kind uses.
//
// The request-class messages (GetS, GetX, SyncRead, PutX) carry a
// per-cache transaction id (ReqID) so the directory can absorb
// duplicates: a retry after a timeout re-sends the same id, and the
// directory serves each (source, id) pair at most once. A ReqID of zero
// means "no dedup" (hand-assembled test messages). These four are also
// the only messages a fault plan may perturb (see Faultable).
const (
	// MsgGetS requests a shared copy (data read miss). Uses Addr, ReqID.
	MsgGetS network.MsgKind = iota + 1
	// MsgGetX requests an exclusive copy (write miss, upgrade, or
	// synchronization operation — all synchronization operations are
	// treated as writes by the protocol, Section 5.2). FlagSync
	// distinguishes synchronization requests so owners can apply
	// reserve-bit stalling. Uses Addr, Flags, ReqID.
	MsgGetX
	// MsgSyncRead requests the current value of a location without
	// taking a cached copy: the Section 6 read-only-synchronization
	// path (Test). Only issued under the WO-Def2+RO policy. Uses Addr,
	// ReqID.
	MsgSyncRead
	// MsgPutX writes back a dirty line on eviction. Uses Addr, Value,
	// ReqID.
	MsgPutX
	// MsgInvAck acknowledges an invalidation to the directory. Uses Addr.
	MsgInvAck
	// MsgXferDone tells the directory a forwarded request was serviced:
	// ownership moved to Peer (exclusive transfer) or, when FlagShared is
	// set, the owner downgraded and Value carries the up-to-date data for
	// memory. Uses Addr, Peer, Flags, Value.
	MsgXferDone
	// MsgSyncReadDone tells the directory a forwarded MsgSyncRead was
	// answered, unblocking the line. Uses Addr.
	MsgSyncReadDone
	// MsgData fills a shared copy in response to MsgGetS. Uses Addr,
	// Value.
	MsgData
	// MsgDataEx grants an exclusive copy in response to MsgGetX. When
	// FlagAcksPending is set, other caches held shared copies: their
	// invalidations were sent in parallel and the requester's write is
	// globally performed only when the matching MsgMemAck arrives. Uses
	// Addr, Value, Flags.
	MsgDataEx
	// MsgMemAck reports that all invalidation acknowledgements for the
	// requester's earlier MsgGetX have been collected: the write is now
	// globally performed. Uses Addr.
	MsgMemAck
	// MsgInv invalidates a shared copy. Uses Addr.
	MsgInv
	// MsgWBAck acknowledges a MsgPutX writeback. Uses Addr.
	MsgWBAck
	// MsgFwdGetS forwards a read request to the exclusive owner. Peer is
	// the requester. Uses Addr, Peer.
	MsgFwdGetS
	// MsgFwdGetX forwards an exclusive request to the current owner.
	// Peer is the requester; FlagSync marks synchronization requests.
	// Uses Addr, Peer, Flags.
	MsgFwdGetX
	// MsgFwdSyncRead forwards an uncached synchronization read to the
	// exclusive owner. Peer is the requester. Uses Addr, Peer.
	MsgFwdSyncRead
	// MsgSyncReadReply answers a MsgSyncRead with the current value
	// (sent by the directory or by the forwarded-to owner). Uses Addr,
	// Value.
	MsgSyncReadReply
	// MsgOwnerData supplies a shared copy from the previous exclusive
	// owner (response to MsgFwdGetS). Uses Addr, Value.
	MsgOwnerData
	// MsgOwnerDataEx transfers the exclusive copy from the previous
	// owner (response to MsgFwdGetX). Exactly one copy existed, so the
	// receiving write is globally performed on receipt. Uses Addr, Value.
	MsgOwnerDataEx
)

// Flag bits carried in network.Msg.Flags by the kinds above.
const (
	// FlagSync marks a GetX/FwdGetX issued for a synchronization
	// operation.
	FlagSync uint8 = 1 << iota
	// FlagShared marks an XferDone where the owner downgraded to shared
	// (FwdGetS) rather than transferring ownership.
	FlagShared
	// FlagAcksPending marks a DataEx whose invalidations are still being
	// collected by the directory.
	FlagAcksPending
)

// flag reports whether bit is set in m.Flags.
func flag(m network.Msg, bit uint8) bool { return m.Flags&bit != 0 }

// boolFlag returns bit when set is true, 0 otherwise.
func boolFlag(bit uint8, set bool) uint8 {
	if set {
		return bit
	}
	return 0
}

// Faultable reports whether a fault plan may drop, duplicate, or delay
// m: exactly the retried-and-deduplicated request-class messages. Every
// other protocol message is protected — replies carry state transfers
// the protocol cannot re-request, and the ack-phase messages rely on
// point-to-point ordering relative to them.
func Faultable(m network.Msg) bool {
	switch m.Kind {
	case MsgGetS, MsgGetX, MsgSyncRead, MsgPutX:
		return true
	default:
		return false
	}
}

// msgNames maps protocol kinds to their short statistic names.
var msgNames = [...]string{
	MsgGetS:          "GetS",
	MsgGetX:          "GetX",
	MsgSyncRead:      "SyncRead",
	MsgPutX:          "PutX",
	MsgInvAck:        "InvAck",
	MsgXferDone:      "XferDone",
	MsgSyncReadDone:  "SyncReadDone",
	MsgData:          "Data",
	MsgDataEx:        "DataEx",
	MsgMemAck:        "MemAck",
	MsgInv:           "Inv",
	MsgWBAck:         "WBAck",
	MsgFwdGetS:       "FwdGetS",
	MsgFwdGetX:       "FwdGetX",
	MsgFwdSyncRead:   "FwdSyncRead",
	MsgSyncReadReply: "SyncReadReply",
	MsgOwnerData:     "OwnerData",
	MsgOwnerDataEx:   "OwnerDataEx",
}

// MsgName returns a short name for a protocol message, for statistics.
func MsgName(m network.Msg) string {
	if int(m.Kind) < len(msgNames) && msgNames[m.Kind] != "" {
		return msgNames[m.Kind]
	}
	return fmt.Sprintf("MsgKind(%d)", m.Kind)
}

// Constructors for the protocol messages. Each returns the value
// envelope with exactly the fields its kind uses.

// GetS builds a shared-copy request.
func GetS(addr mem.Addr, reqID uint64) network.Msg {
	return network.Msg{Kind: MsgGetS, Addr: addr, ReqID: reqID}
}

// GetX builds an exclusive-copy request.
func GetX(addr mem.Addr, sync bool, reqID uint64) network.Msg {
	return network.Msg{Kind: MsgGetX, Addr: addr, Flags: boolFlag(FlagSync, sync), ReqID: reqID}
}

// SyncRead builds an uncached synchronization-read request.
func SyncRead(addr mem.Addr, reqID uint64) network.Msg {
	return network.Msg{Kind: MsgSyncRead, Addr: addr, ReqID: reqID}
}

// PutX builds a dirty-line writeback.
func PutX(addr mem.Addr, data mem.Value, reqID uint64) network.Msg {
	return network.Msg{Kind: MsgPutX, Addr: addr, Value: data, ReqID: reqID}
}

// InvAck builds an invalidation acknowledgement.
func InvAck(addr mem.Addr) network.Msg {
	return network.Msg{Kind: MsgInvAck, Addr: addr}
}

// XferDoneShared reports a FwdGetS serviced: the owner downgraded and
// memData carries the current value for memory.
func XferDoneShared(addr mem.Addr, memData mem.Value) network.Msg {
	return network.Msg{Kind: MsgXferDone, Addr: addr, Flags: FlagShared, Value: memData}
}

// XferDoneOwner reports a FwdGetX serviced: ownership moved to newOwner.
func XferDoneOwner(addr mem.Addr, newOwner int) network.Msg {
	return network.Msg{Kind: MsgXferDone, Addr: addr, Peer: int32(newOwner)}
}

// SyncReadDone reports a forwarded MsgSyncRead answered.
func SyncReadDone(addr mem.Addr) network.Msg {
	return network.Msg{Kind: MsgSyncReadDone, Addr: addr}
}

// Data builds a shared-copy fill.
func Data(addr mem.Addr, v mem.Value) network.Msg {
	return network.Msg{Kind: MsgData, Addr: addr, Value: v}
}

// DataEx builds an exclusive-copy grant.
func DataEx(addr mem.Addr, v mem.Value, acksPending bool) network.Msg {
	return network.Msg{Kind: MsgDataEx, Addr: addr, Value: v, Flags: boolFlag(FlagAcksPending, acksPending)}
}

// MemAck reports all invalidation acks collected.
func MemAck(addr mem.Addr) network.Msg {
	return network.Msg{Kind: MsgMemAck, Addr: addr}
}

// Inv builds an invalidation.
func Inv(addr mem.Addr) network.Msg {
	return network.Msg{Kind: MsgInv, Addr: addr}
}

// WBAck acknowledges a writeback.
func WBAck(addr mem.Addr) network.Msg {
	return network.Msg{Kind: MsgWBAck, Addr: addr}
}

// FwdGetS forwards a read request to the exclusive owner.
func FwdGetS(addr mem.Addr, requester int) network.Msg {
	return network.Msg{Kind: MsgFwdGetS, Addr: addr, Peer: int32(requester)}
}

// FwdGetX forwards an exclusive request to the current owner.
func FwdGetX(addr mem.Addr, requester int, sync bool) network.Msg {
	return network.Msg{Kind: MsgFwdGetX, Addr: addr, Peer: int32(requester), Flags: boolFlag(FlagSync, sync)}
}

// FwdSyncRead forwards an uncached synchronization read to the owner.
func FwdSyncRead(addr mem.Addr, requester int) network.Msg {
	return network.Msg{Kind: MsgFwdSyncRead, Addr: addr, Peer: int32(requester)}
}

// SyncReadReply answers a MsgSyncRead.
func SyncReadReply(addr mem.Addr, v mem.Value) network.Msg {
	return network.Msg{Kind: MsgSyncReadReply, Addr: addr, Value: v}
}

// OwnerData supplies a shared copy from the previous owner.
func OwnerData(addr mem.Addr, v mem.Value) network.Msg {
	return network.Msg{Kind: MsgOwnerData, Addr: addr, Value: v}
}

// OwnerDataEx transfers the exclusive copy from the previous owner.
func OwnerDataEx(addr mem.Addr, v mem.Value) network.Msg {
	return network.Msg{Kind: MsgOwnerDataEx, Addr: addr, Value: v}
}
