package cache

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"weakorder/internal/mem"
	"weakorder/internal/trace"
)

// heavyFuzz can be flipped for a long local soak (go test -run Fuzz
// -ldflags is overkill; just edit or use the env check below).
var heavyFuzz = os.Getenv("WEAKORDER_HEAVY_FUZZ") != ""

// TestProtocolFuzz drives random operation storms at the protocol rig —
// reads, writes, RMWs, sync ops over a small address space, issued with
// random gaps so transactions overlap arbitrarily — and checks the
// resulting commit trace against per-location coherence and RMW
// atomicity, plus full drain. Each seed is an independent storm; small
// capacities force evictions and writeback races.
func TestProtocolFuzz(t *testing.T) {
	configs := []struct {
		name string
		fn   func(*Config)
	}{
		{"plain", nil},
		{"reserve", func(c *Config) { c.UseReserve = true }},
		{"reserve+ro", func(c *Config) { c.UseReserve = true; c.ROSyncBypass = true }},
		{"reserve+ro-uncached", func(c *Config) {
			c.UseReserve = true
			c.ROSyncBypass = true
			c.ROSyncUncached = true
		}},
		{"tiny-cache", func(c *Config) { c.Capacity = 2 }},
		{"tiny-reserve", func(c *Config) { c.Capacity = 2; c.UseReserve = true }},
	}
	for _, cc := range configs {
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			n := int64(8)
			if testing.Short() {
				n = 3
			} else if heavyFuzz {
				n = 200
			}
			for seed := int64(0); seed < n; seed++ {
				fuzzOnce(t, cc.fn, seed)
			}
		})
	}
}

func fuzzOnce(t *testing.T, cfgFn func(*Config), seed int64) {
	t.Helper()
	const (
		nCaches = 3
		nAddrs  = 4
		nOps    = 40
	)
	r := newRig(t, nCaches, cfgFn)
	rng := rand.New(rand.NewSource(seed))

	// Address roles: the last address is the "sync" location, the rest are
	// data — keeping the roles disjoint mirrors DRF0 usage and avoids the
	// documented mixed-access livelock caveat.
	syncAddr := mem.Addr(nAddrs - 1)

	var ops []mem.Op
	counters := make([]int, nCaches) // per-cache dynamic op index
	pendingSync := make([]bool, nCaches)

	record := func(c int, kind mem.Kind, addr mem.Addr, data mem.Value) *mem.Op {
		op := mem.Op{Proc: c, Index: counters[c], Kind: kind, Addr: addr, Data: data}
		counters[c]++
		ops = append(ops, mem.Op{}) // placeholder; filled at commit
		return &op
	}

	committed := make([]mem.Op, 0, nCaches*nOps)
	issued := 0
	for i := 0; i < nOps*nCaches; i++ {
		c := rng.Intn(nCaches)
		if pendingSync[c] {
			// Serialize each cache's sync ops (the processor would stall);
			// issue a data op from another cache instead.
			r.k.Tick()
			continue
		}
		var kind mem.Kind
		var addr mem.Addr
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			kind, addr = mem.Read, mem.Addr(rng.Intn(nAddrs-1))
		case 4, 5, 6:
			kind, addr = mem.Write, mem.Addr(rng.Intn(nAddrs-1))
		case 7:
			kind, addr = mem.SyncRMW, syncAddr
		case 8:
			kind, addr = mem.SyncWrite, syncAddr
		default:
			kind, addr = mem.SyncRead, syncAddr
		}
		data := mem.Value(rng.Intn(50) + 1)
		op := record(c, kind, addr, data)
		op.Data = data
		if kind == mem.SyncRead {
			op.Data = 0
		}
		issued++
		cIdx := c
		opCopy := *op
		if kind.IsSync() {
			pendingSync[c] = true
		}
		r.caches[c].Issue(&Req{
			Kind: kind, Addr: addr, Data: op.Data,
			OnCommit: func(v mem.Value) {
				done := opCopy
				done.Got = v
				committed = append(committed, done)
				if done.Kind.IsSync() {
					pendingSync[cIdx] = false
				}
			},
		})
		// Random gap between issues so transactions overlap.
		for g := rng.Intn(3); g > 0; g-- {
			r.k.Tick()
		}
	}
	r.settle(t)

	if len(committed) != issued {
		t.Fatalf("seed %d: %d of %d operations committed", seed, len(committed), issued)
	}
	for i, c := range r.caches {
		if c.Busy() {
			t.Fatalf("seed %d: cache %d still busy after settle", seed, i)
		}
		if c.Counter() != 0 {
			t.Fatalf("seed %d: cache %d counter %d after settle", seed, i, c.Counter())
		}
		if res := c.ReservedLines(); len(res) != 0 {
			t.Fatalf("seed %d: cache %d reserve bits %v after drain", seed, i, res)
		}
	}
	if !r.dir.Idle() {
		t.Fatalf("seed %d: directory not idle: %v", seed, r.dir.PendingLines())
	}

	exec := &mem.Execution{Ops: committed, Procs: nCaches}
	if err := trace.CheckCoherence(exec, nil); err != nil {
		t.Fatalf("seed %d: %v\n%s", seed, err, dumpOps(committed))
	}
	if err := trace.CheckRMWAtomicity(exec, nil); err != nil {
		t.Fatalf("seed %d: %v\n%s", seed, err, dumpOps(committed))
	}
}

func dumpOps(ops []mem.Op) string {
	s := ""
	for _, op := range ops {
		s += fmt.Sprintln(op)
	}
	return s
}
