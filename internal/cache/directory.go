package cache

import (
	"fmt"
	"slices"

	"weakorder/internal/bitset"
	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/network"
	"weakorder/internal/sim"
)

// DirState is the directory's view of one line.
type DirState uint8

// Directory line states.
const (
	// DirUncached: memory holds the only copy.
	DirUncached DirState = iota
	// DirShared: one or more caches hold read-only copies; memory is
	// up to date.
	DirShared
	// DirExclusive: exactly one cache owns a (potentially dirty) copy.
	DirExclusive
)

// String names the state.
func (s DirState) String() string {
	switch s {
	case DirUncached:
		return "Uncached"
	case DirShared:
		return "Shared"
	case DirExclusive:
		return "Exclusive"
	default:
		return fmt.Sprintf("DirState(%d)", uint8(s))
	}
}

// DirMode selects how a directory tracks sharers. Full-map is exact and
// is the correctness reference; the scalable modes keep less state per
// line and compensate by over-invalidating, which the protocol absorbs
// because caches acknowledge invalidations for lines they do not hold.
type DirMode uint8

const (
	// DirFullMap keeps one presence bit per processor (exact sharers).
	DirFullMap DirMode = iota
	// DirLimitedPtr keeps up to Pointers sharer identities (Dir_i); on
	// pointer overflow the line degrades to broadcast — an exclusive
	// request invalidates every processor except the requester.
	DirLimitedPtr
	// DirCoarseVector keeps one presence bit per group of Coarseness
	// processors; invalidations go to every processor in every marked
	// group (except the requester).
	DirCoarseVector
)

// ParseDirMode parses the CLI/config spelling of a directory mode; the
// empty string means the default full-map.
func ParseDirMode(s string) (DirMode, error) {
	switch s {
	case "", "full":
		return DirFullMap, nil
	case "limited":
		return DirLimitedPtr, nil
	case "coarse":
		return DirCoarseVector, nil
	default:
		return DirFullMap, fmt.Errorf("cache: unknown directory mode %q (want full, limited, or coarse)", s)
	}
}

// String names the mode using the CLI/config spelling.
func (m DirMode) String() string {
	switch m {
	case DirFullMap:
		return "full"
	case DirLimitedPtr:
		return "limited"
	case DirCoarseVector:
		return "coarse"
	default:
		return fmt.Sprintf("DirMode(%d)", uint8(m))
	}
}

// pendingKind describes why a directory line is blocked.
type pendingKind uint8

const (
	pendNone        pendingKind = iota
	pendAcks                    // awaiting invalidation acks, then MemAck to requester
	pendFwdS                    // awaiting owner response to FwdGetS
	pendFwdX                    // awaiting owner response to FwdGetX
	pendFwdSyncRead             // awaiting owner response to FwdSyncRead
)

var pendingNames = [...]string{
	pendNone:        "none",
	pendAcks:        "acks",
	pendFwdS:        "fwd-gets",
	pendFwdX:        "fwd-getx",
	pendFwdSyncRead: "fwd-syncread",
}

type dirLine struct {
	addr  mem.Addr
	state DirState
	// sharers is the presence bit-vector: one bit per processor under
	// DirFullMap, one bit per processor group under DirCoarseVector, nil
	// under DirLimitedPtr.
	sharers *bitset.Set
	// ptrs holds the sharer pointers under DirLimitedPtr, sorted
	// ascending; bcast marks pointer overflow (every processor is a
	// potential sharer until the next clear).
	ptrs  []int32
	bcast bool
	owner int
	val   mem.Value

	pending      pendingKind
	pendingSince sim.Time // cycle the pending transaction started (telemetry only)
	acksLeft     int
	requester    int         // cache awaiting completion of the pending transaction
	queue        []queuedReq // requests waiting for the line to unblock

	// served records every (source, transaction id) accepted on this
	// line, making request handling idempotent: a duplicate — whether
	// injected by a faulty interconnect or a spurious retry of a request
	// that was merely queued — is absorbed on arrival. An exact set, not
	// a per-source high-water mark: fault-induced reordering can deliver
	// an older transaction after a newer one (a delayed PutX behind the
	// evictor's next GetS), and that older first arrival must still be
	// served.
	served map[servedKey]bool
}

// servedKey identifies one accepted request-class transaction.
type servedKey struct {
	src int
	id  uint64
}

type queuedReq struct {
	src int
	m   network.Msg
}

// DirConfig parameterizes a directory/memory module.
type DirConfig struct {
	// ID is the module's network endpoint.
	ID int
	// NumProcs is the number of caches (endpoints 0..NumProcs-1).
	NumProcs int
	// Latency is the memory/directory access latency applied to replies.
	Latency sim.Time
	// Mode selects the sharer-tracking scheme (default DirFullMap).
	Mode DirMode
	// Pointers is the sharer-pointer count for DirLimitedPtr (default 4).
	Pointers int
	// Coarseness is the processors-per-group size for DirCoarseVector
	// (default 8).
	Coarseness int
	// NoDedup disables the per-line served-transaction set. Duplicate
	// request-class messages only exist when the interconnect is faulted
	// or cache retries are armed; a machine that runs with neither can
	// skip the bookkeeping, keeping the steady-state request path free of
	// map inserts (and thus allocation-free).
	NoDedup bool

	// Telemetry (optional; see internal/metrics). Never alters protocol
	// behavior.

	// QueueDepth observes the per-line queue length after each enqueue.
	QueueDepth *metrics.Histogram
	// Track receives each blocked-line transaction as a timeline span
	// ("pend:<kind> @<addr>").
	Track *metrics.Track
}

// dirLineChunk sizes the directory-line arena chunks.
const dirLineChunk = 16

// replyTask is one pooled delayed reply: the kernel callback closure is
// allocated once per task and reused across replies.
type replyTask struct {
	d   *Directory
	dst int
	m   network.Msg
	run func()
}

func (t *replyTask) fire() {
	d, dst, m := t.d, t.dst, t.m
	d.replyFree = append(d.replyFree, t)
	d.net.Send(d.cfg.ID, dst, m)
}

// Directory is one memory module with a full-map directory. It serializes
// transactions per line: a request arriving while the line has a pending
// transaction queues until the transaction completes.
type Directory struct {
	k   *sim.Kernel
	net network.Network
	cfg DirConfig
	// lineIdx is the dense addr → arena-index+1 table (0 = no line).
	// Program addresses are allocated densely from zero by
	// program.Builder, so the table stays small and lookup is a slice
	// index instead of a map probe on every message.
	lineIdx []int32
	// busyLines counts lines with a pending transaction, making Idle —
	// polled every cycle by the machine's termination check — O(1)
	// instead of a scan over all lines.
	busyLines int
	stats     DirStats
	// reqCounts densely counts processed requests by message kind;
	// Stats() materializes the name-keyed map from it on demand, keeping
	// the per-message path allocation- and hash-free.
	reqCounts [MsgOwnerDataEx + 1]uint64

	// Directory-line arena (rewound wholesale by Reset): slots retain
	// their sharers bitset, queue capacity, and served map across runs.
	// Sharers bitsets are sized for cfg.NumProcs, so a pooled directory
	// must be reused only for machines with the same processor count.
	lineChunks [][]dirLine
	lineN      int

	replyFree []*replyTask
}

// DirStats counts directory activity.
type DirStats struct {
	// Requests counts processed requests by message name.
	Requests map[string]uint64
	// Forwards counts requests forwarded to owners.
	Forwards uint64
	// Invalidations counts invalidation messages sent.
	Invalidations uint64
	// QueuedMax is the peak per-line queue length observed.
	QueuedMax int
	// Duplicates counts absorbed duplicate requests (same source and
	// transaction id seen before): injected duplicates plus retries of
	// requests that had in fact survived.
	Duplicates uint64
	// PtrOverflows counts limited-pointer overflow events (a line
	// degrading to broadcast); always 0 outside DirLimitedPtr.
	PtrOverflows uint64
}

// NewDirectory constructs a directory attached to the network at cfg.ID.
func NewDirectory(k *sim.Kernel, net network.Network, cfg DirConfig) *Directory {
	if cfg.Latency == 0 {
		cfg.Latency = 1
	}
	if cfg.Pointers <= 0 {
		cfg.Pointers = 4
	}
	if cfg.Coarseness <= 0 {
		cfg.Coarseness = 8
	}
	d := &Directory{
		k:   k,
		net: net,
		cfg: cfg,
	}
	net.Attach(cfg.ID, d.handle)
	return d
}

// SetNoDedup flips duplicate-request tracking for the next run. A pooled
// machine re-derives it on Reset: retry arming is a per-run knob, and a
// retry-armed run must dedup while a clean run may skip the bookkeeping.
func (d *Directory) SetNoDedup(v bool) { d.cfg.NoDedup = v }

// groups returns the presence-vector width for DirCoarseVector.
func (d *Directory) groups() int {
	return (d.cfg.NumProcs + d.cfg.Coarseness - 1) / d.cfg.Coarseness
}

// Reset rewinds the directory for a fresh run on the same wiring: all
// line state and statistics are cleared while the arena, map buckets,
// and pooled reply tasks are retained. The caller guarantees the kernel
// is drained (no replies in flight) and that the processor count is
// unchanged (arena bitsets are sized for it).
func (d *Directory) Reset() {
	clear(d.lineIdx)
	d.lineN = 0
	d.busyLines = 0
	d.stats = DirStats{}
	clear(d.reqCounts[:])
}

// lookup returns the line for a, or nil when the directory has never
// seen the address.
func (d *Directory) lookup(a mem.Addr) *dirLine {
	if int(a) >= len(d.lineIdx) {
		return nil
	}
	idx := d.lineIdx[a]
	if idx == 0 {
		return nil
	}
	i := int(idx - 1)
	return &d.lineChunks[i/dirLineChunk][i%dirLineChunk]
}

func (d *Directory) line(a mem.Addr) *dirLine {
	if l := d.lookup(a); l != nil {
		return l
	}
	for int(a) >= len(d.lineIdx) {
		d.lineIdx = append(d.lineIdx, 0)
	}
	l := d.newLine()
	l.addr = a
	d.lineIdx[a] = int32(d.lineN) // index+1; newLine already advanced lineN
	return l
}

// newLine hands out a fresh dirLine from the arena, recycling the
// slot's sharers bitset, pointer slice, queue capacity, and served map.
func (d *Directory) newLine() *dirLine {
	ci, li := d.lineN/dirLineChunk, d.lineN%dirLineChunk
	if ci == len(d.lineChunks) {
		d.lineChunks = append(d.lineChunks, make([]dirLine, dirLineChunk))
	}
	d.lineN++
	l := &d.lineChunks[ci][li]
	sharers, ptrs, queue, served := l.sharers, l.ptrs[:0], l.queue[:0], l.served
	switch d.cfg.Mode {
	case DirLimitedPtr:
		sharers = nil
		if ptrs == nil {
			ptrs = make([]int32, 0, d.cfg.Pointers)
		}
	case DirCoarseVector:
		if sharers == nil {
			sharers = bitset.New(d.groups())
		} else {
			sharers.Clear()
		}
	default:
		if sharers == nil {
			sharers = bitset.New(d.cfg.NumProcs)
		} else {
			sharers.Clear()
		}
	}
	if served != nil {
		clear(served)
	}
	*l = dirLine{state: DirUncached, sharers: sharers, ptrs: ptrs, owner: -1, queue: queue, served: served}
	return l
}

// ---------------------------------------------------------------------------
// Sharer tracking. All writes to a line's sharer set go through these
// helpers so the three modes stay interchangeable: full-map is exact,
// limited-pointer and coarse-vector are conservative over-approximations
// (they may list processors that do not hold the line, never the
// reverse), which keeps invalidation complete in every mode.

// addSharer records src as a (potential) sharer.
func (d *Directory) addSharer(l *dirLine, src int) {
	switch d.cfg.Mode {
	case DirLimitedPtr:
		if l.bcast {
			return
		}
		p := int32(src)
		i, found := slices.BinarySearch(l.ptrs, p)
		if found {
			return
		}
		if len(l.ptrs) < d.cfg.Pointers {
			l.ptrs = slices.Insert(l.ptrs, i, p)
			return
		}
		// Pointer overflow: degrade to broadcast.
		l.ptrs = l.ptrs[:0]
		l.bcast = true
		d.stats.PtrOverflows++
	case DirCoarseVector:
		l.sharers.Add(src / d.cfg.Coarseness)
	default:
		l.sharers.Add(src)
	}
}

// clearSharers empties the sharer set.
func (d *Directory) clearSharers(l *dirLine) {
	if d.cfg.Mode == DirLimitedPtr {
		l.ptrs = l.ptrs[:0]
		l.bcast = false
		return
	}
	l.sharers.Clear()
}

// countInvTargets returns how many invalidations an exclusive request
// from exclude must trigger: the number of potential sharers other than
// exclude. Zero means the requester is (at worst) the sole sharer and a
// silent upgrade is safe in every mode.
func (d *Directory) countInvTargets(l *dirLine, exclude int) int {
	n := 0
	d.forEachInvTarget(l, exclude, func(int) {
		n++
	})
	return n
}

// forEachInvTarget calls fn for each potential sharer other than
// exclude, in ascending processor order (the full-map iteration order,
// preserved so full-map behavior is byte-identical to the pre-mode
// directory).
func (d *Directory) forEachInvTarget(l *dirLine, exclude int, fn func(p int)) {
	switch d.cfg.Mode {
	case DirLimitedPtr:
		if l.bcast {
			for p := 0; p < d.cfg.NumProcs; p++ {
				if p != exclude {
					fn(p)
				}
			}
			return
		}
		for _, p := range l.ptrs {
			if int(p) != exclude {
				fn(int(p))
			}
		}
	case DirCoarseVector:
		l.sharers.ForEach(func(g int) bool {
			lo, hi := g*d.cfg.Coarseness, (g+1)*d.cfg.Coarseness
			if hi > d.cfg.NumProcs {
				hi = d.cfg.NumProcs
			}
			for p := lo; p < hi; p++ {
				if p != exclude {
					fn(p)
				}
			}
			return true
		})
	default:
		l.sharers.ForEach(func(p int) bool {
			if p != exclude {
				fn(p)
			}
			return true
		})
	}
}

// sharerMembers lists the potential sharers (introspection only).
func (d *Directory) sharerMembers(l *dirLine) []int {
	var out []int
	d.forEachInvTarget(l, -1, func(p int) {
		out = append(out, p)
	})
	return out
}

// SetInit installs the initial memory value of an address.
func (d *Directory) SetInit(a mem.Addr, v mem.Value) { d.line(a).val = v }

// MemValue returns the directory's (memory's) current value for an
// address. When the line is exclusive in some cache this may be stale;
// use the machine's final-state extraction, which consults owners.
func (d *Directory) MemValue(a mem.Addr) mem.Value {
	if l := d.lookup(a); l != nil {
		return l.val
	}
	return 0
}

// State exposes a line's directory state (for tests and invariants).
// The sharer list is the set of *potential* sharers: exact under
// full-map, an over-approximation under the scalable modes.
func (d *Directory) State(a mem.Addr) (DirState, int, []int) {
	l := d.lookup(a)
	if l == nil {
		return DirUncached, -1, nil
	}
	return l.state, l.owner, d.sharerMembers(l)
}

// Idle reports whether no line has a pending transaction or queued
// requests (used for drain/termination detection). Queued requests only
// exist behind a pending transaction, so the busy-line counter covers
// both — this is polled every machine cycle and must stay O(1).
func (d *Directory) Idle() bool { return d.busyLines == 0 }

// PendingLines returns the addresses of blocked lines, for deadlock
// diagnostics.
func (d *Directory) PendingLines() []mem.Addr {
	var out []mem.Addr
	for i := 0; i < d.lineN; i++ {
		l := &d.lineChunks[i/dirLineChunk][i%dirLineChunk]
		if l.pending != pendNone || len(l.queue) > 0 {
			out = append(out, l.addr)
		}
	}
	slices.Sort(out)
	return out
}

// Stats returns directory statistics. The Requests map is materialized
// per call; callers own the returned map.
func (d *Directory) Stats() DirStats {
	s := d.stats
	s.Requests = make(map[string]uint64)
	for k, n := range d.reqCounts {
		if n > 0 {
			s.Requests[MsgName(network.Msg{Kind: network.MsgKind(k)})] = n
		}
	}
	return s
}

// QueueDepth returns the number of requests queued behind a's pending
// transaction (0 for an idle or unknown line) — liveness diagnostics.
func (d *Directory) QueueDepth(a mem.Addr) int {
	if l := d.lookup(a); l != nil {
		return len(l.queue)
	}
	return 0
}

// handle dispatches an incoming message.
func (d *Directory) handle(src int, m network.Msg) {
	if debugTrace != nil {
		debugTrace(d.cfg.ID, src, m)
	}
	if int(m.Kind) < len(d.reqCounts) {
		d.reqCounts[m.Kind]++
	}
	switch m.Kind {
	case MsgGetS, MsgGetX, MsgSyncRead:
		if d.duplicate(m.Addr, src, m.ReqID) {
			return
		}
		d.request(src, m.Addr, m)
	case MsgPutX:
		if d.duplicate(m.Addr, src, m.ReqID) {
			return
		}
		d.putX(src, m)
	case MsgInvAck:
		d.invAck(src, m)
	case MsgXferDone:
		d.xferDone(src, m)
	case MsgSyncReadDone:
		d.syncReadDone(src, m)
	default:
		panic(fmt.Sprintf("directory %d: unexpected message %s from %d", d.cfg.ID, MsgName(m), src))
	}
}

// duplicate absorbs re-deliveries of an already-accepted request:
// true means the message must be ignored. First arrivals are recorded
// (whether processed immediately or queued), so duplicates of queued
// requests are absorbed too. Ignoring a duplicate is always safe
// because replies travel unfaulted: the single accepted copy's reply
// reaches the requester.
func (d *Directory) duplicate(a mem.Addr, src int, id uint64) bool {
	if id == 0 || d.cfg.NoDedup {
		return false // hand-assembled test message or dedup disabled
	}
	l := d.line(a)
	k := servedKey{src: src, id: id}
	if l.served[k] {
		d.stats.Duplicates++
		return true
	}
	if l.served == nil {
		l.served = make(map[servedKey]bool)
	}
	l.served[k] = true
	return false
}

// request processes or queues a GetS/GetX/SyncRead.
func (d *Directory) request(src int, a mem.Addr, m network.Msg) {
	l := d.line(a)
	if l.pending != pendNone {
		l.queue = append(l.queue, queuedReq{src: src, m: m})
		if len(l.queue) > d.stats.QueuedMax {
			d.stats.QueuedMax = len(l.queue)
		}
		d.cfg.QueueDepth.Observe(uint64(len(l.queue)))
		return
	}
	d.process(src, a, l, m)
	if l.pending != pendNone {
		l.pendingSince = d.k.Now()
		d.busyLines++
	}
}

// process handles a request on an unblocked line.
func (d *Directory) process(src int, a mem.Addr, l *dirLine, m network.Msg) {
	switch m.Kind {
	case MsgGetS:
		switch l.state {
		case DirUncached, DirShared:
			l.state = DirShared
			d.addSharer(l, src)
			d.reply(src, Data(a, l.val))
		case DirExclusive:
			d.stats.Forwards++
			l.pending = pendFwdS
			l.requester = src
			d.reply(l.owner, FwdGetS(a, src))
		}
	case MsgGetX:
		switch l.state {
		case DirUncached:
			l.state = DirExclusive
			l.owner = src
			d.reply(src, DataEx(a, l.val, false))
		case DirShared:
			others := d.countInvTargets(l, src)
			if others == 0 {
				// Requester is (at worst) the only sharer: silent upgrade.
				d.clearSharers(l)
				l.state = DirExclusive
				l.owner = src
				d.reply(src, DataEx(a, l.val, false))
				return
			}
			// Forward the line to the requester in parallel with the
			// invalidations (the paper's protocol); collect acks here and
			// send the final MemAck when all arrive. Under limited-pointer
			// overflow or coarse grouping the targets over-approximate the
			// true sharers; the extras acknowledge an invalidation for a
			// line they do not hold, so the ack count still closes.
			d.reply(src, DataEx(a, l.val, true))
			l.pending = pendAcks
			l.acksLeft = others
			l.requester = src
			d.forEachInvTarget(l, src, func(p int) {
				d.stats.Invalidations++
				d.reply(p, Inv(a))
			})
			d.clearSharers(l)
			l.state = DirExclusive
			l.owner = src
		case DirExclusive:
			// l.owner == src is legal under request reordering: the
			// owner's PutX is still in flight (dropped or delayed) and
			// its *next* GetX for the line overtook it. The normal
			// forward path handles it — the cache drops the forward as
			// stale (its writeback is pending), and the eventual PutX
			// crosses the pendFwdX and resolves the transaction from the
			// written-back data (see putX).
			d.stats.Forwards++
			l.pending = pendFwdX
			l.requester = src
			d.reply(l.owner, FwdGetX(a, src, flag(m, FlagSync)))
		}
	case MsgSyncRead:
		switch l.state {
		case DirUncached, DirShared:
			// Memory is current: answer directly, no state change, no
			// cached copy for the reader.
			d.reply(src, SyncReadReply(a, l.val))
		case DirExclusive:
			d.stats.Forwards++
			l.pending = pendFwdSyncRead
			l.requester = src
			d.reply(l.owner, FwdSyncRead(a, src))
		}
	default:
		panic(fmt.Sprintf("directory %d: cannot process %s", d.cfg.ID, MsgName(m)))
	}
}

// putX handles a writeback. A PutX crossing a forwarded request resolves
// that transaction from memory: the (former) owner no longer has the line
// and will drop the forward.
func (d *Directory) putX(src int, msg network.Msg) {
	a := msg.Addr
	l := d.line(a)
	switch {
	case l.pending == pendNone:
		if l.state != DirExclusive || l.owner != src {
			panic(fmt.Sprintf("directory %d: unexpected PutX from %d for %d (state %v owner %d)",
				d.cfg.ID, src, a, l.state, l.owner))
		}
		l.val = msg.Value
		l.state = DirUncached
		l.owner = -1
		d.reply(src, WBAck(a))
	case (l.pending == pendFwdS || l.pending == pendFwdX || l.pending == pendFwdSyncRead) && l.owner == src:
		// The writeback crossed our forward. Satisfy the blocked request
		// from the written-back data.
		l.val = msg.Value
		req := l.requester
		switch l.pending {
		case pendFwdS:
			l.state = DirShared
			l.owner = -1
			d.clearSharers(l)
			d.addSharer(l, req)
			d.reply(req, Data(a, l.val))
		case pendFwdX:
			l.state = DirExclusive
			l.owner = req
			d.reply(req, DataEx(a, l.val, false))
		case pendFwdSyncRead:
			l.state = DirUncached
			l.owner = -1
			d.reply(req, SyncReadReply(a, l.val))
		}
		d.reply(src, WBAck(a))
		d.unblock(a, l)
	default:
		panic(fmt.Sprintf("directory %d: PutX from %d for %d during %v (owner %d)",
			d.cfg.ID, src, a, l.pending, l.owner))
	}
}

// invAck collects one invalidation acknowledgement.
func (d *Directory) invAck(src int, msg network.Msg) {
	l := d.line(msg.Addr)
	if l.pending != pendAcks || l.acksLeft <= 0 {
		panic(fmt.Sprintf("directory %d: stray InvAck from %d for %d", d.cfg.ID, src, msg.Addr))
	}
	l.acksLeft--
	if l.acksLeft == 0 {
		d.reply(l.requester, MemAck(msg.Addr))
		d.unblock(msg.Addr, l)
	}
}

// xferDone completes a forwarded GetS/GetX.
func (d *Directory) xferDone(src int, msg network.Msg) {
	l := d.line(msg.Addr)
	switch l.pending {
	case pendFwdS:
		if !flag(msg, FlagShared) {
			panic(fmt.Sprintf("directory %d: FwdGetS completed without Shared flag for %d", d.cfg.ID, msg.Addr))
		}
		l.val = msg.Value
		l.state = DirShared
		d.clearSharers(l)
		d.addSharer(l, src)         // previous owner keeps a shared copy
		d.addSharer(l, l.requester) // requester received one
		l.owner = -1
	case pendFwdX:
		l.state = DirExclusive
		l.owner = int(msg.Peer)
	default:
		panic(fmt.Sprintf("directory %d: XferDone for %d with pending=%v", d.cfg.ID, msg.Addr, l.pending))
	}
	d.unblock(msg.Addr, l)
}

// syncReadDone completes a forwarded MsgSyncRead.
func (d *Directory) syncReadDone(src int, msg network.Msg) {
	l := d.line(msg.Addr)
	if l.pending != pendFwdSyncRead {
		panic(fmt.Sprintf("directory %d: SyncReadDone for %d with pending=%v", d.cfg.ID, msg.Addr, l.pending))
	}
	d.unblock(msg.Addr, l)
}

// unblock clears the pending transaction and processes queued requests
// until the line blocks again or the queue drains.
func (d *Directory) unblock(a mem.Addr, l *dirLine) {
	if d.cfg.Track != nil {
		d.cfg.Track.Span(fmt.Sprintf("pend:%s @%d", pendingNames[l.pending], a),
			l.pendingSince, d.k.Now())
	}
	l.pending = pendNone
	l.acksLeft = 0
	l.requester = -1
	for len(l.queue) > 0 && l.pending == pendNone {
		q := l.queue[0]
		l.queue = l.queue[1:]
		d.process(q.src, a, l, q.m)
	}
	if l.pending != pendNone {
		l.pendingSince = d.k.Now()
	} else {
		d.busyLines--
	}
}

// reply sends a message after the configured memory latency, via a
// pooled task so steady-state replies schedule zero new closures.
func (d *Directory) reply(dst int, m network.Msg) {
	var t *replyTask
	if n := len(d.replyFree); n > 0 {
		t = d.replyFree[n-1]
		d.replyFree = d.replyFree[:n-1]
	} else {
		t = &replyTask{d: d}
		t.run = t.fire
	}
	t.dst, t.m = dst, m
	d.k.After(d.cfg.Latency, t.run)
}
