package cache

import (
	"fmt"
	"slices"

	"weakorder/internal/bitset"
	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/network"
	"weakorder/internal/sim"
)

// DirState is the directory's view of one line.
type DirState uint8

// Directory line states.
const (
	// DirUncached: memory holds the only copy.
	DirUncached DirState = iota
	// DirShared: one or more caches hold read-only copies; memory is
	// up to date.
	DirShared
	// DirExclusive: exactly one cache owns a (potentially dirty) copy.
	DirExclusive
)

// String names the state.
func (s DirState) String() string {
	switch s {
	case DirUncached:
		return "Uncached"
	case DirShared:
		return "Shared"
	case DirExclusive:
		return "Exclusive"
	default:
		return fmt.Sprintf("DirState(%d)", uint8(s))
	}
}

// pendingKind describes why a directory line is blocked.
type pendingKind uint8

const (
	pendNone        pendingKind = iota
	pendAcks                    // awaiting invalidation acks, then MemAck to requester
	pendFwdS                    // awaiting owner response to FwdGetS
	pendFwdX                    // awaiting owner response to FwdGetX
	pendFwdSyncRead             // awaiting owner response to FwdSyncRead
)

var pendingNames = [...]string{
	pendNone:        "none",
	pendAcks:        "acks",
	pendFwdS:        "fwd-gets",
	pendFwdX:        "fwd-getx",
	pendFwdSyncRead: "fwd-syncread",
}

type dirLine struct {
	state   DirState
	sharers *bitset.Set
	owner   int
	val     mem.Value

	pending      pendingKind
	pendingSince sim.Time // cycle the pending transaction started (telemetry only)
	acksLeft     int
	requester    int         // cache awaiting completion of the pending transaction
	queue        []queuedReq // requests waiting for the line to unblock

	// served records every (source, transaction id) accepted on this
	// line, making request handling idempotent: a duplicate — whether
	// injected by a faulty interconnect or a spurious retry of a request
	// that was merely queued — is absorbed on arrival. An exact set, not
	// a per-source high-water mark: fault-induced reordering can deliver
	// an older transaction after a newer one (a delayed PutX behind the
	// evictor's next GetS), and that older first arrival must still be
	// served.
	served map[servedKey]bool
}

// servedKey identifies one accepted request-class transaction.
type servedKey struct {
	src int
	id  uint64
}

type queuedReq struct {
	src int
	m   network.Msg
}

// DirConfig parameterizes a directory/memory module.
type DirConfig struct {
	// ID is the module's network endpoint.
	ID int
	// NumProcs is the number of caches (endpoints 0..NumProcs-1).
	NumProcs int
	// Latency is the memory/directory access latency applied to replies.
	Latency sim.Time

	// Telemetry (optional; see internal/metrics). Never alters protocol
	// behavior.

	// QueueDepth observes the per-line queue length after each enqueue.
	QueueDepth *metrics.Histogram
	// Track receives each blocked-line transaction as a timeline span
	// ("pend:<kind> @<addr>").
	Track *metrics.Track
}

// dirLineChunk sizes the directory-line arena chunks.
const dirLineChunk = 16

// replyTask is one pooled delayed reply: the kernel callback closure is
// allocated once per task and reused across replies.
type replyTask struct {
	d   *Directory
	dst int
	m   network.Msg
	run func()
}

func (t *replyTask) fire() {
	d, dst, m := t.d, t.dst, t.m
	d.replyFree = append(d.replyFree, t)
	d.net.Send(d.cfg.ID, dst, m)
}

// Directory is one memory module with a full-map directory. It serializes
// transactions per line: a request arriving while the line has a pending
// transaction queues until the transaction completes.
type Directory struct {
	k     *sim.Kernel
	net   network.Network
	cfg   DirConfig
	lines map[mem.Addr]*dirLine
	stats DirStats
	// reqCounts densely counts processed requests by message kind;
	// Stats() materializes the name-keyed map from it on demand, keeping
	// the per-message path allocation- and hash-free.
	reqCounts [MsgOwnerDataEx + 1]uint64

	// Directory-line arena (rewound wholesale by Reset): slots retain
	// their sharers bitset, queue capacity, and served map across runs.
	// Sharers bitsets are sized for cfg.NumProcs, so a pooled directory
	// must be reused only for machines with the same processor count.
	lineChunks [][]dirLine
	lineN      int

	replyFree []*replyTask
}

// DirStats counts directory activity.
type DirStats struct {
	// Requests counts processed requests by message name.
	Requests map[string]uint64
	// Forwards counts requests forwarded to owners.
	Forwards uint64
	// Invalidations counts invalidation messages sent.
	Invalidations uint64
	// QueuedMax is the peak per-line queue length observed.
	QueuedMax int
	// Duplicates counts absorbed duplicate requests (same source and
	// transaction id seen before): injected duplicates plus retries of
	// requests that had in fact survived.
	Duplicates uint64
}

// NewDirectory constructs a directory attached to the network at cfg.ID.
func NewDirectory(k *sim.Kernel, net network.Network, cfg DirConfig) *Directory {
	if cfg.Latency == 0 {
		cfg.Latency = 1
	}
	d := &Directory{
		k:     k,
		net:   net,
		cfg:   cfg,
		lines: make(map[mem.Addr]*dirLine),
	}
	net.Attach(cfg.ID, d.handle)
	return d
}

// Reset rewinds the directory for a fresh run on the same wiring: all
// line state and statistics are cleared while the arena, map buckets,
// and pooled reply tasks are retained. The caller guarantees the kernel
// is drained (no replies in flight) and that the processor count is
// unchanged (arena bitsets are sized for it).
func (d *Directory) Reset() {
	clear(d.lines)
	d.lineN = 0
	d.stats = DirStats{}
	clear(d.reqCounts[:])
}

func (d *Directory) line(a mem.Addr) *dirLine {
	l, ok := d.lines[a]
	if !ok {
		l = d.newLine()
		d.lines[a] = l
	}
	return l
}

// newLine hands out a fresh dirLine from the arena, recycling the
// slot's sharers bitset, queue capacity, and served map.
func (d *Directory) newLine() *dirLine {
	ci, li := d.lineN/dirLineChunk, d.lineN%dirLineChunk
	if ci == len(d.lineChunks) {
		d.lineChunks = append(d.lineChunks, make([]dirLine, dirLineChunk))
	}
	d.lineN++
	l := &d.lineChunks[ci][li]
	sharers, queue, served := l.sharers, l.queue[:0], l.served
	if sharers == nil {
		sharers = bitset.New(d.cfg.NumProcs)
	} else {
		sharers.Clear()
	}
	if served != nil {
		clear(served)
	}
	*l = dirLine{state: DirUncached, sharers: sharers, owner: -1, queue: queue, served: served}
	return l
}

// SetInit installs the initial memory value of an address.
func (d *Directory) SetInit(a mem.Addr, v mem.Value) { d.line(a).val = v }

// MemValue returns the directory's (memory's) current value for an
// address. When the line is exclusive in some cache this may be stale;
// use the machine's final-state extraction, which consults owners.
func (d *Directory) MemValue(a mem.Addr) mem.Value {
	if l, ok := d.lines[a]; ok {
		return l.val
	}
	return 0
}

// State exposes a line's directory state (for tests and invariants).
func (d *Directory) State(a mem.Addr) (DirState, int, []int) {
	l, ok := d.lines[a]
	if !ok {
		return DirUncached, -1, nil
	}
	return l.state, l.owner, l.sharers.Members()
}

// Idle reports whether no line has a pending transaction or queued
// requests (used for drain/termination detection).
func (d *Directory) Idle() bool {
	for _, l := range d.lines {
		if l.pending != pendNone || len(l.queue) > 0 {
			return false
		}
	}
	return true
}

// PendingLines returns the addresses of blocked lines, for deadlock
// diagnostics.
func (d *Directory) PendingLines() []mem.Addr {
	var out []mem.Addr
	for a, l := range d.lines {
		if l.pending != pendNone || len(l.queue) > 0 {
			out = append(out, a)
		}
	}
	slices.Sort(out)
	return out
}

// Stats returns directory statistics. The Requests map is materialized
// per call; callers own the returned map.
func (d *Directory) Stats() DirStats {
	s := d.stats
	s.Requests = make(map[string]uint64)
	for k, n := range d.reqCounts {
		if n > 0 {
			s.Requests[MsgName(network.Msg{Kind: network.MsgKind(k)})] = n
		}
	}
	return s
}

// QueueDepth returns the number of requests queued behind a's pending
// transaction (0 for an idle or unknown line) — liveness diagnostics.
func (d *Directory) QueueDepth(a mem.Addr) int {
	if l, ok := d.lines[a]; ok {
		return len(l.queue)
	}
	return 0
}

// handle dispatches an incoming message.
func (d *Directory) handle(src int, m network.Msg) {
	if debugTrace != nil {
		debugTrace(d.cfg.ID, src, m)
	}
	if int(m.Kind) < len(d.reqCounts) {
		d.reqCounts[m.Kind]++
	}
	switch m.Kind {
	case MsgGetS, MsgGetX, MsgSyncRead:
		if d.duplicate(m.Addr, src, m.ReqID) {
			return
		}
		d.request(src, m.Addr, m)
	case MsgPutX:
		if d.duplicate(m.Addr, src, m.ReqID) {
			return
		}
		d.putX(src, m)
	case MsgInvAck:
		d.invAck(src, m)
	case MsgXferDone:
		d.xferDone(src, m)
	case MsgSyncReadDone:
		d.syncReadDone(src, m)
	default:
		panic(fmt.Sprintf("directory %d: unexpected message %s from %d", d.cfg.ID, MsgName(m), src))
	}
}

// duplicate absorbs re-deliveries of an already-accepted request:
// true means the message must be ignored. First arrivals are recorded
// (whether processed immediately or queued), so duplicates of queued
// requests are absorbed too. Ignoring a duplicate is always safe
// because replies travel unfaulted: the single accepted copy's reply
// reaches the requester.
func (d *Directory) duplicate(a mem.Addr, src int, id uint64) bool {
	if id == 0 {
		return false // hand-assembled test message: no dedup
	}
	l := d.line(a)
	k := servedKey{src: src, id: id}
	if l.served[k] {
		d.stats.Duplicates++
		return true
	}
	if l.served == nil {
		l.served = make(map[servedKey]bool)
	}
	l.served[k] = true
	return false
}

// request processes or queues a GetS/GetX/SyncRead.
func (d *Directory) request(src int, a mem.Addr, m network.Msg) {
	l := d.line(a)
	if l.pending != pendNone {
		l.queue = append(l.queue, queuedReq{src: src, m: m})
		if len(l.queue) > d.stats.QueuedMax {
			d.stats.QueuedMax = len(l.queue)
		}
		d.cfg.QueueDepth.Observe(uint64(len(l.queue)))
		return
	}
	d.process(src, a, l, m)
	if l.pending != pendNone {
		l.pendingSince = d.k.Now()
	}
}

// process handles a request on an unblocked line.
func (d *Directory) process(src int, a mem.Addr, l *dirLine, m network.Msg) {
	switch m.Kind {
	case MsgGetS:
		switch l.state {
		case DirUncached, DirShared:
			l.state = DirShared
			l.sharers.Add(src)
			d.reply(src, Data(a, l.val))
		case DirExclusive:
			d.stats.Forwards++
			l.pending = pendFwdS
			l.requester = src
			d.reply(l.owner, FwdGetS(a, src))
		}
	case MsgGetX:
		switch l.state {
		case DirUncached:
			l.state = DirExclusive
			l.owner = src
			d.reply(src, DataEx(a, l.val, false))
		case DirShared:
			others := 0
			l.sharers.ForEach(func(i int) bool {
				if i != src {
					others++
				}
				return true
			})
			if others == 0 {
				// Requester was the only sharer: silent upgrade.
				l.sharers.Clear()
				l.state = DirExclusive
				l.owner = src
				d.reply(src, DataEx(a, l.val, false))
				return
			}
			// Forward the line to the requester in parallel with the
			// invalidations (the paper's protocol); collect acks here and
			// send the final MemAck when all arrive.
			d.reply(src, DataEx(a, l.val, true))
			l.pending = pendAcks
			l.acksLeft = others
			l.requester = src
			l.sharers.ForEach(func(i int) bool {
				if i != src {
					d.stats.Invalidations++
					d.reply(i, Inv(a))
				}
				return true
			})
			l.sharers.Clear()
			l.state = DirExclusive
			l.owner = src
		case DirExclusive:
			// l.owner == src is legal under request reordering: the
			// owner's PutX is still in flight (dropped or delayed) and
			// its *next* GetX for the line overtook it. The normal
			// forward path handles it — the cache drops the forward as
			// stale (its writeback is pending), and the eventual PutX
			// crosses the pendFwdX and resolves the transaction from the
			// written-back data (see putX).
			d.stats.Forwards++
			l.pending = pendFwdX
			l.requester = src
			d.reply(l.owner, FwdGetX(a, src, flag(m, FlagSync)))
		}
	case MsgSyncRead:
		switch l.state {
		case DirUncached, DirShared:
			// Memory is current: answer directly, no state change, no
			// cached copy for the reader.
			d.reply(src, SyncReadReply(a, l.val))
		case DirExclusive:
			d.stats.Forwards++
			l.pending = pendFwdSyncRead
			l.requester = src
			d.reply(l.owner, FwdSyncRead(a, src))
		}
	default:
		panic(fmt.Sprintf("directory %d: cannot process %s", d.cfg.ID, MsgName(m)))
	}
}

// putX handles a writeback. A PutX crossing a forwarded request resolves
// that transaction from memory: the (former) owner no longer has the line
// and will drop the forward.
func (d *Directory) putX(src int, msg network.Msg) {
	a := msg.Addr
	l := d.line(a)
	switch {
	case l.pending == pendNone:
		if l.state != DirExclusive || l.owner != src {
			panic(fmt.Sprintf("directory %d: unexpected PutX from %d for %d (state %v owner %d)",
				d.cfg.ID, src, a, l.state, l.owner))
		}
		l.val = msg.Value
		l.state = DirUncached
		l.owner = -1
		d.reply(src, WBAck(a))
	case (l.pending == pendFwdS || l.pending == pendFwdX || l.pending == pendFwdSyncRead) && l.owner == src:
		// The writeback crossed our forward. Satisfy the blocked request
		// from the written-back data.
		l.val = msg.Value
		req := l.requester
		switch l.pending {
		case pendFwdS:
			l.state = DirShared
			l.owner = -1
			l.sharers.Clear()
			l.sharers.Add(req)
			d.reply(req, Data(a, l.val))
		case pendFwdX:
			l.state = DirExclusive
			l.owner = req
			d.reply(req, DataEx(a, l.val, false))
		case pendFwdSyncRead:
			l.state = DirUncached
			l.owner = -1
			d.reply(req, SyncReadReply(a, l.val))
		}
		d.reply(src, WBAck(a))
		d.unblock(a, l)
	default:
		panic(fmt.Sprintf("directory %d: PutX from %d for %d during %v (owner %d)",
			d.cfg.ID, src, a, l.pending, l.owner))
	}
}

// invAck collects one invalidation acknowledgement.
func (d *Directory) invAck(src int, msg network.Msg) {
	l := d.line(msg.Addr)
	if l.pending != pendAcks || l.acksLeft <= 0 {
		panic(fmt.Sprintf("directory %d: stray InvAck from %d for %d", d.cfg.ID, src, msg.Addr))
	}
	l.acksLeft--
	if l.acksLeft == 0 {
		d.reply(l.requester, MemAck(msg.Addr))
		d.unblock(msg.Addr, l)
	}
}

// xferDone completes a forwarded GetS/GetX.
func (d *Directory) xferDone(src int, msg network.Msg) {
	l := d.line(msg.Addr)
	switch l.pending {
	case pendFwdS:
		if !flag(msg, FlagShared) {
			panic(fmt.Sprintf("directory %d: FwdGetS completed without Shared flag for %d", d.cfg.ID, msg.Addr))
		}
		l.val = msg.Value
		l.state = DirShared
		l.sharers.Clear()
		l.sharers.Add(src)         // previous owner keeps a shared copy
		l.sharers.Add(l.requester) // requester received one
		l.owner = -1
	case pendFwdX:
		l.state = DirExclusive
		l.owner = int(msg.Peer)
	default:
		panic(fmt.Sprintf("directory %d: XferDone for %d with pending=%v", d.cfg.ID, msg.Addr, l.pending))
	}
	d.unblock(msg.Addr, l)
}

// syncReadDone completes a forwarded MsgSyncRead.
func (d *Directory) syncReadDone(src int, msg network.Msg) {
	l := d.line(msg.Addr)
	if l.pending != pendFwdSyncRead {
		panic(fmt.Sprintf("directory %d: SyncReadDone for %d with pending=%v", d.cfg.ID, msg.Addr, l.pending))
	}
	d.unblock(msg.Addr, l)
}

// unblock clears the pending transaction and processes queued requests
// until the line blocks again or the queue drains.
func (d *Directory) unblock(a mem.Addr, l *dirLine) {
	if d.cfg.Track != nil {
		d.cfg.Track.Span(fmt.Sprintf("pend:%s @%d", pendingNames[l.pending], a),
			l.pendingSince, d.k.Now())
	}
	l.pending = pendNone
	l.acksLeft = 0
	l.requester = -1
	for len(l.queue) > 0 && l.pending == pendNone {
		q := l.queue[0]
		l.queue = l.queue[1:]
		d.process(q.src, a, l, q.m)
	}
	if l.pending != pendNone {
		l.pendingSince = d.k.Now()
	}
}

// reply sends a message after the configured memory latency, via a
// pooled task so steady-state replies schedule zero new closures.
func (d *Directory) reply(dst int, m network.Msg) {
	var t *replyTask
	if n := len(d.replyFree); n > 0 {
		t = d.replyFree[n-1]
		d.replyFree = d.replyFree[:n-1]
	} else {
		t = &replyTask{d: d}
		t.run = t.fire
	}
	t.dst, t.m = dst, m
	d.k.After(d.cfg.Latency, t.run)
}
