package cache

import (
	"fmt"
	"testing"

	"weakorder/internal/mem"
	"weakorder/internal/network"
	"weakorder/internal/sim"
)

// lossyNet drops the first transmission of every distinct request-class
// message and delivers everything else: the harshest single-drop
// adversary, forcing every request through the retry protocol exactly
// once.
type lossyNet struct {
	network.Network
	seen  map[string]bool
	drops int
}

func (ln *lossyNet) Send(src, dst int, m network.Msg) {
	if Faultable(m) {
		key := fmt.Sprintf("%d->%d %#v", src, dst, m)
		if !ln.seen[key] {
			ln.seen[key] = true
			ln.drops++
			return
		}
	}
	ln.Network.Send(src, dst, m)
}

// dupNet delivers every request-class message twice, immediately.
type dupNet struct {
	network.Network
	dups int
}

func (dn *dupNet) Send(src, dst int, m network.Msg) {
	dn.Network.Send(src, dst, m)
	if Faultable(m) {
		dn.dups++
		dn.Network.Send(src, dst, m)
	}
}

// retryRig assembles caches and a directory over a wrapped network and
// pumps cycles with the machine's per-cycle CheckTimeouts polling.
type retryRig struct {
	k      *sim.Kernel
	caches []*Cache
	dir    *Directory
}

func newRetryRig(t *testing.T, n int, wrap func(network.Network) network.Network, cacheCfg func(*Config)) *retryRig {
	t.Helper()
	k := &sim.Kernel{}
	var net network.Network = network.NewGeneral(k, network.GeneralConfig{BaseLatency: 2, OrderedPairs: true, Seed: 1})
	if wrap != nil {
		net = wrap(net)
	}
	r := &retryRig{k: k}
	home := func(a mem.Addr) int { return n }
	r.dir = NewDirectory(k, net, DirConfig{ID: n, NumProcs: n, Latency: 1})
	for i := 0; i < n; i++ {
		cfg := Config{ID: i, Home: home, HitLatency: 1, RetryTimeout: 20}
		if cacheCfg != nil {
			cacheCfg(&cfg)
		}
		r.caches = append(r.caches, New(k, net, cfg))
	}
	return r
}

func (r *retryRig) settle(t *testing.T) {
	t.Helper()
	for cycle := uint64(1); cycle < 100_000; cycle++ {
		r.k.AdvanceTo(sim.Time(cycle))
		busy := r.k.Pending() > 0
		for _, c := range r.caches {
			c.CheckTimeouts(r.k.Now())
			if c.Busy() {
				busy = true
			}
		}
		if !busy && r.k.Pending() == 0 {
			return
		}
	}
	t.Fatal("retry rig did not settle within 100000 cycles")
}

func (r *retryRig) doOp(t *testing.T, c int, kind mem.Kind, addr mem.Addr, data mem.Value) mem.Value {
	t.Helper()
	var got mem.Value
	committed := false
	r.caches[c].Issue(&Req{
		Kind: kind, Addr: addr, Data: data,
		OnCommit: func(v mem.Value) { got = v; committed = true },
	})
	r.settle(t)
	if !committed {
		t.Fatalf("cache %d: %v on %d did not commit", c, kind, addr)
	}
	return got
}

// Every first transmission dropped: retry must recover every request —
// GetS, GetX, upgrades, and PutX writebacks — with no transaction lost.
func TestRetryRecoversFromDrops(t *testing.T) {
	var ln *lossyNet
	r := newRetryRig(t, 2, func(inner network.Network) network.Network {
		ln = &lossyNet{Network: inner, seen: make(map[string]bool)}
		return ln
	}, nil)
	r.dir.SetInit(1, 11)

	if v := r.doOp(t, 0, mem.Read, 1, 0); v != 11 {
		t.Fatalf("read = %d, want 11", v)
	}
	r.doOp(t, 0, mem.Write, 1, 77) // upgrade GetX, first copy dropped
	if v := r.doOp(t, 1, mem.Read, 1, 0); v != 77 {
		t.Fatalf("remote read = %d, want 77", v)
	}
	r.doOp(t, 1, mem.SyncRMW, 2, 1) // sync GetX on a fresh line

	if ln.drops == 0 {
		t.Fatal("lossy network dropped nothing; test is vacuous")
	}
	var retries uint64
	for _, c := range r.caches {
		retries += c.Stats().Retries
	}
	if retries == 0 {
		t.Fatal("no retries recorded despite drops")
	}
	for i, c := range r.caches {
		if c.Busy() {
			t.Fatalf("cache %d still busy after settle", i)
		}
	}
}

// Dropped PutX: the writeback retries until the WBAck arrives and the
// written-back value is not lost.
func TestRetryRecoversDroppedWriteback(t *testing.T) {
	var ln *lossyNet
	r := newRetryRig(t, 1, func(inner network.Network) network.Network {
		ln = &lossyNet{Network: inner, seen: make(map[string]bool)}
		return ln
	}, func(cfg *Config) { cfg.Capacity = 1 })

	r.doOp(t, 0, mem.Write, 4, 40)
	r.doOp(t, 0, mem.Write, 5, 50) // evicts line 4: PutX dropped, retried
	r.settle(t)
	if len(r.caches[0].WritebackLines()) != 0 {
		t.Fatalf("writeback still pending: %v", r.caches[0].WritebackLines())
	}
	if got := r.dir.MemValue(4); got != 40 {
		t.Fatalf("memory value after recovered writeback = %d, want 40", got)
	}
	if ln.drops == 0 {
		t.Fatal("no drops; test is vacuous")
	}
}

// Every request delivered twice: the directory must absorb duplicates
// without re-running state transitions (a re-run GetX would forward
// ownership to a requester that is no longer waiting and wedge or
// corrupt the line).
func TestDirectoryAbsorbsDuplicates(t *testing.T) {
	var dn *dupNet
	r := newRetryRig(t, 2, func(inner network.Network) network.Network {
		dn = &dupNet{Network: inner}
		return dn
	}, nil)
	r.dir.SetInit(3, 30)

	if v := r.doOp(t, 0, mem.Read, 3, 0); v != 30 {
		t.Fatalf("read = %d, want 30", v)
	}
	r.doOp(t, 1, mem.Write, 3, 99)                  // GetX ×2: one absorbed
	if v := r.doOp(t, 0, mem.Read, 3, 0); v != 99 { // fwd to owner path
		t.Fatalf("read after remote write = %d, want 99", v)
	}

	if dn.dups == 0 {
		t.Fatal("no duplicates injected; test is vacuous")
	}
	if d := r.dir.Stats().Duplicates; d == 0 {
		t.Fatal("directory absorbed no duplicates despite dupNet")
	}
	if ds, owner, _ := r.dir.State(3); ds != DirShared && !(ds == DirExclusive && owner >= 0) {
		t.Fatalf("directory line corrupted: state %v owner %d", ds, owner)
	}
}

// A retry of a request the directory had merely queued (busy line) is a
// spurious duplicate and must be absorbed, not double-served.
func TestSpuriousRetryOfQueuedRequestAbsorbed(t *testing.T) {
	r := newRetryRig(t, 3, nil, func(cfg *Config) {
		cfg.RetryTimeout = 4 // aggressive: fires while requests queue
	})
	// Three caches hammer the same line: transactions serialize at the
	// directory, so some requests queue long enough to time out.
	var done int
	for i := 0; i < 3; i++ {
		r.caches[i].Issue(&Req{
			Kind: mem.SyncRMW, Addr: 9, Data: mem.Value(i + 1),
			OnCommit: func(mem.Value) { done++ },
		})
	}
	r.settle(t)
	if done != 3 {
		t.Fatalf("%d/3 contended RMWs committed", done)
	}
	var retries uint64
	for _, c := range r.caches {
		retries += c.Stats().Retries
	}
	if retries == 0 {
		t.Skip("no spurious retries fired at this timing; invariant not exercised")
	}
	if r.dir.Stats().Duplicates == 0 {
		t.Fatal("spurious retries were re-served instead of absorbed")
	}
}
