// Package ctlplane is the campaign control plane: an embedded HTTP
// server exposing the live state of a running check campaign — progress,
// metrics, the violation feed, a partial summary, and pprof — without
// perturbing it.
//
// The server reads everything through the Source interface, whose
// methods must be safe for concurrent use and must not feed back into
// the campaign (internal/check's Publisher satisfies both: workers
// publish through atomic counters and an append-only feed, and every
// Source method aggregates copies). The /metrics and /summary payloads
// are additionally rate-limited: both are derived from the same
// aggregation pass, which runs on demand at most once per RefreshEvery
// with every request in between served from the cached bytes. An
// unscraped control plane therefore does no aggregation work at all,
// and a hammered one does a bounded amount per interval — which is what
// keeps the campaign's wall clock flat on a single-CPU host no matter
// how aggressively it is scraped.
//
// Endpoints:
//
//	GET /healthz            liveness probe ("ok")
//	GET /metrics            Prometheus text exposition (periodic snapshot)
//	GET /progress           one JSON progress object
//	GET /progress/stream    SSE: a progress object every RefreshEvery
//	GET /violations         NDJSON: every shrunk violation so far
//	GET /violations/stream  SSE: replay, then tail the violation feed
//	GET /summary            current partial campaign summary (JSON)
//	GET /debug/pprof/...    net/http/pprof
package ctlplane

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Source is the control plane's read-only view of a running campaign.
// Implementations must be safe for concurrent use; all methods are
// called from request handlers and the metrics refresher.
type Source interface {
	// ProgressJSON returns one JSON progress object (no trailing newline).
	ProgressJSON() []byte
	// SummaryJSON returns the current partial campaign summary as JSON.
	SummaryJSON() ([]byte, error)
	// MetricsText returns the current metrics in the Prometheus text
	// exposition format.
	MetricsText() ([]byte, error)
	// Violations returns marshaled violation JSON lines starting at index
	// from, the index to resume from, and a channel closed when the feed
	// grows.
	Violations(from int) (lines [][]byte, next int, changed <-chan struct{})
}

// Options tunes a Server.
type Options struct {
	// RefreshEvery caps how often the /metrics and /summary payloads are
	// rebuilt from the Source and sets the /progress/stream tick
	// (default 1s).
	RefreshEvery time.Duration
}

// Server is a running control plane. Close stops it.
type Server struct {
	src    Source
	srv    *http.Server
	ln     net.Listener
	every  time.Duration
	done   chan struct{}
	closed atomic.Bool

	// The /metrics and /summary cache: both payloads come from the same
	// Source aggregation, rebuilt on demand at most once per every. The
	// mutex also single-flights concurrent rebuilds, so N scrapers cost
	// one aggregation per interval, not N.
	mu      sync.Mutex
	built   time.Time
	metrics []byte
	summary []byte
	sumErr  error
}

// Serve binds addr (host:port; an empty host or port 0 work the usual
// ways) and serves the control plane until Close.
func Serve(addr string, src Source, opts Options) (*Server, error) {
	if src == nil {
		return nil, fmt.Errorf("ctlplane: nil Source")
	}
	every := opts.RefreshEvery
	if every <= 0 {
		every = time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctlplane: listen %s: %w", addr, err)
	}
	s := &Server{src: src, ln: ln, every: every, done: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", get(s.handleHealthz))
	mux.HandleFunc("/metrics", get(s.handleMetrics))
	mux.HandleFunc("/progress", get(s.handleProgress))
	mux.HandleFunc("/progress/stream", get(s.handleProgressStream))
	mux.HandleFunc("/violations", get(s.handleViolations))
	mux.HandleFunc("/violations/stream", get(s.handleViolationsStream))
	mux.HandleFunc("/summary", get(s.handleSummary))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}

	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down, closing active streams. Safe to call
// more than once.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.done)
	return s.srv.Close()
}

// refresh returns the cached /metrics and /summary payloads, rebuilding
// both from the Source when the cache is older than every. Callers get
// consistent bytes from one aggregation pass; a metrics failure keeps
// the previous exposition (scrapers prefer stale to empty), a summary
// failure is reported to the client.
func (s *Server) refresh() (metrics, summary []byte, sumErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.built) >= s.every || s.built.IsZero() {
		s.built = time.Now()
		if b, err := s.src.MetricsText(); err == nil {
			s.metrics = b
		}
		s.summary, s.sumErr = s.src.SummaryJSON()
	}
	return s.metrics, s.summary, s.sumErr
}

// get restricts a handler to GET/HEAD, answering anything else with 405.
func get(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	b, _, _ := s.refresh()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(b)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(s.src.ProgressJSON(), '\n'))
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	_, b, err := s.refresh()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *Server) handleViolations(w http.ResponseWriter, r *http.Request) {
	lines, _, _ := s.src.Violations(0)
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, l := range lines {
		w.Write(l)
		w.Write([]byte("\n"))
	}
}

// sseHeaders prepares w for a text/event-stream response and returns the
// flusher, or nil when the connection cannot stream.
func sseHeaders(w http.ResponseWriter) http.Flusher {
	f, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return nil
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	return f
}

// sseEvent writes one SSE data frame.
func sseEvent(w http.ResponseWriter, payload []byte) {
	w.Write([]byte("data: "))
	w.Write(payload)
	w.Write([]byte("\n\n"))
}

func (s *Server) handleProgressStream(w http.ResponseWriter, r *http.Request) {
	f := sseHeaders(w)
	if f == nil {
		return
	}
	t := time.NewTicker(s.every)
	defer t.Stop()
	for {
		sseEvent(w, s.src.ProgressJSON())
		f.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case <-t.C:
		}
	}
}

func (s *Server) handleViolationsStream(w http.ResponseWriter, r *http.Request) {
	f := sseHeaders(w)
	if f == nil {
		return
	}
	from := 0
	for {
		lines, next, changed := s.src.Violations(from)
		for _, l := range lines {
			sseEvent(w, l)
		}
		f.Flush() // flush headers on the first pass even with no lines
		from = next
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case <-changed:
		}
	}
}
