package ctlplane

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeSource is a hand-cranked Source: fixed progress/summary/metrics
// payloads plus a violation feed the test appends to.
type fakeSource struct {
	mu    sync.Mutex
	lines [][]byte
	ch    chan struct{}
}

func newFakeSource() *fakeSource {
	return &fakeSource{ch: make(chan struct{})}
}

func (f *fakeSource) ProgressJSON() []byte { return []byte(`{"donePrograms":7,"programs":10}`) }

func (f *fakeSource) SummaryJSON() ([]byte, error) { return []byte("{\n  \"sims\": 3\n}\n"), nil }

func (f *fakeSource) MetricsText() ([]byte, error) {
	return []byte("# TYPE weakorder_campaign_programs counter\nweakorder_campaign_programs 10\n"), nil
}

func (f *fakeSource) Violations(from int) ([][]byte, int, <-chan struct{}) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if from < 0 || from > len(f.lines) {
		from = len(f.lines)
	}
	return f.lines[from:], len(f.lines), f.ch
}

func (f *fakeSource) add(line string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lines = append(f.lines, []byte(line))
	close(f.ch)
	f.ch = make(chan struct{})
}

// startServer runs a control plane on an ephemeral port and tears it
// down with the test.
func startServer(t *testing.T, src Source) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", src, Options{RefreshEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func httpGet(t *testing.T, s *Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, string(b)
}

func TestEndpoints(t *testing.T) {
	src := newFakeSource()
	src.add(`{"kind":"sc-policy","programIndex":0}`)
	src.add(`{"kind":"definition2","programIndex":3}`)
	s := startServer(t, src)

	resp, body := httpGet(t, s, "/healthz")
	if resp.StatusCode != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", resp.StatusCode, body)
	}

	resp, body = httpGet(t, s, "/progress")
	if resp.StatusCode != 200 || body != `{"donePrograms":7,"programs":10}`+"\n" {
		t.Errorf("/progress = %d %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/progress Content-Type = %q", ct)
	}

	resp, body = httpGet(t, s, "/summary")
	if resp.StatusCode != 200 || body != "{\n  \"sims\": 3\n}\n" {
		t.Errorf("/summary = %d %q", resp.StatusCode, body)
	}

	resp, body = httpGet(t, s, "/metrics")
	if resp.StatusCode != 200 || !strings.Contains(body, "weakorder_campaign_programs 10") {
		t.Errorf("/metrics = %d %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}

	resp, body = httpGet(t, s, "/violations")
	want := `{"kind":"sc-policy","programIndex":0}` + "\n" + `{"kind":"definition2","programIndex":3}` + "\n"
	if resp.StatusCode != 200 || body != want {
		t.Errorf("/violations = %d %q, want %q", resp.StatusCode, body, want)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("/violations Content-Type = %q", ct)
	}

	resp, _ = httpGet(t, s, "/debug/pprof/goroutine?debug=1")
	if resp.StatusCode != 200 {
		t.Errorf("/debug/pprof/goroutine = %d", resp.StatusCode)
	}

	resp, _ = httpGet(t, s, "/no/such/endpoint")
	if resp.StatusCode != 404 {
		t.Errorf("unknown path = %d, want 404", resp.StatusCode)
	}

	post, err := http.Post("http://"+s.Addr()+"/progress", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Errorf("POST /progress = %d, want 405", post.StatusCode)
	}
}

// readSSE reads one complete SSE frame ("data: ...\n\n") and returns the
// payload.
func readSSE(t *testing.T, r *bufio.Reader) string {
	t.Helper()
	var payload string
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read SSE frame: %v (payload so far %q)", err, payload)
		}
		if line == "\n" { // blank line terminates the frame
			return payload
		}
		if !strings.HasPrefix(line, "data: ") {
			t.Fatalf("malformed SSE line %q", line)
		}
		payload += strings.TrimSuffix(strings.TrimPrefix(line, "data: "), "\n")
	}
}

func TestProgressStreamFraming(t *testing.T) {
	s := startServer(t, newFakeSource())
	resp, err := http.Get("http://" + s.Addr() + "/progress/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	for i := 0; i < 3; i++ {
		if got := readSSE(t, r); got != `{"donePrograms":7,"programs":10}` {
			t.Fatalf("frame %d = %q", i, got)
		}
	}
}

func TestViolationsStreamTail(t *testing.T) {
	src := newFakeSource()
	src.add(`{"n":0}`)
	s := startServer(t, src)
	resp, err := http.Get("http://" + s.Addr() + "/violations/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := bufio.NewReader(resp.Body)
	// Replay of the pre-existing entry first.
	if got := readSSE(t, r); got != `{"n":0}` {
		t.Fatalf("replay frame = %q", got)
	}
	// Then live tailing as the feed grows.
	for i := 1; i <= 3; i++ {
		src.add(fmt.Sprintf(`{"n":%d}`, i))
		if got, want := readSSE(t, r), fmt.Sprintf(`{"n":%d}`, i); got != want {
			t.Fatalf("tail frame = %q, want %q", got, want)
		}
	}
}

// TestCloseUnblocksStreams: Close must terminate active SSE handlers
// rather than hanging shutdown on an idle stream.
func TestCloseUnblocksStreams(t *testing.T) {
	s := startServer(t, newFakeSource())
	resp, err := http.Get("http://" + s.Addr() + "/violations/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan struct{})
	go func() {
		io.ReadAll(resp.Body) // returns when the server closes the stream
		close(done)
	}()
	s.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream still open 5s after Close")
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bogus", newFakeSource(), Options{}); err == nil {
		t.Error("Serve on a bogus address must error")
	}
	if _, err := Serve("127.0.0.1:0", nil, Options{}); err == nil {
		t.Error("Serve with a nil Source must error")
	}
}
