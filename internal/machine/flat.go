package machine

import (
	"fmt"

	"weakorder/internal/cache"
	"weakorder/internal/mem"
	"weakorder/internal/network"
	"weakorder/internal/sim"
)

// The no-cache configurations of Figure 1 (rows 1 and 2): processors talk
// directly to memory modules. Every operation executes atomically at its
// home module; an operation is committed and globally performed at the
// module (single copy), with the reply carrying the read value or the
// write acknowledgement.

// flatReq asks a memory module to perform one operation.
type flatReq struct {
	Tag  int
	Kind mem.Kind
	Addr mem.Addr
	Data mem.Value
}

// flatReply returns the result to the issuing processor.
type flatReply struct {
	Tag   int
	Value mem.Value
}

// flatModule is one memory module.
type flatModule struct {
	k   *sim.Kernel
	net network.Network
	id  int
	lat sim.Time
	mem map[mem.Addr]mem.Value
}

func newFlatModule(k *sim.Kernel, net network.Network, id int, lat sim.Time) *flatModule {
	m := &flatModule{k: k, net: net, id: id, lat: lat, mem: make(map[mem.Addr]mem.Value)}
	net.Attach(id, m.handle)
	return m
}

func (m *flatModule) handle(src int, msg network.Msg) {
	req, ok := msg.(flatReq)
	if !ok {
		panic(fmt.Sprintf("flat module %d: unexpected message %T", m.id, msg))
	}
	m.k.After(m.lat, func() {
		var v mem.Value
		switch req.Kind {
		case mem.Read, mem.SyncRead:
			v = m.mem[req.Addr]
		case mem.Write, mem.SyncWrite:
			m.mem[req.Addr] = req.Data
			v = req.Data
		case mem.SyncRMW:
			v = m.mem[req.Addr]
			m.mem[req.Addr] = req.Data
		}
		m.net.Send(m.id, src, flatReply{Tag: req.Tag, Value: v})
	})
}

// flatPort adapts the module protocol to the processor's MemPort.
type flatPort struct {
	k       *sim.Kernel
	net     network.Network
	id      int
	home    func(mem.Addr) int
	nextTag int
	pending map[int]*cache.Req
}

func newFlatPort(k *sim.Kernel, net network.Network, id int, home func(mem.Addr) int) *flatPort {
	p := &flatPort{k: k, net: net, id: id, home: home, pending: make(map[int]*cache.Req)}
	net.Attach(id, p.handle)
	return p
}

// Issue implements cpu.MemPort.
func (p *flatPort) Issue(r *cache.Req) {
	tag := p.nextTag
	p.nextTag++
	p.pending[tag] = r
	p.net.Send(p.id, p.home(r.Addr), flatReq{Tag: tag, Kind: r.Kind, Addr: r.Addr, Data: r.Data})
}

// Counter implements cpu.MemPort: every outstanding operation counts.
func (p *flatPort) Counter() int { return len(p.pending) }

// Busy implements cpu.MemPort.
func (p *flatPort) Busy() bool { return len(p.pending) > 0 }

func (p *flatPort) handle(src int, msg network.Msg) {
	rep, ok := msg.(flatReply)
	if !ok {
		panic(fmt.Sprintf("flat port %d: unexpected message %T", p.id, msg))
	}
	r, ok := p.pending[rep.Tag]
	if !ok {
		panic(fmt.Sprintf("flat port %d: stray reply tag %d", p.id, rep.Tag))
	}
	delete(p.pending, rep.Tag)
	if r.OnCommit != nil {
		r.OnCommit(rep.Value)
	}
	if r.OnGlobal != nil {
		r.OnGlobal()
	}
}
