package machine

import (
	"fmt"

	"weakorder/internal/cache"
	"weakorder/internal/mem"
	"weakorder/internal/network"
	"weakorder/internal/sim"
)

// The no-cache configurations of Figure 1 (rows 1 and 2): processors talk
// directly to memory modules. Every operation executes atomically at its
// home module; an operation is committed and globally performed at the
// module (single copy), with the reply carrying the read value or the
// write acknowledgement.

// Flat-model message kinds, in a range disjoint from the cache
// protocol's so a mixed trace is unambiguous. A request packs the
// operation kind into Flags and the tag into ReqID; the reply echoes
// the tag with the value.
const (
	msgFlatReq network.MsgKind = iota + 200
	msgFlatReply
)

func flatReq(tag int, kind mem.Kind, addr mem.Addr, data mem.Value) network.Msg {
	return network.Msg{Kind: msgFlatReq, Flags: uint8(kind), Addr: addr, Value: data, ReqID: uint64(tag)}
}

func flatReply(tag int, v mem.Value) network.Msg {
	return network.Msg{Kind: msgFlatReply, Value: v, ReqID: uint64(tag)}
}

// flatModule is one memory module.
type flatModule struct {
	k    *sim.Kernel
	net  network.Network
	id   int
	lat  sim.Time
	mem  map[mem.Addr]mem.Value
	free []*flatTask
}

// flatTask is one pooled in-flight module access: the kernel callback is
// allocated once per task and reused.
type flatTask struct {
	m   *flatModule
	src int
	msg network.Msg
	run func()
}

func (t *flatTask) fire() {
	m, src, req := t.m, t.src, t.msg
	m.free = append(m.free, t)
	var v mem.Value
	switch mem.Kind(req.Flags) {
	case mem.Read, mem.SyncRead:
		v = m.mem[req.Addr]
	case mem.Write, mem.SyncWrite:
		m.mem[req.Addr] = req.Value
		v = req.Value
	case mem.SyncRMW:
		v = m.mem[req.Addr]
		m.mem[req.Addr] = req.Value
	}
	m.net.Send(m.id, src, flatReply(int(req.ReqID), v))
}

func newFlatModule(k *sim.Kernel, net network.Network, id int, lat sim.Time) *flatModule {
	m := &flatModule{k: k, net: net, id: id, lat: lat, mem: make(map[mem.Addr]mem.Value)}
	net.Attach(id, m.handle)
	return m
}

// reset clears the module's memory for a fresh run on the same wiring.
func (m *flatModule) reset() { clear(m.mem) }

func (m *flatModule) handle(src int, msg network.Msg) {
	if msg.Kind != msgFlatReq {
		panic(fmt.Sprintf("flat module %d: unexpected message kind %d", m.id, msg.Kind))
	}
	var t *flatTask
	if n := len(m.free); n > 0 {
		t = m.free[n-1]
		m.free = m.free[:n-1]
	} else {
		t = &flatTask{m: m}
		t.run = t.fire
	}
	t.src, t.msg = src, msg
	m.k.After(m.lat, t.run)
}

// flatPort adapts the module protocol to the processor's MemPort.
type flatPort struct {
	k       *sim.Kernel
	net     network.Network
	id      int
	home    func(mem.Addr) int
	nextTag int
	pending map[int]*cache.Req
}

func newFlatPort(k *sim.Kernel, net network.Network, id int, home func(mem.Addr) int) *flatPort {
	p := &flatPort{k: k, net: net, id: id, home: home, pending: make(map[int]*cache.Req)}
	net.Attach(id, p.handle)
	return p
}

// reset clears outstanding state for a fresh run on the same wiring.
func (p *flatPort) reset() {
	p.nextTag = 0
	clear(p.pending)
}

// Issue implements cpu.MemPort.
func (p *flatPort) Issue(r *cache.Req) {
	tag := p.nextTag
	p.nextTag++
	p.pending[tag] = r
	p.net.Send(p.id, p.home(r.Addr), flatReq(tag, r.Kind, r.Addr, r.Data))
}

// Counter implements cpu.MemPort: every outstanding operation counts.
func (p *flatPort) Counter() int { return len(p.pending) }

// Busy implements cpu.MemPort.
func (p *flatPort) Busy() bool { return len(p.pending) > 0 }

func (p *flatPort) handle(src int, msg network.Msg) {
	if msg.Kind != msgFlatReply {
		panic(fmt.Sprintf("flat port %d: unexpected message kind %d", p.id, msg.Kind))
	}
	tag := int(msg.ReqID)
	r, ok := p.pending[tag]
	if !ok {
		panic(fmt.Sprintf("flat port %d: stray reply tag %d", p.id, tag))
	}
	delete(p.pending, tag)
	if r.OnCommit != nil {
		r.OnCommit(msg.Value)
	}
	if r.OnGlobal != nil {
		r.OnGlobal()
	}
}
