package machine

import (
	"testing"

	"weakorder/internal/gen"
	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/scmatch"
	"weakorder/internal/trace"
)

func snoopCfg(pol policy.Kind) Config {
	return Config{Policy: pol, Topology: TopoBus, Caches: true, Snoop: true}
}

func TestSnoopValidation(t *testing.T) {
	bad := Config{Policy: policy.SC, Topology: TopoNetwork, Caches: true, Snoop: true}
	if bad.Validate() == nil {
		t.Error("snoop on a network topology must be rejected")
	}
	bad2 := Config{Policy: policy.SC, Topology: TopoBus, Caches: false, Snoop: true}
	if bad2.Validate() == nil {
		t.Error("snoop without caches must be rejected")
	}
	if got := snoopCfg(policy.WODef2).Name(); got != "bus+snoop/WO-Def2" {
		t.Errorf("Name = %q", got)
	}
}

func TestSnoopSequentialSemantics(t *testing.T) {
	res := mustRun(t, litmus.CriticalSection(3, 2), snoopCfg(policy.WODef2), 3)
	p := litmus.CriticalSection(3, 2)
	counter, _ := p.AddrOf("counter")
	if got := res.Exec.Final[counter]; got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	if res.Stats.Snoop == nil || res.Stats.Snoop.Transactions == 0 {
		t.Error("snoop statistics missing")
	}
	if len(res.Stats.SnoopCaches) != 3 {
		t.Error("per-cache snoop statistics missing")
	}
}

func TestSnoopCoherenceInvariants(t *testing.T) {
	progs := []*progAlias{
		litmus.CriticalSection(3, 2),
		litmus.TestAndTAS(2, 2),
		litmus.Coherence(),
		litmus.Dekker(),
	}
	for _, p := range progs {
		for _, pol := range policy.All() {
			cfg := snoopCfg(pol)
			if cfg.Validate() != nil {
				continue
			}
			for seed := int64(0); seed < 3; seed++ {
				res, err := Run(p, cfg, seed)
				if err != nil {
					t.Fatalf("%s %v: %v", p.Name, pol, err)
				}
				if err := trace.CheckAll(res.Exec, p.Init); err != nil {
					t.Errorf("%s %v seed %d: %v", p.Name, pol, seed, err)
				}
			}
		}
	}
}

func TestSnoopSCAlwaysAppearsSC(t *testing.T) {
	progs := []*progAlias{
		litmus.Dekker(), litmus.MessagePassingRacy(), litmus.IRIW(), litmus.Coherence(),
	}
	for _, p := range progs {
		for seed := int64(0); seed < 5; seed++ {
			res := mustRun(t, p, snoopCfg(policy.SC), seed)
			if !appearsSC(t, p, res.Result) {
				t.Errorf("%s seed %d: SC snoopy machine produced a non-SC result", p.Name, seed)
			}
		}
	}
}

func TestSnoopWeaklyOrderedAppearsSCForDRF0(t *testing.T) {
	progs := []*progAlias{
		litmus.DekkerSync(),
		litmus.MessagePassing(),
		litmus.CriticalSection(2, 2),
		litmus.TestAndTAS(2, 2),
		litmus.Barrier(3),
		litmus.Figure3(),
	}
	for _, pol := range []policy.Kind{policy.WODef1, policy.WODef2, policy.WODef2RO} {
		for _, p := range progs {
			for seed := int64(0); seed < 4; seed++ {
				res := mustRun(t, p, snoopCfg(pol), seed)
				if !appearsSC(t, p, res.Result) {
					t.Errorf("%s on %v seed %d: DRF0 program must appear SC on the snoopy machine",
						p.Name, pol, seed)
				}
			}
		}
	}
}

func TestSnoopDefinition2OnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p := gen.RaceFree(gen.RaceFreeConfig{Procs: 2, Sections: 2}, seed)
		for _, pol := range []policy.Kind{policy.WODef1, policy.WODef2, policy.WODef2RO} {
			res, err := Run(p, snoopCfg(pol), seed*3+1)
			if err != nil {
				t.Fatalf("%s %v: %v", p.Name, pol, err)
			}
			m, err := scmatch.Matches(p, res.Result, scmatch.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if !m.OK {
				t.Errorf("%s on snoopy %v: result does not appear SC", p.Name, pol)
			}
		}
	}
}

func TestSnoopUnconstrainedViolatesDekker(t *testing.T) {
	saw := false
	for seed := int64(0); seed < 10 && !saw; seed++ {
		res := mustRun(t, litmus.Dekker(), snoopCfg(policy.Unconstrained), seed)
		if litmus.DekkerForbidden(res.Result) {
			saw = true
		}
	}
	if !saw {
		t.Error("unconstrained snoopy machine must exhibit the Figure 1 violation")
	}
}

func TestSnoopReserveRetries(t *testing.T) {
	// Figure 3 on the snoopy machine: the releaser's reserve bit forces
	// bus retries of the acquirer's TAS until the counter drains.
	p := litmus.Figure3()
	cfg := snoopCfg(policy.WODef2)
	cfg.BusLatency = 8 // writes queue long enough for the reserve to be set
	sawRetry := false
	for seed := int64(0); seed < 6 && !sawRetry; seed++ {
		res := mustRun(t, p, cfg, seed)
		if res.Stats.Snoop.Retries > 0 {
			sawRetry = true
		}
		if !appearsSC(t, p, res.Result) {
			t.Fatalf("seed %d: Figure 3 must appear SC", seed)
		}
	}
	if !sawRetry {
		t.Log("note: no reserve retries observed (timing-dependent); correctness still verified")
	}
}

func TestSnoopSmallCache(t *testing.T) {
	cfg := snoopCfg(policy.WODef2)
	cfg.CacheCapacity = 2
	// Touch more lines than the cache holds.
	b := program.NewBuilder("snoop-evict")
	th := b.Thread()
	const n = 6
	for i := 0; i < n; i++ {
		th.StoreImm(b.Var(string(rune('a'+i))), weakValue(i+1))
	}
	for i := 0; i < n; i++ {
		th.Load(0, b.Var(string(rune('a'+i))))
	}
	p := b.MustBuild()
	res := mustRun(t, p, cfg, 7)
	for i := 0; i < n; i++ {
		a, _ := p.AddrOf(string(rune('a' + i)))
		if got := res.Exec.Final[a]; got != weakValue(i+1) {
			t.Errorf("final [%c] = %d, want %d", 'a'+i, got, i+1)
		}
	}
	evicted := uint64(0)
	for _, cs := range res.Stats.SnoopCaches {
		evicted += cs.Evicted
	}
	if evicted == 0 {
		t.Error("expected evictions with a 2-line cache")
	}
}

func weakValue(i int) mem.Value { return mem.Value(i) }

// progAlias keeps the test tables tidy.
type progAlias = program.Program
