package machine

import (
	"testing"

	"weakorder/internal/gen"
	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/scmatch"
	"weakorder/internal/trace"
)

func TestMigrationPreservesResult(t *testing.T) {
	// The consumer thread of the message-passing program migrates to an
	// idle processor mid-spin; it must still observe 42, with operations
	// attributed to its logical thread id throughout.
	p := litmus.MessagePassing()
	data, _ := p.AddrOf("data")
	for _, pol := range []policy.Kind{policy.SC, policy.WODef1, policy.WODef2, policy.WODef2RO} {
		cfg := Config{
			Policy: pol, Topology: TopoNetwork, Caches: true,
			ExtraProcs: 1,
			Migrations: []Migration{{AtCycle: 15, From: 1, To: 2}},
		}
		for seed := int64(0); seed < 5; seed++ {
			res, err := Run(p, cfg, seed)
			if err != nil {
				t.Fatalf("%v seed %d: %v", pol, seed, err)
			}
			got := mem.Value(-1)
			for _, op := range res.Exec.Ops {
				if op.Proc == 1 && op.Kind == mem.Read && op.Addr == data {
					got = op.Got
				}
				if op.Proc > 1 {
					t.Fatalf("%v: operation attributed to physical processor %d, want logical thread ids", pol, op.Proc)
				}
			}
			if got != 42 {
				t.Errorf("%v seed %d: migrated consumer read %d, want 42", pol, seed, got)
			}
			if err := trace.CheckAll(res.Exec, p.Init); err != nil {
				t.Errorf("%v seed %d: %v", pol, seed, err)
			}
		}
	}
}

func TestMigrationAppearsSC(t *testing.T) {
	// A generated DRF0 program with a mid-run migration must still appear
	// sequentially consistent: the drain protocol (reads returned, writes
	// globally performed) preserves the Section 5.1 conditions.
	prog := gen.RaceFree(gen.RaceFreeConfig{Procs: 2, Sections: 2}, 3)
	cfg := Config{
		Policy: policy.WODef2, Topology: TopoNetwork, Caches: true,
		ExtraProcs: 1,
		Migrations: []Migration{{AtCycle: 40, From: 0, To: 2}},
	}
	for seed := int64(0); seed < 6; seed++ {
		res, err := Run(prog, cfg, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m, err := scmatch.Matches(prog, res.Result, scmatch.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !m.OK {
			t.Errorf("seed %d: migrated run does not appear SC:\n%v", seed, res.Result)
		}
	}
}

func TestMigrationChain(t *testing.T) {
	// Two successive migrations: thread 0 hops 0 -> 2 -> 0 is illegal (0
	// is retired), so hop 0 -> 2 then 2 -> 3.
	p := litmus.CriticalSection(2, 3)
	counter, _ := p.AddrOf("counter")
	cfg := Config{
		Policy: policy.WODef2, Topology: TopoNetwork, Caches: true,
		ExtraProcs: 2,
		Migrations: []Migration{
			{AtCycle: 30, From: 0, To: 2},
			{AtCycle: 90, From: 2, To: 3},
		},
	}
	res, err := Run(p, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Exec.Final[counter]; got != 6 {
		t.Errorf("counter = %d, want 6", got)
	}
}

func TestMigrationAfterThreadFinished(t *testing.T) {
	// A migration scheduled after the thread halts is a no-op.
	p := litmus.Dekker()
	cfg := Config{
		Policy: policy.SC, Topology: TopoBus, Caches: true,
		ExtraProcs: 1,
		Migrations: []Migration{{AtCycle: 1_000_000 - 1, From: 0, To: 2}},
	}
	cfg.MaxCycles = 1_100_000
	// Use a small cycle so it triggers while alive... actually schedule
	// late enough that the thread has halted: Dekker finishes in tens of
	// cycles, so AtCycle 500 is long after.
	cfg.Migrations[0].AtCycle = 500
	if _, err := Run(p, cfg, 1); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationValidation(t *testing.T) {
	p := litmus.Dekker()
	cfg := Config{
		Policy: policy.SC, Topology: TopoBus, Caches: true,
		Migrations: []Migration{{AtCycle: 10, From: 0, To: 9}},
	}
	if _, err := Run(p, cfg, 1); err == nil {
		t.Fatal("out-of-range migration target must be rejected")
	}
}

func TestMigrationWithReservedLineDrainsFirst(t *testing.T) {
	// Migrate the releasing processor of the Figure 3 scenario right
	// after its release: the drain must wait for the counter (the
	// reserve-clearing condition), and the result must stay correct.
	p := litmus.Figure3()
	x, _ := p.AddrOf("x")
	cfg := Config{
		Policy: policy.WODef2, Topology: TopoNetwork, Caches: true,
		NetBase: 40, NetJitter: 5,
		ExtraProcs: 1,
		Migrations: []Migration{{AtCycle: 100, From: 0, To: 2}},
	}
	for seed := int64(0); seed < 4; seed++ {
		res, err := Run(p, cfg, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := mem.Value(-1)
		for _, op := range res.Exec.Ops {
			if op.Proc == 1 && op.Kind == mem.Read && op.Addr == x {
				got = op.Got
			}
		}
		if got != 1 {
			t.Errorf("seed %d: P1 read x = %d, want 1", seed, got)
		}
	}
}
