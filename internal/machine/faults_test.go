package machine

import (
	"errors"
	"reflect"
	"testing"

	"weakorder/internal/faults"
	"weakorder/internal/gen"
	"weakorder/internal/litmus"
	"weakorder/internal/policy"
	"weakorder/internal/scmatch"
)

func faultCfg(plan faults.Plan) Config {
	return Config{
		Policy:   policy.WODef2,
		Topology: TopoNetwork,
		Caches:   true,
		Faults:   &plan,
	}
}

// Same (seed, plan) must replay byte-identically: same committed
// execution, same cycle count, same fault decisions in the same order.
func TestFaultsDeterministicReplay(t *testing.T) {
	p := gen.RaceFree(gen.RaceFreeConfig{
		Procs: 3, Locks: 2, SharedPerLock: 2, Sections: 2, OpsPerSection: 2,
	}, 5)
	cfg := faultCfg(faults.Severe())
	cfg.RecordFaultEvents = true

	a := mustRun(t, p, cfg, 42)
	b := mustRun(t, p, cfg, 42)
	if !reflect.DeepEqual(a.Result, b.Result) {
		t.Fatal("same seed+plan produced different results")
	}
	if a.Stats.Cycles != b.Stats.Cycles {
		t.Fatalf("same seed+plan produced different cycle counts: %d vs %d", a.Stats.Cycles, b.Stats.Cycles)
	}
	if *a.FaultStats != *b.FaultStats {
		t.Fatalf("same seed+plan produced different fault stats:\n%+v\n%+v", *a.FaultStats, *b.FaultStats)
	}
	if !reflect.DeepEqual(a.FaultEvents, b.FaultEvents) {
		t.Fatal("same seed+plan produced different fault event logs")
	}
	if a.FaultStats.Drops == 0 && a.FaultStats.Dups == 0 && a.FaultStats.Delays == 0 {
		t.Fatal("severe plan injected nothing; test is vacuous")
	}

	// A different machine seed must drive a different fault stream.
	diverged := false
	for seed := int64(43); seed < 48 && !diverged; seed++ {
		c := mustRun(t, p, cfg, seed)
		diverged = !reflect.DeepEqual(a.FaultEvents, c.FaultEvents)
	}
	if !diverged {
		t.Fatal("five different seeds replayed the identical fault event log")
	}
}

// Satellite 3b: with retry enabled, dropped requests are never lost —
// every faulted run of a DRF0 program completes and still appears SC
// (Definition 2 holds on the hardened protocol under faults).
func TestFaultsDropWithRetryNeverLosesRequests(t *testing.T) {
	shapes := []gen.RaceFreeConfig{
		{Procs: 2, Locks: 1, SharedPerLock: 2, Sections: 2, OpsPerSection: 2},
		{Procs: 3, Locks: 2, SharedPerLock: 1, Sections: 2, OpsPerSection: 2},
	}
	var drops, retries uint64
	for si, shape := range shapes {
		for seed := int64(0); seed < 8; seed++ {
			p := gen.RaceFree(shape, seed+int64(si)*37)
			res, err := Run(p, faultCfg(faults.Severe()), seed*13+1)
			if err != nil {
				t.Fatalf("%s seed %d under severe faults: %v", p.Name, seed, err)
			}
			m, err := scmatch.Matches(p, res.Result, scmatch.Config{})
			if err != nil {
				t.Fatalf("scmatch: %v", err)
			}
			if !m.OK {
				t.Errorf("%s seed %d: faulted run does not appear SC:\n%v", p.Name, seed, res.Result)
			}
			drops += res.FaultStats.Drops
			for _, cs := range res.Stats.Caches {
				retries += cs.Retries
			}
		}
	}
	if drops == 0 {
		t.Fatal("severe plan dropped nothing across 16 runs; test is vacuous")
	}
	if retries == 0 {
		t.Fatal("drops occurred but no retries fired; recovery untested")
	}
}

// Satellite 3c: with every request duplicated, directory state
// transitions are applied exactly once — program semantics are unchanged
// and the directory reports absorbed duplicates.
func TestFaultsDuplicationNeverDoubleApplies(t *testing.T) {
	plan := faults.Plan{Dup: 1}
	var absorbed uint64
	for seed := int64(0); seed < 6; seed++ {
		p := gen.RaceFree(gen.RaceFreeConfig{
			Procs: 2, Locks: 2, SharedPerLock: 2, Sections: 2, OpsPerSection: 2,
		}, seed)
		res, err := Run(p, faultCfg(plan), seed+3)
		if err != nil {
			t.Fatalf("%s seed %d under dup=1: %v", p.Name, seed, err)
		}
		m, err := scmatch.Matches(p, res.Result, scmatch.Config{})
		if err != nil {
			t.Fatalf("scmatch: %v", err)
		}
		if !m.OK {
			t.Errorf("%s seed %d: duplicated run does not appear SC:\n%v", p.Name, seed, res.Result)
		}
		if res.FaultStats.Dups == 0 {
			t.Fatalf("%s seed %d: dup=1 duplicated nothing", p.Name, seed)
		}
		for _, ds := range res.Stats.Dirs {
			absorbed += ds.Duplicates
		}
	}
	if absorbed == 0 {
		t.Fatal("directories absorbed no duplicates despite dup=1")
	}
}

// Protected message classes must be exempt: a plan that only drops would
// otherwise lose replies and wedge even with retry (retry re-requests,
// the directory absorbs the duplicate, and no new reply is generated for
// an already-served transaction id... unless replies are protected).
func TestFaultsNeverTouchReplies(t *testing.T) {
	cfg := faultCfg(faults.Plan{Drop: 0.5, MaxExtraDelay: 8})
	cfg.RecordFaultEvents = true
	p := litmus.MessagePassing()
	res := mustRun(t, p, cfg, 9)
	for _, ev := range res.FaultEvents {
		switch ev.Msg {
		case "GetS", "GetX", "SyncRead", "PutX", "":
		default:
			t.Fatalf("fault injected into protected message class %q: %v", ev.Msg, ev)
		}
	}
}

// With retry disabled (the deliberately broken protocol), a total-drop
// plan must wedge — and the watchdog must return a structured
// LivenessReport naming the stuck processors and lines, not an opaque
// string.
func TestBrokenRetryYieldsLivenessReport(t *testing.T) {
	plan := faults.Plan{Drop: 1, DisableRetry: true}
	cfg := faultCfg(plan)
	cfg.MaxCycles = 20_000
	p := litmus.MessagePassing()
	_, err := Run(p, cfg, 7)
	if err == nil {
		t.Fatal("total drop with retry disabled completed; expected a watchdog death")
	}
	var le *LivenessError
	if !errors.As(err, &le) {
		t.Fatalf("watchdog death is not a *LivenessError: %v", err)
	}
	r := le.Report
	if r.Cycles != 20_000 {
		t.Errorf("report cycles = %d, want 20000", r.Cycles)
	}
	if len(r.Procs) == 0 {
		t.Fatal("liveness report names no processors")
	}
	if len(r.Stalled()) == 0 {
		t.Error("liveness report shows no stalled processor despite total drop")
	}
	pending := false
	for _, lp := range r.Procs {
		if len(lp.Pending) > 0 || len(lp.Writebacks) > 0 {
			pending = true
		}
	}
	if !pending {
		t.Error("liveness report shows no pending lines despite dropped requests")
	}
	if r.FaultStats == nil || r.FaultStats.Drops == 0 {
		t.Error("liveness report carries no fault stats despite total drop")
	}
	if r.String() == "" || le.Error() == "" {
		t.Error("empty liveness rendering")
	}
}

// Retry exhaustion must surface in the report when requests keep dying.
func TestRetryExhaustionReported(t *testing.T) {
	plan := faults.Plan{Drop: 1}
	cfg := faultCfg(plan)
	cfg.MaxCycles = 400_000
	cfg.RetryTimeout = 16
	cfg.RetryMax = 3
	p := litmus.MessagePassing()
	_, err := Run(p, cfg, 11)
	var le *LivenessError
	if !errors.As(err, &le) {
		t.Fatalf("total drop did not produce a LivenessError: %v", err)
	}
	exhausted := false
	for _, lp := range le.Report.Procs {
		if len(lp.Exhausted) > 0 {
			exhausted = true
		}
	}
	if !exhausted {
		t.Error("no retry-exhausted lines in report despite RetryMax=3 under total drop")
	}
}

// Fault plans are rejected on configurations with no message layer to
// fault or no retry protocol to recover with.
func TestFaultConfigValidation(t *testing.T) {
	plan := faults.Mild()
	bad := []Config{
		{Policy: policy.SC, Topology: TopoNetwork, Caches: false, Faults: &plan},
		{Policy: policy.WODef2, Topology: TopoBus, Caches: true, Snoop: true, Faults: &plan},
		{Policy: policy.WODef2, Topology: TopoNetwork, Caches: true, Faults: &faults.Plan{Drop: 1.5}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated despite illegal fault setup", i)
		}
	}
	ok := faultCfg(faults.None())
	ok.Caches = false
	ok.Policy = policy.SC
	if err := ok.Validate(); err != nil {
		t.Errorf("disabled (None) plan rejected on no-cache config: %v", err)
	}
}
