package machine

import (
	"fmt"

	"weakorder/internal/cache"
	"weakorder/internal/cpu"
	"weakorder/internal/metrics"
	"weakorder/internal/network"
)

// procTrack returns processor i's timeline track, or nil when the
// timeline is off.
func (m *Machine) procTrack(i int) *metrics.Track {
	if i < len(m.procTracks) {
		return m.procTracks[i]
	}
	return nil
}

// netTelemetry builds the interconnect instruments (zero when metrics
// are off). With the directory protocol it also splits latency by
// protocol message class.
func (m *Machine) netTelemetry() network.Telemetry {
	if m.reg == nil {
		return network.Telemetry{}
	}
	tel := network.Telemetry{
		Latency:    m.reg.Histogram("net.latency", metrics.LatencyBounds),
		QueueDepth: m.reg.Histogram("net.queue_depth", metrics.DepthBounds),
	}
	if m.cfg.Caches && !m.cfg.Snoop {
		classes := make(map[string]*metrics.Histogram, 4)
		for _, c := range []string{"request", "reply", "forward", "ack"} {
			classes[c] = m.reg.Histogram("net.latency."+c, metrics.LatencyBounds)
		}
		tel.Classify = func(msg network.Msg) *metrics.Histogram {
			return classes[msgClass(msg)] // "" (unknown class) maps to nil
		}
	}
	return tel
}

// msgClass buckets directory-protocol traffic for the per-class latency
// histograms.
func msgClass(m network.Msg) string {
	switch m.Kind {
	case cache.MsgGetS, cache.MsgGetX, cache.MsgSyncRead, cache.MsgPutX:
		return "request"
	case cache.MsgData, cache.MsgOwnerData, cache.MsgDataEx, cache.MsgOwnerDataEx,
		cache.MsgSyncReadReply, cache.MsgMemAck, cache.MsgWBAck:
		return "reply"
	case cache.MsgInv, cache.MsgFwdGetS, cache.MsgFwdGetX, cache.MsgFwdSyncRead:
		return "forward"
	case cache.MsgInvAck, cache.MsgXferDone, cache.MsgSyncReadDone:
		return "ack"
	}
	return ""
}

// publishStats folds the run's aggregate statistics into the registry so
// the snapshot is self-contained: live histograms/spans were recorded
// during the run, and the component counters land here, at end of run,
// where publishing cannot interact with simulation.
func (m *Machine) publishStats(res *RunResult) {
	r := m.reg
	s := &res.Stats

	r.SetCounter("machine.cycles", s.Cycles)
	r.SetCounter("machine.fastforward.skips", m.ffSkips)
	r.SetCounter("machine.fastforward.cycles", m.ffCycles)

	for i := range s.Procs {
		p := &s.Procs[i]
		pre := fmt.Sprintf("cpu.%d.", i)
		for rn := 0; rn < cpu.NumReasons; rn++ {
			r.SetCounter(pre+"stall."+cpu.Reason(rn).MetricName(), p.Stall[rn])
		}
		r.SetCounter(pre+"stall_total", p.TotalStall())
		r.SetCounter(pre+"stall_sync", p.SyncStall())
		r.SetCounter(pre+"mem_ops", p.MemOps)
		r.SetCounter(pre+"sync_ops", p.SyncOps)
		r.SetCounter(pre+"forwards", p.Forwards)
	}

	for i := range s.Caches {
		c := &s.Caches[i]
		pre := fmt.Sprintf("cache.%d.", i)
		r.SetCounter(pre+"hits", c.Hits)
		r.SetCounter(pre+"misses", c.Misses)
		r.SetCounter(pre+"upgrades", c.Upgrades)
		r.SetCounter(pre+"sync_requests", c.SyncRequests)
		r.SetCounter(pre+"deferred_fwds", c.DeferredFwds)
		r.SetCounter(pre+"deferred_cycles", c.DeferredCycles)
		r.SetCounter(pre+"evictions", c.Evictions)
		r.SetCounter(pre+"writebacks", c.Writebacks)
		r.SetCounter(pre+"overflows", c.Overflows)
		r.SetCounter(pre+"invs_received", c.InvsReceived)
		r.SetCounter(pre+"retries", c.Retries)
		r.SetCounter(pre+"retry_exhausted", c.RetryExhausted)
	}

	for i := range s.Dirs {
		d := &s.Dirs[i]
		pre := fmt.Sprintf("dir.%d.", i)
		for name, n := range d.Requests {
			r.SetCounter(pre+"requests."+name, n)
		}
		r.SetCounter(pre+"forwards", d.Forwards)
		r.SetCounter(pre+"invalidations", d.Invalidations)
		r.SetCounter(pre+"duplicates", d.Duplicates)
		r.Gauge(pre + "queued_max").Set(int64(d.QueuedMax))
	}

	if m.net != nil {
		r.SetCounter("net.messages", s.Net.Messages)
		r.SetCounter("net.total_latency", s.Net.TotalLatency)
		r.SetCounter("net.undeliverable", s.Net.Undeliverable)
		r.Gauge("net.max_queued").Set(int64(s.Net.MaxQueued))
	}

	if s.Snoop != nil {
		r.SetCounter("snoop.transactions", s.Snoop.Transactions)
		r.SetCounter("snoop.retries", s.Snoop.Retries)
		r.SetCounter("snoop.mem_supplied", s.Snoop.MemSupplied)
		r.SetCounter("snoop.cache_supplied", s.Snoop.CacheSupplied)
		r.Gauge("snoop.max_queue").Set(int64(s.Snoop.MaxQueue))
		for i := range s.SnoopCaches {
			c := &s.SnoopCaches[i]
			pre := fmt.Sprintf("snoopcache.%d.", i)
			r.SetCounter(pre+"hits", c.Hits)
			r.SetCounter(pre+"misses", c.Misses)
			r.SetCounter(pre+"upgrades", c.Upgrades)
			r.SetCounter(pre+"evicted", c.Evicted)
		}
	}

	if res.FaultStats != nil {
		f := res.FaultStats
		r.SetCounter("faults.faultable", f.Faultable)
		r.SetCounter("faults.drops", f.Drops)
		r.SetCounter("faults.dups", f.Dups)
		r.SetCounter("faults.delays", f.Delays)
		r.SetCounter("faults.extra_delay_cycles", f.ExtraDelayCycles)
		r.SetCounter("faults.retries", f.Retries)
	}
}
