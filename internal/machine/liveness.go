package machine

import (
	"fmt"
	"strings"

	"weakorder/internal/faults"
	"weakorder/internal/mem"
)

// LivenessProc is one non-halted processor's state at watchdog time.
type LivenessProc struct {
	// Proc is the processor id.
	Proc int
	// State is "running" or "stalled: <reason>" (the front end's view).
	State string
	// Counter is the Section 5.3 outstanding-access counter.
	Counter int
	// Reserved lists the lines whose reserve bit the processor holds.
	Reserved []mem.Addr
	// Pending lists the lines with in-flight cache transactions (MSHRs).
	Pending []mem.Addr
	// Writebacks lists the lines with outstanding PutX writebacks.
	Writebacks []mem.Addr
	// Exhausted lists the lines whose transactions hit the retry bound
	// and gave up — the usual smoking gun under fault injection.
	Exhausted []mem.Addr
}

// LivenessDir is one directory's blocked state at watchdog time.
type LivenessDir struct {
	// Dir is the directory index (0-based).
	Dir int
	// Blocked lists the lines with pending transactions or queued
	// requests.
	Blocked []mem.Addr
	// QueueDepths holds, for each entry of Blocked, the number of
	// requests queued behind that line's pending transaction.
	QueueDepths []int
}

// LivenessReport is the structured outcome of a watchdog death: which
// processors stalled, on which lines, who holds reserve bits, and what
// the counters read — everything the opaque "watchdog after N cycles"
// error used to bury in a string.
type LivenessReport struct {
	// Machine names the configuration (Config.Name()).
	Machine string
	// Cycles is the watchdog bound that fired.
	Cycles uint64
	// Procs holds every non-halted processor, in id order.
	Procs []LivenessProc
	// Dirs holds every blocked directory, in index order.
	Dirs []LivenessDir
	// KernelPending is the number of undelivered simulator events.
	KernelPending int
	// FaultStats holds the fault injector's counters when a fault plan
	// was active (nil otherwise).
	FaultStats *faults.Stats
}

// Stalled returns the ids of processors that are not making progress.
func (r *LivenessReport) Stalled() []int {
	var out []int
	for _, p := range r.Procs {
		if strings.HasPrefix(p.State, "stalled") {
			out = append(out, p.Proc)
		}
	}
	return out
}

// String renders the report, one line per processor/directory.
func (r *LivenessReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "liveness report for %s after %d cycles:\n", r.Machine, r.Cycles)
	for _, p := range r.Procs {
		fmt.Fprintf(&b, "  P%d %s counter=%d", p.Proc, p.State, p.Counter)
		if len(p.Reserved) > 0 {
			fmt.Fprintf(&b, " reserved=%v", p.Reserved)
		}
		if len(p.Pending) > 0 {
			fmt.Fprintf(&b, " pending=%v", p.Pending)
		}
		if len(p.Writebacks) > 0 {
			fmt.Fprintf(&b, " writebacks=%v", p.Writebacks)
		}
		if len(p.Exhausted) > 0 {
			fmt.Fprintf(&b, " retry-exhausted=%v", p.Exhausted)
		}
		b.WriteByte('\n')
	}
	for _, d := range r.Dirs {
		fmt.Fprintf(&b, "  dir%d blocked lines:", d.Dir)
		for i, a := range d.Blocked {
			depth := 0
			if i < len(d.QueueDepths) {
				depth = d.QueueDepths[i]
			}
			fmt.Fprintf(&b, " %d(+%d queued)", a, depth)
		}
		b.WriteByte('\n')
	}
	if r.KernelPending > 0 {
		fmt.Fprintf(&b, "  kernel: %d undelivered events\n", r.KernelPending)
	}
	if r.FaultStats != nil {
		fmt.Fprintf(&b, "  faults: %v\n", *r.FaultStats)
	}
	return strings.TrimRight(b.String(), "\n")
}

// LivenessError wraps a LivenessReport as the error a wedged run
// returns; callers unwrap it with errors.As to distinguish a protocol
// liveness failure (a checkable violation) from configuration errors.
type LivenessError struct {
	Report *LivenessReport
}

// Error implements error.
func (e *LivenessError) Error() string {
	return fmt.Sprintf("machine %s: watchdog after %d cycles (deadlock or livelock)\n%s",
		e.Report.Machine, e.Report.Cycles, e.Report.String())
}

// liveness assembles the report at watchdog time.
func (m *Machine) liveness() *LivenessReport {
	r := &LivenessReport{
		Machine:       m.cfg.Name(),
		Cycles:        m.cfg.MaxCycles,
		KernelPending: m.kernel.Pending(),
	}
	for i, p := range m.procs {
		if p.Halted() {
			continue
		}
		lp := LivenessProc{Proc: i, State: "running"}
		if reason, stalled := p.StallReason(); stalled {
			lp.State = "stalled: " + reason.String()
		}
		lp.Counter = m.ports[i].Counter()
		if m.caches != nil {
			c := m.caches[i]
			lp.Reserved = c.ReservedLines()
			lp.Pending = c.PendingLines()
			lp.Writebacks = c.WritebackLines()
			lp.Exhausted = c.ExhaustedLines()
		}
		if m.snoopCaches != nil {
			lp.Reserved = m.snoopCaches[i].ReservedLines()
		}
		r.Procs = append(r.Procs, lp)
	}
	for i, d := range m.dirs {
		if lines := d.PendingLines(); len(lines) > 0 {
			ld := LivenessDir{Dir: i, Blocked: lines}
			for _, a := range lines {
				ld.QueueDepths = append(ld.QueueDepths, d.QueueDepth(a))
			}
			r.Dirs = append(r.Dirs, ld)
		}
	}
	if m.fnet != nil {
		st := m.fnet.FaultStats()
		r.FaultStats = &st
	}
	return r
}
