package machine

import (
	"testing"

	"weakorder/internal/gen"
	"weakorder/internal/litmus"
	"weakorder/internal/policy"
	"weakorder/internal/scmatch"
)

// TestDefinition2OnGeneratedPrograms is the repository's strongest
// validation of the paper's central claim: hardware built to the Section
// 5.1 conditions appears sequentially consistent to every program obeying
// DRF0. We generate lock-disciplined (hence DRF0-by-construction)
// programs and check that every run on every weakly ordered machine
// produces a result some idealized execution also produces.
func TestDefinition2OnGeneratedPrograms(t *testing.T) {
	shapes := []gen.RaceFreeConfig{
		{Procs: 2, Locks: 1, SharedPerLock: 2, Sections: 2, OpsPerSection: 2},
		{Procs: 3, Locks: 2, SharedPerLock: 1, Sections: 1, OpsPerSection: 2},
		{Procs: 2, Locks: 2, SharedPerLock: 2, Sections: 2, OpsPerSection: 1, TTAS: true},
	}
	policies := []policy.Kind{policy.WODef1, policy.WODef2, policy.WODef2RO}
	for si, shape := range shapes {
		for seed := int64(0); seed < 6; seed++ {
			p := gen.RaceFree(shape, seed+int64(si)*100)
			for _, pol := range policies {
				for _, topo := range []Topology{TopoBus, TopoNetwork} {
					cfg := Config{Policy: pol, Topology: topo, Caches: true}
					res, err := Run(p, cfg, seed*31+7)
					if err != nil {
						t.Fatalf("%s %s seed %d: %v", p.Name, cfg.Name(), seed, err)
					}
					m, err := scmatch.Matches(p, res.Result, scmatch.Config{})
					if err != nil {
						t.Fatalf("%s %s: scmatch: %v", p.Name, cfg.Name(), err)
					}
					if !m.OK {
						t.Errorf("%s on %s (seed %d): result does not appear SC:\n%v",
							p.Name, cfg.Name(), seed, res.Result)
					}
				}
			}
		}
	}
}

// TestHandoffPipelinesAppearSC runs the release/acquire pipeline
// generator (disciplined purely by flag pairs — no locks) on every
// weakly ordered machine including the snoopy substrate.
func TestHandoffPipelinesAppearSC(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		p := gen.Handoff(gen.HandoffConfig{Stages: 3, Items: 1}, seed)
		cfgs := []Config{
			{Policy: policy.WODef2, Topology: TopoNetwork, Caches: true},
			{Policy: policy.WODef2RO, Topology: TopoNetwork, Caches: true},
			{Policy: policy.WODef1, Topology: TopoBus, Caches: true},
			{Policy: policy.WODef2, Topology: TopoBus, Caches: true, Snoop: true},
		}
		for _, cfg := range cfgs {
			res, err := Run(p, cfg, seed*7+2)
			if err != nil {
				t.Fatalf("%s %s: %v", p.Name, cfg.Name(), err)
			}
			m, err := scmatch.Matches(p, res.Result, scmatch.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if !m.OK {
				t.Errorf("%s on %s: pipeline result does not appear SC", p.Name, cfg.Name())
			}
		}
	}
}

// TestRacyProgramsTerminate checks the machines stay live (no deadlock,
// no watchdog) on undisciplined programs, even though their results need
// not appear SC.
func TestRacyProgramsTerminate(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := gen.Racy(gen.RacyConfig{Procs: 3, Vars: 3, OpsPerProc: 6}, seed)
		for _, pol := range []policy.Kind{policy.Unconstrained, policy.WODef1, policy.WODef2, policy.WODef2RO} {
			cfg := Config{Policy: pol, Topology: TopoNetwork, Caches: true}
			if _, err := Run(p, cfg, seed); err != nil {
				t.Errorf("%s %v seed %d: %v", p.Name, pol, seed, err)
			}
		}
	}
}

// TestWeakMachinesCanViolateSCOnRacyPrograms demonstrates the converse:
// the weak machines are genuinely weaker than SC — some racy program
// exhibits a non-SC result on them (message passing through a data flag).
func TestWeakMachinesCanViolateSCOnRacyPrograms(t *testing.T) {
	// Dekker is the paper's own Figure 1 example: reads bypassing
	// buffered writes produce the forbidden (0,0) outcome on the weakly
	// ordered machines too — weak ordering promises SC appearance only to
	// DRF0 programs, and Dekker races.
	p := litmus.Dekker()
	for _, pol := range []policy.Kind{policy.Unconstrained, policy.WODef1, policy.WODef2, policy.WODef2RO} {
		cfg := Config{Policy: pol, Topology: TopoNetwork, Caches: true, NetJitter: 20}
		saw := false
		for seed := int64(0); seed < 50 && !saw; seed++ {
			res, err := Run(p, cfg, seed)
			if err != nil {
				t.Fatal(err)
			}
			if litmus.DekkerForbidden(res.Result) {
				saw = true
			}
		}
		if !saw {
			t.Errorf("%v produced no Dekker violation in 50 seeds — the weak machine should be observably weaker than SC on racy code", pol)
		}
	}
}
