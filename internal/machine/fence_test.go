package machine

import (
	"testing"

	"weakorder/internal/cpu"
	"weakorder/internal/ideal"
	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/program"
)

// TestFenceRestoresSCOnStoreBuffering: SB with a fence between each
// processor's write and read never exhibits the forbidden outcome, even
// on the unconstrained machine — the RP3 fence option the paper's
// related-work section describes.
func TestFenceRestoresSCOnStoreBuffering(t *testing.T) {
	p := litmus.SBFenced()
	for _, pol := range policy.All() {
		for _, topo := range []Topology{TopoBus, TopoNetwork} {
			for _, caches := range []bool{false, true} {
				cfg := Config{Policy: pol, Topology: topo, Caches: caches, NetJitter: 20}
				if cfg.Validate() != nil {
					continue
				}
				for seed := int64(0); seed < 10; seed++ {
					res, err := Run(p, cfg, seed)
					if err != nil {
						t.Fatalf("%s seed %d: %v", cfg.Name(), seed, err)
					}
					if litmus.DekkerForbidden(res.Result) {
						t.Errorf("%s seed %d: fence failed to forbid the SB outcome", cfg.Name(), seed)
					}
				}
			}
		}
	}
}

// TestFenceWithoutItStillViolates is the control: the same machine
// without the fence does exhibit the outcome.
func TestFenceWithoutItStillViolates(t *testing.T) {
	cfg := Config{Policy: policy.Unconstrained, Topology: TopoBus, Caches: true}
	saw := false
	for seed := int64(0); seed < 10 && !saw; seed++ {
		res, err := Run(litmus.SB(), cfg, seed)
		if err != nil {
			t.Fatal(err)
		}
		if litmus.DekkerForbidden(res.Result) {
			saw = true
		}
	}
	if !saw {
		t.Error("control: expected the violation without fences")
	}
}

// TestFenceAccumulatesStall: the fence's drain shows up in the stall
// accounting.
func TestFenceAccumulatesStall(t *testing.T) {
	b := program.NewBuilder("fence-stall")
	x := b.Var("x")
	th := b.Thread()
	th.StoreImm(x, 1)
	th.Fence()
	th.StoreImm(b.Var("y"), 2)
	p := b.MustBuild()

	cfg := Config{Policy: policy.WODef2, Topology: TopoNetwork, Caches: true, NetBase: 30}
	res, err := Run(p, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Procs[0].Stall[cpu.FenceWait] == 0 {
		t.Error("fence must accumulate FenceWait stall cycles with a slow write outstanding")
	}
}

// TestFenceIsNoOpOnIdealArchitecture: fences do not perturb idealized
// semantics or the DRF0 status of a program (they are not sync ops).
func TestFenceIsNoOpOnIdealArchitecture(t *testing.T) {
	fenced := litmus.SBFenced()
	plain := litmus.SB()
	// Same number of SC outcomes.
	of, err := outcomesOf(fenced)
	if err != nil {
		t.Fatal(err)
	}
	op, err := outcomesOf(plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(of) != len(op) {
		t.Errorf("fenced SB has %d SC outcomes, plain has %d", len(of), len(op))
	}
}

func outcomesOf(p *program.Program) (map[string]bool, error) {
	out := make(map[string]bool)
	_, err := ideal.Enumerate(p, ideal.EnumConfig{}, func(it *ideal.Interp) error {
		out[mem.ResultOf(it.Execution()).Key()] = true
		return nil
	})
	return out, err
}
