package machine

import (
	"errors"
	"fmt"
	"testing"

	"weakorder/internal/cache"
	"weakorder/internal/faults"
	"weakorder/internal/gen"
	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/program"
)

// cloneResult deep-copies the fields of a RunResult that alias
// machine-owned buffers (which the next Reset invalidates), so results
// from successive pooled runs can be compared side by side.
func cloneResult(r *RunResult) *RunResult {
	if r == nil {
		return nil
	}
	c := *r
	exec := *r.Exec
	exec.Ops = append([]mem.Op(nil), r.Exec.Ops...)
	c.Exec = &exec
	c.OpCycles = append([]uint64(nil), r.OpCycles...)
	return &c
}

// A pooled machine reset between runs must be indistinguishable from a
// freshly assembled one: same traces, commit cycles, results, registers,
// stats, and fault schedules — even after the machine has been dirtied
// by intervening runs of other programs and seeds, and even under a
// severe fault plan exercising retries, MSHR reuse, and timeouts.
func TestPooledMachineByteIdentical(t *testing.T) {
	progs := []*program.Program{
		litmus.Dekker(),
		litmus.MessagePassingBounded(),
		gen.RaceFree(gen.RaceFreeConfig{
			Procs: 3, Locks: 2, SharedPerLock: 2, Sections: 2, OpsPerSection: 2,
		}, 5),
	}
	sev := faults.Severe()
	cfgs := []Config{
		{Policy: policy.SC, Topology: TopoBus, Caches: true},
		{Policy: policy.WODef2, Topology: TopoNetwork, Caches: true},
		{Policy: policy.WODef2RO, Topology: TopoNetwork, Caches: true},
		{Policy: policy.SC, Topology: TopoNetwork, Caches: false},
		{Policy: policy.SC, Topology: TopoBus, Caches: false},
		{Policy: policy.WODef1, Topology: TopoNetwork, Caches: true, Faults: &sev},
		{Policy: policy.WODef2, Topology: TopoMesh, Caches: true},
		{Policy: policy.WODef2, Topology: TopoMesh, Caches: true,
			DirMode: cache.DirLimitedPtr, DirPointers: 2},
		{Policy: policy.WODef1, Topology: TopoMesh, Caches: true,
			DirMode: cache.DirCoarseVector, DirCoarseness: 2, Faults: &sev},
	}
	for _, cfg := range cfgs {
		pool := NewPool()
		for _, p := range progs {
			label := fmt.Sprintf("%s/%s", p.Name, cfg.Name())
			fresh := mustRun(t, p, cfg, 42)

			m, err := pool.Get(p, cfg, 42)
			if err != nil {
				t.Fatalf("%s: pool get: %v", label, err)
			}
			res, err := m.Run()
			if err != nil {
				t.Fatalf("%s: pooled run: %v", label, err)
			}
			first := cloneResult(res)

			// Dirty the pooled machine: same structural config (so the
			// pool hands back the same instance), different seed.
			if _, err := pool.RunPooled(p, cfg, 7); err != nil {
				t.Fatalf("%s: dirtying run: %v", label, err)
			}

			res, err = pool.RunPooled(p, cfg, 42)
			if err != nil {
				t.Fatalf("%s: reused run: %v", label, err)
			}
			second := cloneResult(res)

			assertIdentical(t, label+" (pooled vs fresh)", first, fresh)
			assertIdentical(t, label+" (reused vs fresh)", second, fresh)
		}
	}
}

// Per-run knobs (write-buffer depth, outstanding-write bound, retry
// tuning) may change between pooled runs; the reset machine must honor
// the new values exactly as a fresh build would.
func TestPooledMachineHonorsPerRunKnobs(t *testing.T) {
	p := litmus.CriticalSection(2, 2)
	base := Config{Policy: policy.WODef2, Topology: TopoNetwork, Caches: true}
	narrow := base
	narrow.WriteBuffer = 1
	narrow.MaxOutstandingWrites = 1

	pool := NewPool()
	if _, err := pool.RunPooled(p, base, 9); err != nil {
		t.Fatal(err)
	}
	res, err := pool.RunPooled(p, narrow, 9)
	if err != nil {
		t.Fatal(err)
	}
	got := cloneResult(res)
	fresh := mustRun(t, p, narrow, 9)
	assertIdentical(t, "narrow write buffer (pooled vs fresh)", got, fresh)
}

// A liveness (watchdog) death must produce the same structured report
// from a dirty pooled machine as from a fresh one: the fault plan is a
// per-run knob, so a total-drop no-retry plan after a healthy run is the
// acid test for injector and retry-state reset.
func TestPooledMachineLivenessIdentical(t *testing.T) {
	p := litmus.MessagePassingBounded()
	dead := faults.Plan{Drop: 1, DisableRetry: true}
	cfg := Config{
		Policy: policy.WODef2, Topology: TopoNetwork, Caches: true,
		Faults: &dead, MaxCycles: 50_000,
	}
	_, freshErr := Run(p, cfg, 3)
	var le *LivenessError
	if !errors.As(freshErr, &le) {
		t.Fatalf("total drop did not produce a LivenessError: %v", freshErr)
	}

	pool := NewPool()
	mild := faults.Mild()
	healthy := cfg
	healthy.Faults = &mild
	if _, err := pool.RunPooled(p, healthy, 3); err != nil {
		t.Fatalf("healthy pooled run: %v", err)
	}
	_, pooledErr := pool.RunPooled(p, cfg, 3)
	if !errors.As(pooledErr, &le) {
		t.Fatalf("pooled total drop did not produce a LivenessError: %v", pooledErr)
	}
	if freshErr.Error() != pooledErr.Error() {
		t.Errorf("liveness reports diverged:\n fresh  %v\n pooled %v", freshErr, pooledErr)
	}
}

// Reset must refuse structural mismatches, and the pool must fall back
// to full reassembly (without retaining the machine) for configurations
// that carry per-run observers.
func TestMachineResetCompatibility(t *testing.T) {
	p2 := litmus.Dekker()
	p3 := litmus.CriticalSection(3, 2)
	cfg := Config{Policy: policy.WODef2, Topology: TopoNetwork, Caches: true}
	m, err := New(p2, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Reset(p3, cfg, 1); err == nil {
		t.Error("Reset accepted a program with a different processor count")
	}
	bus := cfg
	bus.Topology = TopoBus
	if err := m.Reset(p2, bus, 1); err == nil {
		t.Error("Reset accepted a different topology")
	}
	sc := cfg
	sc.Policy = policy.SC
	if err := m.Reset(p2, sc, 1); err == nil {
		t.Error("Reset accepted a different policy (reserve wiring is structural)")
	}
	lim := cfg
	lim.DirMode = cache.DirLimitedPtr
	if err := m.Reset(p2, lim, 1); err == nil {
		t.Error("Reset accepted a different directory mode (sharer storage is structural)")
	}
	mesh := cfg
	mesh.Topology = TopoMesh
	if err := m.Reset(p2, mesh, 1); err == nil {
		t.Error("Reset accepted a mesh in place of the flat network")
	}
	withMetrics := cfg
	withMetrics.Metrics = true
	if err := m.Reset(p2, withMetrics, 1); err == nil {
		t.Error("Reset accepted a metrics-bearing config")
	}
	if err := m.Reset(p2, cfg, 2); err != nil {
		t.Errorf("Reset rejected a compatible config: %v", err)
	}

	pool := NewPool()
	res, err := pool.RunPooled(p2, withMetrics, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Error("fallback path dropped the metrics snapshot")
	}
	if len(pool.machines) != 0 {
		t.Errorf("pool retained %d non-poolable machines", len(pool.machines))
	}
}
