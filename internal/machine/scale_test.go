package machine

import (
	"fmt"
	"testing"

	"weakorder/internal/cache"
	"weakorder/internal/faults"
	"weakorder/internal/gen"
	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/scmatch"
	"weakorder/internal/workload"
)

// drfWorkloads returns DRF0 programs whose final memory state is the
// same in every sequentially consistent execution (counters incremented
// under mutual exclusion, flag handoffs with fixed last values), so the
// final state is invariant under any timing perturbation — the right
// equivalence for directory modes and topologies that legitimately
// change latencies.
func drfWorkloads() []*program.Program {
	return []*program.Program{
		workload.CriticalSection(4, 2),
		workload.TestAndTAS(3, 2),
		workload.Barrier(4),
		workload.ProducerConsumer(2, 2),
		workload.DataPerSync(3, 2, 2),
		workload.Fig3Scaled(6),
	}
}

// sumOverflows totals limited-pointer overflow events across directories.
func sumOverflows(res *RunResult) uint64 {
	var n uint64
	for i := range res.Stats.Dirs {
		n += res.Stats.Dirs[i].PtrOverflows
	}
	return n
}

// A limited-pointer directory that never overflows its pointer set is
// the exact same protocol as the full-map directory, so every litmus
// test and a generated racy/race-free mix must produce byte-identical
// runs: same traces, commit cycles, stats, and results.
func TestDirModeLimitedNoOverflowByteIdentical(t *testing.T) {
	progs := append(litmus.All(),
		gen.RaceFree(gen.RaceFreeConfig{
			Procs: 3, Locks: 2, SharedPerLock: 2, Sections: 2, OpsPerSection: 2,
		}, 11),
		gen.Racy(gen.RacyConfig{Procs: 3, Vars: 4, OpsPerProc: 4, SyncFraction: 4}, 12),
	)
	for _, pol := range []policy.Kind{policy.WODef1, policy.WODef2} {
		for _, p := range progs {
			full := Config{Policy: pol, Topology: TopoNetwork, Caches: true}
			limited := full
			limited.DirMode = cache.DirLimitedPtr
			limited.DirPointers = 8 // >= any sharer count in these programs
			label := fmt.Sprintf("%s/%s", p.Name, pol)

			want := mustRun(t, p, full, 21)
			got := mustRun(t, p, limited, 21)
			if n := sumOverflows(got); n != 0 {
				t.Fatalf("%s: %d pointer overflows with headroom for every sharer", label, n)
			}
			assertIdentical(t, label+" (limited vs full-map)", got, want)
		}
	}
}

// Overflowing limited-pointer and coarse-vector directories over-
// invalidate, so timing shifts — but coherence and weak ordering must
// survive: on the deterministic-final-state DRF workloads every mode
// must reach the full-map directory's final memory, and somewhere in
// the suite the limited configuration must actually overflow.
func TestDirModeOverflowFinalStateEquivalence(t *testing.T) {
	overflowed := false
	for _, p := range drfWorkloads() {
		base := Config{Policy: policy.WODef2, Topology: TopoNetwork, Caches: true}
		want := mustRun(t, p, base, 33)

		limited := base
		limited.DirMode = cache.DirLimitedPtr
		limited.DirPointers = 1
		coarse := base
		coarse.DirMode = cache.DirCoarseVector
		coarse.DirCoarseness = 2

		for _, mode := range []struct {
			name string
			cfg  Config
		}{{"limited1", limited}, {"coarse2", coarse}} {
			got := mustRun(t, p, mode.cfg, 33)
			if !finalStateEqual(want.Result, got.Result) {
				t.Errorf("%s/%s: final state diverged from full-map\n full    %v\n scaled  %v",
					p.Name, mode.name, want.Result.Final, got.Result.Final)
			}
			if mode.name == "limited1" && sumOverflows(got) > 0 {
				overflowed = true
			}
		}
	}
	if !overflowed {
		t.Error("single-pointer directory never overflowed on any workload — test exercises nothing")
	}
}

// finalStateEqual compares final memory over the union of touched
// addresses, defaulting absent entries to zero.
func finalStateEqual(a, b mem.Result) bool {
	for addr, v := range a.Final {
		if b.Final[addr] != v {
			return false
		}
	}
	for addr, v := range b.Final {
		if a.Final[addr] != v {
			return false
		}
	}
	return true
}

// On generated race-free programs the final state is timing-dependent
// (lock acquisition order picks the last writer), so the differential
// for overflowing directory modes is the DRF0 guarantee itself: the
// observed execution must still appear sequentially consistent.
func TestDirModeOverflowGeneratedAppearsSC(t *testing.T) {
	cfgs := gen.RaceFreeConfig{
		Procs: 6, Locks: 2, SharedPerLock: 2, Sections: 1, OpsPerSection: 2,
	}
	for seed := int64(1); seed <= 3; seed++ {
		p := gen.RaceFree(cfgs, seed)
		for _, mode := range []struct {
			name string
			cfg  Config
		}{
			{"limited2", Config{Policy: policy.WODef2, Topology: TopoMesh, Caches: true,
				DirMode: cache.DirLimitedPtr, DirPointers: 2}},
			{"coarse2", Config{Policy: policy.WODef2, Topology: TopoMesh, Caches: true,
				DirMode: cache.DirCoarseVector, DirCoarseness: 2}},
		} {
			res := mustRun(t, p, mode.cfg, seed)
			m, err := scmatch.Matches(p, res.Result, scmatch.Config{})
			if err != nil {
				t.Fatalf("%s/%s: scmatch: %v", p.Name, mode.name, err)
			}
			if !m.OK {
				t.Errorf("%s/%s: DRF0 program did not appear SC under overflowing directory", p.Name, mode.name)
			}
		}
	}
}

// The mesh is just another interconnect: under the same weak-ordering
// policy — and with the mild fault plan stressing the retry protocol —
// the DRF workloads must reach the same final state as the flat
// network, and a mesh run must be bit-reproducible across repeats.
func TestMeshVsFlatOutcomeEquivalence(t *testing.T) {
	mild := faults.Mild()
	for _, p := range drfWorkloads() {
		flat := Config{Policy: policy.WODef2, Topology: TopoNetwork, Caches: true, Faults: &mild}
		mesh := flat
		mesh.Topology = TopoMesh

		want := mustRun(t, p, flat, 5)
		got := mustRun(t, p, mesh, 5)
		if !finalStateEqual(want.Result, got.Result) {
			t.Errorf("%s: mesh final state diverged from flat network\n flat %v\n mesh %v",
				p.Name, want.Result.Final, got.Result.Final)
		}
		again := mustRun(t, p, mesh, 5)
		assertIdentical(t, p.Name+" (mesh repeat)", again, got)
	}
}

// The scaled-machine claim: once a pooled 256-processor machine has
// reached steady state, a whole run — reset, thousands of simulated
// cycles, drain — performs only the O(program) result-construction
// allocations, none proportional to cycles or processors. A single
// allocation per cycle anywhere in the stepping loop would exceed the
// budget hundreds of times over; fast-forward must not change the
// count (the slow path ticks every cycle, so it is the stronger half).
func TestMachineStepAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("256-proc alloc measurement")
	}
	prog := workload.Fig3Scaled(16)
	for _, ff := range []struct {
		name    string
		disable bool
	}{{"fastforward", false}, {"everycycle", true}} {
		t.Run(ff.name, func(t *testing.T) {
			cfg := Config{
				Policy: policy.WODef2, Topology: TopoMesh, Caches: true,
				ExtraProcs:         256 - prog.NumThreads(),
				DisableFastForward: ff.disable,
			}
			pool := NewPool()
			var cycles uint64
			for i := 0; i < 3; i++ { // warm pool, traces, free lists
				res, err := pool.RunPooled(prog, cfg, 9)
				if err != nil {
					t.Fatal(err)
				}
				cycles = res.Stats.Cycles
			}
			allocs := testing.AllocsPerRun(5, func() {
				if _, err := pool.RunPooled(prog, cfg, 9); err != nil {
					t.Fatal(err)
				}
			})
			t.Logf("256 procs, %d cycles: %.1f allocs/run", cycles, allocs)
			if budget := float64(cycles) / 4; allocs > budget {
				t.Errorf("steady-state run allocated %.1f times (budget %.0f for %d cycles): stepping loop is allocating",
					allocs, budget, cycles)
			}
		})
	}
}
