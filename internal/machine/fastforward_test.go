package machine

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"weakorder/internal/faults"
	"weakorder/internal/gen"
	"weakorder/internal/litmus"
	"weakorder/internal/policy"
	"weakorder/internal/program"
)

// runBoth executes p under cfg with the idle-cycle fast-forward enabled
// and disabled and returns both results.
func runBoth(t *testing.T, p *program.Program, cfg Config, seed int64) (ff, naive *RunResult) {
	t.Helper()
	slow := cfg
	slow.DisableFastForward = true
	naiveRes, nErr := Run(p, slow, seed)
	ffRes, fErr := Run(p, cfg, seed)
	if (nErr == nil) != (fErr == nil) || (nErr != nil && nErr.Error() != fErr.Error()) {
		t.Fatalf("%s/%s seed %d: error diverged: naive %v, fast-forward %v",
			p.Name, cfg.Name(), seed, nErr, fErr)
	}
	if nErr != nil {
		return nil, nil
	}
	return ffRes, naiveRes
}

// assertIdentical requires the two runs to be byte-identical in every
// observable: trace, timing, final state, registers, and statistics.
func assertIdentical(t *testing.T, label string, ff, naive *RunResult) {
	t.Helper()
	if ff == nil || naive == nil {
		return
	}
	if got, want := fmt.Sprintf("%v", ff.Exec.Ops), fmt.Sprintf("%v", naive.Exec.Ops); got != want {
		t.Errorf("%s: trace diverged:\n fast-forward %s\n naive        %s", label, got, want)
	}
	if !reflect.DeepEqual(ff.OpCycles, naive.OpCycles) {
		t.Errorf("%s: commit cycles diverged:\n fast-forward %v\n naive        %v",
			label, ff.OpCycles, naive.OpCycles)
	}
	if got, want := ff.Result.Key(), naive.Result.Key(); got != want {
		t.Errorf("%s: result diverged: fast-forward %q, naive %q", label, got, want)
	}
	if !reflect.DeepEqual(ff.Regs, naive.Regs) {
		t.Errorf("%s: final registers diverged", label)
	}
	if !reflect.DeepEqual(ff.Stats, naive.Stats) {
		t.Errorf("%s: stats diverged:\n fast-forward %+v\n naive        %+v",
			label, ff.Stats, naive.Stats)
	}
	if !reflect.DeepEqual(ff.FaultStats, naive.FaultStats) {
		t.Errorf("%s: fault stats diverged", label)
	}
}

// TestFastForwardByteIdentical sweeps litmus and generated programs
// across the full configuration matrix: skipping idle cycles must not
// change a single observable of any run.
func TestFastForwardByteIdentical(t *testing.T) {
	progs := []*program.Program{
		litmus.Dekker(),
		litmus.MessagePassingBounded(),
		litmus.CriticalSection(3, 2),
		litmus.Barrier(3),
		gen.RaceFree(gen.RaceFreeConfig{
			Procs: 2, Locks: 1, SharedPerLock: 2, PrivatePerProc: 1,
			Sections: 1, OpsPerSection: 2, PrivateOps: 1,
		}, 11),
		gen.Racy(gen.RacyConfig{Procs: 3, Vars: 3, OpsPerProc: 5, SyncFraction: 4}, 11),
	}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, p := range progs {
		for _, cfg := range allConfigs() {
			for _, seed := range seeds {
				ff, naive := runBoth(t, p, cfg, seed)
				assertIdentical(t, fmt.Sprintf("%s/%s/seed%d", p.Name, cfg.Name(), seed), ff, naive)
			}
		}
	}
}

// TestFastForwardByteIdenticalFaults covers the retry-timeout path: the
// polled deadlines must fire on exactly the same cycles when the idle
// stretches between them are skipped.
func TestFastForwardByteIdenticalFaults(t *testing.T) {
	plans := []faults.Plan{faults.Mild(), faults.Severe()}
	progs := []*program.Program{
		litmus.CriticalSection(2, 2),
		litmus.MessagePassingBounded(),
	}
	for pi := range plans {
		plan := plans[pi]
		for _, p := range progs {
			for _, topo := range []Topology{TopoBus, TopoNetwork} {
				cfg := Config{
					Policy: policy.WODef2, Topology: topo, Caches: true,
					Faults: &plan, MaxCycles: 500_000,
				}
				for seed := int64(1); seed <= 3; seed++ {
					ff, naive := runBoth(t, p, cfg, seed)
					assertIdentical(t, fmt.Sprintf("%s/%s/plan%d/seed%d", p.Name, cfg.Name(), pi, seed), ff, naive)
				}
			}
		}
	}
}

// TestFastForwardWatchdogParity wedges the machine (fault plan with
// retries disabled drops a request permanently) and checks the watchdog
// fires at the same cycle with an identical liveness report either way.
func TestFastForwardWatchdogParity(t *testing.T) {
	plan := faults.Severe()
	plan.DisableRetry = true
	cfg := Config{
		Policy: policy.WODef2, Topology: TopoNetwork, Caches: true,
		Faults: &plan, MaxCycles: 20_000,
	}
	p := litmus.CriticalSection(2, 2)
	wedged := 0
	for seed := int64(1); seed <= 8; seed++ {
		slow := cfg
		slow.DisableFastForward = true
		_, nErr := Run(p, slow, seed)
		_, fErr := Run(p, cfg, seed)
		var nLive, fLive *LivenessError
		if errors.As(nErr, &nLive) != errors.As(fErr, &fLive) {
			t.Fatalf("seed %d: liveness divergence: naive %v, fast-forward %v", seed, nErr, fErr)
		}
		if nLive == nil {
			continue
		}
		wedged++
		if nErr.Error() != fErr.Error() {
			t.Errorf("seed %d: liveness report diverged:\n naive        %v\n fast-forward %v",
				seed, nErr, fErr)
		}
		if nLive.Report.Cycles != fLive.Report.Cycles {
			t.Errorf("seed %d: watchdog cycle diverged: naive %d, fast-forward %d",
				seed, nLive.Report.Cycles, fLive.Report.Cycles)
		}
	}
	if wedged == 0 {
		t.Skip("no seed wedged; watchdog parity unexercised")
	}
}
