// Package machine assembles full multiprocessor configurations — the four
// system classes of the paper's Figure 1 (shared bus or general network,
// with or without coherent caches) under each consistency policy — and
// runs programs on them, producing executions (in commit order), results
// (read values plus final memory), and detailed stall statistics.
package machine

import (
	"fmt"
	"math/rand"

	"weakorder/internal/cache"
	"weakorder/internal/cpu"
	"weakorder/internal/faults"
	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/network"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/sim"
	"weakorder/internal/snoop"
	"weakorder/internal/splitmix"
)

// Topology selects the interconnect class.
type Topology int

// Interconnect classes of Figure 1.
const (
	// TopoBus: shared bus — transactions globally serialized.
	TopoBus Topology = iota
	// TopoNetwork: general interconnection network — independent routing
	// with variable latency.
	TopoNetwork
	// TopoMesh: 2D mesh — deterministic XY routing, latency proportional
	// to hop distance, point-to-point FIFO. The scalable interconnect for
	// large processor counts.
	TopoMesh
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case TopoBus:
		return "bus"
	case TopoNetwork:
		return "network"
	case TopoMesh:
		return "mesh"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Config parameterizes a machine.
type Config struct {
	// Policy selects the consistency enforcement rules.
	Policy policy.Kind
	// Topology selects the interconnect.
	Topology Topology
	// Caches enables the coherent cache hierarchy; false gives the
	// no-cache rows of Figure 1 (processors talk to memory modules
	// directly). Weak-ordering policies require caches.
	Caches bool
	// Snoop selects the snoopy-bus MSI protocol (package snoop) instead
	// of the directory protocol; requires Caches and TopoBus. Reserved
	// lines NACK (bus-retry) other processors' transactions.
	Snoop bool
	// MemModules is the number of memory/directory modules (default: 2
	// for TopoNetwork, 1 for TopoBus). Addresses interleave modulo this.
	MemModules int
	// BusLatency is the per-message bus occupancy (default 3).
	BusLatency sim.Time
	// NetBase/NetJitter parameterize the general network (defaults 6/4).
	// Any positive jitter permits message reordering between endpoint
	// pairs; with caches the coherence protocol requires point-to-point
	// ordering, so jitter then varies latency while each (src,dst) pair
	// stays FIFO.
	NetBase   sim.Time
	NetJitter sim.Time
	// MeshHop is the per-hop router latency for TopoMesh (default 2);
	// NetBase doubles as the mesh's injection/ejection overhead. Mesh
	// latency is deterministic — NetJitter does not apply.
	MeshHop sim.Time
	// MemLatency is the directory/memory access time (default 4).
	MemLatency sim.Time
	// DirMode selects the directory's sharer-tracking scheme (default
	// cache.DirFullMap, the exact correctness reference). The scalable
	// modes (cache.DirLimitedPtr, cache.DirCoarseVector) keep bounded
	// per-line state and over-invalidate on overflow. Requires Caches.
	DirMode cache.DirMode
	// DirPointers is the pointer count for cache.DirLimitedPtr (default 4).
	DirPointers int
	// DirCoarseness is the processors-per-group size for
	// cache.DirCoarseVector (default 8).
	DirCoarseness int
	// CacheHit is the cache hit latency (default 1).
	CacheHit sim.Time
	// CacheCapacity bounds resident lines per cache (0 = unbounded).
	CacheCapacity int
	// WriteBuffer is the per-processor write buffer depth (default 8).
	WriteBuffer int
	// MaxOutstandingWrites bounds each processor's in-flight writes — the
	// lockup-free write parallelism (default 8).
	MaxOutstandingWrites int
	// MaxCycles is the deadlock watchdog (default 2,000,000). A watchdog
	// death returns a *LivenessError carrying a structured report.
	MaxCycles uint64
	// Faults, when non-nil and enabled, wraps the interconnect in the
	// deterministic fault injector (internal/faults) — request-class
	// coherence messages may be dropped, duplicated, or delayed — and
	// arms the caches' timeout/retry protocol. Requires Caches (the
	// no-cache ports have no retry protocol) and the directory protocol
	// (the snoopy bus has no message layer to fault).
	Faults *faults.Plan
	// RecordFaultEvents keeps the injector's DROP/DUP/DELAY/RETRY event
	// log in RunResult.FaultEvents for timeline rendering. Off by
	// default: campaigns don't pay the memory.
	RecordFaultEvents bool
	// RetryTimeout overrides the caches' request-retry timeout (default
	// 256 cycles when a fault plan is enabled, else retry is off). See
	// cache.Config.RetryTimeout.
	RetryTimeout sim.Time
	// RetryMax overrides the per-transaction resend bound (default 16).
	RetryMax int
	// ROUncachedTest switches WO-Def2+RO's read-only synchronization
	// reads from cached-shared copies to uncached remote value reads (an
	// ablation; see cache.Config.ROSyncUncached).
	ROUncachedTest bool
	// DisableFastForward forces the run loop to tick every cycle
	// individually instead of skipping idle stretches (cycles where
	// every processor is provably inert and no kernel event or cache
	// retry deadline is due). Fast-forward is semantics-preserving —
	// runs are byte-identical either way, which the differential tests
	// assert using this switch; it exists only for those tests and for
	// debugging.
	DisableFastForward bool
	// Metrics enables the telemetry registry: RunResult.Metrics carries a
	// deterministic snapshot of every counter, gauge, and histogram (see
	// internal/metrics). Off by default and free when off; enabling it
	// never perturbs the simulation — no RNG draws, no kernel events.
	Metrics bool
	// Timeline enables span/event recording: RunResult.Timeline carries
	// per-processor stall spans, per-directory pending-transaction spans,
	// and op-commit instants, exportable as Chrome trace_event JSON.
	// Independent of Metrics and equally perturbation-free.
	Timeline bool
	// ExtraProcs adds idle processors beyond the program's threads —
	// migration targets (Section 5.1's process re-scheduling).
	ExtraProcs int
	// Migrations schedules process re-scheduling: at (or after) the given
	// cycle, the thread running on processor From drains (write buffer
	// empty, counter zero — "all previous reads returned and all previous
	// writes globally performed") and resumes on the idle processor To.
	Migrations []Migration
}

// Migration re-schedules a thread onto another processor.
type Migration struct {
	// AtCycle is the earliest cycle the context switch may begin.
	AtCycle uint64
	// From is the processor currently running the thread.
	From int
	// To is the idle destination processor.
	To int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MemModules == 0 {
		switch c.Topology {
		case TopoNetwork:
			c.MemModules = 2
		case TopoMesh:
			c.MemModules = 4
		default:
			c.MemModules = 1
		}
	}
	if c.MeshHop == 0 {
		c.MeshHop = 2
	}
	if c.DirPointers == 0 {
		c.DirPointers = 4
	}
	if c.DirCoarseness == 0 {
		c.DirCoarseness = 8
	}
	if c.BusLatency == 0 {
		c.BusLatency = 3
	}
	if c.NetBase == 0 {
		c.NetBase = 6
	}
	if c.NetJitter == 0 {
		c.NetJitter = 4
	}
	if c.MemLatency == 0 {
		c.MemLatency = 4
	}
	if c.CacheHit == 0 {
		c.CacheHit = 1
	}
	if c.WriteBuffer == 0 {
		c.WriteBuffer = 8
	}
	if c.MaxOutstandingWrites == 0 {
		c.MaxOutstandingWrites = 8
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 2_000_000
	}
	if c.faultsEnabled() && !c.Faults.DisableRetry && c.RetryTimeout == 0 {
		// Generous relative to the worst fault-free round trip (base +
		// jitter + injected delay, twice, plus directory queueing):
		// premature retries are only absorbed duplicates, but a timeout
		// far too low would retry every queued request forever.
		c.RetryTimeout = 256
	}
	return c
}

// faultsEnabled reports whether a non-trivial fault plan is configured.
func (c Config) faultsEnabled() bool {
	return c.Faults != nil && c.Faults.Enabled()
}

// Validate rejects inconsistent configurations.
func (c Config) Validate() error {
	if c.Snoop {
		if !c.Caches {
			return fmt.Errorf("machine: Snoop requires Caches")
		}
		if c.Topology != TopoBus {
			return fmt.Errorf("machine: the snoopy protocol requires the bus topology")
		}
	}
	switch c.Policy {
	case policy.WODef1, policy.WODef2, policy.WODef2RO:
		if !c.Caches {
			return fmt.Errorf("machine: policy %v requires caches (reserve bits and counters live in the cache hierarchy)", c.Policy)
		}
	case policy.SC, policy.Unconstrained:
	default:
		return fmt.Errorf("machine: unknown policy %v", c.Policy)
	}
	if c.DirMode != cache.DirFullMap && !c.Caches {
		return fmt.Errorf("machine: directory mode %v requires Caches", c.DirMode)
	}
	if c.DirPointers < 0 || c.DirCoarseness < 0 {
		return fmt.Errorf("machine: DirPointers/DirCoarseness must be non-negative")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
		if c.faultsEnabled() {
			if !c.Caches {
				return fmt.Errorf("machine: fault injection requires Caches (the no-cache memory ports have no retry protocol)")
			}
			if c.Snoop {
				return fmt.Errorf("machine: fault injection requires the directory protocol (the snoopy bus has no message layer)")
			}
		}
	}
	return nil
}

// Name renders the configuration compactly, e.g. "bus+caches/WO-Def2".
// Non-default directory modes are spelled out ("mesh+caches-limited/..."),
// keeping the full-map names byte-identical to earlier releases.
func (c Config) Name() string {
	cc := "nocache"
	if c.Caches {
		cc = "caches"
		if c.DirMode != cache.DirFullMap {
			cc += "-" + c.DirMode.String()
		}
	}
	if c.Snoop {
		cc = "snoop"
	}
	return fmt.Sprintf("%v+%s/%v", c.Topology, cc, c.Policy)
}

// Stats aggregates a run's measurements.
type Stats struct {
	// Cycles is the total simulated time until full drain.
	Cycles uint64
	// Procs holds per-processor statistics.
	Procs []cpu.Stats
	// Caches holds per-cache statistics (nil without caches).
	Caches []cache.Stats
	// Dirs holds per-directory statistics (nil without caches).
	Dirs []cache.DirStats
	// Net holds interconnect statistics (zero under the snoopy protocol,
	// which uses the atomic bus in Snoop).
	Net network.Stats
	// Snoop holds snoopy-bus statistics (nil under the directory
	// protocol).
	Snoop *snoop.Stats
	// SnoopCaches holds per-cache snoopy statistics.
	SnoopCaches []snoop.CacheStats
}

// MaxSyncStall returns the largest per-processor synchronization stall.
func (s *Stats) MaxSyncStall() uint64 {
	var m uint64
	for i := range s.Procs {
		if v := s.Procs[i].SyncStall(); v > m {
			m = v
		}
	}
	return m
}

// TotalStall sums all processors' stall cycles.
func (s *Stats) TotalStall() uint64 {
	var t uint64
	for i := range s.Procs {
		t += s.Procs[i].TotalStall()
	}
	return t
}

// RunResult is the outcome of one simulation.
type RunResult struct {
	// Exec lists the committed memory operations in commit order plus the
	// final memory state.
	Exec *mem.Execution
	// Result is the observable outcome (Definition 2's "result").
	Result mem.Result
	// Regs holds each logical thread's final register file (indexed by
	// thread id), for litmus postcondition evaluation.
	Regs []program.RegFile
	// Stats holds the measurements.
	Stats Stats
	// OpCycles holds, for each entry of Exec.Ops, the cycle at which that
	// operation committed — the timeline axis for trace rendering.
	OpCycles []uint64
	// FaultStats holds the fault injector's counters when a fault plan was
	// active (nil otherwise).
	FaultStats *faults.Stats
	// FaultEvents holds the injector's event log when
	// Config.RecordFaultEvents was set.
	FaultEvents []faults.Event
	// Metrics holds the telemetry snapshot when Config.Metrics was set.
	Metrics *metrics.Snapshot
	// Timeline holds the recorded timeline when Config.Timeline was set.
	Timeline *metrics.Timeline
}

// CondHolds evaluates the program's postcondition (if any) against this
// run's final registers and memory; programs without a condition report
// false.
func (r *RunResult) CondHolds(p *program.Program) bool {
	if p.Cond == nil {
		return false
	}
	return p.Cond.Eval(r.Regs, r.Exec.Final)
}

// Machine is one assembled multiprocessor.
type Machine struct {
	cfg         Config
	prog        *program.Program
	kernel      *sim.Kernel
	rng         *rand.Rand
	net         network.Network
	rawNet      network.Network // the interconnect beneath any fault injector
	fnet        *faults.Net
	procs       []*cpu.Proc
	caches      []*cache.Cache
	dirs        []*cache.Directory
	snoopBus    *snoop.Bus
	snoopCaches []*snoop.Cache
	flats       []*flatModule
	ports       []cpu.MemPort
	trace       []mem.Op
	traceCycles []uint64
	// pendingMigrations is consumed front-to-back as cycles pass.
	pendingMigrations []Migration
	suspending        bool

	// order and swap are Run's arbitration-shuffle scratch, allocated
	// once so pooled machines run allocation-free.
	order []int
	swap  func(i, j int)

	// Telemetry (nil when Config.Metrics/Timeline are off; see
	// internal/metrics for why recording cannot perturb the run).
	reg        *metrics.Registry
	tl         *metrics.Timeline
	procTracks []*metrics.Track
	ffSkips    uint64 // fast-forward jumps taken
	ffCycles   uint64 // idle cycles skipped by fast-forward
}

// New assembles a machine for prog under cfg, seeding all randomized
// latencies from seed.
func New(prog *program.Program, cfg Config, seed int64) (*Machine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	nProcs := prog.NumThreads() + cfg.ExtraProcs
	m := &Machine{
		cfg:    cfg,
		prog:   prog,
		kernel: &sim.Kernel{},
		rng:    rand.New(rand.NewSource(seed ^ 0x5eed)),
	}
	if cfg.Metrics {
		m.reg = metrics.NewRegistry()
	}
	if cfg.Timeline {
		m.tl = metrics.NewTimeline()
		// Processors first, then directories: track registration order is
		// the exported row order.
		for i := 0; i < nProcs; i++ {
			m.procTracks = append(m.procTracks, m.tl.Track(fmt.Sprintf("proc %d", i)))
		}
	}

	if cfg.Snoop {
		m.snoopBus = snoop.NewBus(m.kernel, snoop.BusConfig{
			TransferLatency: cfg.BusLatency,
			MemLatency:      cfg.MemLatency,
		})
		for a, v := range prog.Init {
			m.snoopBus.SetInit(a, v)
		}
		for i := 0; i < nProcs; i++ {
			sc := snoop.NewCache(m.kernel, m.snoopBus, snoop.Config{
				HitLatency:   cfg.CacheHit,
				Capacity:     cfg.CacheCapacity,
				UseReserve:   cfg.Policy.UsesReserve(),
				ROSyncBypass: cfg.Policy.ROSyncBypass(),
			})
			m.snoopCaches = append(m.snoopCaches, sc)
			m.ports = append(m.ports, sc)
		}
		return m.finishProcs(prog, nProcs)
	}

	switch cfg.Topology {
	case TopoBus:
		m.net = network.NewBus(m.kernel, network.BusConfig{
			TransferLatency: cfg.BusLatency,
			Telemetry:       m.netTelemetry(),
		})
	case TopoNetwork:
		m.net = network.NewGeneral(m.kernel, network.GeneralConfig{
			BaseLatency: cfg.NetBase,
			Jitter:      cfg.NetJitter,
			// The directory protocol requires point-to-point FIFO; the
			// raw (no-cache) configuration exhibits Lamport's reordering.
			OrderedPairs: cfg.Caches,
			Seed:         seed,
			Telemetry:    m.netTelemetry(),
		})
	case TopoMesh:
		w, h := meshDims(nProcs + cfg.MemModules)
		m.net = network.NewMesh(m.kernel, network.MeshConfig{
			Width:       w,
			Height:      h,
			BaseLatency: cfg.NetBase,
			HopLatency:  cfg.MeshHop,
			Telemetry:   m.netTelemetry(),
		})
	default:
		return nil, fmt.Errorf("machine: unknown topology %v", cfg.Topology)
	}
	m.rawNet = m.net

	if cfg.faultsEnabled() {
		// Wrap the interconnect before any endpoint captures it, so every
		// component's sends pass through the injector. The fault stream is
		// derived from (not equal to) the machine seed, so fault decisions
		// do not correlate with network jitter.
		m.fnet = faults.New(m.kernel, m.net, *cfg.Faults,
			splitmix.Mix(uint64(seed)^0xfa17),
			faults.Hooks{
				Faultable: func(msg network.Msg) bool { return cache.Faultable(msg) },
				Describe:  func(msg network.Msg) string { return cache.MsgName(msg) },
				Record:    cfg.RecordFaultEvents,
			})
		m.net = m.fnet
	}

	home := func(a mem.Addr) int { return nProcs + int(a)%cfg.MemModules }

	if cfg.Caches {
		retryTimeout := cfg.RetryTimeout
		if cfg.Faults != nil && cfg.Faults.DisableRetry {
			retryTimeout = 0
		}
		for i := 0; i < cfg.MemModules; i++ {
			dcfg := cache.DirConfig{
				ID:         nProcs + i,
				NumProcs:   nProcs,
				Latency:    cfg.MemLatency,
				Mode:       cfg.DirMode,
				Pointers:   cfg.DirPointers,
				Coarseness: cfg.DirCoarseness,
				// Duplicate request-class messages exist only when the
				// interconnect is faulted or cache retries are armed; with
				// neither, skip the served-set bookkeeping so steady-state
				// request handling stays allocation-free.
				NoDedup: !cfg.faultsEnabled() && retryTimeout == 0,
			}
			if m.reg != nil {
				dcfg.QueueDepth = m.reg.Histogram(fmt.Sprintf("dir.%d.queue_depth", i), metrics.DepthBounds)
			}
			if m.tl != nil {
				dcfg.Track = m.tl.Track(fmt.Sprintf("dir %d", i))
			}
			d := cache.NewDirectory(m.kernel, m.net, dcfg)
			for a, v := range prog.Init {
				if home(a) == nProcs+i {
					d.SetInit(a, v)
				}
			}
			m.dirs = append(m.dirs, d)
		}
		for i := 0; i < nProcs; i++ {
			ccfg := cache.Config{
				ID:             i,
				Home:           home,
				HitLatency:     cfg.CacheHit,
				Capacity:       cfg.CacheCapacity,
				UseReserve:     cfg.Policy.UsesReserve(),
				ROSyncBypass:   cfg.Policy.ROSyncBypass(),
				ROSyncUncached: cfg.ROUncachedTest,
				RetryTimeout:   retryTimeout,
				RetryMax:       cfg.RetryMax,
			}
			if m.reg != nil {
				ccfg.ReserveHold = m.reg.Histogram(fmt.Sprintf("cache.%d.reserve_hold", i), metrics.HoldBounds)
				ccfg.DeferHold = m.reg.Histogram(fmt.Sprintf("cache.%d.defer_hold", i), metrics.HoldBounds)
				ccfg.RetryBackoff = m.reg.Histogram(fmt.Sprintf("cache.%d.retry_backoff", i), metrics.HoldBounds)
			}
			if m.fnet != nil {
				id := i
				ccfg.OnRetry = func(dst int, msg network.Msg, attempt int) {
					m.fnet.NoteRetry(id, dst, msg, attempt)
				}
			}
			c := cache.New(m.kernel, m.net, ccfg)
			m.caches = append(m.caches, c)
			m.ports = append(m.ports, c)
		}
	} else {
		for i := 0; i < cfg.MemModules; i++ {
			mod := newFlatModule(m.kernel, m.net, nProcs+i, cfg.MemLatency)
			for a, v := range prog.Init {
				if home(a) == nProcs+i {
					mod.mem[a] = v
				}
			}
			m.flats = append(m.flats, mod)
		}
		for i := 0; i < nProcs; i++ {
			m.ports = append(m.ports, newFlatPort(m.kernel, m.net, i, home))
		}
	}

	return m.finishProcs(prog, nProcs)
}

// meshDims picks near-square mesh dimensions for n endpoints: the
// smallest width w with w*w >= n, and the smallest height covering n at
// that width. 16 procs + 4 modules → 5x4; 256 + 4 → 17x16.
func meshDims(n int) (w, h int) {
	if n < 1 {
		n = 1
	}
	w = 1
	for w*w < n {
		w++
	}
	h = (n + w - 1) / w
	return w, h
}

// finishProcs builds the processors over the assembled ports and
// validates migrations.
func (m *Machine) finishProcs(prog *program.Program, nProcs int) (*Machine, error) {
	cfg := m.cfg
	for i := 0; i < nProcs; i++ {
		var th program.Thread
		if i < prog.NumThreads() {
			th = prog.Threads[i]
		} else {
			th = program.Thread{Name: fmt.Sprintf("idle%d", i)}
		}
		track := m.procTrack(i)
		p := cpu.New(m.kernel, cpu.Config{
			ID:                   i,
			ThreadID:             i,
			Policy:               cfg.Policy,
			WriteBufferSize:      cfg.WriteBuffer,
			MaxOutstandingWrites: cfg.MaxOutstandingWrites,
			Track:                track,
		}, th, m.ports[i], func(op mem.Op) {
			m.trace = append(m.trace, op)
			m.traceCycles = append(m.traceCycles, uint64(m.kernel.Now()))
			if track != nil {
				track.Mark(op.String(), m.kernel.Now())
			}
		})
		m.procs = append(m.procs, p)
	}
	for _, mg := range cfg.Migrations {
		if mg.From < 0 || mg.From >= nProcs || mg.To < 0 || mg.To >= nProcs || mg.From == mg.To {
			return nil, fmt.Errorf("machine: invalid migration %+v (have %d processors)", mg, nProcs)
		}
	}
	m.order = make([]int, nProcs)
	m.swap = func(i, j int) { m.order[i], m.order[j] = m.order[j], m.order[i] }
	return m, nil
}

// done reports whether all processors halted and every component drained.
func (m *Machine) done() bool {
	if len(m.pendingMigrations) > 0 {
		return false
	}
	for _, p := range m.procs {
		if !p.Halted() {
			return false
		}
	}
	for _, port := range m.ports {
		if port.Busy() {
			return false
		}
	}
	for _, d := range m.dirs {
		if !d.Idle() {
			return false
		}
	}
	if m.snoopBus != nil && !m.snoopBus.Idle() {
		return false
	}
	return m.kernel.Pending() == 0
}

// Run simulates to completion (or the watchdog) and returns the outcome.
// Each cycle, every front end ticks (in a seeded arbitration order), then
// every write buffer drains: reads dispatched this cycle reach the
// interconnect ahead of older buffered writes.
func (m *Machine) Run() (*RunResult, error) {
	m.pendingMigrations = append([]Migration(nil), m.cfg.Migrations...)
	order, swap := m.order, m.swap
	for i := range order {
		order[i] = i
	}
	for cycle := uint64(1); ; cycle++ {
		if m.done() {
			break
		}
		if cycle > m.cfg.MaxCycles {
			return nil, &LivenessError{Report: m.liveness()}
		}
		m.kernel.AdvanceTo(sim.Time(cycle))
		m.stepMigrations(cycle)
		m.rng.Shuffle(len(order), swap)
		for _, i := range order {
			m.procs[i].Tick()
			if err := m.procs[i].Err(); err != nil {
				return nil, err
			}
		}
		for _, i := range order {
			m.procs[i].Drain()
		}
		// Retry timeouts are polled, not kernel events: a timer event would
		// keep Pending() nonzero and wedge done()-detection.
		for _, c := range m.caches {
			c.CheckTimeouts(m.kernel.Now())
		}
		if m.net != nil {
			if err := m.net.Err(); err != nil {
				return nil, fmt.Errorf("machine %s: interconnect fault: %w", m.cfg.Name(), err)
			}
		}
		// Idle-cycle fast-forward: when every processor is provably inert
		// (cpu.Quiescent) nothing can change until the next kernel event
		// or cache retry deadline, so skip straight to the cycle before
		// it, replaying the per-cycle effects the skipped iterations
		// would have had — the arbitration shuffle's RNG draws and the
		// stall accounting — to keep runs byte-identical with the
		// one-cycle-at-a-time loop. Migration progress is per-cycle
		// stateful, so any pending migration disables skipping.
		if m.cfg.DisableFastForward || len(m.pendingMigrations) > 0 {
			continue
		}
		quiet := true
		for _, p := range m.procs {
			if !p.Quiescent() {
				quiet = false
				break
			}
		}
		if !quiet {
			continue
		}
		target := m.cfg.MaxCycles + 1 // wedged: skip to the watchdog
		if t, ok := m.kernel.NextEvent(); ok && uint64(t) < target {
			target = uint64(t)
		}
		for _, c := range m.caches {
			if t, ok := c.NextRetryDeadline(); ok && uint64(t) < target {
				target = uint64(t)
			}
		}
		if target <= cycle+1 || m.done() {
			continue
		}
		skipped := target - 1 - cycle
		m.ffSkips++
		m.ffCycles += skipped
		for n := skipped; n > 0; n-- {
			m.rng.Shuffle(len(order), swap)
		}
		for _, p := range m.procs {
			p.AddStallCycles(skipped)
		}
		m.kernel.AdvanceTo(sim.Time(target - 1))
		cycle = target - 1
	}

	exec := &mem.Execution{
		Ops:   m.trace,
		Final: m.finalState(),
		Procs: len(m.procs),
	}
	res := &RunResult{
		Exec:   exec,
		Result: mem.ResultOf(exec),
		Regs:   make([]program.RegFile, m.prog.NumThreads()),
	}
	for _, p := range m.procs {
		if fr, ok := p.FinalRegs(); ok && p.ThreadID() < len(res.Regs) {
			res.Regs[p.ThreadID()] = fr
		}
	}
	res.OpCycles = m.traceCycles
	res.Stats.Cycles = uint64(m.kernel.Now())
	for _, p := range m.procs {
		res.Stats.Procs = append(res.Stats.Procs, p.Stats())
	}
	for _, c := range m.caches {
		res.Stats.Caches = append(res.Stats.Caches, c.Stats())
	}
	for _, d := range m.dirs {
		res.Stats.Dirs = append(res.Stats.Dirs, d.Stats())
	}
	if m.net != nil {
		res.Stats.Net = m.net.Stats()
	}
	if m.snoopBus != nil {
		st := m.snoopBus.Stats()
		res.Stats.Snoop = &st
		for _, sc := range m.snoopCaches {
			res.Stats.SnoopCaches = append(res.Stats.SnoopCaches, sc.Stats())
		}
	}
	if m.fnet != nil {
		st := m.fnet.FaultStats()
		res.FaultStats = &st
		res.FaultEvents = m.fnet.Events()
	}
	if m.tl != nil {
		m.tl.Close(m.kernel.Now())
		res.Timeline = m.tl
	}
	if m.reg != nil {
		m.publishStats(res)
		res.Metrics = m.reg.Snapshot()
	}
	return res, nil
}

// finalState reads the final value of every program-visible address:
// a dirty cached copy wins over memory.
func (m *Machine) finalState() map[mem.Addr]mem.Value {
	out := make(map[mem.Addr]mem.Value)
	nProcs := len(m.procs)
	for _, a := range m.prog.Addresses() {
		if m.snoopBus != nil {
			v := m.snoopBus.MemValue(a)
			for _, sc := range m.snoopCaches {
				if dv, dirty := sc.Snoop(a); dirty {
					v = dv
					break
				}
			}
			out[a] = v
			continue
		}
		if m.cfg.Caches {
			v := m.dirs[int(a)%m.cfg.MemModules].MemValue(a)
			for _, c := range m.caches {
				if dv, dirty := c.Snoop(a); dirty {
					v = dv
					break
				}
			}
			out[a] = v
		} else {
			out[a] = m.flats[(nProcs+int(a)%m.cfg.MemModules)-nProcs].mem[a]
		}
	}
	return out
}

// stepMigrations drives the paper's context-switch protocol for the
// head pending migration: request suspension, wait until the source has
// drained (parked, counter zero, no outstanding transactions), then move
// the thread state to the destination.
func (m *Machine) stepMigrations(cycle uint64) {
	if len(m.pendingMigrations) == 0 {
		return
	}
	mg := m.pendingMigrations[0]
	if cycle < mg.AtCycle {
		return
	}
	src := m.procs[mg.From]
	if !m.suspending {
		src.RequestSuspend()
		m.suspending = true
	}
	drained := (src.Suspended() || src.Halted()) &&
		m.ports[mg.From].Counter() == 0 && !m.ports[mg.From].Busy()
	if !drained {
		return
	}
	if src.Halted() {
		// The thread finished before the switch: nothing to move.
		m.pendingMigrations = m.pendingMigrations[1:]
		m.suspending = false
		return
	}
	st := src.Export()
	src.Retire()
	if err := m.procs[mg.To].Install(st); err != nil {
		// The destination is busy: drop the migration rather than wedge
		// the machine (validated configurations do not hit this).
		panic(err)
	}
	m.pendingMigrations = m.pendingMigrations[1:]
	m.suspending = false
}

// Run is the convenience one-shot: assemble and run.
func Run(prog *program.Program, cfg Config, seed int64) (*RunResult, error) {
	m, err := New(prog, cfg, seed)
	if err != nil {
		return nil, err
	}
	return m.Run()
}
