package machine

import (
	"fmt"

	"weakorder/internal/cache"
	"weakorder/internal/cpu"
	"weakorder/internal/mem"
	"weakorder/internal/network"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/sim"
	"weakorder/internal/splitmix"
)

// Machine pooling: campaigns run millions of short simulations, and
// assembling the component graph (caches with their line maps,
// directories, network queues, kernel heap, processor state) dominated
// the allocation profile. A pooled machine is Reset between runs — every
// component rewinds in place, retaining its backing arrays, free lists,
// and arenas — so a steady-state campaign iteration allocates only what
// escapes into its RunResult.
//
// Reset is only legal between *structurally identical* configurations:
// the component graph (topology, cache hierarchy, processor and module
// counts) and every parameter baked into a component at construction
// (latencies, capacities, the policy's reserve/bypass wiring, fault-
// injector presence) must match. poolKey captures exactly that set;
// per-run knobs — seed, fault plan intensity, retry tuning, write-buffer
// depth, the watchdog, fast-forward — may differ freely between runs.

// poolKey is the structural fingerprint of a configuration: two configs
// with equal keys can share one pooled machine.
type poolKey struct {
	policy        policy.Kind
	topo          Topology
	caches        bool
	memModules    int
	busLatency    sim.Time
	netBase       sim.Time
	netJitter     sim.Time
	meshHop       sim.Time
	memLatency    sim.Time
	cacheHit      sim.Time
	capacity      int
	dirMode       cache.DirMode
	dirPointers   int
	dirCoarseness int
	roUncached    bool
	faults        bool
	nProcs        int
}

// key fingerprints an already-defaulted config for nProcs processors.
func (c Config) key(nProcs int) poolKey {
	return poolKey{
		policy:        c.Policy,
		topo:          c.Topology,
		caches:        c.Caches,
		memModules:    c.MemModules,
		busLatency:    c.BusLatency,
		netBase:       c.NetBase,
		netJitter:     c.NetJitter,
		meshHop:       c.MeshHop,
		memLatency:    c.MemLatency,
		cacheHit:      c.CacheHit,
		capacity:      c.CacheCapacity,
		dirMode:       c.DirMode,
		dirPointers:   c.DirPointers,
		dirCoarseness: c.DirCoarseness,
		roUncached:    c.ROUncachedTest,
		faults:        c.faultsEnabled(),
		nProcs:        nProcs,
	}
}

// poolable reports whether an already-defaulted config can be served by
// a pooled, resettable machine. Configurations carrying per-run
// observers (metrics, timeline, fault-event logs), the snoopy-bus
// hierarchy, or migrations fall back to full reassembly — they are the
// interactive/diagnostic paths, not the campaign hot loop.
func (c Config) poolable() bool {
	return !c.Snoop && !c.Metrics && !c.Timeline && !c.RecordFaultEvents &&
		len(c.Migrations) == 0
}

// Reset re-targets an assembled machine at prog under cfg and seed,
// reusing the component graph — caches, directories, network queues,
// kernel heap, message pools — instead of reconstructing it. cfg must be
// structurally identical to the machine's original configuration (equal
// poolKey) and poolable; per-run knobs may change. A Reset machine runs
// byte-identically to a freshly assembled one: traces, results, stats,
// fault schedules, and liveness reports are indistinguishable, which
// TestPooledMachineByteIdentical pins.
//
// The previous run's RunResult aliases machine-owned buffers (Exec.Ops
// and OpCycles); Reset invalidates it. Callers that outlive the next
// run must copy what they keep.
func (m *Machine) Reset(prog *program.Program, cfg Config, seed int64) error {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if err := prog.Validate(); err != nil {
		return err
	}
	if !cfg.poolable() {
		return fmt.Errorf("machine: config %s is not poolable", cfg.Name())
	}
	nProcs := prog.NumThreads() + cfg.ExtraProcs
	if got, want := cfg.key(nProcs), m.cfg.key(len(m.procs)); got != want {
		return fmt.Errorf("machine: config %s (%d procs) is structurally incompatible with pooled machine %s (%d procs)",
			cfg.Name(), nProcs, m.cfg.Name(), len(m.procs))
	}
	m.cfg = cfg
	m.prog = prog
	m.kernel.Reset()
	// Same stream as New's rand.New(rand.NewSource(seed ^ 0x5eed)): Seed
	// rewinds the shared source in place.
	m.rng.Seed(seed ^ 0x5eed)
	m.trace = m.trace[:0]
	m.traceCycles = m.traceCycles[:0]
	m.pendingMigrations = nil
	m.suspending = false
	m.ffSkips, m.ffCycles = 0, 0

	switch n := m.rawNet.(type) {
	case *network.General:
		n.Reset(seed)
	case *network.Bus:
		n.Reset()
	case *network.Mesh:
		n.Reset()
	}
	if m.fnet != nil {
		// Same derived stream as New: fault decisions stay uncorrelated
		// with network jitter.
		m.fnet.Reset(*cfg.Faults, splitmix.Mix(uint64(seed)^0xfa17))
	}

	home := func(a mem.Addr) int { return nProcs + int(a)%cfg.MemModules }
	if cfg.Caches {
		retryTimeout := cfg.RetryTimeout
		if cfg.Faults != nil && cfg.Faults.DisableRetry {
			retryTimeout = 0
		}
		for i, d := range m.dirs {
			d.Reset()
			d.SetNoDedup(!cfg.faultsEnabled() && retryTimeout == 0)
			for a, v := range prog.Init {
				if home(a) == nProcs+i {
					d.SetInit(a, v)
				}
			}
		}
		for _, c := range m.caches {
			c.Reset(retryTimeout, cfg.RetryMax)
		}
	} else {
		for i, mod := range m.flats {
			mod.reset()
			for a, v := range prog.Init {
				if home(a) == nProcs+i {
					mod.mem[a] = v
				}
			}
		}
		for _, port := range m.ports {
			if fp, ok := port.(*flatPort); ok {
				fp.reset()
			}
		}
	}

	for i, p := range m.procs {
		var th program.Thread
		if i < prog.NumThreads() {
			th = prog.Threads[i]
		} else {
			th = program.Thread{Name: fmt.Sprintf("idle%d", i)}
		}
		p.Reset(cpu.Config{
			ID:                   i,
			ThreadID:             i,
			Policy:               cfg.Policy,
			WriteBufferSize:      cfg.WriteBuffer,
			MaxOutstandingWrites: cfg.MaxOutstandingWrites,
		}, th)
	}
	return nil
}

// Pool reuses assembled machines across runs, one per structural
// configuration. It is not safe for concurrent use: campaign workers
// each hold their own Pool (see internal/check).
type Pool struct {
	machines map[poolKey]*Machine
}

// NewPool returns an empty machine pool.
func NewPool() *Pool { return &Pool{machines: make(map[poolKey]*Machine)} }

// Get returns a machine ready to Run prog under cfg and seed. Poolable
// configurations draw from (and stay in) the pool, reset in place;
// anything else is assembled fresh and not retained. A pooled machine's
// previous RunResult is invalidated by Get — results must be consumed
// (or copied) before the next Get with the same structural
// configuration.
func (p *Pool) Get(prog *program.Program, cfg Config, seed int64) (*Machine, error) {
	d := cfg.withDefaults()
	if !d.poolable() {
		return New(prog, cfg, seed)
	}
	key := d.key(prog.NumThreads() + d.ExtraProcs)
	if m, ok := p.machines[key]; ok {
		if err := m.Reset(prog, cfg, seed); err != nil {
			return nil, err
		}
		return m, nil
	}
	m, err := New(prog, cfg, seed)
	if err != nil {
		return nil, err
	}
	p.machines[key] = m
	return m, nil
}

// RunPooled is the pooled analogue of Run: fetch (or reset) a machine
// from the pool and run it. The result aliases pooled buffers — see
// Get.
func (p *Pool) RunPooled(prog *program.Program, cfg Config, seed int64) (*RunResult, error) {
	m, err := p.Get(prog, cfg, seed)
	if err != nil {
		return nil, err
	}
	return m.Run()
}
