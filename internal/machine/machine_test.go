package machine

import (
	"testing"

	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/scmatch"
)

// allConfigs returns every legal (topology, caches, policy) combination.
func allConfigs() []Config {
	var out []Config
	for _, topo := range []Topology{TopoBus, TopoNetwork} {
		for _, caches := range []bool{false, true} {
			for _, pol := range policy.All() {
				cfg := Config{Policy: pol, Topology: topo, Caches: caches}
				if cfg.Validate() != nil {
					continue
				}
				out = append(out, cfg)
			}
		}
	}
	return out
}

func mustRun(t *testing.T, p *program.Program, cfg Config, seed int64) *RunResult {
	t.Helper()
	res, err := Run(p, cfg, seed)
	if err != nil {
		t.Fatalf("%s seed %d: %v", cfg.Name(), seed, err)
	}
	return res
}

func appearsSC(t *testing.T, p *program.Program, r mem.Result) bool {
	t.Helper()
	m, err := scmatch.Matches(p, r, scmatch.Config{})
	if err != nil {
		t.Fatalf("scmatch: %v", err)
	}
	return m.OK
}

func TestSingleProcessorSequentialSemantics(t *testing.T) {
	b := program.NewBuilder("seq")
	x, y := b.Var("x"), b.Var("y")
	b.InitVar("y", 10)
	th := b.Thread()
	th.Load(program.R0, y) // 10
	th.AddImm(program.R0, program.R0, 5)
	th.Store(x, program.R0) // x = 15
	th.Load(program.R1, x)  // 15 (forwarded or from cache)
	th.AddImm(program.R1, program.R1, 1)
	th.Store(y, program.R1)        // y = 16
	th.TAS(program.R2, b.Var("l")) // 0
	p := b.MustBuild()

	for _, cfg := range allConfigs() {
		res := mustRun(t, p, cfg, 1)
		xa, _ := p.AddrOf("x")
		ya, _ := p.AddrOf("y")
		if res.Exec.Final[xa] != 15 || res.Exec.Final[ya] != 16 {
			t.Errorf("%s: final x=%d y=%d, want 15/16", cfg.Name(), res.Exec.Final[xa], res.Exec.Final[ya])
		}
		if got := len(res.Result.Reads); got != 3 {
			t.Errorf("%s: %d reads recorded, want 3", cfg.Name(), got)
		}
	}
}

func TestSCMachineAlwaysAppearsSC(t *testing.T) {
	progs := []*program.Program{
		litmus.Dekker(),
		litmus.DekkerSync(),
		litmus.MessagePassing(),
		litmus.MessagePassingRacy(),
		litmus.LoadBuffering(),
		litmus.IRIW(),
		litmus.Coherence(),
		litmus.CriticalSection(2, 2),
	}
	for _, topo := range []Topology{TopoBus, TopoNetwork} {
		for _, caches := range []bool{false, true} {
			cfg := Config{Policy: policy.SC, Topology: topo, Caches: caches}
			for _, p := range progs {
				for seed := int64(0); seed < 3; seed++ {
					res := mustRun(t, p, cfg, seed)
					if !appearsSC(t, p, res.Result) {
						t.Errorf("%s: SC hardware produced non-SC result on %s (seed %d):\n%v",
							cfg.Name(), p.Name, seed, res.Result)
					}
				}
			}
		}
	}
}

func TestWeaklyOrderedMachinesAppearSCForDRF0Programs(t *testing.T) {
	// The theorem (Definition 2 + Appendix B): hardware meeting the
	// Section 5.1 conditions appears sequentially consistent to DRF0
	// programs. Exercise every weakly ordered policy on every DRF0 litmus
	// program across many seeds.
	progs := []*program.Program{
		litmus.DekkerSync(),
		litmus.MessagePassing(),
		litmus.CriticalSection(2, 2),
		litmus.CriticalSection(3, 1),
		litmus.TestAndTAS(2, 2),
		litmus.Barrier(3),
		litmus.Figure3(),
	}
	for _, pol := range []policy.Kind{policy.WODef1, policy.WODef2, policy.WODef2RO} {
		for _, topo := range []Topology{TopoBus, TopoNetwork} {
			cfg := Config{Policy: pol, Topology: topo, Caches: true}
			for _, p := range progs {
				for seed := int64(0); seed < 5; seed++ {
					res := mustRun(t, p, cfg, seed)
					if !appearsSC(t, p, res.Result) {
						t.Errorf("%s: weakly ordered hardware violated SC appearance on DRF0 program %s (seed %d):\n%v",
							cfg.Name(), p.Name, seed, res.Result)
					}
				}
			}
		}
	}
}

func TestUnconstrainedViolatesSCOnDekker(t *testing.T) {
	// Figure 1: on every configuration the unconstrained hardware can
	// produce r0 == r1 == 0.
	for _, topo := range []Topology{TopoBus, TopoNetwork} {
		for _, caches := range []bool{false, true} {
			cfg := Config{Policy: policy.Unconstrained, Topology: topo, Caches: caches}
			violated := false
			for seed := int64(0); seed < 20 && !violated; seed++ {
				res := mustRun(t, litmus.Dekker(), cfg, seed)
				if litmus.DekkerForbidden(res.Result) {
					violated = true
				}
			}
			if !violated {
				t.Errorf("%s: expected at least one Figure 1 violation in 20 seeds", cfg.Name())
			}
		}
	}
}

func TestSCNeverViolatesDekker(t *testing.T) {
	for _, topo := range []Topology{TopoBus, TopoNetwork} {
		for _, caches := range []bool{false, true} {
			cfg := Config{Policy: policy.SC, Topology: topo, Caches: caches}
			for seed := int64(0); seed < 20; seed++ {
				res := mustRun(t, litmus.Dekker(), cfg, seed)
				if litmus.DekkerForbidden(res.Result) {
					t.Errorf("%s seed %d: SC hardware produced the forbidden Dekker outcome", cfg.Name(), seed)
				}
			}
		}
	}
}

func TestMessagePassingDelivery(t *testing.T) {
	// Under every weakly ordered policy the DRF0 handoff must deliver 42.
	p := litmus.MessagePassing()
	data, _ := p.AddrOf("data")
	for _, pol := range []policy.Kind{policy.SC, policy.WODef1, policy.WODef2, policy.WODef2RO} {
		cfg := Config{Policy: pol, Topology: TopoNetwork, Caches: pol != policy.SC}
		for seed := int64(0); seed < 10; seed++ {
			res := mustRun(t, p, cfg, seed)
			// P1's last read is the data read; find it in the trace.
			var got mem.Value
			found := false
			for _, op := range res.Exec.Ops {
				if op.Proc == 1 && op.Kind == mem.Read && op.Addr == data {
					got = op.Got
					found = true
				}
			}
			if !found || got != 42 {
				t.Errorf("%v seed %d: consumer read %d (found=%v), want 42", pol, seed, got, found)
			}
		}
	}
}

func TestCriticalSectionCounterCorrectUnderWeakOrdering(t *testing.T) {
	for _, pol := range []policy.Kind{policy.SC, policy.WODef1, policy.WODef2, policy.WODef2RO} {
		for procs := 2; procs <= 4; procs++ {
			p := litmus.CriticalSection(procs, 2)
			counter, _ := p.AddrOf("counter")
			cfg := Config{Policy: pol, Topology: TopoNetwork, Caches: true}
			if pol == policy.SC {
				cfg.Caches = true
			}
			for seed := int64(0); seed < 3; seed++ {
				res := mustRun(t, p, cfg, seed)
				want := mem.Value(procs * 2)
				if got := res.Exec.Final[counter]; got != want {
					t.Errorf("%v %dp seed %d: counter = %d, want %d", pol, procs, seed, got, want)
				}
			}
		}
	}
}

func TestTestAndTASCorrectUnderRefinedPolicy(t *testing.T) {
	p := litmus.TestAndTAS(3, 2)
	counter, _ := p.AddrOf("counter")
	for _, pol := range []policy.Kind{policy.WODef2, policy.WODef2RO} {
		cfg := Config{Policy: pol, Topology: TopoNetwork, Caches: true}
		for seed := int64(0); seed < 5; seed++ {
			res := mustRun(t, p, cfg, seed)
			if got := res.Exec.Final[counter]; got != 6 {
				t.Errorf("%v seed %d: counter = %d, want 6", pol, seed, got)
			}
		}
	}
}

func TestBarrierPublishesPreBarrierWrites(t *testing.T) {
	p := litmus.Barrier(3)
	for _, pol := range []policy.Kind{policy.WODef1, policy.WODef2, policy.WODef2RO} {
		cfg := Config{Policy: pol, Topology: TopoNetwork, Caches: true}
		for seed := int64(0); seed < 5; seed++ {
			res := mustRun(t, p, cfg, seed)
			// Each processor's post-barrier read of its left neighbor's
			// data must observe 100+neighbor.
			for _, op := range res.Exec.Ops {
				if op.Kind == mem.Read && op.Label != "" && len(op.Label) > 4 && op.Label[:4] == "data" {
					want := mem.Value(100 + int(op.Label[4]-'0'))
					if op.Got != want {
						t.Errorf("%v seed %d: %v read %d, want %d", pol, seed, op, op.Got, want)
					}
				}
			}
		}
	}
}

func TestCoherenceWriteSerialization(t *testing.T) {
	// Condition 2 of Section 5.1: all processors observe the writes to a
	// location in the same order, on every cached configuration and
	// policy (coherence is policy-independent here).
	p := litmus.Coherence()
	for _, pol := range policy.All() {
		cfg := Config{Policy: pol, Topology: TopoNetwork, Caches: true}
		if cfg.Validate() != nil {
			continue
		}
		for seed := int64(0); seed < 10; seed++ {
			res := mustRun(t, p, cfg, seed)
			for _, reader := range []int{1, 2} {
				r0 := res.Result.Reads[mem.OpID{Proc: reader, Index: 0}].Value
				r1 := res.Result.Reads[mem.OpID{Proc: reader, Index: 1}].Value
				if r0 == 2 && r1 == 1 {
					t.Errorf("%v seed %d: P%d observed x=2 then x=1 (write serialization violated)",
						pol, seed, reader)
				}
			}
		}
	}
}

func TestFigure3StallComparison(t *testing.T) {
	// The paper's Figure 3: under Definition 1 the releasing processor P0
	// stalls at the Unset until W(x) is globally performed; under the new
	// implementation P0 need never stall there (it proceeds at commit).
	p := litmus.Figure3()
	base := Config{Topology: TopoNetwork, Caches: true, NetBase: 40, NetJitter: 10}

	def1 := base
	def1.Policy = policy.WODef1
	res1 := mustRun(t, p, def1, 7)

	def2 := base
	def2.Policy = policy.WODef2
	res2 := mustRun(t, p, def2, 7)

	p0Def1 := res1.Stats.Procs[0].SyncStall()
	p0Def2 := res2.Stats.Procs[0].SyncStall()
	if p0Def2 >= p0Def1 {
		t.Errorf("P0 sync stall: Def1 %d cycles, Def2 %d cycles — Def2 must stall P0 less", p0Def1, p0Def2)
	}
	// P1 (the acquirer) stalls under both (its TAS cannot succeed until
	// the release is visible).
	if res2.Stats.Procs[1].SyncStall() == 0 {
		t.Error("P1 must stall on its TAS under Def2 as well")
	}
	// And both machines deliver the correct x.
	for _, res := range []*RunResult{res1, res2} {
		if !appearsSC(t, p, res.Result) {
			t.Error("Figure 3 run must appear SC")
		}
	}
}

func TestDef2SetsReserveAndDefersSync(t *testing.T) {
	// With a long write latency, P0's Unset commits while W(x) is
	// outstanding: the line must be reserved and P1's TAS deferred.
	p := litmus.Figure3()
	cfg := Config{Policy: policy.WODef2, Topology: TopoNetwork, Caches: true,
		NetBase: 60, NetJitter: 0}
	res := mustRun(t, p, cfg, 3)
	if res.Stats.Caches[0].DeferredFwds == 0 {
		t.Error("expected P1's sync request to be deferred by P0's reserve bit at least once")
	}
}

func TestWatchdogFiresOnLivelock(t *testing.T) {
	// A program that spins forever on a flag nobody sets must hit the
	// watchdog rather than hang.
	b := program.NewBuilder("spin-forever")
	f := b.Var("f")
	th := b.Thread()
	th.Label("spin")
	th.SyncLoad(program.R0, f)
	th.BeqImm(program.R0, 0, "spin")
	p := b.MustBuild()

	cfg := Config{Policy: policy.WODef2, Topology: TopoBus, Caches: true, MaxCycles: 5000}
	if _, err := Run(p, cfg, 1); err == nil {
		t.Fatal("expected watchdog error")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := Config{Policy: policy.WODef2, Caches: false}
	if bad.Validate() == nil {
		t.Error("weak ordering without caches must be rejected")
	}
	if _, err := Run(litmus.Dekker(), bad, 1); err == nil {
		t.Error("Run must reject invalid configs")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	p := litmus.CriticalSection(3, 2)
	cfg := Config{Policy: policy.WODef2, Topology: TopoNetwork, Caches: true}
	a := mustRun(t, p, cfg, 99)
	b := mustRun(t, p, cfg, 99)
	if !a.Result.Equal(b.Result) {
		t.Error("same seed must reproduce the same result")
	}
	if a.Stats.Cycles != b.Stats.Cycles {
		t.Errorf("same seed must reproduce the same cycle count (%d vs %d)", a.Stats.Cycles, b.Stats.Cycles)
	}
}

func TestStatsPopulated(t *testing.T) {
	res := mustRun(t, litmus.CriticalSection(2, 2),
		Config{Policy: policy.WODef2, Topology: TopoNetwork, Caches: true}, 5)
	if res.Stats.Cycles == 0 {
		t.Error("cycles must be positive")
	}
	if res.Stats.Net.Messages == 0 {
		t.Error("network must carry messages")
	}
	if len(res.Stats.Procs) != 2 || len(res.Stats.Caches) != 2 {
		t.Error("per-processor stats missing")
	}
	if res.Stats.Procs[0].MemOps == 0 || res.Stats.Procs[0].SyncOps == 0 {
		t.Error("op counts missing")
	}
}

func TestSmallCacheEvictionsAndWritebacks(t *testing.T) {
	// Touch more lines than the cache holds: evictions and writebacks
	// must occur and the program must still be correct.
	b := program.NewBuilder("evict")
	const n = 12
	th := b.Thread()
	for i := 0; i < n; i++ {
		th.StoreImm(b.Var(string(rune('a'+i))), mem.Value(i+1))
	}
	for i := 0; i < n; i++ {
		th.Load(program.Reg(1), b.Var(string(rune('a'+i))))
	}
	p := b.MustBuild()

	cfg := Config{Policy: policy.WODef2, Topology: TopoNetwork, Caches: true, CacheCapacity: 4}
	res := mustRun(t, p, cfg, 2)
	if res.Stats.Caches[0].Evictions == 0 || res.Stats.Caches[0].Writebacks == 0 {
		t.Errorf("expected evictions and writebacks with capacity 4: %+v", res.Stats.Caches[0])
	}
	for i := 0; i < n; i++ {
		a, _ := p.AddrOf(string(rune('a' + i)))
		if got := res.Exec.Final[a]; got != mem.Value(i+1) {
			t.Errorf("final [%c] = %d, want %d", 'a'+i, got, i+1)
		}
	}
}

func TestSharedDataEvictionWithTwoCaches(t *testing.T) {
	// Two processors stream over a shared read-mostly region with tiny
	// caches: exercises silent shared-line drops and stale-sharer
	// invalidation acks.
	b := program.NewBuilder("shared-evict")
	const n = 8
	for i := 0; i < n; i++ {
		b.InitVar(string(rune('a'+i)), mem.Value(i))
	}
	for t0 := 0; t0 < 2; t0++ {
		th := b.Thread()
		for round := 0; round < 2; round++ {
			for i := 0; i < n; i++ {
				a := b.Var(string(rune('a' + i)))
				th.Load(program.R0, a)
			}
		}
	}
	wr := b.Thread()
	for i := 0; i < n; i++ {
		wr.StoreImm(b.Var(string(rune('a'+i))), mem.Value(100+i))
	}
	p := b.MustBuild()

	cfg := Config{Policy: policy.WODef2, Topology: TopoNetwork, Caches: true, CacheCapacity: 3}
	res := mustRun(t, p, cfg, 11)
	for i := 0; i < n; i++ {
		a, _ := p.AddrOf(string(rune('a' + i)))
		if got := res.Exec.Final[a]; got != mem.Value(100+i) {
			t.Errorf("final [%c] = %d, want %d", 'a'+i, got, 100+i)
		}
	}
}

func TestMemModulesInterleaving(t *testing.T) {
	p := litmus.CriticalSection(2, 1)
	cfg := Config{Policy: policy.WODef2, Topology: TopoNetwork, Caches: true, MemModules: 4}
	res := mustRun(t, p, cfg, 1)
	counter, _ := p.AddrOf("counter")
	if got := res.Exec.Final[counter]; got != 2 {
		t.Errorf("counter = %d, want 2", got)
	}
	if len(res.Stats.Dirs) != 4 {
		t.Errorf("dirs = %d, want 4", len(res.Stats.Dirs))
	}
}
