package machine

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"weakorder/internal/faults"
	"weakorder/internal/litmus"
	"weakorder/internal/metrics"
	"weakorder/internal/policy"
	"weakorder/internal/program"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata")

// withTelemetry returns cfg with the metrics registry and the event
// timeline both enabled.
func withTelemetry(cfg Config) Config {
	cfg.Metrics = true
	cfg.Timeline = true
	return cfg
}

// assertSameObservables requires two runs to agree on every simulation
// observable. Unlike assertIdentical it says nothing about telemetry:
// the point is that the telemetry fields are the ONLY thing allowed to
// differ between the runs.
func assertSameObservables(t *testing.T, label string, a, b *RunResult) {
	t.Helper()
	if got, want := fmt.Sprintf("%v", a.Exec.Ops), fmt.Sprintf("%v", b.Exec.Ops); got != want {
		t.Errorf("%s: trace diverged:\n with    %s\n without %s", label, got, want)
	}
	if !reflect.DeepEqual(a.OpCycles, b.OpCycles) {
		t.Errorf("%s: commit cycles diverged", label)
	}
	if got, want := a.Result.Key(), b.Result.Key(); got != want {
		t.Errorf("%s: result diverged: with %q, without %q", label, got, want)
	}
	if !reflect.DeepEqual(a.Regs, b.Regs) {
		t.Errorf("%s: final registers diverged", label)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Errorf("%s: stats diverged:\n with    %+v\n without %+v", label, a.Stats, b.Stats)
	}
	if !reflect.DeepEqual(a.FaultStats, b.FaultStats) {
		t.Errorf("%s: fault stats diverged", label)
	}
}

// TestMetricsDoNotPerturb sweeps litmus programs across the whole
// configuration matrix and requires runs with telemetry enabled to be
// byte-identical to runs without: same trace, same timing, same final
// state, same statistics. Metrics must observe the simulation, never
// steer it.
func TestMetricsDoNotPerturb(t *testing.T) {
	progs := []*program.Program{
		litmus.Dekker(),
		litmus.MessagePassingBounded(),
		litmus.CriticalSection(2, 2),
	}
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, p := range progs {
		for _, cfg := range allConfigs() {
			for _, seed := range seeds {
				plain := mustRun(t, p, cfg, seed)
				metered := mustRun(t, p, withTelemetry(cfg), seed)
				label := fmt.Sprintf("%s/%s/seed%d", p.Name, cfg.Name(), seed)
				assertSameObservables(t, label, metered, plain)
				if metered.Metrics == nil {
					t.Errorf("%s: metrics enabled but no snapshot returned", label)
				}
				if metered.Timeline == nil {
					t.Errorf("%s: timeline enabled but none returned", label)
				}
				if plain.Metrics != nil || plain.Timeline != nil {
					t.Errorf("%s: telemetry returned on a run that did not ask for it", label)
				}
			}
		}
	}
}

// TestMetricsDoNotPerturbFaults repeats the invariant under the fault
// injector, where any accidental RNG draw by the instrumentation would
// shift every subsequent drop/dup/delay decision.
func TestMetricsDoNotPerturbFaults(t *testing.T) {
	plans := []faults.Plan{faults.Mild(), faults.Severe()}
	p := litmus.CriticalSection(2, 2)
	for pi := range plans {
		plan := plans[pi]
		for _, topo := range []Topology{TopoBus, TopoNetwork} {
			cfg := Config{
				Policy: policy.WODef2, Topology: topo, Caches: true,
				Faults: &plan, MaxCycles: 500_000,
			}
			for seed := int64(1); seed <= 3; seed++ {
				plain, pErr := Run(p, cfg, seed)
				metered, mErr := Run(p, withTelemetry(cfg), seed)
				label := fmt.Sprintf("%s/plan%d/seed%d", cfg.Name(), pi, seed)
				if (pErr == nil) != (mErr == nil) || (pErr != nil && pErr.Error() != mErr.Error()) {
					t.Fatalf("%s: error diverged: without %v, with %v", label, pErr, mErr)
				}
				if pErr != nil {
					continue
				}
				assertSameObservables(t, label, metered, plain)
			}
		}
	}
}

// scrubFastForward returns a copy of the snapshot without the
// fast-forward counters, which legitimately differ between a run that
// skips idle cycles and one that does not.
func scrubFastForward(s *metrics.Snapshot) *metrics.Snapshot {
	out := &metrics.Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     s.Gauges,
		Histograms: s.Histograms,
	}
	for k, v := range s.Counters {
		switch k {
		case "machine.fastforward.skips", "machine.fastforward.cycles":
			continue
		}
		out.Counters[k] = v
	}
	return out
}

// TestMetricsFastForwardByteIdentical re-runs the fast-forward parity
// sweep with telemetry enabled: skipping idle cycles must neither change
// the observables nor (modulo the fast-forward counters themselves) the
// exported snapshot or timeline.
func TestMetricsFastForwardByteIdentical(t *testing.T) {
	progs := []*program.Program{
		litmus.Dekker(),
		litmus.CriticalSection(2, 2),
	}
	for _, p := range progs {
		for _, cfg := range allConfigs() {
			mcfg := withTelemetry(cfg)
			ff, naive := runBoth(t, p, mcfg, 1)
			label := fmt.Sprintf("%s/%s", p.Name, cfg.Name())
			assertIdentical(t, label, ff, naive)
			if ff == nil {
				continue
			}
			ffJSON, err := scrubFastForward(ff.Metrics).JSON()
			if err != nil {
				t.Fatal(err)
			}
			naiveJSON, err := scrubFastForward(naive.Metrics).JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ffJSON, naiveJSON) {
				t.Errorf("%s: snapshot diverged under fast-forward:\n ff    %s\n naive %s",
					label, ffJSON, naiveJSON)
			}
			ffTrace, err := ff.Timeline.ChromeTrace()
			if err != nil {
				t.Fatal(err)
			}
			naiveTrace, err := naive.Timeline.ChromeTrace()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ffTrace, naiveTrace) {
				t.Errorf("%s: timeline diverged under fast-forward", label)
			}
		}
	}
}

// TestMetricsDeterministic runs the same (program, config, seed) twice
// and requires the exported snapshot, Prometheus text, and Chrome trace
// to be byte-identical — the property the exporters' sorted rendering
// exists to provide.
func TestMetricsDeterministic(t *testing.T) {
	progs := []*program.Program{litmus.Figure3(), litmus.Dekker()}
	for _, p := range progs {
		for _, cfg := range allConfigs() {
			mcfg := withTelemetry(cfg)
			a := mustRun(t, p, mcfg, 7)
			b := mustRun(t, p, mcfg, 7)
			label := fmt.Sprintf("%s/%s", p.Name, cfg.Name())
			aJSON, err := a.Metrics.JSON()
			if err != nil {
				t.Fatal(err)
			}
			bJSON, err := b.Metrics.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(aJSON, bJSON) {
				t.Errorf("%s: same seed, different snapshots", label)
			}
			if !bytes.Equal(a.Metrics.Prometheus(), b.Metrics.Prometheus()) {
				t.Errorf("%s: same seed, different Prometheus text", label)
			}
			aTrace, err := a.Timeline.ChromeTrace()
			if err != nil {
				t.Fatal(err)
			}
			bTrace, err := b.Timeline.ChromeTrace()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(aTrace, bTrace) {
				t.Errorf("%s: same seed, different timelines", label)
			}
		}
	}
}

// TestTimelineGolden pins the Chrome trace_event export of a fixed-seed
// Figure 3 run. Run with -update to rewrite the golden after an
// intentional exporter or protocol change.
func TestTimelineGolden(t *testing.T) {
	cfg := withTelemetry(Config{
		Policy: policy.WODef2, Topology: TopoNetwork, Caches: true,
	})
	res := mustRun(t, litmus.Figure3(), cfg, 1)
	got, err := res.Timeline.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "timeline_figure3_wodef2.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Chrome trace drifted from golden %s (re-run with -update if intentional):\n got  %s\n want %s",
			golden, got, want)
	}

	// The streaming writer must reproduce the golden byte-for-byte while
	// feeding the writer bounded per-event chunks — a regression back to
	// whole-trace buffering shows up as one write the size of the file.
	var rw chunkRecorder
	if err := res.Timeline.WriteChromeTrace(&rw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rw.buf.Bytes(), want) {
		t.Errorf("streamed Chrome trace differs from golden %s", golden)
	}
	if rw.maxChunk >= len(want)/4 {
		t.Errorf("largest single write = %d bytes of a %d-byte trace; exporter is buffering, not streaming",
			rw.maxChunk, len(want))
	}
}

// chunkRecorder captures streamed output and the largest single Write.
type chunkRecorder struct {
	buf      bytes.Buffer
	maxChunk int
}

func (w *chunkRecorder) Write(p []byte) (int, error) {
	if len(p) > w.maxChunk {
		w.maxChunk = len(p)
	}
	return w.buf.Write(p)
}
