package gen_test

import (
	"crypto/sha256"
	"encoding/hex"
	"reflect"
	"testing"

	"weakorder/internal/gen"
	"weakorder/internal/lang"
	"weakorder/internal/program"
)

// TestGeneratorsDeterministic checks the package's determinism contract:
// the same (config, seed) yields a byte-identical program, independent of
// call order and repetition.
func TestGeneratorsDeterministic(t *testing.T) {
	kinds := []struct {
		name string
		gen  func(seed int64) *program.Program
	}{
		{"racefree", func(s int64) *program.Program { return gen.RaceFree(gen.RaceFreeConfig{}, s) }},
		{"racefree-ttas", func(s int64) *program.Program {
			return gen.RaceFree(gen.RaceFreeConfig{Procs: 3, Locks: 1, TTAS: true}, s)
		}},
		{"handoff", func(s int64) *program.Program { return gen.Handoff(gen.HandoffConfig{}, s) }},
		{"handoff-wide", func(s int64) *program.Program {
			return gen.Handoff(gen.HandoffConfig{Stages: 4, Items: 3, Work: 2}, s)
		}},
		{"racy", func(s int64) *program.Program { return gen.Racy(gen.RacyConfig{}, s) }},
		{"racy-sync", func(s int64) *program.Program {
			return gen.Racy(gen.RacyConfig{Procs: 3, Vars: 2, SyncFraction: 2}, s)
		}},
	}
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				a, b := k.gen(seed), k.gen(seed)
				fa, fb := lang.Format(a), lang.Format(b)
				if fa != fb {
					t.Fatalf("seed %d: two calls rendered differently:\n--- first\n%s\n--- second\n%s", seed, fa, fb)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("seed %d: two calls built structurally different programs", seed)
				}
			}
		})
	}
}

// TestGeneratorGoldenHashes pins the exact output of each generator for a
// few (config, seed) pairs. These hashes are part of the corpus-replay
// stability contract: a change here means every committed violation
// report's (generator, seed) no longer regenerates the program it names.
// If a generator change is intentional, regenerate the corpus under
// internal/check/testdata and update the hashes together.
func TestGeneratorGoldenHashes(t *testing.T) {
	h := func(p *program.Program) string {
		sum := sha256.Sum256([]byte(lang.Format(p)))
		return hex.EncodeToString(sum[:8])
	}
	cases := []struct {
		name string
		prog *program.Program
		want string
	}{
		{"racefree-seed1", gen.RaceFree(gen.RaceFreeConfig{}, 1), "d49e154050ce3737"},
		{"racefree-ttas-seed7", gen.RaceFree(gen.RaceFreeConfig{Procs: 3, TTAS: true}, 7), "a1d211a0119b4289"},
		{"handoff-seed1", gen.Handoff(gen.HandoffConfig{}, 1), "960e0dfa56683fc1"},
		{"racy-seed1", gen.Racy(gen.RacyConfig{}, 1), "df4b2135cd18ee8d"},
		{"racy-seed42", gen.Racy(gen.RacyConfig{Procs: 3, SyncFraction: 2}, 42), "da54018fef3bb9a8"},
	}
	for _, c := range cases {
		if got := h(c.prog); got != c.want {
			t.Errorf("%s: hash %s, want %s\n%s", c.name, got, c.want, lang.Format(c.prog))
		}
	}
}
