// Package gen produces random programs for property-based testing: a
// race-free generator whose output provably obeys DRF0 by construction
// (every shared variable is protected by a fixed lock acquired with
// TestAndSet and released with a synchronization Unset), and a racy
// generator that omits the discipline.
//
// The race-free generator is the engine behind the repository's strongest
// validation: for every generated program and every seed, results from
// the weakly ordered machines must appear sequentially consistent
// (Definition 2), and the DRF0 checker must accept the program.
//
// # Determinism
//
// Every generator is a pure function of (config, seed): the same inputs
// produce a byte-identical program — same thread order, instruction
// streams, variable addresses, and litmus text rendering — on every call,
// platform, and process. All randomness flows through a private
// math/rand.Rand seeded from the seed argument, and no iteration order
// of any map reaches the output. The fuzzing campaign in internal/check
// and its committed reproducer corpus rely on this: a (config, seed)
// pair recorded in a violation report must regenerate the exact program
// that failed. TestGeneratorsDeterministic and
// TestGeneratorGoldenHashes pin the guarantee.
package gen

import (
	"fmt"
	"math/rand"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// RaceFreeConfig parameterizes the race-free generator.
type RaceFreeConfig struct {
	// Procs is the number of threads (>= 1, default 2).
	Procs int
	// Locks is the number of lock variables (default 2).
	Locks int
	// SharedPerLock is the number of shared variables protected by each
	// lock (default 2).
	SharedPerLock int
	// PrivatePerProc is the number of unshared scratch variables per
	// thread (default 2).
	PrivatePerProc int
	// Sections is the number of critical sections per thread (default 2).
	Sections int
	// OpsPerSection is the number of shared accesses inside each critical
	// section (default 2).
	OpsPerSection int
	// PrivateOps is the number of private accesses between sections
	// (default 2).
	PrivateOps int
	// TTAS spins with a read-only Test before attempting the TestAndSet
	// (Section 6's Test&TestAndSet) instead of spinning on TAS directly.
	TTAS bool
}

func (c RaceFreeConfig) withDefaults() RaceFreeConfig {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.Procs, 2)
	def(&c.Locks, 2)
	def(&c.SharedPerLock, 2)
	def(&c.PrivatePerProc, 2)
	def(&c.Sections, 2)
	def(&c.OpsPerSection, 2)
	def(&c.PrivateOps, 2)
	return c
}

// RaceFree generates a DRF0 program: each thread alternates private work
// with lock-protected critical sections. Every access to a shared
// variable happens while holding that variable's (unique) protecting
// lock, so all conflicting accesses are ordered through the lock's
// synchronization chain in every idealized execution.
func RaceFree(cfg RaceFreeConfig, seed int64) *program.Program {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	b := program.NewBuilder(fmt.Sprintf("racefree-%d", seed))

	locks := make([]mem.Addr, cfg.Locks)
	shared := make([][]mem.Addr, cfg.Locks)
	for l := range locks {
		locks[l] = b.Var(fmt.Sprintf("lock%d", l))
		for s := 0; s < cfg.SharedPerLock; s++ {
			shared[l] = append(shared[l], b.Var(fmt.Sprintf("s%d_%d", l, s)))
		}
	}

	for pi := 0; pi < cfg.Procs; pi++ {
		private := make([]mem.Addr, cfg.PrivatePerProc)
		for v := range private {
			private[v] = b.Var(fmt.Sprintf("p%d_%d", pi, v))
		}
		th := b.Thread()
		label := 0
		privateWork := func() {
			for i := 0; i < cfg.PrivateOps; i++ {
				v := private[rng.Intn(len(private))]
				if rng.Intn(2) == 0 {
					th.StoreImm(v, mem.Value(rng.Intn(100)))
				} else {
					th.Load(program.Reg(rng.Intn(4)), v)
				}
			}
		}
		privateWork()
		for sec := 0; sec < cfg.Sections; sec++ {
			l := rng.Intn(cfg.Locks)
			spin := fmt.Sprintf("spin%d", label)
			label++
			th.Label(spin)
			if cfg.TTAS {
				th.SyncLoad(program.R6, locks[l])
				th.BneImm(program.R6, 0, spin)
			}
			th.TAS(program.R7, locks[l])
			th.BneImm(program.R7, 0, spin)
			for i := 0; i < cfg.OpsPerSection; i++ {
				v := shared[l][rng.Intn(len(shared[l]))]
				switch rng.Intn(3) {
				case 0:
					th.StoreImm(v, mem.Value(1000*pi+sec*10+i))
				case 1:
					th.Load(program.Reg(rng.Intn(4)), v)
				default:
					// Read-modify-write through registers.
					th.Load(program.R5, v)
					th.AddImm(program.R5, program.R5, 1)
					th.Store(v, program.R5)
				}
			}
			th.SyncStoreImm(locks[l], 0)
			privateWork()
		}
	}
	return b.MustBuild()
}

// HandoffConfig parameterizes the flag-handoff generator.
type HandoffConfig struct {
	// Stages is the number of pipeline stages (threads); each stage
	// receives from its predecessor and publishes to its successor
	// (default 3).
	Stages int
	// Items is the number of values pushed through the pipeline
	// (default 2).
	Items int
	// Work is the number of private writes each stage performs per item
	// (default 1).
	Work int
}

func (c HandoffConfig) withDefaults() HandoffConfig {
	if c.Stages == 0 {
		c.Stages = 3
	}
	if c.Items == 0 {
		c.Items = 2
	}
	if c.Work == 0 {
		c.Work = 1
	}
	return c
}

// Handoff generates a pipeline program disciplined purely by
// release/acquire flag pairs: stage k spins on a read-only
// synchronization Test of flag k until it reaches the item count, reads
// the predecessor's slot, transforms it, writes its own slot, and
// releases flag k+1 with a synchronization write. All conflicting data
// accesses are ordered by a release (SW) followed by an acquire (SR) on
// the same flag, so the program obeys DRF0, the Section 6 refined model,
// AND the strict release/acquire model (hb.SyncPairedRA) — no TAS, no
// lock chains, just paired handoffs.
func Handoff(cfg HandoffConfig, seed int64) *program.Program {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	b := program.NewBuilder(fmt.Sprintf("handoff-%d", seed))

	slots := make([]mem.Addr, cfg.Stages+1)
	flags := make([]mem.Addr, cfg.Stages+1)
	acks := make([]mem.Addr, cfg.Stages+1)
	for i := range slots {
		slots[i] = b.Var(fmt.Sprintf("slot%d", i))
		flags[i] = b.Var(fmt.Sprintf("flag%d", i))
		acks[i] = b.Var(fmt.Sprintf("ack%d", i))
	}

	for st := 0; st < cfg.Stages; st++ {
		th := b.Thread()
		priv := b.Var(fmt.Sprintf("priv%d", st))
		for item := 0; item < cfg.Items; item++ {
			if st > 0 {
				// Acquire the predecessor's release of this item.
				spin := fmt.Sprintf("spin%d", item)
				th.Label(spin)
				th.SyncLoad(program.R0, flags[st])
				th.BltImm(program.R0, mem.Value(item+1), spin)
				th.Load(program.R1, slots[st-1])
				th.AddImm(program.R1, program.R1, mem.Value(rng.Intn(9)+1))
				// Acknowledge consumption so the predecessor may overwrite
				// its slot (back-pressure: without this, the predecessor's
				// next write would race with our read).
				th.SyncStoreImm(acks[st], mem.Value(item+1))
			}
			if st < cfg.Stages-1 && item > 0 {
				// Wait for the successor to have consumed the previous
				// item before overwriting our slot.
				wait := fmt.Sprintf("wait%d", item)
				th.Label(wait)
				th.SyncLoad(program.R2, acks[st+1])
				th.BltImm(program.R2, mem.Value(item), wait)
			}
			if st == 0 {
				th.StoreImm(slots[0], mem.Value(100*item+rng.Intn(50)))
			} else {
				th.Store(slots[st], program.R1)
			}
			for w := 0; w < cfg.Work; w++ {
				th.StoreImm(priv, mem.Value(item*10+w))
			}
			// Release to the successor.
			th.SyncStoreImm(flags[st+1], mem.Value(item+1))
		}
	}
	return b.MustBuild()
}

// RacyConfig parameterizes the racy generator.
type RacyConfig struct {
	// Procs is the number of threads (default 2).
	Procs int
	// Vars is the number of shared variables (default 3).
	Vars int
	// OpsPerProc is the number of accesses per thread (default 5).
	OpsPerProc int
	// SyncFraction inserts a synchronization operation with probability
	// 1/SyncFraction per op slot (default 4; 0 disables sync entirely).
	SyncFraction int
}

func (c RacyConfig) withDefaults() RacyConfig {
	if c.Procs == 0 {
		c.Procs = 2
	}
	if c.Vars == 0 {
		c.Vars = 3
	}
	if c.OpsPerProc == 0 {
		c.OpsPerProc = 5
	}
	if c.SyncFraction == 0 {
		c.SyncFraction = 4
	}
	return c
}

// Racy generates a program with unsynchronized conflicting accesses:
// loads and stores scattered over shared variables, with occasional
// synchronization operations that do not establish a protective
// discipline. Most seeds violate DRF0 (callers should verify with the
// checker when the distinction matters).
func Racy(cfg RacyConfig, seed int64) *program.Program {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	b := program.NewBuilder(fmt.Sprintf("racy-%d", seed))
	vars := make([]mem.Addr, cfg.Vars)
	for i := range vars {
		vars[i] = b.Var(fmt.Sprintf("v%d", i))
	}
	syncVar := b.Var("sv")
	for pi := 0; pi < cfg.Procs; pi++ {
		th := b.Thread()
		for i := 0; i < cfg.OpsPerProc; i++ {
			v := vars[rng.Intn(len(vars))]
			switch {
			case cfg.SyncFraction > 0 && rng.Intn(cfg.SyncFraction) == 0:
				if rng.Intn(2) == 0 {
					th.SwapImm(program.R3, syncVar, mem.Value(pi))
				} else {
					th.SyncStoreImm(syncVar, mem.Value(i))
				}
			case rng.Intn(2) == 0:
				th.StoreImm(v, mem.Value(100*pi+i))
			default:
				th.Load(program.Reg(rng.Intn(4)), v)
			}
		}
	}
	return b.MustBuild()
}
