package gen

import (
	"testing"

	"weakorder/internal/drf"
	"weakorder/internal/hb"
	"weakorder/internal/ideal"
	"weakorder/internal/vclock"
)

func TestRaceFreeProgramsValidate(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		p := RaceFree(RaceFreeConfig{}, seed)
		if err := p.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestRaceFreeProgramsObeyDRF0(t *testing.T) {
	// The generator's lock discipline must yield DRF0 programs. Small
	// shapes keep exhaustive enumeration tractable.
	cfg := RaceFreeConfig{Procs: 2, Locks: 1, SharedPerLock: 1, Sections: 1,
		OpsPerSection: 1, PrivateOps: 1, PrivatePerProc: 1}
	for seed := int64(0); seed < 15; seed++ {
		p := RaceFree(cfg, seed)
		v, err := drf.Check(p, hb.SyncAll, drf.CheckConfig{
			Enum: ideal.EnumConfig{
				Interp:        ideal.Config{MaxMemOpsPerThread: 16},
				SkipTruncated: true,
			},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !v.DRF {
			t.Errorf("seed %d: generated program races: %v\n%s", seed, v.Races, p)
		}
	}
}

func TestRaceFreeTTASObeysRefinedModel(t *testing.T) {
	cfg := RaceFreeConfig{Procs: 2, Locks: 1, SharedPerLock: 1, Sections: 1,
		OpsPerSection: 1, PrivateOps: 1, PrivatePerProc: 1, TTAS: true}
	for seed := int64(0); seed < 10; seed++ {
		p := RaceFree(cfg, seed)
		v, err := drf.Check(p, hb.SyncWriterOrdered, drf.CheckConfig{
			Enum: ideal.EnumConfig{
				Interp:        ideal.Config{MaxMemOpsPerThread: 16},
				SkipTruncated: true,
			},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !v.DRF {
			t.Errorf("seed %d: TTAS program violates the refined model: %v", seed, v.Races)
		}
	}
}

func TestRacyProgramsMostlyRace(t *testing.T) {
	racy := 0
	const n = 15
	for seed := int64(0); seed < n; seed++ {
		p := Racy(RacyConfig{}, seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		v, err := drf.Check(p, hb.SyncAll, drf.CheckConfig{
			Enum: ideal.EnumConfig{MaxPaths: 2_000_000},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !v.DRF {
			racy++
		}
	}
	if racy < n/2 {
		t.Errorf("only %d/%d racy programs actually raced", racy, n)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RaceFree(RaceFreeConfig{}, 7)
	b := RaceFree(RaceFreeConfig{}, 7)
	if a.String() != b.String() {
		t.Error("RaceFree must be deterministic per seed")
	}
	c := Racy(RacyConfig{}, 7)
	d := Racy(RacyConfig{}, 7)
	if c.String() != d.String() {
		t.Error("Racy must be deterministic per seed")
	}
	e := RaceFree(RaceFreeConfig{}, 8)
	if a.String() == e.String() {
		t.Error("different seeds should differ")
	}
}

func TestHandoffProgramsObeyAllThreeModels(t *testing.T) {
	cfg := HandoffConfig{Stages: 2, Items: 2, Work: 1}
	seeds := int64(3)
	if testing.Short() {
		seeds = 1
	}
	for seed := int64(0); seed < seeds; seed++ {
		p := Handoff(cfg, seed)
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, mode := range []hb.SyncMode{hb.SyncAll, hb.SyncWriterOrdered, hb.SyncPairedRA} {
			v, err := drf.Check(p, mode, drf.CheckConfig{
				Enum: ideal.EnumConfig{
					Interp:        ideal.Config{MaxMemOpsPerThread: 9},
					SkipTruncated: true,
					MaxPaths:      2_000_000,
				},
			})
			if err != nil {
				t.Fatalf("seed %d [%v]: %v", seed, mode, err)
			}
			if !v.DRF {
				t.Errorf("seed %d: handoff program races under %v: %v\n%s", seed, mode, v.Races, p)
			}
		}
	}
}

func TestHandoffThreeStagesSampledRaceFreedom(t *testing.T) {
	// Exhaustive enumeration of a 3-stage spinning pipeline explodes;
	// sample fair idealized executions instead and check each with the
	// linear-time vector-clock detector under the strictest model.
	p := Handoff(HandoffConfig{Stages: 3, Items: 2}, 1)
	for seed := int64(0); seed < 20; seed++ {
		it, err := ideal.RunSeed(p, ideal.Config{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if races := vclock.CheckExecution(it.Execution(), hb.SyncPairedRA); len(races) != 0 {
			t.Fatalf("seed %d: handoff execution races under drf0+ra: %v", seed, races)
		}
	}
}

func TestHandoffDeterministic(t *testing.T) {
	a := Handoff(HandoffConfig{}, 3)
	b := Handoff(HandoffConfig{}, 3)
	if a.String() != b.String() {
		t.Error("Handoff must be deterministic per seed")
	}
}
