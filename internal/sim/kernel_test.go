package sim

import "testing"

func TestAfterAndOrdering(t *testing.T) {
	var k Kernel
	var got []int
	k.After(5, func() { got = append(got, 2) })
	k.After(3, func() { got = append(got, 1) })
	k.After(5, func() { got = append(got, 3) }) // same time: schedule order
	for k.Step() {
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order %v, want [1 2 3]", got)
	}
	if k.Now() != 5 {
		t.Fatalf("Now = %d, want 5", k.Now())
	}
}

func TestStepRunsSameTimestampCascades(t *testing.T) {
	var k Kernel
	n := 0
	k.After(2, func() {
		n++
		k.After(0, func() { n++ }) // same-time cascade
	})
	if !k.Step() {
		t.Fatal("Step must report an event ran")
	}
	if n != 2 {
		t.Fatalf("n = %d, want 2 (cascade at same timestamp)", n)
	}
	if k.Step() {
		t.Fatal("queue must be empty")
	}
}

func TestAdvanceTo(t *testing.T) {
	var k Kernel
	ran := []Time{}
	for _, d := range []Time{1, 4, 9} {
		d := d
		k.After(d, func() { ran = append(ran, d) })
	}
	k.AdvanceTo(4)
	if len(ran) != 2 {
		t.Fatalf("AdvanceTo(4) ran %d events, want 2", len(ran))
	}
	if k.Now() != 4 {
		t.Fatalf("Now = %d, want 4", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", k.Pending())
	}
	k.AdvanceTo(100)
	if k.Now() != 100 || k.Pending() != 0 {
		t.Fatalf("Now=%d Pending=%d, want 100/0", k.Now(), k.Pending())
	}
}

func TestTick(t *testing.T) {
	var k Kernel
	fired := false
	k.After(1, func() { fired = true })
	k.Tick()
	if !fired || k.Now() != 1 {
		t.Fatalf("fired=%v Now=%d, want true/1", fired, k.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var k Kernel
	k.After(10, func() {})
	k.AdvanceTo(10)
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past must panic")
		}
	}()
	k.At(5, func() {})
}

func TestDrain(t *testing.T) {
	var k Kernel
	for i := Time(1); i <= 5; i++ {
		k.After(i, func() {})
	}
	ran, drained := k.Drain(3)
	if drained {
		t.Error("Drain(3) must not drain events at t>3")
	}
	if ran != 3 {
		t.Errorf("Drain(3) ran %d events, want 3", ran)
	}
	ran, drained = k.Drain(10)
	if !drained {
		t.Error("Drain(10) must drain everything")
	}
	if ran != 2 {
		t.Errorf("Drain(10) ran %d events, want 2", ran)
	}
}

// TestDrainCountsRescheduledEvents pins Drain's exact accounting: a
// callback that re-arms itself is one execution per firing, and
// same-timestamp cascades are counted individually, not per timestamp.
func TestDrainCountsRescheduledEvents(t *testing.T) {
	var k Kernel
	hops := 0
	var hop func()
	hop = func() {
		hops++
		if hops < 5 {
			k.After(2, hop)
		}
	}
	k.After(1, hop)
	k.After(3, func() { k.After(0, func() {}) }) // same-time cascade: 2 events
	ran, drained := k.Drain(100)
	if !drained {
		t.Fatal("Drain(100) must drain everything")
	}
	if hops != 5 {
		t.Fatalf("self-rescheduling event fired %d times, want 5", hops)
	}
	if ran != 7 {
		t.Errorf("Drain counted %d executions, want 7 (5 hops + cascade pair)", ran)
	}
}

func TestNextEvent(t *testing.T) {
	var k Kernel
	if _, ok := k.NextEvent(); ok {
		t.Error("empty kernel must report no next event")
	}
	k.After(7, func() {})
	k.After(4, func() {})
	if at, ok := k.NextEvent(); !ok || at != 4 {
		t.Errorf("NextEvent = %d/%v, want 4/true", at, ok)
	}
	k.Step()
	if at, ok := k.NextEvent(); !ok || at != 7 {
		t.Errorf("NextEvent after Step = %d/%v, want 7/true", at, ok)
	}
	k.Step()
	if _, ok := k.NextEvent(); ok {
		t.Error("drained kernel must report no next event")
	}
}
