// Package sim provides the discrete-event simulation kernel underlying
// the multiprocessor models: a deterministic time-ordered event queue with
// cycle-granular execution. All hardware components (processors, caches,
// directories, interconnects) schedule work through one Kernel, so a
// simulation is a single-threaded, fully reproducible event program.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a cycle count.
type Time uint64

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: schedule order
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is the event queue. The zero value is ready to use at time 0.
type Kernel struct {
	now  Time
	seq  uint64
	heap eventHeap
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of scheduled events.
func (k *Kernel) Pending() int { return len(k.heap) }

// At schedules fn to run at time t. Scheduling in the past panics: events
// must never rewind time.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, k.now))
	}
	k.seq++
	heap.Push(&k.heap, event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (k *Kernel) After(delay Time, fn func()) { k.At(k.now+delay, fn) }

// Step advances time to the next event's timestamp and runs every event
// scheduled for that timestamp (including events those events schedule for
// the same timestamp, in schedule order). It reports whether any event ran.
func (k *Kernel) Step() bool {
	if len(k.heap) == 0 {
		return false
	}
	k.now = k.heap[0].at
	for len(k.heap) > 0 && k.heap[0].at == k.now {
		e := heap.Pop(&k.heap).(event)
		e.fn()
	}
	return true
}

// AdvanceTo runs all events with timestamps <= t and sets the clock to t.
func (k *Kernel) AdvanceTo(t Time) {
	for len(k.heap) > 0 && k.heap[0].at <= t {
		k.Step()
	}
	if t > k.now {
		k.now = t
	}
}

// Tick advances the clock by one cycle, running all events due at the new
// time.
func (k *Kernel) Tick() { k.AdvanceTo(k.now + 1) }

// Drain runs events until the queue is empty or the clock would exceed
// maxTime; it returns the number of events run and whether the queue
// drained fully.
func (k *Kernel) Drain(maxTime Time) (ran int, drained bool) {
	for len(k.heap) > 0 {
		if k.heap[0].at > maxTime {
			return ran, false
		}
		before := len(k.heap)
		k.Step()
		ran += before - len(k.heap) + 1 // approximate: events may reschedule
	}
	return ran, true
}
