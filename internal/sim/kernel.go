// Package sim provides the discrete-event simulation kernel underlying
// the multiprocessor models: a deterministic time-ordered event queue with
// cycle-granular execution. All hardware components (processors, caches,
// directories, interconnects) schedule work through one Kernel, so a
// simulation is a single-threaded, fully reproducible event program.
package sim

import "fmt"

// Time is a cycle count.
type Time uint64

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: schedule order
	fn  func()
}

// before orders events by time, then schedule order.
func (e event) before(o event) bool {
	return e.at < o.at || (e.at == o.at && e.seq < o.seq)
}

// Kernel is the event queue. The zero value is ready to use at time 0.
// The queue is a hand-rolled binary min-heap over concrete events —
// container/heap would box every Push/Pop through interface{}, and the
// simulation hot loop pushes and pops millions of events.
type Kernel struct {
	now  Time
	seq  uint64
	heap []event
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Reset rewinds the kernel to time zero with an empty queue, retaining
// the heap's backing array — pooled machines reuse one kernel across
// runs so the event heap is allocated once. Any still-scheduled events
// are dropped (their callbacks never run).
func (k *Kernel) Reset() {
	k.now = 0
	k.seq = 0
	for i := range k.heap {
		k.heap[i] = event{} // release dropped callbacks for GC
	}
	k.heap = k.heap[:0]
}

// Pending returns the number of scheduled events.
func (k *Kernel) Pending() int { return len(k.heap) }

// NextEvent returns the timestamp of the earliest scheduled event; ok is
// false when the queue is empty. The machine's idle-cycle fast-forward
// uses it to find the next cycle with work.
func (k *Kernel) NextEvent() (t Time, ok bool) {
	if len(k.heap) == 0 {
		return 0, false
	}
	return k.heap[0].at, true
}

// At schedules fn to run at time t. Scheduling in the past panics: events
// must never rewind time.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, k.now))
	}
	k.seq++
	k.heap = append(k.heap, event{at: t, seq: k.seq, fn: fn})
	// Sift the new event up.
	h := k.heap
	i := len(h) - 1
	e := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if !e.before(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
}

// After schedules fn to run delay cycles from now.
func (k *Kernel) After(delay Time, fn func()) { k.At(k.now+delay, fn) }

// pop removes and returns the earliest event.
func (k *Kernel) pop() event {
	h := k.heap
	top := h[0]
	n := len(h) - 1
	e := h[n]
	h[n] = event{} // release the callback for GC
	k.heap = h[:n]
	if n == 0 {
		return top
	}
	// Sift the displaced tail event down from the root.
	h = k.heap
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h[r].before(h[c]) {
			c = r
		}
		if !h[c].before(e) {
			break
		}
		h[i] = h[c]
		i = c
	}
	h[i] = e
	return top
}

// Step advances time to the next event's timestamp and runs every event
// scheduled for that timestamp (including events those events schedule for
// the same timestamp, in schedule order). It reports whether any event ran.
func (k *Kernel) Step() bool { return k.step() > 0 }

// step runs one timestamp batch and returns the exact number of events
// executed (callbacks invoked), which Drain reports.
func (k *Kernel) step() int {
	if len(k.heap) == 0 {
		return 0
	}
	k.now = k.heap[0].at
	n := 0
	for len(k.heap) > 0 && k.heap[0].at == k.now {
		e := k.pop()
		e.fn()
		n++
	}
	return n
}

// AdvanceTo runs all events with timestamps <= t and sets the clock to t.
func (k *Kernel) AdvanceTo(t Time) {
	for len(k.heap) > 0 && k.heap[0].at <= t {
		k.step()
	}
	if t > k.now {
		k.now = t
	}
}

// Tick advances the clock by one cycle, running all events due at the new
// time.
func (k *Kernel) Tick() { k.AdvanceTo(k.now + 1) }

// Drain runs events until the queue is empty or the clock would exceed
// maxTime; it returns the exact number of events run (counted per
// callback, so rescheduling events are not miscounted) and whether the
// queue drained fully.
func (k *Kernel) Drain(maxTime Time) (ran int, drained bool) {
	for len(k.heap) > 0 {
		if k.heap[0].at > maxTime {
			return ran, false
		}
		ran += k.step()
	}
	return ran, true
}
