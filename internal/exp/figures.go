package exp

import (
	"fmt"

	"weakorder/internal/drf"
	"weakorder/internal/hb"
	"weakorder/internal/litmus"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/scmatch"
	"weakorder/internal/vclock"
	"weakorder/internal/workload"
)

// Figure1Row is one (configuration, policy) cell of the Figure 1 study.
type Figure1Row struct {
	Config     machine.Config
	Runs       int
	Violations int // runs producing the forbidden both-zero outcome
	NonSC      int // runs whose full result matches no SC execution
}

// Figure1 reproduces the paper's Figure 1: the Dekker program run on all
// four system classes (bus/network × no-cache/caches), under the
// unconstrained hardware that motivates the paper and under the
// sequentially consistent baseline. Relaxed hardware exhibits the
// forbidden outcome ("both processors killed") on every class; SC
// hardware never does.
func Figure1(seeds int) ([]Figure1Row, *Table, error) {
	prog := litmus.Dekker()
	outcomes, err := scmatch.Outcomes(prog, defaultEnum())
	if err != nil {
		return nil, nil, err
	}
	var rows []Figure1Row
	type sys struct {
		topo   machine.Topology
		caches bool
		snoop  bool
	}
	systems := []sys{
		{machine.TopoBus, false, false},
		{machine.TopoBus, true, false},
		{machine.TopoBus, true, true}, // authentic snoopy bus+caches row
		{machine.TopoNetwork, false, false},
		{machine.TopoNetwork, true, false},
	}
	for _, sy := range systems {
		{
			for _, pol := range []policy.Kind{policy.Unconstrained, policy.SC} {
				cfg := machine.Config{Policy: pol, Topology: sy.topo, Caches: sy.caches, Snoop: sy.snoop, NetJitter: 20}
				row := Figure1Row{Config: cfg, Runs: seeds}
				for seed := 0; seed < seeds; seed++ {
					res, err := machine.Run(prog, cfg, int64(seed))
					if err != nil {
						return nil, nil, fmt.Errorf("figure1 %s: %w", cfg.Name(), err)
					}
					if litmus.DekkerForbidden(res.Result) {
						row.Violations++
					}
					if _, ok := outcomes[res.Result.Key()]; !ok {
						row.NonSC++
					}
				}
				rows = append(rows, row)
			}
		}
	}

	t := &Table{
		ID:      "Figure 1",
		Title:   "Dekker-style SC violation across the four system classes",
		Headers: []string{"system", "policy", "runs", "both-zero", "non-SC results"},
		Notes: []string{
			"both-zero = the paper's forbidden outcome (both processors killed)",
			"unconstrained hardware violates SC on every class; SC hardware never does",
		},
	}
	for _, r := range rows {
		label := map[bool]string{true: "caches", false: "nocache"}[r.Config.Caches]
		if r.Config.Snoop {
			label = "snoop"
		}
		t.AddRow(fmt.Sprintf("%v+%s", r.Config.Topology, label), r.Config.Policy.String(), r.Runs, r.Violations, r.NonSC)
	}
	return rows, t, nil
}

// Figure2Row is one execution's verdict under one checker and mode.
type Figure2Row struct {
	Execution string
	Mode      hb.SyncMode
	Checker   string
	Races     int
	Pairs     []string
}

// Figure2 reproduces the paper's Figure 2: the hand-coded idealized
// executions, one obeying DRF0 (all conflicting accesses ordered by
// happens-before through synchronization chains) and one violating it.
// Both the exhaustive happens-before analysis and the vector-clock
// detector are applied.
func Figure2() ([]Figure2Row, *Table) {
	var rows []Figure2Row
	execs := []struct {
		name string
		e    *mem.Execution
	}{
		{"Figure 2(a)", litmus.Figure2a()},
		{"Figure 2(b)", litmus.Figure2b()},
	}
	for _, ex := range execs {
		for _, mode := range []hb.SyncMode{hb.SyncAll, hb.SyncWriterOrdered, hb.SyncPairedRA} {
			hbRaces := drf.CheckExecution(ex.e, nil, mode)
			row := Figure2Row{Execution: ex.name, Mode: mode, Checker: "happens-before", Races: len(hbRaces)}
			for _, r := range hbRaces {
				row.Pairs = append(row.Pairs, fmt.Sprintf("%v||%v", r.A.ID(), r.B.ID()))
			}
			rows = append(rows, row)

			vcRaces := vclock.CheckExecution(ex.e, mode)
			rows = append(rows, Figure2Row{
				Execution: ex.name, Mode: mode, Checker: "vector-clock", Races: len(vcRaces),
			})
		}
	}
	t := &Table{
		ID:      "Figure 2",
		Title:   "DRF0 verdicts for the example and counter-example executions",
		Headers: []string{"execution", "model", "checker", "races", "racing pairs"},
		Notes: []string{
			"(a) obeys DRF0: every conflicting pair is ordered by hb = (po ∪ so)+",
			"(b) violates DRF0: P0/P1 race on y, P2/P4 (and P3/P4) race on z",
		},
	}
	for _, r := range rows {
		pairs := ""
		if len(r.Pairs) > 0 {
			pairs = fmt.Sprint(r.Pairs)
		}
		t.AddRow(r.Execution, r.Mode.String(), r.Checker, r.Races, pairs)
	}
	return rows, t
}

// Figure3Row is one policy's stall profile on the Figure 3 scenario.
type Figure3Row struct {
	Policy          policy.Kind
	ReleaserStall   uint64 // P0's synchronization stall cycles
	AcquirerStall   uint64 // P1's synchronization stall cycles
	TotalCycles     uint64
	DeferredForward uint64 // forwards deferred by P0's reserve bit
	AppearsSC       bool
}

// Figure3 reproduces the paper's Figure 3 analysis: on the
// release/acquire scenario with a slow write of x, Definition 1 stalls
// the releasing processor P0 at the Unset until W(x) is globally
// performed, while the new implementation lets P0 proceed at commit; the
// acquiring processor P1 stalls under both.
func Figure3(seed int64) ([]Figure3Row, *Table, error) {
	prog := litmus.Figure3()
	base := machine.Config{
		Topology:  machine.TopoNetwork,
		Caches:    true,
		NetBase:   40,
		NetJitter: 10,
	}
	var rows []Figure3Row
	for _, pol := range []policy.Kind{policy.SC, policy.WODef1, policy.WODef2, policy.WODef2RO} {
		cfg := base
		cfg.Policy = pol
		res, err := machine.Run(prog, cfg, seed)
		if err != nil {
			return nil, nil, fmt.Errorf("figure3 %v: %w", pol, err)
		}
		m, err := scmatch.Matches(prog, res.Result, scmatch.Config{})
		if err != nil {
			return nil, nil, err
		}
		row := Figure3Row{
			Policy:        pol,
			ReleaserStall: res.Stats.Procs[0].SyncStall(),
			AcquirerStall: res.Stats.Procs[1].SyncStall(),
			TotalCycles:   res.Stats.Cycles,
			AppearsSC:     m.OK,
		}
		if len(res.Stats.Caches) > 0 {
			row.DeferredForward = res.Stats.Caches[0].DeferredFwds
		}
		rows = append(rows, row)
	}
	t := &Table{
		ID:      "Figure 3",
		Title:   "Release/acquire stall comparison (P0 releases s while W(x) is in flight)",
		Headers: []string{"policy", "P0 sync stall", "P1 sync stall", "total cycles", "deferred fwds @P0", "appears SC"},
		Notes: []string{
			"Def.1 stalls P0 at the Unset until W(x) is globally performed",
			"Def.2 w.r.t. DRF0 need never stall P0 there: P1's request waits on P0's reserve bit instead",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Policy.String(), r.ReleaserStall, r.AcquirerStall, r.TotalCycles, r.DeferredForward, r.AppearsSC)
	}
	return rows, t, nil
}

// Figure3ScaledRow is one (procs, policy) cell of the big-machine
// Figure 3 study.
type Figure3ScaledRow struct {
	Procs         int
	Policy        policy.Kind
	ReleaseWait   uint64 // P0's drain-pre-sync + sync-global cycles: the wait for W(x)'s global performance
	ReleaserStall uint64 // P0's total synchronization stall cycles (includes the setup spin-acquires)
	AcquirerStall uint64 // P1's synchronization stall cycles
	TotalCycles   uint64
	DeferredFwds  uint64 // forwards deferred by P0's reserve bit
	Invalidations uint64 // invalidations sent by the directories
}

// Figure3Scaled reruns the Figure 3 release-stall comparison on the
// 2D-mesh machine at each processor count in sizes: procs-1 processors
// share x before the releaser writes it, so the write's global
// performance waits on procs-1 invalidation acknowledgements crossing
// the mesh. Definition 1 makes the releasing processor absorb that wait
// at its release; the Section 5.3 implementation of Definition 2 defers
// the acquirer's forwarded request on the reserve bit instead, keeping
// the releaser's stall independent of machine size.
func Figure3Scaled(seed int64, sizes []int) ([]Figure3ScaledRow, *Table, error) {
	var rows []Figure3ScaledRow
	for _, n := range sizes {
		prog := workload.Fig3Scaled(n)
		for _, pol := range []policy.Kind{policy.WODef1, policy.WODef2} {
			cfg := machine.Config{
				Policy:   pol,
				Topology: machine.TopoMesh,
				Caches:   true,
				Metrics:  true,
			}
			res, err := machine.Run(prog, cfg, seed)
			if err != nil {
				return nil, nil, fmt.Errorf("figure3 scaled %dp %v: %w", n, pol, err)
			}
			c := res.Metrics.Counters
			row := Figure3ScaledRow{
				Procs:         n,
				Policy:        pol,
				ReleaseWait:   c["cpu.0.stall.drain_pre_sync"] + c["cpu.0.stall.sync_global"],
				ReleaserStall: res.Stats.Procs[0].SyncStall(),
				AcquirerStall: res.Stats.Procs[1].SyncStall(),
				TotalCycles:   res.Stats.Cycles,
			}
			if len(res.Stats.Caches) > 0 {
				row.DeferredFwds = res.Stats.Caches[0].DeferredFwds
			}
			for i := range res.Stats.Dirs {
				row.Invalidations += res.Stats.Dirs[i].Invalidations
			}
			rows = append(rows, row)
		}
	}
	t := &Table{
		ID:      "Figure 3 (scaled)",
		Title:   "Release stall vs machine size on the 2D mesh (procs-1 sharers invalidated by the release-guarded write)",
		Headers: []string{"procs", "policy", "P0 release wait", "P0 sync stall", "P1 sync stall", "total cycles", "deferred fwds @P0", "invalidations"},
		Notes: []string{
			"P0 release wait = drain-pre-sync + sync-global at the releaser: Def.1's wait for global performance of prior accesses (charged on every sync access, setup spins included); identically zero under Def.2",
			"the Def.1 minus Def.2 gap in P0 sync stall is the invalidation fan-out crossing the mesh — it grows with the machine, while Def.2 relocates that wait to the acquirer's deferred forward",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Procs, r.Policy.String(), r.ReleaseWait, r.ReleaserStall, r.AcquirerStall, r.TotalCycles, r.DeferredFwds, r.Invalidations)
	}
	return rows, t, nil
}

// Figure3Stalls breaks the Figure 3 stalls down by attributed cause,
// straight from the metrics export (machine.Config.Metrics): where
// Figure3 reports one sync-stall number per processor, this table shows
// *which* wait produced it — the Definition 1 releaser burns cycles in
// drain-pre-sync/sync-global (waiting for W(x) to be globally
// performed), the Section 5.3 releaser does not, and the wait reappears
// on the acquirer side as sync-commit cycles plus the deferral of its
// forwarded request at the releaser's reserved line.
func Figure3Stalls(seed int64) (*Table, error) {
	prog := litmus.Figure3()
	base := machine.Config{
		Topology:  machine.TopoNetwork,
		Caches:    true,
		NetBase:   40,
		NetJitter: 10,
		Metrics:   true,
	}
	t := &Table{
		ID:    "Figure 3 (stall attribution)",
		Title: "Per-cause stall cycles in the Figure 3 scenario (from the metrics export)",
		Headers: []string{"policy", "proc", "drain-pre-sync", "sync-global",
			"sync-commit", "read-wait", "total stall", "deferred cycles @cache"},
		Notes: []string{
			"drain-pre-sync + sync-global at the releaser = the Definition 1 wait for global performance",
			"sync-commit at the acquirer + deferred cycles at the releaser's cache = the same wait relocated by the reserve bit",
		},
	}
	for _, pol := range []policy.Kind{policy.WODef1, policy.WODef2} {
		cfg := base
		cfg.Policy = pol
		res, err := machine.Run(prog, cfg, seed)
		if err != nil {
			return nil, fmt.Errorf("figure3 stalls %v: %w", pol, err)
		}
		c := res.Metrics.Counters
		for p := 0; p < 2; p++ {
			pre := fmt.Sprintf("cpu.%d.stall.", p)
			t.AddRow(pol.String(), fmt.Sprintf("P%d", p),
				c[pre+"drain_pre_sync"], c[pre+"sync_global"],
				c[pre+"sync_commit"], c[pre+"read_wait"],
				c[fmt.Sprintf("cpu.%d.stall_total", p)],
				c[fmt.Sprintf("cache.%d.deferred_cycles", p)])
		}
	}
	return t, nil
}
