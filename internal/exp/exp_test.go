package exp

import (
	"strings"
	"testing"

	"weakorder/internal/policy"
)

func TestFigure1Shape(t *testing.T) {
	rows, table, err := Figure1(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10 (5 system classes x 2 policies)", len(rows))
	}
	for _, r := range rows {
		switch r.Config.Policy {
		case policy.Unconstrained:
			if r.Violations == 0 {
				t.Errorf("%s: unconstrained hardware must exhibit the Figure 1 violation", r.Config.Name())
			}
		case policy.SC:
			if r.Violations != 0 || r.NonSC != 0 {
				t.Errorf("%s: SC hardware exhibited %d violations, %d non-SC results",
					r.Config.Name(), r.Violations, r.NonSC)
			}
		}
	}
	if !strings.Contains(table.String(), "Figure 1") {
		t.Error("table must render with its id")
	}
}

func TestFigure2Shape(t *testing.T) {
	rows, table := Figure2()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		isA := strings.Contains(r.Execution, "(a)")
		if isA && r.Races != 0 {
			t.Errorf("Figure 2(a) under %v/%s reported %d races, want 0", r.Mode, r.Checker, r.Races)
		}
		if !isA && r.Races == 0 {
			t.Errorf("Figure 2(b) under %v/%s reported no races", r.Mode, r.Checker)
		}
	}
	if table.String() == "" {
		t.Error("empty table")
	}
}

func TestFigure3Shape(t *testing.T) {
	rows, table, err := Figure3(7)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := make(map[policy.Kind]Figure3Row)
	for _, r := range rows {
		byPolicy[r.Policy] = r
		if !r.AppearsSC {
			t.Errorf("%v: Figure 3 run must appear SC", r.Policy)
		}
	}
	def1, def2 := byPolicy[policy.WODef1], byPolicy[policy.WODef2]
	if def2.ReleaserStall >= def1.ReleaserStall {
		t.Errorf("releaser stall: Def1 %d vs Def2 %d — the new implementation must stall the releaser less",
			def1.ReleaserStall, def2.ReleaserStall)
	}
	if def2.AcquirerStall == 0 {
		t.Error("the acquirer must still stall under Def2 (its TAS waits on the reserve bit)")
	}
	if table.String() == "" {
		t.Error("empty table")
	}
}

func TestTable1Shape(t *testing.T) {
	rows, _, err := Table1(3)
	if err != nil {
		t.Fatal(err)
	}
	// Under Def1 the release stall must grow with latency; under Def2 it
	// must grow much more slowly. Compare smallest vs largest latency.
	stall := func(pol policy.Kind, lat float64) float64 {
		for _, r := range rows {
			if r.Policy == pol && float64(r.NetBase) == lat {
				return r.ReleaserStall
			}
		}
		t.Fatalf("missing row %v@%v", pol, lat)
		return 0
	}
	d1lo, d1hi := stall(policy.WODef1, 5), stall(policy.WODef1, 80)
	d2lo, d2hi := stall(policy.WODef2, 5), stall(policy.WODef2, 80)
	if d1hi <= d1lo {
		t.Errorf("Def1 release stall must grow with latency: %v -> %v", d1lo, d1hi)
	}
	// Def2's releaser beats Def1's at every latency (commit-only wait vs
	// full drain + global performance)...
	for _, lat := range []float64{5, 10, 20, 40, 80} {
		if stall(policy.WODef2, lat) >= stall(policy.WODef1, lat) {
			t.Errorf("at latency %v, Def2 (%v) must beat Def1 (%v)",
				lat, stall(policy.WODef2, lat), stall(policy.WODef1, lat))
		}
	}
	// ...and the gap widens with latency: Def1 additionally waits out the
	// write's global performance, which scales with the network.
	if (d1hi - d2hi) <= (d1lo - d2lo) {
		t.Errorf("the Def1-Def2 gap must widen with latency: %v@5 vs %v@80", d1lo-d2lo, d1hi-d2hi)
	}
}

func TestTable2Shape(t *testing.T) {
	rows, _, err := Table2(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cyc := make(map[string]float64)
	for _, r := range rows {
		if r.Procs == 8 {
			cyc[r.Variant] = r.Cycles
		}
	}
	def2 := cyc["WO-Def2"]
	cached := cyc["WO-Def2+RO (cached Test)"]
	if def2 == 0 || cached == 0 {
		t.Fatalf("missing 8-processor rows: %v", cyc)
	}
	// At the highest contention the cached-Test refinement must win.
	if cached >= def2 {
		t.Errorf("at 8 processors the refinement must be faster: Def2 %v vs cached-Test %v", def2, cached)
	}
}

func TestTable3Shape(t *testing.T) {
	rows, _, err := Table3(2)
	if err != nil {
		t.Fatal(err)
	}
	// Shape: on the data-heavy workload, SC must be slowest at 8
	// processors (it serializes every access's global performance).
	var scCyc, def2Cyc float64
	for _, r := range rows {
		if r.Workload == "datasync(8 data/sync)" && r.Procs == 8 {
			switch r.Policy {
			case policy.SC:
				scCyc = r.Cycles
			case policy.WODef2:
				def2Cyc = r.Cycles
			}
		}
	}
	if scCyc == 0 || def2Cyc == 0 {
		t.Fatal("missing rows")
	}
	if def2Cyc >= scCyc {
		t.Errorf("WO-Def2 (%v cycles) must beat SC (%v cycles) on the data-heavy workload", def2Cyc, scCyc)
	}
}

func TestTable4Shape(t *testing.T) {
	rows, _, err := Table4(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Class == "generated DRF0" && r.AppearsSC != r.Runs {
			t.Errorf("%v: %d/%d DRF0 runs appeared SC — the contract demands all",
				r.Policy, r.AppearsSC, r.Runs)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	rows, _, err := Table5(3)
	if err != nil {
		t.Fatal(err)
	}
	get := func(sub string, pol policy.Kind) float64 {
		for _, r := range rows {
			if r.Substrate == sub && r.Policy == pol {
				return r.ReleaserStall
			}
		}
		t.Fatalf("missing row %s/%v", sub, pol)
		return 0
	}
	// Directory/network: Def2 releases earlier than Def1.
	if get("directory/network", policy.WODef2) >= get("directory/network", policy.WODef1) {
		t.Error("on the directory substrate Def2's releaser must stall less than Def1's")
	}
	// Snoopy/bus: the two converge (within 20%).
	d1 := get("snoopy/bus", policy.WODef1)
	d2 := get("snoopy/bus", policy.WODef2)
	lo, hi := d1, d2
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo == 0 || hi/lo > 1.2 {
		t.Errorf("on the atomic bus the definitions should converge: Def1 %v vs Def2 %v", d1, d2)
	}
}

func TestTable6Shape(t *testing.T) {
	rows, _, err := Table6(6)
	if err != nil {
		t.Fatal(err)
	}
	sawForbidden := false
	for _, r := range rows {
		if r.Policy == policy.SC && (r.Forbidden != 0 || r.NonSC != 0) {
			t.Errorf("%s: SC exhibited %d forbidden / %d non-SC", r.Test, r.Forbidden, r.NonSC)
		}
		if r.Coherence && r.Forbidden != 0 {
			t.Errorf("%s on %v: coherence-guaranteed outcome observed", r.Test, r.Policy)
		}
		if r.Forbidden > 0 {
			sawForbidden = true
		}
	}
	if !sawForbidden {
		t.Error("some weak machine must exhibit some forbidden outcome")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Headers: []string{"a", "bee"}}
	tb.AddRow(1, "x")
	tb.AddRow(2.5, "yyyy")
	tb.Notes = append(tb.Notes, "a note")
	out := tb.String()
	for _, want := range []string{"T — demo", "a", "bee", "2.50", "yyyy", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
