package exp

import (
	"fmt"

	"weakorder/internal/litmus"
	"weakorder/internal/machine"
	"weakorder/internal/policy"
	"weakorder/internal/stats"
)

// Table5Row is one (substrate, policy) cell of the substrate comparison.
type Table5Row struct {
	Substrate     string
	Policy        policy.Kind
	ReleaserStall float64
	TotalCycles   float64
}

// Table5 compares the two coherence substrates on the Figure 3 scenario:
// on the directory machine over a general network, commit and global
// performance separate, so WO-Def2 beats WO-Def1 at the release; on the
// atomic snoopy bus every transaction is globally performed the instant
// it completes, commit order equals global-performance order, the
// counter reads zero at every synchronization commit, and the two
// definitions converge — the new definition's hardware advantage lives
// exactly where Figure 1 says sequential consistency gets expensive.
func Table5(seeds int) ([]Table5Row, *Table, error) {
	prog := litmus.Figure3()
	substrates := []struct {
		name string
		cfg  machine.Config
	}{
		{"directory/network", machine.Config{
			Topology: machine.TopoNetwork, Caches: true, NetBase: 40, NetJitter: 5,
		}},
		{"snoopy/bus", machine.Config{
			Topology: machine.TopoBus, Caches: true, Snoop: true, BusLatency: 40,
		}},
	}
	var rows []Table5Row
	for _, sub := range substrates {
		for _, pol := range []policy.Kind{policy.WODef1, policy.WODef2} {
			cfg := sub.cfg
			cfg.Policy = pol
			var stall, cyc stats.Sample
			for s := 0; s < seeds; s++ {
				res, err := machine.Run(prog, cfg, int64(s)+1)
				if err != nil {
					return nil, nil, fmt.Errorf("table5 %s %v: %w", sub.name, pol, err)
				}
				stall.AddUint(res.Stats.Procs[0].SyncStall())
				cyc.AddUint(res.Stats.Cycles)
			}
			rows = append(rows, Table5Row{
				Substrate:     sub.name,
				Policy:        pol,
				ReleaserStall: stall.Mean(),
				TotalCycles:   cyc.Mean(),
			})
		}
	}
	t := &Table{
		ID:      "Table 5",
		Title:   "Where the new definition pays: directory/network vs atomic snoopy bus (Figure 3 scenario)",
		Headers: []string{"substrate", "policy", "P0 sync stall", "total cycles"},
		Notes: []string{
			"directory/network: commit precedes global performance — Def.2 releases early and wins",
			"snoopy/bus (atomic): commit == globally performed — the definitions converge",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Substrate, r.Policy.String(), r.ReleaserStall, r.TotalCycles)
	}
	return rows, t, nil
}
