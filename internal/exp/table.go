// Package exp regenerates the paper's figures and the quantitative
// tables this repository adds (the study Section 7 proposes as future
// work). Each experiment returns structured data plus a formatted table;
// cmd/figures prints them and bench_test.go re-runs them as benchmarks.
package exp

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment: a title, column headers, string rows,
// and free-form notes explaining how to read it against the paper.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
