package exp

import (
	"fmt"

	"weakorder/internal/litmus"
	"weakorder/internal/machine"
	"weakorder/internal/policy"
	"weakorder/internal/runner"
)

// Table6Row is one (test, policy) cell of the classic litmus matrix.
type Table6Row struct {
	Test      string
	Policy    policy.Kind
	Runs      int
	Forbidden int
	NonSC     int
	Coherence bool // the forbidden outcome is coherence-guaranteed away
}

// Table6 runs the classic litmus suite (SB, MP, S, R, 2+2W, WRC, RWC,
// IRIW, CoRR, CoWW) across every policy on the network machine and
// counts SC-forbidden outcomes — the herd-style behavioral fingerprint
// of each hardware design. SC exhibits nothing; the Co* rows are
// guaranteed by cache coherence on every machine; the remaining rows are
// racy programs for which weak ordering makes no promise.
func Table6(seeds int) ([]Table6Row, *Table, error) {
	var rows []Table6Row
	for _, tc := range litmus.Classic() {
		for _, pol := range policy.All() {
			cfg := machine.Config{Policy: pol, Topology: machine.TopoNetwork, Caches: true, NetJitter: 20}
			rep, err := runner.RunOn(tc.Prog, cfg, runner.Config{Seeds: seeds, Forbidden: tc.Forbidden})
			if err != nil {
				return nil, nil, fmt.Errorf("table6 %s %v: %w", tc.Name, pol, err)
			}
			rows = append(rows, Table6Row{
				Test:      tc.Name,
				Policy:    pol,
				Runs:      rep.Runs,
				Forbidden: rep.ForbiddenRuns,
				NonSC:     rep.NonSCRuns,
				Coherence: tc.CoherenceOnly,
			})
		}
	}
	t := &Table{
		ID:      "Table 6",
		Title:   "Classic litmus matrix: SC-forbidden outcomes per policy (network+caches)",
		Headers: []string{"test", "policy", "forbidden/runs", "non-SC/runs"},
		Notes: []string{
			"SC never exhibits a forbidden outcome; CoRR/CoWW are coherence-guaranteed everywhere",
			"the rest are racy programs: fair game for every weakly ordered machine",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Test, r.Policy.String(),
			fmt.Sprintf("%d/%d", r.Forbidden, r.Runs),
			fmt.Sprintf("%d/%d", r.NonSC, r.Runs))
	}
	return rows, t, nil
}
