package exp

import (
	"fmt"

	"weakorder/internal/gen"
	"weakorder/internal/ideal"
	"weakorder/internal/litmus"
	"weakorder/internal/machine"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/scmatch"
	"weakorder/internal/sim"
	"weakorder/internal/stats"
	"weakorder/internal/workload"
)

func defaultEnum() ideal.EnumConfig {
	return ideal.EnumConfig{
		Interp:        ideal.Config{MaxMemOpsPerThread: 64},
		SkipTruncated: true,
		MaxPaths:      5_000_000,
	}
}

// Table1Row is one (write latency, policy) cell of the release-cost sweep.
type Table1Row struct {
	NetBase       sim.Time
	Policy        policy.Kind
	ReleaserStall float64
	TotalCycles   float64
}

// Table1 quantifies Section 6's claim: the releasing processor's stall at
// a synchronization operation grows with write latency under Definition 1
// but stays flat under the new implementation. It sweeps the network base
// latency on the Figure 3 scenario.
func Table1(seeds int) ([]Table1Row, *Table, error) {
	prog := litmus.Figure3()
	var rows []Table1Row
	for _, lat := range []sim.Time{5, 10, 20, 40, 80} {
		for _, pol := range []policy.Kind{policy.WODef1, policy.WODef2} {
			cfg := machine.Config{
				Policy: pol, Topology: machine.TopoNetwork, Caches: true,
				NetBase: lat, NetJitter: 4,
			}
			var stall, cyc uint64
			for s := 0; s < seeds; s++ {
				res, err := machine.Run(prog, cfg, int64(s)+1)
				if err != nil {
					return nil, nil, fmt.Errorf("table1 %v lat %d: %w", pol, lat, err)
				}
				stall += res.Stats.Procs[0].SyncStall()
				cyc += res.Stats.Cycles
			}
			rows = append(rows, Table1Row{
				NetBase:       lat,
				Policy:        pol,
				ReleaserStall: float64(stall) / float64(seeds),
				TotalCycles:   float64(cyc) / float64(seeds),
			})
		}
	}
	t := &Table{
		ID:      "Table 1",
		Title:   "Releasing processor's synchronization stall vs. write latency (Figure 3 scenario)",
		Headers: []string{"net latency", "policy", "P0 sync stall (cycles)", "total cycles"},
		Notes: []string{
			"Def.1's release stall grows with the latency of globally performing W(x)",
			"Def.2's release stall stays near the commit cost, independent of write latency",
		},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprint(r.NetBase), r.Policy.String(), r.ReleaserStall, r.TotalCycles)
	}
	return rows, t, nil
}

// Table2Row is one (procs, variant) cell of the Test&TestAndSet study.
type Table2Row struct {
	Procs          int
	Policy         policy.Kind
	Uncached       bool   // the uncached-Test ablation of WO-Def2+RO
	Variant        string // display label
	Cycles         float64
	SyncRequests   uint64 // protocol-level sync acquisitions per run
	ExclusiveXfers uint64 // directory forwards (ownership movement) per run
}

// Table2 quantifies the Section 6 refinement: under WO-Def2 the spinning
// Tests of Test&TestAndSet serialize as exclusive acquisitions of the
// lock line; under WO-Def2+RO they are cached shared reads that spin
// locally, collapsing the serialization. The uncached-Test ablation shows
// that serving Tests as remote value reads instead is no better than
// WO-Def2 under contention.
func Table2(rounds, seeds int) ([]Table2Row, *Table, error) {
	variants := []struct {
		pol      policy.Kind
		uncached bool
		label    string
	}{
		{policy.WODef2, false, "WO-Def2"},
		{policy.WODef2RO, false, "WO-Def2+RO (cached Test)"},
		{policy.WODef2RO, true, "WO-Def2+RO (uncached Test)"},
	}
	var rows []Table2Row
	for _, procs := range []int{2, 4, 8} {
		prog := litmus.TestAndTASWork(procs, rounds, 12)
		for _, v := range variants {
			cfg := machine.Config{
				Policy: v.pol, Topology: machine.TopoNetwork, Caches: true,
				ROUncachedTest: v.uncached,
			}
			var cyc, syncReq, fwds uint64
			for s := 0; s < seeds; s++ {
				res, err := machine.Run(prog, cfg, int64(s)*7+3)
				if err != nil {
					return nil, nil, fmt.Errorf("table2 %s %dp: %w", v.label, procs, err)
				}
				cyc += res.Stats.Cycles
				for i := range res.Stats.Caches {
					syncReq += res.Stats.Caches[i].SyncRequests
				}
				for i := range res.Stats.Dirs {
					fwds += res.Stats.Dirs[i].Forwards
				}
			}
			rows = append(rows, Table2Row{
				Procs:          procs,
				Policy:         v.pol,
				Uncached:       v.uncached,
				Variant:        v.label,
				Cycles:         float64(cyc) / float64(seeds),
				SyncRequests:   syncReq / uint64(seeds),
				ExclusiveXfers: fwds / uint64(seeds),
			})
		}
	}
	t := &Table{
		ID:      "Table 2",
		Title:   "Test&TestAndSet spinning under WO-Def2 vs the read-only-sync refinement (+ablation)",
		Headers: []string{"procs", "variant", "avg cycles", "sync protocol reqs", "dir forwards"},
		Notes: []string{
			"WO-Def2 serializes every spinning Test as an exclusive acquisition of the lock line",
			"the cached-Test refinement spins on local shared copies: fewer transfers, fewer cycles",
			"the uncached-Test ablation trades local spinning for remote value reads and loses",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Procs, r.Variant, r.Cycles, r.SyncRequests, r.ExclusiveXfers)
	}
	return rows, t, nil
}

// Table3Row is one (workload, procs, policy) cell of the overall study.
type Table3Row struct {
	Workload  string
	Procs     int
	Policy    policy.Kind
	Cycles    float64 // mean
	CyclesSD  float64
	SyncStall float64 // mean across processors summed per run
	VsSC      float64 // this policy's cycles / SC's cycles (same workload+procs)
}

// Table3 is the quantitative comparison the paper proposes in Section 7:
// total execution time of SC, Definition 1 and the new implementation
// across synchronization-intensive workloads and processor counts, with
// per-cell standard deviations over seeds and a normalized-to-SC column.
func Table3(seeds int) ([]Table3Row, *Table, error) {
	type wl struct {
		name string
		mk   func(procs int) *program.Program
	}
	workloads := []wl{
		{"critsec(3 rounds)", func(p int) *program.Program { return litmus.CriticalSection(p, 3) }},
		{"barrier", func(p int) *program.Program { return litmus.Barrier(p) }},
		{"datasync(8 data/sync)", func(p int) *program.Program { return workload.DataPerSync(p, 2, 8) }},
		{"datasync(1 data/sync)", func(p int) *program.Program { return workload.DataPerSync(p, 2, 1) }},
	}
	policies := []policy.Kind{policy.SC, policy.WODef1, policy.WODef2, policy.WODef2RO}
	var rows []Table3Row
	for _, w := range workloads {
		for _, procs := range []int{2, 4, 8} {
			prog := w.mk(procs)
			var scMean float64
			groupStart := len(rows)
			for _, pol := range policies {
				cfg := machine.Config{Policy: pol, Topology: machine.TopoNetwork, Caches: true}
				var cyc, stall stats.Sample
				for s := 0; s < seeds; s++ {
					res, err := machine.Run(prog, cfg, int64(s)*97+13)
					if err != nil {
						return nil, nil, fmt.Errorf("table3 %s %dp %v: %w", w.name, procs, pol, err)
					}
					cyc.AddUint(res.Stats.Cycles)
					var st uint64
					for i := range res.Stats.Procs {
						st += res.Stats.Procs[i].SyncStall()
					}
					stall.AddUint(st)
				}
				if pol == policy.SC {
					scMean = cyc.Mean()
				}
				rows = append(rows, Table3Row{
					Workload: w.name, Procs: procs, Policy: pol,
					Cycles: cyc.Mean(), CyclesSD: cyc.Stddev(), SyncStall: stall.Mean(),
				})
			}
			for i := groupStart; i < len(rows); i++ {
				if scMean > 0 {
					rows[i].VsSC = rows[i].Cycles / scMean
				}
			}
		}
	}
	t := &Table{
		ID:      "Table 3",
		Title:   "Total execution time: SC vs WO-Def1 vs WO-Def2 vs WO-Def2+RO (Section 7's proposed study)",
		Headers: []string{"workload", "procs", "policy", "cycles (mean±sd)", "vs SC", "avg sync stall"},
		Notes: []string{
			"SC pays per-access global-perform waits; Def.1 pays release-side drains;",
			"Def.2 shifts the wait to contending acquirers; +RO additionally removes Test serialization",
		},
	}
	for _, r := range rows {
		cell := fmt.Sprintf("%.1f", r.Cycles)
		if r.CyclesSD > 0 {
			cell = fmt.Sprintf("%.1f±%.1f", r.Cycles, r.CyclesSD)
		}
		t.AddRow(r.Workload, r.Procs, r.Policy.String(), cell, fmt.Sprintf("%.2fx", r.VsSC), r.SyncStall)
	}
	return rows, t, nil
}

// Table4Row is one (program class, policy) validation cell.
type Table4Row struct {
	Class     string
	Policy    policy.Kind
	Runs      int
	AppearsSC int
	Forbidden int // Dekker forbidden outcomes (racy class only)
}

// Table4 validates Definition 2 end to end: every run of every generated
// DRF0 program on every weakly ordered machine appears sequentially
// consistent, while the racy Dekker program exhibits non-SC outcomes on
// the same machines.
func Table4(programs, seedsPerProgram int) ([]Table4Row, *Table, error) {
	policies := []policy.Kind{policy.WODef1, policy.WODef2, policy.WODef2RO}
	var rows []Table4Row

	for _, pol := range policies {
		row := Table4Row{Class: "generated DRF0", Policy: pol}
		for pi := 0; pi < programs; pi++ {
			prog := gen.RaceFree(gen.RaceFreeConfig{Procs: 2, Sections: 2}, int64(pi))
			for s := 0; s < seedsPerProgram; s++ {
				cfg := machine.Config{Policy: pol, Topology: machine.TopoNetwork, Caches: true}
				res, err := machine.Run(prog, cfg, int64(s)*11+1)
				if err != nil {
					return nil, nil, fmt.Errorf("table4 %v: %w", pol, err)
				}
				row.Runs++
				m, err := scmatch.Matches(prog, res.Result, scmatch.Config{})
				if err != nil {
					return nil, nil, err
				}
				if m.OK {
					row.AppearsSC++
				}
			}
		}
		rows = append(rows, row)
	}

	dekker := litmus.Dekker()
	for _, pol := range policies {
		row := Table4Row{Class: "racy Dekker", Policy: pol}
		for s := 0; s < programs*seedsPerProgram; s++ {
			cfg := machine.Config{Policy: pol, Topology: machine.TopoNetwork, Caches: true, NetJitter: 20}
			res, err := machine.Run(dekker, cfg, int64(s))
			if err != nil {
				return nil, nil, err
			}
			row.Runs++
			if litmus.DekkerForbidden(res.Result) {
				row.Forbidden++
			}
			m, err := scmatch.Matches(dekker, res.Result, scmatch.Config{})
			if err != nil {
				return nil, nil, err
			}
			if m.OK {
				row.AppearsSC++
			}
		}
		rows = append(rows, row)
	}

	t := &Table{
		ID:      "Table 4",
		Title:   "Definition 2 validation: DRF0 programs always appear SC; racy programs need not",
		Headers: []string{"program class", "policy", "runs", "appears SC", "forbidden outcomes"},
		Notes: []string{
			"appears SC must equal runs for the DRF0 class (the paper's contract)",
			"forbidden outcomes > 0 for racy Dekker shows the hardware is genuinely weak",
		},
	}
	for _, r := range rows {
		t.AddRow(r.Class, r.Policy.String(), r.Runs, r.AppearsSC, r.Forbidden)
	}
	return rows, t, nil
}
