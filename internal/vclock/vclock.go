// Package vclock implements vector clocks and an online data-race
// detector for idealized executions, in the spirit of the dynamic
// race-detection work the paper cites (Netzer & Miller 1989). It detects
// the happens-before races of Definition 3 for a single observed
// execution in time near-linear in the execution length, rather than the
// quadratic pairwise analysis of package hb — making it the scalable
// cross-check for long executions.
//
// Clock discipline (djit+-style): each processor carries a vector clock;
// a synchronization operation on location L first acquires (joins L's
// released clock), is then checked and recorded, and finally — if it
// releases — stores the processor's clock into L and ticks the
// processor's own component. Under hb.SyncAll every synchronization
// operation releases; under hb.SyncWriterOrdered (the Section 6
// refinement) only synchronization operations with a write component do.
package vclock

import (
	"fmt"
	"strings"

	"weakorder/internal/hb"
	"weakorder/internal/mem"
)

// VC is a vector clock over a fixed number of processors.
type VC []uint64

// NewVC returns a zero clock for n processors.
func NewVC(n int) VC { return make(VC, n) }

// Clone returns an independent copy.
func (v VC) Clone() VC {
	out := make(VC, len(v))
	copy(out, v)
	return out
}

// Join sets v to the pointwise maximum of v and other.
func (v VC) Join(other VC) {
	for i, t := range other {
		if t > v[i] {
			v[i] = t
		}
	}
}

// Tick increments processor p's component.
func (v VC) Tick(p int) { v[p]++ }

// LEQ reports whether v ≤ other pointwise.
func (v VC) LEQ(other VC) bool {
	for i, t := range v {
		if t > other[i] {
			return false
		}
	}
	return true
}

// Concurrent reports whether neither clock precedes the other.
func (v VC) Concurrent(other VC) bool { return !v.LEQ(other) && !other.LEQ(v) }

// String renders the clock like "<1,0,3>".
func (v VC) String() string {
	parts := make([]string, len(v))
	for i, t := range v {
		parts[i] = fmt.Sprintf("%d", t)
	}
	return "<" + strings.Join(parts, ",") + ">"
}

// locState tracks per-location access history. Data and synchronization
// access histories are kept separately because sync-sync conflicts are
// ordered (hb.SyncAll) or exempt (hb.SyncWriterOrdered) while sync-data
// conflicts are genuine race candidates.
type locState struct {
	dataWriteVC VC   // join of clocks at all data writes
	dataReadVC  VC   // per-processor clock component at its last data read
	syncWriteVC VC   // join of clocks at all sync write components
	syncReadVC  VC   // per-processor clock component at its last sync read
	lastWriter  int  // processor of the most recent write of either kind, -1 if none
	released    VC   // clock stored by the last releasing sync op
	haveRelease bool // whether any sync op has released on this location
}

// Race describes one detected race: the operation whose execution exposed
// it and the processor of the earlier conflicting access.
type Race struct {
	// Op is the operation whose execution exposed the race.
	Op mem.Op
	// PriorProc is the processor of the earlier conflicting access.
	PriorProc int
	// PriorWrite reports whether the earlier access was a write.
	PriorWrite bool
}

// String renders the race.
func (r Race) String() string {
	kind := "read"
	if r.PriorWrite {
		kind = "write"
	}
	return fmt.Sprintf("race: %v concurrent with earlier %s by P%d", r.Op, kind, r.PriorProc)
}

// Detector consumes one execution's operations in completion order and
// reports happens-before data races online.
type Detector struct {
	mode   hb.SyncMode
	procs  int
	clocks []VC
	locs   map[mem.Addr]*locState
	races  []Race
}

// NewDetector returns a detector for executions of n processors.
func NewDetector(n int, mode hb.SyncMode) *Detector {
	d := &Detector{
		mode:   mode,
		procs:  n,
		clocks: make([]VC, n),
		locs:   make(map[mem.Addr]*locState),
	}
	for i := range d.clocks {
		d.clocks[i] = NewVC(n)
		// Start each processor's own component at 1 so that accesses with
		// no subsequent release are distinguishable from the zero clock
		// other processors hold for this component.
		d.clocks[i].Tick(i)
	}
	return d
}

func (d *Detector) loc(a mem.Addr) *locState {
	ls, ok := d.locs[a]
	if !ok {
		ls = &locState{
			dataWriteVC: NewVC(d.procs),
			dataReadVC:  NewVC(d.procs),
			syncWriteVC: NewVC(d.procs),
			syncReadVC:  NewVC(d.procs),
			lastWriter:  -1,
		}
		d.locs[a] = ls
	}
	return ls
}

// Observe processes the next operation in completion order.
func (d *Detector) Observe(op mem.Op) {
	if op.Proc < 0 || op.Proc >= d.procs {
		return // boundary/augmentation operations carry no new ordering here
	}
	ls := d.loc(op.Addr)
	clk := d.clocks[op.Proc]

	if op.IsSync() {
		// Acquire first: hb paths through this location's prior releasing
		// synchronization are real and may order earlier data accesses.
		// Under SyncPairedRA only read-component sync ops acquire.
		if ls.haveRelease && (d.mode != hb.SyncPairedRA || op.HasReadComponent()) {
			clk.Join(ls.released)
		}
		// A synchronization operation conflicts with *data* accesses to
		// the same location; sync-sync pairs are ordered (SyncAll) or
		// exempt (SyncWriterOrdered) and are not checked.
		if !ls.dataWriteVC.LEQ(clk) {
			d.races = append(d.races, Race{Op: op, PriorProc: ls.lastWriter, PriorWrite: true})
		}
		if op.HasWriteComponent() {
			for p, t := range ls.dataReadVC {
				if p != op.Proc && t > clk[p] {
					d.races = append(d.races, Race{Op: op, PriorProc: p, PriorWrite: false})
				}
			}
		}
		// Record this sync op's components in the sync history so later
		// *data* accesses racing with it are caught.
		if op.HasReadComponent() {
			ls.syncReadVC[op.Proc] = clk[op.Proc]
		}
		if op.HasWriteComponent() {
			ls.syncWriteVC.Join(clk)
			ls.lastWriter = op.Proc
		}
		// Release. Under SyncPairedRA successive releases do not acquire
		// from each other, so the location's released clock accumulates
		// by join (an acquire is ordered after every earlier release);
		// under the other modes each releaser has already acquired the
		// previous clock, so overwrite is equivalent.
		if d.mode == hb.SyncAll || op.HasWriteComponent() {
			if d.mode == hb.SyncPairedRA && ls.haveRelease {
				ls.released.Join(clk)
			} else {
				ls.released = clk.Clone()
			}
			ls.haveRelease = true
			clk.Tick(op.Proc)
		}
		return
	}

	switch op.Kind {
	case mem.Read:
		if !ls.dataWriteVC.LEQ(clk) || !ls.syncWriteVC.LEQ(clk) {
			d.races = append(d.races, Race{Op: op, PriorProc: ls.lastWriter, PriorWrite: true})
		}
		ls.dataReadVC[op.Proc] = clk[op.Proc]
	case mem.Write:
		if !ls.dataWriteVC.LEQ(clk) || !ls.syncWriteVC.LEQ(clk) {
			d.races = append(d.races, Race{Op: op, PriorProc: ls.lastWriter, PriorWrite: true})
		}
		for p, t := range ls.dataReadVC {
			if p != op.Proc && t > clk[p] {
				d.races = append(d.races, Race{Op: op, PriorProc: p, PriorWrite: false})
			}
		}
		for p, t := range ls.syncReadVC {
			if p != op.Proc && t > clk[p] {
				d.races = append(d.races, Race{Op: op, PriorProc: p, PriorWrite: false})
			}
		}
		ls.dataWriteVC.Join(clk)
		ls.lastWriter = op.Proc
	}
}

// Races returns the races detected so far.
func (d *Detector) Races() []Race { return d.races }

// HasRace reports whether any race was detected.
func (d *Detector) HasRace() bool { return len(d.races) > 0 }

// Clock returns a copy of processor p's current clock (for tests).
func (d *Detector) Clock(p int) VC { return d.clocks[p].Clone() }

// CheckExecution runs a fresh detector over an execution and returns the
// races found.
func CheckExecution(e *mem.Execution, mode hb.SyncMode) []Race {
	d := NewDetector(e.Procs, mode)
	for _, op := range e.Ops {
		d.Observe(op)
	}
	return d.Races()
}
