package vclock

import (
	"testing"
	"testing/quick"

	"weakorder/internal/hb"
	"weakorder/internal/ideal"
	"weakorder/internal/litmus"
	"weakorder/internal/program"
)

func TestVCBasics(t *testing.T) {
	a := NewVC(3)
	b := NewVC(3)
	a.Tick(0)
	a.Tick(0)
	b.Tick(1)
	if a.LEQ(b) || b.LEQ(a) {
		t.Error("clocks advanced on different components must be concurrent")
	}
	if !a.Concurrent(b) {
		t.Error("Concurrent must report true for incomparable clocks")
	}
	j := a.Clone()
	j.Join(b)
	if !a.LEQ(j) || !b.LEQ(j) {
		t.Error("join must dominate both inputs")
	}
	if j.String() != "<2,1,0>" {
		t.Errorf("String = %q, want <2,1,0>", j.String())
	}
}

func TestVCJoinProperties(t *testing.T) {
	mk := func(xs [3]uint8) VC {
		v := NewVC(3)
		for i, x := range xs {
			v[i] = uint64(x)
		}
		return v
	}
	// Join is commutative and idempotent.
	f := func(a, b [3]uint8) bool {
		x, y := mk(a), mk(b)
		j1 := x.Clone()
		j1.Join(y)
		j2 := y.Clone()
		j2.Join(x)
		if !j1.LEQ(j2) || !j2.LEQ(j1) {
			return false
		}
		j3 := j1.Clone()
		j3.Join(j1)
		return j3.LEQ(j1) && j1.LEQ(j3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVCLEQPartialOrder(t *testing.T) {
	mk := func(xs [3]uint8) VC {
		v := NewVC(3)
		for i, x := range xs {
			v[i] = uint64(x)
		}
		return v
	}
	refl := func(a [3]uint8) bool { v := mk(a); return v.LEQ(v) }
	trans := func(a, b, c [3]uint8) bool {
		x, y, z := mk(a), mk(b), mk(c)
		if x.LEQ(y) && y.LEQ(z) {
			return x.LEQ(z)
		}
		return true
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Error(err)
	}
}

func TestDetectorFindsDirectRace(t *testing.T) {
	e := litmus.Figure2b()
	races := CheckExecution(e, hb.SyncAll)
	if len(races) == 0 {
		t.Fatal("Figure 2(b) must contain races")
	}
}

func TestDetectorCleanOnFigure2a(t *testing.T) {
	e := litmus.Figure2a()
	if races := CheckExecution(e, hb.SyncAll); len(races) != 0 {
		t.Fatalf("Figure 2(a) must be race-free, got %v", races)
	}
}

func TestDetectorSyncChainOrders(t *testing.T) {
	// W(x) by P0, sync handoff, R(x) by P1: no race.
	p := litmus.MessagePassingBounded()
	it, err := ideal.RunSeed(p, ideal.Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if races := CheckExecution(it.Execution(), hb.SyncAll); len(races) != 0 {
		t.Fatalf("synchronized handoff must be race-free, got %v", races)
	}
}

// TestDetectorAgreesWithHB cross-validates the vector-clock detector
// against the exhaustive pairwise happens-before analysis on every
// enumerated execution of every litmus program, under both sync modes.
func TestDetectorAgreesWithHB(t *testing.T) {
	for _, prog := range litmus.All() {
		for _, mode := range []hb.SyncMode{hb.SyncAll, hb.SyncWriterOrdered, hb.SyncPairedRA} {
			cfg := ideal.EnumConfig{
				Interp:        ideal.Config{MaxMemOpsPerThread: 8},
				SkipTruncated: true,
				MaxPaths:      500_000,
			}
			checked := 0
			_, err := ideal.Enumerate(prog, cfg, func(it *ideal.Interp) error {
				checked++
				if checked > 200 {
					return ideal.ErrStop
				}
				exec := it.Execution()
				hbRaces := hb.Build(exec, mode).Races()
				vcRaces := CheckExecution(exec, mode)
				if (len(hbRaces) > 0) != (len(vcRaces) > 0) {
					t.Errorf("%s [%v]: hb found %d races, vclock found %d\nexecution:\n%v",
						prog.Name, mode, len(hbRaces), len(vcRaces), exec)
					return ideal.ErrStop
				}
				return nil
			})
			if err != nil && err != ideal.ErrBudget {
				t.Fatalf("%s: %v", prog.Name, err)
			}
		}
	}
}

func TestDetectorWriterOrderedReadOnlyPublication(t *testing.T) {
	// P0: W(data); SR(flag) completes before P1: SW(flag); R(data).
	// SyncAll: SR->SW edge orders the data accesses. WriterOrdered: no
	// edge from a read-only sync op; race.
	b := program.NewBuilder("ro-pub")
	data, flag := b.Var("data"), b.Var("flag")
	p0 := b.Thread()
	p0.StoreImm(data, 1)
	p0.SyncLoad(program.R0, flag)
	p1 := b.Thread()
	p1.SyncStoreImm(flag, 1)
	p1.Load(program.R1, data)
	p := b.MustBuild()

	it, err := ideal.RunSchedule(p, ideal.Config{}, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	exec := it.Execution()
	if races := CheckExecution(exec, hb.SyncAll); len(races) != 0 {
		t.Errorf("SyncAll: want race-free, got %v", races)
	}
	if races := CheckExecution(exec, hb.SyncWriterOrdered); len(races) == 0 {
		t.Error("SyncWriterOrdered: want a race through the dropped read-only edge")
	}
}

func TestDetectorReportsPriorAccessKind(t *testing.T) {
	p := litmus.Dekker()
	it, err := ideal.RunSchedule(p, ideal.Config{}, []int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	races := CheckExecution(it.Execution(), hb.SyncAll)
	if len(races) == 0 {
		t.Fatal("Dekker execution must race")
	}
	for _, r := range races {
		if r.String() == "" {
			t.Error("race must render")
		}
	}
}

func TestDetectorIgnoresBoundaryOps(t *testing.T) {
	d := NewDetector(2, hb.SyncAll)
	d.Observe(litmus.Figure2a().Ops[0]) // fine
	// Boundary proc ids must be ignored, not panic.
	d.Observe(litmus.Figure2b().Ops[0])
	aug := hb.Augment(litmus.Figure2a(), nil)
	for _, op := range aug.Ops {
		if op.Proc < 0 {
			d.Observe(op)
		}
	}
	if d.HasRace() {
		t.Error("observing boundary ops alone must not create races")
	}
}
