package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// The disabled path: a nil registry hands out nil instruments and
	// every method on them is a no-op. None of these may panic.
	var r *Registry
	c := r.Counter("c")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter must read 0")
	}
	g := r.Gauge("g")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 || g.Max() != 0 {
		t.Error("nil gauge must read 0")
	}
	h := r.Histogram("h", DepthBounds)
	h.Observe(7)
	if h.Hist() != nil {
		t.Error("nil histogram must expose nil Hist")
	}
	r.SetCounter("x", 9)
	if r.Snapshot() != nil {
		t.Error("nil registry must snapshot to nil")
	}

	var tl *Timeline
	tr := tl.Track("p0")
	tr.Begin("stall", 1)
	tr.End(5)
	tr.Span("s", 1, 2)
	tr.Mark("m", 3)
	tl.Close(10)
	if tl.SpanCount() != 0 {
		t.Error("nil timeline must count 0 spans")
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter must return the same instrument per name")
	}
	if r.Histogram("h", DepthBounds) != r.Histogram("h", DepthBounds) {
		t.Error("Histogram must return the same instrument per name")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a histogram with a new layout must panic")
		}
	}()
	r.Histogram("h", LatencyBounds)
}

func TestSnapshotAndMerge(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(10)
	r.Gauge("depth").Set(4)
	r.Gauge("depth").Set(2)
	r.Histogram("lat", LatencyBounds).Observe(3)

	s := r.Snapshot()
	if s.Counters["ops"] != 10 {
		t.Errorf("ops = %d", s.Counters["ops"])
	}
	if s.Gauges["depth"] != (GaugeValue{Value: 2, Max: 4}) {
		t.Errorf("depth = %+v", s.Gauges["depth"])
	}
	// Snapshots are deep copies: later updates must not leak in.
	r.Counter("ops").Inc()
	r.Histogram("lat", LatencyBounds).Observe(5)
	if s.Counters["ops"] != 10 || s.Histograms["lat"].Count != 1 {
		t.Error("snapshot mutated by later registry updates")
	}

	o := r.Snapshot()
	if err := s.Merge(o); err != nil {
		t.Fatal(err)
	}
	if s.Counters["ops"] != 21 {
		t.Errorf("merged ops = %d", s.Counters["ops"])
	}
	if s.Histograms["lat"].Count != 3 {
		t.Errorf("merged lat count = %d", s.Histograms["lat"].Count)
	}
	if err := s.Merge(nil); err != nil {
		t.Errorf("merging nil must be a no-op, got %v", err)
	}
}

func TestJSONDeterministic(t *testing.T) {
	build := func() *Snapshot {
		r := NewRegistry()
		// Register in different orders; map-keyed export must not care.
		for _, n := range []string{"b", "a", "c"} {
			r.Counter(n).Add(uint64(len(n)))
		}
		r.Histogram("lat", LatencyBounds).Observe(12)
		r.Gauge("q").Set(5)
		return r.Snapshot()
	}
	j1, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := build().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("equal snapshots must encode to identical JSON")
	}
	var back Snapshot
	if err := json.Unmarshal(j1, &back); err != nil {
		t.Fatalf("snapshot JSON must round-trip: %v", err)
	}
	if back.Counters["a"] != 1 {
		t.Error("round-trip lost counter values")
	}
}

func TestPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("cpu.0.stall.fence_wait").Add(7)
	r.Gauge("dir.0.queue").Set(3)
	h := r.Histogram("net.latency", []uint64{1, 10})
	h.Observe(1)
	h.Observe(5)
	h.Observe(100)
	out := string(r.Snapshot().Prometheus())

	for _, want := range []string{
		"# TYPE weakorder_cpu_0_stall_fence_wait counter\nweakorder_cpu_0_stall_fence_wait 7\n",
		"weakorder_dir_0_queue 3\n",
		"weakorder_dir_0_queue_max 3\n",
		"weakorder_net_latency_bucket{le=\"1\"} 1\n",
		"weakorder_net_latency_bucket{le=\"10\"} 2\n",
		"weakorder_net_latency_bucket{le=\"+Inf\"} 3\n",
		"weakorder_net_latency_sum 106\n",
		"weakorder_net_latency_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, out)
		}
	}
	if string(r.Snapshot().Prometheus()) != out {
		t.Error("Prometheus output must be deterministic")
	}
}
