package metrics

import (
	"bytes"
	"encoding/json"
	"testing"

	"weakorder/internal/sim"
)

func TestTrackSpans(t *testing.T) {
	tl := NewTimeline()
	tr := tl.Track("proc 0")

	tr.Begin("stall:fence", 10)
	tr.End(25)
	tr.Begin("stall:read", 30)
	// Begin with an open span ends it first.
	tr.Begin("stall:sync", 40)
	tr.Span("", 50, 50) // zero-length: dropped
	tr.Mark("commit", 12)
	tl.Close(60)

	if got := tl.SpanCount(); got != 3 {
		t.Fatalf("SpanCount = %d, want 3", got)
	}
	want := []span{
		{"stall:fence", 10, 25},
		{"stall:read", 30, 40},
		{"stall:sync", 40, 60},
	}
	for i, w := range want {
		if tr.spans[i] != w {
			t.Errorf("span[%d] = %+v, want %+v", i, tr.spans[i], w)
		}
	}
	// Close on an idle track is a no-op.
	tl.Close(70)
	if tl.SpanCount() != 3 {
		t.Error("Close must not add spans to idle tracks")
	}
}

func TestChromeTraceShape(t *testing.T) {
	tl := NewTimeline()
	p0 := tl.Track("proc 0")
	d0 := tl.Track("dir 0")
	p0.Span("stall:fence", 5, 9)
	d0.Span("pending:0x40", 2, 8)
	p0.Mark("commit W x", 9)

	out, err := tl.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   uint64  `json:"ts"`
			Dur  *uint64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5 (2 metadata + 2 spans + 1 instant)", len(doc.TraceEvents))
	}
	// Metadata first, in registration order.
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Tid != 1 ||
		doc.TraceEvents[1].Ph != "M" || doc.TraceEvents[1].Tid != 2 {
		t.Errorf("metadata events malformed: %+v", doc.TraceEvents[:2])
	}
	// Body grouped by track: proc 0's span+instant, then dir 0's span.
	if doc.TraceEvents[2].Name != "stall:fence" || doc.TraceEvents[2].Ph != "X" ||
		doc.TraceEvents[2].Dur == nil || *doc.TraceEvents[2].Dur != 4 {
		t.Errorf("span event malformed: %+v", doc.TraceEvents[2])
	}
	if doc.TraceEvents[3].Name != "commit W x" || doc.TraceEvents[3].Ph != "i" {
		t.Errorf("instant event malformed: %+v", doc.TraceEvents[3])
	}
	if doc.TraceEvents[4].Tid != 2 {
		t.Errorf("dir event on wrong track: %+v", doc.TraceEvents[4])
	}
}

// recordingWriter counts writes and tracks the largest single chunk —
// the streaming contract is that the exporter never hands the writer the
// whole trace at once.
type recordingWriter struct {
	buf      bytes.Buffer
	writes   int
	maxChunk int
}

func (w *recordingWriter) Write(p []byte) (int, error) {
	w.writes++
	if len(p) > w.maxChunk {
		w.maxChunk = len(p)
	}
	return w.buf.Write(p)
}

// TestWriteChromeTraceStreams: the streaming writer produces bytes
// identical to ChromeTrace, one bounded write per event rather than a
// single whole-trace write.
func TestWriteChromeTraceStreams(t *testing.T) {
	tl := NewTimeline()
	tracks := []*Track{tl.Track("p0"), tl.Track("p1"), tl.Track("d0")}
	for ti, tr := range tracks {
		for i := 0; i < 200; i++ {
			start := uint64(ti*7 + i*3)
			tr.Span("stall:fence", sim.Time(start), sim.Time(start+2))
			tr.Mark("commit", sim.Time(start+1))
		}
	}
	want, err := tl.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var rw recordingWriter
	if err := tl.WriteChromeTrace(&rw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rw.buf.Bytes(), want) {
		t.Fatal("streamed trace differs from ChromeTrace bytes")
	}
	// 3 metadata + 1200 events + header/footer: one write each.
	if wantWrites := 3 + 3*400 + 2; rw.writes != wantWrites {
		t.Errorf("writes = %d, want %d (one per event plus header/footer)", rw.writes, wantWrites)
	}
	// No single write may approach the trace size; a generous per-line
	// bound catches any regression back to whole-trace buffering.
	if rw.maxChunk > 512 {
		t.Errorf("largest single write = %d bytes; exporter is buffering, not streaming", rw.maxChunk)
	}
	if rw.maxChunk >= rw.buf.Len() {
		t.Errorf("a single write carried the whole %d-byte trace", rw.buf.Len())
	}
}

func TestWriteChromeTraceNil(t *testing.T) {
	var tl *Timeline
	if err := tl.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("WriteChromeTrace on a nil timeline must error")
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	build := func() *Timeline {
		tl := NewTimeline()
		a := tl.Track("a")
		b := tl.Track("b")
		b.Span("s2", 3, 7)
		a.Span("s1", 1, 4)
		a.Mark("m", 2)
		return tl
	}
	o1, err := build().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	o2, err := build().ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(o1, o2) {
		t.Error("equal timelines must export identical bytes")
	}
}
