package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// JSON renders the snapshot as indented JSON. encoding/json sorts map
// keys, so equal snapshots encode to identical bytes.
func (s *Snapshot) JSON() ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("metrics: JSON on a nil snapshot")
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// promName maps a dotted instrument name ("cpu.0.stall.fence_wait") to a
// Prometheus-legal metric name. Dots and other illegal runes become
// underscores, and everything gains a weakorder_ namespace prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("weakorder_")
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format: counters and gauges as plain samples, histograms as the
// conventional _bucket (cumulative, with le labels), _sum, and _count
// series. Output is sorted by instrument name, so it is deterministic.
func (s *Snapshot) Prometheus() []byte {
	if s == nil {
		return nil
	}
	var buf bytes.Buffer
	for _, n := range sortedKeys(s.Counters) {
		pn := promName(n)
		fmt.Fprintf(&buf, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n])
	}
	for _, n := range sortedKeys(s.Gauges) {
		pn := promName(n)
		g := s.Gauges[n]
		fmt.Fprintf(&buf, "# TYPE %s gauge\n%s %d\n%s_max %d\n", pn, pn, g.Value, pn, g.Max)
	}
	for _, n := range sortedKeys(s.Histograms) {
		pn := promName(n)
		h := s.Histograms[n]
		fmt.Fprintf(&buf, "# TYPE %s histogram\n", pn)
		var cum uint64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&buf, "%s_bucket{le=\"%d\"} %d\n", pn, b, cum)
		}
		fmt.Fprintf(&buf, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(&buf, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count)
	}
	return buf.Bytes()
}
