package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// JSON renders the snapshot as indented JSON. encoding/json sorts map
// keys, so equal snapshots encode to identical bytes.
func (s *Snapshot) JSON() ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("metrics: JSON on a nil snapshot")
	}
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// promName maps a dotted instrument name ("cpu.0.stall.fence_wait") to a
// Prometheus-legal metric name. Dots and other illegal runes become
// underscores, and everything gains a weakorder_ namespace prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("weakorder_")
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelName sanitizes a label name to the exposition-format grammar
// [a-zA-Z_][a-zA-Z0-9_]*.
func promLabelName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_',
			r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promSeries splits a registry key produced by Labeled into the base
// metric name and a rendered `{k="v",...}` label block (label names
// sanitized, values passed through — Labeled already escaped them). A
// key with no label block, or one whose block does not parse as the
// canonical Labeled encoding, is treated as an unlabeled metric whose
// whole key is the name (promName then flattens the braces).
func promSeries(key string) (name, labels string) {
	open := strings.IndexByte(key, '{')
	if open < 0 || !strings.HasSuffix(key, "}") {
		return promName(key), ""
	}
	rendered, ok := parseLabelBlock(key[open+1 : len(key)-1])
	if !ok {
		return promName(key), ""
	}
	return promName(key[:open]), rendered
}

// parseLabelBlock re-renders the canonical `k="v",k2="v2"` encoding with
// sanitized label names, reporting ok=false on any deviation from the
// grammar (an unescaped quote, a missing comma, a bare value).
func parseLabelBlock(s string) (string, bool) {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for len(s) > 0 {
		if !first {
			if s[0] != ',' {
				return "", false
			}
			s = s[1:]
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return "", false
		}
		key := s[:eq]
		rest := s[eq+2:]
		// Scan the escaped value for its closing quote.
		end := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return "", false
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(promLabelName(key))
		b.WriteString(`="`)
		b.WriteString(rest[:end])
		b.WriteByte('"')
		s = rest[end+1:]
	}
	b.WriteByte('}')
	return b.String(), true
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format: counters and gauges as plain samples, histograms as the
// conventional _bucket (cumulative, with le labels), _sum, and _count
// series. Registry keys carrying a Labeled(...) block render as labeled
// series of their base metric, with one # TYPE line per metric name
// (labeled series of one metric sort adjacently, since keys are sorted
// and '{' orders after every name rune). Output is sorted by instrument
// name, so it is deterministic.
func (s *Snapshot) Prometheus() []byte {
	if s == nil {
		return nil
	}
	var buf bytes.Buffer
	prevType := ""
	for _, n := range sortedKeys(s.Counters) {
		pn, labels := promSeries(n)
		if pn != prevType {
			fmt.Fprintf(&buf, "# TYPE %s counter\n", pn)
			prevType = pn
		}
		fmt.Fprintf(&buf, "%s%s %d\n", pn, labels, s.Counters[n])
	}
	prevType = ""
	for _, n := range sortedKeys(s.Gauges) {
		pn, labels := promSeries(n)
		g := s.Gauges[n]
		if pn != prevType {
			fmt.Fprintf(&buf, "# TYPE %s gauge\n", pn)
			prevType = pn
		}
		fmt.Fprintf(&buf, "%s%s %d\n%s_max%s %d\n", pn, labels, g.Value, pn, labels, g.Max)
	}
	prevType = ""
	for _, n := range sortedKeys(s.Histograms) {
		pn, labels := promSeries(n)
		h := s.Histograms[n]
		if pn != prevType {
			fmt.Fprintf(&buf, "# TYPE %s histogram\n", pn)
			prevType = pn
		}
		var cum uint64
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&buf, "%s_bucket%s %d\n", pn, bucketLabels(labels, b, false), cum)
		}
		fmt.Fprintf(&buf, "%s_bucket%s %d\n", pn, bucketLabels(labels, 0, true), h.Count)
		fmt.Fprintf(&buf, "%s_sum%s %d\n%s_count%s %d\n", pn, labels, h.Sum, pn, labels, h.Count)
	}
	return buf.Bytes()
}

// bucketLabels merges a histogram's own label block with the le bucket
// label.
func bucketLabels(labels string, bound uint64, inf bool) string {
	le := "+Inf"
	if !inf {
		le = fmt.Sprintf("%d", bound)
	}
	if labels == "" {
		return fmt.Sprintf("{le=%q}", le)
	}
	return fmt.Sprintf("%s,le=%q}", strings.TrimSuffix(labels, "}"), le)
}
