package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"weakorder/internal/sim"
)

// Timeline collects per-component span and instant events for export as
// Chrome trace_event JSON (chrome://tracing, Perfetto). Components own a
// Track each — one timeline row — and record what they were doing as
// [start, end) spans (a processor stalled on a fence, a directory line
// pending) and point-in-time instants (an op commit, a dropped message).
//
// Like the registry's instruments, a nil *Timeline hands out nil
// *Tracks, and every Track method is a no-op on a nil receiver, so
// recording sites need no enabled/disabled branches. Recording never
// draws RNG or schedules events; it cannot perturb the simulation.
type Timeline struct {
	tracks []*Track
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline {
	return &Timeline{}
}

// Track registers a named timeline row (nil on a nil timeline). Tracks
// are exported in registration order, so register them deterministically
// (the machine registers processors then directories by index).
func (tl *Timeline) Track(name string) *Track {
	if tl == nil {
		return nil
	}
	t := &Track{name: name, tid: len(tl.tracks) + 1}
	tl.tracks = append(tl.tracks, t)
	return t
}

// Close ends any open span on every track at the given time. Call once
// when the run finishes so in-progress stalls still appear.
func (tl *Timeline) Close(at sim.Time) {
	if tl == nil {
		return
	}
	for _, t := range tl.tracks {
		t.End(at)
	}
}

// span is one completed [start, end) interval on a track.
type span struct {
	name       string
	start, end sim.Time
}

// instant is a point event on a track.
type instant struct {
	name string
	at   sim.Time
}

// Track is one timeline row. Methods are no-ops on a nil receiver.
type Track struct {
	name     string
	tid      int
	spans    []span
	instants []instant

	openName string
	openAt   sim.Time
	open     bool
}

// Span records a completed [start, end) interval. Zero-length spans are
// dropped (they render invisibly and only bloat the export).
func (t *Track) Span(name string, start, end sim.Time) {
	if t == nil || end <= start {
		return
	}
	t.spans = append(t.spans, span{name: name, start: start, end: end})
}

// Begin opens a span at the given time, ending any previously open span
// there first. Tracks carry at most one open span — exactly the shape of
// a processor's stall state.
func (t *Track) Begin(name string, at sim.Time) {
	if t == nil {
		return
	}
	t.End(at)
	t.openName = name
	t.openAt = at
	t.open = true
}

// End closes the open span (if any) at the given time.
func (t *Track) End(at sim.Time) {
	if t == nil || !t.open {
		return
	}
	t.Span(t.openName, t.openAt, at)
	t.open = false
}

// Mark records an instant event.
func (t *Track) Mark(name string, at sim.Time) {
	if t == nil {
		return
	}
	t.instants = append(t.instants, instant{name: name, at: at})
}

// traceEvent is one entry in the Chrome trace_event "traceEvents" array.
// Simulated cycles are exported as microseconds (the format's time unit),
// so one cycle renders as 1µs in Perfetto.
type traceEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    uint64         `json:"ts"`
	Dur   *uint64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	S     string         `json:"s,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
	order int            // recording order within the track, sort tie-break
}

// WriteChromeTrace streams the timeline to w as Chrome trace_event JSON
// ({"traceEvents": [...]}). The output is deterministic: thread-name
// metadata first in track registration order, then spans and instants
// sorted by (track, timestamp, recording order). Events are encoded and
// written one line at a time, with at most one track's events buffered
// for sorting — a long simulation's trace never materializes in memory.
// Load the file in chrome://tracing or https://ui.perfetto.dev.
func (tl *Timeline) WriteChromeTrace(w io.Writer) error {
	if tl == nil {
		return fmt.Errorf("metrics: WriteChromeTrace on a nil timeline")
	}
	total := len(tl.tracks)
	for _, t := range tl.tracks {
		total += len(t.spans) + len(t.instants)
	}
	if _, err := io.WriteString(w, "{\"traceEvents\": [\n"); err != nil {
		return err
	}
	emitted := 0
	var line []byte
	emit := func(ev *traceEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		line = append(line[:0], "  "...)
		line = append(line, b...)
		emitted++
		if emitted < total {
			line = append(line, ',')
		}
		line = append(line, '\n')
		_, err = w.Write(line)
		return err
	}
	for _, t := range tl.tracks {
		err := emit(&traceEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  t.tid,
			Args: map[string]any{"name": t.name},
		})
		if err != nil {
			return err
		}
	}
	var body []traceEvent // reused across tracks
	for _, t := range tl.tracks {
		body = body[:0]
		for i, s := range t.spans {
			dur := uint64(s.end - s.start)
			body = append(body, traceEvent{
				Name: s.name, Ph: "X", Ts: uint64(s.start), Dur: &dur,
				Pid: 1, Tid: t.tid, Cat: "span", order: i,
			})
		}
		for i, in := range t.instants {
			body = append(body, traceEvent{
				Name: in.name, Ph: "i", Ts: uint64(in.at),
				Pid: 1, Tid: t.tid, S: "t", Cat: "instant",
				order: len(t.spans) + i,
			})
		}
		sort.SliceStable(body, func(i, j int) bool {
			a, b := body[i], body[j]
			if a.Ts != b.Ts {
				return a.Ts < b.Ts
			}
			return a.order < b.order
		})
		for i := range body {
			if err := emit(&body[i]); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "], \"displayTimeUnit\": \"ms\"}\n")
	return err
}

// ChromeTrace renders the timeline as one in-memory byte slice — a
// convenience wrapper over WriteChromeTrace for small traces and tests.
// Callers exporting a full simulation should stream with WriteChromeTrace
// instead.
func (tl *Timeline) ChromeTrace() ([]byte, error) {
	if tl == nil {
		return nil, fmt.Errorf("metrics: ChromeTrace on a nil timeline")
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SpanCount returns the total number of completed spans (0 on nil) —
// used by tests and the schema checker.
func (tl *Timeline) SpanCount() int {
	if tl == nil {
		return 0
	}
	n := 0
	for _, t := range tl.tracks {
		n += len(t.spans)
	}
	return n
}
