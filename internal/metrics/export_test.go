package metrics

import (
	"regexp"
	"strings"
	"testing"
)

// Exposition-format grammar, per the Prometheus text format spec: metric
// and label names, and a full sample line with an optional label block
// whose values may contain \\, \", and \n escapes but no raw quote,
// backslash, or newline.
var (
	promMetricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	promSampleRe     = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9]+(\.[0-9]+)?|\+Inf|-Inf|NaN)$`)
	promTypeRe = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

// lintPromText validates Prometheus text exposition output the way
// promlint does structurally: every line is a TYPE comment or a valid
// sample, each metric has exactly one TYPE line, and every sample's
// metric name matches its most recent TYPE declaration (modulo the
// histogram _bucket/_sum/_count and gauge _max suffixes). It returns the
// set of sample lines by metric name for further assertions.
func lintPromText(t *testing.T, text []byte) map[string][]string {
	t.Helper()
	samples := make(map[string][]string)
	typed := make(map[string]bool)
	current := ""
	for i, line := range strings.Split(strings.TrimRight(string(text), "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition output", i+1)
		}
		if strings.HasPrefix(line, "#") {
			m := promTypeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed comment %q", i+1, line)
			}
			if typed[m[1]] {
				t.Fatalf("line %d: duplicate # TYPE for %q", i+1, m[1])
			}
			typed[m[1]] = true
			current = m[1]
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
		name := m[1]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count"), "_max")
		if name != current && base != current {
			t.Fatalf("line %d: sample %q not under its # TYPE (current %q)", i+1, name, current)
		}
		samples[name] = append(samples[name], line)
	}
	return samples
}

// TestPrometheusConformance is the promlint-style escape/grammar check:
// instrument names with every rune class the registry sees in practice,
// plus labeled series whose values contain quotes, backslashes,
// newlines, commas, braces, and non-ASCII text, must all render to
// grammatically valid exposition text with the values recoverable by
// unescaping.
func TestPrometheusConformance(t *testing.T) {
	r := NewRegistry()
	r.SetCounter("campaign.programs", 7)
	r.SetCounter("coverage.WO-Def2+RO.racy.sims", 3) // worst-case rune soup
	r.SetCounter("check.skips_total", 2)             // unlabeled sibling of a labeled family
	r.SetCounter(Labeled("check.skips_total", "stage", "oracle"), 1)
	r.SetCounter(Labeled("check.skips_total", "stage", "classify"), 1)
	r.SetCounter(Labeled("check.satfast.fallback_total", "reason", "ambiguous-rf"), 4)
	hostile := `quote " backslash \ newline` + "\n" + `comma , brace } équipe`
	r.SetCounter(Labeled("check.hostile_total", "v", hostile, "zz.bad-key", "x"), 9)
	r.Gauge("queue.depth").Set(5)
	r.Gauge(Labeled("queue.depth.labeled", "dir", "0")).Set(2)
	r.Histogram("lat", []uint64{1, 2}).Observe(1)
	r.Histogram(Labeled("lat.labeled", "class", "req"), []uint64{1, 2}).Observe(2)

	text := r.Snapshot().Prometheus()
	samples := lintPromText(t, text)

	// Every rendered metric and label name obeys the grammar (lint above
	// already enforces it; spot-check the interesting renames).
	for name := range samples {
		if !promMetricNameRe.MatchString(name) {
			t.Errorf("metric name %q escaped the grammar", name)
		}
	}
	if _, ok := samples["weakorder_coverage_WO_Def2_RO_racy_sims"]; !ok {
		t.Errorf("punctuated instrument name not flattened; have %v", keys(samples))
	}

	// The labeled family shares one metric name, with the stage label
	// carrying the dimension.
	got := samples["weakorder_check_skips_total"]
	if len(got) != 3 {
		t.Fatalf("check.skips_total family = %d series, want 3:\n%s", len(got), strings.Join(got, "\n"))
	}
	wantSeries := []string{
		`weakorder_check_skips_total 2`,
		`weakorder_check_skips_total{stage="classify"} 1`,
		`weakorder_check_skips_total{stage="oracle"} 1`,
	}
	for i, want := range wantSeries {
		if got[i] != want {
			t.Errorf("series %d = %q, want %q", i, got[i], want)
		}
	}

	// Hostile label values survive as valid escapes that unescape back to
	// the original, and the malformed label key is sanitized.
	hs := samples["weakorder_check_hostile_total"]
	if len(hs) != 1 {
		t.Fatalf("hostile metric = %v", hs)
	}
	if !strings.Contains(hs[0], `zz_bad_key="x"`) {
		t.Errorf("label key not sanitized: %q", hs[0])
	}
	start := strings.Index(hs[0], `v="`) + len(`v="`)
	end := strings.Index(hs[0][start:], `",`) // next label follows (keys sorted: v < zz…)
	if end < 0 {
		t.Fatalf("cannot locate v label in %q", hs[0])
	}
	unescaped := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n").Replace(hs[0][start : start+end])
	if unescaped != hostile {
		t.Errorf("label value round-trip:\n got  %q\n want %q", unescaped, hostile)
	}

	// Labeled histogram buckets merge the series labels with le.
	if b := samples["weakorder_lat_labeled_bucket"]; len(b) != 3 ||
		!strings.Contains(b[0], `{class="req",le="1"}`) {
		t.Errorf("labeled histogram buckets malformed: %v", b)
	}
}

// TestLabeledCanonical pins the encoding: sorted keys, escaped values,
// and panic on an odd kv list.
func TestLabeledCanonical(t *testing.T) {
	got := Labeled("m", "b", "2", "a", "1")
	if want := `m{a="1",b="2"}`; got != want {
		t.Errorf("Labeled = %q, want %q", got, want)
	}
	got = Labeled("m", "k", `a"b\c`+"\n")
	if want := `m{k="a\"b\\c\n"}`; got != want {
		t.Errorf("Labeled escape = %q, want %q", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Labeled with odd kv list did not panic")
		}
	}()
	Labeled("m", "k")
}

func keys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
