// Package metrics is the simulator-wide telemetry layer: a deterministic
// registry of counters, gauges, and fixed-bucket histograms, plus a
// structured span/event timeline (timeline.go) with JSON, Prometheus-text,
// and Chrome trace_event exporters (export.go).
//
// Two properties shape the design:
//
//   - Off is free. Every instrument method is a no-op on a nil receiver
//     and a nil *Registry hands out nil instruments, so instrumentation
//     sites update instruments unconditionally — the disabled cost is one
//     nil check, with no conditional plumbing at call sites.
//
//   - On is invisible. Instruments only record; they never draw from any
//     RNG, never schedule kernel events, and never change control flow,
//     so enabling telemetry cannot perturb a simulation. The machine's
//     determinism tests pin this: traces, stats, and corpus replays are
//     byte-identical with telemetry on or off, and two equal-seed runs
//     produce identical snapshots.
//
// Hot-path updates are allocation-free after registration: a counter
// bump is one add through a pointer, a histogram observation a short
// linear scan over its fixed bounds. Registration (Counter, Gauge,
// Histogram) allocates and is meant for construction time.
package metrics

import (
	"fmt"
	"sort"

	"weakorder/internal/stats"
)

// Counter is a monotonically increasing count. Methods are no-ops on a
// nil receiver.
type Counter struct {
	name string
	v    uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.v += d
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins instrument that also tracks its maximum.
// Methods are no-ops on a nil receiver.
type Gauge struct {
	name string
	v    int64
	max  int64
}

// Set records v as the current value (and updates the running maximum).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add adjusts the current value by d.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.Set(g.v + d)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the largest value ever set (0 on nil).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram is a fixed-bucket histogram (stats.Hist) with a registry
// name. Methods are no-ops on a nil receiver.
type Histogram struct {
	name string
	h    *stats.Hist
}

// Observe records one observation.
func (h *Histogram) Observe(v uint64) {
	if h != nil {
		h.h.Observe(v)
	}
}

// Hist exposes the underlying histogram (nil on a nil receiver).
func (h *Histogram) Hist() *stats.Hist {
	if h == nil {
		return nil
	}
	return h.h
}

// Standard bucket layouts. Fixed layouts keep snapshots mergeable and
// byte-comparable across runs.
var (
	// LatencyBounds covers message/transaction latencies in cycles:
	// 1, 2, 4, …, 32768.
	LatencyBounds = stats.ExpBounds(1, 2, 16)
	// DepthBounds covers queue depths: 1, 2, 4, …, 512.
	DepthBounds = stats.ExpBounds(1, 2, 10)
	// HoldBounds covers hold/defer durations in cycles: 1, 2, 4, …, 65536.
	HoldBounds = stats.ExpBounds(1, 2, 17)
)

// Registry holds named instruments. A nil *Registry is the disabled
// registry: it hands out nil instruments and snapshots to nil.
// Registration is idempotent per name; a histogram re-registered with a
// different bucket layout panics (layouts are part of the metric's
// identity).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter registers (or retrieves) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge registers (or retrieves) the named gauge; nil on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram registers (or retrieves) the named histogram with the given
// bucket bounds; nil on a nil registry. Re-registration with a different
// layout panics.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{name: name, h: stats.NewHist(bounds)}
		r.hists[name] = h
		return h
	}
	if !h.h.SameLayout(stats.NewHist(bounds)) {
		panic(fmt.Sprintf("metrics: histogram %q re-registered with a different bucket layout", name))
	}
	return h
}

// Labeled encodes label pairs into an instrument name:
// Labeled("check.skips_total", "stage", "oracle") yields
// `check.skips_total{stage="oracle"}`. Keys are sorted and values are
// escaped per the Prometheus text exposition rules (backslash, quote,
// newline), so the encoding is unambiguous; the Prometheus exporter
// renders such instruments as labeled series of the base metric, while
// the JSON snapshot keeps the full encoded string as an ordinary map
// key. kv must be an even-length key/value list.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 || len(kv)%2 != 0 {
		panic(fmt.Sprintf("metrics: Labeled(%q) needs key-value pairs, got %d strings", name, len(kv)))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b []byte
	b = append(b, name...)
	b = append(b, '{')
	for i, p := range pairs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, p.k...)
		b = append(b, '=', '"')
		b = appendEscapedLabelValue(b, p.v)
		b = append(b, '"')
	}
	b = append(b, '}')
	return string(b)
}

// appendEscapedLabelValue escapes a label value for the text exposition
// format: backslash, double quote, and newline become \\, \", and \n.
func appendEscapedLabelValue(b []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, v[i])
		}
	}
	return b
}

// SetCounter is a convenience for publishing an already-aggregated total
// (component stats harvested at end of run): it registers name and sets
// its value, overwriting any prior count.
func (r *Registry) SetCounter(name string, v uint64) {
	if r == nil {
		return
	}
	c := r.Counter(name)
	c.v = v
}

// Snapshot captures every instrument's current state. Maps are keyed by
// instrument name; JSON encoding sorts map keys, so snapshots of equal
// state are byte-identical.
type Snapshot struct {
	Counters   map[string]uint64      `json:"counters"`
	Gauges     map[string]GaugeValue  `json:"gauges"`
	Histograms map[string]*stats.Hist `json:"histograms"`
}

// GaugeValue is a gauge's exported state.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot captures the registry (nil on a nil registry). Instrument
// state is deep-copied: later updates do not mutate the snapshot.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]GaugeValue, len(r.gauges)),
		Histograms: make(map[string]*stats.Hist, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.v
	}
	for n, g := range r.gauges {
		s.Gauges[n] = GaugeValue{Value: g.v, Max: g.max}
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.h.Clone()
	}
	return s
}

// Merge folds o into s: counters add, gauges keep the latest value but
// the running max, histograms bucket-merge (stats.Hist.Merge). Merging
// per-run snapshots yields campaign-level aggregates.
func (s *Snapshot) Merge(o *Snapshot) error {
	if o == nil {
		return nil
	}
	for n, v := range o.Counters {
		s.Counters[n] += v
	}
	for n, g := range o.Gauges {
		cur, ok := s.Gauges[n]
		if !ok {
			s.Gauges[n] = g
			continue
		}
		if g.Max > cur.Max {
			cur.Max = g.Max
		}
		cur.Value = g.Value
		s.Gauges[n] = cur
	}
	for n, h := range o.Histograms {
		cur, ok := s.Histograms[n]
		if !ok {
			s.Histograms[n] = h.Clone()
			continue
		}
		if err := cur.Merge(h); err != nil {
			return fmt.Errorf("metrics: %s: %w", n, err)
		}
	}
	return nil
}

// sortedKeys returns m's keys in sorted order (generic helper for the
// deterministic exporters).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
