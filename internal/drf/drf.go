// Package drf implements the paper's Definition 3: a program obeys the
// synchronization model Data-Race-Free-0 iff (1) all synchronization
// operations are hardware recognizable and access exactly one memory
// location, and (2) for every execution on the idealized architecture all
// conflicting accesses are ordered by that execution's happens-before
// relation.
//
// Condition (1) holds by construction for programs in this repository's
// IR: OpSyncLoad/OpSyncStore/OpTAS/OpSwap are the recognizable
// synchronization opcodes and each names exactly one location. Condition
// (2) is checked by exhaustively enumerating idealized executions
// (package ideal), augmenting each with the initial/final boundary
// operations (package hb), and searching for conflicting unordered pairs.
//
// The package also supports the Section 6 refinement via
// hb.SyncWriterOrdered, under which read-only synchronization operations
// do not order the issuing processor's prior accesses for other
// processors.
package drf

import (
	"fmt"

	"weakorder/internal/hb"
	"weakorder/internal/ideal"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// CheckConfig bounds the exhaustive check.
type CheckConfig struct {
	// Enum bounds enumeration of idealized executions.
	Enum ideal.EnumConfig
	// AllRaces collects races from every racy execution instead of
	// stopping at the first racy execution found.
	AllRaces bool
	// CheckValues additionally verifies the Lemma 1 value condition
	// (reads see the hb-last write) on every race-free execution,
	// failing the check with an error if it is violated. This is a
	// self-test of the idealized interpreter.
	CheckValues bool
}

// Verdict is the outcome of a DRF0 check.
type Verdict struct {
	// DRF reports whether every enumerated execution was race free.
	DRF bool
	// Races holds witness races: those of the first racy execution, or of
	// all racy executions when AllRaces was set (deduplicated by operation
	// identity).
	Races []hb.Race
	// Witness is the first racy execution (augmented form), nil if DRF.
	Witness *mem.Execution
	// Executions is the number of idealized executions examined.
	Executions int
	// Truncated is the number of abandoned (budget-exceeded) paths.
	Truncated int
}

// String summarizes the verdict.
func (v Verdict) String() string {
	if v.DRF {
		return fmt.Sprintf("DRF0: yes (%d executions)", v.Executions)
	}
	return fmt.Sprintf("DRF0: NO (%d races across %d executions)", len(v.Races), v.Executions)
}

// Check decides whether p obeys DRF0 (or the refined model selected by
// mode) by exhaustive enumeration.
func Check(p *program.Program, mode hb.SyncMode, cfg CheckConfig) (Verdict, error) {
	var v Verdict
	v.DRF = true
	seen := make(map[raceKey]bool)

	stats, err := ideal.Enumerate(p, cfg.Enum, func(it *ideal.Interp) error {
		exec := it.Execution()
		g := hb.BuildAugmented(exec, p.Init, mode)
		races := hb.RealRaces(g.Races())
		if len(races) > 0 {
			if v.DRF {
				v.DRF = false
				v.Witness = g.Execution()
			}
			for _, r := range races {
				k := keyOf(r)
				if !seen[k] {
					seen[k] = true
					v.Races = append(v.Races, r)
				}
			}
			if !cfg.AllRaces {
				return ideal.ErrStop
			}
			return nil
		}
		if cfg.CheckValues {
			if err := g.CheckReadsSeeLastWrite(p.Init); err != nil {
				return fmt.Errorf("drf: value condition violated on race-free execution: %w", err)
			}
		}
		return nil
	})
	v.Executions = stats.Executions
	v.Truncated = stats.Truncated
	if err != nil {
		return v, err
	}
	return v, nil
}

// CheckExecution checks a single idealized execution (e.g. the hand-coded
// Figure 2 executions) against Definition 3's condition (2): it augments,
// builds happens-before, and returns the conflicting unordered pairs among
// real operations. An empty slice means the execution obeys DRF0.
func CheckExecution(e *mem.Execution, init map[mem.Addr]mem.Value, mode hb.SyncMode) []hb.Race {
	g := hb.BuildAugmented(e, init, mode)
	return hb.RealRaces(g.Races())
}

type raceKey struct{ a, b mem.OpID }

func keyOf(r hb.Race) raceKey {
	a, b := r.A.ID(), r.B.ID()
	if b.Less(a) {
		a, b = b, a
	}
	return raceKey{a: a, b: b}
}
