package drf

import (
	"testing"

	"weakorder/internal/hb"
	"weakorder/internal/ideal"
	"weakorder/internal/litmus"
	"weakorder/internal/program"
)

func boundedCfg() CheckConfig {
	return CheckConfig{
		Enum: ideal.EnumConfig{
			Interp:        ideal.Config{MaxMemOpsPerThread: 12},
			SkipTruncated: true,
		},
	}
}

func TestDekkerIsNotDRF0(t *testing.T) {
	v, err := Check(litmus.Dekker(), hb.SyncAll, CheckConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if v.DRF {
		t.Fatal("racy Dekker must violate DRF0")
	}
	if len(v.Races) == 0 || v.Witness == nil {
		t.Fatal("verdict must carry race witnesses")
	}
}

func TestDekkerSyncIsDRF0(t *testing.T) {
	v, err := Check(litmus.DekkerSync(), hb.SyncAll, CheckConfig{CheckValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if !v.DRF {
		t.Fatalf("sync Dekker must obey DRF0; races: %v", v.Races)
	}
	if v.Executions == 0 {
		t.Fatal("no executions enumerated")
	}
}

func TestMessagePassingBoundedIsDRF0(t *testing.T) {
	v, err := Check(litmus.MessagePassingBounded(), hb.SyncAll, CheckConfig{CheckValues: true})
	if err != nil {
		t.Fatal(err)
	}
	if !v.DRF {
		t.Fatalf("synchronized message passing must obey DRF0; races: %v", v.Races)
	}
}

func TestMessagePassingRacyViolatesDRF0(t *testing.T) {
	v, err := Check(litmus.MessagePassingRacy(), hb.SyncAll, CheckConfig{AllRaces: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.DRF {
		t.Fatal("unsynchronized message passing must violate DRF0")
	}
	// Both the data race on data and the race on flag must show up.
	addrs := make(map[string]bool)
	for _, r := range v.Races {
		addrs[r.A.Label] = true
	}
	if !addrs["data"] || !addrs["flag"] {
		t.Errorf("expected races on both data and flag, got %v", v.Races)
	}
}

func TestCriticalSectionIsDRF0(t *testing.T) {
	v, err := Check(litmus.CriticalSection(2, 1), hb.SyncAll, boundedCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !v.DRF {
		t.Fatalf("lock-protected counter must obey DRF0; races: %v", v.Races)
	}
	if v.Executions == 0 {
		t.Fatal("no executions enumerated")
	}
}

func TestRacyCounterViolatesDRF0(t *testing.T) {
	v, err := Check(litmus.RacyCounter(2, 1), hb.SyncAll, boundedCfg())
	if err != nil {
		t.Fatal(err)
	}
	if v.DRF {
		t.Fatal("unprotected counter must violate DRF0")
	}
}

func TestBarrierIsDRF0(t *testing.T) {
	v, err := Check(litmus.Barrier(2), hb.SyncAll, boundedCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !v.DRF {
		t.Fatalf("barrier program must obey DRF0; races: %v", v.Races)
	}
}

func TestTestAndTASUnderBothModes(t *testing.T) {
	// Test&TestAndSet obeys DRF0 proper.
	p := litmus.TestAndTAS(2, 1)
	v, err := Check(p, hb.SyncAll, boundedCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !v.DRF {
		t.Fatalf("Test&TAS must obey DRF0; races: %v", v.Races)
	}
	// And it also obeys the refined model: the ordering-carrying release
	// is the Unset (a sync write) and the acquire is the TAS (a sync RMW);
	// the read-only Tests carry no ordering duty for the data accesses.
	v2, err := Check(p, hb.SyncWriterOrdered, boundedCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !v2.DRF {
		t.Fatalf("Test&TAS must obey the refined model; races: %v", v2.Races)
	}
}

func TestReadOnlySyncPublicationViolatesRefinedModel(t *testing.T) {
	// Publication through a read-only sync op on the producer side:
	//   P0: W(data); SR(flag)   (Test cannot release)
	//   P1: SW(flag); R(data)
	// Under DRF0 proper the flag sync ops order the accesses... only if
	// the so edge direction helps; build it so it does: P0's SR completes
	// before P1's SW, giving SR -> SW so edge, hence W(data) hb R(data).
	// Under the refined model that edge is dropped: race.
	b := program.NewBuilder("ro-pub")
	data, flag := b.Var("data"), b.Var("flag")
	p0 := b.Thread()
	p0.StoreImm(data, 1)
	p0.SyncLoad(program.R0, flag)
	p1 := b.Thread()
	p1.SyncStoreImm(flag, 1)
	p1.Load(program.R1, data)
	p := b.MustBuild()

	v, err := Check(p, hb.SyncAll, CheckConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Under DRF0 proper some interleavings order everything, but the
	// interleaving where P1 runs entirely first leaves W(data) and
	// R(data) unordered (SW before SR gives SW->SR, no path from W to R).
	if v.DRF {
		t.Fatal("expected a racy interleaving under DRF0 proper too")
	}
	v2, err := Check(p, hb.SyncWriterOrdered, CheckConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if v2.DRF {
		t.Fatal("read-only publication must violate the refined model")
	}
}

func TestCheckExecutionFigure2(t *testing.T) {
	if races := CheckExecution(litmus.Figure2a(), nil, hb.SyncAll); len(races) != 0 {
		t.Errorf("Figure 2(a): races = %v, want none", races)
	}
	if races := CheckExecution(litmus.Figure2b(), nil, hb.SyncAll); len(races) == 0 {
		t.Error("Figure 2(b): expected races")
	}
}

func TestVerdictString(t *testing.T) {
	v := Verdict{DRF: true, Executions: 5}
	if v.String() == "" {
		t.Error("empty verdict string")
	}
	v2 := Verdict{DRF: false, Races: make([]hb.Race, 2), Executions: 3}
	if v2.String() == "" {
		t.Error("empty verdict string")
	}
}

func TestFigure3IsDRF0(t *testing.T) {
	v, err := Check(litmus.Figure3Work(1), hb.SyncAll, boundedCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !v.DRF {
		t.Fatalf("Figure 3 scenario must obey DRF0; races: %v", v.Races)
	}
}
