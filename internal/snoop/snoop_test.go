package snoop

import (
	"math/rand"
	"testing"

	"weakorder/internal/cache"
	"weakorder/internal/mem"
	"weakorder/internal/sim"
	"weakorder/internal/trace"
)

type rig struct {
	k      *sim.Kernel
	bus    *Bus
	caches []*Cache
}

func newRig(n int, cfgFn func(*Config)) *rig {
	k := &sim.Kernel{}
	bus := NewBus(k, BusConfig{TransferLatency: 3, MemLatency: 4})
	r := &rig{k: k, bus: bus}
	for i := 0; i < n; i++ {
		cfg := Config{}
		if cfgFn != nil {
			cfgFn(&cfg)
		}
		r.caches = append(r.caches, NewCache(k, bus, cfg))
	}
	return r
}

func (r *rig) settle(t *testing.T) {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		if r.k.Pending() == 0 && r.bus.Idle() {
			return
		}
		r.k.Tick()
	}
	t.Fatal("rig did not settle")
}

func (r *rig) doOp(t *testing.T, c int, kind mem.Kind, addr mem.Addr, data mem.Value) mem.Value {
	t.Helper()
	var got mem.Value
	done := false
	r.caches[c].Issue(&cache.Req{Kind: kind, Addr: addr, Data: data,
		OnCommit: func(v mem.Value) { got = v; done = true }})
	r.settle(t)
	if !done {
		t.Fatalf("cache %d: %v on %d did not commit", c, kind, addr)
	}
	return got
}

func TestReadMissFromMemory(t *testing.T) {
	r := newRig(2, nil)
	r.bus.SetInit(5, 42)
	if v := r.doOp(t, 0, mem.Read, 5, 0); v != 42 {
		t.Fatalf("read = %d, want 42", v)
	}
	if st, _ := r.caches[0].LineInfo(5); st != LineShared {
		t.Fatalf("state %v, want Shared", st)
	}
	if r.bus.Stats().MemSupplied != 1 {
		t.Error("memory must supply the first fill")
	}
}

func TestWriteTakesExclusiveAndInvalidates(t *testing.T) {
	r := newRig(3, nil)
	r.bus.SetInit(1, 7)
	r.doOp(t, 1, mem.Read, 1, 0)
	r.doOp(t, 2, mem.Read, 1, 0)
	if v := r.doOp(t, 0, mem.Write, 1, 9); v != 9 {
		t.Fatal("write value")
	}
	for _, c := range []int{1, 2} {
		if st, _ := r.caches[c].LineInfo(1); st != LineInvalid {
			t.Errorf("cache %d not invalidated (%v)", c, st)
		}
	}
	if v := r.doOp(t, 1, mem.Read, 1, 0); v != 9 {
		t.Fatalf("re-read = %d, want 9 (cache supplied)", v)
	}
	if r.bus.Stats().CacheSupplied == 0 {
		t.Error("the dirty owner must supply the re-read")
	}
	// The downgrade flushed memory.
	if r.bus.MemValue(1) != 9 {
		t.Errorf("memory = %d after flush, want 9", r.bus.MemValue(1))
	}
}

func TestUpgradeFromShared(t *testing.T) {
	r := newRig(2, nil)
	r.bus.SetInit(2, 3)
	r.doOp(t, 0, mem.Read, 2, 0)
	r.doOp(t, 1, mem.Read, 2, 0)
	if v := r.doOp(t, 0, mem.Write, 2, 8); v != 8 {
		t.Fatal("upgrade write")
	}
	if st, _ := r.caches[1].LineInfo(2); st != LineInvalid {
		t.Error("other sharer must invalidate on BusUpgr")
	}
	if r.caches[0].Stats().Upgrades == 0 {
		t.Error("upgrade not counted")
	}
}

func TestRacingUpgrades(t *testing.T) {
	// Both caches shared, both upgrade simultaneously: the loser's copy is
	// invalidated and its BusUpgr degenerates to a refetch; both writes
	// serialize correctly.
	r := newRig(2, nil)
	r.bus.SetInit(4, 0)
	r.doOp(t, 0, mem.Read, 4, 0)
	r.doOp(t, 1, mem.Read, 4, 0)
	var order []mem.Value
	done := 0
	for i := 0; i < 2; i++ {
		val := mem.Value(i + 1)
		r.caches[i].Issue(&cache.Req{Kind: mem.Write, Addr: 4, Data: val,
			OnCommit: func(v mem.Value) { order = append(order, v); done++ }})
	}
	r.settle(t)
	if done != 2 {
		t.Fatalf("only %d writes committed", done)
	}
	// Exactly one exclusive copy remains, holding one of the values.
	owners := 0
	for _, c := range r.caches {
		if _, dirty := c.Snoop(4); dirty {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("%d exclusive owners, want 1", owners)
	}
}

func TestTASMutualExclusion(t *testing.T) {
	r := newRig(3, nil)
	wins := 0
	done := 0
	for i := 0; i < 3; i++ {
		r.caches[i].Issue(&cache.Req{Kind: mem.SyncRMW, Addr: 9, Data: 1,
			OnCommit: func(v mem.Value) {
				if v == 0 {
					wins++
				}
				done++
			}})
	}
	r.settle(t)
	if done != 3 || wins != 1 {
		t.Fatalf("done=%d wins=%d, want 3/1", done, wins)
	}
}

func TestReserveRetriesSyncTransactions(t *testing.T) {
	r := newRig(2, func(c *Config) { c.UseReserve = true })
	// c0 owns s; a data write holds the counter up; the release commits
	// as a local hit (reserving s); c1's TAS then lands on the bus AHEAD
	// of c0's remaining data writes (FIFO), so it executes while the
	// counter is still positive and must retry.
	r.doOp(t, 0, mem.SyncRMW, 9, 1) // own s
	c0 := r.caches[0]
	c0.Issue(&cache.Req{Kind: mem.Write, Addr: 0, Data: 1})
	released := false
	c0.Issue(&cache.Req{Kind: mem.SyncWrite, Addr: 9, Data: 0,
		OnCommit: func(v mem.Value) { released = true }})
	gotLock := mem.Value(-1)
	r.caches[1].Issue(&cache.Req{Kind: mem.SyncRMW, Addr: 9, Data: 1,
		OnCommit: func(v mem.Value) { gotLock = v }})
	// Post-release data writes keep the counter up past the TAS's first
	// bus grant.
	for i := 1; i < 4; i++ {
		c0.Issue(&cache.Req{Kind: mem.Write, Addr: mem.Addr(i), Data: 1})
	}
	for i := 0; i < 3 && !released; i++ {
		r.k.Tick()
	}
	if !released {
		t.Fatal("release did not commit promptly (local hit expected)")
	}
	if len(c0.ReservedLines()) != 1 {
		t.Fatalf("reserved lines %v, want [9]", c0.ReservedLines())
	}
	r.settle(t)
	if gotLock != 0 {
		t.Fatalf("acquirer read %d, want 0 (post-release)", gotLock)
	}
	if r.bus.Stats().Retries == 0 {
		t.Error("expected bus retries against the reserved line")
	}
	if len(c0.ReservedLines()) != 0 {
		t.Error("reserve must clear at counter zero")
	}
}

func TestROSyncBypassSharesLine(t *testing.T) {
	r := newRig(2, func(c *Config) { c.ROSyncBypass = true })
	r.doOp(t, 0, mem.SyncRMW, 9, 1) // c0 exclusive, val 1
	if v := r.doOp(t, 1, mem.SyncRead, 9, 0); v != 1 {
		t.Fatalf("Test read %d, want 1", v)
	}
	if st, _ := r.caches[0].LineInfo(9); st != LineShared {
		t.Error("owner must downgrade on a cached Test")
	}
	if st, _ := r.caches[1].LineInfo(9); st != LineShared {
		t.Error("tester must cache a shared copy")
	}
	// The second Test hits locally.
	before := r.caches[1].Stats().Hits
	r.doOp(t, 1, mem.SyncRead, 9, 0)
	if r.caches[1].Stats().Hits != before+1 {
		t.Error("second Test must hit locally")
	}
}

func TestEvictionWritesBack(t *testing.T) {
	r := newRig(1, func(c *Config) { c.Capacity = 2 })
	r.doOp(t, 0, mem.Write, 1, 11)
	r.doOp(t, 0, mem.Write, 2, 22)
	r.doOp(t, 0, mem.Write, 3, 33)
	if r.caches[0].Stats().Evicted == 0 {
		t.Fatal("expected an eviction")
	}
	if r.bus.MemValue(1) != 11 {
		t.Fatalf("memory[1] = %d, want 11", r.bus.MemValue(1))
	}
	if v := r.doOp(t, 0, mem.Read, 1, 0); v != 11 {
		t.Fatalf("re-read = %d", v)
	}
}

func TestLineStateStrings(t *testing.T) {
	for _, s := range []LineState{LineInvalid, LineShared, LineExclusive} {
		if s.String() == "" {
			t.Error("empty state name")
		}
	}
	for _, k := range []txKind{busRd, busRdX, busUpgr} {
		if k.String() == "" {
			t.Error("empty tx name")
		}
	}
}

// TestSnoopFuzz mirrors the directory fuzzer: random overlapping storms
// checked against coherence and RMW atomicity.
func TestSnoopFuzz(t *testing.T) {
	configs := []struct {
		name string
		fn   func(*Config)
	}{
		{"plain", nil},
		{"reserve", func(c *Config) { c.UseReserve = true }},
		{"reserve+ro", func(c *Config) { c.UseReserve = true; c.ROSyncBypass = true }},
		{"tiny", func(c *Config) { c.Capacity = 2 }},
	}
	for _, cc := range configs {
		cc := cc
		t.Run(cc.name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				snoopFuzzOnce(t, cc.fn, seed)
			}
		})
	}
}

func snoopFuzzOnce(t *testing.T, cfgFn func(*Config), seed int64) {
	t.Helper()
	const (
		nCaches = 3
		nAddrs  = 4
		nOps    = 40
	)
	r := newRig(nCaches, cfgFn)
	rng := rand.New(rand.NewSource(seed))
	syncAddr := mem.Addr(nAddrs - 1)

	counters := make([]int, nCaches)
	pendingSync := make([]bool, nCaches)
	var committed []mem.Op
	issued := 0
	for i := 0; i < nOps*nCaches; i++ {
		c := rng.Intn(nCaches)
		if pendingSync[c] {
			r.k.Tick()
			continue
		}
		var kind mem.Kind
		var addr mem.Addr
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			kind, addr = mem.Read, mem.Addr(rng.Intn(nAddrs-1))
		case 4, 5, 6:
			kind, addr = mem.Write, mem.Addr(rng.Intn(nAddrs-1))
		case 7:
			kind, addr = mem.SyncRMW, syncAddr
		case 8:
			kind, addr = mem.SyncWrite, syncAddr
		default:
			kind, addr = mem.SyncRead, syncAddr
		}
		data := mem.Value(rng.Intn(50) + 1)
		op := mem.Op{Proc: c, Index: counters[c], Kind: kind, Addr: addr, Data: data}
		if kind == mem.SyncRead {
			op.Data = 0
		}
		counters[c]++
		issued++
		cIdx := c
		if kind.IsSync() {
			pendingSync[c] = true
		}
		r.caches[c].Issue(&cache.Req{Kind: kind, Addr: addr, Data: op.Data,
			OnCommit: func(v mem.Value) {
				done := op
				done.Got = v
				committed = append(committed, done)
				if done.Kind.IsSync() {
					pendingSync[cIdx] = false
				}
			}})
		for g := rng.Intn(3); g > 0; g-- {
			r.k.Tick()
		}
	}
	r.settle(t)
	if len(committed) != issued {
		t.Fatalf("seed %d: %d of %d committed", seed, len(committed), issued)
	}
	for i, c := range r.caches {
		if c.Busy() || c.Counter() != 0 || len(c.ReservedLines()) != 0 {
			t.Fatalf("seed %d: cache %d not drained", seed, i)
		}
	}
	exec := &mem.Execution{Ops: committed, Procs: nCaches}
	if err := trace.CheckCoherence(exec, nil); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if err := trace.CheckRMWAtomicity(exec, nil); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
}
