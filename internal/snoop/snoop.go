// Package snoop implements a snoopy-bus MSI invalidation protocol — the
// coherence substrate of the paper's Figure 1 row "shared-bus systems
// with caches" and the protocol family of the Rudolph & Segall work the
// paper cites. It is an alternative to the directory protocol in package
// cache: one shared bus serializes transactions globally; every cache
// observes every transaction in the same order; memory responds when no
// cache owns the line.
//
// Transactions are atomic with respect to one another (the bus grants
// one at a time), so a write both commits and is globally performed when
// its transaction completes — there is no separate invalidation-
// acknowledgement phase. The Section 5.3 reserve-bit mechanism is still
// meaningful: a synchronization operation can commit while the
// processor's *earlier* writes are still queued for the bus, and a
// reserved line's owner then responds to other processors'
// synchronization transactions with a bus retry (the paper's
// negative-acknowledgement option) until its counter reads zero.
//
// The snoopy machine plugs into the same processor model (cpu.MemPort).
package snoop

import (
	"fmt"
	"sort"

	"weakorder/internal/cache"
	"weakorder/internal/mem"
	"weakorder/internal/sim"
)

// LineState is a snooping cache's view of one line (MSI).
type LineState uint8

// Line states.
const (
	LineInvalid LineState = iota
	LineShared
	LineExclusive
)

// String names the state.
func (s LineState) String() string {
	switch s {
	case LineInvalid:
		return "Invalid"
	case LineShared:
		return "Shared"
	case LineExclusive:
		return "Exclusive"
	default:
		return fmt.Sprintf("LineState(%d)", uint8(s))
	}
}

// txKind is a bus transaction type.
type txKind uint8

const (
	// busRd requests a shared copy.
	busRd txKind = iota
	// busRdX requests an exclusive copy (write or synchronization).
	busRdX
	// busUpgr upgrades a shared copy to exclusive without a data reply.
	busUpgr
)

func (k txKind) String() string {
	switch k {
	case busRd:
		return "BusRd"
	case busRdX:
		return "BusRdX"
	case busUpgr:
		return "BusUpgr"
	default:
		return fmt.Sprintf("txKind(%d)", uint8(k))
	}
}

// tx is one bus transaction.
type tx struct {
	kind      txKind
	addr      mem.Addr
	requester int
	sync      bool
	enq       sim.Time
}

// Config parameterizes one snooping cache.
type Config struct {
	// HitLatency is the cycles from issue to commit on a hit (>= 1).
	HitLatency sim.Time
	// Capacity bounds resident lines (0 = unbounded); FIFO victims,
	// skipping reserved lines.
	Capacity int
	// UseReserve enables the Section 5.3 reserve bits with bus retries.
	UseReserve bool
	// ROSyncBypass treats read-only synchronization operations as reads
	// (BusRd, shared copies) — the Section 6 refinement.
	ROSyncBypass bool
}

// BusConfig parameterizes the shared bus and memory.
type BusConfig struct {
	// TransferLatency is one transaction's bus occupancy (>= 1).
	TransferLatency sim.Time
	// MemLatency is added when memory (not a cache) supplies the data.
	MemLatency sim.Time
	// RetryDelay is the re-arbitration delay after a retried (NACKed)
	// transaction (>= 1).
	RetryDelay sim.Time
}

// Stats counts bus activity.
type Stats struct {
	Transactions  uint64
	Retries       uint64
	MemSupplied   uint64 // data supplied by memory
	CacheSupplied uint64 // data supplied by an owning cache
	MaxQueue      int
}

// Bus is the shared bus plus memory: the single serialization point.
type Bus struct {
	k      *sim.Kernel
	cfg    BusConfig
	caches []*Cache
	memory map[mem.Addr]mem.Value
	queue  []*tx
	busy   bool
	stats  Stats
}

// NewBus constructs the bus/memory complex.
func NewBus(k *sim.Kernel, cfg BusConfig) *Bus {
	if cfg.TransferLatency == 0 {
		cfg.TransferLatency = 1
	}
	if cfg.MemLatency == 0 {
		cfg.MemLatency = 1
	}
	if cfg.RetryDelay == 0 {
		cfg.RetryDelay = 5
	}
	return &Bus{k: k, cfg: cfg, memory: make(map[mem.Addr]mem.Value)}
}

// SetInit installs an initial memory value.
func (b *Bus) SetInit(a mem.Addr, v mem.Value) { b.memory[a] = v }

// MemValue reads memory (may be stale for lines owned by a cache).
func (b *Bus) MemValue(a mem.Addr) mem.Value { return b.memory[a] }

// Stats returns bus statistics.
func (b *Bus) Stats() Stats { return b.stats }

// Idle reports whether no transaction is queued or in flight.
func (b *Bus) Idle() bool { return !b.busy && len(b.queue) == 0 }

// attach registers a cache (called by NewCache).
func (b *Bus) attach(c *Cache) int {
	b.caches = append(b.caches, c)
	return len(b.caches) - 1
}

// request enqueues a transaction and starts arbitration.
func (b *Bus) request(t *tx) {
	t.enq = b.k.Now()
	b.queue = append(b.queue, t)
	if len(b.queue) > b.stats.MaxQueue {
		b.stats.MaxQueue = len(b.queue)
	}
	if !b.busy {
		b.grant()
	}
}

// grant runs the head transaction after the transfer latency. The bus is
// held through the transaction's data phase (a non-split, atomic bus):
// the next transaction cannot begin until the current one's fill has
// landed, so two transactions can never observe half-transferred
// ownership.
func (b *Bus) grant() {
	if len(b.queue) == 0 {
		b.busy = false
		return
	}
	b.busy = true
	head := b.queue[0]
	b.queue = b.queue[1:]
	b.k.After(b.cfg.TransferLatency, func() {
		extra := b.execute(head)
		b.k.After(extra, b.grant)
	})
}

// execute performs one transaction atomically: every cache snoops it in
// the same instant (the bus broadcast), then the requester is answered.
// The returned duration is the data phase the bus stays held for.
func (b *Bus) execute(t *tx) sim.Time {
	b.stats.Transactions++
	req := b.caches[t.requester]

	// A transaction targeting a line another cache holds reserved is
	// retried (the paper's NACK option): a reserved line never leaves its
	// owner, nor downgrades, until the owner's counter reads zero. The
	// owner's own outstanding transactions are never retried (its lines
	// cannot be reserved at another cache while it owns them), so the
	// counter always drains and retries terminate.
	for i, c := range b.caches {
		if i == t.requester {
			continue
		}
		if c.holdsReserved(t.addr) {
			b.stats.Retries++
			b.k.After(b.cfg.RetryDelay, func() { b.request(t) })
			return 0
		}
	}

	switch t.kind {
	case busRd:
		var supplied *mem.Value
		for i, c := range b.caches {
			if i == t.requester {
				continue
			}
			if v, had := c.snoopRd(t.addr); had {
				supplied = &v
			}
		}
		val := b.memory[t.addr]
		lat := b.cfg.MemLatency
		if supplied != nil {
			val = *supplied
			b.memory[t.addr] = val // owner flushes on downgrade
			lat = 0
			b.stats.CacheSupplied++
		} else {
			b.stats.MemSupplied++
		}
		b.k.After(lat, func() { req.fillShared(t.addr, val) })
		return lat
	case busRdX, busUpgr:
		var supplied *mem.Value
		for i, c := range b.caches {
			if i == t.requester {
				continue
			}
			if v, had := c.snoopRdX(t.addr); had {
				supplied = &v
			}
		}
		val := b.memory[t.addr]
		lat := b.cfg.MemLatency
		if supplied != nil {
			val = *supplied
			lat = 0
			b.stats.CacheSupplied++
		} else if t.kind == busUpgr {
			// The upgrader normally still has the data; if a racing BusRdX
			// invalidated its copy, the memory value (kept current by MSI
			// snoop flushes and writebacks) serves as the fallback.
			lat = 0
		} else {
			b.stats.MemSupplied++
		}
		if t.kind == busUpgr {
			v := val
			b.k.After(lat, func() { req.upgraded(t.addr, v) })
		} else {
			b.k.After(lat, func() { req.fillExclusive(t.addr, val) })
		}
		return lat
	}
	return 0
}

// writeBack flushes a dirty line to memory (eviction).
func (b *Bus) writeBack(a mem.Addr, v mem.Value) { b.memory[a] = v }

// ---------------------------------------------------------------------------

type line struct {
	state    LineState
	val      mem.Value
	reserved bool
	insertAt uint64
}

type pendingOp struct {
	req *cache.Req
}

type lineMiss struct {
	ops     []*cache.Req
	upgrade bool
	sync    bool
	counted bool
}

// Cache is one snooping cache; it implements cpu.MemPort.
type Cache struct {
	k       *sim.Kernel
	bus     *Bus
	id      int
	cfg     Config
	lines   map[mem.Addr]*line
	misses  map[mem.Addr]*lineMiss
	counter int
	fillSeq uint64
	stats   CacheStats
}

// CacheStats counts cache activity.
type CacheStats struct {
	Hits     uint64
	Misses   uint64
	Upgrades uint64
	Evicted  uint64
}

// NewCache constructs a snooping cache on the bus.
func NewCache(k *sim.Kernel, bus *Bus, cfg Config) *Cache {
	if cfg.HitLatency == 0 {
		cfg.HitLatency = 1
	}
	c := &Cache{
		k:      k,
		bus:    bus,
		cfg:    cfg,
		lines:  make(map[mem.Addr]*line),
		misses: make(map[mem.Addr]*lineMiss),
	}
	c.id = bus.attach(c)
	return c
}

// Counter implements cpu.MemPort: outstanding data transactions (bus
// transactions are globally performed at completion, so no ack phase).
func (c *Cache) Counter() int { return c.counter }

// Busy implements cpu.MemPort.
func (c *Cache) Busy() bool { return len(c.misses) > 0 }

// Stats returns cache statistics.
func (c *Cache) Stats() CacheStats { return c.stats }

// Snoop (the machine's final-state probe) returns the value and whether
// the line is exclusively held.
func (c *Cache) Snoop(a mem.Addr) (mem.Value, bool) {
	if l, ok := c.lines[a]; ok && l.state == LineExclusive {
		return l.val, true
	}
	return 0, false
}

// LineInfo exposes state and reserve bit for tests.
func (c *Cache) LineInfo(a mem.Addr) (LineState, bool) {
	if l, ok := c.lines[a]; ok {
		return l.state, l.reserved
	}
	return LineInvalid, false
}

// ReservedLines lists reserved addresses (tests).
func (c *Cache) ReservedLines() []mem.Addr {
	var out []mem.Addr
	for a, l := range c.lines {
		if l.reserved {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// isROSyncRead reports whether r takes the Section 6 read path.
func (c *Cache) isROSyncRead(r *cache.Req) bool {
	return r.Kind == mem.SyncRead && c.cfg.ROSyncBypass
}

// Issue implements cpu.MemPort.
func (c *Cache) Issue(r *cache.Req) {
	if m, ok := c.misses[r.Addr]; ok {
		m.ops = append(m.ops, r)
		return
	}
	l, present := c.lines[r.Addr]
	needX := !(r.Kind == mem.Read || c.isROSyncRead(r))
	if present && (!needX || l.state == LineExclusive) {
		c.stats.Hits++
		// The line mutation is atomic at issue time (the bus serializes
		// everything else around this instant); only the callbacks are
		// delayed by the hit latency.
		got, fire := c.apply(l, r)
		c.k.After(c.cfg.HitLatency, func() { fire(got) })
		return
	}
	c.stats.Misses++
	m := &lineMiss{ops: []*cache.Req{r}, sync: r.Kind.IsSync() && !c.isROSyncRead(r)}
	c.misses[r.Addr] = m
	if !m.sync {
		m.counted = true
		c.counter++
	}
	switch {
	case !needX:
		c.bus.request(&tx{kind: busRd, addr: r.Addr, requester: c.id})
	case present: // Shared -> Exclusive
		m.upgrade = true
		c.stats.Upgrades++
		c.bus.request(&tx{kind: busUpgr, addr: r.Addr, requester: c.id, sync: m.sync})
	default:
		c.bus.request(&tx{kind: busRdX, addr: r.Addr, requester: c.id, sync: m.sync})
	}
}

// apply performs r's state change against the resident line immediately
// and returns the read value plus a callback runner for the (possibly
// delayed) commit notification.
func (c *Cache) apply(l *line, r *cache.Req) (mem.Value, func(mem.Value)) {
	var got mem.Value
	switch r.Kind {
	case mem.Read, mem.SyncRead:
		got = l.val
	case mem.Write, mem.SyncWrite:
		l.val = r.Data
		got = r.Data
	case mem.SyncRMW:
		got = l.val
		l.val = r.Data
	}
	if r.Kind.IsSync() && !c.isROSyncRead(r) && c.cfg.UseReserve && c.counter > 0 {
		l.reserved = true
	}
	return got, func(v mem.Value) {
		if r.OnCommit != nil {
			r.OnCommit(v)
		}
		if r.OnGlobal != nil {
			// Bus transactions are atomic: commit == globally performed
			// (no other copies can exist for a write).
			r.OnGlobal()
		}
	}
}

// commit applies r and fires its callbacks immediately (fill paths).
func (c *Cache) commit(l *line, r *cache.Req) {
	got, fire := c.apply(l, r)
	fire(got)
}

// holdsReserved reports whether this cache holds a reserved copy of a
// (any state) with a positive counter — the bus retry condition.
func (c *Cache) holdsReserved(a mem.Addr) bool {
	if !c.cfg.UseReserve {
		return false
	}
	l, ok := c.lines[a]
	return ok && l.reserved && c.counter > 0
}

// snoopRd services another cache's BusRd: an exclusive owner downgrades
// and supplies the data.
func (c *Cache) snoopRd(a mem.Addr) (mem.Value, bool) {
	l, ok := c.lines[a]
	if !ok || l.state != LineExclusive {
		return 0, false
	}
	l.state = LineShared
	l.reserved = false
	return l.val, true
}

// snoopRdX services another cache's BusRdX/BusUpgr: any copy invalidates;
// an exclusive owner additionally supplies the data.
func (c *Cache) snoopRdX(a mem.Addr) (mem.Value, bool) {
	l, ok := c.lines[a]
	if !ok {
		return 0, false
	}
	had := l.state == LineExclusive
	v := l.val
	delete(c.lines, a)
	return v, had
}

// fillShared completes a BusRd.
func (c *Cache) fillShared(a mem.Addr, v mem.Value) {
	c.install(a, v, LineShared)
}

// fillExclusive completes a BusRdX.
func (c *Cache) fillExclusive(a mem.Addr, v mem.Value) {
	c.install(a, v, LineExclusive)
}

// upgraded completes a BusUpgr: the local shared copy becomes exclusive.
// If a racing BusRdX invalidated the copy while the upgrade was queued,
// the transaction behaved as a full BusRdX (the bus snooped all other
// copies and computed the current value v), so the line installs fresh.
func (c *Cache) upgraded(a mem.Addr, v mem.Value) {
	if l, ok := c.lines[a]; ok {
		l.state = LineExclusive
		c.drain(a, l)
		return
	}
	c.install(a, v, LineExclusive)
}

// install fills a line and drains the miss.
func (c *Cache) install(a mem.Addr, v mem.Value, st LineState) {
	c.makeRoom()
	l := &line{state: st, val: v, insertAt: c.fillSeq}
	c.fillSeq++
	c.lines[a] = l
	c.drain(a, l)
}

// drain commits the queued operations; an op needing exclusive on a
// shared fill reissues an upgrade.
func (c *Cache) drain(a mem.Addr, l *line) {
	m := c.misses[a]
	if m == nil {
		panic(fmt.Sprintf("snoop %d: fill for %d without a miss", c.id, a))
	}
	if m.counted {
		c.decCounter()
		m.counted = false
	}
	for len(m.ops) > 0 {
		r := m.ops[0]
		needX := !(r.Kind == mem.Read || c.isROSyncRead(r))
		if needX && l.state != LineExclusive {
			m.upgrade = true
			m.sync = r.Kind.IsSync() && !c.isROSyncRead(r)
			c.stats.Upgrades++
			if !m.sync && !m.counted {
				m.counted = true
				c.counter++
			}
			c.bus.request(&tx{kind: busUpgr, addr: a, requester: c.id, sync: m.sync})
			return
		}
		m.ops = m.ops[1:]
		c.commit(l, r)
	}
	delete(c.misses, a)
}

// decCounter decrements the counter and clears reserve bits at zero.
func (c *Cache) decCounter() {
	if c.counter <= 0 {
		panic(fmt.Sprintf("snoop %d: counter underflow", c.id))
	}
	c.counter--
	if c.counter > 0 {
		return
	}
	for _, l := range c.lines {
		l.reserved = false
	}
}

// makeRoom evicts a FIFO victim when at capacity, skipping reserved
// lines; dirty victims write back to memory synchronously (the bus
// transaction for the fill has already been serialized, and modeling the
// writeback as part of it keeps the protocol atomic).
func (c *Cache) makeRoom() {
	if c.cfg.Capacity <= 0 || len(c.lines) < c.cfg.Capacity {
		return
	}
	var victim mem.Addr
	var vl *line
	for a, l := range c.lines {
		if l.reserved {
			continue
		}
		if vl == nil || l.insertAt < vl.insertAt {
			victim, vl = a, l
		}
	}
	if vl == nil {
		return // all reserved: overflow
	}
	c.stats.Evicted++
	if vl.state == LineExclusive {
		c.bus.writeBack(victim, vl.val)
	}
	delete(c.lines, victim)
}
