// Package trace analyzes machine executions (commit-ordered operation
// traces): it verifies the per-location ordering invariants the paper's
// Section 5.1 conditions promise — write serialization (condition 2),
// synchronization atomicity (condition 3) — and renders executions in
// the paper's figure style (one column per processor, time flowing down).
//
// The checkers run on *any* execution, so tests apply them to every
// simulator run: a protocol bug that breaks coherence fails these checks
// even when the end-to-end result happens to look plausible.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"weakorder/internal/faults"
	"weakorder/internal/mem"
)

// WriteOrder returns, per location, the writes (operations with a write
// component) in commit order — the total order per location that
// condition 2 of Section 5.1 requires all processors to observe.
func WriteOrder(e *mem.Execution) map[mem.Addr][]mem.Op {
	out := make(map[mem.Addr][]mem.Op)
	for _, op := range e.Ops {
		if op.HasWriteComponent() {
			out[op.Addr] = append(out[op.Addr], op)
		}
	}
	return out
}

// CheckCoherence verifies per-location write serialization against the
// values reads observed: for each processor and location, the reads (in
// commit order) must observe values at non-decreasing positions of the
// location's write order, starting from the initial value. init supplies
// initial memory contents (absent entries are zero).
//
// The check is the executable form of condition 2: "all writes to the
// same location can be totally ordered based on their commit times, and
// this is the order in which they are observed by all processors".
func CheckCoherence(e *mem.Execution, init map[mem.Addr]mem.Value) error {
	writes := WriteOrder(e)
	// pointer[proc][addr] = index into writes[addr] of the last write the
	// processor observed; -1 = still at the initial value.
	type key struct {
		proc int
		addr mem.Addr
	}
	pointer := make(map[key]int)

	valueAt := func(addr mem.Addr, pos int) mem.Value {
		if pos < 0 {
			return init[addr]
		}
		return writes[addr][pos].Data
	}

	for _, op := range e.Ops {
		if !op.HasReadComponent() || op.Proc < 0 {
			continue
		}
		k := key{proc: op.Proc, addr: op.Addr}
		cur, ok := pointer[k]
		if !ok {
			cur = -1
		}
		// The read may re-observe the current position or any later one.
		found := false
		if valueAt(op.Addr, cur) == op.Got {
			found = true
		} else {
			for pos := cur + 1; pos < len(writes[op.Addr]); pos++ {
				if writes[op.Addr][pos].Data == op.Got {
					pointer[k] = pos
					found = true
					break
				}
			}
		}
		if !found {
			return fmt.Errorf("trace: coherence violation: %v observed %d, but no write at or after position %d of the serialization %v supplies it",
				op, op.Got, cur, summarizeWrites(writes[op.Addr]))
		}
		// An RMW observes and immediately succeeds its predecessor: its
		// own write is the next position.
		if op.Kind == mem.SyncRMW {
			if pos, err := findOwnWrite(writes[op.Addr], op); err == nil {
				pointer[k] = pos
			}
		}
	}
	return nil
}

// CheckRMWAtomicity verifies condition 3's atomicity consequence: each
// read-modify-write's read component returns exactly the value of the
// immediately preceding write in the location's serialization (or the
// initial value when it is the first write).
func CheckRMWAtomicity(e *mem.Execution, init map[mem.Addr]mem.Value) error {
	writes := WriteOrder(e)
	for addr, ws := range writes {
		for i, w := range ws {
			if w.Kind != mem.SyncRMW {
				continue
			}
			want := init[addr]
			if i > 0 {
				want = ws[i-1].Data
			}
			if w.Got != want {
				return fmt.Errorf("trace: RMW atomicity violation: %v read %d but the preceding write in the serialization supplies %d",
					w, w.Got, want)
			}
		}
	}
	return nil
}

func findOwnWrite(ws []mem.Op, op mem.Op) (int, error) {
	for i, w := range ws {
		if w.ID() == op.ID() {
			return i, nil
		}
	}
	return 0, fmt.Errorf("trace: op %v not in write order", op)
}

// CheckIndices verifies the trace is well formed: per-processor indices
// are unique and, within each processor, commit order respects program
// order for operations the processor completed in order... indices must
// simply be unique and non-negative per processor; gaps are allowed
// (reads forwarded from the write buffer commit before the write).
func CheckIndices(e *mem.Execution) error {
	seen := make(map[mem.OpID]bool)
	for _, op := range e.Ops {
		if op.Proc < 0 {
			continue
		}
		if op.Index < 0 {
			return fmt.Errorf("trace: negative index on %v", op)
		}
		id := op.ID()
		if seen[id] {
			return fmt.Errorf("trace: duplicate dynamic operation %v", id)
		}
		seen[id] = true
	}
	return nil
}

// CheckAll runs every invariant checker.
func CheckAll(e *mem.Execution, init map[mem.Addr]mem.Value) error {
	if err := CheckIndices(e); err != nil {
		return err
	}
	if err := CheckCoherence(e, init); err != nil {
		return err
	}
	return CheckRMWAtomicity(e, init)
}

func summarizeWrites(ws []mem.Op) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = fmt.Sprintf("%s=%d", w.ID(), w.Data)
	}
	return out
}

// Timeline renders an execution in the paper's figure style: one column
// per processor, operations in commit order flowing down. Boundary
// (augmentation) operations are skipped. maxRows truncates long traces
// (0 = unlimited).
func Timeline(e *mem.Execution, maxRows int) string {
	procs := e.Procs
	if procs == 0 {
		for _, op := range e.Ops {
			if op.Proc >= procs {
				procs = op.Proc + 1
			}
		}
	}
	const colWidth = 14
	var b strings.Builder
	for p := 0; p < procs; p++ {
		fmt.Fprintf(&b, "%-*s", colWidth, fmt.Sprintf("P%d", p))
	}
	b.WriteByte('\n')
	for p := 0; p < procs; p++ {
		fmt.Fprintf(&b, "%-*s", colWidth, strings.Repeat("-", colWidth-2))
	}
	b.WriteByte('\n')
	rows := 0
	for _, op := range e.Ops {
		if op.Proc < 0 || op.Proc >= procs {
			continue
		}
		if maxRows > 0 && rows >= maxRows {
			fmt.Fprintf(&b, "... (%d more operations)\n", len(e.Ops)-rows)
			break
		}
		rows++
		cell := cellFor(op)
		for p := 0; p < procs; p++ {
			if p == op.Proc {
				fmt.Fprintf(&b, "%-*s", colWidth, cell)
			} else {
				fmt.Fprintf(&b, "%-*s", colWidth, "")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TimelineEvents renders the figure-style timeline with the fault
// injector's DROP/DUP/DELAY/RETRY events interleaved at their cycles: one
// column per processor, a cycle stamp on the left, and fault events as
// full-width rows between the operations they fell between. opCycles is
// the commit cycle of each e.Ops entry (machine.RunResult.OpCycles);
// when its length does not match, operations render without interleaving
// and the events are appended at the end. maxRows truncates (0 =
// unlimited).
func TimelineEvents(e *mem.Execution, opCycles []uint64, events []faults.Event, maxRows int) string {
	procs := e.Procs
	if procs == 0 {
		for _, op := range e.Ops {
			if op.Proc >= procs {
				procs = op.Proc + 1
			}
		}
	}
	aligned := len(opCycles) == len(e.Ops)
	const colWidth = 14
	const stampWidth = 9

	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", stampWidth, "cycle")
	for p := 0; p < procs; p++ {
		fmt.Fprintf(&b, "%-*s", colWidth, fmt.Sprintf("P%d", p))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-*s", stampWidth, strings.Repeat("-", stampWidth-2))
	for p := 0; p < procs; p++ {
		fmt.Fprintf(&b, "%-*s", colWidth, strings.Repeat("-", colWidth-2))
	}
	b.WriteByte('\n')

	rows := 0
	truncated := func() bool {
		if maxRows > 0 && rows >= maxRows {
			b.WriteString("... (truncated)\n")
			return true
		}
		rows++
		return false
	}
	emitEvent := func(ev faults.Event) bool {
		if truncated() {
			return false
		}
		fmt.Fprintf(&b, "%-*s! %s %s", stampWidth, fmt.Sprintf("%d", uint64(ev.At)), ev.Kind, ev.Describe())
		b.WriteByte('\n')
		return true
	}
	emitOp := func(i int, op mem.Op) bool {
		if op.Proc < 0 || op.Proc >= procs {
			return true
		}
		if truncated() {
			return false
		}
		stamp := ""
		if aligned {
			stamp = fmt.Sprintf("%d", opCycles[i])
		}
		fmt.Fprintf(&b, "%-*s", stampWidth, stamp)
		for p := 0; p < procs; p++ {
			cell := ""
			if p == op.Proc {
				cell = cellFor(op)
			}
			fmt.Fprintf(&b, "%-*s", colWidth, cell)
		}
		b.WriteByte('\n')
		return true
	}

	// Both streams are time-sorted (ops by commit, events by injection
	// decision); merge them. Ties render the event first: the fault was
	// decided before the commit at the same cycle completed.
	ei := 0
	for i, op := range e.Ops {
		if aligned {
			for ei < len(events) && uint64(events[ei].At) <= opCycles[i] {
				if !emitEvent(events[ei]) {
					return b.String()
				}
				ei++
			}
		}
		if !emitOp(i, op) {
			return b.String()
		}
	}
	for ; ei < len(events); ei++ {
		if !emitEvent(events[ei]) {
			return b.String()
		}
	}
	return b.String()
}

// cellFor renders one op compactly, figure style: W(x)=1, R(y)->0, S(s).
func cellFor(op mem.Op) string {
	loc := op.Label
	if loc == "" {
		loc = fmt.Sprintf("%d", op.Addr)
	}
	switch op.Kind {
	case mem.Read:
		return fmt.Sprintf("R(%s)->%d", loc, op.Got)
	case mem.Write:
		return fmt.Sprintf("W(%s)=%d", loc, op.Data)
	case mem.SyncRead:
		return fmt.Sprintf("Test(%s)->%d", loc, op.Got)
	case mem.SyncWrite:
		return fmt.Sprintf("Set(%s)=%d", loc, op.Data)
	case mem.SyncRMW:
		return fmt.Sprintf("TAS(%s)->%d", loc, op.Got)
	default:
		return op.String()
	}
}

// Summary aggregates an execution: operation counts by kind and by
// processor, touched locations.
type Summary struct {
	Ops       int
	ByKind    map[mem.Kind]int
	ByProc    map[int]int
	Locations []mem.Addr
}

// Summarize computes a Summary.
func Summarize(e *mem.Execution) Summary {
	s := Summary{ByKind: make(map[mem.Kind]int), ByProc: make(map[int]int)}
	locs := make(map[mem.Addr]bool)
	for _, op := range e.Ops {
		if op.Proc < 0 {
			continue
		}
		s.Ops++
		s.ByKind[op.Kind]++
		s.ByProc[op.Proc]++
		locs[op.Addr] = true
	}
	for a := range locs {
		s.Locations = append(s.Locations, a)
	}
	sort.Slice(s.Locations, func(i, j int) bool { return s.Locations[i] < s.Locations[j] })
	return s
}

// String renders the summary.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d operations over %d locations;", s.Ops, len(s.Locations))
	kinds := []mem.Kind{mem.Read, mem.Write, mem.SyncRead, mem.SyncWrite, mem.SyncRMW}
	for _, k := range kinds {
		if n := s.ByKind[k]; n > 0 {
			fmt.Fprintf(&b, " %v=%d", k, n)
		}
	}
	return b.String()
}
