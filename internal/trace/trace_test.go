package trace

import (
	"strings"
	"testing"

	"weakorder/internal/faults"
	"weakorder/internal/litmus"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/program"
)

func TestWriteOrder(t *testing.T) {
	e := &mem.Execution{
		Procs: 2,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 1, Data: 1},
			{Proc: 1, Index: 0, Kind: mem.Read, Addr: 1, Got: 1},
			{Proc: 1, Index: 1, Kind: mem.Write, Addr: 1, Data: 2},
			{Proc: 0, Index: 1, Kind: mem.SyncRMW, Addr: 2, Got: 0, Data: 9},
		},
	}
	wo := WriteOrder(e)
	if len(wo[1]) != 2 || wo[1][0].Data != 1 || wo[1][1].Data != 2 {
		t.Fatalf("write order for addr 1: %v", wo[1])
	}
	if len(wo[2]) != 1 {
		t.Fatalf("RMW must appear in write order: %v", wo[2])
	}
}

func TestCheckCoherenceAccepts(t *testing.T) {
	e := &mem.Execution{
		Procs: 3,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 1, Data: 1},
			{Proc: 1, Index: 0, Kind: mem.Read, Addr: 1, Got: 1},
			{Proc: 0, Index: 1, Kind: mem.Write, Addr: 1, Data: 2},
			{Proc: 1, Index: 1, Kind: mem.Read, Addr: 1, Got: 2},
			{Proc: 2, Index: 0, Kind: mem.Read, Addr: 1, Got: 2}, // may skip 1
		},
	}
	if err := CheckCoherence(e, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckCoherenceRejectsBackwardsObservation(t *testing.T) {
	e := &mem.Execution{
		Procs: 2,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 1, Data: 1},
			{Proc: 0, Index: 1, Kind: mem.Write, Addr: 1, Data: 2},
			{Proc: 1, Index: 0, Kind: mem.Read, Addr: 1, Got: 2},
			{Proc: 1, Index: 1, Kind: mem.Read, Addr: 1, Got: 1}, // backwards!
		},
	}
	if err := CheckCoherence(e, nil); err == nil {
		t.Fatal("backwards observation must fail coherence")
	}
}

func TestCheckCoherenceInitialValue(t *testing.T) {
	e := &mem.Execution{
		Procs: 1,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Read, Addr: 5, Got: 7},
		},
	}
	if err := CheckCoherence(e, map[mem.Addr]mem.Value{5: 7}); err != nil {
		t.Fatal(err)
	}
	if err := CheckCoherence(e, nil); err == nil {
		t.Fatal("reading 7 with initial 0 and no writes must fail")
	}
}

func TestCheckCoherenceRereadAfterAdvance(t *testing.T) {
	// A processor that observed position 1 may re-read it but not return
	// to position 0, even when values repeat.
	e := &mem.Execution{
		Procs: 2,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 1, Data: 5},
			{Proc: 0, Index: 1, Kind: mem.Write, Addr: 1, Data: 6},
			{Proc: 1, Index: 0, Kind: mem.Read, Addr: 1, Got: 6},
			{Proc: 1, Index: 1, Kind: mem.Read, Addr: 1, Got: 6}, // re-read OK
		},
	}
	if err := CheckCoherence(e, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRMWAtomicity(t *testing.T) {
	good := &mem.Execution{
		Procs: 2,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.SyncRMW, Addr: 1, Got: 0, Data: 1},
			{Proc: 1, Index: 0, Kind: mem.SyncRMW, Addr: 1, Got: 1, Data: 1},
		},
	}
	if err := CheckRMWAtomicity(good, nil); err != nil {
		t.Fatal(err)
	}
	bad := &mem.Execution{
		Procs: 2,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.SyncRMW, Addr: 1, Got: 0, Data: 1},
			{Proc: 1, Index: 0, Kind: mem.SyncRMW, Addr: 1, Got: 0, Data: 1}, // lost update
		},
	}
	if err := CheckRMWAtomicity(bad, nil); err == nil {
		t.Fatal("two TAS both reading 0 must fail atomicity")
	}
}

func TestCheckIndices(t *testing.T) {
	dup := &mem.Execution{
		Procs: 1,
		Ops: []mem.Op{
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 1},
			{Proc: 0, Index: 0, Kind: mem.Write, Addr: 2},
		},
	}
	if err := CheckIndices(dup); err == nil {
		t.Fatal("duplicate ids must fail")
	}
}

// TestInvariantsHoldOnAllMachineRuns is the integration payoff: every
// policy/topology run of every listed program satisfies coherence and
// RMW atomicity — even the racy ones (coherence is policy-independent).
func TestInvariantsHoldOnAllMachineRuns(t *testing.T) {
	for _, prog := range []*program.Program{
		litmus.CriticalSection(3, 2),
		litmus.TestAndTAS(2, 2),
		litmus.Coherence(),
		litmus.Dekker(),
	} {
		for _, pol := range policy.All() {
			for _, topo := range []machine.Topology{machine.TopoBus, machine.TopoNetwork} {
				cfg := machine.Config{Policy: pol, Topology: topo, Caches: true}
				if cfg.Validate() != nil {
					continue
				}
				for seed := int64(0); seed < 3; seed++ {
					res, err := machine.Run(prog, cfg, seed)
					if err != nil {
						t.Fatalf("%s %s: %v", prog.Name, cfg.Name(), err)
					}
					if err := CheckAll(res.Exec, prog.Init); err != nil {
						t.Errorf("%s %s seed %d: %v", prog.Name, cfg.Name(), seed, err)
					}
				}
			}
		}
	}
}

func TestTimelineRendering(t *testing.T) {
	res, err := machine.Run(litmus.MessagePassing(), machine.Config{
		Policy: policy.WODef2, Topology: machine.TopoNetwork, Caches: true,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tl := Timeline(res.Exec, 0)
	for _, want := range []string{"P0", "P1", "W(data)=42", "Set(flag)=1", "R(data)->42"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
	// Truncation.
	short := Timeline(res.Exec, 2)
	if !strings.Contains(short, "more operations") {
		t.Error("truncated timeline must say so")
	}
}

func TestSummarize(t *testing.T) {
	res, err := machine.Run(litmus.CriticalSection(2, 2), machine.Config{
		Policy: policy.WODef2, Topology: machine.TopoNetwork, Caches: true,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(res.Exec)
	if s.Ops == 0 || s.ByKind[mem.SyncRMW] == 0 || len(s.Locations) != 2 {
		t.Errorf("summary %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestTimelineEventsInterleaving(t *testing.T) {
	plan := faults.Severe()
	res, err := machine.Run(litmus.MessagePassing(), machine.Config{
		Policy: policy.WODef2, Topology: machine.TopoNetwork, Caches: true,
		Faults: &plan, RecordFaultEvents: true,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultEvents) == 0 {
		t.Fatal("severe plan recorded no fault events; test is vacuous")
	}
	tl := TimelineEvents(res.Exec, res.OpCycles, res.FaultEvents, 0)
	if !strings.Contains(tl, "cycle") {
		t.Errorf("timeline missing cycle column header:\n%s", tl)
	}
	for _, ev := range res.FaultEvents {
		if !strings.Contains(tl, ev.Kind.String()+" "+ev.Describe()) {
			t.Errorf("timeline missing fault event %v:\n%s", ev, tl)
		}
	}
	for _, want := range []string{"W(data)=42", "R(data)->42"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing op %q:\n%s", want, tl)
		}
	}
	// Events are placed at (or before) the first commit row that follows
	// them: the rendering must not sort an event after an op committed
	// many cycles later than a later op... pin ordering: the line for the
	// first event precedes the line for the last committed op.
	first := strings.Index(tl, res.FaultEvents[0].Kind.String())
	lastOp := strings.LastIndex(tl, "R(data)->42")
	if first == -1 || lastOp == -1 || first > lastOp {
		t.Errorf("first fault event not interleaved before the final op:\n%s", tl)
	}
	// Mismatched opCycles falls back to appending events at the end.
	fallback := TimelineEvents(res.Exec, nil, res.FaultEvents, 0)
	if !strings.Contains(fallback, res.FaultEvents[0].Kind.String()) {
		t.Error("fallback rendering lost the fault events")
	}
	// Truncation.
	short := TimelineEvents(res.Exec, res.OpCycles, res.FaultEvents, 2)
	if !strings.Contains(short, "truncated") {
		t.Error("truncated timeline must say so")
	}
}
