package scmatch

import (
	"testing"

	"weakorder/internal/ideal"
	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// dekkerResult builds a Dekker result with the given read values and the
// always-final state x=1, y=1.
func dekkerResult(r0, r1 mem.Value) mem.Result {
	return mem.Result{
		Reads: map[mem.OpID]mem.ReadObservation{
			{Proc: 0, Index: 1}: {ID: mem.OpID{Proc: 0, Index: 1}, Addr: 1, Value: r0},
			{Proc: 1, Index: 1}: {ID: mem.OpID{Proc: 1, Index: 1}, Addr: 0, Value: r1},
		},
		Final: map[mem.Addr]mem.Value{0: 1, 1: 1},
	}
}

func TestDekkerAllowedOutcomes(t *testing.T) {
	p := litmus.Dekker()
	for _, tc := range []struct {
		r0, r1 mem.Value
		want   bool
	}{
		{0, 1, true},
		{1, 0, true},
		{1, 1, true},
		{0, 0, false}, // the Figure 1 violation
	} {
		m, err := Matches(p, dekkerResult(tc.r0, tc.r1), Config{})
		if err != nil {
			t.Fatal(err)
		}
		if m.OK != tc.want {
			t.Errorf("Dekker (%d,%d): appears-SC = %v, want %v", tc.r0, tc.r1, m.OK, tc.want)
		}
		if m.OK && m.Witness == nil {
			t.Error("matching result must carry a witness execution")
		}
	}
}

func TestWitnessResultMatches(t *testing.T) {
	p := litmus.Dekker()
	m, err := Matches(p, dekkerResult(1, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.OK {
		t.Fatal("(1,1) must appear SC")
	}
	if got := mem.ResultOf(m.Witness); !got.Equal(dekkerResult(1, 1)) {
		t.Errorf("witness result %v does not equal queried result", got)
	}
}

func TestRoundTripIdealExecutionsAppearSC(t *testing.T) {
	// Any result produced by the idealized architecture trivially appears
	// SC: Matches must find it.
	for _, prog := range []*program.Program{
		litmus.Dekker(),
		litmus.DekkerSync(),
		litmus.MessagePassingBounded(),
		litmus.IRIW(),
		litmus.Coherence(),
		litmus.CriticalSection(2, 1),
	} {
		for seed := int64(0); seed < 5; seed++ {
			it, err := ideal.RunSeed(prog, ideal.Config{}, seed)
			if err != nil {
				t.Fatalf("%s: %v", prog.Name, err)
			}
			r := mem.ResultOf(it.Execution())
			m, err := Matches(prog, r, Config{})
			if err != nil {
				t.Fatalf("%s: %v", prog.Name, err)
			}
			if !m.OK {
				t.Errorf("%s seed %d: idealized result must appear SC:\n%v", prog.Name, seed, r)
			}
		}
	}
}

func TestIRIWForbiddenDoesNotMatch(t *testing.T) {
	p := litmus.IRIW()
	r := mem.Result{
		Reads: map[mem.OpID]mem.ReadObservation{
			{Proc: 2, Index: 0}: {ID: mem.OpID{Proc: 2, Index: 0}, Addr: 0, Value: 1},
			{Proc: 2, Index: 1}: {ID: mem.OpID{Proc: 2, Index: 1}, Addr: 1, Value: 0},
			{Proc: 3, Index: 0}: {ID: mem.OpID{Proc: 3, Index: 0}, Addr: 1, Value: 1},
			{Proc: 3, Index: 1}: {ID: mem.OpID{Proc: 3, Index: 1}, Addr: 0, Value: 0},
		},
		Final: map[mem.Addr]mem.Value{0: 1, 1: 1},
	}
	m, err := Matches(p, r, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.OK {
		t.Error("IRIW opposite-order observation must not appear SC")
	}
}

func TestCoherenceViolationDoesNotMatch(t *testing.T) {
	// Two readers observing x=1,x=2 vs x=2,x=1 with final x=2: the second
	// reader's (2,1) contradicts write serialization under SC.
	p := litmus.Coherence()
	r := mem.Result{
		Reads: map[mem.OpID]mem.ReadObservation{
			{Proc: 1, Index: 0}: {ID: mem.OpID{Proc: 1, Index: 0}, Addr: 0, Value: 1},
			{Proc: 1, Index: 1}: {ID: mem.OpID{Proc: 1, Index: 1}, Addr: 0, Value: 2},
			{Proc: 2, Index: 0}: {ID: mem.OpID{Proc: 2, Index: 0}, Addr: 0, Value: 2},
			{Proc: 2, Index: 1}: {ID: mem.OpID{Proc: 2, Index: 1}, Addr: 0, Value: 1},
		},
		Final: map[mem.Addr]mem.Value{0: 2},
	}
	m, err := Matches(p, r, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.OK {
		t.Error("coherence violation must not appear SC")
	}
}

func TestWrongFinalStateDoesNotMatch(t *testing.T) {
	p := litmus.Dekker()
	r := dekkerResult(1, 1)
	r.Final[0] = 7 // impossible final value
	m, err := Matches(p, r, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.OK {
		t.Error("impossible final state must not appear SC")
	}
}

func TestMissingReadDoesNotMatch(t *testing.T) {
	p := litmus.Dekker()
	r := dekkerResult(1, 1)
	delete(r.Reads, mem.OpID{Proc: 1, Index: 1})
	m, err := Matches(p, r, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.OK {
		t.Error("a result missing an observed read must not match")
	}
}

func TestExtraReadDoesNotMatch(t *testing.T) {
	p := litmus.Dekker()
	r := dekkerResult(1, 1)
	r.Reads[mem.OpID{Proc: 0, Index: 5}] = mem.ReadObservation{
		ID: mem.OpID{Proc: 0, Index: 5}, Addr: 0, Value: 0,
	}
	m, err := Matches(p, r, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.OK {
		t.Error("a result with a phantom read must not match")
	}
}

func TestStateBudget(t *testing.T) {
	p := litmus.IRIW()
	r := mem.ResultOf(mustRun(t, p, 1))
	if _, err := Matches(p, r, Config{MaxStates: 1}); err == nil {
		t.Error("expected ErrBudget with MaxStates=1")
	}
}

func mustRun(t *testing.T, p *program.Program, seed int64) *mem.Execution {
	t.Helper()
	it, err := ideal.RunSeed(p, ideal.Config{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return it.Execution()
}

func TestOutcomesEnumeration(t *testing.T) {
	p := litmus.Dekker()
	out, err := Outcomes(p, ideal.EnumConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("Dekker has %d distinct SC outcomes, want 3", len(out))
	}
	for key, exec := range out {
		if got := mem.ResultOf(exec).Key(); got != key {
			t.Errorf("outcome key %q does not round-trip (%q)", key, got)
		}
	}
}

func TestMemoizationStillFindsMatches(t *testing.T) {
	// A program with many redundant interleavings of independent writes:
	// the memoized search must still find the unique result quickly.
	b := program.NewBuilder("independent")
	for i := 0; i < 4; i++ {
		th := b.Thread()
		a := b.Var(string(rune('a' + i)))
		th.StoreImm(a, 1)
		th.StoreImm(a, 2)
		th.Load(program.R0, a)
	}
	p := b.MustBuild()

	it, err := ideal.RunSeed(p, ideal.Config{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	r := mem.ResultOf(it.Execution())
	m, err := Matches(p, r, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.OK {
		t.Fatal("independent-writes result must appear SC")
	}
}
