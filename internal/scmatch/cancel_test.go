package scmatch

import (
	"errors"
	"testing"

	"weakorder/internal/litmus"
)

// TestMatchesCancel: an immediate cancel aborts the search with
// ErrCanceled instead of producing a verdict.
func TestMatchesCancel(t *testing.T) {
	_, err := Matches(litmus.Dekker(), dekkerResult(0, 0), Config{
		Cancel: func() bool { return true },
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestMatchesNilCancelUnaffected: the hook absent, verdicts are exactly
// as before.
func TestMatchesNilCancelUnaffected(t *testing.T) {
	m, err := Matches(litmus.Dekker(), dekkerResult(0, 0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.OK {
		t.Fatal("Dekker (0,0) must not appear SC")
	}
}
