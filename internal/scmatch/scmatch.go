// Package scmatch decides whether an observed hardware result "appears
// sequentially consistent": whether some execution of the program on the
// idealized architecture (atomic memory operations, program order)
// produces the identical result — the same value for every dynamic read
// and the same final memory state. This is the executable form of the
// right-hand side of Definition 2 and of the condition in Lemma 1.
//
// The search interleaves the program at memory-operation granularity,
// pruning any branch whose next read returns a value different from the
// observed one, and memoizes failed interpreter states: two paths that
// reach the same full machine state have the same possible futures, so a
// state that once failed to extend to a matching completion always fails.
package scmatch

import (
	"errors"
	"fmt"

	"weakorder/internal/ideal"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Config bounds the search.
type Config struct {
	// Interp bounds each interpreted path.
	Interp ideal.Config
	// MaxStates aborts the search after visiting this many states
	// (0 = DefaultMaxStates).
	MaxStates int
}

// DefaultMaxStates bounds the memoized search.
const DefaultMaxStates = 2_000_000

func (c Config) maxStates() int {
	if c.MaxStates > 0 {
		return c.MaxStates
	}
	return DefaultMaxStates
}

// ErrBudget reports that the search exceeded MaxStates.
var ErrBudget = errors.New("scmatch: state budget exceeded")

// Match is the outcome of an appears-SC query.
type Match struct {
	// OK reports whether some sequentially consistent execution produces
	// the observed result.
	OK bool
	// Witness is one such execution when OK.
	Witness *mem.Execution
	// States is the number of interpreter states visited.
	States int
}

// Matches reports whether result r of program p appears sequentially
// consistent.
func Matches(p *program.Program, r mem.Result, cfg Config) (Match, error) {
	s := &searcher{
		result: r,
		cfg:    cfg,
		memo:   make(map[string]bool),
	}
	root := ideal.New(p, cfg.Interp)
	ok, err := s.search(root, 0)
	m := Match{OK: ok, Witness: s.witness, States: s.states}
	if err != nil {
		return m, err
	}
	return m, nil
}

type searcher struct {
	result  mem.Result
	cfg     Config
	memo    map[string]bool // state key -> known failure (only failures stored)
	states  int
	witness *mem.Execution
}

// search explores completions of it that match the remaining observations;
// matched counts the read observations consumed so far.
func (s *searcher) search(it *ideal.Interp, matched int) (bool, error) {
	s.states++
	if s.states > s.cfg.maxStates() {
		return false, ErrBudget
	}
	if it.Done() {
		if matched != len(s.result.Reads) {
			return false, nil
		}
		exec := it.Execution()
		if !finalEqual(exec.Final, s.result.Final) {
			return false, nil
		}
		s.witness = exec
		return true, nil
	}
	key := it.StateKey()
	if s.memo[key] {
		return false, nil
	}
	for _, tid := range it.Runnable() {
		child := it.Clone()
		op, ok, err := child.Step(tid)
		if errors.Is(err, ideal.ErrTruncated) {
			continue
		}
		if err != nil {
			return false, err
		}
		m := matched
		if ok && op.HasReadComponent() {
			obs, present := s.result.Reads[op.ID()]
			if !present || obs.Value != op.Got || obs.Addr != op.Addr {
				continue // this interleaving contradicts the observation
			}
			m++
		}
		found, err := s.search(child, m)
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	s.memo[key] = true
	return false, nil
}

// finalEqual compares final memory states treating absent entries as zero.
func finalEqual(a, b map[mem.Addr]mem.Value) bool {
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	for k, v := range b {
		if a[k] != v {
			return false
		}
	}
	return true
}

// Outcomes enumerates every distinct sequentially consistent result of p,
// keyed by mem.Result.Key, with one witness execution each. It is useful
// for classifying many observed hardware outcomes against a single
// enumeration.
func Outcomes(p *program.Program, cfg ideal.EnumConfig) (map[string]*mem.Execution, error) {
	out := make(map[string]*mem.Execution)
	_, err := ideal.Enumerate(p, cfg, func(it *ideal.Interp) error {
		exec := it.Execution()
		key := mem.ResultOf(exec).Key()
		if _, dup := out[key]; !dup {
			out[key] = exec
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("scmatch: enumerating outcomes: %w", err)
	}
	return out, nil
}
