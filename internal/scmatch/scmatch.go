// Package scmatch decides whether an observed hardware result "appears
// sequentially consistent": whether some execution of the program on the
// idealized architecture (atomic memory operations, program order)
// produces the identical result — the same value for every dynamic read
// and the same final memory state. This is the executable form of the
// right-hand side of Definition 2 and of the condition in Lemma 1.
//
// The search interleaves the program at memory-operation granularity,
// pruning any branch whose next read returns a value different from the
// observed one, and memoizes failed interpreter states: two paths that
// reach the same full machine state have the same possible futures, so a
// state that once failed to extend to a matching completion always fails.
// A sleep-set partial-order reduction (see Config.NoReduce) additionally
// skips interleavings that merely commute non-conflicting operations of
// an already-searched branch — such interleavings produce the identical
// result, so they cannot change the verdict.
package scmatch

import (
	"errors"
	"fmt"
	"math/bits"

	"weakorder/internal/ideal"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Config bounds the search.
type Config struct {
	// Interp bounds each interpreted path.
	Interp ideal.Config
	// MaxStates aborts the search after visiting this many states
	// (0 = DefaultMaxStates).
	MaxStates int
	// Cancel, when non-nil, is polled periodically during the search;
	// returning true aborts with ErrCanceled. Cancellation is
	// cooperative (no goroutines), so an abandoned search leaks nothing.
	Cancel func() bool
	// NoReduce disables the sleep-set partial-order reduction and
	// searches every interleaving naively. The reduction never changes
	// the verdict (a result matches some interleaving iff it matches
	// some representative of a conflict-equivalence class, since all
	// members produce the same result); the flag exists for
	// differential testing. The witness execution may differ between
	// the two modes.
	NoReduce bool
}

// DefaultMaxStates bounds the memoized search.
const DefaultMaxStates = 2_000_000

func (c Config) maxStates() int {
	if c.MaxStates > 0 {
		return c.MaxStates
	}
	return DefaultMaxStates
}

// ErrBudget reports that the search exceeded MaxStates.
var ErrBudget = errors.New("scmatch: state budget exceeded")

// ErrCanceled reports that Config.Cancel asked the search to stop.
var ErrCanceled = errors.New("scmatch: search canceled")

// cancelPollMask throttles Config.Cancel polling to every 256 states;
// the hook typically reads a clock, which is too expensive per state.
const cancelPollMask = 255

// Match is the outcome of an appears-SC query.
type Match struct {
	// OK reports whether some sequentially consistent execution produces
	// the observed result.
	OK bool
	// Witness is one such execution when OK.
	Witness *mem.Execution
	// States is the number of interpreter states visited.
	States int
}

// Matches reports whether result r of program p appears sequentially
// consistent.
func Matches(p *program.Program, r mem.Result, cfg Config) (Match, error) {
	s := &searcher{
		result: r,
		cfg:    cfg,
		memo:   make(map[string]bool),
		reduce: !cfg.NoReduce && p.NumThreads() <= 64,
	}
	root := ideal.New(p, cfg.Interp)
	ok, err := s.search(root, 0, 0)
	m := Match{OK: ok, Witness: s.witness, States: s.states}
	if err != nil {
		return m, err
	}
	return m, nil
}

type searcher struct {
	result  mem.Result
	cfg     Config
	memo    map[string]bool // state key -> known failure (only failures stored)
	reduce  bool
	states  int
	witness *mem.Execution
	// ar recycles per-step interpreter clones and runnable scratch for
	// the duration of one query.
	ar ideal.Arena
}

// search explores completions of it that match the remaining observations;
// matched counts the read observations consumed so far.
//
// sleep is the sleep-set partial-order reduction's thread mask: a set
// bit marks a thread whose first-step continuations are covered by a
// branch already explored (and failed) higher in the tree. Skipping
// them is sound because whether a completion matches r depends only on
// per-read values (keyed by OpID) and the final memory — invariants of
// the conflict-equivalence class, so a covered continuation fails iff
// its explored representative did. Threads whose branch was pruned
// (contradicted observation, exceeded budget) join the sleep set too:
// the contradicting read value and the exhausted budget are the same
// in every covered continuation. A sleeping thread wakes when a
// conflicting operation executes (mem.Conflict — Definition 3).
func (s *searcher) search(it *ideal.Interp, matched int, sleep uint64) (bool, error) {
	s.states++
	if s.states > s.cfg.maxStates() {
		return false, ErrBudget
	}
	if s.cfg.Cancel != nil && s.states&cancelPollMask == 1 && s.cfg.Cancel() {
		return false, ErrCanceled
	}
	if it.Done() {
		if matched != len(s.result.Reads) {
			return false, nil
		}
		exec := it.Execution()
		if !finalEqual(exec.Final, s.result.Final) {
			return false, nil
		}
		s.witness = exec
		return true, nil
	}
	key := it.StateKey()
	if s.memo[key] {
		return false, nil
	}
	run := it.RunnableInto(s.ar.Ints())
	for _, tid := range run {
		bit := uint64(1) << uint(tid)
		if s.reduce && sleep&bit != 0 {
			continue
		}
		child := s.ar.Clone(it)
		op, ok, err := child.Step(tid)
		if errors.Is(err, ideal.ErrTruncated) {
			s.ar.Release(child)
			sleep |= bit
			continue
		}
		if err != nil {
			s.ar.Release(child)
			return false, err
		}
		m := matched
		if ok && op.HasReadComponent() {
			obs, present := s.result.Reads[op.ID()]
			if !present || obs.Value != op.Got || obs.Addr != op.Addr {
				s.ar.Release(child)
				sleep |= bit
				continue // this interleaving contradicts the observation
			}
			m++
		}
		childSleep := sleep
		if s.reduce && ok && childSleep != 0 {
			childSleep = filterSleep(it, childSleep, op)
		}
		found, err := s.search(child, m, childSleep)
		s.ar.Release(child)
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
		sleep |= bit
	}
	s.ar.ReleaseInts(run)
	s.memo[key] = true
	return false, nil
}

// filterSleep wakes every sleeping thread whose pending operation
// conflicts with the operation just executed.
func filterSleep(it *ideal.Interp, sleep uint64, op mem.Op) uint64 {
	out := sleep
	for rest := sleep; rest != 0; rest &= rest - 1 {
		u := bits.TrailingZeros64(rest)
		addr, kind, known := it.PendingAccess(u)
		if !known || mem.Conflict(mem.Op{Addr: addr, Kind: kind}, op) {
			out &^= uint64(1) << uint(u)
		}
	}
	return out
}

// finalEqual compares final memory states treating absent entries as zero.
func finalEqual(a, b map[mem.Addr]mem.Value) bool {
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	for k, v := range b {
		if a[k] != v {
			return false
		}
	}
	return true
}

// Outcomes enumerates every distinct sequentially consistent result of p,
// keyed by mem.Result.Key, with one witness execution each. It is useful
// for classifying many observed hardware outcomes against a single
// enumeration.
func Outcomes(p *program.Program, cfg ideal.EnumConfig) (map[string]*mem.Execution, error) {
	out := make(map[string]*mem.Execution)
	_, err := ideal.Enumerate(p, cfg, func(it *ideal.Interp) error {
		exec := it.Execution()
		key := mem.ResultOf(exec).Key()
		if _, dup := out[key]; !dup {
			out[key] = exec
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("scmatch: enumerating outcomes: %w", err)
	}
	return out, nil
}
