package scmatch

import (
	"testing"

	"weakorder/internal/gen"
	"weakorder/internal/ideal"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
)

// TestOracleAgreesWithOutcomeEnumeration cross-validates the two
// independent appears-SC implementations: the memoized result-directed
// search (Matches) and membership in the exhaustively enumerated outcome
// set (Outcomes). Machine results from weak hardware on racy generated
// programs exercise both SC and non-SC results.
func TestOracleAgreesWithOutcomeEnumeration(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		prog := gen.Racy(gen.RacyConfig{Procs: 2, Vars: 2, OpsPerProc: 4}, seed)
		outcomes, err := Outcomes(prog, ideal.EnumConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, pol := range []policy.Kind{policy.Unconstrained, policy.WODef2} {
			cfg := machine.Config{Policy: pol, Topology: machine.TopoNetwork, Caches: true, NetJitter: 20}
			for ms := int64(0); ms < 4; ms++ {
				res, err := machine.Run(prog, cfg, ms)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				m, err := Matches(prog, res.Result, Config{})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				_, inSet := outcomes[res.Result.Key()]
				if m.OK != inSet {
					t.Errorf("prog seed %d, %v machine seed %d: Matches=%v but enumeration membership=%v\nresult: %v",
						seed, pol, ms, m.OK, inSet, res.Result)
				}
			}
		}
	}
}

// TestOracleAgreesOnIdealResults: the same cross-validation with results
// the idealized architecture itself produced (always SC by construction).
func TestOracleAgreesOnIdealResults(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog := gen.Racy(gen.RacyConfig{Procs: 3, Vars: 2, OpsPerProc: 3}, seed+100)
		outcomes, err := Outcomes(prog, ideal.EnumConfig{})
		if err != nil {
			t.Fatal(err)
		}
		it, err := ideal.RunSeed(prog, ideal.Config{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		r := mem.ResultOf(it.Execution())
		if _, in := outcomes[r.Key()]; !in {
			t.Fatalf("seed %d: idealized result missing from its own outcome set", seed)
		}
		m, err := Matches(prog, r, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !m.OK {
			t.Errorf("seed %d: Matches rejected an idealized result", seed)
		}
	}
}
