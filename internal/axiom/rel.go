package axiom

import (
	"fmt"

	"weakorder/internal/bitset"
)

// Rel is a binary relation over a fixed universe of n events, stored as a
// bitset adjacency matrix: row i holds the successors of event i. All of
// the relational algebra the cat evaluator needs — union, intersection,
// difference, composition, inverse, closures, cross products of sets,
// identity restriction — reduces to word-parallel row operations, which
// keeps constraint checking cheap even when it runs at every node of the
// candidate-enumeration tree.
type Rel struct {
	n    int
	rows []*bitset.Set
}

// NewRel returns the empty relation over n events.
func NewRel(n int) *Rel {
	r := &Rel{n: n, rows: make([]*bitset.Set, n)}
	for i := range r.rows {
		r.rows[i] = bitset.New(n)
	}
	return r
}

// N returns the universe size.
func (r *Rel) N() int { return r.n }

// Add inserts the pair (i, j).
func (r *Rel) Add(i, j int) { r.rows[i].Add(j) }

// Remove deletes the pair (i, j).
func (r *Rel) Remove(i, j int) { r.rows[i].Remove(j) }

// Has reports whether the pair (i, j) is present.
func (r *Rel) Has(i, j int) bool { return r.rows[i].Has(j) }

// Row exposes row i (the successor set of event i) for iteration.
func (r *Rel) Row(i int) *bitset.Set { return r.rows[i] }

// Clear removes every pair.
func (r *Rel) Clear() {
	for _, row := range r.rows {
		row.Clear()
	}
}

// CopyFrom overwrites r with o's pairs; universes must match.
func (r *Rel) CopyFrom(o *Rel) {
	r.checkSame(o)
	for i, row := range r.rows {
		row.CopyFrom(o.rows[i])
	}
}

func (r *Rel) checkSame(o *Rel) {
	if o.n != r.n {
		panic(fmt.Sprintf("axiom: relation universe mismatch %d != %d", r.n, o.n))
	}
}

// UnionWith ors o into r.
func (r *Rel) UnionWith(o *Rel) {
	r.checkSame(o)
	for i, row := range r.rows {
		row.UnionWith(o.rows[i])
	}
}

// IntersectWith ands o into r.
func (r *Rel) IntersectWith(o *Rel) {
	r.checkSame(o)
	for i, row := range r.rows {
		row.IntersectWith(o.rows[i])
	}
}

// DifferenceWith removes o's pairs from r.
func (r *Rel) DifferenceWith(o *Rel) {
	r.checkSame(o)
	for i, row := range r.rows {
		row.DifferenceWith(o.rows[i])
	}
}

// SeqInto stores the composition a ; b into r (which must be distinct
// from a): (i, k) ∈ r iff ∃j. (i, j) ∈ a ∧ (j, k) ∈ b.
func (r *Rel) SeqInto(a, b *Rel) {
	r.checkSame(a)
	r.checkSame(b)
	for i := range r.rows {
		out := r.rows[i]
		out.Clear()
		a.rows[i].ForEach(func(j int) bool {
			out.UnionWith(b.rows[j])
			return true
		})
	}
}

// InverseInto stores a's transpose into r (which must be distinct from a).
func (r *Rel) InverseInto(a *Rel) {
	r.checkSame(a)
	r.Clear()
	for i := range a.rows {
		a.rows[i].ForEach(func(j int) bool {
			r.rows[j].Add(i)
			return true
		})
	}
}

// CrossInto stores the cross product s × t into r.
func (r *Rel) CrossInto(s, t *bitset.Set) {
	for i, row := range r.rows {
		if s.Has(i) {
			row.CopyFrom(t)
		} else {
			row.Clear()
		}
	}
}

// DiagInto stores the identity relation restricted to s ([s] in cat
// notation) into r.
func (r *Rel) DiagInto(s *bitset.Set) {
	r.Clear()
	s.ForEach(func(i int) bool {
		r.rows[i].Add(i)
		return true
	})
}

// AddID adds the identity relation to r (e? and e* in cat notation).
func (r *Rel) AddID() {
	for i, row := range r.rows {
		row.Add(i)
	}
}

// Close replaces r with its transitive closure, by reverse-order bitset
// propagation iterated to a fixpoint (the same scheme as package hb's
// happens-before closure; a single pass suffices when edges mostly point
// forward in event order).
func (r *Rel) Close() {
	for changed := true; changed; {
		changed = false
		for i := r.n - 1; i >= 0; i-- {
			row := r.rows[i]
			row.ForEach(func(j int) bool {
				if i != j && row.UnionWith(r.rows[j]) {
					changed = true
				}
				return true
			})
		}
	}
}

// Irreflexive reports whether no event relates to itself.
func (r *Rel) Irreflexive() bool {
	for i, row := range r.rows {
		if row.Has(i) {
			return false
		}
	}
	return true
}

// Empty reports whether the relation holds no pairs.
func (r *Rel) Empty() bool {
	for _, row := range r.rows {
		if !row.Empty() {
			return false
		}
	}
	return true
}

// Acyclic reports whether the relation has no cycle, via an iterative
// three-color depth-first search (no closure materialization: the
// enumerator calls Acyclic at every pruning point).
func (r *Rel) Acyclic() bool {
	const (
		white = 0 // unvisited
		gray  = 1 // on the DFS stack
		black = 2 // finished
	)
	color := make([]uint8, r.n)
	type frame struct {
		node int
		iter int // index into the expanded successor list
	}
	var stack []frame
	var succ []int
	succs := make([][]int, r.n)
	expand := func(i int) []int {
		if succs[i] == nil {
			succs[i] = r.rows[i].Members()
			if succs[i] == nil {
				succs[i] = []int{}
			}
		}
		return succs[i]
	}
	for start := 0; start < r.n; start++ {
		if color[start] != white {
			continue
		}
		stack = append(stack[:0], frame{node: start})
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			succ = expand(f.node)
			if f.iter < len(succ) {
				next := succ[f.iter]
				f.iter++
				switch color[next] {
				case gray:
					return false
				case white:
					color[next] = gray
					stack = append(stack, frame{node: next})
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return true
}

// Pairs returns the relation's pairs in row-major order (for tests and
// diagnostics).
func (r *Rel) Pairs() [][2]int {
	var out [][2]int
	for i, row := range r.rows {
		row.ForEach(func(j int) bool {
			out = append(out, [2]int{i, j})
			return true
		})
	}
	return out
}

// String renders the relation like "{(0,1), (2,0)}".
func (r *Rel) String() string {
	s := "{"
	for k, p := range r.Pairs() {
		if k > 0 {
			s += ", "
		}
		s += fmt.Sprintf("(%d,%d)", p[0], p[1])
	}
	return s + "}"
}

// relArena recycles Rel matrices and event-set bitsets of one fixed
// universe size for the duration of one evaluation or enumeration — the
// axiom engine's analogue of ideal.Arena. Constraint evaluation runs at
// every node of the rf/co search tree, so its temporaries must not hit
// the allocator.
type relArena struct {
	n    int
	rels []*Rel
	sets []*bitset.Set
}

func newRelArena(n int) *relArena { return &relArena{n: n} }

// Rel hands out a cleared relation over the arena's universe.
func (ar *relArena) Rel() *Rel {
	if k := len(ar.rels) - 1; k >= 0 {
		r := ar.rels[k]
		ar.rels = ar.rels[:k]
		r.Clear()
		return r
	}
	return NewRel(ar.n)
}

// PutRel retires a relation for reuse.
func (ar *relArena) PutRel(r *Rel) {
	if r != nil {
		ar.rels = append(ar.rels, r)
	}
}

// Set hands out a cleared event set over the arena's universe.
func (ar *relArena) Set() *bitset.Set {
	if k := len(ar.sets) - 1; k >= 0 {
		s := ar.sets[k]
		ar.sets = ar.sets[:k]
		s.Clear()
		return s
	}
	return bitset.New(ar.n)
}

// PutSet retires an event set for reuse.
func (ar *relArena) PutSet(s *bitset.Set) {
	if s != nil {
		ar.sets = append(ar.sets, s)
	}
}
