package axiom

import (
	"fmt"
	"strings"
)

// The cat-model AST. Expressions are untyped at parse time; the evaluator
// infers set-versus-relation from the primitives (see eval.go).

// Expr is a cat expression.
type Expr interface {
	// dump renders the expression as an s-expression for the golden
	// parse-tree tests.
	dump(b *strings.Builder)
}

// Name references a primitive or let-bound set or relation.
type Name struct{ Ident string }

// Univ is the universal event set `_`.
type Univ struct{}

// Binary operators, in increasing binding strength: union `|`, difference
// `\`, intersection `&`, composition `;`, cross product `*`.
type BinOp uint8

// Binary operator kinds.
const (
	OpUnion BinOp = iota
	OpDiff
	OpInter
	OpSeq
	OpCross
)

func (o BinOp) String() string {
	switch o {
	case OpUnion:
		return "|"
	case OpDiff:
		return "\\"
	case OpInter:
		return "&"
	case OpSeq:
		return ";"
	case OpCross:
		return "*"
	default:
		return fmt.Sprintf("BinOp(%d)", uint8(o))
	}
}

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Postfix operators: irreflexive transitive closure `+`, reflexive
// transitive closure `*`, reflexive closure `?`, inverse `^-1`.
type PostOp uint8

// Postfix operator kinds.
const (
	OpPlus PostOp = iota
	OpStar
	OpOpt
	OpInv
)

func (o PostOp) String() string {
	switch o {
	case OpPlus:
		return "+"
	case OpStar:
		return "*"
	case OpOpt:
		return "?"
	case OpInv:
		return "^-1"
	default:
		return fmt.Sprintf("PostOp(%d)", uint8(o))
	}
}

// Post applies a postfix operator.
type Post struct {
	Op PostOp
	E  Expr
}

// Diag is the identity restriction `[S]`: the identity relation on the
// members of set S.
type Diag struct{ S Expr }

func (e *Name) dump(b *strings.Builder) { b.WriteString(e.Ident) }
func (e *Univ) dump(b *strings.Builder) { b.WriteString("_") }
func (e *Bin) dump(b *strings.Builder) {
	fmt.Fprintf(b, "(%s ", e.Op)
	e.L.dump(b)
	b.WriteByte(' ')
	e.R.dump(b)
	b.WriteByte(')')
}
func (e *Post) dump(b *strings.Builder) {
	fmt.Fprintf(b, "(%s ", e.Op)
	e.E.dump(b)
	b.WriteByte(')')
}
func (e *Diag) dump(b *strings.Builder) {
	b.WriteString("(diag ")
	e.S.dump(b)
	b.WriteByte(')')
}

// ConstraintKind classifies a model constraint.
type ConstraintKind uint8

// Constraint kinds.
const (
	// Acyclic requires the relation to have no cycles.
	Acyclic ConstraintKind = iota
	// Irreflexive requires the relation to relate no event to itself.
	Irreflexive
	// Empty requires the relation (or set) to be empty.
	Empty
)

func (k ConstraintKind) String() string {
	switch k {
	case Acyclic:
		return "acyclic"
	case Irreflexive:
		return "irreflexive"
	case Empty:
		return "empty"
	default:
		return fmt.Sprintf("ConstraintKind(%d)", uint8(k))
	}
}

// Let is one `let name = expr` binding.
type Let struct {
	Name string
	Expr Expr
}

// Constraint is one model requirement: `acyclic e as name`,
// `irreflexive e`, `empty e`, or their negated (`~`) and flagged (`flag`)
// forms. A plain constraint rejects candidate executions that violate it;
// a `flag` constraint never rejects — it marks the candidate with its
// name (the cat idiom for race detection: `flag ~empty races as race`).
type Constraint struct {
	Flag bool
	Kind ConstraintKind
	// Neg inverts the test: `~empty e` is violated when e IS empty.
	Neg  bool
	Expr Expr
	As   string
}

// Dump renders the constraint as an s-expression.
func (c *Constraint) Dump(b *strings.Builder) {
	b.WriteByte('(')
	if c.Flag {
		b.WriteString("flag ")
	}
	if c.Neg {
		b.WriteByte('~')
	}
	b.WriteString(c.Kind.String())
	b.WriteByte(' ')
	c.Expr.dump(b)
	if c.As != "" {
		fmt.Fprintf(b, " as %s", c.As)
	}
	b.WriteByte(')')
}

// Model is one parsed cat memory model: an ordered list of let bindings
// plus the constraints to check on each candidate execution.
type Model struct {
	// Name is the model's declared or assigned name.
	Name string
	// Lets holds the bindings in source order; later bindings may
	// reference earlier ones.
	Lets []Let
	// Constraints holds the checks in source order.
	Constraints []Constraint

	// usesSO caches whether any expression references the enumerated
	// synchronization order `so` (computed at parse time).
	usesSO bool
	// letType records each binding's inferred type (see eval.go).
	letType map[string]exprType
}

// UsesSyncOrder reports whether the model references the primitive `so`,
// in which case the engine enumerates per-location synchronization total
// orders for each candidate (see enumerate.go).
func (m *Model) UsesSyncOrder() bool { return m.usesSO }

// Dump renders the whole model as an s-expression tree, one statement per
// line — the format pinned by the golden parse-tree tests.
func (m *Model) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(model %s\n", m.Name)
	for _, l := range m.Lets {
		fmt.Fprintf(&b, "  (let %s ", l.Name)
		l.Expr.dump(&b)
		b.WriteString(")\n")
	}
	for i := range m.Constraints {
		b.WriteString("  ")
		m.Constraints[i].Dump(&b)
		b.WriteByte('\n')
	}
	b.WriteString(")\n")
	return b.String()
}
