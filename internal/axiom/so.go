package axiom

import (
	"weakorder/internal/mem"
)

// Synchronization-order enumeration. The paper's weak-ordering contract
// (hb = (po ∪ so)+ under DRF0) quantifies over the per-address total
// orders in which synchronization operations complete. On the idealized
// architecture those orders are exactly the per-address restrictions of
// some interleaving, so for each consistent candidate the engine
// enumerates every family of per-address total orders over SYNC events
// that is a linear extension of the communication order
// (po ∪ rf ∪ co ∪ fr)+ and jointly acyclic with it — per-address
// extensions can still cycle with each other through po across
// addresses, so acyclicity is maintained globally: a transitive closure
// is updated incrementally as each sync event is appended, and an
// append that would close a cycle is rejected.

// soSearch enumerates synchronization orders for one complete candidate.
type soSearch struct {
	s      *searcher
	evs    [][]int  // sync event ids, grouped by address
	used   [][]bool // per group: already placed
	placed [][]int  // per group: placement order so far
	C      *Rel     // transitive closure of po|rf|co|fr|so-so-far
	so     *Rel     // union of the per-address orders built so far
	fired  map[string]bool
	soOK   bool
	done   bool
}

// enumerateSO explores the candidate's synchronization orders. It
// reports whether at least one order satisfied every so-dependent
// non-flag constraint (when there are none, the first order suffices),
// accumulating so-dependent flags into fired across all valid orders.
func (s *searcher) enumerateSO(fired map[string]bool) (bool, error) {
	sk := s.sk
	groups := make(map[mem.Addr][]int)
	for i := sk.firstReal; i < len(sk.events); i++ {
		ev := &sk.events[i]
		if !ev.fence && ev.kind.IsSync() {
			groups[ev.addr] = append(groups[ev.addr], i)
		}
	}
	ss := &soSearch{s: s, fired: fired}
	for _, a := range s.p.Addresses() {
		if evs := groups[a]; len(evs) > 0 {
			ss.evs = append(ss.evs, evs)
			ss.used = append(ss.used, make([]bool, len(evs)))
			ss.placed = append(ss.placed, make([]int, 0, len(evs)))
		}
	}
	ss.C = s.ar.Rel()
	ss.so = s.ar.Rel()
	defer func() {
		s.ar.PutRel(ss.C)
		s.ar.PutRel(ss.so)
	}()
	ss.C.CopyFrom(s.rels["po"])
	ss.C.UnionWith(s.rf)
	ss.C.UnionWith(s.co)
	ss.C.UnionWith(s.fr)
	ss.C.Close()

	var err error
	if len(ss.evs) == 0 {
		err = ss.complete()
	} else {
		err = ss.place(0)
	}
	return ss.soOK, err
}

// place extends group ai's order by one event and recurses, moving to
// the next group when the current one is fully placed.
func (ss *soSearch) place(ai int) error {
	if ss.done {
		return nil
	}
	evs := ss.evs[ai]
	placed := ss.placed[ai]
	if len(placed) == len(evs) {
		if ai+1 == len(ss.evs) {
			return ss.complete()
		}
		return ss.place(ai + 1)
	}
	last := -1
	if len(placed) > 0 {
		last = placed[len(placed)-1]
	}
	for i, x := range evs {
		if ss.used[ai][i] {
			continue
		}
		// x may come next only if no unplaced same-address event is
		// already forced before it, and appending it after last closes
		// no cycle through the current closure.
		blocked := false
		for j, y := range evs {
			if j != i && !ss.used[ai][j] && ss.C.Has(y, x) {
				blocked = true
				break
			}
		}
		if blocked || (last >= 0 && ss.C.Has(x, last)) {
			continue
		}
		if err := ss.s.step(); err != nil {
			return err
		}
		var saved *Rel
		if last >= 0 {
			saved = ss.s.ar.Rel()
			saved.CopyFrom(ss.C)
			ss.addClosureEdge(last, x)
		}
		for _, p := range placed {
			ss.so.Add(p, x)
		}
		ss.used[ai][i] = true
		ss.placed[ai] = append(placed, x)

		err := ss.place(ai)

		ss.placed[ai] = placed
		ss.used[ai][i] = false
		for _, p := range placed {
			ss.so.Remove(p, x)
		}
		if saved != nil {
			ss.C.CopyFrom(saved)
			ss.s.ar.PutRel(saved)
		}
		if err != nil {
			return err
		}
		if ss.done {
			return nil
		}
	}
	return nil
}

// addClosureEdge adds (f, x) to the closure C: everything at or before f
// now also reaches x and everything x reaches.
func (ss *soSearch) addClosureEdge(f, x int) {
	xr := ss.C.Row(x)
	for u := 0; u < ss.C.N(); u++ {
		if u == f || ss.C.Has(u, f) {
			row := ss.C.Row(u)
			row.UnionWith(xr)
			row.Add(x)
		}
	}
}

// complete evaluates the so-dependent constraints and flags against one
// fully built synchronization order.
func (ss *soSearch) complete() error {
	s := ss.s
	s.verdict.Stats.SyncOrders++
	s.ev.begin(s.rf, s.co, s.fr, ss.so)
	defer s.ev.end()
	for _, c := range s.soCs {
		if s.ev.violated(c) {
			return nil
		}
	}
	ss.soOK = true
	if !s.wantFlags {
		ss.done = true
		return nil
	}
	all := true
	for _, c := range s.flagSoCs {
		name := s.flagName[c]
		if !s.ev.violated(c) {
			ss.fired[name] = true
		}
		if !ss.fired[name] {
			all = false
		}
	}
	if all {
		ss.done = true
	}
	return nil
}
