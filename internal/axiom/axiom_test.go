package axiom

import (
	"testing"

	"weakorder/internal/drf"
	"weakorder/internal/hb"
	"weakorder/internal/ideal"
	"weakorder/internal/litmus"
	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/program"
	"weakorder/internal/scmatch"
)

// storeBuffering is the classic SB litmus test with plain accesses:
// each thread stores 1 to its own flag then loads the other's.
// Sequential consistency forbids both loads returning 0; TSO allows it
// unless each thread fences between its store and its load.
func storeBuffering(fenced bool) *program.Program {
	name := "sb"
	if fenced {
		name = "sb+fences"
	}
	b := program.NewBuilder(name)
	x, y := b.Var("x"), b.Var("y")
	t0 := b.Thread()
	t0.StoreImm(x, 1)
	if fenced {
		t0.Fence()
	}
	t0.Load(program.R0, y)
	t1 := b.Thread()
	t1.StoreImm(y, 1)
	if fenced {
		t1.Fence()
	}
	t1.Load(program.R0, x)
	return b.MustBuild()
}

// hasOutcome reports whether some outcome observes value v for the
// read with the given id.
func hasOutcome(outs map[string]mem.Result, id mem.OpID, v mem.Value) bool {
	for _, r := range outs {
		if obs, ok := r.Reads[id]; ok && obs.Value == v {
			_ = obs
			// Require the symmetric read too when present is the
			// caller's business; here one read suffices.
			return true
		}
	}
	return false
}

// bothZero reports whether some outcome has both threads' loads (the
// last read of each thread) observing zero — the SB "relaxed" result.
func bothZero(outs map[string]mem.Result) bool {
	for _, r := range outs {
		z := 0
		for _, obs := range r.Reads {
			if obs.Value == 0 {
				z++
			}
		}
		if z == len(r.Reads) && len(r.Reads) == 2 {
			return true
		}
	}
	return false
}

func TestStoreBufferingAcrossModels(t *testing.T) {
	sb := storeBuffering(false)
	cfg := Config{MaxMemOpsPerThread: 4}

	scOuts, st, err := Outcomes(sb, MustLoad("sc"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Complete {
		t.Fatal("sc search incomplete")
	}
	if len(scOuts) != 3 {
		t.Errorf("SC admits %d SB outcomes, want 3 (0/1, 1/0, 1/1)", len(scOuts))
	}
	if bothZero(scOuts) {
		t.Error("SC must forbid the SB both-zero outcome")
	}

	tsoOuts, _, err := Outcomes(sb, MustLoad("tso"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bothZero(tsoOuts) {
		t.Error("TSO must allow the SB both-zero outcome")
	}
	if len(tsoOuts) != 4 {
		t.Errorf("TSO admits %d SB outcomes, want 4", len(tsoOuts))
	}

	fencedOuts, _, err := Outcomes(storeBuffering(true), MustLoad("tso"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bothZero(fencedOuts) {
		t.Error("TSO with fences must forbid the SB both-zero outcome")
	}
	if len(fencedOuts) != 3 {
		t.Errorf("fenced TSO admits %d SB outcomes, want 3", len(fencedOuts))
	}
}

// messagePassingRA: sync flag handoff with a plain payload — the MP
// shape release–acquire promises to order.
func messagePassingRA(syncFlag bool) *program.Program {
	b := program.NewBuilder("mp")
	data, flag := b.Var("data"), b.Var("flag")
	t0 := b.Thread()
	t0.StoreImm(data, 1)
	if syncFlag {
		t0.SyncStoreImm(flag, 1)
	} else {
		t0.StoreImm(flag, 1)
	}
	t1 := b.Thread()
	if syncFlag {
		t1.SyncLoad(program.R0, flag)
	} else {
		t1.Load(program.R0, flag)
	}
	t1.Load(program.R1, data)
	return b.MustBuild()
}

// staleAfterFlag reports whether some outcome reads flag=1 but data=0.
func staleAfterFlag(outs map[string]mem.Result) bool {
	for _, r := range outs {
		flag := mem.Value(-1)
		data := mem.Value(-1)
		for _, obs := range r.Reads {
			switch obs.ID.Index {
			case 0:
				flag = obs.Value
			case 1:
				data = obs.Value
			}
		}
		if flag == 1 && data == 0 {
			return true
		}
	}
	return false
}

func TestMessagePassingUnderRA(t *testing.T) {
	cfg := Config{MaxMemOpsPerThread: 4}
	ra := MustLoad("ra")

	synced, st, err := Outcomes(messagePassingRA(true), ra, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Complete {
		t.Fatal("ra search incomplete")
	}
	if staleAfterFlag(synced) {
		t.Error("release–acquire must forbid stale data behind a sync flag")
	}
	plain, _, err := Outcomes(messagePassingRA(false), ra, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !staleAfterFlag(plain) {
		t.Error("release–acquire must allow stale data behind a plain flag")
	}
}

// TestSCOutcomesMatchOperational cross-checks the axiomatic SC outcome
// set against scmatch.Outcomes (exhaustive idealized interleaving) on
// the litmus suite with matched per-thread budgets.
func TestSCOutcomesMatchOperational(t *testing.T) {
	sc := MustLoad("sc")
	for _, p := range litmus.All() {
		budget := litmusBudget(p.Name)
		t.Run(p.Name, func(t *testing.T) {
			axOuts, st, err := Outcomes(p, sc, Config{MaxMemOpsPerThread: budget})
			if err != nil {
				t.Fatal(err)
			}
			if !st.Complete {
				t.Fatalf("axiomatic search incomplete: %+v", st)
			}
			opOuts, err := scmatch.Outcomes(p, ideal.EnumConfig{
				Interp:        ideal.Config{MaxMemOpsPerThread: budget},
				SkipTruncated: true,
				Reduce:        true,
			})
			if err != nil {
				t.Fatal(err)
			}
			diffOutcomeSets(t, axOuts, opOuts)
		})
	}
}

func diffOutcomeSets(t *testing.T, ax map[string]mem.Result, op map[string]*mem.Execution) {
	t.Helper()
	for k := range ax {
		if _, ok := op[k]; !ok {
			t.Errorf("axiomatic-only outcome %q", k)
		}
	}
	for k := range op {
		if _, ok := ax[k]; !ok {
			t.Errorf("operational-only outcome %q", k)
		}
	}
}

// litmusBudget picks a per-thread memory-op budget per litmus program:
// small enough to keep spin loops enumerable, large enough to cover the
// longest straight-line thread.
func litmusBudget(name string) int {
	switch name {
	case "mp", "mp-racy-spin":
		return 6
	case "critsec-2p-1r":
		// One lock acquisition is 4 ops (TAS, load, store, unlock);
		// budget 7 admits up to 3 failed TAS retries while keeping the
		// candidate space enumerable under the default step cap.
		return 7
	default:
		return 8
	}
}

// TestDRF0FlagMatchesOperational cross-checks the drf0 model's race
// flag against drf.Check on the litmus suite with matched budgets.
func TestDRF0FlagMatchesOperational(t *testing.T) {
	drf0 := MustLoad("drf0")
	for _, p := range litmus.All() {
		budget := litmusBudget(p.Name)
		t.Run(p.Name, func(t *testing.T) {
			v, err := Check(p, drf0, Config{MaxMemOpsPerThread: budget, StopWhenFlagged: true})
			if err != nil {
				t.Fatal(err)
			}
			if !v.Stats.Complete {
				t.Fatalf("axiomatic search incomplete: %+v", v.Stats)
			}
			opv, err := drf.Check(p, hb.SyncAll, drf.CheckConfig{Enum: ideal.EnumConfig{
				Interp:            ideal.Config{MaxMemOpsPerThread: budget},
				SkipTruncated:     true,
				Reduce:            true,
				PreserveSyncOrder: true,
			}})
			if err != nil {
				t.Fatal(err)
			}
			axRacy := v.Flags["race"] > 0
			if axRacy == opv.DRF {
				t.Errorf("race disagreement: axiomatic racy=%v, drf.Check DRF=%v", axRacy, opv.DRF)
			}
		})
	}
}

// TestMetricsExported checks the engine's counters land in a registry.
func TestMetricsExported(t *testing.T) {
	reg := metrics.NewRegistry()
	_, _, err := Outcomes(storeBuffering(false), MustLoad("sc"), Config{
		MaxMemOpsPerThread: 4,
		Metrics:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Counter("axiom.candidates").Value() == 0 {
		t.Error("axiom.candidates not exported")
	}
	if reg.Counter("axiom.consistent").Value() == 0 {
		t.Error("axiom.consistent not exported")
	}
	h := reg.Histogram("axiom.check.micros.SC", timingBounds).Hist()
	if h.Count == 0 {
		t.Error("per-model timing histogram not observed")
	}
}

// TestStatsPruning checks the monotone pruner actually cuts subtrees on
// a program with an unsatisfiable pinned spin.
func TestStatsPruning(t *testing.T) {
	_, st, err := Outcomes(litmus.Dekker(), MustLoad("sc"), Config{MaxMemOpsPerThread: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Pruned == 0 {
		t.Error("expected pruned subtrees on Dekker under SC")
	}
	if st.Candidates == 0 || st.Consistent == 0 {
		t.Errorf("implausible stats: %+v", st)
	}
}
