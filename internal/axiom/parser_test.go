package axiom

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata")

// TestBundledModelsGolden parses every bundled model and compares its
// s-expression parse tree against testdata/models/<name>.golden.
// Regenerate with: go test ./internal/axiom -run Golden -update
func TestBundledModelsGolden(t *testing.T) {
	for _, name := range ModelNames() {
		t.Run(name, func(t *testing.T) {
			m, err := Load(name)
			if err != nil {
				t.Fatalf("Load(%q): %v", name, err)
			}
			got := m.Dump()
			golden := filepath.Join("testdata", "models", name+".golden")
			if *updateGolden {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("parse tree diverged from %s:\n got:\n%s\nwant:\n%s", golden, got, want)
			}
		})
	}
}

// TestParsePrecedence pins the operator precedence and the postfix-star
// disambiguation via dump forms.
func TestParsePrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want string // dump of the single constraint's expression
	}{
		// | < \ < & < ; < * (cross), left-associative.
		{"empty po | rf \\ co", "(| po (\\ rf co))"},
		{"empty po \\ rf \\ co", "(\\ (\\ po rf) co)"},
		{"empty po & loc | rf", "(| (& po loc) rf)"},
		{"empty po ; rf & loc", "(& (; po rf) loc)"},
		{"empty W * R | po", "(| (* W R) po)"},
		{"empty rf ; W * R", "(; rf (* W R))"},
		// Postfix binds tightest; star is postfix when nothing follows.
		{"empty (po | so)+", "(+ (| po so))"},
		{"empty po ; rf?", "(; po (? rf))"},
		{"empty rf^-1 ; co", "(; (^-1 rf) co)"},
		{"empty po*", "(* po)"},
		{"empty po* ; rf", "(; (* po) rf)"},
		// Star as cross product when an expression follows.
		{"empty W * R", "(* W R)"},
		{"empty [W] ; po", "(; (diag W) po)"},
		{"empty _ * F", "(* _ F)"},
		// Nested comments vanish.
		{"empty po (* a (* nested *) b *) | rf", "(| po rf)"},
	}
	for _, c := range cases {
		m, err := Parse("t", c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		var b strings.Builder
		m.Constraints[0].Expr.dump(&b)
		if b.String() != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.src, b.String(), c.want)
		}
	}
}

// TestParseErrors pins rejection of malformed and ill-typed models.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string // substring the error must contain
	}{
		{"", "no constraints"},
		{"let x = po", "no constraints"},
		{"empty nope", "unknown name"},
		{"let po = rf\nempty po", "shadows a primitive"},
		{"let x = po\nlet x = rf\nempty x", "duplicate let"},
		{"empty po ^ rf", "only ^-1"},
		{"acyclic (po", "expected ')'"},
		{"empty [W ; po", "expected ']'"},
		{"empty W ; R", "needs relations"},
		{"empty po * rf", "needs sets"},
		{"empty W | po", "mixes"},
		{"acyclic W", "needs a relation"},
		{"empty W+", "needs a relation"},
		{"empty [po]", "needs a set"},
		{"empty (* unterminated", "unterminated comment"},
	}
	for _, c := range cases {
		_, err := Parse("t", c.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q, got nil", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.src, err, c.frag)
		}
	}
}

// TestModelMetadata checks flag classification, so detection, and the
// monotonicity analysis used for pruning.
func TestModelMetadata(t *testing.T) {
	sc := MustLoad("sc")
	if sc.UsesSyncOrder() {
		t.Error("sc model should not use so")
	}
	drf0 := MustLoad("drf0")
	if !drf0.UsesSyncOrder() {
		t.Error("drf0 model must use so")
	}
	// sc's acyclicity axiom is monotone in rf/co/fr — prunable.
	if c := &sc.Constraints[0]; !sc.prunable(c) {
		t.Error("sc acyclicity axiom should be prunable")
	}
	// A difference with a dynamic relation on the right is not monotone.
	m, err := Parse("t", "empty po \\ rf")
	if err != nil {
		t.Fatal(err)
	}
	if m.prunable(&m.Constraints[0]) {
		t.Error("po \\ rf must not be prunable (rf at negative polarity)")
	}
	// The same through a let binding.
	m, err = Parse("t", "let x = po \\ (rf ; co)\nempty x")
	if err != nil {
		t.Fatal(err)
	}
	if m.prunable(&m.Constraints[0]) {
		t.Error("let-indirected negative rf must not be prunable")
	}
	// Flag constraints never prune or reject.
	for i := range drf0.Constraints {
		c := &drf0.Constraints[i]
		if c.Flag && drf0.prunable(c) {
			t.Error("flag constraint must not be prunable")
		}
	}
}
