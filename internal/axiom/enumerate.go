package axiom

import (
	"errors"
	"fmt"

	"weakorder/internal/bitset"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Stats reports what one model evaluation explored.
type Stats struct {
	// Runs counts the complete per-thread local runs enumerated against
	// the final value domains.
	Runs int
	// Skeletons counts run combinations assembled into event graphs.
	Skeletons int
	// Candidates counts complete rf/co assignments examined.
	Candidates int
	// Consistent counts candidates that satisfied every non-flag
	// constraint.
	Consistent int
	// Pruned counts search subtrees cut by a monotone constraint
	// violation on a partial candidate.
	Pruned int
	// SyncOrders counts complete synchronization-order linearizations
	// examined (zero unless the model mentions so).
	SyncOrders int
	// Steps counts search-tree nodes across rf, co and so enumeration.
	Steps int
	// Truncated reports that some local run hit the per-thread memory-op
	// budget and was discarded — the analogue of the operational
	// enumerator's skipped ErrTruncated paths.
	Truncated bool
	// Complete is false when a hard cap (values per address, runs per
	// thread, steps, candidates) was hit and results may be partial.
	Complete bool
}

// Verdict is the outcome of evaluating a model over a program.
type Verdict struct {
	// Outcomes maps mem.Result.Key() to the observable result of each
	// consistent candidate execution.
	Outcomes map[string]mem.Result
	// Flags counts, per flag constraint name, the consistent candidates
	// it marked (races under the bundled drf0 model).
	Flags map[string]int
	// Stats reports search effort and completeness.
	Stats Stats
}

// errBudget aborts the search when a step or candidate cap is hit.
var errBudget = errors.New("axiom: search budget exhausted")

// ErrCanceled reports that Config.Cancel asked the search to stop.
var ErrCanceled = errors.New("axiom: search canceled")

// cancelPollMask throttles Config.Cancel polling to every 256 search
// nodes; the hook typically reads a clock, too expensive per node.
const cancelPollMask = 255

// searcher enumerates the candidate executions of one program under one
// model and streams the consistent ones into the verdict.
type searcher struct {
	p         *program.Program
	m         *Model
	cfg       *Config
	wantFlags bool
	stopFlag  bool // stop the whole search once every flag has fired

	// Constraint partition, fixed per model: pruneCs are checked on
	// partial candidates (monotone, so a violation persists in every
	// completion), leafCs on complete rf/co candidates, soCs and
	// flagSoCs per synchronization-order linearization.
	pruneCs    []*Constraint
	leafCs     []*Constraint
	soCs       []*Constraint
	flagLeafCs []*Constraint
	flagSoCs   []*Constraint
	flagName   map[*Constraint]string
	needSO     bool

	verdict Verdict

	// Per-skeleton search state.
	sk      *skeleton
	ar      *relArena
	ev      *evaluator
	sets    map[string]*bitset.Set
	rels    map[string]*Rel
	rf      *Rel
	co      *Rel
	fr      *Rel
	srcs    [][]int // per read (by position in sk.reads): legal rf sources
	rfSrc   []int   // per read: chosen source event id
	coOrder map[mem.Addr][]int
	coIns   []coInsertion

	arenas map[int]*relArena
}

type coInsertion struct {
	addr mem.Addr
	w    int
}

func newSearcher(p *program.Program, m *Model, cfg *Config, wantFlags bool) *searcher {
	s := &searcher{
		p: p, m: m, cfg: cfg, wantFlags: wantFlags,
		stopFlag: wantFlags && cfg.StopWhenFlagged,
		flagName: make(map[*Constraint]string),
		arenas:   make(map[int]*relArena),
	}
	s.verdict.Outcomes = make(map[string]mem.Result)
	s.verdict.Flags = make(map[string]int)
	for i := range m.Constraints {
		c := &m.Constraints[i]
		so := m.mentionsSO(c.Expr)
		switch {
		case c.Flag && so:
			s.flagSoCs = append(s.flagSoCs, c)
		case c.Flag:
			s.flagLeafCs = append(s.flagLeafCs, c)
		case so:
			s.soCs = append(s.soCs, c)
		default:
			if m.prunable(c) {
				s.pruneCs = append(s.pruneCs, c)
			}
			s.leafCs = append(s.leafCs, c)
		}
		if c.Flag {
			name := c.As
			if name == "" {
				name = fmt.Sprintf("flag%d", i)
			}
			s.flagName[c] = name
			s.verdict.Flags[name] = 0
		}
	}
	// Synchronization orders must be enumerated when they decide
	// consistency, or when the caller wants so-dependent flags.
	s.needSO = len(s.soCs) > 0 || (wantFlags && len(s.flagSoCs) > 0)
	return s
}

// mentionsSO reports whether e references the primitive so, expanding
// let references.
func (m *Model) mentionsSO(e Expr) bool {
	switch e := e.(type) {
	case *Name:
		if e.Ident == "so" {
			return true
		}
		if def, ok := m.letDef(e.Ident); ok {
			return m.mentionsSO(def)
		}
		return false
	case *Bin:
		return m.mentionsSO(e.L) || m.mentionsSO(e.R)
	case *Post:
		return m.mentionsSO(e.E)
	case *Diag:
		return m.mentionsSO(e.S)
	}
	return false
}

func (s *searcher) arena(n int) *relArena {
	ar, ok := s.arenas[n]
	if !ok {
		ar = newRelArena(n)
		s.arenas[n] = ar
	}
	return ar
}

// run drives the whole search: value domains, per-thread runs, run
// combinations, and the rf/co/so enumeration per skeleton.
func (s *searcher) run() error {
	st := &s.verdict.Stats
	st.Complete = true
	dom, complete, err := computeDomains(s.p, s.cfg)
	if err != nil {
		return err
	}
	if !complete {
		st.Complete = false
	}
	runs, overflow, err := enumerateRuns(s.p, dom, s.cfg)
	if err != nil {
		return err
	}
	if overflow {
		st.Complete = false
	}
	for t := range runs {
		st.Runs += len(runs[t].runs)
		if runs[t].truncated {
			st.Truncated = true
		}
		if len(runs[t].runs) == 0 {
			// Every run of this thread was truncated: no complete
			// candidate exists (the operational oracles likewise skip
			// all truncated interleavings of such a program).
			return nil
		}
	}
	// Odometer over one run choice per thread.
	combo := make([][]event, len(runs))
	idx := make([]int, len(runs))
	for {
		for t := range runs {
			combo[t] = runs[t].runs[idx[t]]
		}
		if err := s.searchSkeleton(combo); err != nil {
			if errors.Is(err, errBudget) {
				st.Complete = false
				return nil
			}
			if errors.Is(err, errStop) {
				return nil
			}
			return err
		}
		t := len(idx) - 1
		for t >= 0 {
			idx[t]++
			if idx[t] < len(runs[t].runs) {
				break
			}
			idx[t] = 0
			t--
		}
		if t < 0 {
			return nil
		}
	}
}

// errStop ends the search early once every flag has fired (StopWhenFlagged).
var errStop = errors.New("axiom: search stopped")

// searchSkeleton enumerates rf and co over one run combination.
func (s *searcher) searchSkeleton(combo [][]event) error {
	sk := buildSkeleton(s.p, combo)
	s.verdict.Stats.Skeletons++
	s.sk = sk
	n := len(sk.events)
	ar := s.arena(n)
	s.ar = ar

	// Legal rf sources per read: same address, not the read itself, and
	// matching data when the read's value was pinned by local control or
	// data flow. A pinned value no write can supply makes the whole
	// skeleton infeasible.
	s.srcs = s.srcs[:0]
	for _, r := range sk.reads {
		rev := &sk.events[r]
		var cands []int
		for _, w := range sk.writesByAddr[rev.addr] {
			if w == r {
				continue
			}
			if rev.pinned && sk.events[w].data != rev.got {
				continue
			}
			cands = append(cands, w)
		}
		if len(cands) == 0 {
			return nil
		}
		s.srcs = append(s.srcs, cands)
	}

	sets, rels, owned := s.buildStatics(sk, ar)
	s.sets, s.rels = sets, rels
	defer func() {
		for _, r := range owned.rels {
			ar.PutRel(r)
		}
		for _, b := range owned.sets {
			ar.PutSet(b)
		}
	}()
	s.ev = newEvaluator(s.m, n, ar, sets, rels)

	s.rf = ar.Rel()
	s.co = ar.Rel()
	s.fr = ar.Rel()
	defer func() {
		ar.PutRel(s.rf)
		ar.PutRel(s.co)
		ar.PutRel(s.fr)
	}()

	s.rfSrc = resizeInts(s.rfSrc, len(sk.reads))
	s.coOrder = make(map[mem.Addr][]int, len(sk.iw))
	s.coIns = s.coIns[:0]
	for _, a := range s.p.Addresses() {
		s.coOrder[a] = append([]int(nil), sk.writesByAddr[a][:1]...)
		for _, w := range sk.writesByAddr[a][1:] {
			s.coIns = append(s.coIns, coInsertion{addr: a, w: w})
		}
	}
	return s.rfStep(0)
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

type staticOwned struct {
	rels []*Rel
	sets []*bitset.Set
}

// buildStatics computes the skeleton's primitive sets and fixed relations.
func (s *searcher) buildStatics(sk *skeleton, ar *relArena) (map[string]*bitset.Set, map[string]*Rel, *staticOwned) {
	n := len(sk.events)
	owned := &staticOwned{}
	set := func() *bitset.Set { b := ar.Set(); owned.sets = append(owned.sets, b); return b }
	rel := func() *Rel { r := ar.Rel(); owned.rels = append(owned.rels, r); return r }

	univ := set()
	univ.Fill()
	sets := map[string]*bitset.Set{
		"_": univ, "M": set(), "R": set(), "W": set(), "RMW": set(),
		"F": set(), "SYNC": set(), "IW": set(),
	}
	for i := range sk.events {
		ev := &sk.events[i]
		if ev.fence {
			sets["F"].Add(i)
			continue
		}
		sets["M"].Add(i)
		if ev.isRead() {
			sets["R"].Add(i)
		}
		if ev.isWrite() {
			sets["W"].Add(i)
		}
		if ev.proc == mem.InitProc {
			sets["IW"].Add(i)
			continue
		}
		if ev.kind == mem.SyncRMW {
			sets["RMW"].Add(i)
		}
		if ev.kind.IsSync() {
			sets["SYNC"].Add(i)
		}
	}

	po, loc, intr, ext, id := rel(), rel(), rel(), rel(), rel()
	// po: per-thread total order over the thread's events, fences
	// included; initial writes are po-unrelated to everything.
	byProc := map[int][]int{}
	byAddr := map[mem.Addr][]int{}
	for i := sk.firstReal; i < n; i++ {
		byProc[sk.events[i].proc] = append(byProc[sk.events[i].proc], i)
	}
	for i := range sk.events {
		if !sk.events[i].fence {
			byAddr[sk.events[i].addr] = append(byAddr[sk.events[i].addr], i)
		}
	}
	for _, evs := range byProc {
		for x := 0; x < len(evs); x++ {
			for y := x + 1; y < len(evs); y++ {
				po.Add(evs[x], evs[y])
			}
		}
	}
	for _, evs := range byAddr {
		for _, x := range evs {
			for _, y := range evs {
				loc.Add(x, y)
			}
		}
	}
	// int: same processor (initial writes form their own group); ext is
	// its complement over all event pairs.
	byProcAll := map[int][]int{}
	for i := range sk.events {
		p := sk.events[i].proc
		if sk.events[i].proc == mem.InitProc {
			p = mem.InitProc
		}
		byProcAll[p] = append(byProcAll[p], i)
	}
	for _, evs := range byProcAll {
		for _, x := range evs {
			for _, y := range evs {
				intr.Add(x, y)
			}
		}
	}
	ext.CrossInto(univ, univ)
	ext.DifferenceWith(intr)
	id.DiagInto(univ)

	rels := map[string]*Rel{"po": po, "loc": loc, "int": intr, "ext": ext, "id": id}
	return sets, rels, owned
}

// step accounts one search-tree node against the step budget and polls
// the cooperative cancellation hook.
func (s *searcher) step() error {
	s.verdict.Stats.Steps++
	if s.verdict.Stats.Steps > s.cfg.MaxSteps {
		return errBudget
	}
	if s.cfg.Cancel != nil && s.verdict.Stats.Steps&cancelPollMask == 1 && s.cfg.Cancel() {
		return ErrCanceled
	}
	return nil
}

// computeFR rebuilds fr = rf⁻¹ ; co \ id from the current partial rf and
// co: for each assigned read, every write coherence-after its source.
func (s *searcher) computeFR(upto int) {
	s.fr.Clear()
	for k := 0; k < upto; k++ {
		r := s.sk.reads[k]
		w := s.rfSrc[k]
		row := s.fr.Row(r)
		row.UnionWith(s.co.Row(w))
		row.Remove(r)
	}
}

// pruned reports whether a monotone constraint already fails on the
// current partial candidate; rfUpto is how many reads have sources.
func (s *searcher) pruned(rfUpto int) bool {
	if len(s.pruneCs) == 0 {
		return false
	}
	s.computeFR(rfUpto)
	s.ev.begin(s.rf, s.co, s.fr, nil)
	defer s.ev.end()
	for _, c := range s.pruneCs {
		if s.ev.violated(c) {
			s.verdict.Stats.Pruned++
			return true
		}
	}
	return false
}

// rfStep assigns a source to the k-th read and recurses; after the last
// read it moves to coherence insertion.
func (s *searcher) rfStep(k int) error {
	if k == len(s.sk.reads) {
		return s.coStep(0)
	}
	r := s.sk.reads[k]
	for _, w := range s.srcs[k] {
		if err := s.step(); err != nil {
			return err
		}
		s.rfSrc[k] = w
		s.rf.Add(w, r)
		ok := !s.pruned(k + 1)
		var err error
		if ok {
			err = s.rfStep(k + 1)
		}
		s.rf.Remove(w, r)
		if err != nil {
			return err
		}
	}
	return nil
}

// coStep inserts the k-th non-initial write into its address's coherence
// order at every position after the initial write, and recurses; after
// the last write the candidate is complete.
func (s *searcher) coStep(k int) error {
	if k == len(s.coIns) {
		return s.leaf()
	}
	ins := s.coIns[k]
	order := s.coOrder[ins.addr]
	for pos := 1; pos <= len(order); pos++ {
		if err := s.step(); err != nil {
			return err
		}
		// Splice w in at pos and add its coherence edges.
		for _, prev := range order[:pos] {
			s.co.Add(prev, ins.w)
		}
		for _, next := range order[pos:] {
			s.co.Add(ins.w, next)
		}
		next := make([]int, 0, len(order)+1)
		next = append(next, order[:pos]...)
		next = append(next, ins.w)
		next = append(next, order[pos:]...)
		s.coOrder[ins.addr] = next

		ok := !s.pruned(len(s.sk.reads))
		var err error
		if ok {
			err = s.coStep(k + 1)
		}

		s.coOrder[ins.addr] = order
		for _, prev := range order[:pos] {
			s.co.Remove(prev, ins.w)
		}
		for _, nxt := range order[pos:] {
			s.co.Remove(ins.w, nxt)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// leaf handles one complete rf/co candidate: final constraint checks,
// synchronization-order enumeration when the model needs it, flag
// evaluation, and outcome recording.
func (s *searcher) leaf() error {
	st := &s.verdict.Stats
	st.Candidates++
	if st.Candidates > s.cfg.MaxCandidates {
		return errBudget
	}
	s.computeFR(len(s.sk.reads))

	// All non-flag constraints that do not mention so, including the
	// prunable ones (cheap, and covers skeletons with no search nodes).
	s.ev.begin(s.rf, s.co, s.fr, nil)
	for _, c := range s.leafCs {
		if s.ev.violated(c) {
			s.ev.end()
			return nil
		}
	}
	fired := map[string]bool{}
	if s.wantFlags {
		for _, c := range s.flagLeafCs {
			if !s.ev.violated(c) {
				fired[s.flagName[c]] = true
			}
		}
	}
	s.ev.end()

	consistent := true
	if s.needSO {
		ok, err := s.enumerateSO(fired)
		if err != nil {
			return err
		}
		consistent = ok
	}
	if !consistent {
		return nil
	}
	st.Consistent++
	res := s.outcome()
	s.verdict.Outcomes[res.Key()] = res
	for name := range fired {
		s.verdict.Flags[name]++
	}
	if s.stopFlag {
		all := true
		for _, cnt := range s.verdict.Flags {
			if cnt == 0 {
				all = false
				break
			}
		}
		if all {
			return errStop
		}
	}
	return nil
}

// outcome extracts the candidate's observable mem.Result: each read's
// value (pinned, or its rf source's data) and the coherence-final value
// per address.
func (s *searcher) outcome() mem.Result {
	res := mem.Result{
		Reads: make(map[mem.OpID]mem.ReadObservation, len(s.sk.reads)),
		Final: make(map[mem.Addr]mem.Value, len(s.coOrder)),
	}
	for k, r := range s.sk.reads {
		ev := &s.sk.events[r]
		v := ev.got
		if !ev.pinned {
			v = s.sk.events[s.rfSrc[k]].data
		}
		id := mem.OpID{Proc: ev.proc, Index: ev.index}
		res.Reads[id] = mem.ReadObservation{ID: id, Addr: ev.addr, Value: v}
	}
	for a, order := range s.coOrder {
		res.Final[a] = s.sk.events[order[len(order)-1]].data
	}
	return res
}
