package axiom

import (
	"reflect"
	"testing"

	"weakorder/internal/bitset"
)

func relOf(n int, pairs ...[2]int) *Rel {
	r := NewRel(n)
	for _, p := range pairs {
		r.Add(p[0], p[1])
	}
	return r
}

func wantPairs(t *testing.T, label string, r *Rel, want ...[2]int) {
	t.Helper()
	got := r.Pairs()
	if len(want) == 0 && len(got) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s = %v, want %v", label, got, want)
	}
}

func TestRelAlgebra(t *testing.T) {
	a := relOf(4, [2]int{0, 1}, [2]int{1, 2})
	b := relOf(4, [2]int{1, 2}, [2]int{2, 3})

	u := NewRel(4)
	u.CopyFrom(a)
	u.UnionWith(b)
	wantPairs(t, "union", u, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})

	i := NewRel(4)
	i.CopyFrom(a)
	i.IntersectWith(b)
	wantPairs(t, "intersection", i, [2]int{1, 2})

	d := NewRel(4)
	d.CopyFrom(a)
	d.DifferenceWith(b)
	wantPairs(t, "difference", d, [2]int{0, 1})

	seq := NewRel(4)
	seq.SeqInto(a, b)
	wantPairs(t, "composition", seq, [2]int{0, 2}, [2]int{1, 3})

	inv := NewRel(4)
	inv.InverseInto(a)
	wantPairs(t, "inverse", inv, [2]int{1, 0}, [2]int{2, 1})

	s := bitset.New(4)
	s.Add(1)
	s.Add(3)
	diag := NewRel(4)
	diag.DiagInto(s)
	wantPairs(t, "diag", diag, [2]int{1, 1}, [2]int{3, 3})

	tt := bitset.New(4)
	tt.Add(0)
	cross := NewRel(4)
	cross.CrossInto(s, tt)
	wantPairs(t, "cross", cross, [2]int{1, 0}, [2]int{3, 0})
}

func TestRelClosure(t *testing.T) {
	// A chain, including a back edge to exercise the fixpoint iteration.
	r := relOf(5, [2]int{0, 1}, [2]int{1, 2}, [2]int{3, 0}, [2]int{2, 3})
	r.Close()
	for _, p := range [][2]int{{0, 2}, {0, 3}, {1, 3}, {3, 2}, {0, 0}, {2, 2}} {
		if !r.Has(p[0], p[1]) {
			t.Errorf("closure missing (%d,%d)", p[0], p[1])
		}
	}
	if r.Has(4, 0) || r.Has(0, 4) {
		t.Error("closure invented pairs for isolated node")
	}
}

func TestRelChecks(t *testing.T) {
	acy := relOf(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{0, 2})
	if !acy.Acyclic() {
		t.Error("DAG reported cyclic")
	}
	cyc := relOf(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0})
	if cyc.Acyclic() {
		t.Error("cycle reported acyclic")
	}
	self := relOf(3, [2]int{1, 1})
	if self.Acyclic() {
		t.Error("self-loop reported acyclic")
	}
	if self.Irreflexive() {
		t.Error("self-loop reported irreflexive")
	}
	if !acy.Irreflexive() {
		t.Error("irreflexive relation misreported")
	}
	if !NewRel(3).Empty() || acy.Empty() {
		t.Error("emptiness misreported")
	}
}

func TestRelArenaRecycles(t *testing.T) {
	ar := newRelArena(8)
	r := ar.Rel()
	r.Add(1, 2)
	ar.PutRel(r)
	r2 := ar.Rel()
	if r2 != r {
		t.Error("arena did not recycle the relation")
	}
	if !r2.Empty() {
		t.Error("recycled relation not cleared")
	}
	s := ar.Set()
	s.Add(3)
	ar.PutSet(s)
	s2 := ar.Set()
	if s2 != s {
		t.Error("arena did not recycle the set")
	}
	if !s2.Empty() {
		t.Error("recycled set not cleared")
	}
}
