package axiom

import (
	"embed"
	"fmt"
	"sort"
	"strings"
	"sync"
)

//go:embed testdata/models/*.cat
var modelFS embed.FS

const modelDir = "testdata/models"

// ModelNames lists the bundled models, sorted: "drf0", "ra", "sc",
// "tso".
func ModelNames() []string {
	entries, err := modelFS.ReadDir(modelDir)
	if err != nil {
		panic(fmt.Sprintf("axiom: embedded models missing: %v", err))
	}
	var names []string
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".cat"))
	}
	sort.Strings(names)
	return names
}

var (
	loadMu sync.Mutex
	loaded map[string]*Model
)

// Load parses and returns a bundled model by name ("sc", "tso", "ra",
// "drf0"). Parsed models are immutable and cached.
func Load(name string) (*Model, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	if m, ok := loaded[name]; ok {
		return m, nil
	}
	src, err := modelFS.ReadFile(modelDir + "/" + name + ".cat")
	if err != nil {
		return nil, fmt.Errorf("axiom: no bundled model %q (have %s)", name, strings.Join(ModelNames(), ", "))
	}
	m, err := Parse(name, string(src))
	if err != nil {
		return nil, err
	}
	if loaded == nil {
		loaded = make(map[string]*Model)
	}
	loaded[name] = m
	return m, nil
}

// MustLoad is Load for the bundled models in tests and benchmarks.
func MustLoad(name string) *Model {
	m, err := Load(name)
	if err != nil {
		panic(err)
	}
	return m
}
