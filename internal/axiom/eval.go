package axiom

import (
	"fmt"

	"weakorder/internal/bitset"
)

// Primitive sets and relations. Sets classify events; relations order
// them. The dynamic relations rf, co, fr and so vary per candidate
// execution, everything else is fixed by the candidate skeleton.
//
// Sets:
//
//	_     all events (including fences and initial writes)
//	M     memory events: R | W (no fences)
//	R     events with a read component (Read, SyncRead, SyncRMW)
//	W     events with a write component (Write, SyncWrite, SyncRMW, IW)
//	RMW   atomic read-modify-writes (SyncRMW)
//	F     fences
//	SYNC  synchronization operations (SyncRead, SyncWrite, SyncRMW)
//	IW    the initial writes (one per address, co-minimal)
//
// Relations:
//
//	po    per-thread program order (total per thread, includes fences;
//	      initial writes are po-unrelated to everything)
//	rf    reads-from: write → read it satisfies
//	co    coherence: per-address total order on writes, IW first
//	fr    from-reads: rf⁻¹ ; co, minus identity
//	so    enumerated synchronization order (per-address total order on
//	      SYNC events); only available to models that mention it
//	loc   same non-fence events on the same address (reflexive)
//	ext   pairs from different processors
//	int   pairs from the same processor (reflexive)
//	id    identity on all events
var (
	primSets = map[string]bool{
		"M": true, "R": true, "W": true, "RMW": true,
		"F": true, "SYNC": true, "IW": true,
	}
	primRels = map[string]bool{
		"po": true, "rf": true, "co": true, "fr": true, "so": true,
		"loc": true, "ext": true, "int": true, "id": true,
	}
	// dynPrims are the relations chosen by the enumerator rather than
	// fixed by the skeleton — the inputs of the monotonicity analysis.
	dynPrims = map[string]bool{"rf": true, "co": true, "fr": true, "so": true}
)

func isPrimitive(name string) bool { return primSets[name] || primRels[name] }

// exprType distinguishes event sets from binary relations.
type exprType uint8

const (
	typeSet exprType = iota
	typeRel
)

func (t exprType) String() string {
	if t == typeSet {
		return "set"
	}
	return "relation"
}

// typecheck infers set-versus-relation for every expression and rejects
// ill-typed models (e.g. composing two sets). Let types are recorded for
// the evaluator.
func (m *Model) typecheck() error {
	m.letType = make(map[string]exprType, len(m.Lets))
	var infer func(e Expr) (exprType, error)
	infer = func(e Expr) (exprType, error) {
		switch e := e.(type) {
		case *Name:
			if primSets[e.Ident] {
				return typeSet, nil
			}
			if primRels[e.Ident] {
				return typeRel, nil
			}
			t, ok := m.letType[e.Ident]
			if !ok {
				return 0, fmt.Errorf("model %s: unknown name %q", m.Name, e.Ident)
			}
			return t, nil
		case *Univ:
			return typeSet, nil
		case *Bin:
			lt, err := infer(e.L)
			if err != nil {
				return 0, err
			}
			rt, err := infer(e.R)
			if err != nil {
				return 0, err
			}
			switch e.Op {
			case OpUnion, OpDiff, OpInter:
				if lt != rt {
					return 0, fmt.Errorf("model %s: %q mixes a %s and a %s", m.Name, e.Op, lt, rt)
				}
				return lt, nil
			case OpSeq:
				if lt != typeRel || rt != typeRel {
					return 0, fmt.Errorf("model %s: %q needs relations", m.Name, e.Op)
				}
				return typeRel, nil
			case OpCross:
				if lt != typeSet || rt != typeSet {
					return 0, fmt.Errorf("model %s: %q needs sets", m.Name, e.Op)
				}
				return typeRel, nil
			}
		case *Post:
			t, err := infer(e.E)
			if err != nil {
				return 0, err
			}
			if t != typeRel {
				return 0, fmt.Errorf("model %s: %q needs a relation", m.Name, e.Op)
			}
			return typeRel, nil
		case *Diag:
			t, err := infer(e.S)
			if err != nil {
				return 0, err
			}
			if t != typeSet {
				return 0, fmt.Errorf("model %s: [.] needs a set", m.Name)
			}
			return typeRel, nil
		}
		panic(fmt.Sprintf("axiom: unknown expression %T", e))
	}
	for _, l := range m.Lets {
		t, err := infer(l.Expr)
		if err != nil {
			return err
		}
		m.letType[l.Name] = t
	}
	for i := range m.Constraints {
		c := &m.Constraints[i]
		t, err := infer(c.Expr)
		if err != nil {
			return err
		}
		if t != typeRel && c.Kind != Empty {
			return fmt.Errorf("model %s: %s needs a relation", m.Name, c.Kind)
		}
	}
	return nil
}

func (m *Model) letDef(name string) (Expr, bool) {
	for i := range m.Lets {
		if m.Lets[i].Name == name {
			return m.Lets[i].Expr, true
		}
	}
	return nil, false
}

// negDyn reports whether e mentions a dynamic primitive (rf, co, fr, so)
// at negative polarity, expanding let references. neg tracks the current
// polarity: only the right operand of `\` flips it — every other operator
// in the language is monotone.
func (m *Model) negDyn(e Expr, neg bool) bool {
	switch e := e.(type) {
	case *Name:
		if dynPrims[e.Ident] {
			return neg
		}
		if def, ok := m.letDef(e.Ident); ok {
			return m.negDyn(def, neg)
		}
		return false
	case *Bin:
		if e.Op == OpDiff {
			return m.negDyn(e.L, neg) || m.negDyn(e.R, !neg)
		}
		return m.negDyn(e.L, neg) || m.negDyn(e.R, neg)
	case *Post:
		return m.negDyn(e.E, neg)
	case *Diag:
		return m.negDyn(e.S, neg)
	}
	return false
}

// prunable reports whether a violation of c on a partial candidate (a
// subset of the final rf, a prefix of the final co insertion order, a
// prefix of so) persists in every completion, so the enumerator may cut
// the subtree. That holds exactly when the constraint's expression is
// monotone in the dynamic relations: a nonempty monotone relation stays
// nonempty, a cycle stays a cycle, a reflexive pair stays. Flag
// constraints never reject, and negated ones assert non-monotone facts.
func (m *Model) prunable(c *Constraint) bool {
	return !c.Flag && !c.Neg && !m.negDyn(c.Expr, false)
}

// val is an evaluated expression: exactly one of set or rel is non-nil.
type val struct {
	set *bitset.Set
	rel *Rel
}

// evaluator evaluates model expressions against one candidate skeleton.
// The static sets and relations are fixed at construction; the dynamic
// relations are installed per pass with begin, and all temporaries handed
// out during a pass return to the arena on end — constraint checks run at
// every node of the enumeration tree, so a pass must not allocate after
// warm-up.
type evaluator struct {
	m  *Model
	n  int
	ar *relArena

	sets map[string]*bitset.Set // primitive sets, plus "_" for Univ
	rels map[string]*Rel        // static relations: po, loc, ext, int, id

	rf, co, fr, so *Rel

	lets      map[string]val
	ownedRels []*Rel
	ownedSets []*bitset.Set
}

func newEvaluator(m *Model, n int, ar *relArena, sets map[string]*bitset.Set, rels map[string]*Rel) *evaluator {
	return &evaluator{
		m: m, n: n, ar: ar,
		sets: sets, rels: rels,
		lets: make(map[string]val, len(m.Lets)),
	}
}

// begin installs the candidate's dynamic relations for one evaluation
// pass. so may be nil when the model never mentions it.
func (ev *evaluator) begin(rf, co, fr, so *Rel) {
	ev.rf, ev.co, ev.fr, ev.so = rf, co, fr, so
	for k := range ev.lets {
		delete(ev.lets, k)
	}
}

// end retires every temporary handed out since begin.
func (ev *evaluator) end() {
	for _, r := range ev.ownedRels {
		ev.ar.PutRel(r)
	}
	ev.ownedRels = ev.ownedRels[:0]
	for _, s := range ev.ownedSets {
		ev.ar.PutSet(s)
	}
	ev.ownedSets = ev.ownedSets[:0]
	ev.rf, ev.co, ev.fr, ev.so = nil, nil, nil, nil
}

func (ev *evaluator) newRel() *Rel {
	r := ev.ar.Rel()
	ev.ownedRels = append(ev.ownedRels, r)
	return r
}

func (ev *evaluator) newSet() *bitset.Set {
	s := ev.ar.Set()
	ev.ownedSets = append(ev.ownedSets, s)
	return s
}

// eval evaluates a typechecked expression. Returned values are read-only
// and valid until end; operator results are arena temporaries, primitive
// and cached-let references are shared.
func (ev *evaluator) eval(e Expr) val {
	switch e := e.(type) {
	case *Name:
		return ev.evalName(e.Ident)
	case *Univ:
		return val{set: ev.sets["_"]}
	case *Bin:
		l, r := ev.eval(e.L), ev.eval(e.R)
		switch e.Op {
		case OpUnion, OpDiff, OpInter:
			if l.set != nil {
				out := ev.newSet()
				out.CopyFrom(l.set)
				switch e.Op {
				case OpUnion:
					out.UnionWith(r.set)
				case OpDiff:
					out.DifferenceWith(r.set)
				case OpInter:
					out.IntersectWith(r.set)
				}
				return val{set: out}
			}
			out := ev.newRel()
			out.CopyFrom(l.rel)
			switch e.Op {
			case OpUnion:
				out.UnionWith(r.rel)
			case OpDiff:
				out.DifferenceWith(r.rel)
			case OpInter:
				out.IntersectWith(r.rel)
			}
			return val{rel: out}
		case OpSeq:
			out := ev.newRel()
			out.SeqInto(l.rel, r.rel)
			return val{rel: out}
		case OpCross:
			out := ev.newRel()
			out.CrossInto(l.set, r.set)
			return val{rel: out}
		}
	case *Post:
		in := ev.eval(e.E)
		out := ev.newRel()
		switch e.Op {
		case OpPlus:
			out.CopyFrom(in.rel)
			out.Close()
		case OpStar:
			out.CopyFrom(in.rel)
			out.Close()
			out.AddID()
		case OpOpt:
			out.CopyFrom(in.rel)
			out.AddID()
		case OpInv:
			out.InverseInto(in.rel)
		}
		return val{rel: out}
	case *Diag:
		s := ev.eval(e.S)
		out := ev.newRel()
		out.DiagInto(s.set)
		return val{rel: out}
	}
	panic(fmt.Sprintf("axiom: unknown expression %T", e))
}

func (ev *evaluator) evalName(name string) val {
	if v, ok := ev.lets[name]; ok {
		return v
	}
	switch name {
	case "rf":
		return val{rel: ev.rf}
	case "co":
		return val{rel: ev.co}
	case "fr":
		return val{rel: ev.fr}
	case "so":
		if ev.so == nil {
			panic("axiom: so referenced outside a sync-order pass")
		}
		return val{rel: ev.so}
	}
	if s, ok := ev.sets[name]; ok {
		return val{set: s}
	}
	if r, ok := ev.rels[name]; ok {
		return val{rel: r}
	}
	def, ok := ev.m.letDef(name)
	if !ok {
		panic(fmt.Sprintf("axiom: unresolved name %q", name))
	}
	v := ev.eval(def)
	ev.lets[name] = v
	return v
}

// violated reports whether the installed candidate breaks constraint c.
func (ev *evaluator) violated(c *Constraint) bool {
	v := ev.eval(c.Expr)
	var ok bool
	switch c.Kind {
	case Acyclic:
		ok = v.rel.Acyclic()
	case Irreflexive:
		ok = v.rel.Irreflexive()
	case Empty:
		if v.rel != nil {
			ok = v.rel.Empty()
		} else {
			ok = v.set.Empty()
		}
	}
	if c.Neg {
		ok = !ok
	}
	return !ok
}
