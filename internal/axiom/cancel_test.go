package axiom

import (
	"errors"
	"testing"

	"weakorder/internal/litmus"
)

// TestOutcomesCancel: an immediate cancel aborts the candidate search
// with ErrCanceled instead of returning a partial outcome set.
func TestOutcomesCancel(t *testing.T) {
	_, _, err := Outcomes(litmus.Dekker(), MustLoad("sc"), Config{
		Cancel: func() bool { return true },
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestCheckNilCancelUnaffected: without the hook the engine still
// decides Dekker under SC.
func TestCheckNilCancelUnaffected(t *testing.T) {
	v, err := Check(litmus.Dekker(), MustLoad("sc"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Outcomes) != 3 {
		t.Fatalf("Dekker SC outcomes = %d, want 3", len(v.Outcomes))
	}
}
