package axiom

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// A candidate execution is assembled in two stages. First, each thread is
// run by itself: control flow and store values may depend on loaded
// values, so the local enumerator executes the thread symbolically — a
// read yields a symbolic value, and only when that value escapes into a
// branch condition, an arithmetic operand or a store operand does the
// enumerator fork over the address's value domain, pinning the read. The
// result is the set of possible per-thread event sequences ("runs"),
// each a straight event list with reads either pinned to a concrete
// value or left free. Second, enumerate.go combines one run per thread
// with initial-write events into a skeleton and searches rf/co choices;
// a pinned read constrains rf to value-matching writes, a free read
// accepts any same-address write.
//
// The value domains are computed by fixpoint (see computeDomains): start
// from the initial values and fold every write value produced by any run
// back into its address's domain until nothing changes. The rounds are
// bounded by the total write budget: in any consistent candidate under
// the bundled models (all of which imply acyclic(po ∪ rf)), a read value
// is justified by an acyclic chain of distinct dynamic writes, so a
// value needing a derivation chain longer than the maximum number of
// dynamic writes in one candidate can never be observed.

// event is one node of a candidate execution graph.
type event struct {
	proc   int // mem.InitProc for initial writes
	index  int // memory-op ordinal within the thread; -1 for fences
	kind   mem.Kind
	fence  bool
	addr   mem.Addr
	data   mem.Value // value written (write component)
	got    mem.Value // value read, when pinned
	pinned bool      // read value fixed by local control/data flow
}

func (e *event) isRead() bool  { return !e.fence && e.kind.ReadsMemory() }
func (e *event) isWrite() bool { return !e.fence && (e.proc == mem.InitProc || e.kind.WritesMemory()) }

// lval is a register value during symbolic local execution: either a
// concrete value or the unread result of the memory op with ordinal ord
// on address addr. Mov propagates symbolic values without pinning them.
type lval struct {
	known bool
	v     mem.Value
	ord   int
	addr  mem.Addr
}

// errLocalBudget aborts run enumeration when a thread exceeds the local
// step bound (a register-only infinite loop, mirroring ideal.Interp).
var errLocalBudget = errors.New("axiom: local step budget exceeded")

// runEnumerator enumerates the complete runs of one thread.
type runEnumerator struct {
	instrs    []program.Instr
	memBudget int // max dynamic memory ops per run (truncation bound)
	maxLocal  int
	maxRuns   int
	dom       map[mem.Addr][]mem.Value

	runs      [][]event
	truncated bool // some run hit the memory-op budget and was discarded
	overflow  bool // more than maxRuns complete runs: enumeration incomplete

	// cutWrites collects the write events of truncated run prefixes and
	// cutMaxW their largest per-run write count. Truncated runs produce
	// no candidates, but their writes must still feed the value-domain
	// fixpoint: a spin loop in one thread often exits only on a value
	// that another thread writes beyond its own spin — visible only in
	// that thread's truncated prefixes until the domain grows.
	cutWrites []event
	cutMaxW   int
}

type escape struct {
	ord  int
	addr mem.Addr
}

var errRunOverflow = errors.New("axiom: run overflow")

// enumerate explores all pinnings reachable from pins, appending complete
// runs. A run that attempts more than memBudget memory operations is
// discarded — the exact analogue of ideal.ErrTruncated under
// SkipTruncated, which keeps the candidate space aligned with the
// operational oracles' bounded enumeration.
func (re *runEnumerator) enumerate(pins map[int]mem.Value) error {
	run, esc, err := re.exec(pins)
	if err != nil {
		return err
	}
	if esc != nil {
		for _, v := range re.dom[esc.addr] {
			pins[esc.ord] = v
			if err := re.enumerate(pins); err != nil {
				return err
			}
		}
		delete(pins, esc.ord)
		return nil
	}
	if run != nil {
		if len(re.runs) >= re.maxRuns {
			re.overflow = true
			return errRunOverflow
		}
		re.runs = append(re.runs, run)
	}
	return nil
}

// noteCut records a truncated prefix's writes for the domain fixpoint.
func (re *runEnumerator) noteCut(evs []event) {
	w := 0
	for i := range evs {
		if !evs[i].fence && evs[i].kind.WritesMemory() {
			w++
			re.cutWrites = append(re.cutWrites, evs[i])
		}
	}
	re.cutMaxW = max(re.cutMaxW, w)
}

// exec runs the thread deterministically under the given read pinnings.
// It returns the completed run, or a non-nil escape when an unpinned read
// value is about to influence execution (the caller forks on it), or
// (nil, nil, nil) for a truncated run.
func (re *runEnumerator) exec(pins map[int]mem.Value) ([]event, *escape, error) {
	var regs [program.NumRegs]lval
	for i := range regs {
		regs[i] = lval{known: true}
	}
	var evs []event
	pc, ord, local := 0, 0, 0

	// need resolves a register for use; unknown values escape.
	need := func(r program.Reg) (mem.Value, *escape) {
		if !regs[r].known {
			return 0, &escape{ord: regs[r].ord, addr: regs[r].addr}
		}
		return regs[r].v, nil
	}
	operand2 := func(in program.Instr) (mem.Value, *escape) {
		if in.UseImm {
			return in.Imm, nil
		}
		return need(in.Rt)
	}

	for {
		if pc < 0 || pc >= len(re.instrs) {
			return evs, nil, nil
		}
		in := re.instrs[pc]
		if in.Op.IsMemory() {
			if ord >= re.memBudget {
				re.truncated = true
				re.noteCut(evs)
				return nil, nil, nil
			}
			ev := event{index: ord, kind: in.Op.MemKind(), addr: in.Addr}
			bindRead := func(rd program.Reg) {
				if v, ok := pins[ord]; ok {
					ev.pinned, ev.got = true, v
					regs[rd] = lval{known: true, v: v}
				} else {
					regs[rd] = lval{ord: ord, addr: in.Addr}
				}
			}
			storeVal := func() (mem.Value, *escape) {
				if in.UseImm {
					return in.Imm, nil
				}
				return need(in.Rs)
			}
			switch in.Op {
			case program.OpLoad, program.OpSyncLoad:
				bindRead(in.Rd)
			case program.OpStore, program.OpSyncStore:
				v, esc := storeVal()
				if esc != nil {
					return nil, esc, nil
				}
				ev.data = v
			case program.OpTAS:
				bindRead(in.Rd)
				ev.data = 1
			case program.OpSwap:
				v, esc := storeVal()
				if esc != nil {
					return nil, esc, nil
				}
				ev.data = v
				bindRead(in.Rd)
			default:
				panic(fmt.Sprintf("axiom: unhandled memory opcode %v", in.Op))
			}
			evs = append(evs, ev)
			ord++
			pc++
			continue
		}

		local++
		if local > re.maxLocal {
			return nil, nil, errLocalBudget
		}
		switch in.Op {
		case program.OpNop:
		case program.OpFence:
			evs = append(evs, event{index: -1, fence: true})
		case program.OpLoadImm:
			regs[in.Rd] = lval{known: true, v: in.Imm}
		case program.OpMov:
			regs[in.Rd] = regs[in.Rs]
		case program.OpAdd:
			a, esc := need(in.Rs)
			if esc != nil {
				return nil, esc, nil
			}
			b, esc := need(in.Rt)
			if esc != nil {
				return nil, esc, nil
			}
			regs[in.Rd] = lval{known: true, v: a + b}
		case program.OpAddImm:
			a, esc := need(in.Rs)
			if esc != nil {
				return nil, esc, nil
			}
			regs[in.Rd] = lval{known: true, v: a + in.Imm}
		case program.OpSub:
			a, esc := need(in.Rs)
			if esc != nil {
				return nil, esc, nil
			}
			b, esc := need(in.Rt)
			if esc != nil {
				return nil, esc, nil
			}
			regs[in.Rd] = lval{known: true, v: a - b}
		case program.OpBeq, program.OpBne, program.OpBlt, program.OpBge:
			a, esc := need(in.Rs)
			if esc != nil {
				return nil, esc, nil
			}
			b, esc := operand2(in)
			if esc != nil {
				return nil, esc, nil
			}
			taken := false
			switch in.Op {
			case program.OpBeq:
				taken = a == b
			case program.OpBne:
				taken = a != b
			case program.OpBlt:
				taken = a < b
			case program.OpBge:
				taken = a >= b
			}
			if taken {
				pc = in.Target
				continue
			}
		case program.OpJmp:
			pc = in.Target
			continue
		case program.OpHalt:
			return evs, nil, nil
		default:
			panic(fmt.Sprintf("axiom: unhandled local opcode %v", in.Op))
		}
		pc++
	}
}

// threadRuns holds one thread's enumerated complete runs plus the
// write events of truncated prefixes (domain-fixpoint fuel only).
type threadRuns struct {
	runs      [][]event
	truncated bool
	cutWrites []event
	cutMaxW   int
}

// enumerateRuns runs the local enumerator for every thread against the
// given value domains. overflow reports that some thread exceeded the
// per-thread run cap, making the enumeration incomplete.
func enumerateRuns(p *program.Program, dom map[mem.Addr][]mem.Value, cfg *Config) (runs []threadRuns, overflow bool, err error) {
	runs = make([]threadRuns, len(p.Threads))
	for t := range p.Threads {
		re := &runEnumerator{
			instrs:    p.Threads[t].Instrs,
			memBudget: cfg.MaxMemOpsPerThread,
			maxLocal:  cfg.MaxLocalSteps,
			maxRuns:   cfg.MaxRunsPerThread,
			dom:       dom,
		}
		err := re.enumerate(make(map[int]mem.Value))
		if err != nil && !errors.Is(err, errRunOverflow) {
			return nil, false, fmt.Errorf("thread %d: %w", t, err)
		}
		runs[t] = threadRuns{
			runs:      re.runs,
			truncated: re.truncated,
			cutWrites: re.cutWrites,
			cutMaxW:   re.cutMaxW,
		}
		overflow = overflow || re.overflow
	}
	return runs, overflow, nil
}

// initValue returns the initial value of addr (zero when not in Init).
func initValue(p *program.Program, a mem.Addr) mem.Value {
	if p.Init != nil {
		return p.Init[a]
	}
	return 0
}

// computeDomains iterates per-address value domains to a fixpoint: start
// from initial values, enumerate runs, fold every produced write value
// back in, repeat. Rounds are capped by the largest possible number of
// dynamic writes in one candidate (Σ over threads of the per-run maximum
// write count): a readable value must be justified by an acyclic chain of
// distinct dynamic writes, so deeper derivations cannot occur. complete
// is false when a cap (values per address, runs per thread) was hit, in
// which case the candidate space may be under-approximated.
func computeDomains(p *program.Program, cfg *Config) (dom map[mem.Addr][]mem.Value, complete bool, err error) {
	addrs := p.Addresses()
	dom = make(map[mem.Addr][]mem.Value, len(addrs))
	for _, a := range addrs {
		dom[a] = []mem.Value{initValue(p, a)}
	}
	complete = true
	for round := 1; ; round++ {
		runs, overflow, err := enumerateRuns(p, dom, cfg)
		if err != nil {
			return nil, false, err
		}
		if overflow {
			return dom, false, nil
		}
		writeCap := 0
		changed := false
		for t := range runs {
			maxW := runs[t].cutMaxW
			for _, run := range runs[t].runs {
				w := 0
				for i := range run {
					ev := &run[i]
					if !ev.fence && ev.kind.WritesMemory() {
						w++
						if addValue(dom, ev.addr, ev.data) {
							changed = true
						}
					}
				}
				maxW = max(maxW, w)
			}
			// Truncated prefixes never become candidates, but their
			// writes are genuinely executable and may be exactly what
			// another thread's spin loop is waiting to observe.
			for i := range runs[t].cutWrites {
				ev := &runs[t].cutWrites[i]
				if addValue(dom, ev.addr, ev.data) {
					changed = true
				}
			}
			writeCap += maxW
		}
		for _, a := range addrs {
			if len(dom[a]) > cfg.MaxValuesPerAddr {
				return dom, false, nil
			}
		}
		if !changed || round >= writeCap {
			return dom, complete, nil
		}
	}
}

// addValue inserts v into addr's sorted domain, reporting change.
func addValue(dom map[mem.Addr][]mem.Value, a mem.Addr, v mem.Value) bool {
	d := dom[a]
	i := sort.Search(len(d), func(i int) bool { return d[i] >= v })
	if i < len(d) && d[i] == v {
		return false
	}
	dom[a] = slices.Insert(d, i, v)
	return true
}

// skeleton is one run combination plus initial writes: the fixed part of
// a candidate execution, over which rf and co are enumerated.
type skeleton struct {
	events []event
	// iw maps each address to its initial-write event id.
	iw map[mem.Addr]int
	// reads lists read-component event ids in enumeration order.
	reads []int
	// writesByAddr lists write-component event ids per address, the
	// initial write first, then in thread/po order.
	writesByAddr map[mem.Addr][]int
	// firstReal is the event id of the first non-IW event.
	firstReal int
}

// buildSkeleton assembles the event list for one choice of per-thread
// runs. Initial writes come first (co-minimal, po-unrelated), then each
// thread's events in program order.
func buildSkeleton(p *program.Program, combo [][]event) *skeleton {
	addrs := p.Addresses()
	sk := &skeleton{
		iw:           make(map[mem.Addr]int, len(addrs)),
		writesByAddr: make(map[mem.Addr][]int, len(addrs)),
	}
	for _, a := range addrs {
		id := len(sk.events)
		sk.iw[a] = id
		sk.writesByAddr[a] = append(sk.writesByAddr[a], id)
		sk.events = append(sk.events, event{
			proc:  mem.InitProc,
			index: len(sk.iw) - 1,
			kind:  mem.Write,
			addr:  a,
			data:  initValue(p, a),
		})
	}
	sk.firstReal = len(sk.events)
	for t, run := range combo {
		for i := range run {
			ev := run[i]
			ev.proc = t
			id := len(sk.events)
			sk.events = append(sk.events, ev)
			if ev.isRead() {
				sk.reads = append(sk.reads, id)
			}
			if !ev.fence && ev.kind.WritesMemory() {
				sk.writesByAddr[ev.addr] = append(sk.writesByAddr[ev.addr], id)
			}
		}
	}
	return sk
}
