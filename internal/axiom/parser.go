package axiom

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a cat-style model source into a Model. The language is the
// herd7 cat fragment the bundled models need:
//
//	model      := name? (let | constraint)*
//	let        := "let" ident "=" expr
//	constraint := "flag"? "~"? kind expr ("as" ident)?
//	kind       := "acyclic" | "irreflexive" | "empty"
//	expr       := expr "|" expr          (union, loosest)
//	            | expr "\" expr          (difference)
//	            | expr "&" expr          (intersection)
//	            | expr ";" expr          (composition)
//	            | expr "*" expr          (cross product, tightest binary)
//	            | expr "+"               (transitive closure)
//	            | expr "*"               (reflexive transitive closure)
//	            | expr "?"               (reflexive closure)
//	            | expr "^-1"             (inverse)
//	            | "[" expr "]"           (identity on a set)
//	            | "_"                    (universal event set)
//	            | ident | "(" expr ")"
//
// `(* ... *)` comments nest. A bare leading identifier (herd's model
// title) names the model. The only lexical subtlety is `*`, which is
// postfix closure when the next token cannot start an expression and the
// cross product otherwise; binary operators associate left. Identifiers
// may contain `-` (po-loc), matching herd usage.
func Parse(name, src string) (*Model, error) {
	p := &parser{lex: newLexer(src)}
	m, err := p.parseModel(name)
	if err != nil {
		return nil, fmt.Errorf("axiom: parsing model %s: %w", name, err)
	}
	return m, nil
}

// token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokLet
	tokAs
	tokFlag
	tokKind_ // acyclic | irreflexive | empty (value in tok.text)
	tokEq
	tokTilde
	tokPipe
	tokBackslash
	tokAmp
	tokSemi
	tokStar
	tokPlus
	tokQuestion
	tokInv // ^-1
	tokLParen
	tokRParen
	tokLBrack
	tokRBrack
	tokUnderscore
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			if err := l.skipComment(); err != nil {
				return token{}, err
			}
		default:
			goto lex
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

lex:
	start, line := l.pos, l.line
	c := l.src[l.pos]
	single := func(k tokKind) (token, error) {
		l.pos++
		return token{kind: k, text: l.src[start:l.pos], line: line}, nil
	}
	switch c {
	case '=':
		return single(tokEq)
	case '~':
		return single(tokTilde)
	case '|':
		return single(tokPipe)
	case '\\':
		return single(tokBackslash)
	case '&':
		return single(tokAmp)
	case ';':
		return single(tokSemi)
	case '*':
		return single(tokStar)
	case '+':
		return single(tokPlus)
	case '?':
		return single(tokQuestion)
	case '(':
		return single(tokLParen)
	case ')':
		return single(tokRParen)
	case '[':
		return single(tokLBrack)
	case ']':
		return single(tokRBrack)
	case '^':
		if strings.HasPrefix(l.src[l.pos:], "^-1") {
			l.pos += 3
			return token{kind: tokInv, text: "^-1", line: line}, nil
		}
		return token{}, fmt.Errorf("line %d: unexpected %q (only ^-1 is supported)", line, "^")
	}
	if c == '_' && (l.pos+1 >= len(l.src) || !identByte(l.src[l.pos+1])) {
		return single(tokUnderscore)
	}
	if identStart(c) {
		for l.pos < len(l.src) && identByte(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		switch text {
		case "let":
			return token{kind: tokLet, text: text, line: line}, nil
		case "as":
			return token{kind: tokAs, text: text, line: line}, nil
		case "flag":
			return token{kind: tokFlag, text: text, line: line}, nil
		case "acyclic", "irreflexive", "empty":
			return token{kind: tokKind_, text: text, line: line}, nil
		}
		return token{kind: tokIdent, text: text, line: line}, nil
	}
	return token{}, fmt.Errorf("line %d: unexpected character %q", line, string(rune(c)))
}

func identStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

// identByte allows letters, digits, '-', '_' and '.' inside identifiers
// (po-loc, rf.ext-style names).
func identByte(c byte) bool {
	return c == '-' || c == '_' || c == '.' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) skipComment() error {
	depth := 0
	for l.pos < len(l.src) {
		switch {
		case strings.HasPrefix(l.src[l.pos:], "(*"):
			depth++
			l.pos += 2
		case strings.HasPrefix(l.src[l.pos:], "*)"):
			depth--
			l.pos += 2
			if depth == 0 {
				return nil
			}
		default:
			if l.src[l.pos] == '\n' {
				l.line++
			}
			l.pos++
		}
	}
	return fmt.Errorf("line %d: unterminated comment", l.line)
}

type parser struct {
	lex  *lexer
	tok  token // current token
	peek *token
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok, p.peek = *p.peek, nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (token, error) {
	if p.peek == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *parser) parseModel(name string) (*Model, error) {
	m := &Model{Name: name}
	if err := p.advance(); err != nil {
		return nil, err
	}
	// Optional herd-style title line: a bare identifier before the first
	// statement names the model.
	if p.tok.kind == tokIdent {
		m.Name = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	for p.tok.kind != tokEOF {
		switch p.tok.kind {
		case tokLet:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokIdent {
				return nil, fmt.Errorf("line %d: let needs a name, got %s", p.tok.line, p.tok)
			}
			lname := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokEq {
				return nil, fmt.Errorf("line %d: let %s needs '=', got %s", p.tok.line, lname, p.tok)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			m.Lets = append(m.Lets, Let{Name: lname, Expr: e})
		case tokFlag, tokTilde, tokKind_:
			c, err := p.parseConstraint()
			if err != nil {
				return nil, err
			}
			m.Constraints = append(m.Constraints, c)
		default:
			return nil, fmt.Errorf("line %d: expected let or a constraint, got %s", p.tok.line, p.tok)
		}
	}
	if len(m.Constraints) == 0 {
		return nil, fmt.Errorf("model declares no constraints")
	}
	if err := m.resolve(); err != nil {
		return nil, err
	}
	if err := m.typecheck(); err != nil {
		return nil, err
	}
	return m, nil
}

func (p *parser) parseConstraint() (Constraint, error) {
	var c Constraint
	if p.tok.kind == tokFlag {
		c.Flag = true
		if err := p.advance(); err != nil {
			return c, err
		}
	}
	if p.tok.kind == tokTilde {
		c.Neg = true
		if err := p.advance(); err != nil {
			return c, err
		}
	}
	if p.tok.kind != tokKind_ {
		return c, fmt.Errorf("line %d: expected acyclic, irreflexive or empty, got %s", p.tok.line, p.tok)
	}
	switch p.tok.text {
	case "acyclic":
		c.Kind = Acyclic
	case "irreflexive":
		c.Kind = Irreflexive
	case "empty":
		c.Kind = Empty
	}
	if err := p.advance(); err != nil {
		return c, err
	}
	e, err := p.parseExpr(0)
	if err != nil {
		return c, err
	}
	c.Expr = e
	if p.tok.kind == tokAs {
		if err := p.advance(); err != nil {
			return c, err
		}
		if p.tok.kind != tokIdent {
			return c, fmt.Errorf("line %d: 'as' needs a name, got %s", p.tok.line, p.tok)
		}
		c.As = p.tok.text
		if err := p.advance(); err != nil {
			return c, err
		}
	}
	return c, nil
}

// Binary operator precedence, loosest first.
var binPrec = map[tokKind]int{
	tokPipe:      1,
	tokBackslash: 2,
	tokAmp:       3,
	tokSemi:      4,
	tokStar:      5, // cross product; see starIsCross
}

func (p *parser) parseExpr(minPrec int) (Expr, error) {
	left, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for {
		prec, isBin := binPrec[p.tok.kind]
		if !isBin || prec < minPrec {
			return left, nil
		}
		var op BinOp
		switch p.tok.kind {
		case tokPipe:
			op = OpUnion
		case tokBackslash:
			op = OpDiff
		case tokAmp:
			op = OpInter
		case tokSemi:
			op = OpSeq
		case tokStar:
			op = OpCross
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &Bin{Op: op, L: left, R: right}
	}
}

// exprStart reports whether a token can begin an expression — the
// disambiguator between postfix closure `e*` and cross product `a * b`.
func exprStart(t token) bool {
	switch t.kind {
	case tokIdent, tokLParen, tokLBrack, tokUnderscore:
		return true
	}
	return false
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.tok.kind {
		case tokPlus:
			e = &Post{Op: OpPlus, E: e}
		case tokQuestion:
			e = &Post{Op: OpOpt, E: e}
		case tokInv:
			e = &Post{Op: OpInv, E: e}
		case tokStar:
			nxt, err := p.peekTok()
			if err != nil {
				return nil, err
			}
			if exprStart(nxt) {
				return e, nil // binary cross product; leave for parseExpr
			}
			e = &Post{Op: OpStar, E: e}
		default:
			return e, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	switch p.tok.kind {
	case tokIdent:
		e := &Name{Ident: p.tok.text}
		return e, p.advance()
	case tokUnderscore:
		return &Univ{}, p.advance()
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("line %d: expected ')', got %s", p.tok.line, p.tok)
		}
		return e, p.advance()
	case tokLBrack:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRBrack {
			return nil, fmt.Errorf("line %d: expected ']', got %s", p.tok.line, p.tok)
		}
		return &Diag{S: e}, p.advance()
	default:
		return nil, fmt.Errorf("line %d: expected an expression, got %s", p.tok.line, p.tok)
	}
}

// resolve checks that every referenced name is a primitive or bound by an
// earlier let, rejects duplicate bindings, and records whether the model
// uses the enumerated synchronization order `so`.
func (m *Model) resolve() error {
	bound := make(map[string]bool)
	var check func(e Expr) error
	check = func(e Expr) error {
		switch e := e.(type) {
		case *Name:
			if e.Ident == "so" {
				m.usesSO = true
			}
			if !bound[e.Ident] && !isPrimitive(e.Ident) {
				return fmt.Errorf("model %s: unknown name %q", m.Name, e.Ident)
			}
		case *Bin:
			if err := check(e.L); err != nil {
				return err
			}
			return check(e.R)
		case *Post:
			return check(e.E)
		case *Diag:
			return check(e.S)
		}
		return nil
	}
	for _, l := range m.Lets {
		if bound[l.Name] {
			return fmt.Errorf("model %s: duplicate let %q", m.Name, l.Name)
		}
		if isPrimitive(l.Name) {
			return fmt.Errorf("model %s: let %q shadows a primitive", m.Name, l.Name)
		}
		if err := check(l.Expr); err != nil {
			return err
		}
		bound[l.Name] = true
	}
	for i := range m.Constraints {
		if err := check(m.Constraints[i].Expr); err != nil {
			return err
		}
	}
	return nil
}
