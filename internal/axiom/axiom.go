// Package axiom is a declarative, cat-style axiomatic memory-model
// engine. Where the operational oracles (internal/scmatch, internal/drf)
// hard-code one semantics each, axiom builds every candidate execution
// graph of a program — events with program order, plus all well-formed
// reads-from and coherence choices — and keeps those satisfying the
// relational constraints of a model written in a herd7-like language:
//
//	SC
//	let com = rf | co | fr
//	acyclic po | com as sc
//
// The bundled models (see Load) cover sequential consistency, TSO,
// release–acquire, and the paper's DRF0 discipline with
// hb = (po ∪ so)+ and race detection as a flag constraint; the engine is
// differentially checked against the operational oracles by
// internal/check.
package axiom

import (
	"time"

	"weakorder/internal/ideal"
	"weakorder/internal/mem"
	"weakorder/internal/metrics"
	"weakorder/internal/program"
	"weakorder/internal/stats"
)

// Config bounds the candidate-execution search.
type Config struct {
	// MaxMemOpsPerThread truncates local runs that attempt more dynamic
	// memory operations, exactly like ideal.Config.MaxMemOpsPerThread
	// with skipped truncated paths; matching budgets on both sides keeps
	// the axiomatic and operational candidate spaces identical.
	// Zero means DefaultMaxMemOps.
	MaxMemOpsPerThread int
	// MaxLocalSteps bounds register-only instructions between memory
	// operations (a local infinite loop is an error).
	// Zero means ideal.DefaultMaxLocalSteps.
	MaxLocalSteps int
	// MaxRunsPerThread caps the complete local runs enumerated per
	// thread; exceeding it makes the result incomplete.
	// Zero means DefaultMaxRunsPerThread.
	MaxRunsPerThread int
	// MaxValuesPerAddr caps each address's value domain; exceeding it
	// makes the result incomplete. Zero means DefaultMaxValuesPerAddr.
	MaxValuesPerAddr int
	// MaxCandidates caps complete rf/co candidates examined.
	// Zero means DefaultMaxCandidates.
	MaxCandidates int
	// MaxSteps caps search-tree nodes across rf, co and so enumeration.
	// Zero means DefaultMaxSteps.
	MaxSteps int
	// Cancel, when non-nil, is polled periodically (every few hundred
	// search-tree nodes) during candidate enumeration; returning true
	// aborts the search with ErrCanceled. Cancellation is cooperative —
	// no goroutines — so an abandoned search leaks nothing. It is how
	// callers impose wall-clock deadlines on a check.
	Cancel func() bool
	// StopWhenFlagged stops a Check as soon as every flag constraint has
	// fired at least once (Outcomes are then partial) — the analogue of
	// drf.Check's stop-at-first-race default.
	StopWhenFlagged bool
	// Metrics, when non-nil, receives engine counters and a per-model
	// timing histogram.
	Metrics *metrics.Registry
}

// Defaults for Config fields.
const (
	DefaultMaxMemOps        = 8
	DefaultMaxRunsPerThread = 512
	DefaultMaxValuesPerAddr = 64
	DefaultMaxCandidates    = 1 << 20
	DefaultMaxSteps         = 4 << 20
)

func (c Config) withDefaults() Config {
	if c.MaxMemOpsPerThread <= 0 {
		c.MaxMemOpsPerThread = DefaultMaxMemOps
	}
	if c.MaxLocalSteps <= 0 {
		c.MaxLocalSteps = ideal.DefaultMaxLocalSteps
	}
	if c.MaxRunsPerThread <= 0 {
		c.MaxRunsPerThread = DefaultMaxRunsPerThread
	}
	if c.MaxValuesPerAddr <= 0 {
		c.MaxValuesPerAddr = DefaultMaxValuesPerAddr
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = DefaultMaxCandidates
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = DefaultMaxSteps
	}
	return c
}

// timingBounds buckets per-model check latencies (microseconds).
var timingBounds = stats.ExpBounds(1, 2, 24)

// Outcomes returns the observable results of every consistent candidate
// execution of p under model m, keyed by mem.Result.Key() — the
// axiomatic analogue of scmatch.Outcomes. Flag constraints are not
// evaluated; use Check for those.
func Outcomes(p *program.Program, m *Model, cfg Config) (map[string]mem.Result, Stats, error) {
	v, err := run(p, m, cfg, false)
	if err != nil {
		return nil, Stats{}, err
	}
	return v.Outcomes, v.Stats, nil
}

// Check evaluates model m over program p: the consistent outcome set
// plus, per flag constraint, how many consistent candidates it marked
// (under the bundled drf0 model, Flags["race"] > 0 means some
// SC-consistent execution has a data race).
func Check(p *program.Program, m *Model, cfg Config) (*Verdict, error) {
	return run(p, m, cfg, true)
}

func run(p *program.Program, m *Model, cfg Config, wantFlags bool) (*Verdict, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := newSearcher(p, m, &cfg, wantFlags)
	start := time.Now()
	err := s.run()
	if reg := cfg.Metrics; reg != nil {
		st := &s.verdict.Stats
		reg.Counter("axiom.runs").Add(uint64(st.Runs))
		reg.Counter("axiom.skeletons").Add(uint64(st.Skeletons))
		reg.Counter("axiom.candidates").Add(uint64(st.Candidates))
		reg.Counter("axiom.consistent").Add(uint64(st.Consistent))
		reg.Counter("axiom.pruned").Add(uint64(st.Pruned))
		reg.Counter("axiom.sync_orders").Add(uint64(st.SyncOrders))
		reg.Counter("axiom.steps").Add(uint64(st.Steps))
		if !st.Complete {
			reg.Counter("axiom.incomplete").Inc()
		}
		reg.Histogram("axiom.check.micros."+m.Name, timingBounds).
			Observe(uint64(time.Since(start).Microseconds()))
	}
	if err != nil {
		return nil, err
	}
	return &s.verdict, nil
}
