// Package mem defines the vocabulary of shared-memory operations used
// throughout the repository: addresses, values, operation kinds, dynamic
// operations, executions, and results.
//
// The definitions follow Adve & Hill, "Weak Ordering - A New Definition"
// (ISCA 1990). In particular:
//
//   - An operation is a data read, a data write, or a synchronization
//     operation. Synchronization operations are hardware recognizable and
//     access exactly one memory location (a DRF0 requirement). They come in
//     read-only (Test), write-only (Unset/Set) and read-write (TestAndSet)
//     flavors; the distinction matters for the Section 6 refinement.
//   - Two operations conflict if they access the same location and are not
//     both reads (Definition 3).
//   - The result of an execution is the union of the values returned by all
//     reads plus the final state of memory (Section 1).
package mem

import (
	"fmt"
	"sort"
	"strings"
)

// Addr is a word-granular memory address. The simulator maps addresses to
// cache lines and memory modules; the formal tools treat them as opaque
// location names.
type Addr uint32

// Value is the contents of one memory word.
type Value int64

// Kind classifies a dynamic memory operation.
type Kind uint8

// Operation kinds. Data operations order only through intra-processor
// dependencies; synchronization operations additionally participate in the
// synchronization order used by happens-before.
const (
	// Read is an ordinary data read.
	Read Kind = iota
	// Write is an ordinary data write.
	Write
	// SyncRead is a read-only synchronization operation (e.g. the Test of
	// Test&TestAndSet).
	SyncRead
	// SyncWrite is a write-only synchronization operation (e.g. Unset).
	SyncWrite
	// SyncRMW is a read-write synchronization operation (e.g. TestAndSet).
	// Its read and write components execute atomically with respect to
	// other synchronization operations on the same location.
	SyncRMW
)

// String returns a short human-readable name: R, W, SR, SW, RMW.
func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	case SyncRead:
		return "SR"
	case SyncWrite:
		return "SW"
	case SyncRMW:
		return "RMW"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsSync reports whether k is a synchronization operation.
func (k Kind) IsSync() bool { return k == SyncRead || k == SyncWrite || k == SyncRMW }

// ReadsMemory reports whether an operation of kind k returns a value from
// memory (has a read component).
func (k Kind) ReadsMemory() bool { return k == Read || k == SyncRead || k == SyncRMW }

// WritesMemory reports whether an operation of kind k deposits a value into
// memory (has a write component).
func (k Kind) WritesMemory() bool { return k == Write || k == SyncWrite || k == SyncRMW }

// InitProc is the pseudo-processor id used for the hypothetical
// initializing writes that the paper adds before an execution, and FinalProc
// for the hypothetical final reads added after it (Section 4). Augmenting
// executions with these operations lets happens-before order every access
// against the initial and final state of memory.
const (
	InitProc  = -1
	FinalProc = -2
)

// Op is one dynamic memory operation in an execution.
type Op struct {
	// Proc is the issuing processor (InitProc/FinalProc for the
	// augmentation operations).
	Proc int
	// Index is the operation's position in its processor's program order,
	// counting only memory operations; together (Proc, Index) identify the
	// operation uniquely within an execution.
	Index int
	// Kind classifies the operation.
	Kind Kind
	// Addr is the single location accessed.
	Addr Addr
	// Data is the value written, for operations with a write component.
	Data Value
	// Got is the value returned, for operations with a read component.
	Got Value
	// Label optionally carries a source-level name for diagnostics.
	Label string
}

// HasReadComponent reports whether the operation returns a value.
func (o Op) HasReadComponent() bool { return o.Kind.ReadsMemory() }

// HasWriteComponent reports whether the operation writes memory.
func (o Op) HasWriteComponent() bool { return o.Kind.WritesMemory() }

// IsSync reports whether the operation is a synchronization operation.
func (o Op) IsSync() bool { return o.Kind.IsSync() }

// ID returns the (processor, index) identity of the operation.
func (o Op) ID() OpID { return OpID{Proc: o.Proc, Index: o.Index} }

// String formats the operation like "P1.3:W[x=4]=7" (processor 1, fourth
// operation, write of 7 to address 4) with the label substituted for the
// raw address when present.
func (o Op) String() string {
	loc := fmt.Sprintf("%d", o.Addr)
	if o.Label != "" {
		loc = o.Label
	}
	var b strings.Builder
	fmt.Fprintf(&b, "P%d.%d:%s[%s]", o.Proc, o.Index, o.Kind, loc)
	switch {
	case o.Kind == Read || o.Kind == SyncRead:
		fmt.Fprintf(&b, "->%d", o.Got)
	case o.Kind == Write || o.Kind == SyncWrite:
		fmt.Fprintf(&b, "=%d", o.Data)
	case o.Kind == SyncRMW:
		fmt.Fprintf(&b, "->%d,=%d", o.Got, o.Data)
	}
	return b.String()
}

// OpID identifies a dynamic operation within an execution.
type OpID struct {
	Proc  int
	Index int
}

// String formats the id like "P1.3".
func (id OpID) String() string { return fmt.Sprintf("P%d.%d", id.Proc, id.Index) }

// Less orders ids by processor then index.
func (id OpID) Less(other OpID) bool {
	if id.Proc != other.Proc {
		return id.Proc < other.Proc
	}
	return id.Index < other.Index
}

// Conflict reports whether a and b access the same location and are not
// both reads (Definition 3). Operations with a write component conflict
// with every same-location operation; two pure reads never conflict.
func Conflict(a, b Op) bool {
	if a.Addr != b.Addr {
		return false
	}
	return a.HasWriteComponent() || b.HasWriteComponent()
}

// Execution is a completed run of a program: the dynamic memory operations
// in a global completion order, plus the final memory state. For executions
// on the idealized architecture the order of Ops is the atomic interleaving
// itself; for simulator executions it is the commit order.
type Execution struct {
	// Ops lists every dynamic memory operation in completion order.
	Ops []Op
	// Final maps each touched address to its final value.
	Final map[Addr]Value
	// Procs is the number of real processors that participated.
	Procs int
}

// Clone returns a deep copy of the execution.
func (e *Execution) Clone() *Execution {
	out := &Execution{
		Ops:   make([]Op, len(e.Ops)),
		Final: make(map[Addr]Value, len(e.Final)),
		Procs: e.Procs,
	}
	copy(out.Ops, e.Ops)
	for a, v := range e.Final {
		out.Final[a] = v
	}
	return out
}

// ByProc groups the execution's operations by issuing processor, each group
// in program (index) order. Augmentation pseudo-processors are included
// under their negative ids.
func (e *Execution) ByProc() map[int][]Op {
	out := make(map[int][]Op)
	for _, op := range e.Ops {
		out[op.Proc] = append(out[op.Proc], op)
	}
	for p := range out {
		ops := out[p]
		sort.Slice(ops, func(i, j int) bool { return ops[i].Index < ops[j].Index })
	}
	return out
}

// String renders the execution one operation per line in completion order.
func (e *Execution) String() string {
	var b strings.Builder
	for i, op := range e.Ops {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(op.String())
	}
	return b.String()
}

// ReadObservation records the value returned by one dynamic read (or the
// read component of a synchronization operation).
type ReadObservation struct {
	ID    OpID
	Addr  Addr
	Value Value
}

// Result is the observable outcome of an execution per the paper's
// interpretation of Lamport's definition: the union of the values returned
// by all read operations plus the final state of memory.
type Result struct {
	// Reads holds one observation per dynamic operation with a read
	// component, keyed by (processor, index).
	Reads map[OpID]ReadObservation
	// Final is the final memory state restricted to touched addresses.
	Final map[Addr]Value
}

// ResultOf extracts the Result of an execution.
func ResultOf(e *Execution) Result {
	r := Result{
		Reads: make(map[OpID]ReadObservation),
		Final: make(map[Addr]Value, len(e.Final)),
	}
	for _, op := range e.Ops {
		if op.Proc < 0 {
			continue // augmentation operations are not observable
		}
		if op.HasReadComponent() {
			r.Reads[op.ID()] = ReadObservation{ID: op.ID(), Addr: op.Addr, Value: op.Got}
		}
	}
	for a, v := range e.Final {
		r.Final[a] = v
	}
	return r
}

// Equal reports whether two results are indistinguishable: identical read
// observations and identical final state over the union of touched
// addresses (missing entries default to zero).
func (r Result) Equal(other Result) bool {
	if len(r.Reads) != len(other.Reads) {
		return false
	}
	for id, obs := range r.Reads {
		o, ok := other.Reads[id]
		if !ok || o.Addr != obs.Addr || o.Value != obs.Value {
			return false
		}
	}
	for a, v := range r.Final {
		if other.finalAt(a) != v {
			return false
		}
	}
	for a, v := range other.Final {
		if r.finalAt(a) != v {
			return false
		}
	}
	return true
}

func (r Result) finalAt(a Addr) Value {
	return r.Final[a] // zero when absent
}

// Key returns a canonical string fingerprint of the result, usable as a
// map key for grouping outcomes across runs. Zero-valued final entries
// are omitted: Equal already treats an absent address as zero, and
// producers differ in whether they materialize untouched addresses, so
// the fingerprint must not distinguish the two spellings.
func (r Result) Key() string {
	ids := make([]OpID, 0, len(r.Reads))
	for id := range r.Reads {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	var b strings.Builder
	for _, id := range ids {
		obs := r.Reads[id]
		fmt.Fprintf(&b, "%s[%d]=%d;", id, obs.Addr, obs.Value)
	}
	b.WriteByte('|')
	addrs := make([]Addr, 0, len(r.Final))
	for a := range r.Final {
		if r.Final[a] != 0 {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		fmt.Fprintf(&b, "%d=%d;", a, r.Final[a])
	}
	return b.String()
}

// String renders the result compactly.
func (r Result) String() string { return r.Key() }
