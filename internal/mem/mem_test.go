package mem

import (
	"testing"
	"testing/quick"
)

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		kind   Kind
		sync   bool
		reads  bool
		writes bool
		str    string
	}{
		{Read, false, true, false, "R"},
		{Write, false, false, true, "W"},
		{SyncRead, true, true, false, "SR"},
		{SyncWrite, true, false, true, "SW"},
		{SyncRMW, true, true, true, "RMW"},
	}
	for _, c := range cases {
		if got := c.kind.IsSync(); got != c.sync {
			t.Errorf("%v.IsSync() = %v, want %v", c.kind, got, c.sync)
		}
		if got := c.kind.ReadsMemory(); got != c.reads {
			t.Errorf("%v.ReadsMemory() = %v, want %v", c.kind, got, c.reads)
		}
		if got := c.kind.WritesMemory(); got != c.writes {
			t.Errorf("%v.WritesMemory() = %v, want %v", c.kind, got, c.writes)
		}
		if got := c.kind.String(); got != c.str {
			t.Errorf("%v.String() = %q, want %q", c.kind, got, c.str)
		}
	}
}

func TestConflict(t *testing.T) {
	r0 := Op{Proc: 0, Kind: Read, Addr: 1}
	r1 := Op{Proc: 1, Kind: Read, Addr: 1}
	w1 := Op{Proc: 1, Kind: Write, Addr: 1}
	w2 := Op{Proc: 1, Kind: Write, Addr: 2}
	sr := Op{Proc: 2, Kind: SyncRead, Addr: 1}
	rmw := Op{Proc: 2, Kind: SyncRMW, Addr: 1}

	if Conflict(r0, r1) {
		t.Error("two reads of the same location must not conflict")
	}
	if !Conflict(r0, w1) || !Conflict(w1, r0) {
		t.Error("read/write of the same location must conflict (both directions)")
	}
	if Conflict(w1, w2) {
		t.Error("accesses to different locations must not conflict")
	}
	if Conflict(r0, sr) {
		t.Error("data read and sync read must not conflict")
	}
	if !Conflict(r0, rmw) {
		t.Error("data read and RMW must conflict (RMW has a write component)")
	}
	if !Conflict(sr, rmw) {
		t.Error("sync read and RMW must conflict")
	}
}

func TestConflictSymmetric(t *testing.T) {
	f := func(k1, k2 uint8, a1, a2 uint8) bool {
		o1 := Op{Kind: Kind(k1 % 5), Addr: Addr(a1 % 4)}
		o2 := Op{Kind: Kind(k2 % 5), Addr: Addr(a2 % 4)}
		return Conflict(o1, o2) == Conflict(o2, o1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Op{Proc: 1, Index: 3, Kind: Write, Addr: 4, Data: 7}, "P1.3:W[4]=7"},
		{Op{Proc: 0, Index: 0, Kind: Read, Addr: 2, Got: 5, Label: "x"}, "P0.0:R[x]->5"},
		{Op{Proc: 2, Index: 1, Kind: SyncRMW, Addr: 9, Got: 0, Data: 1}, "P2.1:RMW[9]->0,=1"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("op.String() = %q, want %q", got, c.want)
		}
	}
}

func TestOpIDLess(t *testing.T) {
	a := OpID{Proc: 0, Index: 5}
	b := OpID{Proc: 1, Index: 0}
	c := OpID{Proc: 1, Index: 2}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Error("OpID.Less must order by proc then index")
	}
	if a.Less(a) {
		t.Error("OpID.Less must be irreflexive")
	}
}

func TestExecutionByProc(t *testing.T) {
	e := &Execution{
		Procs: 2,
		Ops: []Op{
			{Proc: 1, Index: 0, Kind: Write, Addr: 0},
			{Proc: 0, Index: 1, Kind: Read, Addr: 0},
			{Proc: 0, Index: 0, Kind: Write, Addr: 1},
		},
	}
	byp := e.ByProc()
	if len(byp[0]) != 2 || len(byp[1]) != 1 {
		t.Fatalf("ByProc grouped %d/%d ops, want 2/1", len(byp[0]), len(byp[1]))
	}
	if byp[0][0].Index != 0 || byp[0][1].Index != 1 {
		t.Error("ByProc must sort each processor's ops by Index")
	}
}

func TestExecutionClone(t *testing.T) {
	e := &Execution{
		Procs: 1,
		Ops:   []Op{{Proc: 0, Kind: Write, Addr: 1, Data: 2}},
		Final: map[Addr]Value{1: 2},
	}
	c := e.Clone()
	c.Ops[0].Data = 99
	c.Final[1] = 99
	if e.Ops[0].Data != 2 || e.Final[1] != 2 {
		t.Error("Clone must deep-copy ops and final state")
	}
}

func TestResultEqualAndKey(t *testing.T) {
	e := &Execution{
		Procs: 2,
		Ops: []Op{
			{Proc: 0, Index: 0, Kind: Write, Addr: 0, Data: 1},
			{Proc: 1, Index: 0, Kind: Read, Addr: 0, Got: 1},
		},
		Final: map[Addr]Value{0: 1},
	}
	r1 := ResultOf(e)
	r2 := ResultOf(e.Clone())
	if !r1.Equal(r2) {
		t.Error("identical executions must have equal results")
	}
	if r1.Key() != r2.Key() {
		t.Error("identical results must have identical keys")
	}

	e2 := e.Clone()
	e2.Ops[1].Got = 0
	r3 := ResultOf(e2)
	if r1.Equal(r3) {
		t.Error("results differing in a read value must not be equal")
	}
	if r1.Key() == r3.Key() {
		t.Error("results differing in a read value must have different keys")
	}
}

func TestResultEqualZeroDefault(t *testing.T) {
	a := Result{Reads: map[OpID]ReadObservation{}, Final: map[Addr]Value{1: 0}}
	b := Result{Reads: map[OpID]ReadObservation{}, Final: map[Addr]Value{}}
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("an explicit zero final value must equal an absent entry")
	}
	if a.Key() != b.Key() {
		t.Error("explicit-zero and absent final entries must share a key")
	}
	c := Result{Reads: map[OpID]ReadObservation{}, Final: map[Addr]Value{1: 5}}
	if a.Equal(c) {
		t.Error("differing final values must not be equal")
	}
	if a.Key() == c.Key() {
		t.Error("differing final values must have different keys")
	}
}

func TestResultOfSkipsBoundaryOps(t *testing.T) {
	e := &Execution{
		Procs: 1,
		Ops: []Op{
			{Proc: InitProc, Index: 0, Kind: Write, Addr: 0, Data: 9},
			{Proc: 0, Index: 0, Kind: Read, Addr: 0, Got: 9},
			{Proc: FinalProc, Index: 0, Kind: Read, Addr: 0, Got: 9},
		},
	}
	r := ResultOf(e)
	if len(r.Reads) != 1 {
		t.Fatalf("ResultOf recorded %d reads, want 1 (boundary ops excluded)", len(r.Reads))
	}
	if _, ok := r.Reads[OpID{Proc: 0, Index: 0}]; !ok {
		t.Error("ResultOf must record the real processor's read")
	}
}
