// Package policy enumerates the memory-consistency enforcement policies
// the machine can run — the designs the paper compares:
//
//   - SC: the Scheurich-Dubois sufficient condition for sequential
//     consistency — each processor issues its accesses in program order
//     and stalls until the previous access is globally performed.
//   - Unconstrained: a write-buffered, non-blocking-write processor with
//     no ordering enforcement between locations; reads may bypass
//     buffered writes. This is the hardware whose Figure 1 violations
//     motivate the paper. It is NOT weakly ordered.
//   - WODef1: weak ordering per Dubois/Scheurich/Briggs Definition 1 —
//     a processor stalls at a synchronization operation until all its
//     previous accesses are globally performed (condition 2) and issues
//     no further access until the synchronization operation itself is
//     globally performed (condition 3).
//   - WODef2: the paper's Section 5.3 implementation of the new
//     definition — synchronization operations stall only until they
//     commit; a per-processor counter and per-line reserve bits make the
//     *next* processor synchronizing on the same location wait instead.
//   - WODef2RO: WODef2 plus the Section 6 refinement — read-only
//     synchronization operations are uncached value reads that neither
//     serialize on the lock line nor stall on reserve bits.
package policy

import "fmt"

// Kind selects a consistency-enforcement policy.
type Kind int

// The supported policies.
const (
	SC Kind = iota
	Unconstrained
	WODef1
	WODef2
	WODef2RO
)

// All lists every policy, in presentation order.
func All() []Kind { return []Kind{SC, Unconstrained, WODef1, WODef2, WODef2RO} }

// WeaklyOrdered lists the policies that are weakly ordered with respect
// to DRF0 under Definition 2 (SC trivially appears SC to everyone;
// Unconstrained is excluded).
func WeaklyOrdered() []Kind { return []Kind{SC, WODef1, WODef2, WODef2RO} }

// String names the policy as used in reports.
func (k Kind) String() string {
	switch k {
	case SC:
		return "SC"
	case Unconstrained:
		return "Unconstrained"
	case WODef1:
		return "WO-Def1"
	case WODef2:
		return "WO-Def2"
	case WODef2RO:
		return "WO-Def2+RO"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Parse returns the policy named s (the String form, case-sensitive).
func Parse(s string) (Kind, error) {
	for _, k := range All() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("policy: unknown policy %q (want one of SC, Unconstrained, WO-Def1, WO-Def2, WO-Def2+RO)", s)
}

// UsesWriteBuffer reports whether the processor buffers writes (all but SC).
func (k Kind) UsesWriteBuffer() bool { return k != SC }

// UsesReserve reports whether caches run the Section 5.3 reserve-bit
// mechanism.
func (k Kind) UsesReserve() bool { return k == WODef2 || k == WODef2RO }

// ROSyncBypass reports whether read-only synchronization operations take
// the Section 6 uncached-read path.
func (k Kind) ROSyncBypass() bool { return k == WODef2RO }

// DrainBeforeSync reports whether the processor must wait for all previous
// accesses to be globally performed before issuing a synchronization
// operation (Definition 1 condition 2; SC enforces a stronger per-access
// version, handled separately).
func (k Kind) DrainBeforeSync() bool { return k == WODef1 }

// WaitSyncGlobal reports whether the processor stalls after a
// synchronization operation until it is globally performed (Definition 1
// condition 3). The paper's implementation (WODef2) proceeds at commit.
func (k Kind) WaitSyncGlobal() bool { return k == WODef1 }

// PerAccessGlobal reports whether every access stalls the processor until
// globally performed (the SC sufficient condition).
func (k Kind) PerAccessGlobal() bool { return k == SC }
