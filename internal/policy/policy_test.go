package policy

import "testing"

func TestStringAndParseRoundTrip(t *testing.T) {
	for _, k := range All() {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Errorf("Parse(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse must reject unknown names")
	}
}

func TestPolicyPredicates(t *testing.T) {
	cases := []struct {
		k                                            Kind
		buffer, reserve, ro, drain, waitG, perAccess bool
	}{
		{SC, false, false, false, false, false, true},
		{Unconstrained, true, false, false, false, false, false},
		{WODef1, true, false, false, true, true, false},
		{WODef2, true, true, false, false, false, false},
		{WODef2RO, true, true, true, false, false, false},
	}
	for _, c := range cases {
		if c.k.UsesWriteBuffer() != c.buffer {
			t.Errorf("%v.UsesWriteBuffer() = %v", c.k, !c.buffer)
		}
		if c.k.UsesReserve() != c.reserve {
			t.Errorf("%v.UsesReserve() = %v", c.k, !c.reserve)
		}
		if c.k.ROSyncBypass() != c.ro {
			t.Errorf("%v.ROSyncBypass() = %v", c.k, !c.ro)
		}
		if c.k.DrainBeforeSync() != c.drain {
			t.Errorf("%v.DrainBeforeSync() = %v", c.k, !c.drain)
		}
		if c.k.WaitSyncGlobal() != c.waitG {
			t.Errorf("%v.WaitSyncGlobal() = %v", c.k, !c.waitG)
		}
		if c.k.PerAccessGlobal() != c.perAccess {
			t.Errorf("%v.PerAccessGlobal() = %v", c.k, !c.perAccess)
		}
	}
}

func TestWeaklyOrderedSubset(t *testing.T) {
	wo := WeaklyOrdered()
	for _, k := range wo {
		if k == Unconstrained {
			t.Error("Unconstrained is not weakly ordered")
		}
	}
	if len(wo) != 4 {
		t.Errorf("WeaklyOrdered has %d entries, want 4", len(wo))
	}
}
