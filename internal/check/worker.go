package check

import (
	"errors"
	"fmt"
	"regexp"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"weakorder/internal/drf"
	"weakorder/internal/hb"
	"weakorder/internal/ideal"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/sat"
	"weakorder/internal/scmatch"
)

// campaign carries the shared state of one running campaign.
type campaign struct {
	cfg    CampaignConfig
	matrix []machine.Config
	oracle *oracle

	// journal, when non-nil, receives every completed program's outcome;
	// done holds outcomes replayed from a resumed journal, keyed by
	// program index.
	journal *journal
	done    map[int]progOutcome

	// pub, when non-nil, receives live campaign state for the control
	// plane and structured progress lines (publish.go). Nil when neither
	// is configured; every hook is a no-op then.
	pub *Publisher

	// Progress reporting (side output only; the Summary is aggregated
	// from the results slice, never from these running counters).
	start      time.Time
	progressMu sync.Mutex
	doneProgs  int
	doneSims   int
	doneViols  int
	lastTimed  time.Time
}

// noteProgress records one completed program and emits progress lines:
// a human-readable line via Logf every cfg.Progress completions, and —
// when ProgressJSON or ProgressEvery is configured — a timed line at
// most once per ProgressEvery (structured JSON to ProgressJSON, or the
// human format via Logf when only the interval is set).
func (c *campaign) noteProgress(out progOutcome) {
	countLines := c.cfg.Progress > 0 && c.cfg.Logf != nil
	timedLines := c.cfg.ProgressJSON != nil || (c.cfg.ProgressEvery > 0 && c.cfg.Logf != nil)
	if !countLines && !timedLines {
		return
	}
	c.progressMu.Lock()
	defer c.progressMu.Unlock()
	c.doneProgs++
	c.doneSims += len(out.Sims)
	c.doneViols += len(out.Violations)
	if c.doneProgs >= c.cfg.Programs {
		return // the final "campaign done" line covers completion
	}
	if countLines && c.doneProgs%c.cfg.Progress == 0 {
		c.progressLine()
	}
	if !timedLines {
		return
	}
	every := c.cfg.ProgressEvery
	if every <= 0 {
		every = time.Second
	}
	now := time.Now()
	if now.Sub(c.lastTimed) < every {
		return
	}
	c.lastTimed = now
	if c.cfg.ProgressJSON != nil {
		line := append(c.pub.ProgressJSON(), '\n')
		c.cfg.ProgressJSON.Write(line) //nolint:errcheck // progress is side output
	} else {
		c.progressLine()
	}
}

// progressLine emits the human-readable progress line. Caller holds
// progressMu.
func (c *campaign) progressLine() {
	rate := 0.0
	if elapsed := time.Since(c.start).Seconds(); elapsed > 0 {
		rate = float64(c.doneProgs) / elapsed
	}
	c.cfg.Logf("progress: %d/%d programs, %d sims, %d violations, %.1f prog/s",
		c.doneProgs, c.cfg.Programs, c.doneSims, c.doneViols, rate)
}

// simRecord is one simulation's classification outcome. Fields are
// exported because progOutcome records are the campaign's journal
// payload (journal.go); the JSON encoding must round-trip exactly.
type simRecord struct {
	Policy string `json:"policy"`
	// Key is the observed result's key in the program's own coordinates
	// (coverage accounting); CanonKey is the same result in canonical
	// coordinates (oracle accounting, shared across isomorphic programs).
	Key      string `json:"key"`
	CanonKey string `json:"canonKey,omitempty"`
	// AppearsSC is the oracle verdict; meaningless when Skipped != "".
	AppearsSC bool `json:"appearsSC,omitempty"`
	// Skipped, when non-empty, names why the oracle decision was
	// abandoned (currently always "deadline"); the simulation ran but
	// contributes no verdict.
	Skipped string `json:"skipped,omitempty"`
	// Oracle accounting, aggregated by summarize: L1 marks a query
	// absorbed by the program-local memo, Sat one decided by the
	// polynomial saturation fast path (no enumeration ran), Enum one
	// answered from the enumerated outcome set, Budget a fallback search
	// that exceeded its state budget (conservatively SC). SatFallback,
	// when non-empty, is the fast path's fallback reason for a query that
	// then went to enumeration/search.
	L1          bool   `json:"l1,omitempty"`
	Sat         bool   `json:"sat,omitempty"`
	SatFallback string `json:"satFallback,omitempty"`
	Enum        bool   `json:"enum,omitempty"`
	Budget      bool   `json:"budget,omitempty"`
}

// progOutcome is everything one program contributes to the summary. It
// is self-contained on purpose: summarize derives the whole Summary —
// oracle statistics included — from these records alone, which is what
// makes a journaled outcome exactly substitutable for a recomputed one.
type progOutcome struct {
	Class string `json:"class"`
	// CanonHash is the program's canonical cache key (canon.go); the
	// summarize aggregation counts entry-level oracle events (one
	// enumeration, one fallback search per distinct key) once per hash.
	CanonHash string `json:"canonHash"`
	// Enumerated marks that this program queried the enumerated outcome
	// set; EnumComplete whether that set was complete.
	Enumerated   bool              `json:"enumerated,omitempty"`
	EnumComplete bool              `json:"enumComplete,omitempty"`
	Sims         []simRecord       `json:"sims,omitempty"`
	Violations   []ViolationReport `json:"violations,omitempty"`
	Watchdogs    int               `json:"watchdogs,omitempty"`
	// Panics counts worker panics recovered while checking this program;
	// each also appears as a KindWorkerPanic violation.
	Panics int          `json:"panics,omitempty"`
	Skips  []SkipRecord `json:"skips,omitempty"`
}

// workerState is one worker goroutine's private state. The machine pool
// is replaced wholesale after a recovered panic: a panic mid-run can
// leave a pooled machine half-stepped, and reusing it would let one
// fault corrupt later checks.
type workerState struct {
	pool *machine.Pool
}

// runPool fans the program indices over a bounded worker pool. Each
// worker writes only its own slots of the results slice, so the
// collector's aggregation order — and therefore the Summary — is
// independent of scheduling. All randomness is derived from (Seed,
// indices), never from worker identity, which is what makes the campaign
// deterministic for any worker count. Indices already present in a
// resumed journal are not re-checked; their journaled outcomes fill the
// results slice directly.
func (c *campaign) runPool() ([]progOutcome, error) {
	outs := make([]progOutcome, c.cfg.Programs)
	errs := make([]error, c.cfg.Programs)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns a machine pool: simulations reuse one
			// assembled machine per structural configuration instead of
			// rebuilding the component graph per run. Pools are worker-local
			// (machine.Pool is not goroutine-safe) and influence only
			// allocation behavior — results are byte-identical to fresh
			// machines, so the Summary stays worker-count-invariant.
			ws := &workerState{pool: machine.NewPool()}
			for idx := range jobs {
				out, err := c.runProgram(idx, ws)
				if err == nil && c.journal != nil {
					err = c.journal.append(idx, out)
				}
				outs[idx], errs[idx] = out, err
				if err == nil {
					c.pub.noteProgram(idx, out, false)
				}
				c.noteProgress(out)
			}
		}()
	}
	for i := 0; i < c.cfg.Programs; i++ {
		if done, ok := c.done[i]; ok {
			outs[i] = done
			c.pub.noteProgram(i, done, true)
			continue
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("check: program %d: %w", i, err)
		}
	}
	return outs, nil
}

// deadlineHook returns a fresh cooperative-cancellation hook enforcing
// cfg.CheckDeadline for one oracle decision, or nil when deadlines are
// disabled. Each decision gets its own budget; the hook is polled from
// the ideal/scmatch step loops.
func (c *campaign) deadlineHook() func() bool {
	if c.cfg.CheckDeadline <= 0 {
		return nil
	}
	deadline := time.Now().Add(c.cfg.CheckDeadline)
	return func() bool { return time.Now().After(deadline) }
}

// runProgram generates program idx, classifies it, simulates it across
// the whole config matrix, and shrinks any violation it finds. A panic
// anywhere in the per-check work is recovered by checkOne; a panic
// outside it (generation, canonicalization, classification) is recovered
// here and reported as a program-level KindWorkerPanic.
func (c *campaign) runProgram(idx int, ws *workerState) (out progOutcome, err error) {
	specs := generators()
	spec := specs[idx%len(specs)]
	genSeed := deriveSeed(c.cfg.Seed, uint64(idx), 0x67656e) // "gen" stream

	var prog *program.Program
	defer func() {
		if r := recover(); r == nil {
			return
		} else {
			// The worker survives: replace the possibly-corrupt pool,
			// report the panic, and let the campaign continue. No shrink
			// here — the panic predates a usable (config, seed) context.
			ws.pool = machine.NewPool()
			out.Panics++
			rep := ViolationReport{
				Kind:         KindWorkerPanic,
				Generator:    spec.name,
				GenSeed:      genSeed,
				ProgramIndex: idx,
				Outcome:      "panic",
				Stack:        panicStack(r, debug.Stack()),
			}
			if prog != nil {
				rep.Program = prog.Name
				rep.Litmus = formatProgram(prog)
				rep.Instructions = instructionCount(prog)
			}
			if out.Class == "" {
				out.Class = ClassRacy // conservative: no oracle applies
			}
			out.Violations = append(out.Violations, rep)
			if werr := c.writeCorpus(&rep); werr != nil && err == nil {
				err = werr
			}
			if c.cfg.Logf != nil {
				c.cfg.Logf("PANIC recovered: program %d (%s): %v", idx, spec.name, r)
			}
		}
	}()

	prog = spec.make(genSeed)
	cn := canonicalize(prog)
	entry := c.oracle.entry(cn.hash)
	out.CanonHash = cn.hash

	class := spec.class
	if class == "" {
		var skipped bool
		class, skipped = entry.classify(prog, c.deadlineHook())
		if skipped {
			out.Skips = append(out.Skips, SkipRecord{
				ProgramIndex: idx,
				Stage:        "classify",
				Reason:       "deadline",
			})
		}
	}
	out.Class = class

	// l1 memoizes appears-SC verdicts for this program's own runs: the
	// matrix × seeds loop observes the same few outcomes over and over,
	// and a local map answers repeats without the shared entry's lock.
	l1 := make(map[string]l1Verdict, 8)
	for cfgIdx, mcfg := range c.matrix {
		// Pad the machine to the campaign's processor floor. The padding
		// depends only on (Procs, program), so the Summary stays
		// deterministic and a violation's ConfigDesc replays exactly.
		if extra := c.cfg.Procs - prog.NumThreads(); extra > 0 {
			mcfg.ExtraProcs = extra
		}
		for s := 0; s < c.cfg.SeedsPerConfig; s++ {
			machineSeed := deriveSeed(c.cfg.Seed, uint64(idx), uint64(cfgIdx), uint64(s), 0x5eed5)
			panicked, err := c.checkOne(&out, ws, prog, cn, entry, spec, genSeed, idx, cfgIdx, mcfg, machineSeed, l1)
			if err != nil {
				return out, err
			}
			if panicked {
				// Quarantine the offending (program, config) pair: the
				// remaining seeds would almost certainly re-panic on the
				// same simulator path, and one poisoned pair must not
				// starve the rest of the matrix.
				break
			}
		}
	}
	return out, nil
}

// Stack traces embed heap addresses and goroutine IDs, which vary run
// to run and worker count to worker count; panicStack scrubs them so a
// recovered panic's report — and therefore the Summary — stays
// byte-deterministic.
var (
	stackAddrPat      = regexp.MustCompile(`0x[0-9a-f]+\??`)
	stackGoroutinePat = regexp.MustCompile(`goroutine \d+`)
)

func panicStack(r interface{}, stack []byte) string {
	s := fmt.Sprintf("panic: %v\n\n%s", r, stack)
	s = stackAddrPat.ReplaceAllString(s, "0x…")
	return stackGoroutinePat.ReplaceAllString(s, "goroutine N")
}

// l1Verdict is a program-local memo of one appears-SC decision,
// including the accounting flags so repeated observations replay the
// first decision's record exactly.
type l1Verdict struct {
	sc   bool
	info queryInfo
}

// checkOne runs one (program, config, machine seed) check: simulate,
// adjudicate against the oracle, shrink and report any violation. A
// panic anywhere inside is recovered, reported as a shrunk
// KindWorkerPanic violation, and signaled to the caller so it can
// quarantine the (program, config) pair. The worker's pool is replaced
// after a panic — a half-stepped pooled machine must not be reused.
func (c *campaign) checkOne(out *progOutcome, ws *workerState, prog *program.Program,
	cn canon, entry *oracleEntry, spec genSpec, genSeed int64, idx, cfgIdx int,
	mcfg machine.Config, machineSeed int64, l1 map[string]l1Verdict) (panicked bool, err error) {

	c.pub.noteSim(cfgIdx)
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		panicked = true
		ws.pool = machine.NewPool()
		out.Panics++
		stack := panicStack(r, debug.Stack())
		rep, rerr := c.reportPanic(spec, genSeed, idx, prog, mcfg, machineSeed, stack)
		if rerr != nil && err == nil {
			err = rerr
		}
		out.Violations = append(out.Violations, rep)
		if c.cfg.Logf != nil {
			c.cfg.Logf("PANIC recovered: %s on %s (machine seed %d), quarantined: %v",
				prog.Name, mcfg.Name(), machineSeed, r)
		}
	}()

	res, err := ws.pool.RunPooled(prog, mcfg, machineSeed)
	if err != nil {
		var le *machine.LivenessError
		if !errors.As(err, &le) {
			return false, fmt.Errorf("%s on %s (seed %d): %w", prog.Name, mcfg.Name(), machineSeed, err)
		}
		// A wedged run is itself a checkable violation: the protocol
		// failed to recover. Shrink it and move on — one dead run must
		// not abort the campaign.
		out.Watchdogs++
		rep, rerr := c.report(KindLiveness, spec, genSeed, idx, prog, mcfg, machineSeed,
			mem.Result{}, le.Report.String(), ws.pool)
		if rerr != nil {
			return false, rerr
		}
		out.Violations = append(out.Violations, rep)
		if c.cfg.Logf != nil {
			c.cfg.Logf("VIOLATION %s: %s on %s (machine seed %d), shrunk to %d instructions",
				KindLiveness, prog.Name, mcfg.Name(), machineSeed, rep.Instructions)
		}
		return false, nil
	}
	if c.cfg.Fault != nil {
		c.cfg.Fault(mcfg, prog, res)
	}
	canonKey := cn.key(res.Result)
	v, hit := l1[canonKey]
	if hit {
		out.Sims = append(out.Sims, simRecord{
			Policy:    mcfg.Policy.String(),
			Key:       res.Result.Key(),
			CanonKey:  canonKey,
			AppearsSC: v.sc,
			L1:        true,
		})
	} else if d := c.satDecide(prog, res.Result); d.Verdict != sat.Fallback {
		// Tier-0 polynomial fast path: the saturation procedure decided
		// the observation without enumerating a single interleaving.
		// Accepted verdicts carry a verified witness order and Rejected
		// ones a contradiction among necessary happens-before edges, so
		// the verdict — unlike the search's budget-exceeded answer — is
		// never conservative, and memoizing it in the L1 keeps repeated
		// observations off the fast path too.
		v = l1Verdict{sc: d.Verdict == sat.Accepted, info: queryInfo{sat: true}}
		l1[canonKey] = v
		out.Sims = append(out.Sims, simRecord{
			Policy:    mcfg.Policy.String(),
			Key:       res.Result.Key(),
			CanonKey:  canonKey,
			AppearsSC: v.sc,
			Sat:       true,
		})
	} else {
		sc, info, oerr := entry.appearsSC(prog, cn, canonKey, res.Result, c.deadlineHook())
		info.satFallback = d.Reason
		out.Enumerated = true
		out.EnumComplete = entry.complete
		if oerr != nil {
			if !errors.Is(oerr, errDeadline) {
				return false, fmt.Errorf("%s on %s: oracle: %w", prog.Name, mcfg.Name(), oerr)
			}
			// Deadline skip: the simulation ran, the verdict did not.
			// Not memoized — a later identical observation gets a fresh
			// budget — and not a violation either way.
			out.Sims = append(out.Sims, simRecord{
				Policy:   mcfg.Policy.String(),
				Key:      res.Result.Key(),
				CanonKey: canonKey,
				Skipped:  "deadline",
			})
			out.Skips = append(out.Skips, SkipRecord{
				ProgramIndex: idx,
				Config:       describeConfig(mcfg),
				MachineSeed:  machineSeed,
				Stage:        "oracle",
				Reason:       "deadline",
			})
			if c.cfg.Logf != nil {
				c.cfg.Logf("SKIP deadline: %s on %s (machine seed %d)", prog.Name, mcfg.Name(), machineSeed)
			}
			return false, nil
		}
		v = l1Verdict{sc: sc, info: info}
		l1[canonKey] = v
		out.Sims = append(out.Sims, simRecord{
			Policy:      mcfg.Policy.String(),
			Key:         res.Result.Key(),
			CanonKey:    canonKey,
			AppearsSC:   v.sc,
			SatFallback: info.satFallback,
			Enum:        info.enum,
			Budget:      info.budget,
		})
	}
	kind := violationKind(out.Class, mcfg.Policy, v.sc)
	if kind == "" {
		return false, nil
	}
	rep, rerr := c.report(kind, spec, genSeed, idx, prog, mcfg, machineSeed, res.Result, "", ws.pool)
	if rerr != nil {
		return false, rerr
	}
	out.Violations = append(out.Violations, rep)
	if c.cfg.Logf != nil {
		c.cfg.Logf("VIOLATION %s: %s on %s (machine seed %d), shrunk to %d instructions",
			kind, prog.Name, mcfg.Name(), machineSeed, rep.Instructions)
	}
	return false, nil
}

// satDecide runs the polynomial appears-SC fast path for one observed
// result, or reports an empty Fallback when the campaign disables it.
// The decision is a pure function of (program, result) — no shared
// cache state — so it cannot perturb the Summary's worker-count
// invariance; under a per-check deadline it gets its own budget, like
// every other oracle stage.
func (c *campaign) satDecide(p *program.Program, res mem.Result) sat.Decision {
	if c.cfg.NoSatFast {
		return sat.Decision{}
	}
	return sat.Decide(p, res, sat.Config{MaxEvents: satMaxEvents, Cancel: c.deadlineHook()})
}

// violationKind maps a classification to the oracle it breaks ("" when
// the outcome is coverage only).
func violationKind(class string, pol policy.Kind, appearsSC bool) string {
	if appearsSC {
		return ""
	}
	switch {
	case pol == policy.SC:
		return KindSCPolicy
	case class == ClassDRF && isWeaklyOrdered(pol):
		return KindDefinition2
	default:
		return ""
	}
}

func isWeaklyOrdered(pol policy.Kind) bool {
	switch pol {
	case policy.WODef1, policy.WODef2, policy.WODef2RO:
		return true
	}
	return false
}

// classify decides whether a generated program obeys DRF0 by bounded
// exhaustive check; budget (or deadline) overruns conservatively
// classify as racy — coverage only, no violation oracle — with the
// second return reporting a deadline skip. The verdict is memoized on
// the canonical oracle entry — DRF0 is invariant under thread reordering
// and address renaming, so canonically equal programs share one check.
func (e *oracleEntry) classify(p *program.Program, cancel func() bool) (string, bool) {
	e.classOnce.Do(func() {
		cfg := boundedDRFConfig()
		cfg.Enum.Cancel = cancel
		v, err := drf.Check(p, hb.SyncAll, cfg)
		if err != nil || !v.DRF {
			e.class = ClassRacy
			e.classSkipped = err != nil && errors.Is(err, ideal.ErrCanceled)
			return
		}
		e.class = ClassDRF
	})
	return e.class, e.classSkipped
}

// report shrinks a violating program and assembles its ViolationReport,
// writing the reproducer into the corpus directory when configured.
// liveness carries the rendered LivenessReport for KindLiveness (the
// observed result is then empty — a wedged run commits no outcome).
func (c *campaign) report(kind string, spec genSpec, genSeed int64, idx int,
	prog *program.Program, mcfg machine.Config, machineSeed int64,
	observed mem.Result, liveness string, pool *machine.Pool) (ViolationReport, error) {

	pred := c.violates(kind, mcfg, machineSeed, pool)
	shrunk, steps := Shrink(prog, pred, c.cfg.MaxShrinkTries)
	outcome := observed.Key()
	if kind == KindLiveness {
		outcome = "wedged"
	}
	rep := ViolationReport{
		Kind:         kind,
		Program:      shrunk.Name,
		Generator:    spec.name,
		GenSeed:      genSeed,
		ProgramIndex: idx,
		Config:       describeConfig(mcfg),
		MachineSeed:  machineSeed,
		Outcome:      outcome,
		Instructions: instructionCount(shrunk),
		ShrinkSteps:  steps,
		Litmus:       formatProgram(shrunk),
		Liveness:     liveness,
	}
	return rep, c.writeCorpus(&rep)
}

// reportPanic assembles the KindWorkerPanic report for a recovered
// panic, shrinking the program against a "still panics" predicate run on
// fresh (never pooled) machines — the reproducer pipeline's analogue of
// the liveness path. The predicate covers the simulate-plus-fault-hook
// region; a panic rooted elsewhere (oracle internals) simply shrinks
// zero steps and keeps the full program.
func (c *campaign) reportPanic(spec genSpec, genSeed int64, idx int,
	prog *program.Program, mcfg machine.Config, machineSeed int64, stack string) (ViolationReport, error) {

	shrinkCfg := mcfg
	shrinkCfg.MaxCycles = shrinkMaxCycles
	pred := func(cand *program.Program) (panics bool) {
		defer func() {
			if recover() != nil {
				panics = true
			}
		}()
		res, err := machine.Run(cand, shrinkCfg, machineSeed)
		if err != nil {
			return false
		}
		if c.cfg.Fault != nil {
			c.cfg.Fault(shrinkCfg, cand, res)
		}
		return false
	}
	shrunk, steps := Shrink(prog, pred, c.cfg.MaxShrinkTries)
	rep := ViolationReport{
		Kind:         KindWorkerPanic,
		Program:      shrunk.Name,
		Generator:    spec.name,
		GenSeed:      genSeed,
		ProgramIndex: idx,
		Config:       describeConfig(mcfg),
		MachineSeed:  machineSeed,
		Outcome:      "panic",
		Instructions: instructionCount(shrunk),
		ShrinkSteps:  steps,
		Litmus:       formatProgram(shrunk),
		Stack:        stack,
	}
	return rep, c.writeCorpus(&rep)
}

// violates builds the shrinker predicate: does the candidate program
// still exhibit the violation under the same config and machine seed?
// Definition 2 candidates must additionally stay DRF0 — otherwise
// shrinking could land on a legitimately-racy program whose non-SC
// outcome is no bug, making the corpus entry spurious.
func (c *campaign) violates(kind string, mcfg machine.Config, machineSeed int64, pool *machine.Pool) func(*program.Program) bool {
	shrinkCfg := mcfg
	shrinkCfg.MaxCycles = shrinkMaxCycles
	if kind == KindLiveness {
		// A liveness candidate reproduces iff it still wedges: each probe
		// burns its entire cycle budget, so use the tight one.
		shrinkCfg.MaxCycles = livenessShrinkMaxCycles
		return func(cand *program.Program) bool {
			_, err := pool.RunPooled(cand, shrinkCfg, machineSeed)
			var le *machine.LivenessError
			return errors.As(err, &le)
		}
	}
	return func(cand *program.Program) bool {
		if kind == KindDefinition2 {
			cfg := boundedDRFConfig()
			cfg.Enum.Cancel = c.deadlineHook()
			v, err := drf.Check(cand, hb.SyncAll, cfg)
			if err != nil || !v.DRF {
				return false
			}
		}
		res, err := pool.RunPooled(cand, shrinkCfg, machineSeed)
		if err != nil {
			return false
		}
		if c.cfg.Fault != nil {
			c.cfg.Fault(mcfg, cand, res)
		}
		m, err := scmatch.Matches(cand, res.Result, scmatch.Config{
			MaxStates: oracleMatchMaxStates,
			Cancel:    c.deadlineHook(),
		})
		if err != nil {
			return false
		}
		return !m.OK
	}
}

func instructionCount(p *program.Program) int {
	n := 0
	for i := range p.Threads {
		n += len(p.Threads[i].Instrs)
	}
	return n
}

// CorruptReadFault is the standard test fault: on the given policy it
// bumps the first (lowest-OpID) read observation by 1000, producing a
// result no idealized execution can match. It deliberately breaks the
// policy's contract so the detection → shrink → corpus pipeline can be
// exercised end to end.
func CorruptReadFault(pol policy.Kind) FaultHook {
	return func(cfg machine.Config, p *program.Program, res *machine.RunResult) {
		if cfg.Policy != pol || len(res.Result.Reads) == 0 {
			return
		}
		ids := make([]mem.OpID, 0, len(res.Result.Reads))
		for id := range res.Result.Reads {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
		obs := res.Result.Reads[ids[0]]
		obs.Value += 1000
		res.Result.Reads[ids[0]] = obs
	}
}

// PanicFault is the standard worker-isolation test fault: it panics on
// every run of the given policy, simulating a checker bug so the
// recover → report → quarantine pipeline can be exercised end to end.
func PanicFault(pol policy.Kind) FaultHook {
	return func(cfg machine.Config, p *program.Program, res *machine.RunResult) {
		if cfg.Policy == pol {
			panic(fmt.Sprintf("injected worker panic on %s", cfg.Policy))
		}
	}
}
