package check

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"weakorder/internal/drf"
	"weakorder/internal/hb"
	"weakorder/internal/machine"
	"weakorder/internal/mem"
	"weakorder/internal/policy"
	"weakorder/internal/program"
	"weakorder/internal/scmatch"
)

// campaign carries the shared state of one running campaign.
type campaign struct {
	cfg    CampaignConfig
	matrix []machine.Config
	oracle *oracle

	// Progress reporting (side output only; the Summary is aggregated
	// from the results slice, never from these running counters).
	start      time.Time
	progressMu sync.Mutex
	doneProgs  int
	doneSims   int
	doneViols  int
}

// noteProgress records one completed program and, every cfg.Progress
// completions, emits a progress line via Logf.
func (c *campaign) noteProgress(out progOutcome) {
	if c.cfg.Progress <= 0 || c.cfg.Logf == nil {
		return
	}
	c.progressMu.Lock()
	defer c.progressMu.Unlock()
	c.doneProgs++
	c.doneSims += len(out.sims)
	c.doneViols += len(out.violations)
	if c.doneProgs%c.cfg.Progress != 0 || c.doneProgs >= c.cfg.Programs {
		return // the final "campaign done" line covers completion
	}
	rate := 0.0
	if elapsed := time.Since(c.start).Seconds(); elapsed > 0 {
		rate = float64(c.doneProgs) / elapsed
	}
	c.cfg.Logf("progress: %d/%d programs, %d sims, %d violations, %.1f prog/s",
		c.doneProgs, c.cfg.Programs, c.doneSims, c.doneViols, rate)
}

// simRecord is one simulation's classification input.
type simRecord struct {
	policy    string
	key       string
	appearsSC bool
}

// progOutcome is everything one program contributes to the summary.
type progOutcome struct {
	class      string
	sims       []simRecord
	violations []ViolationReport
	watchdogs  int
	// l1Hits counts oracle queries absorbed by the program-local L1 memo
	// without touching the shared cache. The memo is per program — not
	// per worker — so the count (and the shared cache's stats) stay
	// deterministic for any Workers value.
	l1Hits int
}

// runPool fans the program indices over a bounded worker pool. Each
// worker writes only its own slots of the results slice, so the
// collector's aggregation order — and therefore the Summary — is
// independent of scheduling. All randomness is derived from (Seed,
// indices), never from worker identity, which is what makes the campaign
// deterministic for any worker count.
func (c *campaign) runPool() ([]progOutcome, error) {
	outs := make([]progOutcome, c.cfg.Programs)
	errs := make([]error, c.cfg.Programs)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns a machine pool: simulations reuse one
			// assembled machine per structural configuration instead of
			// rebuilding the component graph per run. Pools are worker-local
			// (machine.Pool is not goroutine-safe) and influence only
			// allocation behavior — results are byte-identical to fresh
			// machines, so the Summary stays worker-count-invariant.
			pool := machine.NewPool()
			for idx := range jobs {
				outs[idx], errs[idx] = c.runProgram(idx, pool)
				c.noteProgress(outs[idx])
			}
		}()
	}
	for i := 0; i < c.cfg.Programs; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("check: program %d: %w", i, err)
		}
	}
	return outs, nil
}

// runProgram generates program idx, classifies it, simulates it across
// the whole config matrix, and shrinks any violation it finds. pool is
// the calling worker's machine pool.
func (c *campaign) runProgram(idx int, pool *machine.Pool) (progOutcome, error) {
	specs := generators()
	spec := specs[idx%len(specs)]
	genSeed := deriveSeed(c.cfg.Seed, uint64(idx), 0x67656e) // "gen" stream
	prog := spec.make(genSeed)
	cn := canonicalize(prog)
	entry := c.oracle.entry(cn.hash)

	class := spec.class
	if class == "" {
		class = entry.classify(prog)
	}

	out := progOutcome{class: class}
	// l1 memoizes appears-SC verdicts for this program's own runs: the
	// matrix × seeds loop observes the same few outcomes over and over,
	// and a local map answers repeats without the shared entry's lock.
	l1 := make(map[string]bool, 8)
	for cfgIdx, mcfg := range c.matrix {
		for s := 0; s < c.cfg.SeedsPerConfig; s++ {
			machineSeed := deriveSeed(c.cfg.Seed, uint64(idx), uint64(cfgIdx), uint64(s), 0x5eed5)
			res, err := pool.RunPooled(prog, mcfg, machineSeed)
			if err != nil {
				var le *machine.LivenessError
				if !errors.As(err, &le) {
					return out, fmt.Errorf("%s on %s (seed %d): %w", prog.Name, mcfg.Name(), machineSeed, err)
				}
				// A wedged run is itself a checkable violation: the protocol
				// failed to recover. Shrink it and move on — one dead run must
				// not abort the campaign.
				out.watchdogs++
				rep, rerr := c.report(KindLiveness, spec, genSeed, idx, prog, mcfg, machineSeed,
					mem.Result{}, le.Report.String(), pool)
				if rerr != nil {
					return out, rerr
				}
				out.violations = append(out.violations, rep)
				if c.cfg.Logf != nil {
					c.cfg.Logf("VIOLATION %s: %s on %s (machine seed %d), shrunk to %d instructions",
						KindLiveness, prog.Name, mcfg.Name(), machineSeed, rep.Instructions)
				}
				continue
			}
			if c.cfg.Fault != nil {
				c.cfg.Fault(mcfg, prog, res)
			}
			canonKey := cn.key(res.Result)
			sc, hit := l1[canonKey]
			if hit {
				out.l1Hits++
			} else {
				sc, err = entry.appearsSC(prog, cn, canonKey, res.Result)
				if err != nil {
					return out, fmt.Errorf("%s on %s: oracle: %w", prog.Name, mcfg.Name(), err)
				}
				l1[canonKey] = sc
			}
			out.sims = append(out.sims, simRecord{
				policy:    mcfg.Policy.String(),
				key:       res.Result.Key(),
				appearsSC: sc,
			})
			kind := violationKind(class, mcfg.Policy, sc)
			if kind == "" {
				continue
			}
			rep, err := c.report(kind, spec, genSeed, idx, prog, mcfg, machineSeed, res.Result, "", pool)
			if err != nil {
				return out, err
			}
			out.violations = append(out.violations, rep)
			if c.cfg.Logf != nil {
				c.cfg.Logf("VIOLATION %s: %s on %s (machine seed %d), shrunk to %d instructions",
					kind, prog.Name, mcfg.Name(), machineSeed, rep.Instructions)
			}
		}
	}
	return out, nil
}

// violationKind maps a classification to the oracle it breaks ("" when
// the outcome is coverage only).
func violationKind(class string, pol policy.Kind, appearsSC bool) string {
	if appearsSC {
		return ""
	}
	switch {
	case pol == policy.SC:
		return KindSCPolicy
	case class == ClassDRF && isWeaklyOrdered(pol):
		return KindDefinition2
	default:
		return ""
	}
}

func isWeaklyOrdered(pol policy.Kind) bool {
	switch pol {
	case policy.WODef1, policy.WODef2, policy.WODef2RO:
		return true
	}
	return false
}

// classify decides whether a generated program obeys DRF0 by bounded
// exhaustive check; budget overruns conservatively classify as racy
// (coverage only, no violation oracle). The verdict is memoized on the
// canonical oracle entry — DRF0 is invariant under thread reordering and
// address renaming, so canonically equal programs share one check.
func (e *oracleEntry) classify(p *program.Program) string {
	e.classOnce.Do(func() {
		v, err := drf.Check(p, hb.SyncAll, boundedDRFConfig())
		if err != nil || !v.DRF {
			e.class = ClassRacy
			return
		}
		e.class = ClassDRF
	})
	return e.class
}

// report shrinks a violating program and assembles its ViolationReport,
// writing the reproducer into the corpus directory when configured.
// liveness carries the rendered LivenessReport for KindLiveness (the
// observed result is then empty — a wedged run commits no outcome).
func (c *campaign) report(kind string, spec genSpec, genSeed int64, idx int,
	prog *program.Program, mcfg machine.Config, machineSeed int64,
	observed mem.Result, liveness string, pool *machine.Pool) (ViolationReport, error) {

	pred := c.violates(kind, mcfg, machineSeed, pool)
	shrunk, steps := Shrink(prog, pred, c.cfg.MaxShrinkTries)
	outcome := observed.Key()
	if kind == KindLiveness {
		outcome = "wedged"
	}
	rep := ViolationReport{
		Kind:         kind,
		Program:      shrunk.Name,
		Generator:    spec.name,
		GenSeed:      genSeed,
		ProgramIndex: idx,
		Config:       describeConfig(mcfg),
		MachineSeed:  machineSeed,
		Outcome:      outcome,
		Instructions: instructionCount(shrunk),
		ShrinkSteps:  steps,
		Litmus:       formatProgram(shrunk),
		Liveness:     liveness,
	}
	if c.cfg.CorpusDir != "" {
		if err := WriteViolation(c.cfg.CorpusDir, rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// violates builds the shrinker predicate: does the candidate program
// still exhibit the violation under the same config and machine seed?
// Definition 2 candidates must additionally stay DRF0 — otherwise
// shrinking could land on a legitimately-racy program whose non-SC
// outcome is no bug, making the corpus entry spurious.
func (c *campaign) violates(kind string, mcfg machine.Config, machineSeed int64, pool *machine.Pool) func(*program.Program) bool {
	shrinkCfg := mcfg
	shrinkCfg.MaxCycles = shrinkMaxCycles
	if kind == KindLiveness {
		// A liveness candidate reproduces iff it still wedges: each probe
		// burns its entire cycle budget, so use the tight one.
		shrinkCfg.MaxCycles = livenessShrinkMaxCycles
		return func(cand *program.Program) bool {
			_, err := pool.RunPooled(cand, shrinkCfg, machineSeed)
			var le *machine.LivenessError
			return errors.As(err, &le)
		}
	}
	return func(cand *program.Program) bool {
		if kind == KindDefinition2 {
			v, err := drf.Check(cand, hb.SyncAll, boundedDRFConfig())
			if err != nil || !v.DRF {
				return false
			}
		}
		res, err := pool.RunPooled(cand, shrinkCfg, machineSeed)
		if err != nil {
			return false
		}
		if c.cfg.Fault != nil {
			c.cfg.Fault(mcfg, cand, res)
		}
		m, err := scmatch.Matches(cand, res.Result, scmatch.Config{MaxStates: oracleMatchMaxStates})
		if err != nil {
			return false
		}
		return !m.OK
	}
}

func instructionCount(p *program.Program) int {
	n := 0
	for i := range p.Threads {
		n += len(p.Threads[i].Instrs)
	}
	return n
}

// CorruptReadFault is the standard test fault: on the given policy it
// bumps the first (lowest-OpID) read observation by 1000, producing a
// result no idealized execution can match. It deliberately breaks the
// policy's contract so the detection → shrink → corpus pipeline can be
// exercised end to end.
func CorruptReadFault(pol policy.Kind) FaultHook {
	return func(cfg machine.Config, p *program.Program, res *machine.RunResult) {
		if cfg.Policy != pol || len(res.Result.Reads) == 0 {
			return
		}
		ids := make([]mem.OpID, 0, len(res.Result.Reads))
		for id := range res.Result.Reads {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
		obs := res.Result.Reads[ids[0]]
		obs.Value += 1000
		res.Result.Reads[ids[0]] = obs
	}
}
