package check

import (
	"path/filepath"
	"strings"
	"testing"

	"weakorder/internal/faults"
	"weakorder/internal/machine"
	"weakorder/internal/policy"
	"weakorder/internal/program"
)

// smallCampaign is the shared fast configuration: one machine seed per
// config, a reduced matrix, enough programs to cover every generator
// class.
func smallCampaign(seed int64) CampaignConfig {
	return CampaignConfig{
		Seed:           seed,
		Programs:       8,
		SeedsPerConfig: 1,
	}
}

func TestMatrixShape(t *testing.T) {
	m := Matrix(policy.All(), []machine.Topology{machine.TopoBus, machine.TopoNetwork})
	// Per topology: SC and Unconstrained run cached + uncached, the three
	// weakly ordered policies cached only.
	if want := 2 * (2*2 + 3); len(m) != want {
		t.Fatalf("matrix size %d, want %d", len(m), want)
	}
	for _, cfg := range m {
		if err := cfg.Validate(); err != nil {
			t.Errorf("matrix produced invalid config %s: %v", cfg.Name(), err)
		}
	}
}

// TestCampaignDeterministic runs the same campaign at different worker
// counts and demands byte-identical JSON summaries — the guarantee that
// makes campaign results reportable and reproducible.
func TestCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full campaigns; skipped in -short")
	}
	cfg := smallCampaign(1)
	cfg.Workers = 1
	s1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	s2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := s1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("summaries differ across worker counts:\n--- workers=1\n%s\n--- workers=4\n%s", j1, j2)
	}
}

// TestCampaignCleanHasNoViolations pins the core contract on the real
// simulator: no configuration in the matrix violates its oracle.
func TestCampaignCleanHasNoViolations(t *testing.T) {
	s, err := Run(smallCampaign(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Violations {
		t.Errorf("unexpected %s violation: %s on %s (machine seed %d)\n%s",
			v.Kind, v.Program, configKey(v.Config), v.MachineSeed, v.Litmus)
	}
	if s.Sims != s.Programs*s.Configs*1 {
		t.Errorf("sims = %d, want %d", s.Sims, s.Programs*s.Configs)
	}
	if s.ByClass[ClassDRF] == 0 {
		t.Error("campaign generated no DRF programs")
	}
	if s.Oracle.Queries != s.Sims {
		t.Errorf("oracle queries = %d, want one per sim (%d)", s.Oracle.Queries, s.Sims)
	}
}

// TestCampaignCoversWeakBehavior checks the differential half: racy
// programs on weak policies do exhibit non-SC outcomes (otherwise the
// campaign isn't exercising anything the oracle could catch).
func TestCampaignCoversWeakBehavior(t *testing.T) {
	if testing.Short() {
		t.Skip("32-seed coverage campaign; skipped in -short")
	}
	cfg := CampaignConfig{
		Seed:           3,
		Programs:       16,
		SeedsPerConfig: 2,
		Policies:       []policy.Kind{policy.Unconstrained},
		Topologies:     []machine.Topology{machine.TopoNetwork},
	}
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nonSC := 0
	for _, row := range s.Coverage {
		nonSC += row.NonSC
	}
	if nonSC == 0 {
		t.Error("no non-SC outcome observed on Unconstrained/network — weak behavior coverage is dead")
	}
	// And never a violation: racy classes and Unconstrained are coverage
	// only.
	if len(s.Violations) != 0 {
		t.Errorf("unexpected violations on a coverage-only matrix: %d", len(s.Violations))
	}
}

// TestCampaignWithFaultsCleanAndDeterministic is the robustness
// acceptance check in miniature: with drop+dup+delay injected on every
// cached row, the hardened protocol still satisfies every oracle — no
// Definition 2 violations, no watchdog deaths — and the summary stays
// byte-identical across worker counts.
func TestCampaignWithFaultsCleanAndDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two faulted campaigns; skipped in -short")
	}
	plan := faults.Mild()
	cfg := CampaignConfig{
		Seed:           11,
		Programs:       6,
		SeedsPerConfig: 1,
		Policies:       []policy.Kind{policy.WODef2, policy.SC},
		Topologies:     []machine.Topology{machine.TopoNetwork},
		Faults:         &plan,
		Workers:        1,
	}
	s1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Violations) != 0 {
		for _, v := range s1.Violations {
			t.Errorf("violation under mild faults: %s %s on %s\n%s", v.Kind, v.Program, configKey(v.Config), v.Liveness)
		}
	}
	if s1.WatchdogDeaths != 0 {
		t.Errorf("%d watchdog deaths under mild faults with retry enabled", s1.WatchdogDeaths)
	}
	if s1.Faults == nil || !s1.Faults.Enabled() {
		t.Error("summary does not record the fault plan")
	}
	cfg.Workers = 4
	s2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := s1.JSON()
	j2, _ := s2.JSON()
	if string(j1) != string(j2) {
		t.Fatalf("faulted summaries differ across worker counts:\n--- workers=1\n%s\n--- workers=4\n%s", j1, j2)
	}
}

// TestBrokenRetryYieldsLivenessReproducer drives the tentpole's failure
// pipeline: disabling retry under total drop wedges runs, and each wedge
// becomes a KindLiveness violation with a shrunk reproducer and a
// populated liveness report — instead of aborting the campaign.
func TestBrokenRetryYieldsLivenessReproducer(t *testing.T) {
	dir := t.TempDir()
	cfg := CampaignConfig{
		Seed:           5,
		Programs:       1, // index 0 is racefree (DRF by construction)
		SeedsPerConfig: 1,
		Policies:       []policy.Kind{policy.WODef2},
		Topologies:     []machine.Topology{machine.TopoNetwork},
		Faults:         &faults.Plan{Drop: 1, DisableRetry: true},
		CorpusDir:      dir,
		MaxShrinkTries: 40,
	}
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.WatchdogDeaths == 0 || len(s.Violations) == 0 {
		t.Fatalf("total drop without retry produced no watchdog deaths (%d) / violations (%d)",
			s.WatchdogDeaths, len(s.Violations))
	}
	for _, v := range s.Violations {
		if v.Kind != KindLiveness {
			t.Errorf("violation kind %q, want %q", v.Kind, KindLiveness)
		}
		if v.Liveness == "" {
			t.Error("liveness violation carries no report")
		} else if !strings.Contains(v.Liveness, "stalled") && !strings.Contains(v.Liveness, "pending") {
			t.Errorf("liveness report names no stalled processor or pending line:\n%s", v.Liveness)
		}
		if v.Outcome != "wedged" {
			t.Errorf("liveness outcome %q, want \"wedged\"", v.Outcome)
		}
		if v.Config.Faults == nil {
			t.Error("violation config does not record the fault plan for replay")
		}
		if v.Instructions > 6 {
			t.Errorf("shrunk liveness reproducer has %d instructions, want <= 6:\n%s", v.Instructions, v.Litmus)
		}
	}
	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(s.Violations) {
		t.Fatalf("corpus has %d entries, want %d", len(entries), len(s.Violations))
	}
	for _, e := range entries {
		if err := Replay(e, 1); err != nil {
			t.Errorf("replay: %v", err)
		}
	}
}

// TestFaultYieldsShrunkReproducer drives the acceptance criterion: a
// deliberately broken policy produces a violation whose shrunk
// reproducer is at most 6 instructions and replays from the corpus
// directory.
func TestFaultYieldsShrunkReproducer(t *testing.T) {
	dir := t.TempDir()
	cfg := CampaignConfig{
		Seed:           1,
		Programs:       2, // index 0 is racefree (DRF by construction)
		SeedsPerConfig: 1,
		Policies:       []policy.Kind{policy.WODef2},
		Topologies:     []machine.Topology{machine.TopoBus},
		CorpusDir:      dir,
		Fault:          CorruptReadFault(policy.WODef2),
	}
	s, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Violations) == 0 {
		t.Fatal("fault hook produced no violation")
	}
	for _, v := range s.Violations {
		if v.Kind != KindDefinition2 {
			t.Errorf("violation kind %q, want %q", v.Kind, KindDefinition2)
		}
		if v.Instructions > 6 {
			t.Errorf("shrunk reproducer has %d instructions, want <= 6:\n%s", v.Instructions, v.Litmus)
		}
		if len(v.ShrinkSteps) == 0 {
			t.Error("no shrink steps recorded")
		}
	}
	// The corpus written during the campaign loads and replays clean
	// (replay runs without the fault hook, so the contract holds).
	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(s.Violations) {
		t.Fatalf("corpus has %d entries, want %d", len(entries), len(s.Violations))
	}
	for _, e := range entries {
		if err := Replay(e, 2); err != nil {
			t.Errorf("replay: %v", err)
		}
	}
}

// TestCorpusReplay replays the committed corpus as a regression suite:
// each entry is a shrunk reproducer of a once-induced violation, and
// replaying it clean means the contract holds where it was once broken.
func TestCorpusReplay(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("committed corpus is empty — regenerate with wofuzz -fault")
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			if err := Replay(e, 3); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestShrinkRetargetsBranches checks the structural part of the shrinker
// on a synthetic predicate (no simulator involved): dropping an
// instruction before a branch must pull its target back.
func TestShrinkRetargetsBranches(t *testing.T) {
	b := program.NewBuilder("branchy")
	x := b.Var("x")
	th := b.Thread()
	th.LoadImm(program.R0, 1)       // 0: droppable
	th.BeqImm(program.R0, 7, "end") // 1: branch over the store
	th.StoreImm(x, 5)               // 2: the instruction pred protects
	th.Label("end")
	th.Nop() // 3: droppable
	p := b.MustBuild()

	keepsStore := func(cand *program.Program) bool {
		for _, t := range cand.Threads {
			for _, in := range t.Instrs {
				if in.Op == program.OpStore && in.Imm == 5 {
					return true
				}
			}
		}
		return false
	}
	shrunk, steps := Shrink(p, keepsStore, 200)
	if err := shrunk.Validate(); err != nil {
		t.Fatalf("shrunk program invalid: %v", err)
	}
	if !keepsStore(shrunk) {
		t.Fatal("shrinker lost the protected instruction")
	}
	if n := instructionCount(shrunk); n != 1 {
		t.Errorf("shrunk to %d instructions, want 1 (just the store); steps: %v", n, steps)
	}
}

// TestShrinkDemotesSync checks sync→data demotion with a predicate that
// only requires a load to x.
func TestShrinkDemotesSync(t *testing.T) {
	b := program.NewBuilder("syncy")
	x := b.Var("x")
	th := b.Thread()
	th.TAS(program.R0, x)
	p := b.MustBuild()

	hasLoadOrTAS := func(cand *program.Program) bool {
		for _, t := range cand.Threads {
			for _, in := range t.Instrs {
				if (in.Op == program.OpLoad || in.Op == program.OpTAS) && in.Addr == 0 {
					return true
				}
			}
		}
		return false
	}
	shrunk, _ := Shrink(p, hasLoadOrTAS, 100)
	if got := shrunk.Threads[0].Instrs[0].Op; got != program.OpLoad {
		t.Errorf("TAS not demoted: final op %v", got)
	}
}

// TestDeriveSeedStable pins the seed-derivation scheme: campaign replay
// depends on these exact values, so a change here invalidates every
// recorded report.
func TestDeriveSeedStable(t *testing.T) {
	if a, b := deriveSeed(1, 0, 0x67656e), deriveSeed(1, 0, 0x67656e); a != b {
		t.Fatalf("deriveSeed not stable: %d != %d", a, b)
	}
	if a, b := deriveSeed(1, 0, 0x67656e), deriveSeed(1, 1, 0x67656e); a == b {
		t.Fatal("deriveSeed does not separate program indices")
	}
	if deriveSeed(12345, 6, 7, 8) < 0 {
		t.Fatal("deriveSeed must be non-negative")
	}
}
