package check

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"weakorder/internal/lang"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Oracle cache canonicalization. The appears-SC oracle is the campaign's
// most expensive computation, and its verdict is invariant under two
// cheap program isomorphisms: permuting whole threads (the idealized
// interleaving semantics treat threads symmetrically) and bijectively
// renaming addresses (conflicts and init values are preserved; address
// identity never otherwise matters). Generated programs collide under
// these isomorphisms constantly — the generators draw thread bodies and
// variable layouts from seed streams, so "the same litmus shape with x
// and y swapped" recurs across program indices — and canonicalizing the
// cache key lets every isomorphic copy share one enumeration.
//
// canonicalize picks, over a refined set of thread permutations, the
// lexicographically minimal serialization of the program with addresses
// renamed in first-use order, and returns the winning renaming. Outcome
// sets are stored in canonical coordinates: every result (enumerated or
// observed) is mapped through the renaming before it is used as a key,
// so two isomorphic programs agree on every cached verdict.
//
// Searching all n! thread orders caps out fast, so the permutation set
// is refined first: each thread gets an isomorphism-invariant signature
// (its instruction stream with addresses replaced by attribute-class
// labels, plus any postcondition register terms it carries), threads are
// pre-sorted by signature, and only orders that permute within
// equal-signature groups are tried. Distinct-signature threads serialize
// differently by construction, so restricting to within-group orders
// loses no collisions, and for the common case of all-distinct bodies a
// single serialization suffices at any thread count. Programs whose
// group structure still exceeds the permutation budget fall back to a
// raw-text hash with identity renaming.
//
// A litmus postcondition no longer forces the fallback: the Cond is part
// of the serialization (a trailing 'C' section), with register terms
// pinned to canonical thread positions and memory terms to canonical
// address ids, so isomorphic postconditioned programs — Cond mapped
// through the same thread/address bijection — share an entry while any
// Cond difference separates hashes.

// canonMaxPerms bounds the within-group permutation product (7! — a
// program would need seven threads with pairwise-identical bodies to
// exceed it; campaign generators emit 2-3 distinct ones).
const canonMaxPerms = 5040

// canonUnmappedBase offsets addresses that escape the renaming (which
// cannot happen for any address an instruction can touch) clear of the
// dense canonical id space.
const canonUnmappedBase mem.Addr = 1 << 20

// canon is a program's canonicalization: the cache hash plus the
// renaming that maps this program's coordinates into canonical ones.
type canon struct {
	hash string
	// inv[orig] = canonical position of original thread orig; nil means
	// the identity renaming (raw fallback).
	inv []int
	// addr maps original addresses to canonical ids; nil means identity.
	addr map[mem.Addr]mem.Addr
}

// canonicalize computes p's canonical cache key and renaming.
func canonicalize(p *program.Program) canon {
	n := p.NumThreads()
	sigs := threadSignatures(p)

	// Pre-sort threads by signature; equal-signature runs form the
	// groups whose internal orders are enumerated.
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	sort.SliceStable(base, func(i, j int) bool {
		return bytes.Compare(sigs[base[i]], sigs[base[j]]) < 0
	})
	type span struct{ start, end int } // [start, end) positions in base
	var groups []span
	perms := 1
	for i := 0; i < n; {
		j := i + 1
		for j < n && bytes.Equal(sigs[base[j]], sigs[base[i]]) {
			j++
		}
		for k := 2; k <= j-i; k++ { // perms *= (j-i)!, overflow-guarded
			perms *= k
			if perms > canonMaxPerms {
				sum := sha256.Sum256([]byte("raw|" + lang.Format(p)))
				return canon{hash: hex.EncodeToString(sum[:])}
			}
		}
		if j-i > 1 {
			groups = append(groups, span{i, j})
		}
		i = j
	}

	var (
		best     []byte
		bestInv  []int
		bestAddr map[mem.Addr]mem.Addr
	)
	order := make([]int, n)
	copy(order, base)
	candidate := func() {
		ser, amap := serializeCanonical(p, order)
		if best != nil && bytes.Compare(ser, best) >= 0 {
			return
		}
		best = append(best[:0], ser...)
		bestInv = make([]int, n)
		for c, orig := range order {
			bestInv[orig] = c
		}
		bestAddr = amap
	}
	var visit func(g int)
	visit = func(g int) {
		if g == len(groups) {
			candidate()
			return
		}
		permuteRange(order, groups[g].start, groups[g].end, func() { visit(g + 1) })
	}
	visit(0)
	sum := sha256.Sum256(append([]byte("canon|"), best...))
	return canon{hash: hex.EncodeToString(sum[:]), inv: bestInv, addr: bestAddr}
}

// permuteRange visits every permutation of s[lo:hi] in a deterministic
// order, calling visit for each; s is restored between calls.
func permuteRange(s []int, lo, hi int, visit func()) {
	if lo >= hi {
		visit()
		return
	}
	var rec func(k int)
	rec = func(k int) {
		if k == hi {
			visit()
			return
		}
		for i := k; i < hi; i++ {
			s[k], s[i] = s[i], s[k]
			rec(k + 1)
			s[k], s[i] = s[i], s[k]
		}
	}
	rec(lo)
}

// threadSignatures computes an isomorphism-invariant signature per
// thread: the instruction stream with every address replaced by its
// attribute-class label, plus the thread's postcondition register terms.
// Two threads get equal signatures iff a thread swap could possibly
// yield the same canonical serialization, so the permutation search only
// needs orders that permute within equal-signature groups.
func threadSignatures(p *program.Program) [][]byte {
	cls := addrClasses(p)
	sigs := make([][]byte, p.NumThreads())
	for i := range p.Threads {
		var b []byte
		for _, in := range p.Threads[i].Instrs {
			b = appendInstr(b, in, func(a mem.Addr) mem.Addr { return mem.Addr(cls[a]) })
		}
		if p.Cond != nil {
			b = append(b, 'R')
			b = appendRegTerms(b, p.Cond, func(int) int { return 0 }, i)
		}
		sigs[i] = b
	}
	return sigs
}

// addrClasses partitions the program's addresses into attribute classes:
// init value, per-opcode access counts, the number of distinct threads
// touching the address, and the multiset of postcondition values
// asserted on it. Classes are labeled in sorted-attribute order, so the
// labels are invariant under any address bijection and any thread
// permutation — exactly the invariance the signature refinement needs.
// (Two genuinely different addresses may share a class; that only widens
// a group, never merges distinct programs.)
func addrClasses(p *program.Program) map[mem.Addr]int {
	type attrs struct {
		opCount map[program.Opcode]int
		threads map[int]bool
		conds   []mem.Value
	}
	byAddr := make(map[mem.Addr]*attrs)
	get := func(a mem.Addr) *attrs {
		at := byAddr[a]
		if at == nil {
			at = &attrs{opCount: make(map[program.Opcode]int), threads: make(map[int]bool)}
			byAddr[a] = at
		}
		return at
	}
	for ti := range p.Threads {
		for _, in := range p.Threads[ti].Instrs {
			if in.Op.IsMemory() {
				at := get(in.Addr)
				at.opCount[in.Op]++
				at.threads[ti] = true
			}
		}
	}
	for a := range p.Init {
		get(a)
	}
	if p.Cond != nil {
		for _, t := range p.Cond.Terms {
			if t.Thread < 0 {
				get(t.Addr).conds = append(get(t.Addr).conds, t.Value)
			}
		}
	}

	encode := func(a mem.Addr, at *attrs) string {
		var b []byte
		b = binary.AppendVarint(b, int64(p.Init[a]))
		ops := make([]int, 0, len(at.opCount))
		for op := range at.opCount {
			ops = append(ops, int(op))
		}
		sort.Ints(ops)
		for _, op := range ops {
			b = binary.AppendVarint(b, int64(op))
			b = binary.AppendVarint(b, int64(at.opCount[program.Opcode(op)]))
		}
		b = append(b, '|')
		b = binary.AppendVarint(b, int64(len(at.threads)))
		vals := append([]mem.Value(nil), at.conds...)
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, v := range vals {
			b = binary.AppendVarint(b, int64(v))
		}
		return string(b)
	}
	keys := make([]string, 0, len(byAddr))
	enc := make(map[mem.Addr]string, len(byAddr))
	for a, at := range byAddr {
		e := encode(a, at)
		enc[a] = e
		keys = append(keys, e)
	}
	sort.Strings(keys)
	label := make(map[string]int, len(keys))
	for _, k := range keys {
		if _, ok := label[k]; !ok {
			label[k] = len(label)
		}
	}
	out := make(map[mem.Addr]int, len(byAddr))
	for a, e := range enc {
		out[a] = label[e]
	}
	return out
}

// appendInstr serializes one instruction: opcode, registers, immediates,
// branch target, and (for memory ops) the address mapped through rename.
// The encoding covers exactly the semantic content — names and symbols
// are cosmetic and excluded.
func appendInstr(b []byte, in program.Instr, rename func(mem.Addr) mem.Addr) []byte {
	b = append(b, byte(in.Op), byte(in.Rd), byte(in.Rs), byte(in.Rt))
	b = binary.AppendVarint(b, int64(in.Imm))
	if in.UseImm {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendVarint(b, int64(in.Target))
	if in.Op.IsMemory() {
		b = binary.AppendVarint(b, int64(rename(in.Addr)))
	}
	return b
}

// appendRegTerms serializes the Cond's register terms for one original
// thread (or all threads when onlyThread is -1), each pinned to the
// canonical position pos(thread), sorted for order-independence.
func appendRegTerms(b []byte, c *program.Cond, pos func(int) int, onlyThread int) []byte {
	type rt struct {
		pos int
		reg program.Reg
		v   mem.Value
	}
	var terms []rt
	for _, t := range c.Terms {
		if t.Thread < 0 || (onlyThread >= 0 && t.Thread != onlyThread) {
			continue
		}
		terms = append(terms, rt{pos(t.Thread), t.Reg, t.Value})
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].pos != terms[j].pos {
			return terms[i].pos < terms[j].pos
		}
		if terms[i].reg != terms[j].reg {
			return terms[i].reg < terms[j].reg
		}
		return terms[i].v < terms[j].v
	})
	for _, t := range terms {
		b = binary.AppendVarint(b, int64(t.pos))
		b = append(b, byte(t.reg))
		b = binary.AppendVarint(b, int64(t.v))
	}
	return b
}

// serializeCanonical renders p with its threads in the given order and
// addresses renamed by first use, returning the bytes and the renaming.
// Sections: 'T' per-thread instruction streams, 'C' the postcondition
// (if any) in canonical coordinates, 'I' the explicit init values.
func serializeCanonical(p *program.Program, order []int) ([]byte, map[mem.Addr]mem.Addr) {
	amap := make(map[mem.Addr]mem.Addr)
	canonAddr := func(a mem.Addr) mem.Addr {
		id, ok := amap[a]
		if !ok {
			id = mem.Addr(len(amap))
			amap[a] = id
		}
		return id
	}
	var b []byte
	for c, orig := range order {
		b = append(b, 'T', byte(c))
		for _, in := range p.Threads[orig].Instrs {
			b = appendInstr(b, in, canonAddr)
		}
	}

	if p.Cond != nil {
		pos := make([]int, len(order))
		for c, orig := range order {
			pos[orig] = c
		}
		b = append(b, 'C')
		b = appendRegTerms(b, p.Cond, func(t int) int { return pos[t] }, -1)
		// Memory terms: instruction-referenced addresses already have
		// canonical ids. Cond-only addresses get ids next, in an order
		// determined solely by invariant data (init value, then the
		// sorted asserted values) — ties are harmless, since such
		// addresses are interchangeable the same way init-only ones are.
		condOnly := map[mem.Addr][]mem.Value{}
		for _, t := range p.Cond.Terms {
			if t.Thread < 0 {
				if _, ok := amap[t.Addr]; !ok {
					condOnly[t.Addr] = append(condOnly[t.Addr], t.Value)
				}
			}
		}
		type unm struct {
			a   mem.Addr
			key []byte
		}
		unmapped := make([]unm, 0, len(condOnly))
		for a, vals := range condOnly {
			k := binary.AppendVarint(nil, int64(p.Init[a]))
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			for _, v := range vals {
				k = binary.AppendVarint(k, int64(v))
			}
			unmapped = append(unmapped, unm{a, k})
		}
		sort.Slice(unmapped, func(i, j int) bool { return bytes.Compare(unmapped[i].key, unmapped[j].key) < 0 })
		for _, u := range unmapped {
			canonAddr(u.a)
		}
		type mt struct {
			id mem.Addr
			v  mem.Value
		}
		var mterms []mt
		for _, t := range p.Cond.Terms {
			if t.Thread < 0 {
				mterms = append(mterms, mt{amap[t.Addr], t.Value})
			}
		}
		sort.Slice(mterms, func(i, j int) bool {
			if mterms[i].id != mterms[j].id {
				return mterms[i].id < mterms[j].id
			}
			return mterms[i].v < mterms[j].v
		})
		b = append(b, 'M')
		for _, t := range mterms {
			b = binary.AppendVarint(b, int64(t.id))
			b = binary.AppendVarint(b, int64(t.v))
		}
	}

	// Init values: instruction- and Cond-referenced addresses already
	// have ids; init-only addresses get ids in value order. Ties among
	// init-only addresses are harmless — such addresses are never read
	// or written, so equal-valued ones are fully interchangeable.
	var initOnly []mem.Addr
	for a := range p.Init {
		if _, ok := amap[a]; !ok {
			initOnly = append(initOnly, a)
		}
	}
	sort.Slice(initOnly, func(i, j int) bool { return p.Init[initOnly[i]] < p.Init[initOnly[j]] })
	for _, a := range initOnly {
		canonAddr(a)
	}
	type initPair struct {
		id mem.Addr
		v  mem.Value
	}
	pairs := make([]initPair, 0, len(p.Init))
	for a, v := range p.Init {
		pairs = append(pairs, initPair{amap[a], v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].id < pairs[j].id })
	b = append(b, 'I')
	for _, pr := range pairs {
		b = binary.AppendVarint(b, int64(pr.id))
		b = binary.AppendVarint(b, int64(pr.v))
	}
	return b, amap
}

// key maps res into canonical coordinates and fingerprints it. With the
// identity renaming this is res.Key() itself.
func (c canon) key(res mem.Result) string {
	if c.inv == nil && c.addr == nil {
		return res.Key()
	}
	return c.rename(res).Key()
}

// rename maps a result observed on the original program into canonical
// coordinates: read observations move to the canonical thread position
// (indices within a thread are unchanged) and addresses to their
// canonical ids. Addresses outside the renaming can only be untouched
// (zero-valued) — no instruction references them — and zero entries are
// invisible to Result.Key, so they are dropped.
func (c canon) rename(res mem.Result) mem.Result {
	out := mem.Result{
		Reads: make(map[mem.OpID]mem.ReadObservation, len(res.Reads)),
		Final: make(map[mem.Addr]mem.Value, len(res.Final)),
	}
	for id, obs := range res.Reads {
		nid := id
		if id.Proc >= 0 && id.Proc < len(c.inv) {
			nid.Proc = c.inv[id.Proc]
		}
		na, ok := c.addr[obs.Addr]
		if !ok {
			na = obs.Addr + canonUnmappedBase // unreachable; avoid id collision
		}
		out.Reads[nid] = mem.ReadObservation{ID: nid, Addr: na, Value: obs.Value}
	}
	for a, v := range res.Final {
		na, ok := c.addr[a]
		if !ok {
			if v == 0 {
				continue
			}
			na = a + canonUnmappedBase
		}
		out.Final[na] = v
	}
	return out
}
