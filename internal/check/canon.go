package check

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"weakorder/internal/lang"
	"weakorder/internal/mem"
	"weakorder/internal/program"
)

// Oracle cache canonicalization. The appears-SC oracle is the campaign's
// most expensive computation, and its verdict is invariant under two
// cheap program isomorphisms: permuting whole threads (the idealized
// interleaving semantics treat threads symmetrically) and bijectively
// renaming addresses (conflicts and init values are preserved; address
// identity never otherwise matters). Generated programs collide under
// these isomorphisms constantly — the generators draw thread bodies and
// variable layouts from seed streams, so "the same litmus shape with x
// and y swapped" recurs across program indices — and canonicalizing the
// cache key lets every isomorphic copy share one enumeration.
//
// canonicalize picks, over all thread permutations, the lexicographically
// minimal serialization of the program with addresses renamed in first-
// use order, and returns the winning renaming. Outcome sets are stored
// in canonical coordinates: every result (enumerated or observed) is
// mapped through the renaming before it is used as a key, so two
// isomorphic programs agree on every cached verdict. Programs with a
// litmus postcondition are exempt (the Cond references concrete threads
// and symbols), as are programs with more threads than the permutation
// budget; they fall back to a raw-text hash with identity renaming.

// canonMaxThreads bounds the permutation search (4! = 24 serializations;
// campaign generators emit 2-3 threads).
const canonMaxThreads = 4

// canonUnmappedBase offsets addresses that escape the renaming (which
// cannot happen for any address an instruction can touch) clear of the
// dense canonical id space.
const canonUnmappedBase mem.Addr = 1 << 20

// canon is a program's canonicalization: the cache hash plus the
// renaming that maps this program's coordinates into canonical ones.
type canon struct {
	hash string
	// inv[orig] = canonical position of original thread orig; nil means
	// the identity renaming (raw fallback).
	inv []int
	// addr maps original addresses to canonical ids; nil means identity.
	addr map[mem.Addr]mem.Addr
}

// canonicalize computes p's canonical cache key and renaming.
func canonicalize(p *program.Program) canon {
	n := p.NumThreads()
	if p.Cond != nil || n > canonMaxThreads {
		sum := sha256.Sum256([]byte("raw|" + lang.Format(p)))
		return canon{hash: hex.EncodeToString(sum[:])}
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var (
		best     []byte
		bestInv  []int
		bestAddr map[mem.Addr]mem.Addr
	)
	permute(perm, 0, func(order []int) {
		ser, amap := serializeCanonical(p, order)
		if best != nil && bytes.Compare(ser, best) >= 0 {
			return
		}
		best = append(best[:0], ser...)
		bestInv = make([]int, n)
		for c, orig := range order {
			bestInv[orig] = c
		}
		bestAddr = amap
	})
	sum := sha256.Sum256(append([]byte("canon|"), best...))
	return canon{hash: hex.EncodeToString(sum[:]), inv: bestInv, addr: bestAddr}
}

// permute visits every permutation of s in a deterministic order,
// calling visit with each; s is restored between calls.
func permute(s []int, k int, visit func([]int)) {
	if k == len(s) {
		visit(s)
		return
	}
	for i := k; i < len(s); i++ {
		s[k], s[i] = s[i], s[k]
		permute(s, k+1, visit)
		s[k], s[i] = s[i], s[k]
	}
}

// serializeCanonical renders p with its threads in the given order and
// addresses renamed by first use, returning the bytes and the renaming.
// The serialization covers exactly the semantic content: per-thread
// instruction streams (opcode, registers, immediates, branch targets,
// canonical addresses) and the explicit init values — names and symbols
// are cosmetic and excluded.
func serializeCanonical(p *program.Program, order []int) ([]byte, map[mem.Addr]mem.Addr) {
	amap := make(map[mem.Addr]mem.Addr)
	canonAddr := func(a mem.Addr) mem.Addr {
		id, ok := amap[a]
		if !ok {
			id = mem.Addr(len(amap))
			amap[a] = id
		}
		return id
	}
	var b []byte
	for c, orig := range order {
		b = append(b, 'T', byte(c))
		for _, in := range p.Threads[orig].Instrs {
			b = append(b, byte(in.Op), byte(in.Rd), byte(in.Rs), byte(in.Rt))
			b = binary.AppendVarint(b, int64(in.Imm))
			if in.UseImm {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			b = binary.AppendVarint(b, int64(in.Target))
			if in.Op.IsMemory() {
				b = binary.AppendVarint(b, int64(canonAddr(in.Addr)))
			}
		}
	}
	// Init values: instruction-referenced addresses already have ids;
	// init-only addresses get ids in value order. Ties among init-only
	// addresses are harmless — such addresses are never read or written,
	// so equal-valued ones are fully interchangeable.
	var initOnly []mem.Addr
	for a := range p.Init {
		if _, ok := amap[a]; !ok {
			initOnly = append(initOnly, a)
		}
	}
	for swept := true; swept; { // tiny n: sort by (value, stability irrelevant)
		swept = false
		for i := 1; i < len(initOnly); i++ {
			if p.Init[initOnly[i]] < p.Init[initOnly[i-1]] {
				initOnly[i], initOnly[i-1] = initOnly[i-1], initOnly[i]
				swept = true
			}
		}
	}
	for _, a := range initOnly {
		canonAddr(a)
	}
	type initPair struct {
		id mem.Addr
		v  mem.Value
	}
	pairs := make([]initPair, 0, len(p.Init))
	for a, v := range p.Init {
		pairs = append(pairs, initPair{amap[a], v})
	}
	for swept := true; swept; {
		swept = false
		for i := 1; i < len(pairs); i++ {
			if pairs[i].id < pairs[i-1].id {
				pairs[i], pairs[i-1] = pairs[i-1], pairs[i]
				swept = true
			}
		}
	}
	b = append(b, 'I')
	for _, pr := range pairs {
		b = binary.AppendVarint(b, int64(pr.id))
		b = binary.AppendVarint(b, int64(pr.v))
	}
	return b, amap
}

// key maps res into canonical coordinates and fingerprints it. With the
// identity renaming this is res.Key() itself.
func (c canon) key(res mem.Result) string {
	if c.inv == nil && c.addr == nil {
		return res.Key()
	}
	return c.rename(res).Key()
}

// rename maps a result observed on the original program into canonical
// coordinates: read observations move to the canonical thread position
// (indices within a thread are unchanged) and addresses to their
// canonical ids. Addresses outside the renaming can only be untouched
// (zero-valued) — no instruction references them — and zero entries are
// invisible to Result.Key, so they are dropped.
func (c canon) rename(res mem.Result) mem.Result {
	out := mem.Result{
		Reads: make(map[mem.OpID]mem.ReadObservation, len(res.Reads)),
		Final: make(map[mem.Addr]mem.Value, len(res.Final)),
	}
	for id, obs := range res.Reads {
		nid := id
		if id.Proc >= 0 && id.Proc < len(c.inv) {
			nid.Proc = c.inv[id.Proc]
		}
		na, ok := c.addr[obs.Addr]
		if !ok {
			na = obs.Addr + canonUnmappedBase // unreachable; avoid id collision
		}
		out.Reads[nid] = mem.ReadObservation{ID: nid, Addr: na, Value: obs.Value}
	}
	for a, v := range res.Final {
		na, ok := c.addr[a]
		if !ok {
			if v == 0 {
				continue
			}
			na = a + canonUnmappedBase
		}
		out.Final[na] = v
	}
	return out
}
