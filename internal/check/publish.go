package check

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"weakorder/internal/machine"
)

// Publisher accumulates the live state of a running campaign for the
// control plane (internal/ctlplane) and for structured progress lines.
// It is strictly an observer: workers publish already-computed values
// through atomic counters and an append-only feed, and every read-side
// method aggregates copies — nothing here draws RNG, schedules kernel
// events, or feeds back into checking, so serving the control plane
// cannot perturb the campaign's deterministic Summary.
//
// Like the metrics registry's instruments, every method is a no-op on a
// nil receiver: a campaign without Listen or ProgressJSON carries a nil
// *Publisher and the hot path pays one nil check per hook.
type Publisher struct {
	cfg         CampaignConfig
	nConfigs    int
	configNames []string
	start       time.Time

	doneProgs   atomic.Int64
	resumed     atomic.Int64
	sims        atomic.Int64
	skips       atomic.Int64
	journalRecs atomic.Int64

	// Oracle-stage tallies, aggregated from completed programs' sim
	// records (the same flags summarize folds into OracleStats).
	satDecided    atomic.Int64
	l1Hits        atomic.Int64
	enumHits      atomic.Int64
	fallbacks     atomic.Int64
	satFallbacks  atomic.Int64
	skipsOracle   atomic.Int64
	skipsClassify atomic.Int64

	// perConfig counts simulation attempts per matrix row, bumped as each
	// run starts — ahead of the per-program aggregates, which land only
	// when a program completes.
	perConfig []atomic.Int64

	mu        sync.Mutex
	outs      map[int]progOutcome
	violLines [][]byte      // marshaled NDJSON violation feed, append-only
	feedCh    chan struct{} // closed and replaced on every feed append
}

func newPublisher(cfg CampaignConfig, matrix []machine.Config, start time.Time) *Publisher {
	names := make([]string, len(matrix))
	for i, m := range matrix {
		names[i] = m.Name()
	}
	return &Publisher{
		cfg:         cfg,
		nConfigs:    len(matrix),
		configNames: names,
		start:       start,
		perConfig:   make([]atomic.Int64, len(matrix)),
		outs:        make(map[int]progOutcome),
		feedCh:      make(chan struct{}),
	}
}

// noteSim records the start of one simulation attempt on matrix row
// cfgIdx.
func (p *Publisher) noteSim(cfgIdx int) {
	if p == nil {
		return
	}
	p.perConfig[cfgIdx].Add(1)
}

// noteJournalAppend records one durably journaled program outcome.
func (p *Publisher) noteJournalAppend() {
	if p == nil {
		return
	}
	p.journalRecs.Add(1)
}

// noteProgram publishes one completed program's outcome: counters,
// oracle-stage tallies, and the outcome itself for partial summaries.
// Resumed outcomes (replayed from a journal) additionally feed their
// violations to the live feed, which fresh outcomes already did at
// corpus-admit time.
func (p *Publisher) noteProgram(idx int, out progOutcome, resumed bool) {
	if p == nil {
		return
	}
	p.doneProgs.Add(1)
	if resumed {
		p.resumed.Add(1)
	}
	p.sims.Add(int64(len(out.Sims)))
	p.skips.Add(int64(len(out.Skips)))
	for _, sk := range out.Skips {
		switch sk.Stage {
		case "oracle":
			p.skipsOracle.Add(1)
		case "classify":
			p.skipsClassify.Add(1)
		}
	}
	for _, rec := range out.Sims {
		if !rec.L1 && rec.SatFallback != "" {
			p.satFallbacks.Add(1)
		}
		switch {
		case rec.Skipped != "":
		case rec.L1:
			p.l1Hits.Add(1)
		case rec.Sat:
			p.satDecided.Add(1)
		case rec.Enum:
			p.enumHits.Add(1)
		default:
			p.fallbacks.Add(1)
		}
	}
	p.mu.Lock()
	p.outs[idx] = out
	p.mu.Unlock()
	if resumed {
		for i := range out.Violations {
			p.noteViolation(out.Violations[i])
		}
	}
}

// noteViolation appends one shrunk violation report to the live feed and
// wakes every stream tailing it.
func (p *Publisher) noteViolation(rep ViolationReport) {
	if p == nil {
		return
	}
	line, err := json.Marshal(rep)
	if err != nil {
		return // a report is always marshalable; never block the campaign
	}
	p.mu.Lock()
	p.violLines = append(p.violLines, line)
	close(p.feedCh)
	p.feedCh = make(chan struct{})
	p.mu.Unlock()
}

// ConfigProgress is one matrix row's live attempt count.
type ConfigProgress struct {
	Config string `json:"config"`
	Runs   int64  `json:"runs"`
}

// OracleProgress is the live oracle-stage breakdown: how completed
// programs' appears-SC queries were answered, plus deadline expiries by
// stage.
type OracleProgress struct {
	SatDecided    int64 `json:"satDecided"`
	L1Hits        int64 `json:"l1Hits"`
	EnumHits      int64 `json:"enumHits"`
	Fallbacks     int64 `json:"fallbacks"`
	SatFallbacks  int64 `json:"satFallbacks"`
	SkipsOracle   int64 `json:"skipsOracle"`
	SkipsClassify int64 `json:"skipsClassify"`
}

// Progress is one live snapshot of campaign progress — the payload of
// the control plane's /progress endpoint and of structured JSON progress
// lines (CampaignConfig.ProgressJSON). Unlike the Summary it includes
// wall-clock rates, so it is side output only.
type Progress struct {
	Seed            int64            `json:"seed"`
	Programs        int              `json:"programs"`
	DonePrograms    int64            `json:"donePrograms"`
	ResumedPrograms int64            `json:"resumedPrograms,omitempty"`
	Configs         int              `json:"configs"`
	Sims            int64            `json:"sims"`
	Violations      int              `json:"violations"`
	Skips           int64            `json:"skips,omitempty"`
	PerConfig       []ConfigProgress `json:"perConfig"`
	Oracle          OracleProgress   `json:"oracle"`
	JournalRecords  int64            `json:"journalRecords,omitempty"`
	ElapsedSec      float64          `json:"elapsedSec"`
	ProgramsPerSec  float64          `json:"programsPerSec"`
	ETASec          float64          `json:"etaSec,omitempty"`
}

// Progress assembles the current snapshot.
func (p *Publisher) Progress() Progress {
	if p == nil {
		return Progress{}
	}
	done := p.doneProgs.Load()
	p.mu.Lock()
	viols := len(p.violLines)
	p.mu.Unlock()
	pr := Progress{
		Seed:            p.cfg.Seed,
		Programs:        p.cfg.Programs,
		DonePrograms:    done,
		ResumedPrograms: p.resumed.Load(),
		Configs:         p.nConfigs,
		Sims:            p.sims.Load(),
		Violations:      viols,
		Skips:           p.skips.Load(),
		JournalRecords:  p.journalRecs.Load(),
		ElapsedSec:      time.Since(p.start).Seconds(),
		Oracle: OracleProgress{
			SatDecided:    p.satDecided.Load(),
			L1Hits:        p.l1Hits.Load(),
			EnumHits:      p.enumHits.Load(),
			Fallbacks:     p.fallbacks.Load(),
			SatFallbacks:  p.satFallbacks.Load(),
			SkipsOracle:   p.skipsOracle.Load(),
			SkipsClassify: p.skipsClassify.Load(),
		},
	}
	for i, name := range p.configNames {
		pr.PerConfig = append(pr.PerConfig, ConfigProgress{Config: name, Runs: p.perConfig[i].Load()})
	}
	if pr.ElapsedSec > 0 && done > 0 {
		pr.ProgramsPerSec = float64(done) / pr.ElapsedSec
		if remaining := int64(p.cfg.Programs) - done; remaining > 0 {
			pr.ETASec = float64(remaining) / pr.ProgramsPerSec
		}
	}
	return pr
}

// ProgressJSON renders the current progress snapshot as one JSON object
// (no trailing newline) — the /progress body and the progress-line
// payload.
func (p *Publisher) ProgressJSON() []byte {
	b, err := json.Marshal(p.Progress())
	if err != nil {
		return []byte("{}")
	}
	return b
}

// partialSummary folds the outcomes published so far through the same
// summarize as the final Summary. The snapshot is taken under the feed
// lock but summarized outside it, on copies, in program-index order.
func (p *Publisher) partialSummary() *Summary {
	p.mu.Lock()
	idxs := make([]int, 0, len(p.outs))
	for idx := range p.outs {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	outs := make([]progOutcome, 0, len(idxs))
	for _, idx := range idxs {
		outs = append(outs, p.outs[idx])
	}
	p.mu.Unlock()
	return summarize(p.cfg, p.nConfigs, outs)
}

// SummaryJSON renders the current partial Summary — Summary.Programs
// reports the campaign's target count; DonePrograms in Progress says how
// much of it the partial view covers.
func (p *Publisher) SummaryJSON() ([]byte, error) {
	return p.partialSummary().JSON()
}

// MetricsText renders the current partial Summary's metrics snapshot in
// the Prometheus text exposition format.
func (p *Publisher) MetricsText() ([]byte, error) {
	return p.partialSummary().Metrics().Prometheus(), nil
}

// Violations returns the marshaled NDJSON violation feed starting at
// index from (clamped), the index to resume from, and a channel that is
// closed when the feed grows.
func (p *Publisher) Violations(from int) (lines [][]byte, next int, changed <-chan struct{}) {
	if p == nil {
		return nil, 0, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > len(p.violLines) {
		from = len(p.violLines)
	}
	// The feed is append-only and lines are never mutated, so handing out
	// a sub-slice is safe.
	return p.violLines[from:], len(p.violLines), p.feedCh
}
